// Serving subsystem tests: request generation determinism, percentile
// math, KV-cache admission/eviction, continuous-batching step traces, and
// bit-identical end-to-end serving metrics for a fixed seed.

#include <gtest/gtest.h>

#include "models/model_zoo.h"
#include "serving/kv_cache_manager.h"
#include "serving/metrics.h"
#include "serving/request_gen.h"
#include "serving/scheduler.h"
#include "serving/serving_sim.h"
#include "sim/workload_runner.h"

namespace cimtpu::serving {
namespace {

// --- Request generation ------------------------------------------------------

RequestStreamConfig test_stream(std::int64_t n, double rate) {
  RequestStreamConfig stream;
  stream.seed = 7;
  stream.num_requests = n;
  stream.arrival_rate = rate;
  stream.prompt.kind = LengthDistribution::kZipf;
  stream.prompt.min_len = 16;
  stream.prompt.max_len = 512;
  stream.output.kind = LengthDistribution::kUniform;
  stream.output.min_len = 1;
  stream.output.max_len = 32;
  return stream;
}

TEST(RequestGenTest, ArrivalsSortedAndLengthsBounded) {
  const auto requests = generate_requests(test_stream(2000, 50.0));
  ASSERT_EQ(requests.size(), 2000u);
  Seconds prev = 0;
  for (const Request& request : requests) {
    EXPECT_GE(request.arrival_time, prev);
    prev = request.arrival_time;
    EXPECT_GE(request.prompt_len, 16);
    EXPECT_LE(request.prompt_len, 512);
    EXPECT_GE(request.output_len, 1);
    EXPECT_LE(request.output_len, 32);
  }
}

TEST(RequestGenTest, PoissonMeanRateApproximatelyCorrect) {
  const double rate = 50.0;
  const auto requests = generate_requests(test_stream(5000, rate));
  const double span = requests.back().arrival_time;
  const double empirical = static_cast<double>(requests.size()) / span;
  EXPECT_NEAR(empirical, rate, 0.1 * rate);
}

TEST(RequestGenTest, BurstyKeepsLongRunRateAndBursts) {
  RequestStreamConfig stream = test_stream(20000, 50.0);
  stream.process = ArrivalProcess::kBursty;
  stream.burst_factor = 10.0;
  stream.burst_fraction = 0.1;
  const auto requests = generate_requests(stream);
  const double span = requests.back().arrival_time;
  const double empirical = static_cast<double>(requests.size()) / span;
  EXPECT_NEAR(empirical, 50.0, 0.2 * 50.0);
  // Burstiness shows up as over-dispersed inter-arrivals: the squared
  // coefficient of variation exceeds the Poisson value of 1.
  double sum = 0, sum_sq = 0;
  std::vector<double> gaps;
  for (std::size_t i = 1; i < requests.size(); ++i) {
    const double gap =
        requests[i].arrival_time - requests[i - 1].arrival_time;
    sum += gap;
    sum_sq += gap * gap;
    gaps.push_back(gap);
  }
  const double mean = sum / gaps.size();
  const double var = sum_sq / gaps.size() - mean * mean;
  EXPECT_GT(var / (mean * mean), 1.5);
}

TEST(RequestGenTest, SeedReproducesExactly) {
  const auto a = generate_requests(test_stream(500, 20.0));
  const auto b = generate_requests(test_stream(500, 20.0));
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].arrival_time, b[i].arrival_time);  // bit-identical
    EXPECT_EQ(a[i].prompt_len, b[i].prompt_len);
    EXPECT_EQ(a[i].output_len, b[i].output_len);
  }
  RequestStreamConfig other = test_stream(500, 20.0);
  other.seed = 8;
  const auto c = generate_requests(other);
  bool any_diff = false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    any_diff |= a[i].arrival_time != c[i].arrival_time;
  }
  EXPECT_TRUE(any_diff);
}

TEST(RequestGenTest, ZipfFavorsShortLengths) {
  RequestStreamConfig stream = test_stream(5000, 50.0);
  stream.prompt.kind = LengthDistribution::kZipf;
  stream.prompt.min_len = 1;
  stream.prompt.max_len = 1000;
  stream.prompt.zipf_alpha = 1.2;
  const auto requests = generate_requests(stream);
  std::int64_t below_100 = 0;
  for (const Request& request : requests) {
    if (request.prompt_len <= 100) ++below_100;
  }
  // A uniform draw would put ~10% below 100; the Zipf tail puts most.
  EXPECT_GT(below_100, static_cast<std::int64_t>(0.5 * requests.size()));
}

// --- Percentile math ---------------------------------------------------------

TEST(MetricsTest, PercentileOnKnownSet) {
  std::vector<double> values;
  for (int i = 1; i <= 100; ++i) values.push_back(i);
  EXPECT_DOUBLE_EQ(percentile(values, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(values, 100.0), 100.0);
  EXPECT_DOUBLE_EQ(percentile(values, 50.0), 50.5);
  EXPECT_NEAR(percentile(values, 95.0), 95.05, 1e-9);
  EXPECT_NEAR(percentile(values, 99.0), 99.01, 1e-9);
}

TEST(MetricsTest, PercentileEdgeCases) {
  EXPECT_DOUBLE_EQ(percentile({}, 50.0), 0.0);
  EXPECT_DOUBLE_EQ(percentile({42.0}, 99.0), 42.0);
  // Input order must not matter.
  EXPECT_DOUBLE_EQ(percentile({3.0, 1.0, 2.0}, 50.0), 2.0);
  EXPECT_THROW(percentile({1.0}, 101.0), ConfigError);
}

TEST(MetricsTest, SummaryRollsUp) {
  const LatencySummary summary = summarize_latencies({1.0, 2.0, 3.0, 4.0});
  EXPECT_EQ(summary.count, 4);
  EXPECT_DOUBLE_EQ(summary.mean, 2.5);
  EXPECT_DOUBLE_EQ(summary.p50, 2.5);
  EXPECT_DOUBLE_EQ(summary.max, 4.0);
}

// --- KV cache manager --------------------------------------------------------

TEST(KvCacheTest, AdmissionBlocksWhenExhaustedAndReleaseUnblocks) {
  // Budget of exactly 10 tokens.
  KvCacheManager kv(/*capacity=*/10.0, /*bytes_per_token=*/1.0);
  EXPECT_TRUE(kv.try_admit(0, 6));
  EXPECT_FALSE(kv.try_admit(1, 5));  // 6 + 5 > 10: admission blocks
  EXPECT_TRUE(kv.try_admit(1, 4));
  EXPECT_DOUBLE_EQ(kv.used(), 10.0);
  EXPECT_FALSE(kv.try_grow(0, 1));  // full
  kv.release(1);                    // eviction/completion unblocks
  EXPECT_TRUE(kv.try_grow(0, 1));
  EXPECT_TRUE(kv.try_admit(2, 3));
  EXPECT_EQ(kv.resident_count(), 2u);
  EXPECT_EQ(kv.resident_tokens(0), 7);
}

TEST(KvCacheTest, EvictionPicksNewestAndRespectsProtect) {
  KvCacheManager kv(100.0, 1.0, EvictionPolicy::kPreemptNewest);
  EXPECT_TRUE(kv.try_admit(10, 5));
  EXPECT_TRUE(kv.try_admit(11, 5));
  EXPECT_TRUE(kv.try_admit(12, 5));
  EXPECT_EQ(kv.pick_eviction_victim(/*protect=*/-1), 12);
  EXPECT_EQ(kv.pick_eviction_victim(/*protect=*/12), 11);
  kv.release(12);
  EXPECT_EQ(kv.pick_eviction_victim(-1), 11);

  KvCacheManager no_evict(100.0, 1.0, EvictionPolicy::kNone);
  EXPECT_TRUE(no_evict.try_admit(0, 5));
  EXPECT_EQ(no_evict.pick_eviction_victim(-1), -1);
}

TEST(KvCacheTest, ModelBudgetAccountsForWeights) {
  models::TransformerConfig model = models::llama2_7b();
  model.dtype = ir::DType::kInt4;
  const Bytes hbm = 8 * GiB;
  const Bytes budget = KvCacheManager::hbm_kv_budget(model, hbm, 1);
  EXPECT_GT(budget, 0);
  EXPECT_DOUBLE_EQ(budget, hbm - model.stack_weight_bytes());
  // One cached token pins K and V across every layer.
  EXPECT_DOUBLE_EQ(
      KvCacheManager::token_bytes(model),
      models::kv_cache_bytes_per_layer(model, 1, 1) * model.num_layers);
  // GPT3-30B INT8 weights exceed single-chip HBM entirely.
  EXPECT_THROW(KvCacheManager::hbm_kv_budget(models::gpt3_30b(), hbm, 1),
               ConfigError);
}

TEST(KvCacheTest, UnevenPipelineSplitBudgetRespectsBottleneckStage) {
  // 32 layers over 5 chips: the bottleneck stage holds ceil(32/5) = 7
  // layers, so the aggregate budget must be what keeps THAT stage within
  // one chip's HBM — strictly less than the naive 5*HBM - weights.
  models::TransformerConfig model = models::llama2_7b();
  model.dtype = ir::DType::kInt4;
  const Bytes hbm = 8 * GiB;
  const Bytes layer_w = model.layer_weight_bytes();
  const Bytes budget = KvCacheManager::hbm_kv_budget(model, hbm, 5);
  EXPECT_DOUBLE_EQ(budget, (hbm - 7.0 * layer_w) * 32.0 / 7.0);
  EXPECT_LT(budget, 5.0 * hbm - model.stack_weight_bytes());
  // Even split (4 chips, 8 layers each) reduces to chips*HBM - weights.
  EXPECT_DOUBLE_EQ(KvCacheManager::hbm_kv_budget(model, hbm, 4),
                   4.0 * hbm - model.stack_weight_bytes());
}

// --- Continuous-batching scheduler -------------------------------------------

Request make_request(std::int64_t id, std::int64_t prompt,
                     std::int64_t output, Seconds arrival = 0) {
  Request request;
  request.id = id;
  request.arrival_time = arrival;
  request.prompt_len = prompt;
  request.output_len = output;
  return request;
}

TEST(SchedulerTest, ThreeRequestHandTrace) {
  // r0: 1 token (prefill-only); r1: 3 tokens; r2: 5 tokens.  All arrive at
  // once and fit the batch, so the trace is:
  //   step 1: prefill {r0, r1, r2} -> all emit first token, r0 finishes
  //   step 2: decode {r1, r2}
  //   step 3: decode {r1, r2} -> r1 reaches 3 tokens and finishes
  //   step 4: decode {r2}
  //   step 5: decode {r2}      -> r2 reaches 5 tokens and finishes
  KvCacheManager kv(1e9, 1.0);
  SchedulerConfig config;
  ContinuousBatchScheduler scheduler(config, &kv);
  scheduler.enqueue(make_request(0, 32, 1));
  scheduler.enqueue(make_request(1, 64, 3));
  scheduler.enqueue(make_request(2, 16, 5));

  auto step1 = scheduler.next_step();
  ASSERT_TRUE(step1.has_value());
  EXPECT_EQ(step1->kind, StepRecord::Kind::kPrefill);
  EXPECT_EQ(step1->batch, 3);
  // Per-sequence shapes: whole prompts in one chunk (chunking disabled).
  EXPECT_EQ(step1->chunk_lens, (std::vector<std::int64_t>{32, 64, 16}));
  EXPECT_EQ(step1->prev_lens, (std::vector<std::int64_t>{0, 0, 0}));
  EXPECT_EQ(step1->kv_lens, (std::vector<std::int64_t>{32, 64, 16}));
  EXPECT_FALSE(step1->chunked);
  EXPECT_EQ(step1->first_token_ids, (std::vector<std::int64_t>{0, 1, 2}));
  EXPECT_EQ(step1->finished_ids, (std::vector<std::int64_t>{0}));

  std::vector<std::int64_t> decode_batches;
  std::vector<std::int64_t> finished;
  bool first_decode = true;
  while (auto step = scheduler.next_step()) {
    EXPECT_EQ(step->kind, StepRecord::Kind::kDecode);
    if (first_decode) {
      // Per-sequence KV lengths: prompt + tokens generated so far.
      EXPECT_EQ(step->kv_lens, (std::vector<std::int64_t>{64 + 1, 16 + 1}));
      first_decode = false;
    }
    decode_batches.push_back(step->batch);
    for (std::int64_t id : step->finished_ids) finished.push_back(id);
  }
  EXPECT_EQ(decode_batches, (std::vector<std::int64_t>{2, 2, 1, 1}));
  EXPECT_EQ(finished, (std::vector<std::int64_t>{1, 2}));
  EXPECT_EQ(scheduler.total_steps(), 5);
  EXPECT_TRUE(scheduler.idle());
  EXPECT_DOUBLE_EQ(kv.used(), 0.0);  // everything released
}

TEST(SchedulerTest, ContinuousAdmissionJoinsRunningBatch) {
  // A long request decodes while a late arrival is admitted mid-flight:
  // the batch grows without waiting for the first request to finish.
  KvCacheManager kv(1e9, 1.0);
  SchedulerConfig config;
  ContinuousBatchScheduler scheduler(config, &kv);
  scheduler.enqueue(make_request(0, 8, 10));
  auto prefill0 = scheduler.next_step();
  EXPECT_EQ(prefill0->kind, StepRecord::Kind::kPrefill);
  auto decode0 = scheduler.next_step();
  EXPECT_EQ(decode0->kind, StepRecord::Kind::kDecode);
  EXPECT_EQ(decode0->batch, 1);

  scheduler.enqueue(make_request(1, 8, 10));
  auto prefill1 = scheduler.next_step();  // prefill-priority
  EXPECT_EQ(prefill1->kind, StepRecord::Kind::kPrefill);
  auto decode1 = scheduler.next_step();
  EXPECT_EQ(decode1->kind, StepRecord::Kind::kDecode);
  EXPECT_EQ(decode1->batch, 2);  // r0 still running, r1 joined
}

TEST(SchedulerTest, KvPressurePreemptsNewestAndRequeues) {
  // Budget of 40 tokens: r0 (10 + growing) and r1 (10 + growing) fit at
  // admission (22 reserved), but decode growth exhausts the pages and the
  // newest request is preempted, finishing only after r0 releases.
  KvCacheManager kv(40.0, 1.0, EvictionPolicy::kPreemptNewest);
  SchedulerConfig config;
  ContinuousBatchScheduler scheduler(config, &kv);
  scheduler.enqueue(make_request(0, 10, 12));
  scheduler.enqueue(make_request(1, 10, 12));
  std::vector<std::int64_t> finished;
  while (auto step = scheduler.next_step()) {
    for (std::int64_t id : step->finished_ids) finished.push_back(id);
  }
  EXPECT_GT(scheduler.preemptions(), 0);
  EXPECT_EQ(finished, (std::vector<std::int64_t>{0, 1}));  // both complete
  EXPECT_DOUBLE_EQ(kv.used(), 0.0);
}

TEST(SchedulerTest, NonePolicyReservesWholeSequenceUpFront) {
  // kNone reserves prompt + output at admission, so r1 must wait for r0 to
  // finish entirely — and growth never fails.
  KvCacheManager kv(30.0, 1.0, EvictionPolicy::kNone);
  SchedulerConfig config;
  ContinuousBatchScheduler scheduler(config, &kv);
  scheduler.enqueue(make_request(0, 10, 10));  // reserves 20
  scheduler.enqueue(make_request(1, 10, 10));  // 40 > 30: blocks
  auto prefill = scheduler.next_step();
  EXPECT_EQ(prefill->batch, 1);
  EXPECT_EQ(scheduler.waiting_count(), 1u);
  std::vector<std::int64_t> finished;
  while (auto step = scheduler.next_step()) {
    for (std::int64_t id : step->finished_ids) finished.push_back(id);
  }
  EXPECT_EQ(scheduler.preemptions(), 0);
  EXPECT_EQ(finished, (std::vector<std::int64_t>{0, 1}));
}

// --- Workload-runner edge cases (satellite fix) ------------------------------

TEST(WorkloadRunnerEdgeTest, ZeroOutputLenDoesNotDivideByZero) {
  arch::TpuChip chip(arch::tpu_v4i_baseline());
  const sim::Simulator simulator(chip);
  sim::LlmScenario scenario;
  scenario.model = models::llama2_7b();
  scenario.model.num_layers = 2;
  scenario.batch = 1;  // batch = 1 edge case
  scenario.input_len = 64;
  scenario.output_len = 0;  // prefill-only scoring
  const sim::LlmRunResult run = sim::run_llm_inference(simulator, scenario);
  EXPECT_DOUBLE_EQ(run.decode_latency_per_token, 0.0);
  EXPECT_DOUBLE_EQ(run.decode.latency, 0.0);
  EXPECT_NEAR(run.total.latency, run.prefill.latency,
              run.prefill.latency * 1e-12);
  EXPECT_GT(run.prefill.latency, 0.0);
}

// --- End-to-end serving simulation -------------------------------------------

ServingScenario small_scenario(int chips) {
  ServingScenario scenario;
  scenario.model = models::llama2_7b();
  scenario.model.dtype = ir::DType::kInt4;
  scenario.chip_config = arch::tpu_v4i_baseline();
  scenario.scheduler.max_batch = 16;
  scenario.scheduler.max_prefill_batch = 4;
  scenario.chips = chips;
  return scenario;
}

TEST(ServingSimTest, FixedSeedIsBitIdentical) {
  const auto requests = generate_requests(test_stream(300, 20.0));
  const ServingMetrics a = run_serving(small_scenario(1), requests);
  const ServingMetrics b = run_serving(small_scenario(1), requests);
  // Exact (bit-identical) equality, not approximate.
  EXPECT_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.ttft.p50, b.ttft.p50);
  EXPECT_EQ(a.ttft.p99, b.ttft.p99);
  EXPECT_EQ(a.tpot.p99, b.tpot.p99);
  EXPECT_EQ(a.e2e.p99, b.e2e.p99);
  EXPECT_EQ(a.goodput_tokens_per_second, b.goodput_tokens_per_second);
  EXPECT_EQ(a.energy_per_token, b.energy_per_token);
  EXPECT_EQ(a.total_steps, b.total_steps);
  EXPECT_EQ(a.mxu_utilization, b.mxu_utilization);
}

TEST(ServingSimTest, AllRequestsCompleteWithSaneMetrics) {
  const auto requests = generate_requests(test_stream(300, 20.0));
  const ServingMetrics metrics = run_serving(small_scenario(1), requests);
  EXPECT_EQ(metrics.completed, 300);
  EXPECT_EQ(metrics.total_steps, metrics.prefill_steps + metrics.decode_steps);
  EXPECT_GT(metrics.goodput_tokens_per_second, 0);
  EXPECT_GT(metrics.energy_per_token, 0);
  EXPECT_GT(metrics.mxu_utilization, 0);
  EXPECT_LE(metrics.mxu_utilization, 1.0);
  EXPECT_GT(metrics.ttft.p50, 0);
  EXPECT_GE(metrics.ttft.p99, metrics.ttft.p50);
  EXPECT_GE(metrics.e2e.p99, metrics.ttft.p99);  // e2e includes TTFT
  EXPECT_GT(metrics.cost_cache_hits, metrics.cost_cache_misses);
}

TEST(ServingSimTest, PipelineImprovesGoodputUnderLoad) {
  const auto requests = generate_requests(test_stream(500, 100.0));
  const ServingMetrics one = run_serving(small_scenario(1), requests);
  const ServingMetrics four = run_serving(small_scenario(4), requests);
  EXPECT_GT(four.goodput_tokens_per_second,
            one.goodput_tokens_per_second * 1.5);
  EXPECT_LT(four.makespan, one.makespan);
}

TEST(ServingSimTest, PipelineEmissionIsMonotonicPerRequest) {
  // Long prompts with 2-token outputs on a 4-stage pipeline: the cheap
  // decode step following the expensive prefill step must not be modeled
  // as exiting the pipeline before the first token did (that would yield
  // negative TPOT and e2e < TTFT).
  RequestStreamConfig stream = test_stream(50, 100.0);
  stream.prompt.kind = LengthDistribution::kFixed;
  stream.prompt.mean = 4096;
  stream.output.kind = LengthDistribution::kFixed;
  stream.output.mean = 2;
  const auto requests = generate_requests(stream);
  const ServingMetrics metrics = run_serving(small_scenario(4), requests);
  EXPECT_EQ(metrics.completed, 50);
  EXPECT_GE(metrics.tpot.p50, 0.0);
  EXPECT_GE(metrics.tpot.mean, 0.0);
  EXPECT_GE(metrics.e2e.p50, metrics.ttft.p50);
  EXPECT_GE(metrics.e2e.p99, metrics.ttft.p99);
}

TEST(ServingSimTest, TinyKvBudgetForcesPreemptionsButCompletes) {
  ServingScenario scenario = small_scenario(1);
  // Room for only ~2 running sequences of this stream's max footprint.
  scenario.kv_budget_override =
      KvCacheManager::token_bytes(scenario.model) * 1200.0;
  const auto requests = generate_requests(test_stream(50, 50.0));
  const ServingMetrics metrics = run_serving(scenario, requests);
  EXPECT_EQ(metrics.completed, 50);
  EXPECT_GT(metrics.preemptions, 0);
}

}  // namespace
}  // namespace cimtpu::serving
