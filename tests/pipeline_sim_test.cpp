// Tile-pipeline event-simulation tests, including the cross-validation of
// the analytic overlap formula used by the operator cost model.

#include <gtest/gtest.h>

#include <algorithm>

#include "common/status.h"
#include "mem/memory.h"
#include "sim/pipeline_sim.h"

namespace cimtpu::sim {
namespace {

TEST(PipelineSimTest, SingleTileIsSerial) {
  const PipelineSimResult result = simulate_tile_pipeline(3e-3, 2e-3, 1);
  EXPECT_DOUBLE_EQ(result.total, 5e-3);
  EXPECT_DOUBLE_EQ(result.compute_idle, 2e-3);
}

TEST(PipelineSimTest, ComputeBoundSteadyState) {
  // compute >> memory: total = first load + all compute.
  const int tiles = 10;
  const PipelineSimResult result =
      simulate_tile_pipeline(10e-3, 1e-3, tiles);
  EXPECT_NEAR(result.total, 1e-3 / tiles + 10e-3, 1e-12);
}

TEST(PipelineSimTest, MemoryBoundSteadyState) {
  // memory >> compute: total = all loads + last tile's compute.
  const int tiles = 10;
  const PipelineSimResult result =
      simulate_tile_pipeline(1e-3, 10e-3, tiles);
  EXPECT_NEAR(result.total, 10e-3 + 1e-3 / tiles, 1e-12);
  EXPECT_NEAR(result.compute_idle, result.total - 1e-3, 1e-12);
}

TEST(PipelineSimTest, SingleBufferSerializes) {
  // buffer_depth = 1: every tile's load waits for the previous compute.
  const PipelineSimResult result =
      simulate_tile_pipeline(5e-3, 5e-3, 10, /*buffer_depth=*/1);
  EXPECT_NEAR(result.total, 10e-3, 1e-12);  // fully serial
  const PipelineSimResult overlapped =
      simulate_tile_pipeline(5e-3, 5e-3, 10, /*buffer_depth=*/2);
  EXPECT_LT(overlapped.total, result.total);
}

TEST(PipelineSimTest, DeeperBuffersNeverHurt) {
  for (int depth = 1; depth <= 4; ++depth) {
    const Seconds shallow =
        simulate_tile_pipeline(7e-3, 5e-3, 13, depth).total;
    const Seconds deeper =
        simulate_tile_pipeline(7e-3, 5e-3, 13, depth + 1).total;
    EXPECT_LE(deeper, shallow + 1e-15) << "depth=" << depth;
  }
}

TEST(PipelineSimTest, TotalBoundedBelowByBothResources) {
  const PipelineSimResult result = simulate_tile_pipeline(4e-3, 6e-3, 7);
  EXPECT_GE(result.total, 6e-3);
  EXPECT_GE(result.total, 4e-3);
  EXPECT_LE(result.total, 10e-3 + 1e-15);  // never worse than serial
}

TEST(PipelineSimTest, AnalyticFormulaWithinOneTileQuantum) {
  // The analytic model uses max(C, M) + M/T; the event simulation is the
  // ground truth.  They must agree within one tile quantum.
  for (double compute : {1e-3, 5e-3, 20e-3}) {
    for (double memory : {1e-3, 5e-3, 20e-3}) {
      for (int tiles : {1, 4, 16, 64}) {
        const Seconds analytic =
            mem::overlap_double_buffered(compute, memory, tiles);
        const Seconds event =
            simulate_tile_pipeline(compute, memory, tiles).total;
        const Seconds quantum = std::max(compute, memory) / tiles;
        EXPECT_NEAR(analytic, event, quantum + 1e-15)
            << "C=" << compute << " M=" << memory << " T=" << tiles;
        // The analytic model must not be optimistic beyond round-off.
        EXPECT_GE(analytic, event - 1e-15);
      }
    }
  }
}

TEST(PipelineSimTest, ConvergesToMaxWithManyTiles) {
  const Seconds total = simulate_tile_pipeline(10e-3, 8e-3, 10000).total;
  EXPECT_NEAR(total, 10e-3, 10e-3 * 1e-3);
}

TEST(PipelineSimTest, ZeroMemoryDegeneratesToCompute) {
  const PipelineSimResult result = simulate_tile_pipeline(5e-3, 0.0, 8);
  EXPECT_DOUBLE_EQ(result.total, 5e-3);
  EXPECT_DOUBLE_EQ(result.compute_idle, 0.0);
}

TEST(PipelineSimTest, Validation) {
  EXPECT_THROW(simulate_tile_pipeline(1e-3, 1e-3, 0), InternalError);
  EXPECT_THROW(simulate_tile_pipeline(1e-3, 1e-3, 4, 0), InternalError);
  EXPECT_THROW(simulate_tile_pipeline(-1e-3, 1e-3, 4), InternalError);
}

}  // namespace
}  // namespace cimtpu::sim
