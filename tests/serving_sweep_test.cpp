// Equivalence wall for the serving hot-path overhaul: the parallel sweep
// driver must reproduce serial execution bit for bit, a shared cost cache
// must reproduce per-run caching bit for bit (including the run-local
// hit/miss counters), and the packed cost-cache key must be collision-free
// at its field boundaries.  Together with the golden-metrics pins in
// serving_policy_test.cpp these guarantee the optimizations changed
// wall-clock only, never simulated results.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <vector>

#include "common/status.h"
#include "models/model_zoo.h"
#include "serving/sweep.h"
#include "serving/traffic_profiles.h"

namespace cimtpu::serving {
namespace {

/// Asserts two runs produced EXACTLY the same simulated metrics (EXPECT_EQ
/// on doubles, not NEAR: the claim is bit-identity).  The wall-clock
/// fields sim_wall_seconds / steps_per_second are the only exclusions —
/// they measure the host, not the simulation.
void expect_identical(const ServingMetrics& a, const ServingMetrics& b) {
  EXPECT_EQ(a.chips, b.chips);
  EXPECT_EQ(a.num_requests, b.num_requests);
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.generated_tokens, b.generated_tokens);
  EXPECT_EQ(a.total_steps, b.total_steps);
  EXPECT_EQ(a.prefill_steps, b.prefill_steps);
  EXPECT_EQ(a.decode_steps, b.decode_steps);
  EXPECT_EQ(a.preemptions, b.preemptions);
  EXPECT_EQ(a.counters.preemptions_recompute, b.counters.preemptions_recompute);
  EXPECT_EQ(a.counters.preemptions_swap, b.counters.preemptions_swap);
  EXPECT_EQ(a.counters.swap_ins, b.counters.swap_ins);
  EXPECT_EQ(a.counters.swap_out_bytes, b.counters.swap_out_bytes);
  EXPECT_EQ(a.counters.swap_in_bytes, b.counters.swap_in_bytes);
  EXPECT_EQ(a.counters.chunked_prefill_steps, b.counters.chunked_prefill_steps);
  EXPECT_EQ(a.makespan, b.makespan);
  const auto expect_summary = [](const LatencySummary& x,
                                 const LatencySummary& y) {
    EXPECT_EQ(x.count, y.count);
    EXPECT_EQ(x.mean, y.mean);
    EXPECT_EQ(x.p50, y.p50);
    EXPECT_EQ(x.p95, y.p95);
    EXPECT_EQ(x.p99, y.p99);
    EXPECT_EQ(x.max, y.max);
  };
  expect_summary(a.ttft, b.ttft);
  expect_summary(a.tpot, b.tpot);
  expect_summary(a.e2e, b.e2e);
  EXPECT_EQ(a.goodput_tokens_per_second, b.goodput_tokens_per_second);
  EXPECT_EQ(a.mxu_energy, b.mxu_energy);
  EXPECT_EQ(a.total_energy, b.total_energy);
  EXPECT_EQ(a.energy_per_token, b.energy_per_token);
  EXPECT_EQ(a.mxu_utilization, b.mxu_utilization);
  // Cache stats count against the run-LOCAL cache view, so they too are
  // independent of sharing and threading.
  EXPECT_EQ(a.cost_cache_entries, b.cost_cache_entries);
  EXPECT_EQ(a.cost_cache_hits, b.cost_cache_hits);
  EXPECT_EQ(a.cost_cache_misses, b.cost_cache_misses);
}

/// A 3 (rate) x 2 (chips) x 2 (policy) grid under genuine KV pressure so
/// preemption, swap, and chunk paths all execute: uniform 32..256-token
/// prompts against a 600-token budget (any single request fits, dozens do
/// not).
ServingSweep pressured_grid() {
  ServingSweep sweep;
  sweep.arrival_rates = {30.0, 60.0, 90.0};
  sweep.models = {[] {
    models::TransformerConfig model = models::llama2_7b();
    model.dtype = ir::DType::kInt4;
    return model;
  }()};
  sweep.chip_counts = {1, 2};
  sweep.policies = {EvictionPolicy::kPreemptNewest,
                    EvictionPolicy::kSwapToHost};
  sweep.base = llama7b_baseline_scenario(1, ir::DType::kInt4);
  sweep.base.kv_budget_override =
      KvCacheManager::token_bytes(sweep.base.model) * 600.0;
  sweep.stream.seed = 11;
  sweep.stream.num_requests = 50;
  sweep.stream.prompt.kind = LengthDistribution::kUniform;
  sweep.stream.prompt.min_len = 32;
  sweep.stream.prompt.max_len = 256;
  sweep.stream.output.kind = LengthDistribution::kUniform;
  sweep.stream.output.min_len = 8;
  sweep.stream.output.max_len = 64;
  return sweep;
}

TEST(SweepEquivalenceTest, ParallelMatchesSerialOn3x2x2Grid) {
  const ServingSweep sweep = pressured_grid();
  SweepOptions serial;
  serial.threads = 1;
  SweepOptions parallel;
  parallel.threads = 4;
  const std::vector<SweepCellResult> a = run_serving_sweep(sweep, serial);
  const std::vector<SweepCellResult> b = run_serving_sweep(sweep, parallel);
  ASSERT_EQ(a.size(), 12u);
  ASSERT_EQ(b.size(), 12u);
  for (std::size_t i = 0; i < a.size(); ++i) {
    // Identical grid coordinates in identical order...
    EXPECT_EQ(a[i].arrival_rate, b[i].arrival_rate);
    EXPECT_EQ(a[i].model, b[i].model);
    EXPECT_EQ(a[i].chips, b[i].chips);
    EXPECT_EQ(a[i].policy, b[i].policy);
    // ...and bit-identical metrics, workers be damned.
    expect_identical(a[i].metrics, b[i].metrics);
  }
  // Grid order is rate-major, policy-minor.
  EXPECT_EQ(a[0].arrival_rate, 30.0);
  EXPECT_EQ(a[0].chips, 1);
  EXPECT_EQ(a[0].policy, EvictionPolicy::kPreemptNewest);
  EXPECT_EQ(a[1].policy, EvictionPolicy::kSwapToHost);
  EXPECT_EQ(a[2].chips, 2);
  EXPECT_EQ(a[4].arrival_rate, 60.0);
  EXPECT_EQ(a[11].arrival_rate, 90.0);
  EXPECT_EQ(a[11].chips, 2);
  EXPECT_EQ(a[11].policy, EvictionPolicy::kSwapToHost);
}

TEST(SweepEquivalenceTest, SharedCostCacheMatchesPerRunCache) {
  const ServingSweep sweep = pressured_grid();
  SweepOptions with_shared;
  with_shared.threads = 2;
  with_shared.share_cost_cache = true;
  SweepOptions without_shared;
  without_shared.threads = 2;
  without_shared.share_cost_cache = false;
  const auto a = run_serving_sweep(sweep, with_shared);
  const auto b = run_serving_sweep(sweep, without_shared);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    expect_identical(a[i].metrics, b[i].metrics);
  }
}

TEST(SweepEquivalenceTest, SweepCellMatchesDirectRunServing) {
  const ServingSweep sweep = pressured_grid();
  SweepOptions options;
  options.threads = 3;
  const auto cells = run_serving_sweep(sweep, options);
  // Ground truth: run one cell directly, no sweep machinery at all.
  RequestStreamConfig stream = sweep.stream;
  stream.arrival_rate = 60.0;
  const auto requests = generate_requests(stream);
  ServingScenario scenario = sweep.base;
  scenario.chips = 2;
  scenario.eviction = EvictionPolicy::kSwapToHost;
  const ServingMetrics direct = run_serving(scenario, requests);
  expect_identical(cells[7].metrics, direct);  // rate 60, chips 2, swap
}

TEST(SweepEquivalenceTest, SharedCacheReusedAcrossSequentialRuns) {
  const ServingSweep sweep = pressured_grid();
  RequestStreamConfig stream = sweep.stream;
  stream.arrival_rate = 30.0;
  const auto requests = generate_requests(stream);
  ServingScenario scenario = sweep.base;

  SharedStepCostCache shared;
  const ServingMetrics cold = run_serving(scenario, requests, &shared);
  EXPECT_EQ(shared.store_count(), 1u);
  const std::size_t entries_after_first = shared.total_entries();
  EXPECT_GT(entries_after_first, 0u);
  // A second identical run computes nothing new in the shared store and
  // reproduces the first run exactly — including hit/miss counters, which
  // count against the run-local cache, not the shared one.
  const ServingMetrics warm = run_serving(scenario, requests, &shared);
  EXPECT_EQ(shared.total_entries(), entries_after_first);
  expect_identical(cold, warm);

  // A different model signature gets its own store.
  ServingScenario other = scenario;
  other.model.dtype = ir::DType::kInt8;
  other.kv_budget_override = KvCacheManager::token_bytes(other.model) * 600.0;
  run_serving(other, requests, &shared);
  EXPECT_EQ(shared.store_count(), 2u);
}

TEST(SweepErrorTest, PointFailureRethrowsFromRunSweep) {
  // A 10-token KV budget cannot admit a 100-token prompt: the failing
  // point must surface as the sweep's exception, not hang or vanish.
  std::vector<Request> requests(1);
  requests[0].id = 0;
  requests[0].arrival_time = 0;
  requests[0].prompt_len = 100;
  requests[0].output_len = 4;
  SweepPoint bad;
  bad.label = "tiny-budget";
  bad.scenario = llama7b_pressured_scenario(
      1, ir::DType::kInt4, EvictionPolicy::kPreemptNewest, /*chunk_tokens=*/0,
      /*kv_budget_tokens=*/10);
  bad.requests = &requests;
  SweepOptions options;
  options.threads = 2;
  try {
    run_sweep({bad}, options);
    FAIL() << "unservable point did not throw";
  } catch (const ConfigError& error) {
    // The rethrown error names the failing point and its label.
    EXPECT_NE(std::string(error.what()).find("sweep point 0"),
              std::string::npos)
        << error.what();
    EXPECT_NE(std::string(error.what()).find("tiny-budget"), std::string::npos)
        << error.what();
  }
}

TEST(SweepEquivalenceTest, CallerOwnedSharedCacheReusedAcrossSweeps) {
  // Two separate run_sweep calls over the same deployments warm ONE
  // caller-owned cache: the second sweep adds no new entries and still
  // reproduces the first bit for bit.
  const ServingSweep sweep = pressured_grid();
  RequestStreamConfig stream = sweep.stream;
  stream.arrival_rate = 30.0;
  const auto requests = generate_requests(stream);
  SweepPoint point;
  point.scenario = sweep.base;
  point.requests = &requests;

  SharedStepCostCache shared;
  SweepOptions options;
  options.threads = 1;
  options.shared_cache = &shared;
  const auto first = run_sweep({point}, options);
  const std::size_t warm_entries = shared.total_entries();
  EXPECT_GT(warm_entries, 0u);
  const auto second = run_sweep({point}, options);
  EXPECT_EQ(shared.total_entries(), warm_entries);
  expect_identical(first[0], second[0]);
}

TEST(SweepThreadsTest, ExplicitThenEnvThenClamp) {
  unsetenv("CIMTPU_SWEEP_THREADS");
  EXPECT_EQ(resolve_sweep_threads(3, 100), 3);
  EXPECT_EQ(resolve_sweep_threads(8, 2), 2);  // clamped to the point count
  setenv("CIMTPU_SWEEP_THREADS", "5", /*overwrite=*/1);
  EXPECT_EQ(resolve_sweep_threads(0, 100), 5);
  EXPECT_EQ(resolve_sweep_threads(2, 100), 2);  // explicit beats env
  setenv("CIMTPU_SWEEP_THREADS", "0", 1);
  EXPECT_GE(resolve_sweep_threads(0, 100), 1);  // falls through to hardware
  unsetenv("CIMTPU_SWEEP_THREADS");
  EXPECT_GE(resolve_sweep_threads(0, 100), 1);
}

// --- Packed cost-cache key: collision-freedom at field boundaries ------------

TEST(PackedKeyTest, FieldLayoutAndBoundaries) {
  // len occupies bits 0..39, batch bits 40..62, the kind flag bit 63.
  EXPECT_EQ(StepCostCache::pack_key(false, 1, 1), (1ull << 40) | 1ull);
  EXPECT_EQ(StepCostCache::pack_key(true, 1, 1),
            (1ull << 63) | (1ull << 40) | 1ull);
  const std::int64_t max_batch = (std::int64_t{1} << 23) - 1;
  const std::int64_t max_len = (std::int64_t{1} << 40) - 1;
  // Boundary values pack losslessly and never collide across fields: a
  // max-len key differs from every (batch+1, small-len) key.
  EXPECT_NE(StepCostCache::pack_key(false, 1, max_len),
            StepCostCache::pack_key(false, 2, 1));
  EXPECT_NE(StepCostCache::pack_key(false, max_batch, max_len),
            StepCostCache::pack_key(true, max_batch, max_len));
  // One more token / one more sequence each flip exactly one field.
  EXPECT_EQ(StepCostCache::pack_key(false, 2, 1) -
                StepCostCache::pack_key(false, 1, 1),
            1ull << 40);
  EXPECT_EQ(StepCostCache::pack_key(false, 1, 2) -
                StepCostCache::pack_key(false, 1, 1),
            1ull);
  // Out-of-range shapes would alias another field's bits: rejected.
  EXPECT_THROW(StepCostCache::pack_key(false, 0, 1), InternalError);
  EXPECT_THROW(StepCostCache::pack_key(false, 1, 0), InternalError);
  EXPECT_THROW(StepCostCache::pack_key(false, max_batch + 1, 1),
               InternalError);
  EXPECT_THROW(StepCostCache::pack_key(false, 1, max_len + 1), InternalError);
}

TEST(PackedKeyTest, DistinctShapesNeverAlias) {
  // Dense batch x sparse len sampling across both kinds: every packed key
  // unique (the layout is a bijection on in-range shapes).
  std::vector<std::uint64_t> keys;
  const std::vector<std::int64_t> lens = {1, 127, 128, 129, 4096,
                                          (std::int64_t{1} << 40) - 1};
  for (int kind = 0; kind < 2; ++kind) {
    for (std::int64_t batch : {std::int64_t{1}, std::int64_t{31},
                               (std::int64_t{1} << 23) - 1}) {
      for (std::int64_t len : lens) {
        keys.push_back(StepCostCache::pack_key(kind == 1, batch, len));
      }
    }
  }
  std::sort(keys.begin(), keys.end());
  EXPECT_EQ(std::adjacent_find(keys.begin(), keys.end()), keys.end());
}

TEST(FlatCostTableTest, InsertFindAndGrowPreserveValues) {
  FlatCostTable table;
  // Enough keys to force several growth rehashes from the 256-slot start.
  constexpr int kBatches = 64;
  constexpr int kLens = 40;
  for (int batch = 1; batch <= kBatches; ++batch) {
    for (int len = 1; len <= kLens; ++len) {
      const std::uint64_t key =
          StepCostCache::pack_key(batch % 2 == 0, batch, len * 128);
      StepCost cost;
      cost.latency = static_cast<double>(batch) * 1e-3;
      cost.total_energy = static_cast<double>(len);
      table.insert(key, cost);
    }
  }
  EXPECT_EQ(table.size(), static_cast<std::size_t>(kBatches * kLens));
  for (int batch = 1; batch <= kBatches; ++batch) {
    for (int len = 1; len <= kLens; ++len) {
      const std::uint64_t key =
          StepCostCache::pack_key(batch % 2 == 0, batch, len * 128);
      const StepCost* found = table.find(key);
      ASSERT_NE(found, nullptr);
      EXPECT_EQ(found->latency, static_cast<double>(batch) * 1e-3);
      EXPECT_EQ(found->total_energy, static_cast<double>(len));
    }
  }
  EXPECT_EQ(table.find(StepCostCache::pack_key(true, 12345, 99)), nullptr);
}

}  // namespace
}  // namespace cimtpu::serving
