// Operator IR tests: FLOP/byte accounting for every op kind, validation,
// and graph rollups.

#include <gtest/gtest.h>

#include "ir/graph.h"
#include "ir/op.h"

namespace cimtpu::ir {
namespace {

TEST(DtypeTest, Sizes) {
  EXPECT_DOUBLE_EQ(dtype_bytes(DType::kInt8), 1.0);
  EXPECT_DOUBLE_EQ(dtype_bytes(DType::kBf16), 2.0);
  EXPECT_DOUBLE_EQ(dtype_bytes(DType::kFp32), 4.0);
}

TEST(DtypeTest, Names) {
  EXPECT_EQ(dtype_name(DType::kInt8), "INT8");
  EXPECT_EQ(dtype_from_name("bf16"), DType::kBf16);
  EXPECT_EQ(dtype_from_name("INT8"), DType::kInt8);
  EXPECT_THROW(dtype_from_name("fp64"), ConfigError);
}

TEST(OpTest, WeightGemmAccounting) {
  const Op op = make_weight_gemm("g", "FFN1", 8, 7168, 28672, DType::kInt8);
  EXPECT_DOUBLE_EQ(op.macs(), 8.0 * 7168 * 28672);
  EXPECT_DOUBLE_EQ(op.flops(), 2.0 * op.macs());
  EXPECT_DOUBLE_EQ(op.moving_bytes(), 8.0 * 7168);
  EXPECT_DOUBLE_EQ(op.stationary_bytes(), 7168.0 * 28672);
  EXPECT_DOUBLE_EQ(op.output_bytes(), 8.0 * 28672);
  EXPECT_EQ(op.stationary_residency, Residency::kHbm);
  EXPECT_TRUE(op.stationary_shared);
  EXPECT_TRUE(op.is_matmul());
}

TEST(OpTest, AttentionGemmAccounting) {
  // 448 instances of [1,128]x[128,1280]: decode Q*K^T.
  const Op op = make_attention_gemm("qk", "Attention", 448, 1, 128, 1280,
                                    DType::kInt8, Residency::kCmem);
  EXPECT_DOUBLE_EQ(op.macs(), 448.0 * 128 * 1280);
  EXPECT_DOUBLE_EQ(op.stationary_bytes(), 448.0 * 128 * 1280);
  EXPECT_FALSE(op.stationary_shared);
  EXPECT_EQ(op.stationary_residency, Residency::kCmem);
}

TEST(OpTest, Bf16DoublesBytes) {
  const Op op = make_weight_gemm("g", "G", 4, 8, 16, DType::kBf16);
  EXPECT_DOUBLE_EQ(op.moving_bytes(), 4.0 * 8 * 2);
  EXPECT_DOUBLE_EQ(op.stationary_bytes(), 8.0 * 16 * 2);
}

TEST(OpTest, SoftmaxAccounting) {
  const Op op = make_softmax("s", "Attention", 100, 1024, DType::kInt8);
  EXPECT_DOUBLE_EQ(op.flops(), 12.0 * 100 * 1024);
  EXPECT_DOUBLE_EQ(op.macs(), 0.0);
  EXPECT_DOUBLE_EQ(op.moving_bytes(), 100.0 * 1024);
  EXPECT_FALSE(op.is_matmul());
}

TEST(OpTest, LayerNormAccounting) {
  const Op op = make_layer_norm("ln", "LayerNorm", 8, 7168, DType::kInt8);
  EXPECT_DOUBLE_EQ(op.flops(), 8.0 * 8 * 7168);
  EXPECT_DOUBLE_EQ(op.output_bytes(), 8.0 * 7168);
}

TEST(OpTest, GeluAccounting) {
  const Op op = make_gelu("g", "GeLU", 1000, DType::kInt8);
  EXPECT_DOUBLE_EQ(op.flops(), 12.0 * 1000);
}

TEST(OpTest, ElementwiseOpsPerElement) {
  const Op op = make_elementwise("e", "Cond", 1000, 2.0, DType::kInt8);
  EXPECT_DOUBLE_EQ(op.flops(), 2000.0);
}

TEST(OpTest, EmbeddingIsPureGather) {
  const Op op = make_embedding_lookup("e", "Embed", 8192, 7168, DType::kInt8);
  EXPECT_DOUBLE_EQ(op.flops(), 0.0);
  EXPECT_DOUBLE_EQ(op.moving_bytes(), 8192.0 * 7168);
}

TEST(OpTest, DataMovementNoFlops) {
  const Op op = make_data_movement("d", "Pre", 4096, DType::kInt8);
  EXPECT_DOUBLE_EQ(op.flops(), 0.0);
  EXPECT_DOUBLE_EQ(op.moving_bytes(), 4096.0);
}

TEST(OpTest, ValidationRejectsBadShapes) {
  EXPECT_THROW(make_weight_gemm("g", "G", 0, 8, 8, DType::kInt8), ConfigError);
  EXPECT_THROW(make_weight_gemm("g", "G", 8, -1, 8, DType::kInt8),
               ConfigError);
  EXPECT_THROW(make_softmax("s", "A", 0, 8, DType::kInt8), ConfigError);
  EXPECT_THROW(make_gelu("g", "G", 0, DType::kInt8), ConfigError);
  Op nameless;
  nameless.m = nameless.k = nameless.n = 1;
  EXPECT_THROW(nameless.validate(), ConfigError);
}

TEST(OpTest, KindNames) {
  EXPECT_EQ(op_kind_name(OpKind::kMatmul), "matmul");
  EXPECT_EQ(op_kind_name(OpKind::kSoftmax), "softmax");
  EXPECT_EQ(residency_name(Residency::kHbm), "HBM");
  EXPECT_EQ(residency_name(Residency::kCmem), "CMEM");
}

// --- Graph -----------------------------------------------------------------------

TEST(GraphTest, AddAndTotals) {
  Graph graph("layer");
  graph.add(make_weight_gemm("a", "QKV Gen", 8, 16, 32, DType::kInt8));
  graph.add(make_weight_gemm("b", "FFN1", 8, 16, 32, DType::kInt8));
  graph.add(make_softmax("s", "Attention", 8, 32, DType::kInt8));
  EXPECT_EQ(graph.size(), 3u);
  EXPECT_DOUBLE_EQ(graph.total_macs(), 2.0 * 8 * 16 * 32);
  EXPECT_DOUBLE_EQ(graph.total_flops(),
                   2.0 * 2 * 8 * 16 * 32 + 12.0 * 8 * 32);
  EXPECT_DOUBLE_EQ(graph.total_stationary_bytes(), 2.0 * 16 * 32);
}

TEST(GraphTest, GroupsInFirstAppearanceOrder) {
  Graph graph;
  graph.add(make_weight_gemm("a", "QKV Gen", 1, 1, 1, DType::kInt8));
  graph.add(make_softmax("s", "Attention", 1, 1, DType::kInt8));
  graph.add(make_weight_gemm("b", "QKV Gen", 1, 1, 1, DType::kInt8));
  const auto groups = graph.groups();
  ASSERT_EQ(groups.size(), 2u);
  EXPECT_EQ(groups[0], "QKV Gen");
  EXPECT_EQ(groups[1], "Attention");
}

TEST(GraphTest, AppendConcatenates) {
  Graph a("a"), b("b");
  a.add(make_gelu("x", "G", 10, DType::kInt8));
  b.add(make_gelu("y", "G", 20, DType::kInt8));
  a.append(b);
  EXPECT_EQ(a.size(), 2u);
  EXPECT_EQ(a.op(1).name, "y");
}

TEST(GraphTest, AddValidates) {
  Graph graph;
  Op bad;
  bad.name = "bad";
  bad.m = 0;
  EXPECT_THROW(graph.add(bad), ConfigError);
}

TEST(GraphTest, OutOfRangeOpThrows) {
  Graph graph;
  EXPECT_THROW(graph.op(0), InternalError);
}

}  // namespace
}  // namespace cimtpu::ir
