// BF16 CIM floating-point pipeline: conversions, exponent alignment, and
// bounded-error dot products against an FP32 reference.

#include <gtest/gtest.h>

#include <cmath>

#include "cim/fp_pipeline.h"
#include "common/rng.h"
#include "common/status.h"

namespace cimtpu::cim {
namespace {

TEST(Bf16Test, RoundTripExactValues) {
  // Values exactly representable in BF16 survive a round trip.
  for (float v : {0.0f, 1.0f, -1.0f, 0.5f, 2.0f, -3.5f, 256.0f, 0x1.8p126f}) {
    EXPECT_EQ(float_from_bf16(bf16_from_float(v)), v) << v;
  }
}

TEST(Bf16Test, EncodingRoundsToNearestEven) {
  // 1 + 2^-8 is exactly between 1.0 and the next BF16 (1 + 2^-7);
  // round-to-nearest-even picks 1.0 (even mantissa).
  EXPECT_EQ(float_from_bf16(bf16_from_float(1.0f + 0x1p-8f)), 1.0f);
  // Slightly above the midpoint rounds up.
  EXPECT_EQ(float_from_bf16(bf16_from_float(1.0f + 0x1p-8f + 0x1p-12f)),
            1.0f + 0x1p-7f);
}

TEST(Bf16Test, RelativeErrorBounded) {
  Rng rng(42);
  for (int i = 0; i < 1000; ++i) {
    const float v = static_cast<float>(rng.uniform(-1e6, 1e6));
    if (v == 0.0f) continue;
    const float back = float_from_bf16(bf16_from_float(v));
    // BF16 has 8 significand bits -> relative error <= 2^-8.
    EXPECT_LE(std::fabs(back - v) / std::fabs(v), 0x1p-8f) << v;
  }
}

TEST(DecodeBf16Test, DecodesMantissaAndExponent) {
  // 1.0 = mantissa 128 (1.0 in 1.7), exponent 0.
  const DecodedBf16 one = decode_bf16(bf16_from_float(1.0f));
  EXPECT_FALSE(one.is_zero);
  EXPECT_EQ(one.mantissa, 128);
  EXPECT_EQ(one.exponent, 0);

  const DecodedBf16 neg_two = decode_bf16(bf16_from_float(-2.0f));
  EXPECT_EQ(neg_two.mantissa, -128);
  EXPECT_EQ(neg_two.exponent, 1);

  // 1.5 = 1.1b -> mantissa 192.
  const DecodedBf16 one_and_half = decode_bf16(bf16_from_float(1.5f));
  EXPECT_EQ(one_and_half.mantissa, 192);
  EXPECT_EQ(one_and_half.exponent, 0);
}

TEST(DecodeBf16Test, ZeroAndSubnormalsFlush) {
  EXPECT_TRUE(decode_bf16(bf16_from_float(0.0f)).is_zero);
  EXPECT_TRUE(decode_bf16(bf16_from_float(-0.0f)).is_zero);
  EXPECT_TRUE(decode_bf16(bf16_from_float(1e-40f)).is_zero);  // subnormal
}

TEST(DecodeBf16Test, ReconstructsValue) {
  Rng rng(7);
  for (int i = 0; i < 200; ++i) {
    const float v = static_cast<float>(rng.uniform(-100.0, 100.0));
    const std::uint16_t bits = bf16_from_float(v);
    const DecodedBf16 d = decode_bf16(bits);
    if (d.is_zero) continue;
    const double reconstructed = d.mantissa * std::ldexp(1.0, d.exponent - 7);
    EXPECT_FLOAT_EQ(static_cast<float>(reconstructed), float_from_bf16(bits));
  }
}

TEST(AlignProductsTest, AllZeroBlock) {
  const AlignedBlock block =
      align_products({bf16_from_float(0.0f)}, {bf16_from_float(0.0f)});
  EXPECT_EQ(block.block_exponent, 0);
  EXPECT_EQ(block.terms[0], 0);
}

TEST(AlignProductsTest, EqualExponentsNoShift) {
  // 1.0 * 1.0 and 1.5 * 1.0: same product exponent, no alignment loss.
  const AlignedBlock block = align_products(
      {bf16_from_float(1.0f), bf16_from_float(1.5f)},
      {bf16_from_float(1.0f), bf16_from_float(1.0f)}, /*guard_bits=*/0);
  EXPECT_EQ(block.block_exponent, 0);
  EXPECT_EQ(block.terms[0], 128 * 128);
  EXPECT_EQ(block.terms[1], 192 * 128);
}

TEST(AlignProductsTest, SmallTermsShiftRight) {
  // 2^-20 vs 1.0: the small product shifts 20 positions right.
  const AlignedBlock block = align_products(
      {bf16_from_float(1.0f), bf16_from_float(0x1p-20f)},
      {bf16_from_float(1.0f), bf16_from_float(1.0f)}, /*guard_bits=*/4);
  EXPECT_EQ(block.block_exponent, 0);
  EXPECT_GT(block.terms[0], block.terms[1]);
}

TEST(AlignProductsTest, MismatchedSizesThrow) {
  EXPECT_THROW(align_products({0}, {0, 0}), InternalError);
}

TEST(CimBf16DotTest, ExactOnUniformExponents) {
  // All products share an exponent -> no alignment error at all.
  const std::vector<std::uint16_t> x(16, bf16_from_float(1.5f));
  const std::vector<std::uint16_t> w(16, bf16_from_float(-2.0f));
  EXPECT_FLOAT_EQ(cim_bf16_dot(x, w), -48.0f);
}

TEST(CimBf16DotTest, HandlesZeros) {
  EXPECT_FLOAT_EQ(
      cim_bf16_dot({bf16_from_float(0.0f)}, {bf16_from_float(5.0f)}), 0.0f);
}

// Parameterized accuracy sweep: relative error vs FP32 reference bounded by
// the block-floating-point alignment loss, improving with guard bits.
class CimBf16AccuracyTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(CimBf16AccuracyTest, RelativeErrorBounded) {
  const int length = std::get<0>(GetParam());
  const int guard_bits = std::get<1>(GetParam());
  Rng rng(0xBF16u + length * 31 + guard_bits);
  for (int trial = 0; trial < 25; ++trial) {
    std::vector<std::uint16_t> x(length), w(length);
    for (int i = 0; i < length; ++i) {
      x[i] = bf16_from_float(static_cast<float>(rng.uniform(-2.0, 2.0)));
      w[i] = bf16_from_float(static_cast<float>(rng.uniform(-2.0, 2.0)));
    }
    const float reference = reference_bf16_dot(x, w);
    const float cim = cim_bf16_dot(x, w, guard_bits);
    // Error scale: one ULP of the largest aligned term per element, reduced
    // by guard bits.  Use the sum of |terms| as the scale (cancellation can
    // make the result arbitrarily small relative to the terms).
    double magnitude = 0;
    for (int i = 0; i < length; ++i) {
      magnitude +=
          std::fabs(float_from_bf16(x[i])) * std::fabs(float_from_bf16(w[i]));
    }
    const double bound =
        magnitude * std::ldexp(1.0, -7 - guard_bits) + 1e-30;
    EXPECT_NEAR(cim, reference, bound)
        << "length=" << length << " guard=" << guard_bits;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, CimBf16AccuracyTest,
    ::testing::Combine(::testing::Values(1, 8, 32, 128),
                       ::testing::Values(0, 2, 4, 8)));

TEST(CimBf16DotTest, GuardBitsImproveAccuracy) {
  // Construct a cancellation-prone case and verify more guard bits help.
  Rng rng(555);
  double err0 = 0, err8 = 0;
  for (int trial = 0; trial < 100; ++trial) {
    std::vector<std::uint16_t> x(64), w(64);
    for (int i = 0; i < 64; ++i) {
      // Wide exponent spread stresses alignment.
      const float scale = std::ldexp(1.0f, static_cast<int>(rng.uniform_int(-10, 10)));
      x[i] = bf16_from_float(static_cast<float>(rng.uniform(-1.0, 1.0)) * scale);
      w[i] = bf16_from_float(static_cast<float>(rng.uniform(-1.0, 1.0)));
    }
    const float reference = reference_bf16_dot(x, w);
    err0 += std::fabs(cim_bf16_dot(x, w, 0) - reference);
    err8 += std::fabs(cim_bf16_dot(x, w, 8) - reference);
  }
  EXPECT_LT(err8, err0);
}

}  // namespace
}  // namespace cimtpu::cim
