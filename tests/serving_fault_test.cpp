// Fault injection & recovery wall: seeded FaultProcess determinism and
// per-type rng stream decoupling, FaultConfig validation, the
// DegradationController's hysteresis, faults-off bit-identity with the
// pre-fault engine, recovery policies end to end (backoff re-admission
// with a retry budget, recovery-off / budget-exhaustion fault sheds,
// host-shadow KV restore, device failure + restart), the shed x swap
// interaction (a fault that removes a swapped-out request must release
// its host-pool bytes; swap counters must reconcile with trace events),
// the sweep's fault-rate x recovery axes (sentinel inheritance, label
// stability, thread-count bit-identity), and the pinned resilience
// frontier behind the schema-v8 "resilience" bench block: at the fixed
// fault storm seed, recovery-on strictly beats recovery-off on BOTH
// availability and SLO goodput, and availability recomputed purely from
// trace events matches ServingMetrics exactly.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <string>
#include <vector>

#include "common/status.h"
#include "serving/fault.h"
#include "serving/kv_cache_manager.h"
#include "serving/scheduler.h"
#include "serving/serving_sim.h"
#include "serving/sweep.h"
#include "serving/trace.h"
#include "serving/traffic_profiles.h"

namespace cimtpu::serving {
namespace {

Request make_request(std::int64_t id, std::int64_t prompt, std::int64_t output,
                     Seconds arrival = 0) {
  Request request;
  request.id = id;
  request.arrival_time = arrival;
  request.prompt_len = prompt;
  request.output_len = output;
  return request;
}

FaultConfig storm_config() {
  FaultConfig config;
  config.enabled = true;
  config.seed = 7;
  config.stall_rate_per_s = 0.5;
  config.kv_loss_rate_per_s = 1.0;
  config.device_failure_rate_per_s = 0.1;
  return config;
}

std::vector<FaultEvent> drain_events(FaultProcess* process, Seconds until) {
  std::vector<FaultEvent> events;
  FaultEvent event;
  while (process->poll(until, &event)) events.push_back(event);
  return events;
}

// --- FaultProcess: seeding, decoupling, merge order --------------------------

TEST(FaultProcessTest, SameSeedReplaysTheSameStorm) {
  FaultProcess a(storm_config());
  FaultProcess b(storm_config());
  const std::vector<FaultEvent> events_a = drain_events(&a, 100.0);
  const std::vector<FaultEvent> events_b = drain_events(&b, 100.0);
  ASSERT_FALSE(events_a.empty());
  ASSERT_EQ(events_a.size(), events_b.size());
  for (std::size_t i = 0; i < events_a.size(); ++i) {
    EXPECT_EQ(events_a[i].type, events_b[i].type);
    EXPECT_EQ(events_a[i].time, events_b[i].time);  // bit-identical
  }

  FaultConfig reseeded = storm_config();
  reseeded.seed = 8;
  FaultProcess c(reseeded);
  const std::vector<FaultEvent> events_c = drain_events(&c, 100.0);
  bool identical = events_a.size() == events_c.size();
  for (std::size_t i = 0; identical && i < events_a.size(); ++i) {
    identical = events_a[i].type == events_c[i].type &&
                events_a[i].time == events_c[i].time;
  }
  EXPECT_FALSE(identical) << "different seeds must give different storms";
}

TEST(FaultProcessTest, PerTypeStreamsAreDecoupled) {
  // Turning the other processes on (or off) must not move one process's
  // event times: each type draws from its own sub-stream of the seed.
  const auto times_of = [](const FaultConfig& config, FaultType type) {
    FaultProcess process(config);
    std::vector<Seconds> times;
    for (const FaultEvent& event : drain_events(&process, 200.0)) {
      if (event.type == type) times.push_back(event.time);
    }
    return times;
  };
  FaultConfig stalls_only = storm_config();
  stalls_only.kv_loss_rate_per_s = 0;
  stalls_only.device_failure_rate_per_s = 0;
  FaultConfig losses_only = storm_config();
  losses_only.stall_rate_per_s = 0;
  losses_only.device_failure_rate_per_s = 0;

  EXPECT_EQ(times_of(stalls_only, FaultType::kStall),
            times_of(storm_config(), FaultType::kStall));
  EXPECT_EQ(times_of(losses_only, FaultType::kKvLoss),
            times_of(storm_config(), FaultType::kKvLoss));
  EXPECT_FALSE(times_of(storm_config(), FaultType::kStall).empty());
  EXPECT_FALSE(times_of(storm_config(), FaultType::kKvLoss).empty());
}

TEST(FaultProcessTest, MergedEventsAreChronological) {
  FaultProcess process(storm_config());
  Seconds previous = -1;
  for (const FaultEvent& event : drain_events(&process, 300.0)) {
    EXPECT_GE(event.time, previous);
    previous = event.time;
  }
  // Nothing armed past the drain point yet: next_event_time advanced.
  EXPECT_GT(process.next_event_time(), 300.0);

  FaultConfig off = storm_config();
  off.stall_rate_per_s = 0;
  off.kv_loss_rate_per_s = 0;
  off.device_failure_rate_per_s = 0;
  FaultProcess idle(off);
  EXPECT_EQ(idle.next_event_time(), std::numeric_limits<double>::infinity());
  FaultEvent event;
  EXPECT_FALSE(idle.poll(1e9, &event));
}

TEST(FaultProcessTest, VictimPicksAreInRangeAndDeterministic) {
  FaultProcess a(storm_config());
  FaultProcess b(storm_config());
  for (int i = 0; i < 200; ++i) {
    const std::int64_t victim = a.pick_victim(/*resident_count=*/7);
    EXPECT_GE(victim, 0);
    EXPECT_LT(victim, 7);
    EXPECT_EQ(victim, b.pick_victim(7));
  }
}

// --- FaultConfig validation --------------------------------------------------

TEST(FaultConfigTest, ValidateRejectsBadKnobs) {
  const auto expect_invalid = [](void (*mutate)(FaultConfig*)) {
    FaultConfig config = storm_config();
    mutate(&config);
    EXPECT_THROW(config.validate(), ConfigError);
  };
  expect_invalid([](FaultConfig* c) { c->stall_rate_per_s = -1; });
  expect_invalid([](FaultConfig* c) {
    c->kv_loss_rate_per_s = std::numeric_limits<double>::infinity();
  });
  expect_invalid([](FaultConfig* c) { c->stall_latency_multiplier = 0.5; });
  expect_invalid([](FaultConfig* c) { c->device_restart_s = 0; });
  expect_invalid([](FaultConfig* c) { c->retry_budget = -1; });
  expect_invalid([](FaultConfig* c) {
    c->retry_backoff_max_s = c->retry_backoff_base_s / 2;
  });
  expect_invalid([](FaultConfig* c) {
    c->degrade_window_s = 5.0;
    c->degrade_exit_faults = c->degrade_enter_faults;  // no hysteresis
  });
  expect_invalid([](FaultConfig* c) {
    c->degrade_window_s = 5.0;
    c->degraded_max_batch_fraction = 0;
  });
  FaultConfig valid = storm_config();
  EXPECT_NO_THROW(valid.validate());
}

// --- DegradationController ---------------------------------------------------

TEST(DegradationTest, HysteresisEntersAtThresholdAndExitsOnDecay) {
  FaultConfig config = storm_config();
  config.degrade_window_s = 10.0;
  config.degrade_enter_faults = 3;
  config.degrade_exit_faults = 1;
  DegradationController controller(config);
  ASSERT_TRUE(controller.enabled());
  EXPECT_FALSE(controller.degraded());

  controller.on_fault(0.0);
  controller.on_fault(1.0);
  EXPECT_FALSE(controller.update(1.0));  // 2 < enter threshold
  controller.on_fault(2.0);
  EXPECT_TRUE(controller.update(2.0));  // flipped in
  EXPECT_TRUE(controller.degraded());
  EXPECT_FALSE(controller.update(2.5));  // no flapping while degraded

  // Hysteresis: at t=11.5 the faults at 0 and 1 have aged out, leaving 1
  // (<= exit) in the window — only now does the controller flip back.
  EXPECT_FALSE(controller.update(11.0));  // 2 in window: still degraded
  EXPECT_TRUE(controller.degraded());
  EXPECT_TRUE(controller.update(11.5));
  EXPECT_FALSE(controller.degraded());

  FaultConfig disabled = storm_config();  // degrade_window_s stays 0
  DegradationController off(disabled);
  EXPECT_FALSE(off.enabled());
}

// --- Faults off: bit-identical to the pre-fault engine -----------------------

TEST(FaultsOffTest, DisabledSubsystemIsBitIdenticalAndUnpublished) {
  const std::vector<Request> requests = generate_requests(
      slo_chat_stream(/*seed=*/42, /*num_requests=*/120, /*arrival_rate=*/8.0));
  ServingScenario plain = slo_scenario(ir::DType::kInt4, "edf");

  // Same scenario with every fault knob armed but the subsystem DISABLED:
  // the fault rng is never consulted, so the whole run is bit-identical.
  ServingScenario armed = plain;
  armed.fault = storm_config();
  armed.fault.enabled = false;

  const ServingMetrics a = run_serving(plain, requests);
  const ServingMetrics b = run_serving(armed, requests);
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.total_steps, b.total_steps);
  EXPECT_EQ(a.goodput_tokens_per_second, b.goodput_tokens_per_second);
  EXPECT_EQ(a.ttft.p99, b.ttft.p99);
  EXPECT_EQ(a.slo_goodput_tokens_per_second, b.slo_goodput_tokens_per_second);
  EXPECT_EQ(a.availability, b.availability);

  // Off runs publish no fault keys: the registry dump stays byte-identical
  // to pre-fault builds ("fault.*" and the engine resilience gauges are
  // gated on the subsystem).
  EXPECT_EQ(b.registry.counters().count("fault.stalls"), 0u);
  EXPECT_EQ(b.registry.gauges().count("engine.mttr_s"), 0u);
  EXPECT_EQ(b.fault.stalls, 0);
  EXPECT_EQ(b.retries_total, 0);
  EXPECT_EQ(b.mttr_seconds, 0.0);
}

// --- Recovery policies end to end --------------------------------------------

ServingScenario kv_loss_scenario(double rate,
                                 FaultConfig::KvRestoreMode restore,
                                 bool recovery, int budget) {
  ServingScenario scenario =
      llama7b_baseline_scenario(/*chips=*/1, ir::DType::kInt4);
  scenario.fault.enabled = true;
  scenario.fault.seed = 11;
  scenario.fault.kv_loss_rate_per_s = rate;
  scenario.fault.kv_restore = restore;
  scenario.fault.recovery_enabled = recovery;
  scenario.fault.retry_budget = budget;
  return scenario;
}

// The recovery tests use the low-variance SLO lengths (prompts 128..256,
// outputs 64..128): every request completes well inside the mean
// inter-fault interval, so full recovery is actually reachable.  (The
// Zipf tail is NOT: a 1024-output request that takes longer to recompute
// than the inter-fault gap livelocks against any finite retry budget —
// which is exactly the budget-exhaustion shed path, tested separately.)
std::vector<Request> recovery_requests() {
  return generate_requests(slo_chat_stream(
      /*seed=*/42, /*num_requests=*/60, /*arrival_rate=*/15.0));
}

TEST(RecoveryTest, RecomputeRetriesThroughBackoffAndEveryRequestFinishes) {
  const std::vector<Request> requests = recovery_requests();
  const ServingMetrics metrics = run_serving(
      kv_loss_scenario(/*rate=*/0.5, FaultConfig::KvRestoreMode::kRecompute,
                       /*recovery=*/true, /*budget=*/16),
      requests);
  EXPECT_GT(metrics.fault.kv_losses, 0);
  EXPECT_GT(metrics.retries_total, 0);
  EXPECT_EQ(metrics.retries_total, metrics.fault.retries);
  EXPECT_EQ(metrics.fault.dropped, 0);
  EXPECT_EQ(metrics.counters.shed_fault, 0);
  // Victims lose their computed prompt/decode work...
  EXPECT_GT(metrics.wasted_recompute_tokens, 0);
  // ...but backoff re-admission finishes them all: full availability, and
  // each recompute span lands one MTTR sample.
  EXPECT_EQ(metrics.completed, metrics.num_requests);
  EXPECT_EQ(metrics.availability, 1.0);
  EXPECT_GT(metrics.mttr_seconds, 0.0);
  EXPECT_EQ(metrics.fault.host_restores, 0);
}

TEST(RecoveryTest, RecoveryOffShedsEveryVictim) {
  const std::vector<Request> requests = recovery_requests();
  const ServingMetrics metrics = run_serving(
      kv_loss_scenario(/*rate=*/0.5, FaultConfig::KvRestoreMode::kRecompute,
                       /*recovery=*/false, /*budget=*/16),
      requests);
  ASSERT_GT(metrics.fault.kv_losses, 0);
  // Each kv-loss event strikes exactly one resident; with recovery off
  // every victim is dropped with shed cause "fault".
  EXPECT_EQ(metrics.fault.dropped, metrics.fault.kv_losses);
  EXPECT_EQ(metrics.counters.shed_fault, metrics.fault.dropped);
  EXPECT_EQ(metrics.retries_total, 0);
  EXPECT_EQ(metrics.completed + metrics.counters.shed_fault,
            metrics.num_requests);
  EXPECT_LT(metrics.availability, 1.0);
  // No recovery ever happens: no repair samples.
  EXPECT_EQ(metrics.mttr_seconds, 0.0);
}

TEST(RecoveryTest, ExhaustedRetryBudgetIsAFaultShed) {
  const std::vector<Request> requests = recovery_requests();
  // Budget 0: recovery is ON but the first fault is already fatal.
  const ServingMetrics metrics = run_serving(
      kv_loss_scenario(/*rate=*/0.5, FaultConfig::KvRestoreMode::kRecompute,
                       /*recovery=*/true, /*budget=*/0),
      requests);
  ASSERT_GT(metrics.fault.kv_losses, 0);
  EXPECT_EQ(metrics.retries_total, 0);
  EXPECT_EQ(metrics.fault.dropped, metrics.fault.kv_losses);
  EXPECT_EQ(metrics.counters.shed_fault, metrics.fault.dropped);
}

TEST(RecoveryTest, HostRestoreRecoversInPlaceWithoutRetries) {
  const std::vector<Request> requests = recovery_requests();
  const ServingMetrics metrics = run_serving(
      kv_loss_scenario(/*rate=*/0.5, FaultConfig::KvRestoreMode::kHostRestore,
                       /*recovery=*/true, /*budget=*/16),
      requests);
  ASSERT_GT(metrics.fault.kv_losses, 0);
  // The baseline deployment's host pool holds every shadow: every loss is
  // restored in place — the sequence never leaves the engine, so no
  // retries, no drops, no wasted recompute, full availability.
  EXPECT_EQ(metrics.fault.host_restores, metrics.fault.kv_losses);
  EXPECT_EQ(metrics.retries_total, 0);
  EXPECT_EQ(metrics.fault.dropped, 0);
  EXPECT_EQ(metrics.wasted_recompute_tokens, 0);
  EXPECT_GT(metrics.fault.host_restore_bytes, 0.0);
  EXPECT_EQ(metrics.completed, metrics.num_requests);
  EXPECT_EQ(metrics.availability, 1.0);
  // Each restore's PCIe re-fetch time is an MTTR sample.
  EXPECT_GT(metrics.mttr_seconds, 0.0);
}

TEST(RecoveryTest, DeviceFailureRestartsAndRecoveryReplaysTheWork) {
  const std::vector<Request> requests = recovery_requests();
  ServingScenario scenario =
      llama7b_baseline_scenario(/*chips=*/1, ir::DType::kInt4);
  scenario.fault.enabled = true;
  scenario.fault.seed = 11;
  scenario.fault.device_failure_rate_per_s = 0.4;
  scenario.fault.device_restart_s = 0.5;
  scenario.fault.retry_budget = 32;
  const ServingMetrics faulty = run_serving(scenario, requests);

  ServingScenario clean = scenario;
  clean.fault.enabled = false;
  const ServingMetrics baseline = run_serving(clean, requests);

  ASSERT_GT(faulty.fault.device_failures, 0);
  EXPECT_GT(faulty.retries_total, 0);
  EXPECT_GT(faulty.wasted_recompute_tokens, 0);
  // Recovery replays everything the failures destroyed...
  EXPECT_EQ(faulty.completed, faulty.num_requests);
  EXPECT_EQ(faulty.availability, 1.0);
  // ...at the cost of downtime + rework: the storm run takes longer.
  EXPECT_GT(faulty.makespan, baseline.makespan);
}

// --- Scheduler: degraded mode + fault removal --------------------------------

TEST(DegradedSchedulerTest, DegradedModeCapsResidentBatch) {
  KvCacheManager kv(/*capacity=*/1e6, /*bytes_per_token=*/1.0);
  SchedulerConfig config;
  config.max_batch = 8;
  ContinuousBatchScheduler scheduler(config, &kv);
  for (std::int64_t id = 0; id < 8; ++id) {
    scheduler.enqueue(make_request(id, 16, 64));
  }
  scheduler.set_degraded(true, /*degraded_max_batch=*/2);
  EXPECT_TRUE(scheduler.degraded());
  auto step = scheduler.next_step();
  ASSERT_TRUE(step.has_value());
  EXPECT_LE(scheduler.running_count(), 2u);
  for (int i = 0; i < 4 && scheduler.next_step(); ++i) {
    EXPECT_LE(scheduler.running_count(), 2u);
  }
  // Lifting degradation restores the configured batch.
  scheduler.set_degraded(false, 0);
  while (scheduler.running_count() < 8 && scheduler.next_step()) {
  }
  EXPECT_EQ(scheduler.running_count(), 8u);
  while (scheduler.next_step()) {
  }
  EXPECT_TRUE(kv.audit());
}

TEST(ShedSwapTest, FaultRemovalOfSwappedRequestReleasesHostBytes) {
  // Two long-output requests against a 40-token device budget under
  // kSwapToHost: the newest is swapped out under growth pressure.  A
  // fault that removes the SWAPPED request must release its host-pool
  // bytes (not leak them), and the engine must stay audit-clean.
  KvCacheManager kv(/*capacity=*/40.0, /*bytes_per_token=*/1.0,
                    EvictionPolicy::kSwapToHost);
  SchedulerConfig config;
  ContinuousBatchScheduler scheduler(config, &kv);
  scheduler.enqueue(make_request(0, 10, 12));
  scheduler.enqueue(make_request(1, 10, 12));

  while (scheduler.swapped_count() == 0) {
    ASSERT_TRUE(scheduler.next_step().has_value()) << "no swap ever happened";
  }
  const std::int64_t swapped_id = kv.swapped(0) ? 0 : 1;
  ASSERT_TRUE(kv.swapped(swapped_id));
  ASSERT_GT(kv.host_used(), 0.0);

  Request removed;
  ContinuousBatchScheduler::ResidentInfo progress;
  ASSERT_TRUE(scheduler.remove_for_fault(swapped_id, &removed, &progress));
  EXPECT_EQ(removed.id, swapped_id);
  EXPECT_EQ(progress.prefilled, 10);  // full prompt was computed pre-swap
  EXPECT_DOUBLE_EQ(kv.host_used(), 0.0);  // host pool released
  EXPECT_EQ(scheduler.swapped_count(), 0u);
  EXPECT_FALSE(kv.swapped(swapped_id));
  EXPECT_TRUE(kv.audit());
  EXPECT_TRUE(scheduler.aggregates_consistent());
  // Removing an id that is nowhere in the engine reports false.
  EXPECT_FALSE(scheduler.remove_for_fault(swapped_id, &removed));

  // Re-admitted through the fault path, both requests still finish
  // exactly once each from here.
  scheduler.requeue_after_fault(removed, progress.generated > 0);
  std::map<std::int64_t, std::int64_t> finish_count;
  while (auto step = scheduler.next_step()) {
    for (std::int64_t id : step->finished_ids) ++finish_count[id];
    EXPECT_TRUE(kv.audit());
    EXPECT_TRUE(scheduler.aggregates_consistent());
  }
  EXPECT_EQ(finish_count[0], 1);
  EXPECT_EQ(finish_count[1], 1);
  EXPECT_DOUBLE_EQ(kv.host_used(), 0.0);
  EXPECT_DOUBLE_EQ(kv.used(), 0.0);
}

TEST(ShedSwapTest, SwapCountersReconcileWithTraceEventsUnderHorizonShed) {
  // Swap-heavy pressured deployment cut by a short horizon: the swap
  // counters must reconcile with the trace exactly — same event counts,
  // same PCIe bytes — at EVERY cut point, and at least one cut must land
  // while a request's KV sits in the host pool (that request is shed
  // mid-swap; ShedSwapTest above proves the scheduler releases its host
  // bytes).  A 600-token device budget holds barely one SLO request's
  // peak (384 tokens) plus a neighbour's prefill, so decode growth keeps
  // forcing the newest resident out to the host pool; scanning a few
  // deterministic horizons makes the mid-swap cut robust to scheduling
  // details rather than pinned to one lucky timestamp.
  const std::vector<Request> requests = generate_requests(slo_chat_stream(
      /*seed=*/42, /*num_requests=*/200, /*arrival_rate=*/40.0));
  bool shed_while_swapped = false;
  for (const Seconds horizon : {6.0, 6.5, 7.0, 7.5, 8.0}) {
    ServingScenario scenario = llama7b_pressured_scenario(
        /*chips=*/1, ir::DType::kInt4, EvictionPolicy::kSwapToHost,
        /*chunk_tokens=*/0, /*kv_budget_tokens=*/600);
    scenario.max_sim_seconds = horizon;
    scenario.trace.enabled = true;

    ServingTrace trace;
    const ServingMetrics metrics = run_serving(scenario, requests, nullptr,
                                               &trace);
    std::int64_t swap_outs = 0, swap_ins = 0;
    Bytes out_bytes = 0, in_bytes = 0;
    std::map<std::int64_t, std::int64_t> net_swapped;  // id -> outs - ins
    std::vector<std::int64_t> shed_ids;
    for (const TraceEvent& event : trace.events()) {
      switch (event.type) {
        case TraceEventType::kSwapOut:
          swap_outs += 1;
          out_bytes += event.bytes;
          net_swapped[event.request_id] += 1;
          break;
        case TraceEventType::kSwapIn:
          swap_ins += 1;
          in_bytes += event.bytes;
          net_swapped[event.request_id] -= 1;
          break;
        case TraceEventType::kShed:
          shed_ids.push_back(event.request_id);
          break;
        default:
          break;
      }
    }
    ASSERT_GT(swap_outs, 0) << "scenario failed to exercise swapping";
    EXPECT_EQ(swap_outs, metrics.counters.preemptions_swap);
    EXPECT_EQ(swap_ins, metrics.counters.swap_ins);
    EXPECT_DOUBLE_EQ(out_bytes, metrics.counters.swap_out_bytes);
    EXPECT_DOUBLE_EQ(in_bytes, metrics.counters.swap_in_bytes);
    ASSERT_GT(metrics.counters.shed_horizon, 0);
    for (std::int64_t id : shed_ids) {
      if (net_swapped[id] > 0) shed_while_swapped = true;
    }
    // A request whose KV ended in the host pool cannot have completed:
    // every net-swapped-out id must carry a terminal shed event.
    for (const auto& [id, net] : net_swapped) {
      if (net > 0) {
        EXPECT_NE(std::find(shed_ids.begin(), shed_ids.end(), id),
                  shed_ids.end())
            << "request " << id << " ended swapped out but was never shed";
      }
    }
  }
  EXPECT_TRUE(shed_while_swapped)
      << "no horizon cut ever landed while a request was swapped out";
}

// --- Sweep: fault-rate x recovery axes ---------------------------------------

TEST(SweepFaultAxisTest, SentinelsInheritAndLabelsStayStable) {
  ServingSweep sweep;
  sweep.arrival_rates = {10.0};
  sweep.models = {llama7b_baseline_scenario(1, ir::DType::kInt4).model};
  sweep.chip_counts = {1};
  sweep.policies = {EvictionPolicy::kPreemptNewest};
  sweep.base = fault_storm_scenario(ir::DType::kInt4, /*recovery=*/true,
                                    /*horizon_seconds=*/10.0);
  sweep.stream = slo_chat_stream(/*seed=*/42, /*num_requests=*/80,
                                 /*arrival_rate=*/1.0);
  sweep.validate();

  ServingSweep bad = sweep;
  bad.fault_rates = {-0.5};
  EXPECT_THROW(bad.validate(), ConfigError);
  bad = sweep;
  bad.fault_recovery = {2};
  EXPECT_THROW(bad.validate(), ConfigError);

  // Axes {0, 1} x {off, on}: rate 0 disables the subsystem per cell.
  sweep.fault_rates = {0.0, 1.0};
  sweep.fault_recovery = {0, 1};
  const std::vector<SweepCellResult> cells = run_serving_sweep(sweep);
  ASSERT_EQ(cells.size(), 4u);
  EXPECT_EQ(cells[0].fault_rate, 0.0);
  EXPECT_EQ(cells[0].fault_recovery, 0);
  EXPECT_EQ(cells[3].fault_rate, 1.0);
  EXPECT_EQ(cells[3].fault_recovery, 1);
  // Rate-0 cells never inject: identical metrics whatever the recovery
  // axis says, and no fault activity at all.
  EXPECT_EQ(cells[0].metrics.fault.kv_losses, 0);
  EXPECT_EQ(cells[0].metrics.completed, cells[1].metrics.completed);
  EXPECT_EQ(cells[0].metrics.goodput_tokens_per_second,
            cells[1].metrics.goodput_tokens_per_second);
  EXPECT_EQ(cells[0].metrics.availability, cells[1].metrics.availability);
  // Full-rate cells do inject, and the storm moves the metrics.
  EXPECT_GT(cells[3].metrics.fault.kv_losses +
                cells[3].metrics.fault.stalls +
                cells[3].metrics.fault.device_failures,
            0);
  EXPECT_LT(cells[3].metrics.availability, cells[1].metrics.availability);

  // Default sentinels: ONE cell, base fault config inherited untouched —
  // pre-fault grids expand unchanged.
  ServingSweep inherit = sweep;
  inherit.fault_rates = {-1};
  inherit.fault_recovery = {-1};
  const std::vector<SweepCellResult> inherited = run_serving_sweep(inherit);
  ASSERT_EQ(inherited.size(), 1u);
  EXPECT_EQ(inherited[0].fault_rate, -1.0);
  EXPECT_EQ(inherited[0].fault_recovery, -1);
  // The sentinel cell runs the base config as-is (recovery on, full
  // storm): bit-identical to the explicit rate-1/recovery-on cell.
  EXPECT_EQ(inherited[0].metrics.completed, cells[3].metrics.completed);
  EXPECT_EQ(inherited[0].metrics.availability, cells[3].metrics.availability);
  EXPECT_EQ(inherited[0].metrics.retries_total, cells[3].metrics.retries_total);
}

TEST(SweepFaultAxisTest, StormMetricsAreBitIdenticalAcrossThreadCounts) {
  ServingSweep sweep;
  sweep.arrival_rates = {10.0};
  sweep.models = {llama7b_baseline_scenario(1, ir::DType::kInt4).model};
  sweep.chip_counts = {1};
  sweep.policies = {EvictionPolicy::kPreemptNewest};
  sweep.admission_policies = {"edf"};
  sweep.fault_rates = {0.5, 1.0};
  sweep.fault_recovery = {0, 1};
  sweep.base = fault_storm_scenario(ir::DType::kInt4, /*recovery=*/true,
                                    /*horizon_seconds=*/15.0);
  sweep.stream = slo_chat_stream(/*seed=*/42, /*num_requests=*/150,
                                 /*arrival_rate=*/1.0);

  SweepOptions serial;
  serial.threads = 1;
  SweepOptions parallel;
  parallel.threads = 4;
  const std::vector<SweepCellResult> a = run_serving_sweep(sweep, serial);
  const std::vector<SweepCellResult> b = run_serving_sweep(sweep, parallel);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].metrics.availability, b[i].metrics.availability);
    EXPECT_EQ(a[i].metrics.completed, b[i].metrics.completed);
    EXPECT_EQ(a[i].metrics.retries_total, b[i].metrics.retries_total);
    EXPECT_EQ(a[i].metrics.wasted_recompute_tokens,
              b[i].metrics.wasted_recompute_tokens);
    EXPECT_EQ(a[i].metrics.mttr_seconds, b[i].metrics.mttr_seconds);
    EXPECT_EQ(a[i].metrics.fault.kv_losses, b[i].metrics.fault.kv_losses);
    EXPECT_EQ(a[i].metrics.slo_goodput_tokens_per_second,
              b[i].metrics.slo_goodput_tokens_per_second);
  }
}

// --- The pinned resilience frontier (schema-v8 "resilience" block) -----------

TEST(ResilienceFrontierTest, RecoveryStrictlyBeatsRecoveryOffOnTheStorm) {
  // The EXACT workload the bench's resilience block runs: the canonical
  // fault storm (fixed fault seed kFaultStormSeed) over the canonical
  // deadline-carrying chat stream.  This pin is the frontier's headline:
  // recovery-on strictly wins BOTH availability and SLO goodput.
  const std::vector<Request> requests = generate_requests(slo_chat_stream(
      /*seed=*/42, kSloFrontierRequests, /*arrival_rate=*/10.0));
  const ServingMetrics off = run_serving(
      fault_storm_scenario(ir::DType::kInt4, /*recovery=*/false), requests);
  const ServingMetrics on = run_serving(
      fault_storm_scenario(ir::DType::kInt4, /*recovery=*/true), requests);

  // Same seeded storm either way: the injected events are identical.
  EXPECT_EQ(on.fault.stalls, off.fault.stalls);
  EXPECT_EQ(on.fault.device_failures, off.fault.device_failures);

  EXPECT_GT(on.availability, off.availability);
  EXPECT_GT(on.slo_goodput_tokens_per_second,
            off.slo_goodput_tokens_per_second);
  // Recovery machinery actually engaged on the winning side...
  EXPECT_GT(on.retries_total, 0);
  EXPECT_GT(on.fault.host_restores, 0);
  EXPECT_EQ(on.counters.shed_fault, 0);
  // ...while the off side bled requests and recomputed nothing.
  EXPECT_GT(off.counters.shed_fault, 0);
  EXPECT_EQ(off.retries_total, 0);
  EXPECT_LT(on.wasted_recompute_tokens, off.wasted_recompute_tokens);
  // The sustained-failure detector saw the storm on both sides.
  EXPECT_GT(on.fault.degrade_enters, 0);
  EXPECT_GT(off.fault.degrade_enters, 0);
}

TEST(ResilienceFrontierTest, AvailabilityRecomputedFromTraceEventsMatches) {
  const std::vector<Request> requests = generate_requests(slo_chat_stream(
      /*seed=*/42, kSloFrontierRequests, /*arrival_rate=*/10.0));
  ServingScenario scenario =
      fault_storm_scenario(ir::DType::kInt4, /*recovery=*/true);
  scenario.trace.enabled = true;  // in-memory events only

  ServingTrace trace;
  const ServingMetrics metrics = run_serving(scenario, requests, nullptr,
                                             &trace);
  std::int64_t arrives = 0, finishes = 0, faults = 0, recovers = 0;
  std::int64_t fault_sheds = 0, degrades = 0;
  for (const TraceEvent& event : trace.events()) {
    switch (event.type) {
      case TraceEventType::kArrive: arrives += 1; break;
      case TraceEventType::kFinish: finishes += 1; break;
      case TraceEventType::kFault: faults += 1; break;
      case TraceEventType::kRecover: recovers += 1; break;
      case TraceEventType::kDegrade: degrades += 1; break;
      case TraceEventType::kShed:
        if (event.aux == 2) fault_sheds += 1;
        break;
      default: break;
    }
  }
  ASSERT_GT(arrives, 0);
  // THE acceptance pin: availability recomputed purely from lifecycle
  // trace events equals ServingMetrics exactly — not approximately.
  EXPECT_EQ(metrics.availability,
            static_cast<double>(finishes) / static_cast<double>(arrives));
  EXPECT_EQ(finishes, metrics.completed);
  // Fault/recovery traffic reconciles with the stats block, event for
  // event: every counted fault and every recovery emitted its event.
  EXPECT_EQ(faults, metrics.fault.stalls + metrics.fault.kv_losses +
                        metrics.fault.device_failures);
  EXPECT_EQ(recovers, metrics.retries_total + metrics.fault.host_restores);
  EXPECT_EQ(fault_sheds, metrics.counters.shed_fault);
  EXPECT_EQ(degrades,
            metrics.fault.degrade_enters + metrics.fault.degrade_exits);
  // The registry publishes the same resilience numbers the bench reads.
  const auto& gauges = metrics.registry.gauges();
  ASSERT_EQ(gauges.count("engine.availability"), 1u);
  EXPECT_EQ(gauges.at("engine.availability"), metrics.availability);
  ASSERT_EQ(gauges.count("engine.mttr_s"), 1u);
  EXPECT_EQ(gauges.at("engine.mttr_s"), metrics.mttr_seconds);
  EXPECT_EQ(metrics.registry.counters().at("fault.kv_losses"),
            metrics.fault.kv_losses);
  EXPECT_EQ(metrics.registry.counters().at("engine.retries_total"),
            metrics.retries_total);
}

}  // namespace
}  // namespace cimtpu::serving
