// Memory system and ICI fabric tests.

#include <gtest/gtest.h>

#include "mem/link.h"
#include "mem/memory.h"
#include "tech/technology.h"

namespace cimtpu::mem {
namespace {

class MemoryTest : public ::testing::Test {
 protected:
  MemoryTest()
      : energy_(tech::calibration_node()), memory_(MemorySystemSpec{}, energy_) {}
  tech::EnergyModel energy_;
  MemorySystem memory_;
};

TEST_F(MemoryTest, DefaultSpecMatchesTableI) {
  const MemorySystemSpec& spec = memory_.spec();
  EXPECT_DOUBLE_EQ(spec.vmem.capacity, 16 * MiB);
  EXPECT_DOUBLE_EQ(spec.cmem.capacity, 128 * MiB);
  EXPECT_DOUBLE_EQ(spec.hbm.capacity, 8 * GiB);
  EXPECT_DOUBLE_EQ(spec.hbm.bandwidth, 614 * GBps);
}

TEST_F(MemoryTest, TransferTimes) {
  // 614 MB over 614 GB/s = 1 ms.
  EXPECT_NEAR(memory_.hbm_time(614e6), 1e-3, 1e-9);
  EXPECT_GT(memory_.cmem_time(1 * GiB), memory_.vmem_time(1 * GiB));
}

TEST_F(MemoryTest, StageInSlowuestLegDominates) {
  const Bytes bytes = 1 * GiB;
  // From HBM the HBM leg is slowest.
  EXPECT_DOUBLE_EQ(memory_.stage_in_time(ir::Residency::kHbm, bytes),
                   memory_.hbm_time(bytes));
  // From CMEM the OCI leg is slowest.
  EXPECT_DOUBLE_EQ(memory_.stage_in_time(ir::Residency::kCmem, bytes),
                   memory_.cmem_time(bytes));
  EXPECT_DOUBLE_EQ(memory_.stage_in_time(ir::Residency::kVmem, bytes),
                   memory_.vmem_time(bytes));
}

TEST_F(MemoryTest, StageInEnergyAccumulatesLegs) {
  const Bytes bytes = 1e6;
  const Joules from_hbm = memory_.stage_in_energy(ir::Residency::kHbm, bytes);
  const Joules from_cmem = memory_.stage_in_energy(ir::Residency::kCmem, bytes);
  const Joules from_vmem = memory_.stage_in_energy(ir::Residency::kVmem, bytes);
  EXPECT_GT(from_hbm, from_cmem);
  EXPECT_GT(from_cmem, from_vmem);
  EXPECT_NEAR(from_hbm - from_cmem, memory_.hbm_energy(bytes), 1e-12);
}

TEST_F(MemoryTest, FitsCmem) {
  EXPECT_TRUE(memory_.fits_cmem(100 * MiB));
  EXPECT_TRUE(memory_.fits_cmem(100 * MiB, 28 * MiB));
  EXPECT_FALSE(memory_.fits_cmem(100 * MiB, 29 * MiB));
  EXPECT_FALSE(memory_.fits_cmem(129 * MiB));
}

TEST(MemorySpecTest, ValidationCatchesNonsense) {
  MemorySystemSpec spec;
  spec.vmem.capacity = 0;
  EXPECT_THROW(spec.validate(), ConfigError);

  MemorySystemSpec swapped;
  swapped.vmem.capacity = 256 * MiB;  // larger than CMEM
  EXPECT_THROW(swapped.validate(), ConfigError);
}

TEST(OverlapTest, DoubleBufferedSteadyState) {
  // Fully memory-bound: latency ~ memory + exposure.
  EXPECT_NEAR(overlap_double_buffered(1e-3, 10e-3, 10.0), 11e-3, 1e-9);
  // Fully compute-bound: memory hidden except first tile.
  EXPECT_NEAR(overlap_double_buffered(10e-3, 1e-3, 10.0), 10.1e-3, 1e-9);
}

TEST(OverlapTest, SerialIsSum) {
  EXPECT_DOUBLE_EQ(overlap_serial(2e-3, 3e-3), 5e-3);
}

TEST(OverlapTest, MoreTilesShrinkExposure) {
  const Seconds few = overlap_double_buffered(5e-3, 5e-3, 2.0);
  const Seconds many = overlap_double_buffered(5e-3, 5e-3, 100.0);
  EXPECT_GT(few, many);
}

// --- ICI fabric -----------------------------------------------------------------

class IciTest : public ::testing::Test {
 protected:
  IciTest() : energy_(tech::calibration_node()), fabric_(IciLinkSpec{}, energy_) {}
  tech::EnergyModel energy_;
  IciFabric fabric_;
};

TEST_F(IciTest, SingleChipAllReduceIsFree) {
  EXPECT_DOUBLE_EQ(fabric_.all_reduce_time(1e9, 1), 0.0);
  EXPECT_DOUBLE_EQ(fabric_.all_reduce_energy(1e9, 1), 0.0);
}

TEST_F(IciTest, RingAllReduceFormula) {
  // 2(p-1)/p * bytes / effective_bw + 2(p-1) hops.
  const Bytes bytes = 1e9;
  const int chips = 4;
  const double effective_bw = 2 * 100e9;  // two links used
  const Seconds expected =
      2.0 * 3.0 / 4.0 * bytes / effective_bw + 6.0 * 1e-6;
  EXPECT_NEAR(fabric_.all_reduce_time(bytes, chips), expected, 1e-12);
}

TEST_F(IciTest, AllReduceTimeGrowsWithChips) {
  const Bytes bytes = 1e8;
  EXPECT_LT(fabric_.all_reduce_time(bytes, 2),
            fabric_.all_reduce_time(bytes, 4));
  EXPECT_LT(fabric_.all_reduce_time(bytes, 4),
            fabric_.all_reduce_time(bytes, 8));
}

TEST_F(IciTest, P2pIncludesLatencyAndBandwidth) {
  EXPECT_NEAR(fabric_.p2p_time(100e9 /* 1 s at link rate */), 1.0 + 1e-6,
              1e-9);
  EXPECT_DOUBLE_EQ(fabric_.p2p_time(0), 0.0);
}

TEST_F(IciTest, EnergyProportionalToTraffic) {
  EXPECT_NEAR(fabric_.p2p_energy(2e6), 2 * fabric_.p2p_energy(1e6), 1e-12);
  EXPECT_GT(fabric_.all_reduce_energy(1e6, 4),
            fabric_.all_reduce_energy(1e6, 2));
}

TEST(IciSpecTest, InvalidSpecThrows) {
  tech::EnergyModel energy(tech::calibration_node());
  IciLinkSpec bad;
  bad.links_per_chip = 0;
  EXPECT_THROW(IciFabric(bad, energy), ConfigError);
}

}  // namespace
}  // namespace cimtpu::mem
