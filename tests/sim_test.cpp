// Simulator tests: per-op latency composition, group rollups, result
// algebra, and the workload runners.

#include <gtest/gtest.h>

#include "arch/chip.h"
#include "arch/tpu_config.h"
#include "sim/simulator.h"
#include "sim/workload_runner.h"

namespace cimtpu::sim {
namespace {

class SimulatorTest : public ::testing::Test {
 protected:
  SimulatorTest()
      : baseline_(arch::tpu_v4i_baseline()),
        cim_(arch::cim_tpu_default()),
        base_sim_(baseline_),
        cim_sim_(cim_) {}

  arch::TpuChip baseline_;
  arch::TpuChip cim_;
  Simulator base_sim_;
  Simulator cim_sim_;
};

TEST_F(SimulatorTest, OpLatencyAtLeastMaxOfComputeAndMemory) {
  for (const ir::Op& op :
       {ir::make_weight_gemm("g", "G", 8192, 7168, 7168, ir::DType::kInt8),
        ir::make_weight_gemm("v", "G", 8, 7168, 7168, ir::DType::kInt8),
        ir::make_softmax("s", "A", 1024, 1024, ir::DType::kInt8)}) {
    const OpResult result = base_sim_.run_op(op);
    EXPECT_GE(result.latency,
              std::max(result.compute_time, result.memory_time));
    EXPECT_LE(result.latency,
              result.compute_time + 2 * result.memory_time + 1e-12);
  }
}

TEST_F(SimulatorTest, ComputeBoundVsMemoryBoundRegimes) {
  // Big square GEMM: compute-bound.  Skinny GEMV on HBM weights:
  // memory-bound.
  const OpResult gemm = base_sim_.run_op(
      ir::make_weight_gemm("g", "G", 8192, 7168, 7168, ir::DType::kInt8));
  EXPECT_GT(gemm.compute_time, gemm.memory_time);
  const OpResult gemv = base_sim_.run_op(
      ir::make_weight_gemm("v", "G", 1, 7168, 7168, ir::DType::kInt8));
  EXPECT_GT(gemv.memory_time, 0.0);
}

TEST_F(SimulatorTest, MatmulUsesMxuVectorOpsUseVpu) {
  const OpResult matmul = base_sim_.run_op(
      ir::make_weight_gemm("g", "G", 64, 128, 128, ir::DType::kInt8));
  EXPECT_TRUE(matmul.on_mxu);
  EXPECT_GT(matmul.mxu_busy_energy, 0);
  EXPECT_GT(matmul.units_used, 0);

  const OpResult softmax =
      base_sim_.run_op(ir::make_softmax("s", "A", 64, 128, ir::DType::kInt8));
  EXPECT_FALSE(softmax.on_mxu);
  EXPECT_DOUBLE_EQ(softmax.mxu_busy_energy, 0);
  EXPECT_GT(softmax.vpu_energy, 0);
}

TEST_F(SimulatorTest, BackgroundPowerChargedForWholeOp) {
  const OpResult softmax = base_sim_.run_op(
      ir::make_softmax("s", "A", 8192, 1024, ir::DType::kInt8));
  // All 4 MXUs idle during a VPU op.
  const Joules expected_idle =
      4.0 * softmax.latency * baseline_.mxu().idle_power(ir::DType::kInt8);
  EXPECT_NEAR(softmax.mxu_idle_energy, expected_idle, expected_idle * 1e-9);
  EXPECT_GT(softmax.mxu_leakage_energy, 0);
}

TEST_F(SimulatorTest, IdleEnergyNonNegativeForMatmuls) {
  for (std::int64_t m : {1, 8, 128, 8192}) {
    const OpResult result = base_sim_.run_op(
        ir::make_weight_gemm("g", "G", m, 7168, 7168, ir::DType::kInt8));
    EXPECT_GE(result.mxu_idle_energy, 0.0) << "m=" << m;
  }
}

TEST_F(SimulatorTest, GraphRollupConsistent) {
  const ir::Graph graph = models::build_decode_layer(
      models::gpt3_30b(), 8, 1280, ir::Residency::kCmem);
  const GraphResult result = base_sim_.run(graph);
  ASSERT_EQ(result.ops.size(), graph.size());
  Seconds latency = 0;
  Joules busy = 0;
  for (const OpResult& op : result.ops) {
    latency += op.latency;
    busy += op.mxu_busy_energy;
  }
  EXPECT_NEAR(result.latency, latency, latency * 1e-12);
  EXPECT_NEAR(result.mxu_busy_energy, busy, busy * 1e-12);
}

TEST_F(SimulatorTest, GroupSummariesPartitionTotals) {
  const ir::Graph graph = models::build_dit_block(
      models::dit_xl_2(), models::dit_geometry_512(), 8);
  const GraphResult result = base_sim_.run(graph);
  Seconds group_latency = 0;
  Joules group_energy = 0;
  for (const auto& [name, group] : result.groups) {
    group_latency += group.latency;
    group_energy += group.mxu_energy;
  }
  EXPECT_NEAR(group_latency, result.latency, result.latency * 1e-9);
  EXPECT_NEAR(group_energy, result.mxu_energy(), result.mxu_energy() * 1e-9);
}

TEST_F(SimulatorTest, ScaleMultipliesTotals) {
  const ir::Graph graph = models::build_decode_layer(
      models::gpt3_30b(), 8, 1280, ir::Residency::kCmem);
  GraphResult result = base_sim_.run(graph);
  const Seconds latency = result.latency;
  const Joules energy = result.total_energy();
  result.scale(48.0);
  EXPECT_NEAR(result.latency, 48 * latency, latency * 1e-9);
  EXPECT_NEAR(result.total_energy(), 48 * energy, energy * 1e-9);
}

TEST_F(SimulatorTest, AccumulateAddsStages) {
  const ir::Graph graph = models::build_decode_layer(
      models::gpt3_30b(), 8, 1280, ir::Residency::kCmem);
  GraphResult a = base_sim_.run(graph);
  const GraphResult b = base_sim_.run(graph);
  const Seconds single = a.latency;
  a += b;
  EXPECT_NEAR(a.latency, 2 * single, single * 1e-9);
  EXPECT_EQ(a.groups.size(), b.groups.size());
}

// --- Workload runners ----------------------------------------------------------------

TEST_F(SimulatorTest, KvResidencySelection) {
  // GPT3-30B batch 8: kv 1280 fits one operand in CMEM; batch 32 does not.
  EXPECT_EQ(kv_residency_for(baseline_, models::gpt3_30b(), 8, 1280),
            ir::Residency::kCmem);
  EXPECT_EQ(kv_residency_for(baseline_, models::gpt3_30b(), 32, 1280),
            ir::Residency::kHbm);
}

TEST_F(SimulatorTest, DecodeLatencyGrowsWithKv) {
  const auto short_kv =
      run_decode_layer(base_sim_, models::gpt3_30b(), 8, 1025);
  const auto long_kv =
      run_decode_layer(base_sim_, models::gpt3_30b(), 8, 1536);
  EXPECT_GT(long_kv.latency, short_kv.latency);
}

TEST_F(SimulatorTest, LlmInferenceComposition) {
  LlmScenario scenario;
  scenario.model = models::gpt3_30b();
  scenario.model.num_layers = 4;  // keep the test fast
  scenario.batch = 8;
  scenario.input_len = 128;
  scenario.output_len = 16;
  const LlmRunResult run = run_llm_inference(base_sim_, scenario);
  EXPECT_NEAR(run.total.latency, run.prefill.latency + run.decode.latency,
              run.total.latency * 1e-9);
  EXPECT_GT(run.decode_latency_per_token, 0);
  EXPECT_GT(run.prefill_latency_per_layer, 0);
  // Decode ran output_len steps over num_layers layers.
  EXPECT_NEAR(run.decode.latency,
              run.decode_latency_per_token * scenario.output_len,
              run.decode.latency * 1e-9);
}

TEST_F(SimulatorTest, DecodeDominatesLongGenerations) {
  LlmScenario scenario;
  scenario.model = models::gpt3_30b();
  scenario.model.num_layers = 2;
  scenario.input_len = 1024;
  scenario.output_len = 512;
  const LlmRunResult run = run_llm_inference(base_sim_, scenario);
  EXPECT_GT(run.decode.latency, run.prefill.latency);
}

TEST_F(SimulatorTest, DitInferenceIncludesPrePost) {
  DitScenario scenario;
  scenario.model = models::dit_xl_2();
  scenario.geometry = models::dit_geometry_512();
  scenario.batch = 8;
  const GraphResult run = run_dit_inference(base_sim_, scenario);
  const GraphResult block =
      run_dit_block(base_sim_, scenario.model, scenario.geometry, 8);
  EXPECT_GT(run.latency, block.latency * scenario.model.num_layers);
}

TEST_F(SimulatorTest, SamplingStepsScaleDit) {
  DitScenario one;
  one.model = models::dit_xl_2();
  one.geometry = models::dit_geometry_512();
  one.batch = 1;
  DitScenario ten = one;
  ten.sampling_steps = 10;
  EXPECT_NEAR(run_dit_inference(base_sim_, ten).latency,
              10 * run_dit_inference(base_sim_, one).latency, 1e-6);
}

TEST_F(SimulatorTest, BreakdownCoreDominates) {
  // Fig. 2(d): transformer layers must dominate end-to-end latency.
  LlmScenario scenario;
  scenario.model = models::llama2_13b();
  scenario.batch = 1;
  scenario.input_len = 128;
  scenario.output_len = 32;
  const BreakdownResult result = run_llm_breakdown(base_sim_, scenario);
  EXPECT_GT(result.core.latency / result.total(), 0.90);
}

}  // namespace
}  // namespace cimtpu::sim

namespace cimtpu::sim {
namespace {

TEST(Int4WorkloadTest, DecodeFasterAtInt4) {
  // INT4 halves weight traffic: HBM-bound decode speeds up ~2x on the CIM
  // chip (where weight ingest is already hidden).
  arch::TpuChip chip(arch::cim_tpu_default());
  Simulator simulator(chip);
  models::TransformerConfig int8_model = models::gpt3_30b();
  models::TransformerConfig int4_model = models::gpt3_30b();
  int4_model.dtype = ir::DType::kInt4;
  const auto int8_run = run_decode_layer(simulator, int8_model, 8, 1280);
  const auto int4_run = run_decode_layer(simulator, int4_model, 8, 1280);
  EXPECT_LT(int4_run.latency, int8_run.latency * 0.7);
  EXPECT_LT(int4_run.mxu_energy(), int8_run.mxu_energy());
}

}  // namespace
}  // namespace cimtpu::sim
