// INT8 quantization tests: round-trip error, GEMM error bounds, and
// integration with the bit-exact CIM compute path.

#include <gtest/gtest.h>

#include <cmath>

#include "cim/cim_grid.h"
#include "common/rng.h"
#include "common/status.h"
#include "models/quantization.h"

namespace cimtpu::models {
namespace {

std::vector<float> random_floats(Rng& rng, std::size_t n, double lo,
                                 double hi) {
  std::vector<float> v(n);
  for (auto& x : v) x = static_cast<float>(rng.uniform(lo, hi));
  return v;
}

TEST(QuantizationTest, ScaleCoversMaxAbs) {
  const QuantParams params = choose_scale({-3.0f, 1.0f, 2.54f});
  EXPECT_FLOAT_EQ(params.scale, 3.0f / 127.0f);
}

TEST(QuantizationTest, AllZeroTensorGetsUnitScale) {
  const QuantParams params = choose_scale({0.0f, 0.0f});
  EXPECT_FLOAT_EQ(params.scale, 1.0f);
}

TEST(QuantizationTest, RoundTripErrorWithinHalfStep) {
  Rng rng(11);
  const auto values = random_floats(rng, 1000, -5.0, 5.0);
  const QuantParams params = choose_scale(values);
  const auto q = quantize(values, params);
  const auto back = dequantize(q, params);
  for (std::size_t i = 0; i < values.size(); ++i) {
    EXPECT_NEAR(back[i], values[i], params.scale * 0.5f + 1e-6) << i;
  }
}

TEST(QuantizationTest, ExtremesSaturateSymmetrically) {
  QuantParams params;
  params.scale = 0.1f;
  const auto q = quantize({100.0f, -100.0f}, params);
  EXPECT_EQ(q[0], 127);
  EXPECT_EQ(q[1], -127);  // symmetric: -128 unused
}

TEST(QuantizationTest, QuantizedGemmTracksFloatReference) {
  Rng rng(12);
  const int m = 4, k = 64, n = 8;
  const auto a = random_floats(rng, static_cast<std::size_t>(m) * k, -1, 1);
  const auto w = random_floats(rng, static_cast<std::size_t>(k) * n, -1, 1);
  const QuantParams ap = choose_scale(a);
  const QuantParams wp = choose_scale(w);
  const auto qa = quantize(a, ap);
  const auto qw = quantize(w, wp);
  const auto quantized = quantized_gemm(qa, ap, qw, wp, m, k, n);
  const auto reference = float_gemm(a, w, m, k, n);
  const float bound = quantized_gemm_error_bound(ap, wp, k);
  for (std::size_t i = 0; i < reference.size(); ++i) {
    EXPECT_NEAR(quantized[i], reference[i], bound) << i;
    // The statistical error should be far below the worst-case bound.
    EXPECT_NEAR(quantized[i], reference[i], bound * 0.25f) << i;
  }
}

TEST(QuantizationTest, QuantizedGemmMatchesCimGridPath) {
  // The quantized integer GEMM must be bit-identical whether computed
  // directly or through the functional CIM grid — the property that makes
  // INT8 model evaluation on the CIM-MXU exact.
  Rng rng(13);
  const int m = 3, k = 16, n = 32;
  const auto a = random_floats(rng, static_cast<std::size_t>(m) * k, -2, 2);
  const auto w = random_floats(rng, static_cast<std::size_t>(k) * n, -2, 2);
  const QuantParams ap = choose_scale(a);
  const QuantParams wp = choose_scale(w);
  const auto qa = quantize(a, ap);
  const auto qw = quantize(w, wp);

  cim::CimMacroSpec spec;
  spec.input_channels = 16;
  spec.output_channels = 32;
  spec.banks = 4;
  cim::CimGrid grid(1, 1, spec);
  const auto int_result = grid.gemm(qa, qw, m, k, n);

  const auto via_quantized = quantized_gemm(qa, ap, qw, wp, m, k, n);
  const float scale = ap.scale * wp.scale;
  for (std::size_t i = 0; i < via_quantized.size(); ++i) {
    EXPECT_FLOAT_EQ(via_quantized[i],
                    scale * static_cast<float>(int_result[i]));
  }
}

TEST(QuantizationTest, ErrorBoundGrowsWithK) {
  QuantParams p;
  p.scale = 0.01f;
  EXPECT_LT(quantized_gemm_error_bound(p, p, 64),
            quantized_gemm_error_bound(p, p, 7168));
}

TEST(QuantizationTest, Validation) {
  QuantParams bad;
  bad.scale = 0.0f;
  EXPECT_THROW(quantize({1.0f}, bad), InternalError);
  EXPECT_THROW(choose_scale({}), InternalError);
  QuantParams ok;
  EXPECT_THROW(quantized_gemm({1, 2}, ok, {1}, ok, 1, 1, 1), InternalError);
}

class QuantSweepTest : public ::testing::TestWithParam<int> {};

TEST_P(QuantSweepTest, GemmErrorBoundHolds) {
  const int k = GetParam();
  Rng rng(1000 + k);
  const int m = 2, n = 4;
  const auto a = random_floats(rng, static_cast<std::size_t>(m) * k, -3, 3);
  const auto w = random_floats(rng, static_cast<std::size_t>(k) * n, -3, 3);
  const QuantParams ap = choose_scale(a);
  const QuantParams wp = choose_scale(w);
  const auto quantized =
      quantized_gemm(quantize(a, ap), ap, quantize(w, wp), wp, m, k, n);
  const auto reference = float_gemm(a, w, m, k, n);
  const float bound = quantized_gemm_error_bound(ap, wp, k);
  for (std::size_t i = 0; i < reference.size(); ++i) {
    EXPECT_LE(std::fabs(quantized[i] - reference[i]), bound);
  }
}

INSTANTIATE_TEST_SUITE_P(Ks, QuantSweepTest,
                         ::testing::Values(1, 8, 72, 128, 1024));

}  // namespace
}  // namespace cimtpu::models
