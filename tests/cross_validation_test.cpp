// Cross-validation between the analytic cost models and the functional
// models, plus randomized whole-simulator invariants ("fuzz" sweeps).

#include <gtest/gtest.h>

#include "cim/cim_grid.h"
#include "cim/cim_mxu.h"
#include "common/rng.h"
#include "sim/simulator.h"
#include "tech/technology.h"

namespace cimtpu {
namespace {

// --- Analytic CIM-MXU vs functional CimGrid -------------------------------------

TEST(CimCrossValidationTest, WeightTrafficMatchesFunctionalGrid) {
  // For shapes with tasks >= cores (no replication), the analytic model's
  // stationary_bytes_loaded must equal the functional grid's actual
  // weight-I/O traffic, modulo the bank-granular N padding the analytic
  // model applies (the functional grid pads to the full core).
  tech::EnergyModel energy(tech::calibration_node());
  tech::AreaModel area(tech::calibration_node());
  cim::CimMxuSpec spec;
  spec.grid_rows = 2;
  spec.grid_cols = 2;
  cim::CimMxu analytic(spec, energy, area);
  cim::CimGrid functional(2, 2);  // full 128x256 cores

  struct Shape {
    int m, k, n;
  };
  for (const Shape& shape : {Shape{4, 512, 1024}, Shape{2, 256, 512},
                             Shape{1, 384, 768}}) {
    systolic::GemmWorkload w{shape.m, shape.k, shape.n, 1, ir::DType::kInt8};
    const auto cost = analytic.evaluate(w);

    Rng rng(shape.m * 7 + shape.k);
    std::vector<std::int8_t> a(static_cast<std::size_t>(shape.m) * shape.k);
    std::vector<std::int8_t> wm(static_cast<std::size_t>(shape.k) * shape.n);
    for (auto& x : a) x = static_cast<std::int8_t>(rng.uniform_int(-8, 8));
    for (auto& x : wm) x = static_cast<std::int8_t>(rng.uniform_int(-8, 8));
    cim::CimGrid::RunStats stats;
    functional.gemm(a, wm, shape.m, shape.k, shape.n, &stats);

    // n is a multiple of 256 in these shapes, so both paddings agree.
    EXPECT_DOUBLE_EQ(cost.stationary_bytes_loaded,
                     static_cast<double>(stats.weight_bytes_written))
        << shape.m << "x" << shape.k << "x" << shape.n;
  }
}

TEST(CimCrossValidationTest, TaskCountMatchesFunctionalGrid) {
  cim::CimGrid functional(2, 2);
  cim::CimGrid::RunStats stats;
  Rng rng(3);
  const int m = 2, k = 300, n = 520;  // Kt = 3, Nt = 3
  std::vector<std::int8_t> a(static_cast<std::size_t>(m) * k, 1);
  std::vector<std::int8_t> w(static_cast<std::size_t>(k) * n, 1);
  functional.gemm(a, w, m, k, n, &stats);
  EXPECT_EQ(stats.tasks, 9);  // ceil(300/128) * ceil(520/256) = 3 * 3
}

// --- Randomized simulator invariants ----------------------------------------------

ir::Graph random_graph(Rng& rng, int ops) {
  ir::Graph graph("fuzz");
  for (int i = 0; i < ops; ++i) {
    const std::string name = "op" + std::to_string(i);
    switch (rng.uniform_int(0, 4)) {
      case 0:
        graph.add(ir::make_weight_gemm(
            name, "G", rng.uniform_int(1, 4096), rng.uniform_int(1, 4096),
            rng.uniform_int(1, 4096), ir::DType::kInt8));
        break;
      case 1:
        graph.add(ir::make_attention_gemm(
            name, "A", rng.uniform_int(1, 64), rng.uniform_int(1, 512),
            rng.uniform_int(1, 256), rng.uniform_int(1, 2048),
            ir::DType::kInt8,
            rng.uniform() < 0.5 ? ir::Residency::kCmem
                                : ir::Residency::kHbm));
        break;
      case 2:
        graph.add(ir::make_softmax(name, "A", rng.uniform_int(1, 4096),
                                   rng.uniform_int(1, 2048),
                                   ir::DType::kInt8));
        break;
      case 3:
        graph.add(ir::make_layer_norm(name, "L", rng.uniform_int(1, 4096),
                                      rng.uniform_int(1, 8192),
                                      ir::DType::kInt8));
        break;
      default:
        graph.add(ir::make_elementwise(name, "E",
                                       rng.uniform_int(1, 1 << 20), 2.0,
                                       ir::DType::kInt8));
        break;
    }
  }
  return graph;
}

class SimulatorFuzzTest : public ::testing::TestWithParam<int> {};

TEST_P(SimulatorFuzzTest, InvariantsHoldOnRandomGraphs) {
  Rng rng(GetParam());
  arch::TpuChip baseline(arch::tpu_v4i_baseline());
  arch::TpuChip cim(arch::cim_tpu_default());
  sim::Simulator base_sim(baseline);
  sim::Simulator cim_sim(cim);

  const ir::Graph graph = random_graph(rng, 12);
  for (sim::Simulator* simulator : {&base_sim, &cim_sim}) {
    const sim::GraphResult result = simulator->run(graph);
    EXPECT_GT(result.latency, 0.0);
    EXPECT_GE(result.mxu_busy_energy, 0.0);
    EXPECT_GE(result.mxu_idle_energy, 0.0);
    EXPECT_GT(result.mxu_leakage_energy, 0.0);
    EXPECT_GE(result.vpu_energy, 0.0);
    EXPECT_GE(result.memory_energy, 0.0);
    EXPECT_EQ(result.ops.size(), graph.size());

    Seconds latency_sum = 0;
    for (const auto& op : result.ops) {
      EXPECT_GE(op.latency,
                std::max(op.compute_time, op.memory_time) * 0.999999)
          << op.name;
      EXPECT_GE(op.utilization, 0.0);
      EXPECT_LE(op.utilization, 1.0 + 1e-9);
      latency_sum += op.latency;
    }
    EXPECT_NEAR(latency_sum, result.latency, result.latency * 1e-9);
  }
}

TEST_P(SimulatorFuzzTest, CimNeverBurnsMoreMxuEnergyOnMatmulGraphs) {
  // For INT8 matmul-only graphs, the CIM chip's total MXU energy must be
  // strictly below the baseline's (the macro is 9.43x better and idle
  // power is lower; latency differences cannot overturn an order of
  // magnitude).
  Rng rng(GetParam() * 7919);
  arch::TpuChip baseline(arch::tpu_v4i_baseline());
  arch::TpuChip cim(arch::cim_tpu_default());
  sim::Simulator base_sim(baseline);
  sim::Simulator cim_sim(cim);

  ir::Graph graph("matmuls");
  for (int i = 0; i < 6; ++i) {
    graph.add(ir::make_weight_gemm(
        "g" + std::to_string(i), "G", rng.uniform_int(1, 8192),
        rng.uniform_int(64, 8192), rng.uniform_int(64, 8192),
        ir::DType::kInt8));
  }
  const sim::GraphResult base = base_sim.run(graph);
  const sim::GraphResult ours = cim_sim.run(graph);
  EXPECT_LT(ours.mxu_energy(), base.mxu_energy());
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimulatorFuzzTest,
                         ::testing::Range(1, 11));

}  // namespace
}  // namespace cimtpu
