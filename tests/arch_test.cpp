// Chip configuration and assembly tests: Table I presets, Table IV design
// points, validation, and derived chip figures.

#include <gtest/gtest.h>

#include "arch/chip.h"
#include "arch/tpu_config.h"

namespace cimtpu::arch {
namespace {

TEST(TpuConfigTest, BaselineMatchesTableI) {
  const TpuChipConfig config = tpu_v4i_baseline();
  EXPECT_EQ(config.mxu_kind, MxuKind::kDigitalSystolic);
  EXPECT_EQ(config.mxu_count, 4);
  EXPECT_EQ(config.systolic.rows, 128);
  EXPECT_EQ(config.systolic.cols, 128);
  EXPECT_EQ(config.vpu.sublanes, 8);
  EXPECT_EQ(config.vpu.lanes, 128);
  EXPECT_DOUBLE_EQ(config.memory.vmem.capacity, 16 * MiB);
  EXPECT_DOUBLE_EQ(config.memory.cmem.capacity, 128 * MiB);
  EXPECT_DOUBLE_EQ(config.memory.hbm.capacity, 8 * GiB);
  EXPECT_DOUBLE_EQ(config.memory.hbm.bandwidth, 614 * GBps);
  EXPECT_EQ(config.ici.links_per_chip, 2);
  EXPECT_DOUBLE_EQ(config.ici.bandwidth_per_link, 100 * GBps);
  EXPECT_EQ(config.technology, "7nm");
  EXPECT_NO_THROW(config.validate());
}

TEST(TpuConfigTest, CimDefaultMatchesTableI) {
  const TpuChipConfig config = cim_tpu_default();
  EXPECT_EQ(config.mxu_kind, MxuKind::kCim);
  EXPECT_EQ(config.mxu_count, 4);
  EXPECT_EQ(config.cim.grid_rows, 16);
  EXPECT_EQ(config.cim.grid_cols, 8);
  EXPECT_EQ(config.cim.core_rows, 128);
  EXPECT_EQ(config.cim.core_cols, 256);
  // Same peak as the baseline (Table II parity).
  EXPECT_DOUBLE_EQ(config.total_macs_per_cycle(),
                   tpu_v4i_baseline().total_macs_per_cycle());
}

TEST(TpuConfigTest, DesignAAndB) {
  const TpuChipConfig a = design_a();
  EXPECT_EQ(a.mxu_count, 4);
  EXPECT_EQ(a.cim.grid_rows, 8);
  EXPECT_EQ(a.cim.grid_cols, 8);
  // Design A: half the baseline peak (paper Sec. V-A).
  EXPECT_DOUBLE_EQ(a.total_macs_per_cycle(),
                   tpu_v4i_baseline().total_macs_per_cycle() / 2);

  const TpuChipConfig b = design_b();
  EXPECT_EQ(b.mxu_count, 8);
  EXPECT_EQ(b.cim.grid_rows, 16);
  EXPECT_EQ(b.cim.grid_cols, 8);
  // Design B: twice the baseline peak.
  EXPECT_DOUBLE_EQ(b.total_macs_per_cycle(),
                   tpu_v4i_baseline().total_macs_per_cycle() * 2);
}

TEST(TpuConfigTest, CustomDesignPointNames) {
  const TpuChipConfig config = cim_tpu(2, 8, 8);
  EXPECT_EQ(config.name, "cim-tpu-2x(8x8)");
  EXPECT_DOUBLE_EQ(config.total_macs_per_cycle(), 2.0 * 64 * 128);
}

TEST(TpuConfigTest, EffectiveClockDefaultsToNode) {
  TpuChipConfig config = tpu_v4i_baseline();
  EXPECT_DOUBLE_EQ(config.effective_clock(), 1.05 * GHz);  // 7nm nominal
  config.clock = 940 * MHz;
  EXPECT_DOUBLE_EQ(config.effective_clock(), 940 * MHz);
  config.technology = "22nm";
  config.clock = 0;
  EXPECT_DOUBLE_EQ(config.effective_clock(), 1.0 * GHz);
}

TEST(TpuConfigTest, ValidationErrors) {
  TpuChipConfig bad = tpu_v4i_baseline();
  bad.mxu_count = 0;
  EXPECT_THROW(bad.validate(), ConfigError);
  bad = tpu_v4i_baseline();
  bad.technology = "5nm";
  EXPECT_THROW(bad.validate(), ConfigError);
  bad = cim_tpu_default();
  bad.cim.grid_rows = -1;
  EXPECT_THROW(bad.validate(), ConfigError);
}

TEST(TpuConfigTest, MxuKindNames) {
  EXPECT_EQ(mxu_kind_name(MxuKind::kDigitalSystolic), "digital-systolic");
  EXPECT_EQ(mxu_kind_name(MxuKind::kCim), "cim");
}

// --- Chip assembly ------------------------------------------------------------------

TEST(ChipTest, BaselinePeakMatchesTpuV4i) {
  TpuChip chip(tpu_v4i_baseline());
  // 65536 MACs * 2 ops * 1.05 GHz = 137.6 TOPS (the paper quotes
  // 138 TFLOPS BF16 peak for TPUv4i).
  EXPECT_NEAR(chip.peak_ops_per_second() / 1e12, 137.6, 0.5);
}

TEST(ChipTest, CimChipSamePeakHalfMxuArea) {
  TpuChip base(tpu_v4i_baseline());
  TpuChip cim(cim_tpu_default());
  EXPECT_NEAR(base.peak_ops_per_second(), cim.peak_ops_per_second(), 1e6);
  EXPECT_NEAR(base.area_report().mxus / cim.area_report().mxus, 2.02, 0.01);
}

TEST(ChipTest, AreaReportComponents) {
  TpuChip chip(tpu_v4i_baseline());
  const ChipAreaReport report = chip.area_report();
  EXPECT_GT(report.mxus, 0);
  EXPECT_GT(report.vpu, 0);
  EXPECT_GT(report.vmem, 0);
  EXPECT_GT(report.cmem, report.vmem);  // 128 MiB vs 16 MiB
  EXPECT_NEAR(report.total(),
              report.mxus + report.vpu + report.vmem + report.cmem, 1e-9);
}

TEST(ChipTest, LeakageAndIdlePowerPositive) {
  TpuChip chip(cim_tpu_default());
  EXPECT_GT(chip.mxu_leakage_power(), 0);
  EXPECT_GT(chip.mxu_idle_power(ir::DType::kInt8), 0);
  EXPECT_LT(chip.mxu_idle_power(ir::DType::kInt8),
            chip.mxu().peak_dynamic_power(ir::DType::kInt8) *
                chip.mxu_count());
}

TEST(ChipTest, MxuCountScalesDesignPoints) {
  TpuChip two(cim_tpu(2, 16, 8));
  TpuChip eight(cim_tpu(8, 16, 8));
  EXPECT_NEAR(eight.peak_ops_per_second() / two.peak_ops_per_second(), 4.0,
              1e-9);
  EXPECT_NEAR(eight.area_report().mxus / two.area_report().mxus, 4.0, 1e-9);
}

TEST(ChipTest, TechnologyAffectsAreaAndClock) {
  TpuChipConfig cfg22 = tpu_v4i_baseline();
  cfg22.technology = "22nm";
  TpuChip chip22(cfg22);
  TpuChip chip7(tpu_v4i_baseline());
  EXPECT_GT(chip22.area_report().mxus, chip7.area_report().mxus);
  EXPECT_LT(chip22.clock(), chip7.clock());
}

TEST(ChipTest, InvalidConfigThrowsOnConstruction) {
  TpuChipConfig bad = tpu_v4i_baseline();
  bad.memory.vmem.capacity = 0;
  EXPECT_THROW(TpuChip{bad}, ConfigError);
}

}  // namespace
}  // namespace cimtpu::arch
