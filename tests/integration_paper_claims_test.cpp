// Integration tests pinning the reproduction to the paper's published
// results.  Each claim is asserted within a documented tolerance band
// (EXPERIMENTS.md records the bands and the rationale); a regression that
// silently drifts the model away from the paper fails here.

#include <gtest/gtest.h>

#include "arch/chip.h"
#include "arch/tpu_config.h"
#include "common/math_util.h"
#include "sim/workload_runner.h"

namespace cimtpu {
namespace {

class PaperClaimsTest : public ::testing::Test {
 protected:
  PaperClaimsTest()
      : baseline_(arch::tpu_v4i_baseline()),
        cim_(arch::cim_tpu_default()),
        base_sim_(baseline_),
        cim_sim_(cim_),
        gpt3_(models::gpt3_30b()),
        dit_(models::dit_xl_2()),
        geometry_(models::dit_geometry_512()) {}

  arch::TpuChip baseline_;
  arch::TpuChip cim_;
  sim::Simulator base_sim_;
  sim::Simulator cim_sim_;
  models::TransformerConfig gpt3_;
  models::TransformerConfig dit_;
  models::DitGeometry geometry_;
};

// --- Table II -------------------------------------------------------------------

TEST_F(PaperClaimsTest, TableII_MacroEnergyEfficiency943x) {
  const double ratio =
      cim_.mxu().tops_per_watt(ir::DType::kInt8, 1 * GHz) /
      baseline_.mxu().tops_per_watt(ir::DType::kInt8, 1 * GHz);
  EXPECT_NEAR(ratio, 9.43, 0.02);
}

TEST_F(PaperClaimsTest, TableII_MacroAreaEfficiency202x) {
  const double ratio = cim_.mxu().tops_per_mm2(1 * GHz) /
                       baseline_.mxu().tops_per_mm2(1 * GHz);
  EXPECT_NEAR(ratio, 2.02, 0.02);
}

TEST_F(PaperClaimsTest, TableII_SameMacsPerCycle) {
  EXPECT_DOUBLE_EQ(baseline_.mxu().macs_per_cycle(),
                   cim_.mxu().macs_per_cycle());
}

TEST_F(PaperClaimsTest, CimMxuHalfAreaSamePeak) {
  // Sec. IV-B: "the same peak performance as the baseline MXU with only
  // 50% area".
  EXPECT_NEAR(cim_.mxu().area() / baseline_.mxu().area(), 0.5, 0.02);
}

// --- Fig. 6: LLM prefill ----------------------------------------------------------

TEST_F(PaperClaimsTest, Fig6_PrefillLatencyWithin5Pct) {
  // Paper: +2.43% (CIM marginally slower on compute-bound prefill).
  const auto base = sim::run_prefill_layer(base_sim_, gpt3_, 8, 1024);
  const auto cim = sim::run_prefill_layer(cim_sim_, gpt3_, 8, 1024);
  const double delta = cim.latency / base.latency - 1.0;
  EXPECT_GT(delta, 0.0) << "CIM must be slightly slower in prefill";
  EXPECT_LT(delta, 0.05);
}

TEST_F(PaperClaimsTest, Fig6_PrefillEnergyNear921x) {
  const auto base = sim::run_prefill_layer(base_sim_, gpt3_, 8, 1024);
  const auto cim = sim::run_prefill_layer(cim_sim_, gpt3_, 8, 1024);
  const double ratio = base.mxu_energy() / cim.mxu_energy();
  EXPECT_TRUE(within_band(ratio, 8.0, 11.0)) << ratio << " vs paper 9.21";
}

TEST_F(PaperClaimsTest, Fig6_PrefillLinearLayersDominate) {
  // Paper Sec. IV-B: QKV/Proj/FFN take 84.9% of prefill latency.
  const auto base = sim::run_prefill_layer(base_sim_, gpt3_, 8, 1024);
  Seconds linear = 0;
  for (const char* group : {"QKV Gen", "Proj.", "FFN1", "FFN2"}) {
    linear += base.groups.at(group).latency;
  }
  EXPECT_TRUE(within_band(linear / base.latency, 0.75, 0.95));
}

// --- Fig. 6: LLM decode ------------------------------------------------------------

TEST_F(PaperClaimsTest, Fig6_DecodeLatencyReductionNear299) {
  // Paper: -29.9%.
  const auto base = sim::run_decode_layer(base_sim_, gpt3_, 8, 1280);
  const auto cim = sim::run_decode_layer(cim_sim_, gpt3_, 8, 1280);
  const double delta = 1.0 - cim.latency / base.latency;
  EXPECT_TRUE(within_band(delta, 0.22, 0.38)) << delta << " vs paper 0.299";
}

TEST_F(PaperClaimsTest, Fig6_DecodeEnergyNear134x) {
  const auto base = sim::run_decode_layer(base_sim_, gpt3_, 8, 1280);
  const auto cim = sim::run_decode_layer(cim_sim_, gpt3_, 8, 1280);
  const double ratio = base.mxu_energy() / cim.mxu_energy();
  EXPECT_TRUE(within_band(ratio, 11.0, 16.0)) << ratio << " vs paper 13.4";
}

TEST_F(PaperClaimsTest, Fig6_DecodeAttentionShareSignificant) {
  // Paper: attention = 33.7% of baseline decode latency.  Our model lands
  // lower (the baseline ramp amortizes per instance); assert the
  // qualitative claim: attention is a first-order contributor.
  const auto base = sim::run_decode_layer(base_sim_, gpt3_, 8, 1280);
  const double share = base.groups.at("Attention").latency / base.latency;
  EXPECT_TRUE(within_band(share, 0.15, 0.40)) << share << " vs paper 0.337";
}

TEST_F(PaperClaimsTest, Fig6_DecodeAttentionGemvSpeedup) {
  // Paper: Q*K^T / S*V^T GEMV layers accelerate by ~72.7%.
  const auto base = sim::run_decode_layer(base_sim_, gpt3_, 8, 1280);
  const auto cim = sim::run_decode_layer(cim_sim_, gpt3_, 8, 1280);
  const double reduction = 1.0 - cim.groups.at("Attention").latency /
                                     base.groups.at("Attention").latency;
  EXPECT_TRUE(within_band(reduction, 0.55, 0.85))
      << reduction << " vs paper 0.727";
}

// --- Fig. 6: DiT -------------------------------------------------------------------

TEST_F(PaperClaimsTest, Fig6_DitLatencyCimWins) {
  // Paper: -6.67%; our model lands at a smaller win (see EXPERIMENTS.md),
  // but the sign and the mechanism must hold.
  const auto base = sim::run_dit_block(base_sim_, dit_, geometry_, 8);
  const auto cim = sim::run_dit_block(cim_sim_, dit_, geometry_, 8);
  const double delta = 1.0 - cim.latency / base.latency;
  EXPECT_TRUE(within_band(delta, 0.0, 0.12)) << delta << " vs paper 0.0667";
}

TEST_F(PaperClaimsTest, Fig6_DitEnergyNear104x) {
  const auto base = sim::run_dit_block(base_sim_, dit_, geometry_, 8);
  const auto cim = sim::run_dit_block(cim_sim_, dit_, geometry_, 8);
  const double ratio = base.mxu_energy() / cim.mxu_energy();
  EXPECT_TRUE(within_band(ratio, 8.5, 12.5)) << ratio << " vs paper 10.4";
}

TEST_F(PaperClaimsTest, Fig6_DitAttentionGemmImprovement) {
  // Paper: 30.3% improvement on Q*K^T / S*V^T in DiT.  Compare the
  // attention-GEMM ops directly (softmax excluded).
  const auto base = sim::run_dit_block(base_sim_, dit_, geometry_, 8);
  const auto cim = sim::run_dit_block(cim_sim_, dit_, geometry_, 8);
  auto attention_gemm_latency = [](const sim::GraphResult& result) {
    Seconds total = 0;
    for (const auto& op : result.ops) {
      if (op.on_mxu && op.group == "Attention") total += op.latency;
    }
    return total;
  };
  const double reduction =
      1.0 - attention_gemm_latency(cim) / attention_gemm_latency(base);
  EXPECT_TRUE(within_band(reduction, 0.20, 0.40))
      << reduction << " vs paper 0.303";
}

TEST_F(PaperClaimsTest, Fig6_DitSoftmaxIsMajorContributor) {
  // Paper: softmax takes up to 36.9% of DiT latency.
  const auto base = sim::run_dit_block(base_sim_, dit_, geometry_, 8);
  Seconds softmax = 0;
  for (const auto& op : base.ops) {
    if (!op.on_mxu && op.group == "Attention") softmax += op.latency;
  }
  EXPECT_TRUE(within_band(softmax / base.latency, 0.20, 0.45));
}

// --- Fig. 7 -------------------------------------------------------------------------

TEST_F(PaperClaimsTest, Fig7_SmallestConfigEnergyNear273x) {
  // Paper: 2x(8x8) saves 27.3x MXU energy on LLM inference.
  sim::LlmScenario scenario;
  scenario.model = gpt3_;
  scenario.model.num_layers = 2;  // ratios are layer-count invariant
  scenario.batch = 8;
  scenario.input_len = 1024;
  scenario.output_len = 512;  // paper Fig. 7 scenario (layers reduced instead)
  arch::TpuChip small(arch::cim_tpu(2, 8, 8));
  sim::Simulator small_sim(small);
  const auto base = sim::run_llm_inference(base_sim_, scenario);
  const auto cim = sim::run_llm_inference(small_sim, scenario);
  const double ratio = base.total.mxu_energy() / cim.total.mxu_energy();
  EXPECT_TRUE(within_band(ratio, 20.0, 36.0)) << ratio << " vs paper 27.3";
}

TEST_F(PaperClaimsTest, Fig7_DoublingBigConfigBarelyHelpsLlm) {
  // Paper: 8x(16x16) has 2x the peak of 8x(16x8) but only ~2.5% better
  // LLM performance, at ~+95% energy.
  sim::LlmScenario scenario;
  scenario.model = gpt3_;
  scenario.model.num_layers = 2;
  scenario.batch = 8;
  scenario.input_len = 1024;
  scenario.output_len = 512;
  arch::TpuChip big(arch::cim_tpu(8, 16, 8));
  arch::TpuChip bigger(arch::cim_tpu(8, 16, 16));
  sim::Simulator big_sim(big), bigger_sim(bigger);
  const auto a = sim::run_llm_inference(big_sim, scenario);
  const auto b = sim::run_llm_inference(bigger_sim, scenario);
  const double perf_gain = 1.0 - b.total.latency / a.total.latency;
  EXPECT_TRUE(within_band(perf_gain, 0.0, 0.10)) << perf_gain;
  const double energy_increase =
      b.total.mxu_energy() / a.total.mxu_energy() - 1.0;
  EXPECT_TRUE(within_band(energy_increase, 0.60, 1.10))
      << energy_increase << " vs paper 0.95";
}

TEST_F(PaperClaimsTest, Fig7_DitLatencyOrderingByPeak) {
  // Compute-bound DiT: more/larger CIM-MXUs -> lower latency (paper:
  // -25.3% at 4x(16x16), -33.8% at 8x(16x16)).
  sim::DitScenario scenario;
  scenario.model = dit_;
  scenario.geometry = geometry_;
  scenario.batch = 8;
  auto latency_of = [&](const arch::TpuChipConfig& config) {
    arch::TpuChip chip(config);
    sim::Simulator simulator(chip);
    return sim::run_dit_inference(simulator, scenario).latency;
  };
  const Seconds base = latency_of(arch::tpu_v4i_baseline());
  const Seconds small = latency_of(arch::cim_tpu(2, 8, 8));
  const Seconds mid = latency_of(arch::cim_tpu(4, 16, 16));
  const Seconds big = latency_of(arch::cim_tpu(8, 16, 16));
  EXPECT_GT(small, base);  // +100% in the paper
  EXPECT_LT(mid, base);
  EXPECT_LT(big, mid);
  EXPECT_TRUE(within_band(1.0 - mid / base, 0.15, 0.35)) << 1.0 - mid / base;
  EXPECT_TRUE(within_band(1.0 - big / base, 0.25, 0.45)) << 1.0 - big / base;
}

TEST_F(PaperClaimsTest, Fig7_DesignTradeoffsHold) {
  // Design A: large energy savings at modest-to-no latency cost for LLM.
  sim::LlmScenario llm;
  llm.model = gpt3_;
  llm.model.num_layers = 2;
  llm.batch = 8;
  llm.input_len = 1024;
  llm.output_len = 512;
  arch::TpuChip a(arch::design_a());
  sim::Simulator a_sim(a);
  const auto base = sim::run_llm_inference(base_sim_, llm);
  const auto design_a = sim::run_llm_inference(a_sim, llm);
  EXPECT_LT(design_a.total.latency, base.total.latency * 1.05);
  EXPECT_GT(base.total.mxu_energy() / design_a.total.mxu_energy(), 15.0);
}

// --- Headline ------------------------------------------------------------------------

TEST_F(PaperClaimsTest, Headline_MaxLlmImprovementOrder44Pct) {
  // Abstract: up to 44.2% LLM performance improvement across explored
  // designs.  Check the best design reaches a >30% improvement.
  sim::LlmScenario scenario;
  scenario.model = gpt3_;
  scenario.model.num_layers = 2;
  scenario.batch = 8;
  scenario.input_len = 1024;
  scenario.output_len = 512;
  arch::TpuChip best(arch::cim_tpu(8, 16, 16));
  sim::Simulator best_sim(best);
  const auto base = sim::run_llm_inference(base_sim_, scenario);
  const auto cim = sim::run_llm_inference(best_sim, scenario);
  EXPECT_GT(1.0 - cim.total.latency / base.total.latency, 0.30);
}

TEST_F(PaperClaimsTest, Headline_MaxDitImprovementOrder338Pct) {
  sim::DitScenario scenario;
  scenario.model = dit_;
  scenario.geometry = geometry_;
  scenario.batch = 8;
  arch::TpuChip best(arch::cim_tpu(8, 16, 16));
  sim::Simulator best_sim(best);
  const auto base = sim::run_dit_inference(base_sim_, scenario);
  const auto cim = sim::run_dit_inference(best_sim, scenario);
  EXPECT_TRUE(
      within_band(1.0 - cim.latency / base.latency, 0.25, 0.45));
}

}  // namespace
}  // namespace cimtpu
