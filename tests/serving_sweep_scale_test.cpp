// Scale-out wall for the sweep driver: the multi-process (fork) fan-out
// and the sweep-level result memo must both reproduce serial execution
// bit for bit, the binary metrics codec that carries results across the
// process boundary must round-trip exactly, and the worker-count
// environment knobs must reject malformed values loudly instead of
// silently falling back.

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "common/status.h"
#include "models/model_zoo.h"
#include "serving/metrics_codec.h"
#include "serving/sweep.h"
#include "serving/traffic_profiles.h"

namespace cimtpu::serving {
namespace {

/// Bit-identity assertion including the registry (its JSON export renders
/// every counter/gauge/histogram at full round-trip precision, so one
/// string compare covers the whole observability surface) and the
/// time-series samples.  Wall-clock fields are the only exclusions.
void expect_identical(const ServingMetrics& a, const ServingMetrics& b) {
  EXPECT_EQ(a.chips, b.chips);
  EXPECT_EQ(a.num_requests, b.num_requests);
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.generated_tokens, b.generated_tokens);
  EXPECT_EQ(a.total_steps, b.total_steps);
  EXPECT_EQ(a.prefill_steps, b.prefill_steps);
  EXPECT_EQ(a.decode_steps, b.decode_steps);
  EXPECT_EQ(a.preemptions, b.preemptions);
  EXPECT_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.sim_end_seconds, b.sim_end_seconds);
  EXPECT_EQ(a.ttft.mean, b.ttft.mean);
  EXPECT_EQ(a.tpot.p99, b.tpot.p99);
  EXPECT_EQ(a.e2e.max, b.e2e.max);
  EXPECT_EQ(a.goodput_tokens_per_second, b.goodput_tokens_per_second);
  EXPECT_EQ(a.slo_met, b.slo_met);
  EXPECT_EQ(a.slo_attainment, b.slo_attainment);
  EXPECT_EQ(a.availability, b.availability);
  EXPECT_EQ(a.jain_fairness, b.jain_fairness);
  EXPECT_EQ(a.total_energy, b.total_energy);
  EXPECT_EQ(a.energy_per_token, b.energy_per_token);
  EXPECT_EQ(a.mxu_utilization, b.mxu_utilization);
  EXPECT_EQ(a.cost_cache_entries, b.cost_cache_entries);
  EXPECT_EQ(a.cost_cache_hits, b.cost_cache_hits);
  EXPECT_EQ(a.cost_cache_misses, b.cost_cache_misses);
  EXPECT_EQ(a.registry.to_json(), b.registry.to_json());
  ASSERT_EQ(a.tenants.size(), b.tenants.size());
  for (std::size_t i = 0; i < a.tenants.size(); ++i) {
    EXPECT_EQ(a.tenants[i].tenant_id, b.tenants[i].tenant_id);
    EXPECT_EQ(a.tenants[i].generated_tokens, b.tenants[i].generated_tokens);
    EXPECT_EQ(a.tenants[i].goodput_tokens_per_second,
              b.tenants[i].goodput_tokens_per_second);
  }
  EXPECT_EQ(time_samples_json(a.timeseries), time_samples_json(b.timeseries));
}

/// Small pressured grid (4 points): preemption and swap paths both
/// execute, runs stay fast enough to repeat across drivers.
ServingSweep small_pressured_grid() {
  ServingSweep sweep;
  sweep.arrival_rates = {30.0, 60.0};
  sweep.models = {[] {
    models::TransformerConfig model = models::llama2_7b();
    model.dtype = ir::DType::kInt4;
    return model;
  }()};
  sweep.chip_counts = {1};
  sweep.policies = {EvictionPolicy::kPreemptNewest,
                    EvictionPolicy::kSwapToHost};
  sweep.base = llama7b_baseline_scenario(1, ir::DType::kInt4);
  sweep.base.kv_budget_override =
      KvCacheManager::token_bytes(sweep.base.model) * 600.0;
  sweep.stream.seed = 11;
  sweep.stream.num_requests = 50;
  sweep.stream.prompt.kind = LengthDistribution::kUniform;
  sweep.stream.prompt.min_len = 32;
  sweep.stream.prompt.max_len = 256;
  sweep.stream.output.kind = LengthDistribution::kUniform;
  sweep.stream.output.min_len = 8;
  sweep.stream.output.max_len = 64;
  return sweep;
}

// --- Sweep-level result memoization ------------------------------------------

TEST(SweepResultMemoTest, SecondSweepServedEntirelyFromStore) {
  const ServingSweep sweep = small_pressured_grid();
  SharedSweepResultStore store;
  SweepOptions options;
  options.threads = 2;
  options.result_store = &store;
  const auto cold = run_serving_sweep(sweep, options);
  ASSERT_EQ(cold.size(), 4u);
  EXPECT_EQ(store.size(), 4u);
  EXPECT_EQ(store.hits(), 0);
  EXPECT_EQ(store.misses(), 4);

  const auto warm = run_serving_sweep(sweep, options);
  EXPECT_EQ(store.size(), 4u);  // nothing re-simulated, nothing re-stored
  EXPECT_EQ(store.hits(), 4);
  for (std::size_t i = 0; i < cold.size(); ++i) {
    expect_identical(cold[i].metrics, warm[i].metrics);
  }
}

TEST(SweepResultMemoTest, MemoizedSweepMatchesMemoFreeSweep) {
  const ServingSweep sweep = small_pressured_grid();
  SharedSweepResultStore store;
  SweepOptions memoized;
  memoized.result_store = &store;
  SweepOptions plain;  // default: memo off
  const auto a = run_serving_sweep(sweep, memoized);
  const auto b = run_serving_sweep(sweep, plain);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    expect_identical(a[i].metrics, b[i].metrics);
  }
}

TEST(SweepResultMemoTest, WithinSweepDuplicatesCollapseToOneSimulation) {
  const ServingSweep sweep = small_pressured_grid();
  RequestStreamConfig stream = sweep.stream;
  stream.arrival_rate = 30.0;
  const auto requests = generate_requests(stream);
  SweepPoint point;
  point.scenario = sweep.base;
  point.requests = &requests;

  SharedSweepResultStore store;
  SweepOptions options;
  options.result_store = &store;
  const auto results = run_sweep({point, point, point}, options);
  ASSERT_EQ(results.size(), 3u);
  EXPECT_EQ(store.size(), 1u);  // one signature, simulated once
  expect_identical(results[0], results[1]);
  expect_identical(results[0], results[2]);
}

TEST(SweepResultMemoTest, SignatureSeparatesEveryConfigAxis) {
  const ServingSweep sweep = small_pressured_grid();
  RequestStreamConfig stream = sweep.stream;
  stream.arrival_rate = 30.0;
  const auto requests = generate_requests(stream);
  SweepPoint base;
  base.scenario = sweep.base;
  base.requests = &requests;
  const std::string base_sig = sweep_point_signature(base);

  // Same config, same trace: identical signature (the memo's hit case).
  SweepPoint same = base;
  EXPECT_EQ(sweep_point_signature(same), base_sig);

  // Any simulated knob separates.
  SweepPoint chips = base;
  chips.scenario.chips = 2;
  EXPECT_NE(sweep_point_signature(chips), base_sig);
  SweepPoint eviction = base;
  eviction.scenario.eviction = EvictionPolicy::kSwapToHost;
  EXPECT_NE(sweep_point_signature(eviction), base_sig);
  SweepPoint admission = base;
  admission.scenario.scheduler.admission.policy = "priority";
  EXPECT_NE(sweep_point_signature(admission), base_sig);
  SweepPoint fault = base;
  fault.scenario.fault.enabled = true;
  EXPECT_NE(sweep_point_signature(fault), base_sig);
  SweepPoint cluster = base;
  cluster.replicas = 2;
  EXPECT_NE(sweep_point_signature(cluster), base_sig);

  // Request CONTENT separates even at equal count: the signature hashes
  // every field of every request, not the trace length.
  auto nudged = requests;
  nudged[7].output_len += 1;
  SweepPoint content = base;
  content.requests = &nudged;
  EXPECT_NE(sweep_point_signature(content), base_sig);
}

TEST(SweepResultMemoTest, StoreConfirmsFullSignatureOnLookup) {
  SharedSweepResultStore store;
  ServingMetrics a;
  a.total_steps = 111;
  ServingMetrics b;
  b.total_steps = 222;
  store.put("signature-a", a);
  store.put("signature-b", b);
  EXPECT_EQ(store.size(), 2u);

  ServingMetrics out;
  ASSERT_TRUE(store.try_get("signature-a", &out));
  EXPECT_EQ(out.total_steps, 111);
  ASSERT_TRUE(store.try_get("signature-b", &out));
  EXPECT_EQ(out.total_steps, 222);
  EXPECT_FALSE(store.try_get("signature-c", &out));
  EXPECT_EQ(store.hits(), 2);
  EXPECT_EQ(store.misses(), 1);

  // First writer wins: a duplicate put never overwrites.
  ServingMetrics imposter;
  imposter.total_steps = 999;
  store.put("signature-a", imposter);
  EXPECT_EQ(store.size(), 2u);
  ASSERT_TRUE(store.try_get("signature-a", &out));
  EXPECT_EQ(out.total_steps, 111);
}

// --- Binary metrics codec ----------------------------------------------------

TEST(MetricsCodecTest, RoundTripOfARealRunIsExact) {
  const ServingSweep sweep = small_pressured_grid();
  RequestStreamConfig stream = sweep.stream;
  stream.arrival_rate = 60.0;
  const auto requests = generate_requests(stream);
  ServingScenario scenario = sweep.base;
  scenario.eviction = EvictionPolicy::kSwapToHost;
  scenario.trace.sample_interval = 0.25;  // populate the timeseries too
  const ServingMetrics original = run_serving(scenario, requests);
  ASSERT_GT(original.total_steps, 0);
  ASSERT_FALSE(original.timeseries.empty());
  ASSERT_FALSE(original.registry.counters().empty());
  ASSERT_FALSE(original.registry.histograms().empty());

  const ServingMetrics decoded =
      deserialize_metrics(serialize_metrics(original));
  expect_identical(original, decoded);
  // Wall-clock fields ride along verbatim (they are data here, not a
  // measurement).
  EXPECT_EQ(decoded.sim_wall_seconds, original.sim_wall_seconds);
  EXPECT_EQ(decoded.steps_per_second, original.steps_per_second);
}

TEST(MetricsCodecTest, TruncatedBytesFailLoudly) {
  ServingMetrics metrics;
  std::string bytes = serialize_metrics(metrics);
  bytes.resize(bytes.size() - 1);
  EXPECT_THROW(deserialize_metrics(bytes), InternalError);
  EXPECT_THROW(deserialize_metrics(serialize_metrics(metrics) + "x"),
               InternalError);
}

// --- Multi-process fan-out ---------------------------------------------------

TEST(SweepProcessesTest, ForkedSweepMatchesSerialAndThreaded) {
  const ServingSweep sweep = small_pressured_grid();
  SweepOptions serial;
  serial.threads = 1;
  SweepOptions threaded;
  threaded.threads = 4;
  SweepOptions forked;
  forked.processes = 2;
  SweepOptions forked_wide;  // more workers than points: clamped
  forked_wide.processes = 64;
  const auto a = run_serving_sweep(sweep, serial);
  const auto b = run_serving_sweep(sweep, threaded);
  const auto c = run_serving_sweep(sweep, forked);
  const auto d = run_serving_sweep(sweep, forked_wide);
  ASSERT_EQ(a.size(), 4u);
  ASSERT_EQ(b.size(), 4u);
  ASSERT_EQ(c.size(), 4u);
  ASSERT_EQ(d.size(), 4u);
  for (std::size_t i = 0; i < a.size(); ++i) {
    expect_identical(a[i].metrics, b[i].metrics);
    expect_identical(a[i].metrics, c[i].metrics);
    expect_identical(a[i].metrics, d[i].metrics);
  }
}

TEST(SweepProcessesTest, PointFailureCrossesTheProcessBoundary) {
  std::vector<Request> requests(1);
  requests[0].id = 0;
  requests[0].arrival_time = 0;
  requests[0].prompt_len = 100;
  requests[0].output_len = 4;
  SweepPoint good;
  good.scenario = llama7b_baseline_scenario(1, ir::DType::kInt4);
  good.requests = &requests;
  SweepPoint bad;
  bad.label = "tiny-budget";
  bad.scenario = llama7b_pressured_scenario(
      1, ir::DType::kInt4, EvictionPolicy::kPreemptNewest, /*chunk_tokens=*/0,
      /*kv_budget_tokens=*/10);
  bad.requests = &requests;
  SweepOptions options;
  options.processes = 2;
  try {
    run_sweep({good, bad}, options);
    FAIL() << "unservable point did not throw across the fork boundary";
  } catch (const ConfigError& error) {
    // Identical message shape to the in-process driver: point index plus
    // label, so the driver choice never changes what a failure reports.
    EXPECT_NE(std::string(error.what()).find("sweep point 1"),
              std::string::npos)
        << error.what();
    EXPECT_NE(std::string(error.what()).find("tiny-budget"), std::string::npos)
        << error.what();
  }
}

TEST(SweepProcessesTest, ResolveExplicitThenEnvThenDefault) {
  unsetenv("CIMTPU_SWEEP_PROCESSES");
  EXPECT_EQ(resolve_sweep_processes(0, 100), 1);  // opt-in: default serial
  EXPECT_EQ(resolve_sweep_processes(3, 100), 3);
  EXPECT_EQ(resolve_sweep_processes(8, 2), 2);  // clamped to the point count
  setenv("CIMTPU_SWEEP_PROCESSES", "5", /*overwrite=*/1);
  EXPECT_EQ(resolve_sweep_processes(0, 100), 5);
  EXPECT_EQ(resolve_sweep_processes(2, 100), 2);  // explicit beats env
  setenv("CIMTPU_SWEEP_PROCESSES", "0", 1);
  EXPECT_EQ(resolve_sweep_processes(0, 100), 1);  // 0 = unset
  unsetenv("CIMTPU_SWEEP_PROCESSES");
}

// --- Hardened environment parsing --------------------------------------------

TEST(SweepEnvTest, MalformedWorkerCountsRejectLoudly) {
  const char* const kVars[] = {"CIMTPU_SWEEP_THREADS",
                               "CIMTPU_SWEEP_PROCESSES"};
  const char* const kBad[] = {
      "abc",                   // non-numeric
      "12x",                   // trailing junk
      "",                      // empty
      "-3",                    // negative: a worker count cannot be
      "99999999999999999999",  // overflows long
      "2147483648",            // overflows int
  };
  for (const char* var : kVars) {
    const bool is_threads = std::string(var) == "CIMTPU_SWEEP_THREADS";
    for (const char* value : kBad) {
      setenv(var, value, /*overwrite=*/1);
      if (is_threads) {
        EXPECT_THROW(resolve_sweep_threads(0, 10), ConfigError)
            << var << "='" << value << "' was accepted";
        // An explicit count never consults the env: no throw.
        EXPECT_EQ(resolve_sweep_threads(4, 10), 4);
      } else {
        EXPECT_THROW(resolve_sweep_processes(0, 10), ConfigError)
            << var << "='" << value << "' was accepted";
        EXPECT_EQ(resolve_sweep_processes(4, 10), 4);
      }
    }
    unsetenv(var);
  }
  // Valid values still parse on both knobs.
  setenv("CIMTPU_SWEEP_THREADS", "7", 1);
  setenv("CIMTPU_SWEEP_PROCESSES", "3", 1);
  EXPECT_EQ(resolve_sweep_threads(0, 100), 7);
  EXPECT_EQ(resolve_sweep_processes(0, 100), 3);
  unsetenv("CIMTPU_SWEEP_THREADS");
  unsetenv("CIMTPU_SWEEP_PROCESSES");
}

}  // namespace
}  // namespace cimtpu::serving
