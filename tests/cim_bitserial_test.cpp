// Bit-serial CIM arithmetic: the functional model must be bit-exact
// against reference integer math for all inputs — the property that lets
// the performance model treat CIM INT8 results as exact.

#include <gtest/gtest.h>

#include <cmath>

#include "cim/bitserial.h"
#include "common/rng.h"
#include "common/status.h"

namespace cimtpu::cim {
namespace {

std::vector<std::int8_t> random_vector(Rng& rng, int length) {
  std::vector<std::int8_t> v(length);
  for (auto& x : v) x = static_cast<std::int8_t>(rng.uniform_int(-128, 127));
  return v;
}

TEST(BitOfTest, ExtractsTwosComplementBits) {
  EXPECT_EQ(bit_of(0, 0), 0);
  EXPECT_EQ(bit_of(1, 0), 1);
  EXPECT_EQ(bit_of(-1, 7), 1);  // 0xFF
  EXPECT_EQ(bit_of(-1, 0), 1);
  EXPECT_EQ(bit_of(-128, 7), 1);  // 0x80
  EXPECT_EQ(bit_of(-128, 6), 0);
  EXPECT_EQ(bit_of(127, 7), 0);
}

TEST(BitSerialDotTest, MatchesReferenceOnSimpleCases) {
  EXPECT_EQ(bit_serial_dot({1}, {1}), 1);
  EXPECT_EQ(bit_serial_dot({-1}, {1}), -1);
  EXPECT_EQ(bit_serial_dot({-128}, {-128}), 16384);
  EXPECT_EQ(bit_serial_dot({127}, {127}), 16129);
  EXPECT_EQ(bit_serial_dot({0, 0, 0}, {5, 6, 7}), 0);
  EXPECT_EQ(bit_serial_dot({1, 2, 3}, {4, 5, 6}), 32);
}

TEST(BitSerialDotTest, ExtremeValueCombinations) {
  // Every pairing of the INT8 extreme values must be exact.
  const std::int8_t extremes[] = {-128, -127, -1, 0, 1, 126, 127};
  for (std::int8_t a : extremes) {
    for (std::int8_t b : extremes) {
      EXPECT_EQ(bit_serial_dot({a}, {b}),
                static_cast<std::int32_t>(a) * static_cast<std::int32_t>(b))
          << "a=" << int(a) << " b=" << int(b);
    }
  }
}

TEST(BitSerialDotTest, SizeMismatchThrows) {
  EXPECT_THROW(bit_serial_dot({1, 2}, {1}), InternalError);
}

// Property: bit-exact equivalence over random vectors of many lengths.
class BitSerialPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(BitSerialPropertyTest, BitExactVsReference) {
  const int length = GetParam();
  Rng rng(0xC1Eull * length);
  for (int trial = 0; trial < 50; ++trial) {
    const auto x = random_vector(rng, length);
    const auto w = random_vector(rng, length);
    EXPECT_EQ(bit_serial_dot(x, w), reference_dot(x, w))
        << "length=" << length << " trial=" << trial;
  }
}

TEST_P(BitSerialPropertyTest, WorstCaseMagnitudeNoOverflow) {
  const int length = GetParam();
  // All -128 x -128: the largest possible accumulation.
  const std::vector<std::int8_t> x(length, -128);
  const std::vector<std::int8_t> w(length, -128);
  EXPECT_EQ(bit_serial_dot(x, w), 16384 * length);
}

INSTANTIATE_TEST_SUITE_P(Lengths, BitSerialPropertyTest,
                         ::testing::Values(1, 2, 3, 7, 8, 16, 31, 32, 64, 127,
                                           128));

// --- Adder tree -----------------------------------------------------------------

TEST(AdderTreeTest, SumsExactly) {
  EXPECT_EQ(adder_tree_sum({}), 0);
  EXPECT_EQ(adder_tree_sum({42}), 42);
  EXPECT_EQ(adder_tree_sum({1, 2, 3, 4, 5}), 15);
  EXPECT_EQ(adder_tree_sum({-1, 1, -2, 2}), 0);
}

TEST(AdderTreeTest, MatchesSequentialSumOnRandomData) {
  Rng rng(1234);
  for (int trial = 0; trial < 20; ++trial) {
    const int n = static_cast<int>(rng.uniform_int(1, 200));
    std::vector<std::int32_t> values(n);
    std::int64_t expected = 0;
    for (auto& v : values) {
      v = static_cast<std::int32_t>(rng.uniform_int(-100000, 100000));
      expected += v;
    }
    EXPECT_EQ(adder_tree_sum(values), expected);
  }
}

TEST(AdderTreeTest, DepthIsCeilLog2) {
  EXPECT_EQ(adder_tree_depth(1), 0);
  EXPECT_EQ(adder_tree_depth(2), 1);
  EXPECT_EQ(adder_tree_depth(3), 2);
  EXPECT_EQ(adder_tree_depth(32), 5);  // one bank's sub-array count
  EXPECT_EQ(adder_tree_depth(33), 6);
}

TEST(AdderTreeTest, DepthOfNonPositiveThrows) {
  EXPECT_THROW(adder_tree_depth(0), InternalError);
}

// --- Accumulator sizing -----------------------------------------------------------

TEST(AccumulatorBitsTest, KnownWidths) {
  // k=1: |sum| <= 2^14 -> 15 bits + sign.
  EXPECT_EQ(required_accumulator_bits(1), 15);
  // k=128 (one CIM core column): 2^21 -> 22 bits.
  EXPECT_EQ(required_accumulator_bits(128), 22);
}

TEST(AccumulatorBitsTest, WidthSufficientForWorstCase) {
  for (int k : {1, 2, 16, 128, 1024}) {
    const int bits = required_accumulator_bits(k);
    const double worst = static_cast<double>(k) * 16384.0;
    EXPECT_GE(std::pow(2.0, bits - 1), worst) << "k=" << k;
  }
}

TEST(AccumulatorBitsTest, MonotonicInK) {
  EXPECT_LE(required_accumulator_bits(16), required_accumulator_bits(128));
  EXPECT_LE(required_accumulator_bits(128), required_accumulator_bits(4096));
}

}  // namespace
}  // namespace cimtpu::cim
