// Roofline analysis tests: binding-resource classification must match the
// paper's characterization (prefill compute-bound, decode memory-bound).

#include <gtest/gtest.h>

#include <cmath>

#include "sim/roofline.h"
#include "sim/workload_runner.h"

namespace cimtpu::sim {
namespace {

class RooflineTest : public ::testing::Test {
 protected:
  RooflineTest() : chip_(arch::tpu_v4i_baseline()), simulator_(chip_) {}
  arch::TpuChip chip_;
  Simulator simulator_;
};

TEST_F(RooflineTest, BigGemmIsComputeBound) {
  const ir::Op op =
      ir::make_weight_gemm("g", "G", 8192, 7168, 7168, ir::DType::kInt8);
  const RooflinePoint point = analyze_op(simulator_, op);
  EXPECT_EQ(point.bound, BoundResource::kCompute);
  EXPECT_GT(point.operational_intensity, 100.0);
  EXPECT_GT(point.roof_utilization(), 0.5);
  EXPECT_LE(point.attained_flops_per_s, point.compute_roof * 1.001);
}

TEST_F(RooflineTest, DecodeGemvRooflineMemoryLimited) {
  // m = 8 on HBM-resident weights: ~16 flops/byte, far below the machine
  // balance point, so the memory roof sits below the compute roof on both
  // chips.  On the baseline the binding resource is the array's weight
  // ingest (compute); on the CIM chip the ingest is hidden and pure HBM
  // streaming binds.
  const ir::Op op =
      ir::make_weight_gemm("v", "G", 8, 7168, 28672, ir::DType::kInt8);
  const RooflinePoint base_point = analyze_op(simulator_, op);
  EXPECT_LT(base_point.operational_intensity, 20.0);
  EXPECT_LT(base_point.memory_roof, base_point.compute_roof);
  EXPECT_EQ(base_point.bound, BoundResource::kCompute);  // ingest-starved

  arch::TpuChip cim_chip(arch::cim_tpu_default());
  Simulator cim_sim(cim_chip);
  const RooflinePoint cim_point = analyze_op(cim_sim, op);
  EXPECT_EQ(cim_point.bound, BoundResource::kHbm);
}

TEST_F(RooflineTest, CmemAttentionAvoidsHbm) {
  const ir::Op op = ir::make_attention_gemm(
      "a", "A", 448, 1, 128, 1280, ir::DType::kInt8, ir::Residency::kCmem);
  const RooflinePoint point = analyze_op(simulator_, op);
  EXPECT_TRUE(std::isinf(point.operational_intensity));  // no HBM traffic
  EXPECT_NE(point.bound, BoundResource::kHbm);
}

TEST_F(RooflineTest, VectorOpUsesVpuRoof) {
  const ir::Op op = ir::make_softmax("s", "A", 8192, 1024, ir::DType::kInt8);
  const RooflinePoint point = analyze_op(simulator_, op);
  EXPECT_NEAR(point.compute_roof,
              chip_.vpu().ops_per_cycle() * chip_.clock(), 1.0);
  EXPECT_LT(point.compute_roof, chip_.peak_ops_per_second());
}

TEST_F(RooflineTest, AttainedNeverExceedsRoofs) {
  const ir::Graph graph = models::build_decode_layer(
      models::gpt3_30b(), 8, 1280, ir::Residency::kCmem);
  for (const RooflinePoint& point : analyze_graph(simulator_, graph)) {
    EXPECT_LE(point.attained_flops_per_s, point.compute_roof * 1.001)
        << point.op;
    EXPECT_LE(point.attained_flops_per_s, point.memory_roof * 1.5)
        << point.op;  // first-tile exposure allows mild overshoot of roofline
  }
}

TEST_F(RooflineTest, PrefillMostlyComputeBoundDecodeMostlyMemoryBound) {
  // The paper's Sec. II-A characterization, recovered from the model.
  const ir::Graph prefill = models::build_prefill_layer(
      models::gpt3_30b(), 8, 1024, ir::Residency::kCmem);
  const BoundBreakdown pre = bound_breakdown(simulator_, prefill);
  EXPECT_GT(pre.compute_bound, 0.7 * pre.total());

  // Decode on the baseline is ingest-starved (counted as compute); on the
  // CIM chip the hidden weight ingest exposes decode as HBM streaming.
  arch::TpuChip cim_chip(arch::cim_tpu_default());
  Simulator cim_sim(cim_chip);
  const ir::Graph decode = models::build_decode_layer(
      models::gpt3_30b(), 8, 1280, ir::Residency::kCmem);
  const BoundBreakdown dec = bound_breakdown(cim_sim, decode);
  EXPECT_GT(dec.hbm_bound, 0.5 * dec.total());
}

TEST_F(RooflineTest, CimShiftsDecodeTowardHbmBound) {
  // On the CIM chip the attention GEMVs stop being ingest-bound, so a
  // larger fraction of decode time is pure HBM streaming.
  arch::TpuChip cim_chip(arch::cim_tpu_default());
  Simulator cim_sim(cim_chip);
  const ir::Graph decode = models::build_decode_layer(
      models::gpt3_30b(), 8, 1280, ir::Residency::kCmem);
  const BoundBreakdown base = bound_breakdown(simulator_, decode);
  const BoundBreakdown cim = bound_breakdown(cim_sim, decode);
  EXPECT_GT(cim.hbm_bound / cim.total(), base.hbm_bound / base.total());
}

TEST(RooflineNamesTest, ResourceNames) {
  EXPECT_EQ(bound_resource_name(BoundResource::kCompute), "compute");
  EXPECT_EQ(bound_resource_name(BoundResource::kHbm), "HBM");
  EXPECT_EQ(bound_resource_name(BoundResource::kOci), "OCI");
  EXPECT_EQ(bound_resource_name(BoundResource::kVmem), "VMEM");
}

}  // namespace
}  // namespace cimtpu::sim
