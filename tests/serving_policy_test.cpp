// Serving policy hardening suite: KV-page accounting invariants across
// admit/grow/preempt/swap/finish, chunked-prefill token and cost
// conservation, per-policy preemption behaviour (recompute vs swap vs
// priority-victim), per-sequence attention costing, and golden-metrics
// regression pins for one fixed seed per (policy x chunked on/off).
//
// The invariant tests drive the scheduler directly with byte-per-token
// accounting so every step can be audited; the golden tests replay the
// canonical pressured llama2-7b deployment (traffic_profiles.h) end to
// end.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <map>
#include <set>

#include "models/model_zoo.h"
#include "serving/admission_policy.h"
#include "serving/kv_cache_manager.h"
#include "serving/metrics.h"
#include "serving/request_gen.h"
#include "serving/scheduler.h"
#include "serving/serving_sim.h"
#include "serving/traffic_profiles.h"

namespace cimtpu::serving {
namespace {

Request make_request(std::int64_t id, std::int64_t prompt, std::int64_t output,
                     std::int64_t priority = 0, Seconds arrival = 0) {
  Request request;
  request.id = id;
  request.arrival_time = arrival;
  request.prompt_len = prompt;
  request.output_len = output;
  request.priority = priority;
  return request;
}

// --- KV cache manager: swap + priority unit behaviour ------------------------

TEST(KvSwapTest, SwapOutMovesBytesToHostAndBack) {
  KvCacheManager kv(/*capacity=*/100.0, /*bytes_per_token=*/1.0,
                    EvictionPolicy::kSwapToHost, /*host_capacity=*/50.0);
  EXPECT_TRUE(kv.try_admit(0, 40));
  EXPECT_TRUE(kv.try_admit(1, 30));
  EXPECT_TRUE(kv.try_swap_out(1));
  EXPECT_FALSE(kv.resident(1));
  EXPECT_TRUE(kv.swapped(1));
  EXPECT_EQ(kv.swapped_tokens(1), 30);
  EXPECT_DOUBLE_EQ(kv.used(), 40.0);
  EXPECT_DOUBLE_EQ(kv.host_used(), 30.0);
  EXPECT_TRUE(kv.audit());
  // Device room frees -> the pages come home, token count intact.
  EXPECT_TRUE(kv.try_swap_in(1));
  EXPECT_TRUE(kv.resident(1));
  EXPECT_FALSE(kv.swapped(1));
  EXPECT_EQ(kv.resident_tokens(1), 30);
  EXPECT_DOUBLE_EQ(kv.host_used(), 0.0);
  EXPECT_TRUE(kv.audit());
}

TEST(KvSwapTest, SwapOutRespectsHostCapacity) {
  KvCacheManager kv(100.0, 1.0, EvictionPolicy::kSwapToHost,
                    /*host_capacity=*/25.0);
  EXPECT_TRUE(kv.try_admit(0, 20));
  EXPECT_TRUE(kv.try_admit(1, 30));
  EXPECT_TRUE(kv.try_swap_out(0));   // 20 <= 25 fits
  EXPECT_FALSE(kv.try_swap_out(1));  // 20 + 30 > 25: host pool full
  EXPECT_TRUE(kv.resident(1));       // nothing moved on failure
  EXPECT_DOUBLE_EQ(kv.used(), 30.0);
  EXPECT_DOUBLE_EQ(kv.host_used(), 20.0);
  EXPECT_TRUE(kv.audit());
}

TEST(KvSwapTest, SwapInFailsWhenDeviceFull) {
  KvCacheManager kv(50.0, 1.0, EvictionPolicy::kSwapToHost);
  EXPECT_TRUE(kv.try_admit(0, 30));
  EXPECT_TRUE(kv.try_swap_out(0));
  EXPECT_TRUE(kv.try_admit(1, 40));
  EXPECT_FALSE(kv.try_swap_in(0));  // 40 + 30 > 50: stays on the host
  EXPECT_TRUE(kv.swapped(0));
  kv.release(1);
  EXPECT_TRUE(kv.try_swap_in(0));
  EXPECT_TRUE(kv.audit());
}

TEST(KvSwapTest, SwapInCountsAsNewestAdmission) {
  KvCacheManager kv(100.0, 1.0, EvictionPolicy::kSwapToHost);
  EXPECT_TRUE(kv.try_admit(0, 10));
  EXPECT_TRUE(kv.try_admit(1, 10));
  EXPECT_TRUE(kv.try_swap_out(0));
  EXPECT_TRUE(kv.try_swap_in(0));
  // 0 re-entered after 1, so it is now the newest -> first victim.
  EXPECT_EQ(kv.pick_eviction_victim(/*protect=*/-1), 0);
}

TEST(KvPriorityTest, VictimIsLowestPriorityThenLargestKv) {
  KvCacheManager kv(1000.0, 1.0, EvictionPolicy::kPriorityVictim);
  EXPECT_TRUE(kv.try_admit(0, 50, /*priority=*/2));
  EXPECT_TRUE(kv.try_admit(1, 80, /*priority=*/0));
  EXPECT_TRUE(kv.try_admit(2, 120, /*priority=*/0));
  EXPECT_TRUE(kv.try_admit(3, 200, /*priority=*/5));
  // Lowest priority class first; among {1, 2} the larger footprint goes.
  EXPECT_EQ(kv.pick_eviction_victim(-1), 2);
  kv.release(2);
  EXPECT_EQ(kv.pick_eviction_victim(-1), 1);
  kv.release(1);
  // The oldest resident (id 0) is exempt for forward progress, so the
  // high-priority newcomer is the only eligible victim.
  EXPECT_EQ(kv.pick_eviction_victim(-1), 3);
  // With the oldest excluded via `protect`, id 3 is the sole candidate.
  EXPECT_EQ(kv.pick_eviction_victim(/*protect=*/0), 3);
}

TEST(KvPriorityTest, EqualPrioritiesAndSizesFallBackToNewest) {
  KvCacheManager kv(1000.0, 1.0, EvictionPolicy::kPriorityVictim);
  EXPECT_TRUE(kv.try_admit(7, 50, 1));
  EXPECT_TRUE(kv.try_admit(8, 50, 1));
  EXPECT_TRUE(kv.try_admit(9, 50, 1));
  EXPECT_EQ(kv.pick_eviction_victim(-1), 9);  // newest admission
  EXPECT_EQ(kv.pick_eviction_victim(9), 8);
}

TEST(KvPolicyTest, PolicyNamesAreStable) {
  EXPECT_EQ(eviction_policy_name(EvictionPolicy::kNone), "none");
  EXPECT_EQ(eviction_policy_name(EvictionPolicy::kPreemptNewest),
            "preempt_newest");
  EXPECT_EQ(eviction_policy_name(EvictionPolicy::kSwapToHost), "swap_to_host");
  EXPECT_EQ(eviction_policy_name(EvictionPolicy::kPriorityVictim),
            "priority_victim");
}

TEST(KvPolicyTest, AuditBalancesAcrossChurn) {
  KvCacheManager kv(500.0, 1.0, EvictionPolicy::kSwapToHost);
  Rng rng(99);
  std::set<std::int64_t> device, host;
  for (std::int64_t id = 0; id < 400; ++id) {
    const std::int64_t op = rng.uniform_int(0, 3);
    if (op == 0 || device.empty()) {
      if (kv.try_admit(id, rng.uniform_int(1, 40))) device.insert(id);
    } else if (op == 1) {
      const std::int64_t target = *device.begin();
      kv.try_grow(target, 1);
    } else if (op == 2) {
      const std::int64_t target = *device.rbegin();
      if (kv.try_swap_out(target)) {
        device.erase(target);
        host.insert(target);
      }
    } else {
      const std::int64_t target = *device.begin();
      kv.release(target);
      device.erase(target);
    }
    if (!host.empty() && kv.try_swap_in(*host.begin())) {
      device.insert(*host.begin());
      host.erase(host.begin());
    }
    ASSERT_TRUE(kv.audit()) << "accounting drifted at op " << id;
    ASSERT_EQ(kv.resident_count(), device.size());
    ASSERT_EQ(kv.swapped_count(), host.size());
  }
  for (std::int64_t id : device) kv.release(id);
  std::vector<std::int64_t> stranded(host.begin(), host.end());
  for (std::int64_t id : stranded) {
    ASSERT_TRUE(kv.try_swap_in(id));  // empty device always fits them
    kv.release(id);
  }
  EXPECT_DOUBLE_EQ(kv.used(), 0.0);
  EXPECT_DOUBLE_EQ(kv.host_used(), 0.0);
  EXPECT_TRUE(kv.audit());
}

// --- Scheduler config --------------------------------------------------------

TEST(SchedulerConfigTest, RejectsChunkSmallerThanBucket) {
  KvCacheManager kv(1e6, 1.0);
  SchedulerConfig config;
  config.seqlen_bucket = 128;
  config.prefill_chunk_tokens = 64;  // < bucket: chunks could cost zero
  EXPECT_THROW(ContinuousBatchScheduler(config, &kv), ConfigError);
  config.prefill_chunk_tokens = 128;
  EXPECT_NO_THROW(ContinuousBatchScheduler(config, &kv));
  config.prefill_chunk_tokens = 0;  // disabled is always fine
  EXPECT_NO_THROW(ContinuousBatchScheduler(config, &kv));
}

TEST(RequestGenPriorityTest, ClassesBoundedAndDecoupledFromLengths) {
  RequestStreamConfig base = zipf_chat_stream(11, 300, 20.0);
  RequestStreamConfig tagged = zipf_chat_stream(11, 300, 20.0,
                                                /*priority_classes=*/4);
  const auto plain = generate_requests(base);
  const auto prioritized = generate_requests(tagged);
  ASSERT_EQ(plain.size(), prioritized.size());
  std::set<std::int64_t> seen;
  for (std::size_t i = 0; i < plain.size(); ++i) {
    // Priorities come from a decoupled rng stream: arrivals and lengths
    // are bit-identical whatever the class count.
    EXPECT_EQ(plain[i].arrival_time, prioritized[i].arrival_time);
    EXPECT_EQ(plain[i].prompt_len, prioritized[i].prompt_len);
    EXPECT_EQ(plain[i].output_len, prioritized[i].output_len);
    EXPECT_EQ(plain[i].priority, 0);
    EXPECT_GE(prioritized[i].priority, 0);
    EXPECT_LT(prioritized[i].priority, 4);
    seen.insert(prioritized[i].priority);
  }
  EXPECT_EQ(seen.size(), 4u);  // all classes drawn over 300 requests

  RequestStreamConfig bad = base;
  bad.priority_classes = 0;
  EXPECT_THROW(generate_requests(bad), ConfigError);
}

// --- Chunked prefill: hand traces and conservation ---------------------------

TEST(ChunkedPrefillTest, SingleRequestHandTrace) {
  // Prompt 300 with chunk budget 128: three chunk steps (128, 128, 44),
  // the last emitting the first token, then two decode steps.
  KvCacheManager kv(1e6, 1.0);
  SchedulerConfig config;
  config.prefill_chunk_tokens = 128;
  ContinuousBatchScheduler scheduler(config, &kv);
  scheduler.enqueue(make_request(0, 300, 3));

  auto step1 = scheduler.next_step();
  ASSERT_TRUE(step1.has_value());
  EXPECT_EQ(step1->kind, StepRecord::Kind::kPrefill);
  EXPECT_EQ(step1->chunk_lens, (std::vector<std::int64_t>{128}));
  EXPECT_EQ(step1->prev_lens, (std::vector<std::int64_t>{0}));
  EXPECT_EQ(step1->kv_lens, (std::vector<std::int64_t>{128}));
  EXPECT_TRUE(step1->chunked);
  EXPECT_TRUE(step1->first_token_ids.empty());  // prompt not done yet

  auto step2 = scheduler.next_step();
  EXPECT_EQ(step2->prev_lens, (std::vector<std::int64_t>{128}));
  EXPECT_EQ(step2->chunk_lens, (std::vector<std::int64_t>{128}));

  auto step3 = scheduler.next_step();
  EXPECT_EQ(step3->prev_lens, (std::vector<std::int64_t>{256}));
  EXPECT_EQ(step3->chunk_lens, (std::vector<std::int64_t>{44}));
  EXPECT_EQ(step3->kv_lens, (std::vector<std::int64_t>{300}));
  EXPECT_EQ(step3->first_token_ids, (std::vector<std::int64_t>{0}));

  auto step4 = scheduler.next_step();
  EXPECT_EQ(step4->kind, StepRecord::Kind::kDecode);
  EXPECT_EQ(step4->kv_lens, (std::vector<std::int64_t>{301}));
  auto step5 = scheduler.next_step();
  EXPECT_EQ(step5->kv_lens, (std::vector<std::int64_t>{302}));
  EXPECT_EQ(step5->finished_ids, (std::vector<std::int64_t>{0}));
  EXPECT_TRUE(scheduler.idle());
  EXPECT_EQ(scheduler.counters().chunked_prefill_steps, 3);
  EXPECT_DOUBLE_EQ(kv.used(), 0.0);
}

TEST(ChunkedPrefillTest, InterleavesWithDecodeSteps) {
  // A short request decodes while a 1024-token prompt streams through in
  // 128-token chunks: steps strictly alternate prefill/decode while both
  // kinds of work exist, so TPOT stays bounded during long prefills.
  KvCacheManager kv(1e6, 1.0);
  SchedulerConfig config;
  config.prefill_chunk_tokens = 128;
  ContinuousBatchScheduler scheduler(config, &kv);
  scheduler.enqueue(make_request(0, 128, 10));
  scheduler.enqueue(make_request(1, 1024, 2));

  std::vector<StepRecord::Kind> kinds;
  std::vector<std::int64_t> finished;
  while (auto step = scheduler.next_step()) {
    kinds.push_back(step->kind);
    for (std::int64_t id : step->finished_ids) finished.push_back(id);
  }
  // Step 1 prefills r0 whole (single 128-token chunk).  From then on,
  // while r0 decodes and r1 prefills, kinds alternate strictly.
  ASSERT_GE(kinds.size(), 17u);
  EXPECT_EQ(kinds[0], StepRecord::Kind::kPrefill);
  for (std::size_t i = 1; i + 1 < 17; i += 2) {
    EXPECT_EQ(kinds[i], StepRecord::Kind::kDecode) << "step " << i;
    EXPECT_EQ(kinds[i + 1], StepRecord::Kind::kPrefill) << "step " << i + 1;
  }
  EXPECT_EQ(finished, (std::vector<std::int64_t>{0, 1}));
}

TEST(ChunkedPrefillTest, BudgetAndPrefillBatchRespected) {
  KvCacheManager kv(1e6, 1.0);
  SchedulerConfig config;
  config.prefill_chunk_tokens = 256;
  config.max_prefill_batch = 3;
  ContinuousBatchScheduler scheduler(config, &kv);
  for (std::int64_t id = 0; id < 12; ++id) {
    scheduler.enqueue(make_request(id, 100 + 37 * id, 4));
  }
  while (auto step = scheduler.next_step()) {
    if (step->kind != StepRecord::Kind::kPrefill) continue;
    std::int64_t chunk_total = 0;
    for (std::int64_t chunk : step->chunk_lens) chunk_total += chunk;
    EXPECT_LE(chunk_total, 256);
    EXPECT_LE(step->batch, 3);
  }
  EXPECT_TRUE(scheduler.idle());
}

/// Drives a scheduler to completion, tracking per-request prefill work and
/// auditing KV accounting after every step.
struct DriveResult {
  std::int64_t total_prefill_tokens = 0;  ///< chunk tokens across the run
  std::map<std::int64_t, std::int64_t> finish_count;
  std::map<std::int64_t, std::int64_t> first_token_count;
  std::int64_t steps = 0;
  ServingCounters counters;
};

DriveResult drive_to_completion(const std::vector<Request>& requests,
                                EvictionPolicy policy,
                                std::int64_t chunk_tokens, Bytes kv_budget,
                                Bytes host_capacity = 1e12,
                                const AdmissionConfig& admission = {}) {
  KvCacheManager kv(kv_budget, /*bytes_per_token=*/1.0, policy, host_capacity);
  SchedulerConfig config;
  config.prefill_chunk_tokens = chunk_tokens;
  config.admission = admission;
  ContinuousBatchScheduler scheduler(config, &kv);
  for (const Request& request : requests) scheduler.enqueue(request);

  DriveResult result;
  while (auto step = scheduler.next_step()) {
    ++result.steps;
    if (step->kind == StepRecord::Kind::kPrefill) {
      // StepRecord carries shapes, not participant ids, so conservation is
      // checked on the global chunk-token total (per-request completion is
      // covered by first_token/finish counts).
      for (std::int64_t chunk : step->chunk_lens) {
        result.total_prefill_tokens += chunk;
      }
    }
    for (std::int64_t id : step->first_token_ids) {
      ++result.first_token_count[id];
    }
    for (std::int64_t id : step->finished_ids) ++result.finish_count[id];
    // --- Accounting invariants, every step -------------------------------
    EXPECT_TRUE(kv.audit());
    EXPECT_LE(kv.used(), kv.capacity() + 1e-9);
    EXPECT_EQ(kv.resident_count(), scheduler.running_count());
    EXPECT_EQ(kv.swapped_count(), scheduler.swapped_count());
    // The scheduler's incremental decoder aggregates must match a fresh
    // rescan after every transition (admit / prefill-complete / advance /
    // finish / preempt / swap): catches drift at the step that caused it.
    EXPECT_TRUE(scheduler.aggregates_consistent());
  }
  EXPECT_TRUE(scheduler.idle());
  EXPECT_DOUBLE_EQ(kv.used(), 0.0);
  EXPECT_DOUBLE_EQ(kv.host_used(), 0.0);
  EXPECT_EQ(kv.resident_count(), 0u);
  EXPECT_EQ(kv.swapped_count(), 0u);
  result.counters = scheduler.counters();
  return result;
}

std::vector<Request> invariant_stream(std::uint64_t seed, std::int64_t n) {
  RequestStreamConfig stream;
  stream.seed = seed;
  stream.num_requests = n;
  stream.arrival_rate = 1000.0;  // arrivals effectively simultaneous
  stream.prompt.kind = LengthDistribution::kUniform;
  stream.prompt.min_len = 32;
  stream.prompt.max_len = 160;
  stream.output.kind = LengthDistribution::kUniform;
  stream.output.min_len = 8;
  stream.output.max_len = 96;
  stream.priority_classes = 3;
  stream.num_tenants = 2;  // decoupled stream: arrivals/lengths unchanged
  return generate_requests(stream);
}

/// Shared invariant body: KV pages never leak or double-free, every
/// request finishes exactly once, under 3 distinct seeds x chunked on/off.
void check_policy_invariants(EvictionPolicy policy, bool expect_no_recompute) {
  for (std::uint64_t seed : {3ull, 17ull, 101ull}) {
    for (std::int64_t chunk : {std::int64_t{0}, std::int64_t{128}}) {
      const auto requests = invariant_stream(seed, 60);
      std::int64_t total_prompt = 0;
      for (const Request& request : requests) total_prompt += request.prompt_len;
      // Budget of 600 tokens: admits any single request (<= 161 reserve,
      // <= 256 fully grown) but far below 60 concurrent sequences.
      DriveResult result =
          drive_to_completion(requests, policy, chunk, /*kv_budget=*/600.0);
      for (const Request& request : requests) {
        EXPECT_EQ(result.finish_count[request.id], 1)
            << "seed " << seed << " chunk " << chunk << " request "
            << request.id;
        EXPECT_GE(result.first_token_count[request.id], 1);
      }
      EXPECT_GT(result.counters.total_preemptions(), 0)
          << "budget not tight enough to exercise " << static_cast<int>(policy);
      if (expect_no_recompute) {
        // Swap-to-host restores pages instead of recomputing: total prefill
        // work equals the prompt tokens exactly, and first tokens are
        // emitted exactly once.
        EXPECT_EQ(result.counters.preemptions_recompute, 0);
        EXPECT_EQ(result.total_prefill_tokens, total_prompt);
        for (const Request& request : requests) {
          EXPECT_EQ(result.first_token_count[request.id], 1);
        }
      } else {
        // Recompute policies re-prefill their victims' prompts.
        EXPECT_GE(result.total_prefill_tokens, total_prompt);
      }
    }
  }
}

TEST(PolicyInvariantTest, PreemptNewestNeverLeaksAndAllFinish) {
  check_policy_invariants(EvictionPolicy::kPreemptNewest,
                          /*expect_no_recompute=*/false);
}

TEST(PolicyInvariantTest, SwapToHostNeverLeaksAndNeverRecomputes) {
  check_policy_invariants(EvictionPolicy::kSwapToHost,
                          /*expect_no_recompute=*/true);
}

TEST(PolicyInvariantTest, PriorityVictimNeverLeaksAndAllFinish) {
  check_policy_invariants(EvictionPolicy::kPriorityVictim,
                          /*expect_no_recompute=*/false);
}

TEST(PolicyInvariantTest, ChunkedPrefillConservesPromptTokens) {
  // Under kNone (no preemption) every prompt token is prefilled exactly
  // once, chunked or not, and the totals match.
  const auto requests = invariant_stream(7, 40);
  std::int64_t total_prompt = 0;
  for (const Request& request : requests) total_prompt += request.prompt_len;
  DriveResult unchunked = drive_to_completion(
      requests, EvictionPolicy::kNone, /*chunk=*/0, /*kv_budget=*/1e9);
  DriveResult chunked = drive_to_completion(
      requests, EvictionPolicy::kNone, /*chunk=*/128, /*kv_budget=*/1e9);
  EXPECT_EQ(unchunked.total_prefill_tokens, total_prompt);
  EXPECT_EQ(chunked.total_prefill_tokens, total_prompt);
  EXPECT_GT(chunked.counters.chunked_prefill_steps, 0);
  EXPECT_EQ(unchunked.counters.chunked_prefill_steps, 0);
  EXPECT_GT(chunked.steps, unchunked.steps);  // prompts split across steps
}

TEST(PolicyInvariantTest, RecomputePreemptionRePrefillsPrompt) {
  // Two long-output requests against a 40-token budget (as in
  // serving_test's KvPressure trace): the preempted request's prompt is
  // prefilled twice under recompute.
  std::vector<Request> requests = {make_request(0, 10, 12),
                                   make_request(1, 10, 12)};
  DriveResult result = drive_to_completion(
      requests, EvictionPolicy::kPreemptNewest, /*chunk=*/0, 40.0);
  EXPECT_GT(result.counters.preemptions_recompute, 0);
  EXPECT_GT(result.total_prefill_tokens, 20);
  EXPECT_EQ(result.finish_count[0], 1);
  EXPECT_EQ(result.finish_count[1], 1);
}

TEST(PolicyInvariantTest, SwapPreemptionKeepsDecodeProgress) {
  // Same pressure as above under kSwapToHost: no prompt is ever
  // recomputed and each first token is emitted exactly once.
  std::vector<Request> requests = {make_request(0, 10, 12),
                                   make_request(1, 10, 12)};
  DriveResult result = drive_to_completion(
      requests, EvictionPolicy::kSwapToHost, /*chunk=*/0, 40.0);
  EXPECT_GT(result.counters.preemptions_swap, 0);
  EXPECT_EQ(result.counters.preemptions_recompute, 0);
  EXPECT_EQ(result.total_prefill_tokens, 20);
  EXPECT_EQ(result.first_token_count[0], 1);
  EXPECT_EQ(result.first_token_count[1], 1);
  // Every swap-out eventually swapped back in, byte for byte.
  EXPECT_EQ(result.counters.swap_ins, result.counters.preemptions_swap);
  EXPECT_DOUBLE_EQ(result.counters.swap_out_bytes,
                   result.counters.swap_in_bytes);
  EXPECT_GT(result.counters.swap_out_bytes, 0.0);
}

TEST(PolicyInvariantTest, PriorityVictimSparesHighPriority) {
  // Four equal-size sequences, one at priority 9: under pressure only the
  // priority-0 sequences are ever preempted.
  std::vector<Request> requests = {
      make_request(0, 50, 80, /*priority=*/0),
      make_request(1, 50, 80, /*priority=*/0),
      make_request(2, 50, 80, /*priority=*/0),
      make_request(3, 50, 80, /*priority=*/9),
  };
  KvCacheManager kv(400.0, 1.0, EvictionPolicy::kPriorityVictim);
  SchedulerConfig config;
  ContinuousBatchScheduler scheduler(config, &kv);
  for (const Request& request : requests) scheduler.enqueue(request);
  std::vector<std::int64_t> preempted;
  std::map<std::int64_t, std::int64_t> finish_count;
  while (auto step = scheduler.next_step()) {
    for (std::int64_t id : step->preempted_ids) preempted.push_back(id);
    for (std::int64_t id : step->finished_ids) ++finish_count[id];
  }
  EXPECT_FALSE(preempted.empty());
  EXPECT_TRUE(std::find(preempted.begin(), preempted.end(), 3) ==
              preempted.end())
      << "high-priority request was victimized";
  for (std::int64_t id = 0; id < 4; ++id) EXPECT_EQ(finish_count[id], 1);
}

// --- Admission-policy wall ---------------------------------------------------
//
// The admission API (serving/admission_policy.h) owns waiting-queue
// ordering.  This wall pins: registry surface, FIFO-equals-default
// equivalence, starvation freedom under PriorityAdmission aging, WFQ
// share proportionality and rate caps, and KV-accounting cleanliness
// under every admission x eviction combination.

TEST(AdmissionPolicyTest, RegistryNamesAreStableAndUnknownThrows) {
  const std::vector<std::string> names = admission_policy_names();
  EXPECT_NE(std::find(names.begin(), names.end(), "fifo"), names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "priority"), names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "wfq"), names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "edf"), names.end());
  AdmissionConfig config;
  config.policy = "fifo";
  EXPECT_EQ(make_admission_policy(config)->name(), "fifo");
  config.policy = "priority";
  EXPECT_EQ(make_admission_policy(config)->name(), "priority");
  config.policy = "wfq";
  EXPECT_EQ(make_admission_policy(config)->name(), "wfq");
  config.policy = "edf";
  EXPECT_EQ(make_admission_policy(config)->name(), "edf");
  config.policy = "no_such_policy";
  EXPECT_THROW(make_admission_policy(config), ConfigError);
  config.policy = "";
  EXPECT_THROW(make_admission_policy(config), ConfigError);
}

TEST(AdmissionPolicyTest, RegistryAcceptsCustomPolicies) {
  register_admission_policy("custom_fifo", [](const AdmissionConfig&) {
    return std::make_unique<FifoAdmission>();
  });
  AdmissionConfig config;
  config.policy = "custom_fifo";
  EXPECT_EQ(make_admission_policy(config)->name(), "fifo");
  const std::vector<std::string> names = admission_policy_names();
  EXPECT_NE(std::find(names.begin(), names.end(), "custom_fifo"),
            names.end());
}

TEST(AdmissionPolicyTest, ExplicitFifoIsBitIdenticalToDefault) {
  // The golden pins below already freeze default behaviour; this pins the
  // other side of the equivalence — selecting "fifo" through the registry
  // reproduces the default construction EXACTLY, so the registry seam
  // itself adds no drift.
  const auto requests = generate_requests(multi_tenant_pressure_stream(
      /*seed=*/42, /*num_requests=*/120, /*arrival_rate=*/50.0,
      /*num_tenants=*/1));
  ServingScenario defaulted = llama7b_pressured_scenario(
      1, ir::DType::kInt4, EvictionPolicy::kPreemptNewest, /*chunk_tokens=*/0,
      /*kv_budget_tokens=*/2000);
  ServingScenario explicit_fifo = defaulted;
  explicit_fifo.scheduler.admission.policy = "fifo";
  const ServingMetrics a = run_serving(defaulted, requests);
  const ServingMetrics b = run_serving(explicit_fifo, requests);
  EXPECT_EQ(a.total_steps, b.total_steps);
  EXPECT_EQ(a.preemptions, b.preemptions);
  EXPECT_DOUBLE_EQ(a.ttft.p50, b.ttft.p50);
  EXPECT_DOUBLE_EQ(a.tpot.p99, b.tpot.p99);
  EXPECT_DOUBLE_EQ(a.e2e.p99, b.e2e.p99);
  EXPECT_DOUBLE_EQ(a.goodput_tokens_per_second, b.goodput_tokens_per_second);
  EXPECT_DOUBLE_EQ(a.makespan, b.makespan);
}

/// Drives a max_batch-1 scheduler under a sustained stream of high-priority
/// arrivals — a fresh priority-10 request enqueues the moment the previous
/// one finishes, so at every admission the policy chooses between a YOUNG
/// priority-10 request and the ever-AGING priority-0 request 0 enqueued at
/// the start.  Returns the step at which request 0 emits its first token.
std::int64_t low_priority_admission_step(double aging_rate) {
  KvCacheManager kv(1e9, 1.0, EvictionPolicy::kNone);
  SchedulerConfig config;
  config.max_batch = 1;
  config.admission.policy = "priority";
  config.admission.aging_rate = aging_rate;
  ContinuousBatchScheduler scheduler(config, &kv);
  scheduler.enqueue(make_request(1, 8, 8, /*priority=*/10));
  scheduler.enqueue(make_request(0, 8, 8, /*priority=*/0));
  std::int64_t next_id = 2;
  const std::int64_t high_priority_arrivals = 30;
  std::int64_t admitted_step = -1;
  StepRecord record;
  while (scheduler.next_step(&record)) {
    for (std::int64_t id : record.first_token_ids) {
      if (id == 0 && admitted_step < 0) {
        admitted_step = scheduler.total_steps();
      }
    }
    if (!record.finished_ids.empty() && next_id <= high_priority_arrivals) {
      scheduler.enqueue(make_request(next_id, 8, 8, /*priority=*/10));
      ++next_id;
    }
  }
  EXPECT_TRUE(scheduler.idle());
  EXPECT_GE(admitted_step, 0) << "request 0 never admitted";
  return admitted_step;
}

TEST(AdmissionPolicyTest, PriorityAgingPreventsStarvation) {
  // With aging, the low-priority request's effective priority grows one
  // unit per waiting step and overtakes the priority-10 stream after ~10
  // steps; without aging it waits until the high-priority stream dries up
  // entirely.  Every request is eventually admitted either way (the
  // invariant the wall pins), but aging bounds the wait.
  const std::int64_t aged = low_priority_admission_step(/*aging_rate=*/1.0);
  const std::int64_t starved = low_priority_admission_step(/*aging_rate=*/0.0);
  EXPECT_LT(aged, starved);
  EXPECT_LE(aged, 40) << "aging should admit request 0 well before the "
                         "30-request high-priority stream drains";
  EXPECT_GT(starved, 200) << "static priority should hold request 0 back "
                             "until the high-priority stream is done";
}

TEST(AdmissionPolicyTest, PriorityAdmitsHighestFirstAndFifoAmongEquals) {
  KvCacheManager kv(1e9, 1.0, EvictionPolicy::kNone);
  SchedulerConfig config;
  config.max_batch = 1;
  config.admission.policy = "priority";
  config.admission.aging_rate = 0.0;
  ContinuousBatchScheduler scheduler(config, &kv);
  scheduler.enqueue(make_request(0, 8, 4, /*priority=*/1));
  scheduler.enqueue(make_request(1, 8, 4, /*priority=*/5));
  scheduler.enqueue(make_request(2, 8, 4, /*priority=*/5));
  scheduler.enqueue(make_request(3, 8, 4, /*priority=*/9));
  std::vector<std::int64_t> first_tokens;
  StepRecord record;
  while (scheduler.next_step(&record)) {
    for (std::int64_t id : record.first_token_ids) first_tokens.push_back(id);
  }
  // Highest priority first; the two priority-5 requests keep FIFO order.
  EXPECT_EQ(first_tokens, (std::vector<std::int64_t>{3, 1, 2, 0}));
}

TEST(AdmissionPolicyTest, WfqSharesTrackWeightsUnderOverload) {
  // THE acceptance scenario: 2 backlogged tenants at 3:1 weights over a
  // fixed overloaded window.  Admitted tokens follow virtual work, so the
  // per-tenant goodput ratio must land near 3 and the weight-normalized
  // Jain index near 1.  FIFO on the SAME traffic splits goodput by the
  // (uniform) traffic mix instead — ratio near 1, normalized Jain well
  // below WFQ's.
  const auto requests = generate_requests(
      multi_tenant_pressure_stream(/*seed=*/42, /*num_requests=*/400,
                                   /*arrival_rate=*/50.0, /*num_tenants=*/2));
  const std::vector<double>& weights = multi_tenant_fairness_weights();
  const ServingMetrics wfq = run_serving(
      multi_tenant_fairness_scenario(ir::DType::kInt4, "wfq", weights,
                                     kMultiTenantFairnessHorizon),
      requests);
  const ServingMetrics fifo = run_serving(
      multi_tenant_fairness_scenario(ir::DType::kInt4, "fifo", weights,
                                     kMultiTenantFairnessHorizon),
      requests);

  ASSERT_EQ(wfq.tenants.size(), 2u);
  ASSERT_EQ(fifo.tenants.size(), 2u);
  EXPECT_EQ(wfq.tenants[0].tenant_id, 0);
  EXPECT_EQ(wfq.tenants[1].tenant_id, 1);
  EXPECT_DOUBLE_EQ(wfq.tenants[0].weight, 3.0);
  EXPECT_DOUBLE_EQ(wfq.tenants[1].weight, 1.0);
  ASSERT_GT(wfq.tenants[1].goodput_tokens_per_second, 0.0);
  ASSERT_GT(fifo.tenants[1].goodput_tokens_per_second, 0.0);

  const double wfq_ratio = wfq.tenants[0].goodput_tokens_per_second /
                           wfq.tenants[1].goodput_tokens_per_second;
  const double fifo_ratio = fifo.tenants[0].goodput_tokens_per_second /
                            fifo.tenants[1].goodput_tokens_per_second;
  EXPECT_GE(wfq_ratio, 2.5);
  EXPECT_LE(wfq_ratio, 3.5);
  EXPECT_LT(fifo_ratio, 1.5) << "FIFO should track the ~uniform traffic mix";
  EXPECT_GT(wfq.jain_fairness, 0.95);
  EXPECT_GT(wfq.jain_fairness, fifo.jain_fairness);

  // The run was genuinely overloaded the whole window: neither policy
  // completed everything before the horizon.
  EXPECT_LT(wfq.completed, static_cast<std::int64_t>(requests.size()));
  EXPECT_LT(fifo.completed, static_cast<std::int64_t>(requests.size()));
}

TEST(AdmissionPolicyTest, WfqRateCapThrottlesWhileOthersHaveWork) {
  // Tenant 1 is capped to its burst allowance (the direct driver never
  // advances the policy clock, so the cap cannot refill).  Its first small
  // request fits the burst; after that it must wait until tenant 0's work
  // drains and the empty-device liveness bypass admits it.
  KvCacheManager kv(1e9, 1.0, EvictionPolicy::kNone);
  SchedulerConfig config;
  config.max_batch = 1;  // serialized admissions make the order observable
  config.admission.policy = "wfq";
  TenantShare uncapped;  // tenant 0
  TenantShare capped;    // tenant 1
  capped.token_rate_cap = 1e-9;  // effectively "burst only" at now = 0
  capped.burst_tokens = 40;
  config.admission.tenants = {uncapped, capped};
  ContinuousBatchScheduler scheduler(config, &kv);

  const auto tenant_request = [](std::int64_t id, std::int64_t tenant) {
    Request request = make_request(id, 20, 10);
    request.tenant_id = tenant;  // 30 admission tokens each
    return request;
  };
  for (std::int64_t id = 0; id < 6; ++id) {
    scheduler.enqueue(tenant_request(id, 0));
  }
  for (std::int64_t id = 6; id < 9; ++id) {
    scheduler.enqueue(tenant_request(id, 1));
  }

  std::vector<std::int64_t> first_tokens;
  StepRecord record;
  while (scheduler.next_step(&record)) {
    for (std::int64_t id : record.first_token_ids) first_tokens.push_back(id);
  }
  ASSERT_EQ(first_tokens.size(), 9u);  // liveness: everyone completes
  // Tenant 1's first request (id 6, 30 tokens <= 40 burst) may admit
  // early — WFQ favours the zero-virtual-work tenant — but its remaining
  // two requests exceed the burst and must trail ALL tenant-0 work.
  const auto position = [&](std::int64_t id) {
    return std::find(first_tokens.begin(), first_tokens.end(), id) -
           first_tokens.begin();
  };
  for (std::int64_t capped_id : {std::int64_t{7}, std::int64_t{8}}) {
    for (std::int64_t uncapped_id = 0; uncapped_id < 6; ++uncapped_id) {
      EXPECT_GT(position(capped_id), position(uncapped_id))
          << "capped request " << capped_id << " overtook tenant-0 request "
          << uncapped_id;
    }
  }
}

TEST(AdmissionPolicyTest, AccountingCleanUnderEveryAdmissionEvictionPair) {
  // The PolicyInvariantTest wall audits eviction policies under FIFO
  // admission; this extends the matrix to all 3 admission x 3 eviction
  // combinations: KV pages never leak or double-free, every request
  // finishes exactly once, and the incremental aggregates stay consistent.
  for (const char* admission : {"fifo", "priority", "wfq"}) {
    AdmissionConfig admission_config;
    admission_config.policy = admission;
    admission_config.tenants = {TenantShare{}, TenantShare{}};
    admission_config.tenants[0].weight = 2.0;
    for (EvictionPolicy eviction :
         {EvictionPolicy::kPreemptNewest, EvictionPolicy::kSwapToHost,
          EvictionPolicy::kPriorityVictim}) {
      const auto requests = invariant_stream(23, 60);
      DriveResult result = drive_to_completion(
          requests, eviction, /*chunk_tokens=*/128, /*kv_budget=*/600.0,
          /*host_capacity=*/1e12, admission_config);
      for (const Request& request : requests) {
        EXPECT_EQ(result.finish_count[request.id], 1)
            << "admission " << admission << " eviction "
            << eviction_policy_name(eviction) << " request " << request.id;
      }
      EXPECT_GT(result.counters.total_preemptions(), 0)
          << "admission " << admission << " eviction "
          << eviction_policy_name(eviction);
    }
  }
}

TEST(JainFairnessTest, IndexMatchesClosedForm) {
  EXPECT_DOUBLE_EQ(jain_fairness_index({}), 1.0);
  EXPECT_DOUBLE_EQ(jain_fairness_index({0.0, 0.0}), 1.0);
  EXPECT_DOUBLE_EQ(jain_fairness_index({5.0, 5.0, 5.0}), 1.0);
  EXPECT_DOUBLE_EQ(jain_fairness_index({1.0, 0.0, 0.0, 0.0}), 0.25);
  // (1+2+3)^2 / (3 * (1+4+9)) = 36/42
  EXPECT_DOUBLE_EQ(jain_fairness_index({1.0, 2.0, 3.0}), 36.0 / 42.0);
  EXPECT_THROW(jain_fairness_index({-1.0}), ConfigError);
}

TEST(RequestGenTenantTest, AssignmentDecoupledFromArrivalsAndSkewed) {
  RequestStreamConfig base = zipf_chat_stream(11, 900, 20.0);
  RequestStreamConfig tenanted = base;
  tenanted.num_tenants = 3;
  tenanted.tenant_weights = {6.0, 3.0, 1.0};
  const auto plain = generate_requests(base);
  const auto assigned = generate_requests(tenanted);
  ASSERT_EQ(plain.size(), assigned.size());
  std::map<std::int64_t, std::int64_t> counts;
  for (std::size_t i = 0; i < plain.size(); ++i) {
    // Tenants come from their own decoupled rng stream: arrivals, lengths,
    // and priorities are bit-identical whatever the tenant model.
    EXPECT_EQ(plain[i].arrival_time, assigned[i].arrival_time);
    EXPECT_EQ(plain[i].prompt_len, assigned[i].prompt_len);
    EXPECT_EQ(plain[i].output_len, assigned[i].output_len);
    EXPECT_EQ(plain[i].priority, assigned[i].priority);
    EXPECT_EQ(plain[i].tenant_id, 0);
    EXPECT_GE(assigned[i].tenant_id, 0);
    EXPECT_LT(assigned[i].tenant_id, 3);
    ++counts[assigned[i].tenant_id];
  }
  // 6:3:1 weights over 900 draws: order must hold with a wide margin.
  EXPECT_GT(counts[0], counts[1]);
  EXPECT_GT(counts[1], counts[2]);
  EXPECT_GT(counts[2], 0);

  RequestStreamConfig bad = tenanted;
  bad.tenant_weights = {1.0, 2.0};  // size != num_tenants
  EXPECT_THROW(generate_requests(bad), ConfigError);
  bad.tenant_weights = {1.0, -1.0, 1.0};
  EXPECT_THROW(generate_requests(bad), ConfigError);
  bad.tenant_weights.clear();
  bad.num_tenants = 0;
  EXPECT_THROW(generate_requests(bad), ConfigError);
}

// --- next_step() convenience wrapper -----------------------------------------

TEST(SchedulerWrapperTest, OptionalNextStepMatchesPointerPath) {
  // The optional-returning wrapper must plan the IDENTICAL step sequence
  // as the scratch-record path it wraps; drive two schedulers over a
  // preemption-heavy swap workload in lockstep and compare every field.
  const auto requests = invariant_stream(31, 40);
  KvCacheManager kv_a(600.0, 1.0, EvictionPolicy::kSwapToHost);
  KvCacheManager kv_b(600.0, 1.0, EvictionPolicy::kSwapToHost);
  SchedulerConfig config;
  config.prefill_chunk_tokens = 128;
  ContinuousBatchScheduler wrapper_path(config, &kv_a);
  ContinuousBatchScheduler pointer_path(config, &kv_b);
  for (const Request& request : requests) {
    wrapper_path.enqueue(request);
    pointer_path.enqueue(request);
  }
  StepRecord scratch;
  std::int64_t steps = 0;
  for (;;) {
    const std::optional<StepRecord> wrapped = wrapper_path.next_step();
    const bool stepped = pointer_path.next_step(&scratch);
    ASSERT_EQ(wrapped.has_value(), stepped) << "at step " << steps;
    if (!wrapped.has_value()) break;
    ++steps;
    EXPECT_EQ(wrapped->kind, scratch.kind);
    EXPECT_EQ(wrapped->batch, scratch.batch);
    EXPECT_EQ(wrapped->kv_lens, scratch.kv_lens);
    EXPECT_EQ(wrapped->chunk_lens, scratch.chunk_lens);
    EXPECT_EQ(wrapped->prev_lens, scratch.prev_lens);
    EXPECT_EQ(wrapped->decode_groups, scratch.decode_groups);
    EXPECT_EQ(wrapped->first_token_ids, scratch.first_token_ids);
    EXPECT_EQ(wrapped->finished_ids, scratch.finished_ids);
    EXPECT_EQ(wrapped->preempted_ids, scratch.preempted_ids);
    EXPECT_EQ(wrapped->swapped_out_ids, scratch.swapped_out_ids);
    EXPECT_EQ(wrapped->swapped_in_ids, scratch.swapped_in_ids);
    EXPECT_DOUBLE_EQ(wrapped->swap_bytes, scratch.swap_bytes);
    EXPECT_EQ(wrapped->chunked, scratch.chunked);
  }
  EXPECT_GT(steps, 0);
  EXPECT_GT(wrapper_path.preemptions(), 0);  // the swap path was exercised
  EXPECT_TRUE(wrapper_path.idle());
  EXPECT_TRUE(pointer_path.idle());
}

// --- Per-sequence attention costing ------------------------------------------

class CostModelTest : public ::testing::Test {
 protected:
  CostModelTest()
      : chip_(arch::tpu_v4i_baseline()), simulator_(chip_) {
    model_ = models::llama2_7b();
    model_.dtype = ir::DType::kInt4;
  }

  arch::TpuChip chip_;
  sim::Simulator simulator_;
  models::TransformerConfig model_;
};

TEST_F(CostModelTest, PerSequenceDecodeCostDiffersFromMeanCost) {
  // Heterogeneous batch: one sequence at KV 128, one at KV 4096.  The old
  // scheduler costed this step as decode(batch=2, mean 2112); per-sequence
  // costing charges decode(1, 128) + decode(1, 4096).  The two models must
  // disagree measurably — that disagreement is the fidelity this PR adds.
  StepCostCache costs(simulator_, model_, 128);
  StepRecord step;
  step.kind = StepRecord::Kind::kDecode;
  step.batch = 2;
  step.kv_lens = {128, 4096};
  const StepCost per_sequence = cost_step(costs, step);
  const StepCost exact_sum = [&] {
    StepCost sum;
    const StepCost lo = costs.decode_layer(1, 128);
    const StepCost hi = costs.decode_layer(1, 4096);
    sum.latency = lo.latency + hi.latency;
    sum.total_energy = lo.total_energy + hi.total_energy;
    return sum;
  }();
  EXPECT_DOUBLE_EQ(per_sequence.latency, exact_sum.latency);
  EXPECT_DOUBLE_EQ(per_sequence.total_energy, exact_sum.total_energy);

  const StepCost mean_model = costs.decode_layer(2, (128 + 4096) / 2);
  const double rel_diff =
      std::abs(per_sequence.latency - mean_model.latency) / mean_model.latency;
  EXPECT_GT(rel_diff, 0.02) << "per-sequence costing should visibly diverge "
                               "from mean-KV costing on heterogeneous batches";
}

TEST_F(CostModelTest, EqualLengthBatchGroupsIntoOneShape) {
  StepCostCache costs(simulator_, model_, 128);
  StepRecord step;
  step.kind = StepRecord::Kind::kDecode;
  step.batch = 4;
  step.kv_lens = {200, 220, 250, 256};  // all bucket to 256
  const StepCost grouped = cost_step(costs, step);
  const StepCost direct = costs.decode_layer(4, 256);
  EXPECT_DOUBLE_EQ(grouped.latency, direct.latency);
  EXPECT_DOUBLE_EQ(grouped.total_energy, direct.total_energy);
}

TEST_F(CostModelTest, DecodeCostInvariantUnderParticipantOrder) {
  StepCostCache costs(simulator_, model_, 128);
  StepRecord a, b;
  a.kind = b.kind = StepRecord::Kind::kDecode;
  a.batch = b.batch = 3;
  a.kv_lens = {128, 1024, 4096};
  b.kv_lens = {4096, 128, 1024};
  EXPECT_DOUBLE_EQ(cost_step(costs, a).latency, cost_step(costs, b).latency);
}

TEST_F(CostModelTest, ChunkedPrefillCostTelescopesToUnchunked) {
  // Chunk costs are increments between full-prefill shapes, so the chunks
  // of a 1000-token prompt sum to exactly the unchunked prefill cost.
  StepCostCache costs(simulator_, model_, 128);
  const std::vector<std::pair<std::int64_t, std::int64_t>> chunks = {
      {0, 256}, {256, 256}, {512, 256}, {768, 232}};  // (prev, chunk)
  StepCost chunked_total;
  for (const auto& [prev, chunk] : chunks) {
    StepRecord step;
    step.kind = StepRecord::Kind::kPrefill;
    step.batch = 1;
    step.prev_lens = {prev};
    step.chunk_lens = {chunk};
    step.kv_lens = {prev + chunk};
    const StepCost cost = cost_step(costs, step);
    EXPECT_GE(cost.latency, 0.0);  // monotonicity of prefill in length
    chunked_total.latency += cost.latency;
    chunked_total.total_energy += cost.total_energy;
  }
  StepRecord whole;
  whole.kind = StepRecord::Kind::kPrefill;
  whole.batch = 1;
  whole.prev_lens = {0};
  whole.chunk_lens = {1000};
  whole.kv_lens = {1000};
  const StepCost unchunked = cost_step(costs, whole);
  EXPECT_NEAR(chunked_total.latency, unchunked.latency,
              1e-9 * unchunked.latency);
  EXPECT_NEAR(chunked_total.total_energy, unchunked.total_energy,
              1e-9 * unchunked.total_energy);
}

TEST_F(CostModelTest, PrefillCostMonotoneInLength) {
  // The telescoped chunk costing relies on prefill cost growing with
  // sequence length; pin that property across the chunking range.
  StepCostCache costs(simulator_, model_, 128);
  Seconds prev_latency = 0;
  for (std::int64_t len = 128; len <= 4096; len += 256) {
    const StepCost cost = costs.prefill_layer(1, len);
    EXPECT_GT(cost.latency, prev_latency) << "at length " << len;
    prev_latency = cost.latency;
  }
}

// --- End-to-end policy behaviour ---------------------------------------------

RequestStreamConfig pressure_stream(std::uint64_t seed, std::int64_t n) {
  RequestStreamConfig stream;
  stream.seed = seed;
  stream.num_requests = n;
  stream.arrival_rate = 50.0;
  stream.prompt.kind = LengthDistribution::kFixed;
  stream.prompt.mean = 256;
  stream.output.kind = LengthDistribution::kUniform;
  stream.output.min_len = 64;
  stream.output.max_len = 256;
  stream.priority_classes = 3;
  return stream;
}

ServingScenario pressured(EvictionPolicy policy, std::int64_t chunk) {
  // 2000-token budget: ~7 resident 257-token reservations, guaranteed
  // growth pressure with 64..256-token outputs.
  return llama7b_pressured_scenario(1, ir::DType::kInt4, policy, chunk,
                                    /*kv_budget_tokens=*/2000);
}

TEST(PolicyEndToEndTest, AllPoliciesCompleteUnderPressure) {
  for (std::uint64_t seed : {3ull, 17ull, 101ull}) {
    const auto requests = generate_requests(pressure_stream(seed, 60));
    for (EvictionPolicy policy :
         {EvictionPolicy::kPreemptNewest, EvictionPolicy::kSwapToHost,
          EvictionPolicy::kPriorityVictim}) {
      for (std::int64_t chunk : {std::int64_t{0}, std::int64_t{256}}) {
        const ServingMetrics metrics =
            run_serving(pressured(policy, chunk), requests);
        EXPECT_EQ(metrics.completed, 60)
            << eviction_policy_name(policy) << " chunk " << chunk << " seed "
            << seed;
        EXPECT_GT(metrics.preemptions, 0)
            << eviction_policy_name(policy) << " chunk " << chunk << " seed "
            << seed;
        EXPECT_GE(metrics.e2e.p99, metrics.ttft.p99);
      }
    }
  }
}

TEST(PolicyEndToEndTest, SwapRunMovesBytesNotRecompute) {
  const auto requests = generate_requests(pressure_stream(5, 60));
  const ServingMetrics metrics =
      run_serving(pressured(EvictionPolicy::kSwapToHost, 0), requests);
  EXPECT_GT(metrics.counters.preemptions_swap, 0);
  EXPECT_EQ(metrics.counters.preemptions_recompute, 0);
  EXPECT_GT(metrics.counters.swap_out_bytes, 0.0);
  EXPECT_DOUBLE_EQ(metrics.counters.swap_out_bytes,
                   metrics.counters.swap_in_bytes);
  EXPECT_EQ(metrics.counters.chunked_prefill_steps, 0);
}

TEST(PolicyEndToEndTest, HostPoolExhaustionFallsBackToRecompute) {
  const auto requests = generate_requests(pressure_stream(5, 60));
  ServingScenario scenario = pressured(EvictionPolicy::kSwapToHost, 0);
  scenario.host_pool_capacity = 0;  // no host pool at all
  const ServingMetrics metrics = run_serving(scenario, requests);
  EXPECT_EQ(metrics.completed, 60);
  EXPECT_EQ(metrics.counters.preemptions_swap, 0);
  EXPECT_GT(metrics.counters.preemptions_recompute, 0);
}

TEST(PolicyEndToEndTest, SwapChargesHostLinkTime) {
  const auto requests = generate_requests(pressure_stream(5, 60));
  ServingScenario fast = pressured(EvictionPolicy::kSwapToHost, 0);
  ServingScenario slow = fast;
  fast.host_link_bandwidth = 1e15;  // effectively free transfers
  slow.host_link_bandwidth = 1 * GBps;
  const ServingMetrics fast_metrics = run_serving(fast, requests);
  const ServingMetrics slow_metrics = run_serving(slow, requests);
  ASSERT_GT(slow_metrics.counters.swap_out_bytes, 0.0);
  EXPECT_GT(slow_metrics.makespan, fast_metrics.makespan);
}

TEST(PolicyEndToEndTest, ChunkingCountsStepsAndConservesTokens) {
  const auto requests = generate_requests(pressure_stream(9, 60));
  // Chunk budget 128 < the 256-token prompts, so every prompt is split.
  const ServingMetrics unchunked =
      run_serving(pressured(EvictionPolicy::kSwapToHost, 0), requests);
  const ServingMetrics chunked =
      run_serving(pressured(EvictionPolicy::kSwapToHost, 128), requests);
  EXPECT_EQ(unchunked.counters.chunked_prefill_steps, 0);
  EXPECT_GT(chunked.counters.chunked_prefill_steps, 0);
  // Chunking changes step schedule, never the tokens served.
  EXPECT_EQ(chunked.completed, unchunked.completed);
  EXPECT_EQ(chunked.generated_tokens, unchunked.generated_tokens);
}

TEST(PolicyEndToEndTest, ChunkingBoundsTpotUnderLongPrompts) {
  // Long 4096-token prompts streaming into a decode-heavy batch: whole-
  // prompt prefill steps stall every decoder for the full prompt latency,
  // chunked prefill amortizes it, so worst-case TPOT drops.
  RequestStreamConfig stream;
  stream.seed = 21;
  stream.num_requests = 40;
  stream.arrival_rate = 2.0;
  stream.prompt.kind = LengthDistribution::kFixed;
  stream.prompt.mean = 4096;
  stream.output.kind = LengthDistribution::kFixed;
  stream.output.mean = 128;
  const auto requests = generate_requests(stream);
  ServingScenario whole = llama7b_baseline_scenario(1, ir::DType::kInt4);
  ServingScenario chunked = whole;
  chunked.scheduler.prefill_chunk_tokens = 512;
  const ServingMetrics whole_metrics = run_serving(whole, requests);
  const ServingMetrics chunked_metrics = run_serving(chunked, requests);
  EXPECT_EQ(whole_metrics.completed, 40);
  EXPECT_EQ(chunked_metrics.completed, 40);
  EXPECT_LT(chunked_metrics.tpot.max, whole_metrics.tpot.max);
}

// --- Golden-metrics regression (one fixed seed per policy x chunking) --------
//
// These pin the canonical pressured deployment's metrics so ANY behavioural
// drift in the scheduler, admission path, cost model, or KV manager fails
// ctest.  The pins run under the DEFAULT "fifo" admission policy — the
// exact pre-admission-API waiting-queue behaviour — and correspond to the
// per-policy rows of bench_serving's schema-v5 BENCH_serving.json.  They
// ALSO run under the paged-KV defaults (kv_block_tokens = 1, prefix
// caching off), which the block allocator reproduces bit for bit — the
// PagedContiguousLockstepTest wall in serving_paged_kv_test.cpp pins that
// equivalence operation by operation.  Two dimensions are deliberately
// NOT golden-pinned:
//   * the admission-policy dimension ("priority", "wfq") — asserted
//     functionally by the AdmissionPolicyTest wall above (starvation
//     freedom, share proportionality, Jain index), aggregates in the
//     JSON's "fairness" block;
//   * the paged-KV dimension (block sizes > 1, prefix caching on) —
//     asserted functionally by serving_paged_kv_test.cpp (hit rate,
//     blocks saved, CoW, fragmentation), aggregates in the schema-v5
//     "prefix_cache" block.
//
// UPDATE PROCEDURE (only after an INTENTIONAL behaviour change):
//   1. Re-run:  ./serving_policy_test --gtest_also_run_disabled_tests \
//                 --gtest_filter='*PrintGoldenValues*'
//   2. Paste the printed table over kGoldens below.
//   3. Explain the drift (which change moved which metric) in your PR.
//   4. If the drift also moves bench_serving output, refresh the committed
//      BENCH_serving.json baseline at the repo root (the CI perf-smoke job
//      gates steps_per_second against it — the whole-grid "sweep" number
//      AND the cluster rows' mean).  The baseline is schema v10:
//      "baseline" / "policies" / "fairness" / "prefix_cache" /
//      "observability" / "slo_frontier" / "resilience" / "cluster" /
//      "speed" blocks plus the "sweep" wall-clock block (baseline +
//      policy grids only).  The "speed" rows (scheduler hot-path
//      microbenchmark) pin deterministic step/token counts and summed
//      simulated seconds; only their wall_seconds / steps_per_second
//      fields are machine-dependent.
//      The slo_frontier rows must keep EDF's slo_attainment strictly above
//      FIFO's at the highest swept arrival rate (serving_slo_test pins the
//      ordering), the resilience rows (fault storm at kFaultStormSeed,
//      recovery off/on) must keep recovery-on strictly above recovery-off
//      on BOTH availability and slo_goodput_tokens_per_s at every swept
//      fault rate (serving_fault_test pins the frontier at rate 1.0), and
//      the cluster rows must keep prefix_affinity's cluster-wide
//      prefix_hit_rate strictly above round_robin's in "router_rows" AND
//      the disaggregated ttft_p99_s strictly below the colocated one at
//      the top swept rate in "disaggregation" (serving_cluster_test pins
//      both orderings on the canonical grids).

struct Golden {
  EvictionPolicy policy;
  std::int64_t chunk;
  double ttft_p50;
  double tpot_p99;
  double e2e_p99;
  double goodput;
  std::int64_t preemptions;
};

ServingScenario golden_scenario(EvictionPolicy policy, std::int64_t chunk) {
  return llama7b_pressured_scenario(1, ir::DType::kInt4, policy, chunk,
                                    /*kv_budget_tokens=*/2000);
}

std::vector<Request> golden_requests() {
  return generate_requests(pressure_stream(/*seed=*/42, /*n=*/120));
}

const Golden kGoldens[] = {
    {EvictionPolicy::kPreemptNewest, 0, 30.693299671957757, 0.034985581768453788, 62.77180183941045, 283.56241520408537, 171},
    {EvictionPolicy::kPreemptNewest, 512, 30.672954102618533, 0.03464261054684576, 62.751456270071237, 283.64933047482293, 171},
    {EvictionPolicy::kSwapToHost, 0, 25.446754345753291, 0.026795361947768607, 53.642802951888896, 330.80099372251351, 71},
    {EvictionPolicy::kSwapToHost, 512, 24.725860369934757, 0.027492356534360621, 52.83777436099227, 335.65516636032862, 68},
    {EvictionPolicy::kPriorityVictim, 0, 50.908952469979937, 0.26643852063218754, 113.08000601840725, 162.76225663281016, 716},
    {EvictionPolicy::kPriorityVictim, 512, 50.898601601548421, 0.31410005651004802, 122.36652738448615, 150.31525537858928, 865},
};

const Golden& golden_for(EvictionPolicy policy, std::int64_t chunk) {
  for (const Golden& golden : kGoldens) {
    if (golden.policy == policy && golden.chunk == chunk) return golden;
  }
  ADD_FAILURE() << "no golden pinned";
  return kGoldens[0];
}

void check_golden(EvictionPolicy policy, std::int64_t chunk) {
  const Golden& golden = golden_for(policy, chunk);
  const ServingMetrics metrics =
      run_serving(golden_scenario(policy, chunk), golden_requests());
  EXPECT_EQ(metrics.completed, 120);
  // Tolerance 1e-6 relative: loose enough for libm ulp differences across
  // platforms, tight enough that any scheduling change fails.
  const auto near = [](double actual, double expected) {
    EXPECT_NEAR(actual, expected, 1e-6 * std::abs(expected) + 1e-12);
  };
  near(metrics.ttft.p50, golden.ttft_p50);
  near(metrics.tpot.p99, golden.tpot_p99);
  near(metrics.e2e.p99, golden.e2e_p99);
  near(metrics.goodput_tokens_per_second, golden.goodput);
  EXPECT_EQ(metrics.preemptions, golden.preemptions);
}

TEST(GoldenMetricsTest, PreemptNewestUnchunked) {
  check_golden(EvictionPolicy::kPreemptNewest, 0);
}
TEST(GoldenMetricsTest, PreemptNewestChunked) {
  check_golden(EvictionPolicy::kPreemptNewest, 512);
}
TEST(GoldenMetricsTest, SwapToHostUnchunked) {
  check_golden(EvictionPolicy::kSwapToHost, 0);
}
TEST(GoldenMetricsTest, SwapToHostChunked) {
  check_golden(EvictionPolicy::kSwapToHost, 512);
}
TEST(GoldenMetricsTest, PriorityVictimUnchunked) {
  check_golden(EvictionPolicy::kPriorityVictim, 0);
}
TEST(GoldenMetricsTest, PriorityVictimChunked) {
  check_golden(EvictionPolicy::kPriorityVictim, 512);
}

// Regenerates the kGoldens table (see UPDATE PROCEDURE above).
TEST(GoldenMetricsTest, DISABLED_PrintGoldenValues) {
  for (const Golden& golden : kGoldens) {
    const ServingMetrics metrics = run_serving(
        golden_scenario(golden.policy, golden.chunk), golden_requests());
    std::printf("    {EvictionPolicy::k%s, %lld, %.17g, %.17g, %.17g, %.17g, "
                "%lld},\n",
                golden.policy == EvictionPolicy::kPreemptNewest
                    ? "PreemptNewest"
                    : golden.policy == EvictionPolicy::kSwapToHost
                          ? "SwapToHost"
                          : "PriorityVictim",
                static_cast<long long>(golden.chunk), metrics.ttft.p50,
                metrics.tpot.p99, metrics.e2e.p99,
                metrics.goodput_tokens_per_second,
                static_cast<long long>(metrics.preemptions));
  }
}

}  // namespace
}  // namespace cimtpu::serving
