// Model zoo and workload-builder tests: Table III configurations, graph
// structure, and closed-form MAC/byte accounting.

#include <gtest/gtest.h>

#include <algorithm>

#include "models/dit.h"
#include "models/llm.h"
#include "models/model_zoo.h"

namespace cimtpu::models {
namespace {

bool graph_has_op(const ir::Graph& graph, const std::string& name) {
  return std::any_of(graph.ops().begin(), graph.ops().end(),
                     [&](const ir::Op& op) { return op.name == name; });
}

const ir::Op& find_op(const ir::Graph& graph, const std::string& name) {
  for (const ir::Op& op : graph.ops()) {
    if (op.name == name) return op;
  }
  throw std::runtime_error("op not found: " + name);
}

// --- Model zoo (Table III) -------------------------------------------------------

TEST(ModelZooTest, Gpt330bMatchesTableIII) {
  const TransformerConfig config = gpt3_30b();
  EXPECT_EQ(config.num_layers, 48);
  EXPECT_EQ(config.num_heads, 56);
  EXPECT_EQ(config.d_model, 7168);
  EXPECT_EQ(config.d_head(), 128);
  // Stack parameter count ~ 29.6B (the "30B" the name advertises).
  EXPECT_NEAR(config.stack_parameters() / 1e9, 29.6, 0.5);
}

TEST(ModelZooTest, DitXl2MatchesTableIII) {
  const TransformerConfig config = dit_xl_2();
  EXPECT_EQ(config.num_layers, 28);
  EXPECT_EQ(config.num_heads, 16);
  EXPECT_EQ(config.d_model, 1152);
  EXPECT_EQ(config.d_head(), 72);
  // The Transformer stack (12*d^2 per block) is ~446M of DiT-XL/2's
  // ~675M total; adaLN conditioning MLPs and embeddings make up the rest
  // and are modeled as separate graph ops.
  EXPECT_NEAR(config.stack_parameters() / 1e6, 446, 10);
}

TEST(ModelZooTest, Llama213bConfig) {
  const TransformerConfig config = llama2_13b();
  EXPECT_EQ(config.num_layers, 40);
  EXPECT_EQ(config.num_heads, 40);
  EXPECT_EQ(config.d_model, 5120);
  EXPECT_EQ(config.d_ff, 13824);
  EXPECT_EQ(config.ffn, FfnKind::kSwiGlu);
  EXPECT_NEAR(config.stack_parameters() / 1e9, 12.7, 0.5);
}

TEST(ModelZooTest, LookupByName) {
  EXPECT_EQ(model_by_name("gpt3-30b").d_model, 7168);
  EXPECT_EQ(model_by_name("llama2-7b").d_model, 4096);
  EXPECT_EQ(model_by_name("dit-xl/2").num_layers, 28);
  EXPECT_THROW(model_by_name("gpt5"), ConfigError);
  EXPECT_EQ(model_names().size(), 5u);
}

TEST(ModelZooTest, ValidationCatchesBadConfigs) {
  TransformerConfig bad = gpt3_30b();
  bad.d_model = 7169;  // not divisible by 56 heads
  EXPECT_THROW(bad.validate(), ConfigError);
  bad = gpt3_30b();
  bad.num_layers = 0;
  EXPECT_THROW(bad.validate(), ConfigError);
}

TEST(ModelZooTest, WeightBytesClosedForm) {
  const TransformerConfig config = gpt3_30b();
  // 12 * d^2 bytes INT8 per layer for GELU FFN (4x hidden).
  EXPECT_DOUBLE_EQ(config.layer_weight_bytes(), 12.0 * 7168 * 7168);
  // Llama (SwiGLU): 4d^2 + 3*d*d_ff.
  const TransformerConfig llama = llama2_13b();
  EXPECT_DOUBLE_EQ(llama.layer_weight_bytes(),
                   4.0 * 5120 * 5120 + 3.0 * 5120 * 13824);
}

TEST(ModelZooTest, KvCacheBytes) {
  // 2 * batch * kv * d: GPT3-30B at batch 8, kv 1280 = 146.8 MB.
  EXPECT_NEAR(kv_cache_bytes_per_layer(gpt3_30b(), 8, 1280) / 1e6, 146.8, 0.1);
}

// --- KV residency ------------------------------------------------------------------

TEST(KvResidencyTest, FitsCmemWhenSmall) {
  EXPECT_EQ(choose_kv_residency(50 * MB, 128 * MiB, 16 * MiB),
            ir::Residency::kCmem);
  EXPECT_EQ(choose_kv_residency(140 * MB, 128 * MiB, 0),
            ir::Residency::kHbm);
  // Boundary: operand + reserved exactly at capacity stays in CMEM.
  EXPECT_EQ(choose_kv_residency(64 * MiB, 128 * MiB, 64 * MiB),
            ir::Residency::kCmem);
}

// --- LLM builders -------------------------------------------------------------------

class LlmGraphTest : public ::testing::Test {
 protected:
  TransformerConfig config_ = gpt3_30b();
};

TEST_F(LlmGraphTest, PrefillStructure) {
  const ir::Graph graph =
      build_prefill_layer(config_, 8, 1024, ir::Residency::kCmem);
  for (const char* name : {"ln1", "qkv_proj", "kv_store", "attn_qk",
                           "attn_softmax", "attn_sv", "out_proj", "ln2",
                           "ffn1", "gelu", "ffn2"}) {
    EXPECT_TRUE(graph_has_op(graph, name)) << name;
  }
}

TEST_F(LlmGraphTest, PrefillShapes) {
  const ir::Graph graph =
      build_prefill_layer(config_, 8, 1024, ir::Residency::kCmem);
  const ir::Op& qkv = find_op(graph, "qkv_proj");
  EXPECT_EQ(qkv.m, 8 * 1024);
  EXPECT_EQ(qkv.k, 7168);
  EXPECT_EQ(qkv.n, 3 * 7168);
  const ir::Op& qk = find_op(graph, "attn_qk");
  EXPECT_EQ(qk.instances, 8 * 56);
  EXPECT_EQ(qk.m, 1024);
  EXPECT_EQ(qk.k, 128);
  EXPECT_EQ(qk.n, 1024);
  EXPECT_FALSE(qk.stationary_shared);
}

TEST_F(LlmGraphTest, PrefillMacsClosedForm) {
  const std::int64_t B = 8, L = 1024, D = 7168;
  const ir::Graph graph =
      build_prefill_layer(config_, B, L, ir::Residency::kCmem);
  // Linear: B*L*12D^2; attention: B*H*2*L*L*d_head = B*2*L^2*D.
  const double expected =
      static_cast<double>(B) * L * 12 * D * D +
      static_cast<double>(B) * 2 * L * L * D;
  EXPECT_NEAR(graph.total_macs() / expected, 1.0, 1e-12);
}

TEST_F(LlmGraphTest, DecodeStructure) {
  const ir::Graph graph =
      build_decode_layer(config_, 8, 1280, ir::Residency::kCmem);
  const ir::Op& qkv = find_op(graph, "qkv_proj");
  EXPECT_EQ(qkv.m, 8);  // one token per sequence
  const ir::Op& qk = find_op(graph, "attn_qk");
  EXPECT_EQ(qk.m, 1);
  EXPECT_EQ(qk.n, 1280);
  EXPECT_EQ(qk.instances, 8 * 56);
  const ir::Op& sv = find_op(graph, "attn_sv");
  EXPECT_EQ(sv.k, 1280);
  EXPECT_EQ(sv.n, 128);
  EXPECT_TRUE(graph_has_op(graph, "kv_append"));
}

TEST_F(LlmGraphTest, DecodeMacsClosedForm) {
  const std::int64_t B = 8, KV = 1280, D = 7168;
  const ir::Graph graph =
      build_decode_layer(config_, B, KV, ir::Residency::kCmem);
  const double expected = static_cast<double>(B) * 12 * D * D +
                          static_cast<double>(B) * 2 * KV * D;
  EXPECT_NEAR(graph.total_macs() / expected, 1.0, 1e-12);
}

TEST_F(LlmGraphTest, KvResidencyPropagates) {
  const ir::Graph hbm =
      build_decode_layer(config_, 8, 1280, ir::Residency::kHbm);
  EXPECT_EQ(find_op(hbm, "attn_qk").stationary_residency, ir::Residency::kHbm);
  const ir::Graph cmem =
      build_decode_layer(config_, 8, 1280, ir::Residency::kCmem);
  EXPECT_EQ(find_op(cmem, "attn_qk").stationary_residency,
            ir::Residency::kCmem);
}

TEST_F(LlmGraphTest, SwiGluEmitsThreeFfnMatrices) {
  const ir::Graph graph =
      build_prefill_layer(llama2_13b(), 1, 128, ir::Residency::kCmem);
  EXPECT_TRUE(graph_has_op(graph, "ffn_gate"));
  EXPECT_TRUE(graph_has_op(graph, "ffn_up"));
  EXPECT_TRUE(graph_has_op(graph, "ffn_down"));
  EXPECT_FALSE(graph_has_op(graph, "ffn1"));
}

TEST_F(LlmGraphTest, EmbeddingAndHead) {
  const ir::Graph embed = build_token_embedding(config_, 8192);
  EXPECT_EQ(embed.op(0).kind, ir::OpKind::kEmbeddingLookup);
  const ir::Graph head = build_prediction_head(config_, 8);
  const ir::Op& lm = find_op(head, "lm_head");
  EXPECT_EQ(lm.n, 50257);
  // DiT has no vocabulary: head must be rejected.
  EXPECT_THROW(build_prediction_head(dit_xl_2(), 8), ConfigError);
}

TEST_F(LlmGraphTest, InvalidArgsThrow) {
  EXPECT_THROW(build_prefill_layer(config_, 0, 128, ir::Residency::kCmem),
               ConfigError);
  EXPECT_THROW(build_decode_layer(config_, 8, 0, ir::Residency::kCmem),
               ConfigError);
}

// --- DiT builders --------------------------------------------------------------------

TEST(DitGeometryTest, TokensAt512) {
  const DitGeometry geometry = dit_geometry_512();
  EXPECT_EQ(geometry.latent_size(), 64);
  EXPECT_EQ(geometry.tokens(), 1024);
}

TEST(DitGeometryTest, TokensAt256) {
  DitGeometry geometry = dit_geometry_512();
  geometry.image_size = 256;
  EXPECT_EQ(geometry.tokens(), 256);
}

TEST(DitGeometryTest, Validation) {
  DitGeometry bad = dit_geometry_512();
  bad.image_size = 500;  // not divisible by VAE factor 8... 500/8 = 62.5
  EXPECT_THROW(bad.validate(), ConfigError);
}

TEST(DitGraphTest, BlockStructure) {
  const ir::Graph graph =
      build_dit_block(dit_xl_2(), dit_geometry_512(), 8);
  for (const char* name :
       {"adaln_mlp", "modulate1", "qkv_proj", "attn_qk", "attn_softmax",
        "attn_sv", "out_proj", "gate1", "ffn1", "gelu", "ffn2", "gate2"}) {
    EXPECT_TRUE(graph_has_op(graph, name)) << name;
  }
  const ir::Op& qk = find_op(graph, "attn_qk");
  EXPECT_EQ(qk.instances, 8 * 16);
  EXPECT_EQ(qk.k, 72);  // DiT-XL/2 head dim
  EXPECT_EQ(qk.stationary_residency, ir::Residency::kCmem);
}

TEST(DitGraphTest, ConditioningGroupPresent) {
  const ir::Graph graph =
      build_dit_block(dit_xl_2(), dit_geometry_512(), 8);
  const auto groups = graph.groups();
  EXPECT_NE(std::find(groups.begin(), groups.end(), "Conditioning"),
            groups.end());
}

TEST(DitGraphTest, PrePostProcess) {
  const ir::Graph pre =
      build_dit_preprocess(dit_xl_2(), dit_geometry_512(), 8);
  EXPECT_TRUE(graph_has_op(pre, "patchify"));
  EXPECT_TRUE(graph_has_op(pre, "patch_embed"));
  const ir::Op& embed = find_op(pre, "patch_embed");
  EXPECT_EQ(embed.k, 2 * 2 * 4);  // patch^2 * channels
  EXPECT_EQ(embed.n, 1152);

  const ir::Graph post =
      build_dit_postprocess(dit_xl_2(), dit_geometry_512(), 8);
  EXPECT_TRUE(graph_has_op(post, "final_linear"));
  const ir::Op& out = find_op(post, "final_linear");
  EXPECT_EQ(out.n, 2 * 2 * 2 * 4);  // noise + variance
}

TEST(DitGraphTest, BlockMacsDominatedByLinears) {
  const ir::Graph graph =
      build_dit_block(dit_xl_2(), dit_geometry_512(), 8);
  double linear = 0, attention = 0;
  for (const ir::Op& op : graph.ops()) {
    if (!op.is_matmul()) continue;
    if (op.stationary_shared) {
      linear += op.macs();
    } else {
      attention += op.macs();
    }
  }
  EXPECT_GT(linear, attention);  // d_model 1152 at L=1024: linears dominate
}

}  // namespace
}  // namespace cimtpu::models
