// Logging tests: level gating and global state.

#include <gtest/gtest.h>

#include "common/logging.h"

namespace cimtpu {
namespace {

class LoggingTest : public ::testing::Test {
 protected:
  void TearDown() override { set_log_level(LogLevel::kWarning); }
};

TEST_F(LoggingTest, DefaultLevelIsWarning) {
  EXPECT_EQ(log_level(), LogLevel::kWarning);
}

TEST_F(LoggingTest, SetAndGetRoundTrips) {
  for (LogLevel level : {LogLevel::kDebug, LogLevel::kInfo, LogLevel::kWarning,
                         LogLevel::kError, LogLevel::kOff}) {
    set_log_level(level);
    EXPECT_EQ(log_level(), level);
  }
}

TEST_F(LoggingTest, EmittingBelowThresholdIsSafe) {
  set_log_level(LogLevel::kOff);
  // Nothing observable to assert beyond "does not crash / does not throw".
  EXPECT_NO_THROW(CIMTPU_LOG(kDebug) << "suppressed " << 42);
  EXPECT_NO_THROW(CIMTPU_LOG(kError) << "also suppressed at kOff");
}

TEST_F(LoggingTest, StreamingArbitraryTypes) {
  set_log_level(LogLevel::kOff);
  EXPECT_NO_THROW(CIMTPU_LOG(kInfo) << "mix " << 1 << ' ' << 2.5 << ' '
                                    << std::string("str"));
}

}  // namespace
}  // namespace cimtpu
