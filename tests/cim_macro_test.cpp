// CIM macro structural/functional tests: bank organization, weight I/O,
// and bit-exact matvec.

#include <gtest/gtest.h>

#include "cim/cim_macro.h"
#include "common/rng.h"

namespace cimtpu::cim {
namespace {

std::vector<std::int8_t> random_vector(Rng& rng, int length) {
  std::vector<std::int8_t> v(length);
  for (auto& x : v) x = static_cast<std::int8_t>(rng.uniform_int(-128, 127));
  return v;
}

TEST(CimMacroSpecTest, DefaultsMatchTableI) {
  CimMacroSpec spec;
  EXPECT_EQ(spec.input_channels, 128);
  EXPECT_EQ(spec.output_channels, 256);
  EXPECT_EQ(spec.banks, 32);
  EXPECT_EQ(spec.columns_per_bank(), 8);
  EXPECT_EQ(spec.weight_io_bits, 256);
  EXPECT_NO_THROW(spec.validate());
}

TEST(CimMacroSpecTest, ValidationErrors) {
  CimMacroSpec bad;
  bad.output_channels = 250;  // not divisible by 32 banks
  EXPECT_THROW(bad.validate(), ConfigError);
  CimMacroSpec zero;
  zero.input_channels = 0;
  EXPECT_THROW(zero.validate(), ConfigError);
  CimMacroSpec odd_io;
  odd_io.weight_io_bits = 9;
  EXPECT_THROW(odd_io.validate(), ConfigError);
}

TEST(CimMacroTest, StartsZeroed) {
  CimMacro macro;
  const std::vector<std::int8_t> ones(128, 1);
  for (std::int32_t out : macro.matvec(ones)) EXPECT_EQ(out, 0);
}

TEST(CimMacroTest, LoadWeightsAndReadBack) {
  CimMacroSpec spec;
  spec.input_channels = 4;
  spec.output_channels = 8;
  spec.banks = 4;
  CimMacro macro(spec);
  std::vector<std::int8_t> weights(32);
  for (int i = 0; i < 32; ++i) weights[i] = static_cast<std::int8_t>(i - 16);
  macro.load_weights(weights);
  EXPECT_EQ(macro.weight(0, 0), -16);
  EXPECT_EQ(macro.weight(3, 7), 15);
}

TEST(CimMacroTest, LoadWrongSizeThrows) {
  CimMacro macro;
  EXPECT_THROW(macro.load_weights(std::vector<std::int8_t>(10)),
               InternalError);
}

TEST(CimMacroTest, WriteColumnUpdatesOnlyThatChannel) {
  CimMacroSpec spec;
  spec.input_channels = 4;
  spec.output_channels = 8;
  spec.banks = 4;
  CimMacro macro(spec);
  macro.write_column(3, {1, 2, 3, 4});
  for (int k = 0; k < 4; ++k) {
    EXPECT_EQ(macro.weight(k, 3), k + 1);
    EXPECT_EQ(macro.weight(k, 2), 0);
    EXPECT_EQ(macro.weight(k, 4), 0);
  }
}

TEST(CimMacroTest, WriteColumnValidation) {
  CimMacro macro;
  EXPECT_THROW(macro.write_column(256, std::vector<std::int8_t>(128)),
               InternalError);
  EXPECT_THROW(macro.write_column(0, std::vector<std::int8_t>(4)),
               InternalError);
}

TEST(CimMacroTest, BankMapping) {
  CimMacro macro;  // 256 outputs / 32 banks = 8 per bank
  EXPECT_EQ(macro.bank_of(0), 0);
  EXPECT_EQ(macro.bank_of(7), 0);
  EXPECT_EQ(macro.bank_of(8), 1);
  EXPECT_EQ(macro.bank_of(255), 31);
}

TEST(CimMacroTest, MatvecMatchesReferenceOnRandomWeights) {
  CimMacroSpec spec;
  spec.input_channels = 32;
  spec.output_channels = 16;
  spec.banks = 8;
  CimMacro macro(spec);
  Rng rng(99);
  macro.load_weights(random_vector(rng, 32 * 16));
  for (int trial = 0; trial < 20; ++trial) {
    const auto input = random_vector(rng, 32);
    EXPECT_EQ(macro.matvec(input), macro.reference_matvec(input));
  }
}

TEST(CimMacroTest, FullSizeMatvecBitExact) {
  CimMacro macro;  // full 128x256
  Rng rng(2024);
  std::vector<std::int8_t> weights(128 * 256);
  for (auto& w : weights) w = static_cast<std::int8_t>(rng.uniform_int(-128, 127));
  macro.load_weights(weights);
  const auto input = random_vector(rng, 128);
  EXPECT_EQ(macro.matvec(input), macro.reference_matvec(input));
}

TEST(CimMacroTest, MatvecInputSizeValidated) {
  CimMacro macro;
  EXPECT_THROW(macro.matvec(std::vector<std::int8_t>(4)), InternalError);
}

TEST(CimMacroTest, ThroughputAbstraction) {
  CimMacro macro;
  // 128*256 cells / 128 MACs per cycle = 256 cycles per input vector.
  EXPECT_DOUBLE_EQ(macro.cycles_per_input_vector(), 256.0);
  // 32 KiB tile through a 32 B/cycle port = 1024 cycles.
  EXPECT_DOUBLE_EQ(macro.cycles_per_weight_tile(), 1024.0);
}

TEST(CimMacroTest, SimultaneousComputeAndUpdateSemantics) {
  // Writing one column while computing: results reflect the write for that
  // column only (models the interleaved read/write the paper relies on).
  CimMacroSpec spec;
  spec.input_channels = 4;
  spec.output_channels = 8;
  spec.banks = 4;
  CimMacro macro(spec);
  const std::vector<std::int8_t> input{1, 1, 1, 1};
  macro.write_column(0, {1, 1, 1, 1});
  const auto before = macro.matvec(input);
  EXPECT_EQ(before[0], 4);
  EXPECT_EQ(before[1], 0);
  macro.write_column(1, {2, 2, 2, 2});
  const auto after = macro.matvec(input);
  EXPECT_EQ(after[0], 4);  // untouched bank unchanged
  EXPECT_EQ(after[1], 8);
}

}  // namespace
}  // namespace cimtpu::cim
