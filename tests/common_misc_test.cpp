// Tests for the remaining common utilities: math helpers, tables, CSV,
// config parsing and the deterministic RNG.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "common/config.h"
#include "common/csv.h"
#include "common/math_util.h"
#include "common/rng.h"
#include "common/table.h"

namespace cimtpu {
namespace {

// --- math_util ---------------------------------------------------------------

TEST(MathUtilTest, CeilDiv) {
  EXPECT_EQ(ceil_div(10, 3), 4);
  EXPECT_EQ(ceil_div(9, 3), 3);
  EXPECT_EQ(ceil_div(1, 128), 1);
  EXPECT_EQ(ceil_div<std::int64_t>(7168, 128), 56);
  EXPECT_EQ(ceil_div<std::int64_t>(1281, 256), 6);
}

TEST(MathUtilTest, RoundUp) {
  EXPECT_EQ(round_up(7, 8), 8);
  EXPECT_EQ(round_up(72, 8), 72);
  EXPECT_EQ(round_up<std::int64_t>(1281, 8), 1288);
  EXPECT_EQ(round_up(0, 8), 0);
}

TEST(MathUtilTest, IsPow2) {
  EXPECT_TRUE(is_pow2(1));
  EXPECT_TRUE(is_pow2(128));
  EXPECT_TRUE(is_pow2(1LL << 40));
  EXPECT_FALSE(is_pow2(0));
  EXPECT_FALSE(is_pow2(-4));
  EXPECT_FALSE(is_pow2(72));
}

TEST(MathUtilTest, Ilog2) {
  EXPECT_EQ(ilog2(1), 0);
  EXPECT_EQ(ilog2(128), 7);
  EXPECT_EQ(ilog2(129), 7);
  EXPECT_EQ(ilog2(255), 7);
  EXPECT_EQ(ilog2(256), 8);
}

TEST(MathUtilTest, RelativeDifference) {
  EXPECT_DOUBLE_EQ(relative_difference(0.0, 0.0), 0.0);
  EXPECT_NEAR(relative_difference(9.43, 9.21), 0.0233, 1e-3);
  EXPECT_DOUBLE_EQ(relative_difference(-2.0, 2.0), 2.0);
}

TEST(MathUtilTest, WithinBand) {
  EXPECT_TRUE(within_band(9.4, 8.0, 11.0));
  EXPECT_FALSE(within_band(7.9, 8.0, 11.0));
  EXPECT_TRUE(within_band(8.0, 8.0, 11.0));  // inclusive
}

// --- AsciiTable --------------------------------------------------------------

TEST(TableTest, RendersHeaderAndRows) {
  AsciiTable table("T");
  table.set_header({"a", "bb"});
  table.add_row({"1", "2"});
  const std::string out = table.to_string();
  EXPECT_NE(out.find("== T =="), std::string::npos);
  EXPECT_NE(out.find("| a"), std::string::npos);
  EXPECT_NE(out.find("| 1"), std::string::npos);
}

TEST(TableTest, RowWidthMismatchThrows) {
  AsciiTable table;
  table.set_header({"a", "b"});
  EXPECT_THROW(table.add_row({"only-one"}), InternalError);
}

TEST(TableTest, HeaderAfterRowsThrows) {
  AsciiTable table;
  table.add_row({"x"});
  EXPECT_THROW(table.set_header({"a"}), InternalError);
}

TEST(TableTest, SeparatorAndAlignment) {
  AsciiTable table;
  table.set_header({"col", "value"});
  table.add_row({"short", "1"});
  table.add_separator();
  table.add_row({"a-much-longer-cell", "2"});
  const std::string out = table.to_string();
  // All lines between rules have equal length.
  std::size_t expected = out.find('\n');
  EXPECT_GT(expected, 0u);
}

TEST(TableTest, CellFormatters) {
  EXPECT_EQ(cell_f(3.14159, 2), "3.14");
  EXPECT_EQ(cell_f(1.0, 0), "1");
  EXPECT_EQ(cell_i(-42), "-42");
}

// --- CSV ----------------------------------------------------------------------

TEST(CsvTest, EscapesSpecialCharacters) {
  EXPECT_EQ(csv_escape("plain"), "plain");
  EXPECT_EQ(csv_escape("a,b"), "\"a,b\"");
  EXPECT_EQ(csv_escape("say \"hi\""), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(csv_escape("line\nbreak"), "\"line\nbreak\"");
}

TEST(CsvTest, WritesFile) {
  const std::string path = testing::TempDir() + "/cimtpu_csv_test.csv";
  {
    CsvWriter csv(path);
    csv.write_header({"a", "b"});
    csv.write_row({"1", "x,y"});
  }
  std::ifstream in(path);
  std::string line1, line2;
  std::getline(in, line1);
  std::getline(in, line2);
  EXPECT_EQ(line1, "a,b");
  EXPECT_EQ(line2, "1,\"x,y\"");
  std::remove(path.c_str());
}

TEST(CsvTest, UnwritablePathThrows) {
  EXPECT_THROW(CsvWriter("/nonexistent-dir/x.csv"), ConfigError);
}

TEST(CsvTest, DoubleHeaderThrows) {
  const std::string path = testing::TempDir() + "/cimtpu_csv_test2.csv";
  CsvWriter csv(path);
  csv.write_header({"a"});
  EXPECT_THROW(csv.write_header({"b"}), InternalError);
  csv.close();
  std::remove(path.c_str());
}

// --- ConfigMap ----------------------------------------------------------------

TEST(ConfigTest, ParsesKeyValues) {
  const ConfigMap config = ConfigMap::parse(
      "# comment\n"
      "mxu.count = 4\n"
      "clock_ghz = 1.05   # trailing comment\n"
      "name = design-a\n"
      "flag = true\n"
      "\n");
  EXPECT_EQ(config.get_int("mxu.count", 0), 4);
  EXPECT_DOUBLE_EQ(config.get_double("clock_ghz", 0), 1.05);
  EXPECT_EQ(config.get_string("name", ""), "design-a");
  EXPECT_TRUE(config.get_bool("flag", false));
}

TEST(ConfigTest, FallbacksForMissingKeys) {
  const ConfigMap config = ConfigMap::parse("");
  EXPECT_EQ(config.get_int("absent", 7), 7);
  EXPECT_EQ(config.get_string("absent", "d"), "d");
  EXPECT_FALSE(config.contains("absent"));
}

TEST(ConfigTest, MalformedLineThrows) {
  EXPECT_THROW(ConfigMap::parse("no equals sign here"), ConfigError);
  EXPECT_THROW(ConfigMap::parse("= value-without-key"), ConfigError);
}

TEST(ConfigTest, TypeErrorsThrow) {
  const ConfigMap config = ConfigMap::parse("x = not-a-number\n");
  EXPECT_THROW(config.get_int("x", 0), ConfigError);
  EXPECT_THROW(config.get_double("x", 0), ConfigError);
  EXPECT_THROW(config.get_bool("x", false), ConfigError);
}

TEST(ConfigTest, RequiredKeys) {
  const ConfigMap config = ConfigMap::parse("present = 1\n");
  EXPECT_EQ(config.require_int("present"), 1);
  EXPECT_THROW(config.require_int("absent"), ConfigError);
  EXPECT_THROW(config.require_string("absent"), ConfigError);
}

TEST(ConfigTest, BoolSpellings) {
  const ConfigMap config = ConfigMap::parse(
      "a = true\nb = ON\nc = 0\nd = No\n");
  EXPECT_TRUE(config.get_bool("a", false));
  EXPECT_TRUE(config.get_bool("b", false));
  EXPECT_FALSE(config.get_bool("c", true));
  EXPECT_FALSE(config.get_bool("d", true));
}

TEST(ConfigTest, KeysSorted) {
  const ConfigMap config = ConfigMap::parse("b = 2\na = 1\n");
  const auto keys = config.keys();
  ASSERT_EQ(keys.size(), 2u);
  EXPECT_EQ(keys[0], "a");
  EXPECT_EQ(keys[1], "b");
}

TEST(ConfigTest, MissingFileThrows) {
  EXPECT_THROW(ConfigMap::load_file("/no/such/file.conf"), ConfigError);
}

// --- Rng -----------------------------------------------------------------------

TEST(RngTest, DeterministicAcrossInstances) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(RngTest, UniformIntWithinBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const std::int64_t v = rng.uniform_int(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(RngTest, UniformDoubleInHalfOpenRange) {
  Rng rng(7);
  double min = 1.0, max = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.uniform();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
    min = std::min(min, v);
    max = std::max(max, v);
  }
  // Coverage sanity: the sample should span most of [0, 1).
  EXPECT_LT(min, 0.05);
  EXPECT_GT(max, 0.95);
}

TEST(RngTest, UniformMeanNearHalf) {
  Rng rng(99);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

}  // namespace
}  // namespace cimtpu
