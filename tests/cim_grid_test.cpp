// Functional CIM grid tests: bit-exact tiled GEMM with K-accumulation
// through PSUM, and tiling statistics matching the cost model's task math.

#include <gtest/gtest.h>

#include "cim/cim_grid.h"
#include "common/rng.h"
#include "common/status.h"

namespace cimtpu::cim {
namespace {

std::vector<std::int8_t> random_vector(Rng& rng, std::size_t length) {
  std::vector<std::int8_t> v(length);
  for (auto& x : v) x = static_cast<std::int8_t>(rng.uniform_int(-128, 127));
  return v;
}

CimMacroSpec small_spec() {
  CimMacroSpec spec;
  spec.input_channels = 8;
  spec.output_channels = 16;
  spec.banks = 4;
  return spec;
}

TEST(CimGridTest, SingleTileExact) {
  CimGrid grid(2, 2, small_spec());
  Rng rng(1);
  const auto a = random_vector(rng, 3 * 8);
  const auto w = random_vector(rng, 8 * 16);
  EXPECT_EQ(grid.gemm(a, w, 3, 8, 16), CimGrid::reference(a, w, 3, 8, 16));
}

TEST(CimGridTest, KAccumulationAcrossTiles) {
  // k = 24 -> 3 K-tiles accumulating into the same outputs.
  CimGrid grid(2, 2, small_spec());
  Rng rng(2);
  const auto a = random_vector(rng, 5 * 24);
  const auto w = random_vector(rng, 24 * 16);
  EXPECT_EQ(grid.gemm(a, w, 5, 24, 16), CimGrid::reference(a, w, 5, 24, 16));
}

TEST(CimGridTest, RaggedDimensionsZeroPad) {
  // k = 13, n = 21: both pad inside the tiles without corrupting results.
  CimGrid grid(2, 2, small_spec());
  Rng rng(3);
  const auto a = random_vector(rng, 7 * 13);
  const auto w = random_vector(rng, 13 * 21);
  EXPECT_EQ(grid.gemm(a, w, 7, 13, 21), CimGrid::reference(a, w, 7, 13, 21));
}

TEST(CimGridTest, StatsMatchCostModelTaskMath) {
  CimGrid grid(2, 2, small_spec());
  Rng rng(4);
  const int m = 2, k = 24, n = 40;  // Kt = 3, Nt = 3 -> 9 tasks
  const auto a = random_vector(rng, static_cast<std::size_t>(m) * k);
  const auto w = random_vector(rng, static_cast<std::size_t>(k) * n);
  CimGrid::RunStats stats;
  grid.gemm(a, w, m, k, n, &stats);
  EXPECT_EQ(stats.tasks, 9);
  // 9 tasks over 4 cores -> 3 rounds (ceil).
  EXPECT_EQ(stats.rounds, 3);
  EXPECT_EQ(stats.weight_bytes_written, 9LL * 8 * 16);
}

TEST(CimGridTest, WeightTrafficScalesWithTasksNotM) {
  CimGrid grid(1, 1, small_spec());
  Rng rng(5);
  const auto w = random_vector(rng, 8 * 16);
  CimGrid::RunStats m1, m64;
  grid.gemm(random_vector(rng, 1 * 8), w, 1, 8, 16, &m1);
  grid.gemm(random_vector(rng, 64 * 8), w, 64, 8, 16, &m64);
  EXPECT_EQ(m1.weight_bytes_written, m64.weight_bytes_written);
}

class CimGridPropertyTest
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(CimGridPropertyTest, BitExactVsReference) {
  const auto [m, k, n] = GetParam();
  CimGrid grid(2, 3, small_spec());
  Rng rng(0xC0DE + m * 101 + k * 13 + n);
  const auto a = random_vector(rng, static_cast<std::size_t>(m) * k);
  const auto w = random_vector(rng, static_cast<std::size_t>(k) * n);
  EXPECT_EQ(grid.gemm(a, w, m, k, n), CimGrid::reference(a, w, m, k, n));
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, CimGridPropertyTest,
    ::testing::Combine(::testing::Values(1, 4, 9),
                       ::testing::Values(1, 8, 17, 32),
                       ::testing::Values(1, 16, 30, 48)));

TEST(CimGridTest, DefaultSpecFullCore) {
  // One full-size core (128x256) against the reference.
  CimGrid grid(1, 1);
  Rng rng(6);
  const auto a = random_vector(rng, 2 * 128);
  const auto w = random_vector(rng, 128 * 256);
  EXPECT_EQ(grid.gemm(a, w, 2, 128, 256),
            CimGrid::reference(a, w, 2, 128, 256));
}

TEST(CimGridTest, Validation) {
  EXPECT_THROW(CimGrid(0, 1), ConfigError);
  CimGrid grid(1, 1, small_spec());
  EXPECT_THROW(grid.gemm({1}, {1}, 0, 1, 1), InternalError);
  EXPECT_THROW(grid.gemm({1, 2}, {1}, 1, 1, 1), InternalError);
}

}  // namespace
}  // namespace cimtpu::cim
