// Digital systolic MXU cost-model tests: exact cycle counts from the
// SCALE-Sim-style analytic formulas, utilization regimes, and energy
// composition.

#include <gtest/gtest.h>

#include "systolic/systolic_mxu.h"
#include "tech/technology.h"

namespace cimtpu::systolic {
namespace {

class SystolicTest : public ::testing::Test {
 protected:
  SystolicTest()
      : energy_(tech::calibration_node()),
        area_(tech::calibration_node()),
        mxu_(SystolicMxuSpec{128, 128}, energy_, area_) {}

  tech::EnergyModel energy_;
  tech::AreaModel area_;
  SystolicMxu mxu_;
};

TEST_F(SystolicTest, BasicProperties) {
  EXPECT_EQ(mxu_.name(), "systolic-128x128");
  EXPECT_DOUBLE_EQ(mxu_.macs_per_cycle(), 16384.0);
  EXPECT_DOUBLE_EQ(mxu_.weight_ingest_bytes_per_cycle(), 128.0);
  EXPECT_FALSE(mxu_.overlapped_weight_load());
}

TEST_F(SystolicTest, SingleTileCycleCount) {
  // One 128x128 tile, m rows: load(128) + m, plus ramp 254 once.
  GemmWorkload w{/*m=*/100, /*k=*/128, /*n=*/128, /*instances=*/1,
                 ir::DType::kInt8};
  const MxuCost cost = mxu_.evaluate(w);
  EXPECT_DOUBLE_EQ(cost.busy_cycles, 128.0 + 100.0 + 254.0);
}

TEST_F(SystolicTest, TiledGemmCycleCount) {
  // k = 256 -> 2 K-tiles, n = 384 -> 3 N-tiles: 6 tiles.
  GemmWorkload w{/*m=*/64, /*k=*/256, /*n=*/384, /*instances=*/1,
                 ir::DType::kInt8};
  const MxuCost cost = mxu_.evaluate(w);
  EXPECT_DOUBLE_EQ(cost.busy_cycles, 6.0 * (128.0 + 64.0) + 254.0);
}

TEST_F(SystolicTest, PartialTilesPadToFullArray) {
  // k = 129 pads to 2 K-tiles even though barely over: the per-tile
  // load+stream cost doubles while the once-per-instance ramp does not.
  GemmWorkload a{/*m=*/8, /*k=*/128, /*n=*/128, 1, ir::DType::kInt8};
  GemmWorkload b{/*m=*/8, /*k=*/129, /*n=*/128, 1, ir::DType::kInt8};
  const double ca = mxu_.evaluate(a).busy_cycles;  // 136 + 254
  const double cb = mxu_.evaluate(b).busy_cycles;  // 2*136 + 254
  EXPECT_DOUBLE_EQ(cb - ca, 136.0);
}

TEST_F(SystolicTest, InstancesScaleLinearly) {
  GemmWorkload w{/*m=*/8, /*k=*/128, /*n=*/1280, /*instances=*/1,
                 ir::DType::kInt8};
  GemmWorkload w8 = w;
  w8.instances = 8;
  EXPECT_DOUBLE_EQ(mxu_.evaluate(w8).busy_cycles,
                   8.0 * mxu_.evaluate(w).busy_cycles);
}

TEST_F(SystolicTest, Bf16WeightLoadTakesTwiceAsLong) {
  GemmWorkload i8{/*m=*/1, /*k=*/128, /*n=*/128, 1, ir::DType::kInt8};
  GemmWorkload bf = i8;
  bf.dtype = ir::DType::kBf16;
  // Same stream/ramp; weight fill doubles (two byte-planes).
  EXPECT_DOUBLE_EQ(mxu_.evaluate(bf).busy_cycles - mxu_.evaluate(i8).busy_cycles,
                   128.0);
}

TEST_F(SystolicTest, GemvUtilizationCollapses) {
  // Large-m GEMM: utilization near 1.  GEMV (m = 1): utilization ~ 1/129.
  GemmWorkload gemm{/*m=*/8192, /*k=*/128, /*n=*/128, 1, ir::DType::kInt8};
  GemmWorkload gemv{/*m=*/1, /*k=*/128, /*n=*/128, 1, ir::DType::kInt8};
  EXPECT_GT(mxu_.evaluate(gemm).utilization(), 0.9);
  EXPECT_LT(mxu_.evaluate(gemv).utilization(), 0.01);
}

TEST_F(SystolicTest, UsefulMacsIndependentOfPadding) {
  GemmWorkload w{/*m=*/10, /*k=*/100, /*n=*/70, /*instances=*/3,
                 ir::DType::kInt8};
  EXPECT_DOUBLE_EQ(mxu_.evaluate(w).useful_macs, 3.0 * 10 * 100 * 70);
}

TEST_F(SystolicTest, WeightBytesCountPaddedTiles) {
  GemmWorkload w{/*m=*/1, /*k=*/130, /*n=*/10, /*instances=*/1,
                 ir::DType::kInt8};
  // 2 K-tiles x 1 N-tile x 128x128 bytes.
  EXPECT_DOUBLE_EQ(mxu_.evaluate(w).stationary_bytes_loaded, 2.0 * 16384);
}

TEST_F(SystolicTest, EnergyComposition) {
  GemmWorkload w{/*m=*/128, /*k=*/128, /*n=*/128, 1, ir::DType::kInt8};
  const MxuCost cost = mxu_.evaluate(w);
  const double bubbles = cost.occupied_mac_slots - cost.useful_macs;
  const Joules expected =
      cost.useful_macs * energy_.digital_mac(ir::DType::kInt8) +
      bubbles * energy_.digital_bubble_slot(ir::DType::kInt8) +
      cost.stationary_bytes_loaded * energy_.digital_weight_load_per_byte();
  EXPECT_NEAR(cost.busy_energy, expected, expected * 1e-12);
}

TEST_F(SystolicTest, PeakPowerMatchesTableIIAnchor) {
  // TOPS/W at the 22 nm reference clock must be 0.77 by construction.
  EXPECT_NEAR(mxu_.tops_per_watt(ir::DType::kInt8, 1 * GHz), 0.77, 1e-6);
}

TEST_F(SystolicTest, AreaEfficiencyMatchesTableIIAnchor) {
  EXPECT_NEAR(mxu_.tops_per_mm2(1 * GHz), 0.648, 1e-6);
}

TEST_F(SystolicTest, IdlePowerBelowPeak) {
  EXPECT_LT(mxu_.idle_power(ir::DType::kInt8),
            mxu_.peak_dynamic_power(ir::DType::kInt8));
  EXPECT_GT(mxu_.idle_power(ir::DType::kInt8), 0.0);
}

TEST_F(SystolicTest, InvalidWorkloadThrows) {
  GemmWorkload w{/*m=*/0, /*k=*/128, /*n=*/128, 1, ir::DType::kInt8};
  EXPECT_THROW(mxu_.evaluate(w), InternalError);
}

TEST(SystolicSpecTest, InvalidSpecThrows) {
  tech::EnergyModel energy(tech::calibration_node());
  tech::AreaModel area(tech::calibration_node());
  EXPECT_THROW(SystolicMxu(SystolicMxuSpec{0, 128}, energy, area), ConfigError);
  EXPECT_THROW(SystolicMxu(SystolicMxuSpec{128, -1}, energy, area),
               ConfigError);
}

// --- Parameterized property sweep ----------------------------------------------

struct GemmCase {
  std::int64_t m, k, n, instances;
};

class SystolicPropertyTest : public ::testing::TestWithParam<GemmCase> {
 protected:
  SystolicPropertyTest()
      : energy_(tech::calibration_node()),
        area_(tech::calibration_node()),
        mxu_(SystolicMxuSpec{128, 128}, energy_, area_) {}
  tech::EnergyModel energy_;
  tech::AreaModel area_;
  SystolicMxu mxu_;
};

TEST_P(SystolicPropertyTest, UtilizationBounded) {
  const GemmCase& c = GetParam();
  GemmWorkload w{c.m, c.k, c.n, c.instances, ir::DType::kInt8};
  const MxuCost cost = mxu_.evaluate(w);
  EXPECT_GT(cost.utilization(), 0.0);
  EXPECT_LE(cost.utilization(), 1.0);
}

TEST_P(SystolicPropertyTest, EnergyAtLeastUsefulMacs) {
  const GemmCase& c = GetParam();
  GemmWorkload w{c.m, c.k, c.n, c.instances, ir::DType::kInt8};
  const MxuCost cost = mxu_.evaluate(w);
  EXPECT_GE(cost.busy_energy,
            cost.useful_macs * energy_.digital_mac(ir::DType::kInt8));
}

TEST_P(SystolicPropertyTest, CyclesAboveThroughputBound) {
  const GemmCase& c = GetParam();
  GemmWorkload w{c.m, c.k, c.n, c.instances, ir::DType::kInt8};
  const MxuCost cost = mxu_.evaluate(w);
  EXPECT_GE(cost.busy_cycles * mxu_.macs_per_cycle(),
            cost.useful_macs * 0.999999);
}

TEST_P(SystolicPropertyTest, MonotonicInM) {
  const GemmCase& c = GetParam();
  GemmWorkload w{c.m, c.k, c.n, c.instances, ir::DType::kInt8};
  GemmWorkload bigger = w;
  bigger.m = w.m * 2;
  EXPECT_GT(mxu_.evaluate(bigger).busy_cycles, mxu_.evaluate(w).busy_cycles);
}

INSTANTIATE_TEST_SUITE_P(
    GemmShapes, SystolicPropertyTest,
    ::testing::Values(GemmCase{1, 128, 1280, 448},    // LLM decode attention
                      GemmCase{8, 7168, 21504, 1},    // LLM decode QKV
                      GemmCase{8192, 7168, 7168, 1},  // LLM prefill proj
                      GemmCase{1024, 72, 1024, 128},  // DiT attention QK
                      GemmCase{1024, 1024, 72, 128},  // DiT attention SV
                      GemmCase{3, 5, 7, 2},           // tiny odd shape
                      GemmCase{1, 1, 1, 1},           // degenerate
                      GemmCase{127, 127, 127, 1},     // just under tile
                      GemmCase{129, 129, 129, 1}));   // just over tile

}  // namespace
}  // namespace cimtpu::systolic
