// Multi-chip parallelism tests: pipeline throughput scaling, tensor
// parallel sharding, and communication accounting.

#include <gtest/gtest.h>

#include "parallel/multi_chip.h"

namespace cimtpu::parallel {
namespace {

sim::LlmScenario small_llm() {
  sim::LlmScenario scenario;
  scenario.model = models::gpt3_30b();
  scenario.model.num_layers = 8;
  scenario.batch = 8;
  scenario.input_len = 128;
  scenario.output_len = 16;
  return scenario;
}

sim::DitScenario small_dit() {
  sim::DitScenario scenario;
  scenario.model = models::dit_xl_2();
  scenario.geometry = models::dit_geometry_512();
  scenario.batch = 8;
  return scenario;
}

TEST(LlmPipelineTest, SingleChipBaseline) {
  const auto result =
      evaluate_llm_pipeline(arch::tpu_v4i_baseline(), small_llm(), 1);
  EXPECT_EQ(result.chips, 1);
  EXPECT_GT(result.requests_per_second, 0);
  EXPECT_DOUBLE_EQ(result.ici_energy_per_request, 0);
  EXPECT_NEAR(result.tokens_per_second,
              result.requests_per_second * 8 * 16, 1e-6);
}

TEST(LlmPipelineTest, ThroughputScalesNearLinearly) {
  const auto scenario = small_llm();
  const auto one = evaluate_llm_pipeline(arch::tpu_v4i_baseline(), scenario, 1);
  const auto two = evaluate_llm_pipeline(arch::tpu_v4i_baseline(), scenario, 2);
  const auto four =
      evaluate_llm_pipeline(arch::tpu_v4i_baseline(), scenario, 4);
  EXPECT_GT(two.requests_per_second, one.requests_per_second * 1.7);
  EXPECT_GT(four.requests_per_second, two.requests_per_second * 1.7);
  EXPECT_LE(four.requests_per_second, one.requests_per_second * 4.001);
}

TEST(LlmPipelineTest, RequestLatencyIncludesTransfers) {
  const auto scenario = small_llm();
  const auto one = evaluate_llm_pipeline(arch::tpu_v4i_baseline(), scenario, 1);
  const auto four =
      evaluate_llm_pipeline(arch::tpu_v4i_baseline(), scenario, 4);
  // Same total compute split across stages; transfers add a little.
  EXPECT_GT(four.request_latency, one.request_latency);
  EXPECT_LT(four.request_latency, one.request_latency * 1.1);
  EXPECT_GT(four.ici_energy_per_request, 0);
}

TEST(LlmPipelineTest, EnergyPerRequestIndependentOfChipCount) {
  const auto scenario = small_llm();
  const auto one = evaluate_llm_pipeline(arch::tpu_v4i_baseline(), scenario, 1);
  const auto four =
      evaluate_llm_pipeline(arch::tpu_v4i_baseline(), scenario, 4);
  // MXU energy is workload energy; splitting layers does not change it.
  EXPECT_NEAR(four.mxu_energy_per_request / one.mxu_energy_per_request, 1.0,
              0.01);
}

TEST(LlmPipelineTest, MoreStagesThanLayersRejected) {
  auto scenario = small_llm();
  scenario.model.num_layers = 2;
  EXPECT_THROW(evaluate_llm_pipeline(arch::tpu_v4i_baseline(), scenario, 4),
               ConfigError);
}

TEST(DitPipelineTest, ThroughputScalesAndEnergyStable) {
  const auto scenario = small_dit();
  const auto one = evaluate_dit_pipeline(arch::tpu_v4i_baseline(), scenario, 1);
  const auto four =
      evaluate_dit_pipeline(arch::tpu_v4i_baseline(), scenario, 4);
  EXPECT_GT(four.images_per_second, one.images_per_second * 3.0);
  EXPECT_NEAR(four.mxu_energy_per_image / one.mxu_energy_per_image, 1.0,
              0.01);
}

TEST(DitPipelineTest, DesignBOutperformsBaseline) {
  const auto scenario = small_dit();
  const auto base = evaluate_dit_pipeline(arch::tpu_v4i_baseline(), scenario, 4);
  const auto b = evaluate_dit_pipeline(arch::design_b(), scenario, 4);
  EXPECT_GT(b.images_per_second, base.images_per_second);
  EXPECT_LT(b.mxu_energy_per_image, base.mxu_energy_per_image);
}

// --- Tensor parallelism -----------------------------------------------------------

TEST(TensorParallelTest, ShardingDividesHeadsAndFfn) {
  const auto shard = shard_tensor_parallel(models::gpt3_30b(), 4);
  EXPECT_EQ(shard.num_heads, 14);
  EXPECT_EQ(shard.d_ff, 7168);
  EXPECT_EQ(shard.d_model, 7168);  // row-parallel keeps full width
  EXPECT_EQ(shard.num_layers, 48);
}

TEST(TensorParallelTest, IndivisibleShardingRejected) {
  EXPECT_THROW(shard_tensor_parallel(models::gpt3_30b(), 3), ConfigError);
  // DiT-XL/2 has 16 heads; 32-way is impossible.
  EXPECT_THROW(shard_tensor_parallel(models::dit_xl_2(), 32), ConfigError);
}

TEST(TensorParallelTest, AllReduceBytes) {
  // Two all-reduces of [rows, d_model] INT8.
  EXPECT_DOUBLE_EQ(
      tensor_parallel_allreduce_bytes(models::gpt3_30b(), 8192),
      2.0 * 8192 * 7168);
}

TEST(TensorParallelTest, FourWayFasterThanOneDespiteComms) {
  auto scenario = small_llm();
  scenario.model.num_heads = 56;
  const auto one =
      evaluate_llm_tensor_parallel(arch::tpu_v4i_baseline(), scenario, 1);
  const auto four =
      evaluate_llm_tensor_parallel(arch::tpu_v4i_baseline(), scenario, 4);
  EXPECT_LT(four.latency, one.latency);
  EXPECT_GT(four.communication_time, 0);
  EXPECT_DOUBLE_EQ(one.communication_time, 0);
}

TEST(TensorParallelTest, EnergyCountsAllChips) {
  const auto scenario = small_llm();
  const auto four =
      evaluate_llm_tensor_parallel(arch::tpu_v4i_baseline(), scenario, 4);
  const auto one =
      evaluate_llm_tensor_parallel(arch::tpu_v4i_baseline(), scenario, 1);
  // Four chips burn background power even with the workload split, so the
  // total exceeds half of 1-chip energy but stays within ~4x.
  EXPECT_GT(four.total_energy, one.total_energy * 0.5);
  EXPECT_LT(four.total_energy, one.total_energy * 4.0);
}

}  // namespace
}  // namespace cimtpu::parallel
