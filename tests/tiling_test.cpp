// Tiling-search tests: traffic model invariants, legality, and the reuse
// behaviour the paper's mapping engine (Fig. 5) relies on.

#include <gtest/gtest.h>

#include "common/status.h"
#include "mapping/tiling.h"

namespace cimtpu::mapping {
namespace {

ir::Op gemm(std::int64_t m, std::int64_t k, std::int64_t n) {
  return ir::make_weight_gemm("g", "G", m, k, n, ir::DType::kInt8);
}

TEST(TilingTest, CompulsoryTraffic) {
  const ir::Op op = gemm(100, 200, 300);
  EXPECT_DOUBLE_EQ(compulsory_traffic(op),
                   100.0 * 200 + 200.0 * 300 + 100.0 * 300);
}

TEST(TilingTest, FullFitReachesCompulsoryTraffic) {
  // Everything fits in one tile: no re-reads, reuse factor 1.
  const ir::Op op = gemm(64, 128, 128);
  TilingOptions options;
  const TileChoice choice = best_tiling(op, options);
  EXPECT_EQ(choice.total_tiles(), 1);
  EXPECT_DOUBLE_EQ(choice.vmem_traffic, compulsory_traffic(op));
  EXPECT_DOUBLE_EQ(choice.reuse_factor, 1.0);
}

TEST(TilingTest, WorkingSetRespectsBudget) {
  const ir::Op op = gemm(8192, 7168, 28672);  // GPT3-30B FFN1, prefill
  TilingOptions options;
  for (const TileChoice& choice : enumerate_tilings(op, options)) {
    EXPECT_LE(choice.working_set,
              options.vmem_capacity * options.buffer_fraction);
  }
}

TEST(TilingTest, BestIsTrafficMinimal) {
  const ir::Op op = gemm(8192, 7168, 28672);
  TilingOptions options;
  const TileChoice best = best_tiling(op, options);
  for (const TileChoice& choice : enumerate_tilings(op, options)) {
    EXPECT_LE(best.vmem_traffic, choice.vmem_traffic);
  }
  // Large GEMMs cannot reach compulsory traffic in 8 MiB of buffer.
  EXPECT_GT(best.vmem_traffic, compulsory_traffic(op));
  EXPECT_LT(best.reuse_factor, 1.0);
  EXPECT_GT(best.reuse_factor, 0.01);
}

TEST(TilingTest, MoreVmemNeverHurts) {
  const ir::Op op = gemm(8192, 7168, 7168);
  TilingOptions small_opts;
  small_opts.vmem_capacity = 4 * MiB;
  TilingOptions big_opts;
  big_opts.vmem_capacity = 64 * MiB;
  EXPECT_GE(best_tiling(op, small_opts).vmem_traffic,
            best_tiling(op, big_opts).vmem_traffic);
}

TEST(TilingTest, KSplitChargesPartialSumRevisits) {
  const ir::Op op = gemm(128, 1024, 128);
  TilingOptions options;
  const TileChoice whole_k = evaluate_tiling(op, 128, 1024, 128, options);
  const TileChoice split_k = evaluate_tiling(op, 128, 128, 128, options);
  // 8 K-tiles -> 1 + 2*7 = 15x output traffic.
  EXPECT_DOUBLE_EQ(split_k.vmem_traffic - whole_k.vmem_traffic,
                   14.0 * 128 * 128);
}

TEST(TilingTest, TilesCountsConsistent) {
  const ir::Op op = gemm(1000, 1000, 1000);
  TilingOptions options;
  const TileChoice choice = best_tiling(op, options);
  EXPECT_EQ(choice.m_tiles, (1000 + choice.tm - 1) / choice.tm);
  EXPECT_EQ(choice.k_tiles, (1000 + choice.tk - 1) / choice.tk);
  EXPECT_EQ(choice.n_tiles, (1000 + choice.tn - 1) / choice.tn);
}

TEST(TilingTest, ImpossibleBudgetThrows) {
  const ir::Op op = gemm(8192, 7168, 28672);
  TilingOptions options;
  options.vmem_capacity = 1024;  // 1 KiB: nothing fits
  EXPECT_THROW(best_tiling(op, options), ConfigError);
}

TEST(TilingTest, NonMatmulRejected) {
  const ir::Op op = ir::make_softmax("s", "A", 8, 8, ir::DType::kInt8);
  TilingOptions options;
  EXPECT_THROW(best_tiling(op, options), InternalError);
}

TEST(TilingTest, InstancesScaleTraffic) {
  ir::Op op = ir::make_attention_gemm("a", "A", 4, 64, 128, 128,
                                      ir::DType::kInt8, ir::Residency::kCmem);
  ir::Op one = op;
  one.instances = 1;
  TilingOptions options;
  EXPECT_DOUBLE_EQ(best_tiling(op, options).vmem_traffic,
                   4.0 * best_tiling(one, options).vmem_traffic);
}

TEST(TilingTest, Bf16DoublesWorkingSet) {
  ir::Op i8 = gemm(256, 256, 256);
  ir::Op bf = i8;
  bf.dtype = ir::DType::kBf16;
  TilingOptions options;
  EXPECT_DOUBLE_EQ(
      evaluate_tiling(bf, 256, 256, 256, options).working_set,
      2.0 * evaluate_tiling(i8, 256, 256, 256, options).working_set);
}

// Parameterized sweep: the search must return a legal, consistent result
// across a range of realistic shapes.
class TilingSweepTest
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(TilingSweepTest, LegalAndConsistent) {
  const auto [m, k, n] = GetParam();
  const ir::Op op = gemm(m, k, n);
  TilingOptions options;
  const TileChoice choice = best_tiling(op, options);
  EXPECT_LE(choice.working_set,
            options.vmem_capacity * options.buffer_fraction);
  EXPECT_GE(choice.vmem_traffic, compulsory_traffic(op) * 0.999999);
  EXPECT_GE(choice.reuse_factor, 0.0);
  EXPECT_LE(choice.reuse_factor, 1.0);
  EXPECT_LE(choice.tm, std::max<std::int64_t>(op.m, 1));
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, TilingSweepTest,
    ::testing::Combine(::testing::Values(1, 8, 1024, 8192),
                       ::testing::Values(72, 1152, 7168),
                       ::testing::Values(128, 1281, 28672)));

}  // namespace
}  // namespace cimtpu::mapping
