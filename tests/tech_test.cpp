// Technology, energy and area model tests: the 22 nm Table II anchors must
// be reproduced exactly, and node scaling must behave monotonically.

#include <gtest/gtest.h>

#include "tech/area_model.h"
#include "tech/calibration.h"
#include "tech/energy_model.h"
#include "tech/technology.h"

namespace cimtpu::tech {
namespace {

TEST(TechnologyTest, KnownNodesResolve) {
  for (const char* name : {"65nm", "28nm", "22nm", "12nm", "7nm"}) {
    const TechnologyNode node = node_by_name(name);
    EXPECT_EQ(node.name, name);
    EXPECT_GT(node.feature_nm, 0);
    EXPECT_GT(node.energy_scale, 0);
    EXPECT_GT(node.area_scale, 0);
  }
}

TEST(TechnologyTest, UnknownNodeThrows) {
  EXPECT_THROW(node_by_name("3nm"), ConfigError);
  EXPECT_THROW(node_by_name(""), ConfigError);
}

TEST(TechnologyTest, CalibrationNodeIsUnity) {
  const TechnologyNode node = calibration_node();
  EXPECT_EQ(node.name, "22nm");
  EXPECT_DOUBLE_EQ(node.energy_scale, 1.0);
  EXPECT_DOUBLE_EQ(node.area_scale, 1.0);
  EXPECT_DOUBLE_EQ(node.leakage_scale, 1.0);
}

TEST(TechnologyTest, ScalingMonotonicWithFeatureSize) {
  // Smaller nodes -> lower dynamic energy and smaller area per gate.
  const char* names[] = {"65nm", "28nm", "22nm", "12nm", "7nm"};
  for (int i = 0; i + 1 < 5; ++i) {
    const TechnologyNode coarse = node_by_name(names[i]);
    const TechnologyNode fine = node_by_name(names[i + 1]);
    EXPECT_GT(coarse.energy_scale, fine.energy_scale) << names[i];
    EXPECT_GT(coarse.area_scale, fine.area_scale) << names[i];
  }
}

TEST(TechnologyTest, ScaleHelpers) {
  const TechnologyNode n7 = tpu_v4i_node();
  EXPECT_DOUBLE_EQ(scale_energy(10.0, n7), 10.0 * n7.energy_scale);
  EXPECT_DOUBLE_EQ(scale_area(10.0, n7), 10.0 * n7.area_scale);
  EXPECT_DOUBLE_EQ(scale_leakage_power(10.0, n7),
                   10.0 * n7.leakage_scale * n7.area_scale);
}

// --- Energy model -------------------------------------------------------------

TEST(EnergyModelTest, TableIIAnchorDigital) {
  const EnergyModel energy(calibration_node());
  // 2 ops / 0.77e12 ops/J.
  EXPECT_NEAR(energy.digital_mac(ir::DType::kInt8), 2.0 / 0.77e12, 1e-18);
}

TEST(EnergyModelTest, TableIIAnchorCim) {
  const EnergyModel energy(calibration_node());
  EXPECT_NEAR(energy.cim_mac(ir::DType::kInt8), 2.0 / 7.26e12, 1e-18);
}

TEST(EnergyModelTest, MacroEfficiencyRatioIs943) {
  const EnergyModel energy(calibration_node());
  EXPECT_NEAR(energy.digital_mac(ir::DType::kInt8) /
                  energy.cim_mac(ir::DType::kInt8),
              9.43, 0.01);
}

TEST(EnergyModelTest, DtypeOrdering) {
  const EnergyModel energy(calibration_node());
  // INT8 < BF16 < FP32 for both designs.
  EXPECT_LT(energy.digital_mac(ir::DType::kInt8),
            energy.digital_mac(ir::DType::kBf16));
  EXPECT_LT(energy.digital_mac(ir::DType::kBf16),
            energy.digital_mac(ir::DType::kFp32));
  EXPECT_LT(energy.cim_mac(ir::DType::kInt8),
            energy.cim_mac(ir::DType::kBf16));
  EXPECT_LT(energy.cim_mac(ir::DType::kBf16),
            energy.cim_mac(ir::DType::kFp32));
}

TEST(EnergyModelTest, BubbleSlotCheaperThanMac) {
  const EnergyModel energy(calibration_node());
  EXPECT_LT(energy.digital_bubble_slot(ir::DType::kInt8),
            energy.digital_mac(ir::DType::kInt8));
  EXPECT_LT(energy.cim_idle_slot(ir::DType::kInt8),
            energy.cim_mac(ir::DType::kInt8));
  // CIM idle banks are far better gated than digital bubbles.
  EXPECT_LT(energy.cim_idle_slot(ir::DType::kInt8) /
                energy.cim_mac(ir::DType::kInt8),
            energy.digital_bubble_slot(ir::DType::kInt8) /
                energy.digital_mac(ir::DType::kInt8));
}

TEST(EnergyModelTest, CimWeightWriteCheaperThanDigitalLoad) {
  const EnergyModel energy(calibration_node());
  // SRAM write via the weight port vs shifting through 64 register hops.
  EXPECT_LT(energy.cim_weight_write_per_byte(),
            energy.digital_weight_load_per_byte());
}

TEST(EnergyModelTest, MemoryHierarchyEnergyOrdering) {
  const EnergyModel energy(calibration_node());
  EXPECT_LT(energy.register_file_per_byte(), energy.vmem_per_byte());
  EXPECT_LT(energy.vmem_per_byte(), energy.cmem_per_byte());
  EXPECT_LT(energy.cmem_per_byte(), energy.hbm_per_byte());
}

TEST(EnergyModelTest, DramEnergyDoesNotScaleWithNode) {
  const EnergyModel e22(calibration_node());
  const EnergyModel e7(tpu_v4i_node());
  EXPECT_DOUBLE_EQ(e22.hbm_per_byte(), e7.hbm_per_byte());
  // But on-chip SRAM does.
  EXPECT_GT(e22.vmem_per_byte(), e7.vmem_per_byte());
}

TEST(EnergyModelTest, NodeScalingAppliesToMacs) {
  const EnergyModel e22(calibration_node());
  const EnergyModel e7(tpu_v4i_node());
  const double scale = tpu_v4i_node().energy_scale;
  EXPECT_NEAR(e7.digital_mac(ir::DType::kInt8),
              e22.digital_mac(ir::DType::kInt8) * scale, 1e-18);
  EXPECT_NEAR(e7.cim_mac(ir::DType::kInt8),
              e22.cim_mac(ir::DType::kInt8) * scale, 1e-18);
}

// --- Area model ----------------------------------------------------------------

TEST(AreaModelTest, TableIIDigitalAreaAnchor) {
  const AreaModel area(calibration_node());
  // 128x128 at 1 GHz: 32.768 TOPS / 0.648 TOPS/mm^2.
  EXPECT_NEAR(area.digital_array(128, 128), 32.768 / 0.648, 0.01);
}

TEST(AreaModelTest, TableIICimAreaAnchor) {
  const AreaModel area(calibration_node());
  EXPECT_NEAR(area.cim_mxu(16, 8, 128, 256), 32.768 / 1.31, 0.01);
}

TEST(AreaModelTest, AreaEfficiencyRatioIs202) {
  const AreaModel area(calibration_node());
  EXPECT_NEAR(area.digital_array(128, 128) / area.cim_mxu(16, 8, 128, 256),
              2.02, 0.01);
}

TEST(AreaModelTest, AreaScalesLinearlyWithPeCount) {
  const AreaModel area(calibration_node());
  EXPECT_NEAR(area.digital_array(64, 64) * 4, area.digital_array(128, 128),
              1e-9);
  EXPECT_NEAR(area.cim_mxu(8, 8, 128, 256) * 2, area.cim_mxu(16, 8, 128, 256),
              1e-9);
}

TEST(AreaModelTest, SramAreaProportionalToCapacity) {
  const AreaModel area(calibration_node());
  EXPECT_NEAR(area.sram(16 * MiB), 16 * cal::kSramAreaPerMiB, 1e-9);
  EXPECT_NEAR(area.sram(128 * MiB), 8 * area.sram(16 * MiB), 1e-9);
}

TEST(AreaModelTest, NodeScalingShrinksArea) {
  const AreaModel a22(calibration_node());
  const AreaModel a7(tpu_v4i_node());
  EXPECT_LT(a7.digital_array(128, 128), a22.digital_array(128, 128));
  EXPECT_LT(a7.cim_core(128, 256), a22.cim_core(128, 256));
}

TEST(AreaModelTest, VpuAreaPositive) {
  const AreaModel area(calibration_node());
  EXPECT_GT(area.vpu(1024), 0.0);
  EXPECT_NEAR(area.vpu(2048), 2 * area.vpu(1024), 1e-12);
}

}  // namespace
}  // namespace cimtpu::tech

namespace cimtpu::tech {
namespace {

// --- INT4 extension ------------------------------------------------------------

TEST(Int4ExtensionTest, HalfByteStorage) {
  EXPECT_DOUBLE_EQ(ir::dtype_bytes(ir::DType::kInt4), 0.5);
  EXPECT_EQ(ir::dtype_name(ir::DType::kInt4), "INT4");
  EXPECT_EQ(ir::dtype_from_name("int4"), ir::DType::kInt4);
}

TEST(Int4ExtensionTest, CheaperThanInt8OnBothDesigns) {
  const EnergyModel energy(calibration_node());
  EXPECT_LT(energy.digital_mac(ir::DType::kInt4),
            energy.digital_mac(ir::DType::kInt8));
  EXPECT_LT(energy.cim_mac(ir::DType::kInt4),
            energy.cim_mac(ir::DType::kInt8));
}

TEST(Int4ExtensionTest, CimAdvantageGrowsAtInt4) {
  // CIM macros are natively INT4-efficient ([8]): the CIM/digital per-MAC
  // ratio must improve over the 9.43x INT8 anchor.
  const EnergyModel energy(calibration_node());
  const double int8_ratio = energy.digital_mac(ir::DType::kInt8) /
                            energy.cim_mac(ir::DType::kInt8);
  const double int4_ratio = energy.digital_mac(ir::DType::kInt4) /
                            energy.cim_mac(ir::DType::kInt4);
  EXPECT_GT(int4_ratio, int8_ratio);
}

}  // namespace
}  // namespace cimtpu::tech
