// JSON trace-export tests: escaping, structural validity, and value
// round-trips.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "common/status.h"
#include "sim/trace.h"
#include "sim/workload_runner.h"

namespace cimtpu::sim {
namespace {

TEST(JsonEscapeTest, PassesPlainText) {
  EXPECT_EQ(json_escape("qkv_proj"), "qkv_proj");
}

TEST(JsonEscapeTest, EscapesSpecials) {
  EXPECT_EQ(json_escape("a\"b"), "a\\\"b");
  EXPECT_EQ(json_escape("a\\b"), "a\\\\b");
  EXPECT_EQ(json_escape("line\nbreak"), "line\\nbreak");
  EXPECT_EQ(json_escape("tab\there"), "tab\\there");
  EXPECT_EQ(json_escape(std::string(1, '\x01')), "\\u0001");
}

class TraceTest : public ::testing::Test {
 protected:
  TraceTest() : chip_(arch::tpu_v4i_baseline()), simulator_(chip_) {}
  arch::TpuChip chip_;
  Simulator simulator_;
};

TEST_F(TraceTest, OpJsonContainsKeyFields) {
  const OpResult op = simulator_.run_op(
      ir::make_weight_gemm("qkv", "QKV Gen", 8, 128, 128, ir::DType::kInt8));
  const std::string json = to_json(op);
  EXPECT_NE(json.find("\"name\":\"qkv\""), std::string::npos);
  EXPECT_NE(json.find("\"group\":\"QKV Gen\""), std::string::npos);
  EXPECT_NE(json.find("\"on_mxu\":true"), std::string::npos);
  EXPECT_NE(json.find("\"latency_s\":"), std::string::npos);
  EXPECT_NE(json.find("\"useful_macs\":131072"), std::string::npos);
}

TEST_F(TraceTest, GraphJsonStructurallyBalanced) {
  const GraphResult result = simulator_.run(models::build_decode_layer(
      models::gpt3_30b(), 8, 1280, ir::Residency::kCmem));
  const std::string json = to_json(result);
  // Balanced braces/brackets; no trailing commas before closers.
  int braces = 0, brackets = 0;
  bool in_string = false;
  char prev = 0;
  for (char c : json) {
    if (c == '"' && prev != '\\') in_string = !in_string;
    if (!in_string) {
      if (c == '{') ++braces;
      if (c == '}') --braces;
      if (c == '[') ++brackets;
      if (c == ']') --brackets;
      if (c == '}' || c == ']') {
        EXPECT_NE(prev, ',');
      }
    }
    prev = c;
  }
  EXPECT_EQ(braces, 0);
  EXPECT_EQ(brackets, 0);
  EXPECT_FALSE(in_string);
  EXPECT_NE(json.find("\"groups\":{"), std::string::npos);
  EXPECT_NE(json.find("\"ops\":["), std::string::npos);
}

TEST_F(TraceTest, OpsOptional) {
  const GraphResult result = simulator_.run(models::build_decode_layer(
      models::gpt3_30b(), 8, 1280, ir::Residency::kCmem));
  const std::string without = to_json(result, /*include_ops=*/false);
  EXPECT_EQ(without.find("\"ops\""), std::string::npos);
  EXPECT_NE(without.find("\"groups\""), std::string::npos);
}

TEST_F(TraceTest, WriteJsonFile) {
  const std::string path = testing::TempDir() + "/cimtpu_trace_test.json";
  write_json_file(path, "{\"x\":1}");
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "{\"x\":1}");
  std::remove(path.c_str());
}

TEST_F(TraceTest, WriteJsonFileBadPathThrows) {
  EXPECT_THROW(write_json_file("/no/such/dir/x.json", "{}"), ConfigError);
}

}  // namespace
}  // namespace cimtpu::sim
