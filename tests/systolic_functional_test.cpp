// Cycle-accurate functional systolic-array tests: bit-exact GEMM results
// and cycle counts that validate the analytic SCALE-Sim-style formula used
// by the performance model.

#include <gtest/gtest.h>

#include "common/rng.h"
#include "common/status.h"
#include "systolic/functional_array.h"
#include "systolic/systolic_mxu.h"
#include "tech/technology.h"

namespace cimtpu::systolic {
namespace {

std::vector<std::int8_t> random_vector(Rng& rng, std::size_t length) {
  std::vector<std::int8_t> v(length);
  for (auto& x : v) x = static_cast<std::int8_t>(rng.uniform_int(-128, 127));
  return v;
}

TEST(FunctionalArrayTest, TinyKnownGemm) {
  FunctionalSystolicArray array(2, 2);
  // a = [[1, 2]], w = [[1, 2], [3, 4]] -> [1*1+2*3, 1*2+2*4] = [7, 10].
  const auto result = array.run({1, 2}, {1, 2, 3, 4}, /*m=*/1);
  ASSERT_EQ(result.output.size(), 2u);
  EXPECT_EQ(result.output[0], 7);
  EXPECT_EQ(result.output[1], 10);
}

TEST(FunctionalArrayTest, CycleCountMatchesClosedForm) {
  // 2R + C + m - 2 for one tile (weight fill + skewed stream + drain).
  for (int rows : {2, 4, 8}) {
    for (int cols : {2, 4, 8}) {
      for (int m : {1, 3, 8}) {
        FunctionalSystolicArray array(rows, cols);
        Rng rng(rows * 100 + cols * 10 + m);
        const auto a = random_vector(rng, static_cast<std::size_t>(m) * rows);
        const auto w =
            random_vector(rng, static_cast<std::size_t>(rows) * cols);
        const auto result = array.run(a, w, m);
        EXPECT_EQ(result.total_cycles, array.analytic_cycles(m))
            << rows << "x" << cols << " m=" << m;
        EXPECT_EQ(result.weight_load_cycles, rows);
      }
    }
  }
}

TEST(FunctionalArrayTest, MatchesAnalyticMxuSingleTile) {
  // The analytic model charges rows (fill) + m (stream) + rows+cols-2
  // (ramp) for a single-tile instance — identical to the functional total.
  tech::EnergyModel energy(tech::calibration_node());
  tech::AreaModel area_model(tech::calibration_node());
  SystolicMxu mxu(SystolicMxuSpec{16, 16}, energy, area_model);
  FunctionalSystolicArray array(16, 16);
  for (int m : {1, 5, 16, 64}) {
    GemmWorkload w{m, 16, 16, 1, ir::DType::kInt8};
    EXPECT_DOUBLE_EQ(mxu.evaluate(w).busy_cycles,
                     static_cast<double>(array.analytic_cycles(m)))
        << "m=" << m;
  }
}

class FunctionalArrayPropertyTest
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(FunctionalArrayPropertyTest, BitExactVsReference) {
  const auto [rows, cols, m] = GetParam();
  FunctionalSystolicArray array(rows, cols);
  Rng rng(0x5A5A + rows * 31 + cols * 7 + m);
  const auto a = random_vector(rng, static_cast<std::size_t>(m) * rows);
  const auto w = random_vector(rng, static_cast<std::size_t>(rows) * cols);
  const auto result = array.run(a, w, m);
  EXPECT_EQ(result.output,
            FunctionalSystolicArray::reference(a, w, m, rows, cols));
}

TEST_P(FunctionalArrayPropertyTest, GemvUtilizationMatchesAnalytic) {
  const auto [rows, cols, m] = GetParam();
  FunctionalSystolicArray array(rows, cols);
  // Functional utilization: useful MACs / (cycles * PEs) — must equal the
  // analytic model's busy-utilization for one tile.
  const double useful = static_cast<double>(m) * rows * cols;
  const double functional_util =
      useful / (static_cast<double>(array.analytic_cycles(m)) * rows * cols);
  tech::EnergyModel energy(tech::calibration_node());
  tech::AreaModel area_model(tech::calibration_node());
  SystolicMxu mxu(SystolicMxuSpec{rows, cols}, energy, area_model);
  GemmWorkload workload{m, rows, cols, 1, ir::DType::kInt8};
  EXPECT_NEAR(mxu.evaluate(workload).utilization(), functional_util, 1e-12);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, FunctionalArrayPropertyTest,
    ::testing::Combine(::testing::Values(2, 5, 8, 16),
                       ::testing::Values(2, 7, 16),
                       ::testing::Values(1, 4, 23)));

TEST(FunctionalArrayTest, ExtremeValuesNoOverflow) {
  FunctionalSystolicArray array(8, 4);
  const std::vector<std::int8_t> a(8, -128);
  const std::vector<std::int8_t> w(32, -128);
  const auto result = array.run(a, w, 1);
  for (std::int32_t out : result.output) {
    EXPECT_EQ(out, 8 * 16384);
  }
}

TEST(FunctionalArrayTest, InputValidation) {
  FunctionalSystolicArray array(4, 4);
  EXPECT_THROW(array.run({1, 2}, std::vector<std::int8_t>(16), 1),
               InternalError);
  EXPECT_THROW(array.run(std::vector<std::int8_t>(4),
                         std::vector<std::int8_t>(15), 1),
               InternalError);
  EXPECT_THROW(FunctionalSystolicArray(0, 4), ConfigError);
}

}  // namespace
}  // namespace cimtpu::systolic
