// Dataflow-variant tests: output-stationary vs weight-stationary regimes.

#include <gtest/gtest.h>

#include "systolic/systolic_mxu.h"
#include "tech/technology.h"

namespace cimtpu::systolic {
namespace {

class DataflowTest : public ::testing::Test {
 protected:
  DataflowTest()
      : energy_(tech::calibration_node()), area_(tech::calibration_node()) {
    SystolicMxuSpec ws_spec{128, 128, Dataflow::kWeightStationary};
    SystolicMxuSpec os_spec{128, 128, Dataflow::kOutputStationary};
    ws_ = std::make_unique<SystolicMxu>(ws_spec, energy_, area_);
    os_ = std::make_unique<SystolicMxu>(os_spec, energy_, area_);
  }

  tech::EnergyModel energy_;
  tech::AreaModel area_;
  std::unique_ptr<SystolicMxu> ws_;
  std::unique_ptr<SystolicMxu> os_;
};

TEST_F(DataflowTest, Names) {
  EXPECT_EQ(dataflow_name(Dataflow::kWeightStationary), "weight-stationary");
  EXPECT_EQ(dataflow_name(Dataflow::kOutputStationary), "output-stationary");
  EXPECT_EQ(ws_->name(), "systolic-128x128");
  EXPECT_EQ(os_->name(), "systolic-128x128-os");
}

TEST_F(DataflowTest, OsSingleTileCycleCount) {
  // One 128x128 output tile with k contraction steps: k + drain + ramp.
  GemmWorkload w{/*m=*/128, /*k=*/1000, /*n=*/128, 1, ir::DType::kInt8};
  EXPECT_DOUBLE_EQ(os_->evaluate(w).busy_cycles, 1000.0 + 128.0 + 254.0);
}

TEST_F(DataflowTest, OsWinsOnDeepContractionTallOutputs) {
  // m = n = array size, huge k: OS streams once; WS reloads weights for
  // every K-tile.
  GemmWorkload w{/*m=*/128, /*k=*/16384, /*n=*/128, 1, ir::DType::kInt8};
  EXPECT_LT(os_->evaluate(w).busy_cycles, ws_->evaluate(w).busy_cycles);
}

TEST_F(DataflowTest, WsWinsOnShallowContractionGemv) {
  // Decode attention shape (m = 1, k = d_head): OS pays a full
  // k + drain stream per narrow output tile; WS only pays the weight fill
  // plus one streamed row.
  GemmWorkload w{/*m=*/1, /*k=*/128, /*n=*/1280, /*instances=*/448,
                 ir::DType::kInt8};
  EXPECT_LT(ws_->evaluate(w).busy_cycles, os_->evaluate(w).busy_cycles);
}

TEST_F(DataflowTest, OsUtilizationSuffersOnShortM) {
  GemmWorkload w{/*m=*/1, /*k=*/1024, /*n=*/128, 1, ir::DType::kInt8};
  // Only one of 128 PE rows holds live outputs.
  EXPECT_LT(os_->evaluate(w).utilization(), 0.01);
}

TEST_F(DataflowTest, OsWeightTrafficScalesWithMTiles) {
  GemmWorkload one_tile{/*m=*/128, /*k=*/512, /*n=*/128, 1, ir::DType::kInt8};
  GemmWorkload two_tiles = one_tile;
  two_tiles.m = 256;
  EXPECT_DOUBLE_EQ(os_->evaluate(two_tiles).stationary_bytes_loaded,
                   2.0 * os_->evaluate(one_tile).stationary_bytes_loaded);
}

TEST_F(DataflowTest, BothRespectThroughputBound) {
  for (const GemmWorkload& w :
       {GemmWorkload{128, 128, 128, 1, ir::DType::kInt8},
        GemmWorkload{8192, 7168, 7168, 1, ir::DType::kInt8},
        GemmWorkload{1, 1280, 128, 448, ir::DType::kInt8}}) {
    for (SystolicMxu* mxu : {ws_.get(), os_.get()}) {
      const MxuCost cost = mxu->evaluate(w);
      EXPECT_GE(cost.busy_cycles * mxu->macs_per_cycle(),
                cost.useful_macs * 0.999999);
      EXPECT_LE(cost.utilization(), 1.0);
    }
  }
}

TEST_F(DataflowTest, LargeSquareGemmNearParity) {
  // Both dataflows approach full utilization on a big square GEMM.
  GemmWorkload w{/*m=*/8192, /*k=*/8192, /*n=*/8192, 1, ir::DType::kInt8};
  const double ws_cycles = ws_->evaluate(w).busy_cycles;
  const double os_cycles = os_->evaluate(w).busy_cycles;
  EXPECT_NEAR(ws_cycles / os_cycles, 1.0, 0.05);
}

}  // namespace
}  // namespace cimtpu::systolic
