// Capacity-planning tests: the GPT3-30B-does-not-fit observation that
// motivates the paper's multi-device evaluation.

#include <gtest/gtest.h>

#include "models/model_zoo.h"
#include "parallel/capacity.h"

namespace cimtpu::parallel {
namespace {

TEST(CapacityTest, Gpt330bNeedsMultipleChips) {
  const CapacityPlan plan = plan_capacity(arch::tpu_v4i_baseline(),
                                          models::gpt3_30b(), 8, 1536);
  // ~30 GB of weights + ~10.6 GB of KV against 7.2 GB usable per chip.
  EXPECT_FALSE(plan.fits_single_chip());
  EXPECT_GE(plan.min_pipeline_stages, 4);
  EXPECT_LE(plan.min_pipeline_stages, 8);
  EXPECT_NEAR(plan.weight_bytes / 1e9, 30.0, 1.0);
}

TEST(CapacityTest, DitFitsOneChip) {
  const CapacityPlan plan = plan_capacity(arch::tpu_v4i_baseline(),
                                          models::dit_xl_2(), 8, 1024);
  EXPECT_TRUE(plan.fits_single_chip());
}

TEST(CapacityTest, Llama13bFitsOneChipWithoutKv) {
  // 13 GB INT8 > 8 GB: Llama2-13B also needs 2+ chips at INT8 weights.
  const CapacityPlan plan = plan_capacity(arch::tpu_v4i_baseline(),
                                          models::llama2_13b(), 1, 512);
  EXPECT_EQ(plan.min_pipeline_stages, 2);
}

TEST(CapacityTest, KvGrowsWithBatchAndLength) {
  const CapacityPlan small = plan_capacity(arch::tpu_v4i_baseline(),
                                           models::gpt3_30b(), 1, 128);
  const CapacityPlan big = plan_capacity(arch::tpu_v4i_baseline(),
                                         models::gpt3_30b(), 32, 2048);
  EXPECT_GT(big.kv_bytes, 100 * small.kv_bytes);
  EXPECT_GE(big.min_pipeline_stages, small.min_pipeline_stages);
}

TEST(CapacityTest, ReserveFractionShrinksAvailable) {
  const CapacityPlan tight = plan_capacity(arch::tpu_v4i_baseline(),
                                           models::gpt3_30b(), 8, 1536, 0.5);
  const CapacityPlan loose = plan_capacity(arch::tpu_v4i_baseline(),
                                           models::gpt3_30b(), 8, 1536, 0.0);
  EXPECT_GT(tight.min_pipeline_stages, loose.min_pipeline_stages);
}

TEST(CapacityTest, EmbeddingsCounted) {
  // GPT-3 vocab 50257 x 7168 bytes ~ 0.36 GB on top of the stack.
  const CapacityPlan plan = plan_capacity(arch::tpu_v4i_baseline(),
                                          models::gpt3_30b(), 1, 16);
  EXPECT_GT(plan.weight_bytes, models::gpt3_30b().stack_weight_bytes());
}

TEST(CapacityTest, Validation) {
  EXPECT_THROW(plan_capacity(arch::tpu_v4i_baseline(), models::gpt3_30b(), 0,
                             128),
               ConfigError);
  EXPECT_THROW(plan_capacity(arch::tpu_v4i_baseline(), models::gpt3_30b(), 1,
                             128, 1.5),
               ConfigError);
  // A model too large for its own layer count to split.
  models::TransformerConfig huge = models::gpt3_30b();
  huge.num_layers = 1;
  huge.d_model = 7168 * 8;
  huge.num_heads = 56;
  huge.d_ff = 4 * huge.d_model;
  EXPECT_THROW(plan_capacity(arch::tpu_v4i_baseline(), huge, 64, 4096),
               ConfigError);
}

}  // namespace
}  // namespace cimtpu::parallel
