// Paged-KV hardening suite: block-granular allocation math, ref-counted
// prefix sharing (full blocks, cached retention, LRU reclaim, partial-tail
// copy-on-write), input validation, the incremental victim-order indices,
// a seeded alloc/grow/share/CoW/free fuzz across 3 seeds x 3 eviction
// policies, and a paged-vs-contiguous lockstep equivalence test at block
// size 1 (the compatibility contract the golden pins rely on).
//
// The scheduler-level tests drive prefix-tagged requests end to end:
// prefix hits must skip prefill work (chunks start at a nonzero KV
// offset) and the canonical chatbot study must show hit rate > 0.5 with
// strictly higher goodput than caching off.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <map>
#include <set>
#include <vector>

#include "common/rng.h"
#include "serving/kv_cache_manager.h"
#include "serving/request_gen.h"
#include "serving/scheduler.h"
#include "serving/serving_sim.h"
#include "serving/traffic_profiles.h"

namespace cimtpu::serving {
namespace {

KvCacheManager paged(Bytes capacity, std::int64_t block_tokens,
                     bool prefix_cache,
                     EvictionPolicy policy = EvictionPolicy::kPreemptNewest,
                     Bytes host_capacity = 1024 * GiB) {
  return KvCacheManager(capacity, /*bytes_per_token=*/1.0, policy,
                        host_capacity, block_tokens, prefix_cache);
}

// --- Block-granular allocation math ------------------------------------------

TEST(PagedKvTest, GrowthAllocatesOnlyAtBlockBoundaries) {
  KvCacheManager kv = paged(/*capacity=*/40.0, /*block_tokens=*/4,
                            /*prefix_cache=*/false);
  EXPECT_EQ(kv.capacity_blocks(), 10);
  EXPECT_TRUE(kv.try_admit(0, 9));  // ceil(9/4) = 3 blocks
  EXPECT_EQ(kv.occupied_blocks(), 3);
  EXPECT_DOUBLE_EQ(kv.used(), 12.0);  // whole blocks, not tokens
  // Tokens 10..12 stay inside the third block.
  EXPECT_FALSE(kv.grow_needs_block(0));
  EXPECT_TRUE(kv.try_grow(0));
  EXPECT_TRUE(kv.try_grow(0));
  EXPECT_TRUE(kv.try_grow(0));
  EXPECT_EQ(kv.occupied_blocks(), 3);
  // Token 13 crosses into a fourth block.
  EXPECT_TRUE(kv.grow_needs_block(0));
  EXPECT_TRUE(kv.try_grow(0));
  EXPECT_EQ(kv.occupied_blocks(), 4);
  EXPECT_EQ(kv.resident_tokens(0), 13);
  EXPECT_TRUE(kv.audit());
  kv.release(0);
  EXPECT_EQ(kv.occupied_blocks(), 0);
  EXPECT_TRUE(kv.audit());
}

TEST(PagedKvTest, AdmissionChecksWholeBlocks) {
  KvCacheManager kv = paged(/*capacity=*/8.0, /*block_tokens=*/4,
                            /*prefix_cache=*/false);
  EXPECT_EQ(kv.capacity_blocks(), 2);
  EXPECT_FALSE(kv.try_admit(0, 9));  // 3 blocks > 2
  EXPECT_TRUE(kv.try_admit(0, 8));   // exactly 2 blocks
  EXPECT_FALSE(kv.try_grow(0));      // a 3rd block does not exist
  EXPECT_TRUE(kv.audit());
}

TEST(PagedKvTest, FragmentationGaugeCountsLastBlockWaste) {
  KvCacheManager kv = paged(/*capacity=*/64.0, /*block_tokens=*/8,
                            /*prefix_cache=*/false);
  EXPECT_DOUBLE_EQ(kv.internal_fragmentation(), 0.0);  // nothing mapped
  EXPECT_TRUE(kv.try_admit(0, 5));  // 1 block, 3 tokens wasted
  EXPECT_DOUBLE_EQ(kv.internal_fragmentation(), 3.0 / 8.0);
  EXPECT_TRUE(kv.try_admit(1, 8));  // full block, no waste
  EXPECT_DOUBLE_EQ(kv.internal_fragmentation(), 3.0 / 16.0);
  // Block size 1 can never waste.
  KvCacheManager unit = paged(64.0, 1, false);
  EXPECT_TRUE(unit.try_admit(0, 5));
  EXPECT_DOUBLE_EQ(unit.internal_fragmentation(), 0.0);
}

// --- Input validation (satellite) --------------------------------------------

TEST(PagedKvValidationTest, RejectsDegenerateConfigs) {
  EXPECT_THROW(KvCacheManager(0.0, 1.0), ConfigError);       // empty budget
  EXPECT_THROW(KvCacheManager(-100.0, 1.0), ConfigError);    // negative
  EXPECT_THROW(KvCacheManager(100.0, 0.0), ConfigError);     // free tokens
  EXPECT_THROW(KvCacheManager(100.0, -1.0), ConfigError);
  EXPECT_THROW(KvCacheManager(100.0, 1.0, EvictionPolicy::kPreemptNewest,
                              -1.0),
               ConfigError);  // negative host pool
  EXPECT_THROW(KvCacheManager(100.0, 1.0, EvictionPolicy::kPreemptNewest,
                              1024 * GiB, /*block_tokens=*/0),
               ConfigError);
  EXPECT_THROW(KvCacheManager(100.0, 1.0, EvictionPolicy::kPreemptNewest,
                              1024 * GiB, /*block_tokens=*/-8),
               ConfigError);
  // A budget smaller than one block can never admit anything.
  EXPECT_THROW(KvCacheManager(7.0, 1.0, EvictionPolicy::kPreemptNewest,
                              1024 * GiB, /*block_tokens=*/8),
               ConfigError);
}

TEST(PagedKvValidationTest, SchedulerRejectsBadBlockConfig) {
  KvCacheManager kv = paged(1e6, 1, false);
  SchedulerConfig config;
  config.kv_block_tokens = 0;
  EXPECT_THROW(ContinuousBatchScheduler(config, &kv), ConfigError);
  config.kv_block_tokens = -4;
  EXPECT_THROW(ContinuousBatchScheduler(config, &kv), ConfigError);
  // The scheduler's config must agree with the manager it drives.
  config.kv_block_tokens = 16;
  EXPECT_THROW(ContinuousBatchScheduler(config, &kv), ConfigError);
  config.kv_block_tokens = 1;
  config.enable_prefix_cache = true;
  EXPECT_THROW(ContinuousBatchScheduler(config, &kv), ConfigError);
  config.enable_prefix_cache = false;
  EXPECT_NO_THROW(ContinuousBatchScheduler(config, &kv));
}

TEST(PagedKvValidationTest, ScenarioValidateRejectsBadBlockTokens) {
  ServingScenario scenario =
      llama7b_baseline_scenario(1, ir::DType::kInt4);
  scenario.scheduler.kv_block_tokens = 0;
  EXPECT_THROW(scenario.validate(), ConfigError);
  scenario.scheduler.kv_block_tokens = 16;
  EXPECT_NO_THROW(scenario.validate());
  // A negative budget override must fail loudly, not silently fall back
  // to the HBM-derived budget.
  scenario.kv_budget_override = -1.0;
  EXPECT_THROW(scenario.validate(), ConfigError);
}

// --- Prefix sharing ----------------------------------------------------------

TEST(PrefixCacheTest, SecondRequestSharesComputedFullBlocks) {
  KvCacheManager kv = paged(1000.0, /*block_tokens=*/4, /*prefix_cache=*/true);
  KvCacheManager::AdmitOutcome outcome;
  // First admission registers the prefix blocks but hits nothing.
  ASSERT_TRUE(kv.try_admit(0, /*tokens=*/11, /*priority=*/0, /*prefix_id=*/7,
                           /*prefix_len=*/8, /*prompt_len=*/10, &outcome));
  EXPECT_EQ(outcome.prefix_hit_tokens, 0);
  EXPECT_EQ(outcome.shared_blocks, 0);
  EXPECT_EQ(outcome.lookup_tokens, 8);
  EXPECT_EQ(kv.shared_block_count(0), 2);  // self-registered, refcount 1
  // Until the registrant's prefill passes the blocks, nobody can hit them.
  KvCacheManager::AdmitOutcome premature;
  ASSERT_TRUE(kv.try_admit(1, 11, 0, 7, 8, 10, &premature));
  EXPECT_EQ(premature.prefix_hit_tokens, 0);
  kv.release(1);
  // Prefill completes -> the blocks become hittable.
  kv.note_prefilled(0, 10);
  KvCacheManager::AdmitOutcome hit;
  ASSERT_TRUE(kv.try_admit(2, 11, 0, 7, 8, 10, &hit));
  EXPECT_EQ(hit.prefix_hit_tokens, 8);
  EXPECT_EQ(hit.shared_blocks, 2);
  EXPECT_EQ(hit.cow_blocks, 0);  // prefix_len is block-aligned: no tail
  EXPECT_EQ(kv.shared_block_count(2), 2);
  // The two shared blocks are physical once: 0 maps 3 blocks, 2 maps 3
  // blocks, but only 4 distinct blocks exist.
  EXPECT_EQ(kv.occupied_blocks(), 4);
  EXPECT_TRUE(kv.audit());
}

TEST(PrefixCacheTest, ReleasedPrefixBlocksStayCachedAndHittable) {
  KvCacheManager kv = paged(1000.0, 4, true);
  ASSERT_TRUE(kv.try_admit(0, 11, 0, /*prefix_id=*/3, /*prefix_len=*/8,
                           /*prompt_len=*/10));
  kv.note_prefilled(0, 10);
  kv.release(0);
  // Fully released but computed: the blocks stay cached, occupying pages.
  EXPECT_EQ(kv.cached_block_count(), 2);
  EXPECT_EQ(kv.occupied_blocks(), 2);
  EXPECT_EQ(kv.referenced_blocks(), 0);
  EXPECT_TRUE(kv.audit());
  // A later same-prefix request hits them even though lifetimes never
  // overlapped — the cross-request reuse that makes chatbot prefixes pay.
  KvCacheManager::AdmitOutcome hit;
  ASSERT_TRUE(kv.try_admit(1, 11, 0, 3, 8, 10, &hit));
  EXPECT_EQ(hit.prefix_hit_tokens, 8);
  EXPECT_EQ(kv.cached_block_count(), 0);  // re-referenced
  EXPECT_TRUE(kv.audit());
}

TEST(PrefixCacheTest, PartialTailIsServedCopyOnWrite) {
  KvCacheManager kv = paged(1000.0, 4, true);
  // prefix 10 = 2 full blocks + a 2-token tail inside block 2.
  ASSERT_TRUE(kv.try_admit(0, 13, 0, /*prefix_id=*/1, /*prefix_len=*/10,
                           /*prompt_len=*/12));
  kv.note_prefilled(0, 12);
  KvCacheManager::AdmitOutcome hit;
  ASSERT_TRUE(kv.try_admit(1, 13, 0, 1, 10, 12, &hit));
  EXPECT_EQ(hit.prefix_hit_tokens, 10);  // tail tokens reused via the copy
  EXPECT_EQ(hit.shared_blocks, 2);       // full blocks by reference
  EXPECT_EQ(hit.cow_blocks, 1);          // the tail block is copied
  EXPECT_TRUE(kv.audit());
  // The donor leaving drops the tail entry: later admissions still share
  // the full blocks but fall back to prefilling the tail themselves.
  kv.release(0);
  KvCacheManager::AdmitOutcome no_tail;
  ASSERT_TRUE(kv.try_admit(2, 13, 0, 1, 10, 12, &no_tail));
  EXPECT_EQ(no_tail.prefix_hit_tokens, 8);
  EXPECT_EQ(no_tail.cow_blocks, 0);
  EXPECT_TRUE(kv.audit());
}

TEST(PrefixCacheTest, HitCappedAtPromptMinusOne) {
  // The whole prompt IS the (aligned) prefix: the final prompt token must
  // still be recomputed for logits, so the hit stops one token short while
  // every prefix block is still mapped by reference.
  KvCacheManager kv = paged(1000.0, 4, true);
  ASSERT_TRUE(kv.try_admit(0, 9, 0, /*prefix_id=*/5, /*prefix_len=*/8,
                           /*prompt_len=*/8));
  kv.note_prefilled(0, 8);
  KvCacheManager::AdmitOutcome hit;
  ASSERT_TRUE(kv.try_admit(1, 9, 0, 5, 8, 8, &hit));
  EXPECT_EQ(hit.prefix_hit_tokens, 7);
  EXPECT_EQ(hit.shared_blocks, 2);
  EXPECT_TRUE(kv.audit());
}

TEST(PrefixCacheTest, CachedBlocksAreReclaimedLruUnderPressure) {
  // 6-block device.  Prefix A (2 blocks) is cached, then prefix B (2
  // blocks) is cached more recently.  A 4-block unique admission finds 2
  // free blocks and must reclaim exactly the 2 OLDER cached blocks (A's),
  // leaving B hittable.
  KvCacheManager kv = paged(24.0, 4, true);
  ASSERT_TRUE(kv.try_admit(0, 9, 0, /*prefix_id=*/100, 8, 9));
  kv.note_prefilled(0, 9);
  kv.release(0);
  ASSERT_TRUE(kv.try_admit(1, 9, 0, /*prefix_id=*/200, 8, 9));
  kv.note_prefilled(1, 9);
  kv.release(1);
  EXPECT_EQ(kv.cached_block_count(), 4);
  EXPECT_EQ(kv.occupied_blocks(), 4);
  ASSERT_TRUE(kv.try_admit(2, 16));  // 4 blocks: 2 free + 2 reclaimed
  EXPECT_EQ(kv.cached_block_count(), 2);
  EXPECT_TRUE(kv.audit());
  kv.release(2);
  // The survivors are prefix B's blocks: a B lookup hits both, an A
  // lookup none (and quietly re-registers A for the future).
  KvCacheManager::AdmitOutcome hit_b;
  ASSERT_TRUE(kv.try_admit(3, 9, 0, 200, 8, 9, &hit_b));
  EXPECT_EQ(hit_b.prefix_hit_tokens, 8);
  EXPECT_EQ(hit_b.shared_blocks, 2);
  kv.release(3);
  KvCacheManager::AdmitOutcome hit_a;
  ASSERT_TRUE(kv.try_admit(4, 9, 0, 100, 8, 9, &hit_a));
  EXPECT_EQ(hit_a.prefix_hit_tokens, 0);
  EXPECT_TRUE(kv.audit());
}

TEST(PrefixCacheTest, SwapOutPrivatizesSharedBlocks) {
  KvCacheManager kv = paged(1000.0, 4, true, EvictionPolicy::kSwapToHost);
  ASSERT_TRUE(kv.try_admit(0, 11, 0, /*prefix_id=*/2, 8, 10));
  kv.note_prefilled(0, 10);
  ASSERT_TRUE(kv.try_admit(1, 11, 0, 2, 8, 10));
  EXPECT_EQ(kv.shared_block_count(1), 2);
  ASSERT_TRUE(kv.try_swap_out(1));
  // The host copy is whole (3 blocks); the device keeps the shared blocks
  // alive for request 0.
  EXPECT_DOUBLE_EQ(kv.host_used(), 12.0);
  EXPECT_EQ(kv.shared_block_count(0), 2);
  EXPECT_TRUE(kv.audit());
  ASSERT_TRUE(kv.try_swap_in(1));
  EXPECT_EQ(kv.shared_block_count(1), 0);  // returns private
  EXPECT_EQ(kv.resident_tokens(1), 11);
  EXPECT_TRUE(kv.audit());
}

// --- Victim-order indices (satellite: no full scans) -------------------------

TEST(VictimIndexTest, MatchesBruteForceScanUnderChurn) {
  // The incremental admit-order / priority-order indices must reproduce
  // the historical full-scan victim choice exactly, across policies,
  // protect values, grows, releases, and swap re-admissions.
  struct Shadow {
    std::int64_t tokens, admit_seq, priority;
  };
  for (EvictionPolicy policy :
       {EvictionPolicy::kPreemptNewest, EvictionPolicy::kSwapToHost,
        EvictionPolicy::kPriorityVictim}) {
    KvCacheManager kv = paged(1e6, 4, false, policy);
    std::map<std::int64_t, Shadow> shadow;
    std::int64_t shadow_seq = 0;
    Rng rng(77);
    const auto brute_force = [&](std::int64_t protect) {
      // The pre-paging reference scan, verbatim semantics.
      std::int64_t exempt = -1;
      if (policy == EvictionPolicy::kPriorityVictim) {
        std::int64_t eligible = 0;
        std::int64_t oldest_seq = -1;
        for (const auto& [id, entry] : shadow) {
          if (id == protect) continue;
          ++eligible;
          if (exempt < 0 || entry.admit_seq < oldest_seq) {
            exempt = id;
            oldest_seq = entry.admit_seq;
          }
        }
        if (eligible < 2) exempt = -1;
      }
      std::int64_t victim = -1;
      const Shadow* victim_entry = nullptr;
      for (const auto& [id, entry] : shadow) {
        if (id == protect || id == exempt) continue;
        const auto better = [&](const Shadow& a, std::int64_t a_id,
                                const Shadow& b, std::int64_t b_id) {
          if (policy == EvictionPolicy::kPriorityVictim) {
            if (a.priority != b.priority) return a.priority < b.priority;
            if (a.tokens != b.tokens) return a.tokens > b.tokens;
          }
          if (a.admit_seq != b.admit_seq) return a.admit_seq > b.admit_seq;
          return a_id > b_id;
        };
        if (victim_entry == nullptr ||
            better(entry, id, *victim_entry, victim)) {
          victim = id;
          victim_entry = &entry;
        }
      }
      return victim;
    };
    for (std::int64_t op = 0; op < 500; ++op) {
      const std::int64_t kind = rng.uniform_int(0, 3);
      if (kind == 0 || shadow.empty()) {
        const std::int64_t tokens = rng.uniform_int(1, 40);
        const std::int64_t priority = rng.uniform_int(0, 3);
        ASSERT_TRUE(kv.try_admit(op, tokens, priority));
        shadow[op] = Shadow{tokens, shadow_seq++, priority};
      } else if (kind == 1) {
        const std::int64_t id = shadow.begin()->first;
        ASSERT_TRUE(kv.try_grow(id, rng.uniform_int(1, 9)));
        shadow[id].tokens += 0;  // tokens tracked below
      } else {
        const std::int64_t id = shadow.rbegin()->first;
        kv.release(id);
        shadow.erase(id);
      }
      // Mirror token counts from the manager (grow path above).
      for (auto& [id, entry] : shadow) entry.tokens = kv.resident_tokens(id);
      const std::int64_t protect =
          shadow.empty() || rng.uniform_int(0, 1) == 0
              ? -1
              : shadow.begin()->first;
      ASSERT_EQ(kv.pick_eviction_victim(protect), brute_force(protect))
          << "policy " << eviction_policy_name(policy) << " op " << op;
      ASSERT_TRUE(kv.audit());
    }
  }
}

// --- Seeded fuzz: alloc/grow/share/CoW/free (satellite) ----------------------

TEST(PagedKvFuzzTest, NoLeaksAcrossSeedsAndPolicies) {
  for (std::uint64_t seed : {3ull, 17ull, 101ull}) {
    for (EvictionPolicy policy :
         {EvictionPolicy::kPreemptNewest, EvictionPolicy::kSwapToHost,
          EvictionPolicy::kPriorityVictim}) {
      KvCacheManager kv = paged(/*capacity=*/600.0, /*block_tokens=*/4,
                                /*prefix_cache=*/true, policy,
                                /*host_capacity=*/200.0);
      Rng rng(seed);
      std::set<std::int64_t> device, host;
      for (std::int64_t op = 0; op < 600; ++op) {
        const std::int64_t kind = rng.uniform_int(0, 5);
        if (kind <= 1 || device.empty()) {
          // Admit, half the time with one of 3 shared prefixes (length 10:
          // 2 full blocks + a CoW tail).
          const bool tagged = rng.uniform_int(0, 1) == 0;
          const std::int64_t prompt = rng.uniform_int(12, 40);
          const std::int64_t prefix = tagged ? rng.uniform_int(0, 2) : -1;
          if (kv.try_admit(op, prompt + 1, rng.uniform_int(0, 3), prefix,
                           tagged ? 10 : 0, prompt)) {
            device.insert(op);
            // Prefill some arbitrary amount (possibly past the prefix).
            kv.note_prefilled(op, rng.uniform_int(0, prompt));
          }
        } else if (kind == 2) {
          kv.try_grow(*device.begin(), rng.uniform_int(1, 6));
        } else if (kind == 3) {
          const std::int64_t id = *device.rbegin();
          kv.release(id);
          device.erase(id);
        } else if (kind == 4 && policy == EvictionPolicy::kSwapToHost) {
          const std::int64_t id = *device.begin();
          if (kv.try_swap_out(id)) {
            device.erase(id);
            host.insert(id);
          }
        } else {
          const std::int64_t victim = kv.pick_eviction_victim(/*protect=*/-1);
          if (victim >= 0) {
            kv.release(victim);
            device.erase(victim);
          }
        }
        if (!host.empty() && kv.try_swap_in(*host.begin())) {
          device.insert(*host.begin());
          host.erase(host.begin());
        }
        // audit() recomputes per-block refcounts (>= 1 while mapped),
        // per-entry block math, the cached set, and both victim indices.
        ASSERT_TRUE(kv.audit())
            << "seed " << seed << " policy " << eviction_policy_name(policy)
            << " op " << op;
        ASSERT_EQ(kv.resident_count(), device.size());
        ASSERT_EQ(kv.swapped_count(), host.size());
        ASSERT_LE(kv.occupied_blocks(), kv.capacity_blocks());
      }
      // Tear down: no leaked blocks — everything still occupied must be a
      // reclaimable cached prefix block.
      for (std::int64_t id : device) kv.release(id);
      std::vector<std::int64_t> stranded(host.begin(), host.end());
      for (std::int64_t id : stranded) {
        ASSERT_TRUE(kv.try_swap_in(id));
        kv.release(id);
      }
      EXPECT_EQ(kv.referenced_blocks(), 0);
      EXPECT_EQ(kv.occupied_blocks(), kv.cached_block_count());
      EXPECT_DOUBLE_EQ(kv.used(), 0.0);
      EXPECT_DOUBLE_EQ(kv.host_used(), 0.0);
      EXPECT_TRUE(kv.audit());
    }
  }
}

// --- Paged-vs-contiguous lockstep equivalence at block size 1 (satellite) ----

/// The pre-paging contiguous accounting, reimplemented verbatim: used_ is
/// an accumulated byte total, admissions/growth compare used_ + need
/// against capacity, swap moves byte totals.  At block_tokens = 1 the
/// paged manager must make the IDENTICAL decision on every operation.
class ContiguousReference {
 public:
  ContiguousReference(Bytes capacity, Bytes bytes_per_token,
                      Bytes host_capacity)
      : capacity_(capacity),
        bytes_per_token_(bytes_per_token),
        host_capacity_(host_capacity) {}

  bool try_admit(std::int64_t id, std::int64_t tokens) {
    const Bytes need = bytes_per_token_ * static_cast<double>(tokens);
    if (used_ + need > capacity_) return false;
    entries_[id] = tokens;
    used_ += need;
    return true;
  }
  bool try_grow(std::int64_t id, std::int64_t tokens) {
    const Bytes need = bytes_per_token_ * static_cast<double>(tokens);
    if (used_ + need > capacity_) return false;
    entries_[id] += tokens;
    used_ += need;
    return true;
  }
  void release(std::int64_t id) {
    used_ -= bytes_per_token_ * static_cast<double>(entries_.at(id));
    entries_.erase(id);
  }
  bool try_swap_out(std::int64_t id) {
    const Bytes bytes = bytes_per_token_ * static_cast<double>(entries_.at(id));
    if (host_used_ + bytes > host_capacity_) return false;
    host_entries_[id] = entries_.at(id);
    host_used_ += bytes;
    used_ -= bytes;
    entries_.erase(id);
    return true;
  }
  bool try_swap_in(std::int64_t id) {
    const Bytes bytes =
        bytes_per_token_ * static_cast<double>(host_entries_.at(id));
    if (used_ + bytes > capacity_) return false;
    entries_[id] = host_entries_.at(id);
    used_ += bytes;
    host_used_ -= bytes;
    host_entries_.erase(id);
    return true;
  }
  Bytes used() const { return used_; }
  std::int64_t tokens(std::int64_t id) const {
    const auto it = entries_.find(id);
    return it == entries_.end() ? 0 : it->second;
  }

 private:
  Bytes capacity_, bytes_per_token_, host_capacity_;
  Bytes used_ = 0, host_used_ = 0;
  std::map<std::int64_t, std::int64_t> entries_, host_entries_;
};

TEST(PagedContiguousLockstepTest, BlockSizeOneMatchesContiguousDecisions) {
  for (std::uint64_t seed : {5ull, 23ull, 99ull}) {
    for (EvictionPolicy policy :
         {EvictionPolicy::kPreemptNewest, EvictionPolicy::kSwapToHost,
          EvictionPolicy::kPriorityVictim}) {
      KvCacheManager kv = paged(300.0, /*block_tokens=*/1,
                                /*prefix_cache=*/false, policy,
                                /*host_capacity=*/120.0);
      ContiguousReference reference(300.0, 1.0, 120.0);
      Rng rng(seed);
      std::set<std::int64_t> device, host;
      for (std::int64_t op = 0; op < 500; ++op) {
        const std::int64_t kind = rng.uniform_int(0, 4);
        if (kind == 0 || device.empty()) {
          const std::int64_t tokens = rng.uniform_int(1, 60);
          const bool paged_ok = kv.try_admit(op, tokens);
          ASSERT_EQ(paged_ok, reference.try_admit(op, tokens)) << "op " << op;
          if (paged_ok) device.insert(op);
        } else if (kind == 1) {
          const std::int64_t id = *device.begin();
          const std::int64_t tokens = rng.uniform_int(1, 8);
          ASSERT_EQ(kv.try_grow(id, tokens), reference.try_grow(id, tokens));
        } else if (kind == 2) {
          const std::int64_t id = *device.rbegin();
          kv.release(id);
          reference.release(id);
          device.erase(id);
        } else if (kind == 3) {
          const std::int64_t id = *device.begin();
          const bool paged_ok = kv.try_swap_out(id);
          ASSERT_EQ(paged_ok, reference.try_swap_out(id));
          if (paged_ok) {
            device.erase(id);
            host.insert(id);
          }
        } else if (!host.empty()) {
          const std::int64_t id = *host.begin();
          const bool paged_ok = kv.try_swap_in(id);
          ASSERT_EQ(paged_ok, reference.try_swap_in(id));
          if (paged_ok) {
            host.erase(id);
            device.insert(id);
          }
        }
        ASSERT_DOUBLE_EQ(kv.used(), reference.used()) << "op " << op;
        for (std::int64_t id : device) {
          ASSERT_EQ(kv.resident_tokens(id), reference.tokens(id));
        }
        ASSERT_TRUE(kv.audit());
      }
    }
  }
}

// --- Scheduler integration: prefix hits skip prefill work --------------------

TEST(PagedSchedulerTest, PrefixHitsSkipPrefillAndStartMidSequence) {
  KvCacheManager kv = paged(1e6, /*block_tokens=*/16, /*prefix_cache=*/true,
                            EvictionPolicy::kNone);
  SchedulerConfig config;
  config.kv_block_tokens = 16;
  config.enable_prefix_cache = true;
  config.max_prefill_batch = 1;  // serialized admissions: every request
                                 // after the first sees a computed prefix
  ContinuousBatchScheduler scheduler(config, &kv);
  const std::int64_t prefix_len = 64;
  std::vector<Request> requests;
  for (std::int64_t id = 0; id < 6; ++id) {
    Request request;
    request.id = id;
    request.prompt_len = prefix_len + 32;
    request.output_len = 4;
    request.prefix_id = 0;
    request.prefix_len = prefix_len;
    requests.push_back(request);
    scheduler.enqueue(request);
  }
  std::int64_t prefill_tokens = 0;
  std::int64_t nonzero_first_chunks = 0;
  std::map<std::int64_t, std::int64_t> finish_count;
  StepRecord record;
  while (scheduler.next_step(&record)) {
    if (record.kind == StepRecord::Kind::kPrefill) {
      for (std::size_t i = 0; i < record.chunk_lens.size(); ++i) {
        prefill_tokens += record.chunk_lens[i];
        if (record.prev_lens[i] == prefix_len) ++nonzero_first_chunks;
      }
    }
    for (std::int64_t id : record.finished_ids) ++finish_count[id];
    EXPECT_TRUE(kv.audit());
    EXPECT_TRUE(scheduler.aggregates_consistent());
  }
  for (const Request& request : requests) {
    EXPECT_EQ(finish_count[request.id], 1);
  }
  // Request 0 prefills all 96 tokens; the other five skip the 64-token
  // prefix and prefill only their 32-token turns, starting mid-sequence.
  EXPECT_EQ(prefill_tokens, 96 + 5 * 32);
  EXPECT_EQ(nonzero_first_chunks, 5);
  EXPECT_EQ(scheduler.counters().prefix_hit_tokens, 5 * prefix_len);
  EXPECT_GT(scheduler.counters().prefix_shared_blocks, 0);
}

TEST(PagedSchedulerTest, BlockSixteenCachingOffServesSameTokens) {
  // Block granularity changes allocation timing, never the work served:
  // every request completes with the same generated-token total.
  RequestStreamConfig stream;
  stream.seed = 13;
  stream.num_requests = 80;
  stream.arrival_rate = 40.0;
  stream.prompt.kind = LengthDistribution::kUniform;
  stream.prompt.min_len = 64;
  stream.prompt.max_len = 320;
  stream.output.kind = LengthDistribution::kUniform;
  stream.output.min_len = 16;
  stream.output.max_len = 128;
  const auto requests = generate_requests(stream);
  ServingScenario contiguous = llama7b_pressured_scenario(
      1, ir::DType::kInt4, EvictionPolicy::kPreemptNewest, 0,
      /*kv_budget_tokens=*/2000);
  ServingScenario blocked = contiguous;
  blocked.scheduler.kv_block_tokens = 16;
  const ServingMetrics a = run_serving(contiguous, requests);
  const ServingMetrics b = run_serving(blocked, requests);
  EXPECT_EQ(a.completed, 80);
  EXPECT_EQ(b.completed, 80);
  EXPECT_EQ(a.generated_tokens, b.generated_tokens);
  EXPECT_DOUBLE_EQ(a.kv_internal_fragmentation, 0.0);
  EXPECT_GT(b.kv_internal_fragmentation, 0.0);
}

// --- Request generation: the fourth decoupled rng stream ---------------------

TEST(PrefixStreamTest, PrefixAssignmentDecoupledFromOtherStreams) {
  RequestStreamConfig base = zipf_chat_stream(11, 400, 20.0,
                                              /*priority_classes=*/3);
  base.num_tenants = 2;
  RequestStreamConfig prefixed = base;
  prefixed.prefix_pool_size = 4;
  prefixed.prefix_len_tokens = 100;
  const auto plain = generate_requests(base);
  const auto tagged = generate_requests(prefixed);
  ASSERT_EQ(plain.size(), tagged.size());
  std::set<std::int64_t> seen;
  for (std::size_t i = 0; i < plain.size(); ++i) {
    EXPECT_EQ(plain[i].arrival_time, tagged[i].arrival_time);
    EXPECT_EQ(plain[i].prompt_len + 100, tagged[i].prompt_len);
    EXPECT_EQ(plain[i].output_len, tagged[i].output_len);
    EXPECT_EQ(plain[i].priority, tagged[i].priority);
    EXPECT_EQ(plain[i].tenant_id, tagged[i].tenant_id);
    EXPECT_EQ(plain[i].prefix_id, -1);
    EXPECT_EQ(plain[i].prefix_len, 0);
    EXPECT_GE(tagged[i].prefix_id, 0);
    EXPECT_LT(tagged[i].prefix_id, 4);
    EXPECT_EQ(tagged[i].prefix_len, 100);
    seen.insert(tagged[i].prefix_id);
  }
  EXPECT_EQ(seen.size(), 4u);  // all pool members drawn over 400 requests

  RequestStreamConfig bad = prefixed;
  bad.prefix_len_tokens = 0;  // pool without a length
  EXPECT_THROW(generate_requests(bad), ConfigError);
  bad.prefix_len_tokens = -5;
  EXPECT_THROW(generate_requests(bad), ConfigError);
  bad.prefix_len_tokens = 100;
  bad.prefix_pool_size = -1;
  EXPECT_THROW(generate_requests(bad), ConfigError);
}

// --- End-to-end acceptance: the canonical chatbot study ----------------------

TEST(PrefixCacheEndToEndTest, ChatbotHitRateAboveHalfAndGoodputWin) {
  const auto requests = generate_requests(
      prefix_chatbot_stream(/*seed=*/42, /*num_requests=*/200,
                            /*arrival_rate=*/30.0));
  const ServingMetrics off = run_serving(
      prefix_cache_scenario(ir::DType::kInt4, /*enable_prefix_cache=*/false),
      requests);
  const ServingMetrics on = run_serving(
      prefix_cache_scenario(ir::DType::kInt4, /*enable_prefix_cache=*/true),
      requests);
  EXPECT_EQ(off.completed, 200);
  EXPECT_EQ(on.completed, 200);
  EXPECT_EQ(off.generated_tokens, on.generated_tokens);
  // The acceptance bar: most prefix tokens served from cache, strictly
  // higher goodput than the caching-off deployment on identical traffic.
  EXPECT_GT(on.prefix_hit_rate, 0.5);
  EXPECT_GT(on.goodput_tokens_per_second, off.goodput_tokens_per_second);
  EXPECT_GT(on.counters.prefix_shared_blocks, 0);
  EXPECT_GT(on.counters.prefix_cow_blocks, 0);  // 1000 % 16 != 0: tail CoW
  EXPECT_DOUBLE_EQ(off.prefix_hit_rate, 0.0);
  EXPECT_LE(on.ttft.p50, off.ttft.p50);  // skipped prefill shows up in TTFT
  // Determinism: the identical run reproduces bit for bit.
  const ServingMetrics again = run_serving(
      prefix_cache_scenario(ir::DType::kInt4, /*enable_prefix_cache=*/true),
      requests);
  EXPECT_EQ(on.total_steps, again.total_steps);
  EXPECT_DOUBLE_EQ(on.goodput_tokens_per_second,
                   again.goodput_tokens_per_second);
  EXPECT_DOUBLE_EQ(on.prefix_hit_rate, again.prefix_hit_rate);
  EXPECT_DOUBLE_EQ(on.kv_internal_fragmentation,
                   again.kv_internal_fragmentation);
}

}  // namespace
}  // namespace cimtpu::serving
