#include "common/units.h"

#include <gtest/gtest.h>

namespace cimtpu {
namespace {

TEST(UnitsTest, Constants) {
  EXPECT_DOUBLE_EQ(KiB, 1024.0);
  EXPECT_DOUBLE_EQ(MiB, 1024.0 * 1024.0);
  EXPECT_DOUBLE_EQ(GiB, 1024.0 * 1024.0 * 1024.0);
  EXPECT_DOUBLE_EQ(GBps, 1e9);
  EXPECT_DOUBLE_EQ(GHz, 1e9);
  EXPECT_DOUBLE_EQ(pJ, 1e-12);
  EXPECT_DOUBLE_EQ(TOPS, 1e12);
}

TEST(UnitsTest, FormatTimePicksScale) {
  EXPECT_EQ(format_time(1.5e-3), "1.5 ms");
  EXPECT_EQ(format_time(2.0e-6), "2 us");
  EXPECT_EQ(format_time(3.25e-9), "3.25 ns");
  EXPECT_EQ(format_time(1.0), "1 s");
}

TEST(UnitsTest, FormatEnergyPicksScale) {
  EXPECT_EQ(format_energy(1.0e-12), "1 pJ");
  EXPECT_EQ(format_energy(2.5e-6), "2.5 uJ");
  EXPECT_EQ(format_energy(42e-3), "42 mJ");
}

TEST(UnitsTest, FormatBytesBinary) {
  EXPECT_EQ(format_bytes(16 * MiB), "16 MiB");
  EXPECT_EQ(format_bytes(8 * GiB), "8 GiB");
  EXPECT_EQ(format_bytes(512), "512 B");
}

TEST(UnitsTest, FormatOpsRate) {
  EXPECT_EQ(format_ops_rate(137.6e12), "138 TOPS");
  EXPECT_EQ(format_ops_rate(455.1e9), "455 GOPS");
}

TEST(UnitsTest, FormatPower) {
  EXPECT_EQ(format_power(175.0), "175 W");
  EXPECT_EQ(format_power(1.32e-3), "1.32 mW");
}

TEST(UnitsTest, FormatRatio) {
  EXPECT_EQ(format_ratio(9.43), "9.43x");
  EXPECT_EQ(format_ratio(27.3), "27.3x");
}

TEST(UnitsTest, FormatPercentDeltaSigned) {
  EXPECT_EQ(format_percent_delta(-0.299), "-29.9%");
  EXPECT_EQ(format_percent_delta(0.0243), "+2.4%");
}

TEST(UnitsTest, FormatHandlesNegativeValues) {
  EXPECT_EQ(format_time(-1.5e-3), "-1.5 ms");
}

TEST(UnitsTest, FormatHandlesZero) {
  EXPECT_EQ(format_time(0.0), "0 ps");
  EXPECT_EQ(format_bytes(0.0), "0 B");
}

}  // namespace
}  // namespace cimtpu
