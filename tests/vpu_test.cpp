// VPU functional kernels (softmax, GeLU, LayerNorm) and the cost model.

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "common/rng.h"
#include "ir/op.h"
#include "tech/technology.h"
#include "vpu/activations.h"
#include "vpu/softmax.h"
#include "vpu/vpu.h"

namespace cimtpu::vpu {
namespace {

std::vector<float> random_row(Rng& rng, int n, double lo = -10, double hi = 10) {
  std::vector<float> v(n);
  for (auto& x : v) x = static_cast<float>(rng.uniform(lo, hi));
  return v;
}

// --- Softmax -------------------------------------------------------------------

TEST(SoftmaxTest, SumsToOne) {
  Rng rng(1);
  const auto x = random_row(rng, 100);
  for (const auto& result : {softmax_reference(x), softmax_online(x)}) {
    const double sum = std::accumulate(result.begin(), result.end(), 0.0);
    EXPECT_NEAR(sum, 1.0, 1e-5);
  }
}

TEST(SoftmaxTest, OnlineMatchesReference) {
  Rng rng(2);
  for (int trial = 0; trial < 50; ++trial) {
    const int n = static_cast<int>(rng.uniform_int(1, 300));
    const auto x = random_row(rng, n);
    const auto ref = softmax_reference(x);
    const auto online = softmax_online(x);
    for (int i = 0; i < n; ++i) {
      EXPECT_NEAR(online[i], ref[i], 1e-6) << "i=" << i;
    }
  }
}

TEST(SoftmaxTest, StableUnderLargeInputs) {
  // Naive exp without max-subtraction would overflow at 1000.
  const std::vector<float> x{1000.0f, 1000.0f, 999.0f};
  const auto result = softmax_online(x);
  EXPECT_FALSE(std::isnan(result[0]));
  EXPECT_NEAR(result[0], result[1], 1e-6);
  EXPECT_GT(result[0], result[2]);
}

TEST(SoftmaxTest, SingleElementIsOne) {
  EXPECT_FLOAT_EQ(softmax_online({3.5f})[0], 1.0f);
}

TEST(SoftmaxTest, EmptyThrows) {
  EXPECT_THROW(softmax_online({}), InternalError);
  EXPECT_THROW(softmax_reference({}), InternalError);
}

TEST(SoftmaxTest, OnlineStateMergeIsAssociative) {
  // The streaming property that lets the VPU process rows in chunks.
  Rng rng(3);
  const auto x = random_row(rng, 128);
  OnlineSoftmaxState whole;
  for (float v : x) whole.update(v);

  OnlineSoftmaxState left, right;
  for (int i = 0; i < 64; ++i) left.update(x[i]);
  for (int i = 64; i < 128; ++i) right.update(x[i]);
  OnlineSoftmaxState merged = left;
  merged.merge(right);

  EXPECT_FLOAT_EQ(merged.running_max, whole.running_max);
  EXPECT_NEAR(merged.running_sum, whole.running_sum,
              whole.running_sum * 1e-5);
}

TEST(SoftmaxTest, MergeWithEmptyIsIdentity) {
  OnlineSoftmaxState state;
  state.update(1.0f);
  state.update(2.0f);
  OnlineSoftmaxState copy = state;
  state.merge(OnlineSoftmaxState{});
  EXPECT_FLOAT_EQ(state.running_max, copy.running_max);
  EXPECT_FLOAT_EQ(state.running_sum, copy.running_sum);
}

TEST(SoftmaxTest, OnlineNeedsFewerPasses) {
  EXPECT_LT(online_softmax_passes(), naive_softmax_passes());
}

// --- Activations -----------------------------------------------------------------

TEST(GeluTest, KnownValues) {
  EXPECT_FLOAT_EQ(gelu_exact(0.0f), 0.0f);
  EXPECT_NEAR(gelu_exact(1.0f), 0.8413f, 1e-4);
  EXPECT_NEAR(gelu_exact(-1.0f), -0.1587f, 1e-4);
}

TEST(GeluTest, TanhApproximationClose) {
  // The DiT-style tanh approximation stays within 3e-3 absolute error on
  // the practical activation range.
  for (float x = -6.0f; x <= 6.0f; x += 0.01f) {
    EXPECT_NEAR(gelu_tanh(x), gelu_exact(x), 3e-3) << "x=" << x;
  }
}

TEST(GeluTest, AsymptoticBehaviour) {
  EXPECT_NEAR(gelu_tanh(10.0f), 10.0f, 1e-3);
  EXPECT_NEAR(gelu_tanh(-10.0f), 0.0f, 1e-3);
}

TEST(LayerNormTest, NormalizesMoments) {
  Rng rng(4);
  const auto x = random_row(rng, 256, -5, 20);
  const std::vector<float> gamma(256, 1.0f), beta(256, 0.0f);
  const auto y = layer_norm(x, gamma, beta);
  double mean = 0, var = 0;
  for (float v : y) mean += v;
  mean /= y.size();
  for (float v : y) var += (v - mean) * (v - mean);
  var /= y.size();
  EXPECT_NEAR(mean, 0.0, 1e-4);
  EXPECT_NEAR(var, 1.0, 1e-3);
}

TEST(LayerNormTest, AffineParametersApplied) {
  const std::vector<float> x{1.0f, 3.0f};
  const std::vector<float> gamma{2.0f, 2.0f}, beta{10.0f, 10.0f};
  const auto y = layer_norm(x, gamma, beta);
  // Normalized values are -1, +1 (up to eps), scaled by 2 and shifted by 10.
  EXPECT_NEAR(y[0], 8.0f, 1e-3);
  EXPECT_NEAR(y[1], 12.0f, 1e-3);
}

TEST(LayerNormTest, SizeMismatchThrows) {
  EXPECT_THROW(layer_norm({1.0f}, {1.0f, 1.0f}, {0.0f}), InternalError);
  EXPECT_THROW(layer_norm({}, {}, {}), InternalError);
}

TEST(ShiftScaleTest, DitModulation) {
  const auto y = shift_scale({1.0f, 2.0f}, /*shift=*/0.5f, /*scale=*/0.25f);
  EXPECT_FLOAT_EQ(y[0], 1.0f * 1.25f + 0.5f);
  EXPECT_FLOAT_EQ(y[1], 2.0f * 1.25f + 0.5f);
}

TEST(ShiftScaleTest, IdentityWhenZero) {
  const auto y = shift_scale({3.0f, -4.0f}, 0.0f, 0.0f);
  EXPECT_FLOAT_EQ(y[0], 3.0f);
  EXPECT_FLOAT_EQ(y[1], -4.0f);
}

// --- VPU cost model ---------------------------------------------------------------

class VpuCostTest : public ::testing::Test {
 protected:
  VpuCostTest()
      : energy_(tech::calibration_node()),
        area_(tech::calibration_node()),
        vpu_(VpuSpec{}, energy_, area_) {}
  tech::EnergyModel energy_;
  tech::AreaModel area_;
  Vpu vpu_;
};

TEST_F(VpuCostTest, SpecDefaultsMatchTableI) {
  EXPECT_EQ(vpu_.spec().sublanes, 8);
  EXPECT_EQ(vpu_.spec().lanes, 128);
  EXPECT_DOUBLE_EQ(vpu_.ops_per_cycle(), 1024.0);
}

TEST_F(VpuCostTest, MatmulRoutedToVpuThrows) {
  const ir::Op op = ir::make_weight_gemm("g", "G", 8, 8, 8, ir::DType::kInt8);
  EXPECT_THROW(vpu_.evaluate(op), Error);
}

TEST_F(VpuCostTest, ElementwiseCycles) {
  const ir::Op op =
      ir::make_elementwise("add", "E", 1024 * 1024, 1.0, ir::DType::kInt8);
  const VpuCost cost = vpu_.evaluate(op);
  EXPECT_DOUBLE_EQ(cost.busy_cycles, 1024.0);  // 1M ops / 1024 lanes
}

TEST_F(VpuCostTest, GeluCostsMoreThanAdd) {
  const ir::Op add =
      ir::make_elementwise("add", "E", 1 << 20, 1.0, ir::DType::kInt8);
  const ir::Op gelu = ir::make_gelu("g", "G", 1 << 20, ir::DType::kInt8);
  EXPECT_GT(vpu_.evaluate(gelu).busy_cycles, vpu_.evaluate(add).busy_cycles);
}

TEST_F(VpuCostTest, NarrowRowsWasteLanes) {
  // Decode softmax: 8 rows of 1280 vs one big row block of equal elements.
  const ir::Op narrow = ir::make_softmax("s", "A", 8, 1280, ir::DType::kInt8);
  const ir::Op wide = ir::make_softmax("s", "A", 80, 128, ir::DType::kInt8);
  // Same element count; the wide-row case fills sublanes better.
  EXPECT_GE(vpu_.evaluate(narrow).busy_cycles,
            vpu_.evaluate(wide).busy_cycles);
}

TEST_F(VpuCostTest, EnergyProportionalToOps) {
  const ir::Op small =
      ir::make_elementwise("a", "E", 1000, 1.0, ir::DType::kInt8);
  const ir::Op big =
      ir::make_elementwise("b", "E", 2000, 1.0, ir::DType::kInt8);
  EXPECT_NEAR(vpu_.evaluate(big).busy_energy,
              2 * vpu_.evaluate(small).busy_energy, 1e-15);
}

TEST_F(VpuCostTest, LeakagePositive) {
  EXPECT_GT(vpu_.leakage_power(), 0.0);
  EXPECT_GT(vpu_.area(), 0.0);
}

TEST(VpuSpecTest, Validation) {
  tech::EnergyModel energy(tech::calibration_node());
  tech::AreaModel area(tech::calibration_node());
  VpuSpec bad;
  bad.lanes = 0;
  EXPECT_THROW(Vpu(bad, energy, area), ConfigError);
}

}  // namespace
}  // namespace cimtpu::vpu
