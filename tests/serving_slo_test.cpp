// SLO-aware scheduling wall: per-request deadline streams (the decoupled
// fifth rng stream must leave every other field bit-identical),
// EdfAdmission ordering and deadline shedding, the shed-never-completes
// invariant, closed-form slo_attainment, the JSONL request-trace
// round-trip, the simulated-time-horizon bugfixes (idle-advance clamping,
// unconditional shed counting), tenant-share resolution by id, diurnal /
// merged traffic shaping, and the canonical SLO frontier ordering (EDF
// strictly beats FIFO at the highest swept arrival rate — the pin behind
// the schema-v7 "slo_frontier" bench block).

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>
#include <set>
#include <vector>

#include "common/status.h"
#include "models/model_zoo.h"
#include "serving/admission_policy.h"
#include "serving/request_trace.h"
#include "serving/sweep.h"
#include "serving/trace.h"
#include "serving/traffic_profiles.h"

namespace cimtpu::serving {
namespace {

Request make_request(std::int64_t id, Seconds arrival, Seconds ttft_deadline,
                     Seconds tpot_deadline = 0) {
  Request request;
  request.id = id;
  request.arrival_time = arrival;
  request.prompt_len = 32;
  request.output_len = 8;
  request.ttft_deadline = ttft_deadline;
  request.tpot_deadline = tpot_deadline;
  return request;
}

// --- Deadline stream: fifth rng stream neutrality ----------------------------

TEST(DeadlineStreamTest, DeadlineDrawsLeaveOtherFieldsBitIdentical) {
  // The same seed with and without deadlines: arrivals, lengths,
  // priorities, tenants, and prefixes must match bit for bit — the
  // deadline rng is a decoupled stream, so enabling it never perturbs
  // the golden-pinned traffic.
  RequestStreamConfig plain = zipf_chat_stream(/*seed=*/42,
                                               /*num_requests=*/300,
                                               /*arrival_rate=*/20.0,
                                               /*priority_classes=*/3);
  plain.num_tenants = 2;
  RequestStreamConfig with_deadlines = plain;
  with_deadlines.ttft_deadline_s = 2.0;
  with_deadlines.tpot_deadline_s = 0.1;
  with_deadlines.deadline_jitter = 0.2;

  const std::vector<Request> a = generate_requests(plain);
  const std::vector<Request> b = generate_requests(with_deadlines);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].id, b[i].id);
    EXPECT_EQ(a[i].arrival_time, b[i].arrival_time);
    EXPECT_EQ(a[i].prompt_len, b[i].prompt_len);
    EXPECT_EQ(a[i].output_len, b[i].output_len);
    EXPECT_EQ(a[i].priority, b[i].priority);
    EXPECT_EQ(a[i].tenant_id, b[i].tenant_id);
    EXPECT_EQ(a[i].prefix_id, b[i].prefix_id);
    EXPECT_EQ(a[i].prefix_len, b[i].prefix_len);
    // Deadline-free streams carry zeros; deadline streams carry both
    // deadlines inside the jitter envelope, sharing one jitter factor.
    EXPECT_EQ(a[i].ttft_deadline, 0.0);
    EXPECT_EQ(a[i].tpot_deadline, 0.0);
    EXPECT_GE(b[i].ttft_deadline, 2.0 * 0.8);
    EXPECT_LE(b[i].ttft_deadline, 2.0 * 1.2);
    EXPECT_GE(b[i].tpot_deadline, 0.1 * 0.8);
    EXPECT_LE(b[i].tpot_deadline, 0.1 * 1.2);
    EXPECT_NEAR(b[i].ttft_deadline / 2.0, b[i].tpot_deadline / 0.1, 1e-12);
  }
}

TEST(DeadlineStreamTest, ValidationRejectsBadDeadlineConfigs) {
  RequestStreamConfig stream = slo_chat_stream(42, 10, 5.0);
  stream.ttft_deadline_s = -1.0;
  EXPECT_THROW(generate_requests(stream), ConfigError);
  stream = slo_chat_stream(42, 10, 5.0);
  stream.deadline_jitter = 1.0;  // would allow a zero-scale deadline
  EXPECT_THROW(generate_requests(stream), ConfigError);
}

// --- EdfAdmission: ordering and shedding -------------------------------------

TEST(EdfAdmissionTest, SelectsEarliestAbsoluteDeadlineFirst) {
  AdmissionConfig config;
  config.policy = "edf";
  std::unique_ptr<AdmissionPolicy> edf = make_admission_policy(config);

  // Absolute deadlines: r0 = 0+5, r1 = 1+1 (earliest), r2/r3 deadline-free
  // (sort last, FIFO among themselves).
  edf->on_enqueue(make_request(0, 0.0, 5.0), 0);
  edf->on_enqueue(make_request(1, 1.0, 1.0), /*step=*/0);
  edf->on_enqueue(make_request(2, 0.5, 0.0), /*step=*/0);
  edf->on_enqueue(make_request(3, 0.6, 0.0), /*step=*/0);

  AdmissionContext context;
  context.free_batch_slots = 8;
  context.free_kv_bytes = 1e9;
  context.bytes_per_token = 1;
  context.device_empty = true;
  context.now = 1.5;

  std::vector<std::int64_t> order;
  while (const Request* head = edf->select(context)) {
    order.push_back(head->id);
    edf->pop_selected();
  }
  EXPECT_EQ(order, (std::vector<std::int64_t>{1, 0, 2, 3}));
}

TEST(EdfAdmissionTest, ShedsProvablyLateRequestsAndDrainsThem) {
  AdmissionConfig config;
  config.policy = "edf";
  config.edf_shed_slack_s = 0.5;
  std::unique_ptr<AdmissionPolicy> edf = make_admission_policy(config);

  edf->on_enqueue(make_request(0, 0.0, 1.0), /*step=*/0);   // deadline 1.0 < now — late
  edf->on_enqueue(make_request(1, 0.0, 10.0), /*step=*/0);  // feasible
  edf->on_enqueue(make_request(2, 0.0, 2.4), /*step=*/0);   // 2.4 < 2.0 + 0.5 — late

  AdmissionContext context;
  context.free_batch_slots = 8;
  context.free_kv_bytes = 1e9;
  context.bytes_per_token = 1;
  context.device_empty = true;
  context.now = 2.0;

  const Request* head = edf->select(context);
  ASSERT_NE(head, nullptr);
  EXPECT_EQ(head->id, 1);

  std::vector<Request> shed;
  edf->drain_shed(&shed);
  std::vector<std::int64_t> shed_ids;
  for (const Request& request : shed) shed_ids.push_back(request.id);
  std::sort(shed_ids.begin(), shed_ids.end());
  EXPECT_EQ(shed_ids, (std::vector<std::int64_t>{0, 2}));
  // Drained means gone: a second drain yields nothing.
  shed.clear();
  edf->drain_shed(&shed);
  EXPECT_TRUE(shed.empty());
}

TEST(EdfAdmissionTest, ResumedVictimsAreExemptFromShedding) {
  AdmissionConfig config;
  config.policy = "edf";
  std::unique_ptr<AdmissionPolicy> edf = make_admission_policy(config);

  // A preemption victim re-queued past its deadline must NOT be shed: it
  // already streamed its first token, so its TTFT verdict is settled and
  // dropping it would throw away completed decode work.
  edf->on_preempt_requeue(make_request(0, 0.0, 1.0), /*step=*/0);

  AdmissionContext context;
  context.free_batch_slots = 8;
  context.free_kv_bytes = 1e9;
  context.bytes_per_token = 1;
  context.device_empty = true;
  context.now = 100.0;

  const Request* head = edf->select(context);
  ASSERT_NE(head, nullptr);
  EXPECT_EQ(head->id, 0);
  std::vector<Request> shed;
  edf->drain_shed(&shed);
  EXPECT_TRUE(shed.empty());
}

// --- End-to-end: EDF vs the other disciplines on one overloaded stream -------

ServingMetrics run_slo_policy(const std::string& admission,
                              const std::vector<Request>& requests,
                              ServingTrace* trace = nullptr) {
  ServingScenario scenario = slo_scenario(ir::DType::kInt8, admission);
  if (trace != nullptr) {
    scenario.trace.enabled = true;
  }
  return run_serving(scenario, requests, nullptr, trace);
}

TEST(EdfSchedulingTest, EdfAttainmentBeatsOtherPoliciesUnderOverload) {
  const std::vector<Request> requests = generate_requests(
      slo_chat_stream(/*seed=*/42, /*num_requests=*/300,
                      /*arrival_rate=*/25.0));
  const ServingMetrics fifo = run_slo_policy("fifo", requests);
  const ServingMetrics priority = run_slo_policy("priority", requests);
  const ServingMetrics wfq = run_slo_policy("wfq", requests);
  const ServingMetrics edf = run_slo_policy("edf", requests);

  // Only EDF sheds; the non-shedding disciplines lose to queueing delay.
  EXPECT_GT(edf.counters.shed_deadline, 0);
  EXPECT_EQ(fifo.counters.shed_deadline, 0);
  EXPECT_EQ(priority.counters.shed_deadline, 0);
  EXPECT_EQ(wfq.counters.shed_deadline, 0);
  EXPECT_GT(edf.slo_attainment, fifo.slo_attainment);
  EXPECT_GT(edf.slo_attainment, priority.slo_attainment);
  EXPECT_GT(edf.slo_attainment, wfq.slo_attainment);
  EXPECT_GT(edf.slo_goodput_tokens_per_second,
            fifo.slo_goodput_tokens_per_second);
}

TEST(EdfSchedulingTest, ShedRequestsNeverCompleteAndAccountingCloses) {
  const std::vector<Request> requests = generate_requests(
      slo_chat_stream(/*seed=*/7, /*num_requests=*/300,
                      /*arrival_rate=*/25.0));
  ServingTrace trace;
  const ServingMetrics metrics = run_slo_policy("edf", requests, &trace);

  std::set<std::int64_t> shed_ids, finished_ids;
  std::int64_t deadline_sheds = 0, horizon_sheds = 0;
  for (const TraceEvent& event : trace.events()) {
    if (event.type == TraceEventType::kShed) {
      EXPECT_TRUE(shed_ids.insert(event.request_id).second)
          << "request " << event.request_id << " shed twice";
      (event.aux == 0 ? deadline_sheds : horizon_sheds) += 1;
    } else if (event.type == TraceEventType::kFinish) {
      finished_ids.insert(event.request_id);
    }
  }
  for (std::int64_t id : shed_ids) {
    EXPECT_EQ(finished_ids.count(id), 0u)
        << "request " << id << " was shed AND finished";
  }
  // Trace events agree with the unconditional counters, and every arrived
  // request is exactly one of completed / deadline-shed / horizon-cut.
  EXPECT_EQ(deadline_sheds, metrics.counters.shed_deadline);
  EXPECT_EQ(horizon_sheds, metrics.counters.shed_horizon);
  EXPECT_GT(metrics.counters.shed_deadline, 0);
  std::int64_t arrived = 0;
  for (const Request& request : requests) {
    if (request.arrival_time < metrics.sim_end_seconds) arrived += 1;
  }
  EXPECT_EQ(metrics.completed + metrics.counters.total_shed(), arrived);
}

// --- slo_attainment: closed form on a hand-built scenario --------------------

TEST(SloMetricsTest, AttainmentIsMetOverArrivedInClosedForm) {
  // Three spaced-out requests on the uncontended baseline: r0's generous
  // deadlines are met, r1's 1 ns TTFT deadline cannot be, r2 carries no
  // deadline (counts as met).  Exactly 2 of 3 arrived requests meet ->
  // attainment is exactly 2/3, and SLO goodput counts only r0 + r2 tokens.
  std::vector<Request> requests = {
      make_request(0, 0.0, /*ttft=*/100.0, /*tpot=*/1.0),
      make_request(1, 10.0, /*ttft=*/1e-9),
      make_request(2, 20.0, /*ttft=*/0.0),
  };
  const ServingScenario scenario =
      llama7b_baseline_scenario(/*chips=*/1, ir::DType::kInt8);
  const ServingMetrics metrics = run_serving(scenario, requests);
  ASSERT_EQ(metrics.completed, 3);
  EXPECT_EQ(metrics.slo_met, 2);
  EXPECT_EQ(metrics.slo_attainment, 2.0 / 3.0);
  ASSERT_GT(metrics.makespan, 0.0);
  EXPECT_EQ(metrics.slo_goodput_tokens_per_second, 16.0 / metrics.makespan);
  // All three completed, so raw goodput counts all 24 output tokens.
  EXPECT_EQ(metrics.goodput_tokens_per_second, 24.0 / metrics.makespan);
}

TEST(SloMetricsTest, DeadlineFreeRunsReportFullAttainment) {
  std::vector<Request> requests = {make_request(0, 0.0, 0.0),
                                   make_request(1, 0.1, 0.0)};
  const ServingMetrics metrics = run_serving(
      llama7b_baseline_scenario(/*chips=*/1, ir::DType::kInt8), requests);
  EXPECT_EQ(metrics.completed, 2);
  EXPECT_EQ(metrics.slo_met, 2);
  EXPECT_EQ(metrics.slo_attainment, 1.0);
}

// --- JSONL request-trace round-trip ------------------------------------------

void expect_requests_identical(const std::vector<Request>& a,
                               const std::vector<Request>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].id, b[i].id);
    EXPECT_EQ(a[i].arrival_time, b[i].arrival_time);
    EXPECT_EQ(a[i].prompt_len, b[i].prompt_len);
    EXPECT_EQ(a[i].output_len, b[i].output_len);
    EXPECT_EQ(a[i].priority, b[i].priority);
    EXPECT_EQ(a[i].tenant_id, b[i].tenant_id);
    EXPECT_EQ(a[i].prefix_id, b[i].prefix_id);
    EXPECT_EQ(a[i].prefix_len, b[i].prefix_len);
    EXPECT_EQ(a[i].ttft_deadline, b[i].ttft_deadline);
    EXPECT_EQ(a[i].tpot_deadline, b[i].tpot_deadline);
  }
}

TEST(RequestTraceTest, JsonlRoundTripIsBitIdenticalIncludingMetrics) {
  // A stream exercising every serialized field: priorities, tenants,
  // prefixes, and deadlines.
  RequestStreamConfig stream = prefix_chatbot_stream(/*seed=*/42,
                                                     /*num_requests=*/200,
                                                     /*arrival_rate=*/25.0);
  stream.priority_classes = 3;
  stream.num_tenants = 2;
  stream.ttft_deadline_s = 2.0;
  stream.tpot_deadline_s = 0.1;
  const std::vector<Request> original = generate_requests(stream);
  const std::vector<Request> reloaded =
      parse_request_trace_jsonl(request_trace_jsonl(original));
  expect_requests_identical(original, reloaded);

  // The replay contract: a reloaded trace yields bit-identical metrics.
  const ServingScenario scenario = slo_scenario(ir::DType::kInt8, "edf");
  const ServingMetrics a = run_serving(scenario, original);
  const ServingMetrics b = run_serving(scenario, reloaded);
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.generated_tokens, b.generated_tokens);
  EXPECT_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.ttft.mean, b.ttft.mean);
  EXPECT_EQ(a.ttft.p99, b.ttft.p99);
  EXPECT_EQ(a.slo_met, b.slo_met);
  EXPECT_EQ(a.slo_attainment, b.slo_attainment);
  EXPECT_EQ(a.goodput_tokens_per_second, b.goodput_tokens_per_second);
  EXPECT_EQ(a.counters.shed_deadline, b.counters.shed_deadline);
  EXPECT_EQ(a.counters.shed_horizon, b.counters.shed_horizon);
}

TEST(RequestTraceTest, SaveAndLoadRoundTripThroughAFile) {
  const std::vector<Request> original =
      generate_requests(slo_chat_stream(/*seed=*/11, /*num_requests=*/50,
                                        /*arrival_rate=*/10.0));
  const std::string path = testing::TempDir() + "/cimtpu_slo_trace.jsonl";
  save_request_trace(path, original);
  expect_requests_identical(original, load_request_trace(path));
  std::remove(path.c_str());
  EXPECT_THROW(load_request_trace(path), ConfigError);
}

TEST(RequestTraceTest, ParserRejectsMalformedInput) {
  EXPECT_THROW(parse_request_trace_jsonl("{\"id\": 0, \"bogus\": 1}\n"),
               ConfigError);
  EXPECT_THROW(parse_request_trace_jsonl("{\"id\": }\n"), ConfigError);
  // Arrivals out of order: run_serving requires a sorted trace.
  EXPECT_THROW(parse_request_trace_jsonl(
                   "{\"id\": 0, \"arrival_s\": 5.0}\n"
                   "{\"id\": 1, \"arrival_s\": 1.0}\n"),
               ConfigError);
  EXPECT_TRUE(parse_request_trace_jsonl("").empty());
}

TEST(RequestTraceTest, ParserRejectsNonFiniteNumbers) {
  // strtod happily parses "nan"/"inf"/"infinity": a non-finite arrival
  // time or deadline must be rejected loudly, never round-tripped into
  // the scheduler where every comparison against it is poisoned.
  EXPECT_THROW(parse_request_trace_jsonl("{\"id\": 0, \"arrival_s\": nan}\n"),
               ConfigError);
  EXPECT_THROW(parse_request_trace_jsonl("{\"id\": 0, \"arrival_s\": inf}\n"),
               ConfigError);
  EXPECT_THROW(
      parse_request_trace_jsonl("{\"id\": 0, \"arrival_s\": -infinity}\n"),
      ConfigError);
  EXPECT_THROW(parse_request_trace_jsonl(
                   "{\"id\": 0, \"ttft_deadline_s\": NaN}\n"),
               ConfigError);
  EXPECT_THROW(parse_request_trace_jsonl(
                   "{\"id\": 0, \"tpot_deadline_s\": Infinity}\n"),
               ConfigError);
  // Overflowing literals land on +-inf via ERANGE: also rejected.
  EXPECT_THROW(parse_request_trace_jsonl("{\"id\": 0, \"arrival_s\": 1e999}\n"),
               ConfigError);
}

TEST(RequestTraceTest, SerializerRejectsNonFiniteValues) {
  // The write side enforces the same invariant: a Request carrying a
  // non-finite field is a caller bug, not a value to encode as "nan".
  Request poisoned = make_request(0, 0.0, 0.0);
  poisoned.arrival_time = std::numeric_limits<double>::quiet_NaN();
  EXPECT_THROW(request_trace_jsonl({poisoned}), ConfigError);
  poisoned = make_request(0, 0.0, 0.0);
  poisoned.ttft_deadline = std::numeric_limits<double>::infinity();
  EXPECT_THROW(request_trace_jsonl({poisoned}), ConfigError);
}

// --- Horizon bugfixes --------------------------------------------------------

TEST(HorizonTest, IdleAdvanceNeverSkipsPastTheHorizon) {
  // r1 arrives at t=100, far beyond the 10 s horizon: the idle engine
  // must stop AT the horizon, not fast-forward to the arrival and run
  // work that happens outside the simulated window.
  std::vector<Request> requests = {make_request(0, 0.0, 0.0),
                                   make_request(1, 100.0, 0.0)};
  ServingScenario scenario =
      llama7b_baseline_scenario(/*chips=*/1, ir::DType::kInt8);
  scenario.max_sim_seconds = 10.0;
  const ServingMetrics metrics = run_serving(scenario, requests);
  EXPECT_EQ(metrics.sim_end_seconds, 10.0);
  EXPECT_EQ(metrics.completed, 1);
  // r1 never arrived inside the window: not completed, not shed, and not
  // counted against attainment.
  EXPECT_EQ(metrics.counters.shed_horizon, 0);
  EXPECT_EQ(metrics.slo_attainment, 1.0);
}

TEST(HorizonTest, HorizonCutsAreCountedWithTracingOffAndOn) {
  // An overloaded window leaves requests in flight at the cut.  The
  // shed_horizon counter must report them identically with tracing off
  // (the bug: lifecycle closure used to live behind the trace flag) and
  // the traced run must emit matching kShed events.
  const std::vector<Request> requests = generate_requests(
      slo_chat_stream(/*seed=*/42, /*num_requests=*/200,
                      /*arrival_rate=*/25.0));
  ServingScenario scenario = slo_scenario(ir::DType::kInt8, "fifo");

  const ServingMetrics untraced = run_serving(scenario, requests);
  scenario.trace.enabled = true;
  ServingTrace trace;
  const ServingMetrics traced =
      run_serving(scenario, requests, nullptr, &trace);

  EXPECT_GT(untraced.counters.shed_horizon, 0);
  EXPECT_EQ(untraced.counters.shed_horizon, traced.counters.shed_horizon);
  EXPECT_EQ(untraced.counters.shed_deadline, traced.counters.shed_deadline);
  EXPECT_EQ(untraced.completed, traced.completed);
  std::int64_t horizon_events = 0;
  for (const TraceEvent& event : trace.events()) {
    if (event.type == TraceEventType::kShed && event.aux == 1) {
      horizon_events += 1;
    }
  }
  EXPECT_EQ(horizon_events, traced.counters.shed_horizon);
}

// --- Tenant-share resolution by id -------------------------------------------

TEST(TenantShareTest, SharesResolveByExplicitTenantId) {
  AdmissionConfig config;
  TenantShare a;
  a.tenant_id = 7;
  a.weight = 3.0;
  TenantShare b;
  b.tenant_id = 2;
  b.weight = 1.5;
  config.tenants = {a, b};
  config.validate();
  EXPECT_EQ(config.share_for(7).weight, 3.0);
  EXPECT_EQ(config.share_for(2).weight, 1.5);
  // Un-named tenants fall back to the default share (weight 1, no cap).
  EXPECT_EQ(config.share_for(0).weight, 1.0);
}

TEST(TenantShareTest, DefaultEntriesBindToTheirIndex) {
  AdmissionConfig config;
  TenantShare first;
  first.weight = 3.0;  // tenant_id left at -1: binds to index 0
  TenantShare second;
  second.weight = 1.0;
  config.tenants = {first, second};
  config.validate();
  EXPECT_EQ(config.share_for(0).weight, 3.0);
  EXPECT_EQ(config.share_for(1).weight, 1.0);
}

TEST(TenantShareTest, DuplicateResolvedIdsAreRejected) {
  AdmissionConfig config;
  TenantShare a;
  a.tenant_id = 1;  // explicit id 1...
  TenantShare b;    // ...collides with index-bound entry 1
  config.tenants = {a, b};
  EXPECT_THROW(config.validate(), ConfigError);
}

TEST(TenantShareTest, MetricsRollupUsesResolvedWeights) {
  // Shares listed in REVERSE tenant order via explicit ids: the fairness
  // rollup must attach weight 3 to tenant 0 — resolving by the id the
  // config names, not by vector position (the old positional bug).
  const std::vector<Request> requests = generate_requests(
      multi_tenant_pressure_stream(/*seed=*/42, /*num_requests=*/300,
                                   /*arrival_rate=*/50.0,
                                   /*num_tenants=*/2));
  ServingScenario scenario = multi_tenant_fairness_scenario(
      ir::DType::kInt8, "wfq", /*weights=*/{1.0, 3.0},
      kMultiTenantFairnessHorizon);
  ASSERT_EQ(scenario.scheduler.admission.tenants.size(), 2u);
  scenario.scheduler.admission.tenants[0].tenant_id = 1;  // weight 1 -> t1
  scenario.scheduler.admission.tenants[1].tenant_id = 0;  // weight 3 -> t0
  const ServingMetrics metrics = run_serving(scenario, requests);
  ASSERT_EQ(metrics.tenants.size(), 2u);
  EXPECT_EQ(metrics.tenants[0].tenant_id, 0);
  EXPECT_EQ(metrics.tenants[0].weight, 3.0);
  EXPECT_EQ(metrics.tenants[1].tenant_id, 1);
  EXPECT_EQ(metrics.tenants[1].weight, 1.0);
  // And WFQ actually enforced the 3:1 share for tenant 0.
  EXPECT_GT(metrics.tenants[0].goodput_tokens_per_second,
            1.5 * metrics.tenants[1].goodput_tokens_per_second);
}

// --- Diurnal and merged traffic ----------------------------------------------

TEST(DiurnalStreamTest, ArrivalRateFollowsTheSinusoid) {
  RequestStreamConfig stream = multi_tenant_pressure_stream(
      /*seed=*/42, /*num_requests=*/3000, /*arrival_rate=*/10.0,
      /*num_tenants=*/1);
  stream.process = ArrivalProcess::kDiurnal;
  stream.diurnal_period_s = 40.0;
  stream.diurnal_amplitude = 0.9;
  const std::vector<Request> requests = generate_requests(stream);
  // Phase 0: sin is positive over the first half of each period, so the
  // "day" half-cycles must collect well over half the arrivals.
  std::int64_t day = 0, night = 0;
  for (const Request& request : requests) {
    const double t = std::fmod(request.arrival_time, 40.0);
    (t < 20.0 ? day : night) += 1;
  }
  EXPECT_GT(day, 2 * night);
  // Sorted, dense ids — the generate_requests contract holds for kDiurnal.
  for (std::size_t i = 0; i < requests.size(); ++i) {
    EXPECT_EQ(requests[i].id, static_cast<std::int64_t>(i));
    if (i > 0) {
      EXPECT_GE(requests[i].arrival_time, requests[i - 1].arrival_time);
    }
  }
}

TEST(DiurnalStreamTest, DiurnalDrawsLeavePoissonStreamsUntouched) {
  // The thinning rng draws happen only on the kDiurnal path: a Poisson
  // stream generated before and after flipping an unrelated config copy
  // to kDiurnal stays bit-identical (same seed, same draws).
  const RequestStreamConfig poisson = multi_tenant_pressure_stream(
      /*seed=*/42, /*num_requests=*/100, /*arrival_rate=*/10.0,
      /*num_tenants=*/1);
  const std::vector<Request> a = generate_requests(poisson);
  const std::vector<Request> b = generate_requests(poisson);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].arrival_time, b[i].arrival_time);
    EXPECT_EQ(a[i].prompt_len, b[i].prompt_len);
  }
}

TEST(DiurnalStreamTest, TenantMixMergesSortedDenseAndBalanced) {
  const std::vector<Request> requests = diurnal_tenant_mix_requests(
      /*seed=*/42, /*requests_per_tenant=*/150, /*per_tenant_rate=*/5.0,
      /*num_tenants=*/3);
  ASSERT_EQ(requests.size(), 450u);
  std::int64_t per_tenant[3] = {0, 0, 0};
  for (std::size_t i = 0; i < requests.size(); ++i) {
    EXPECT_EQ(requests[i].id, static_cast<std::int64_t>(i));
    if (i > 0) {
      EXPECT_GE(requests[i].arrival_time, requests[i - 1].arrival_time);
    }
    ASSERT_GE(requests[i].tenant_id, 0);
    ASSERT_LT(requests[i].tenant_id, 3);
    per_tenant[requests[i].tenant_id] += 1;
  }
  EXPECT_EQ(per_tenant[0], 150);
  EXPECT_EQ(per_tenant[1], 150);
  EXPECT_EQ(per_tenant[2], 150);
}

TEST(FlashCrowdStreamTest, BurstsCompressInterArrivals) {
  const std::vector<Request> requests = generate_requests(
      flash_crowd_stream(/*seed=*/42, /*num_requests=*/2000,
                         /*arrival_rate=*/10.0));
  // A 16x burst rate must produce gaps far below the 0.1 s mean; a pure
  // Poisson stream at the same mean rate almost never does at this count.
  std::int64_t tight_gaps = 0;
  for (std::size_t i = 1; i < requests.size(); ++i) {
    if (requests[i].arrival_time - requests[i - 1].arrival_time < 0.1 / 16.0) {
      tight_gaps += 1;
    }
  }
  EXPECT_GT(tight_gaps, 100);
}

// --- The canonical SLO frontier ----------------------------------------------

TEST(SloFrontierTest, EdfStrictlyBeatsFifoAtTheHighestSweptRate) {
  models::TransformerConfig model = models::llama2_7b();
  model.dtype = ir::DType::kInt4;  // the bench model: this test pins the
                                   // ordering the schema-v7 JSON reports
  const ServingSweep sweep = slo_frontier_sweep(model, /*seed=*/42);
  const std::vector<SweepCellResult> cells = run_serving_sweep(sweep);
  ASSERT_EQ(cells.size(), slo_frontier_rates().size() * 2);

  // Grid order is rate-major with admission {fifo, edf} innermost.
  const SweepCellResult& top_fifo = cells[cells.size() - 2];
  const SweepCellResult& top_edf = cells[cells.size() - 1];
  ASSERT_EQ(top_fifo.admission, "fifo");
  ASSERT_EQ(top_edf.admission, "edf");
  ASSERT_EQ(top_fifo.arrival_rate, slo_frontier_rates().back());

  EXPECT_GT(top_edf.metrics.slo_attainment, top_fifo.metrics.slo_attainment);
  EXPECT_GT(top_edf.metrics.slo_goodput_tokens_per_second,
            top_fifo.metrics.slo_goodput_tokens_per_second);
  EXPECT_GT(top_edf.metrics.counters.shed_deadline, 0);
  EXPECT_EQ(top_fifo.metrics.counters.shed_deadline, 0);
  for (const SweepCellResult& cell : cells) {
    EXPECT_GE(cell.metrics.slo_attainment, 0.0);
    EXPECT_LE(cell.metrics.slo_attainment, 1.0);
    EXPECT_LE(cell.metrics.completed + cell.metrics.counters.total_shed(),
              kSloFrontierRequests);
  }
}

}  // namespace
}  // namespace cimtpu::serving
