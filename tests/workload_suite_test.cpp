// Workload-suite registry tests plus a configuration-sweep integration
// pass: every registered paper workload must run on every Table IV design
// point with consistent orderings.

#include <gtest/gtest.h>

#include "models/workload_suite.h"
#include "sim/workload_runner.h"

namespace cimtpu::models {
namespace {

TEST(WorkloadSuiteTest, RegistryCoversPaperPanels) {
  const auto ids = workload_ids();
  for (const char* expected :
       {"fig6-llm-prefill", "fig6-llm-decode", "fig6-dit-block", "fig7-llm",
        "fig7-dit", "fig2-llama", "fig2-dit"}) {
    EXPECT_NE(std::find(ids.begin(), ids.end(), expected), ids.end())
        << expected;
  }
}

TEST(WorkloadSuiteTest, LookupRoundTrips) {
  for (const std::string& id : workload_ids()) {
    EXPECT_EQ(workload_by_id(id).id, id);
  }
  EXPECT_THROW(workload_by_id("fig9-nothing"), ConfigError);
}

TEST(WorkloadSuiteTest, Fig6PointsMatchPaperText) {
  const WorkloadCase decode = workload_by_id("fig6-llm-decode");
  EXPECT_EQ(decode.model.name, "gpt3-30b");
  EXPECT_EQ(decode.batch, 8);
  EXPECT_EQ(decode.kv_len, 1280);  // 1024-token prompt + 256th output token
  const WorkloadCase dit = workload_by_id("fig6-dit-block");
  EXPECT_EQ(dit.geometry.tokens(), 1024);  // 512x512
}

TEST(WorkloadSuiteTest, KindNames) {
  EXPECT_EQ(workload_kind_name(WorkloadKind::kLlmInference), "llm-inference");
  EXPECT_EQ(workload_kind_name(WorkloadKind::kDitBlock), "dit-block");
}

// --- Design-point sweep -------------------------------------------------------------

struct SweepParam {
  int mxu_count;
  int grid_rows;
  int grid_cols;
};

class DesignSweepTest : public ::testing::TestWithParam<SweepParam> {};

TEST_P(DesignSweepTest, Fig6WorkloadsRunOnEveryDesignPoint) {
  const SweepParam& p = GetParam();
  arch::TpuChip chip(
      arch::cim_tpu(p.mxu_count, p.grid_rows, p.grid_cols));
  sim::Simulator simulator(chip);

  const WorkloadCase prefill = workload_by_id("fig6-llm-prefill");
  const auto prefill_result = sim::run_prefill_layer(
      simulator, prefill.model, prefill.batch, prefill.input_len);
  EXPECT_GT(prefill_result.latency, 0);
  EXPECT_GT(prefill_result.mxu_energy(), 0);

  const WorkloadCase decode = workload_by_id("fig6-llm-decode");
  const auto decode_result = sim::run_decode_layer(
      simulator, decode.model, decode.batch, decode.kv_len);
  EXPECT_GT(decode_result.latency, 0);

  const WorkloadCase dit = workload_by_id("fig6-dit-block");
  const auto dit_result =
      sim::run_dit_block(simulator, dit.model, dit.geometry, dit.batch);
  EXPECT_GT(dit_result.latency, 0);

  // Decode is always memory-bound enough to be faster per-token than the
  // prefill layer is in total (sanity relation that holds at every point).
  EXPECT_LT(decode_result.latency, prefill_result.latency);
}

TEST_P(DesignSweepTest, PrefillLatencyDecreasesWithPeak) {
  const SweepParam& p = GetParam();
  arch::TpuChip chip(arch::cim_tpu(p.mxu_count, p.grid_rows, p.grid_cols));
  arch::TpuChip doubled(
      arch::cim_tpu(2 * p.mxu_count, p.grid_rows, p.grid_cols));
  sim::Simulator sim_a(chip), sim_b(doubled);
  const WorkloadCase prefill = workload_by_id("fig6-llm-prefill");
  const auto a = sim::run_prefill_layer(sim_a, prefill.model, prefill.batch,
                                        prefill.input_len);
  const auto b = sim::run_prefill_layer(sim_b, prefill.model, prefill.batch,
                                        prefill.input_len);
  EXPECT_LT(b.latency, a.latency);  // compute-bound: more peak helps
}

TEST_P(DesignSweepTest, DecodeEnergyGrowsWithCoreCount) {
  const SweepParam& p = GetParam();
  arch::TpuChip chip(arch::cim_tpu(p.mxu_count, p.grid_rows, p.grid_cols));
  arch::TpuChip doubled(
      arch::cim_tpu(2 * p.mxu_count, p.grid_rows, p.grid_cols));
  sim::Simulator sim_a(chip), sim_b(doubled);
  const WorkloadCase decode = workload_by_id("fig6-llm-decode");
  const auto a = sim::run_decode_layer(sim_a, decode.model, decode.batch,
                                       decode.kv_len);
  const auto b = sim::run_decode_layer(sim_b, decode.model, decode.batch,
                                       decode.kv_len);
  // Memory-bound decode: doubling the array mostly adds idle/leak energy.
  EXPECT_GT(b.mxu_energy(), a.mxu_energy());
}

INSTANTIATE_TEST_SUITE_P(
    TableIV, DesignSweepTest,
    ::testing::Values(SweepParam{2, 8, 8}, SweepParam{2, 16, 8},
                      SweepParam{2, 16, 16}, SweepParam{4, 8, 8},
                      SweepParam{4, 16, 8}, SweepParam{4, 16, 16}),
    [](const ::testing::TestParamInfo<SweepParam>& info) {
      return std::to_string(info.param.mxu_count) + "x" +
             std::to_string(info.param.grid_rows) + "x" +
             std::to_string(info.param.grid_cols);
    });

}  // namespace
}  // namespace cimtpu::models
