#include "common/status.h"

#include <gtest/gtest.h>

namespace cimtpu {
namespace {

TEST(StatusTest, CheckPassesOnTrue) {
  EXPECT_NO_THROW(CIMTPU_CHECK(1 + 1 == 2));
}

TEST(StatusTest, CheckThrowsInternalErrorOnFalse) {
  EXPECT_THROW(CIMTPU_CHECK(false), InternalError);
}

TEST(StatusTest, CheckMessageContainsExpressionAndLocation) {
  try {
    CIMTPU_CHECK(2 > 3);
    FAIL() << "expected throw";
  } catch (const InternalError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("2 > 3"), std::string::npos);
    EXPECT_NE(what.find("status_test"), std::string::npos);
  }
}

TEST(StatusTest, CheckMsgStreamsValues) {
  const int x = 42;
  try {
    CIMTPU_CHECK_MSG(x < 0, "x was " << x);
    FAIL() << "expected throw";
  } catch (const InternalError& e) {
    EXPECT_NE(std::string(e.what()).find("x was 42"), std::string::npos);
  }
}

TEST(StatusTest, ConfigCheckThrowsConfigError) {
  EXPECT_THROW(CIMTPU_CONFIG_CHECK(false, "bad config"), ConfigError);
  EXPECT_NO_THROW(CIMTPU_CONFIG_CHECK(true, "fine"));
}

TEST(StatusTest, ConfigErrorMessagePreserved) {
  try {
    CIMTPU_CONFIG_CHECK(false, "mxu count " << 0 << " invalid");
    FAIL() << "expected throw";
  } catch (const ConfigError& e) {
    EXPECT_NE(std::string(e.what()).find("mxu count 0 invalid"),
              std::string::npos);
  }
}

TEST(StatusTest, ErrorHierarchy) {
  // All cimtpu errors are catchable as Error and as std::runtime_error.
  EXPECT_THROW(throw ConfigError("x"), Error);
  EXPECT_THROW(throw InternalError("x"), Error);
  EXPECT_THROW(throw UnsupportedError("x"), Error);
  EXPECT_THROW(throw Error("x"), std::runtime_error);
}

TEST(StatusTest, DcheckActiveMatchesBuildType) {
#ifdef NDEBUG
  EXPECT_NO_THROW(CIMTPU_DCHECK(false));
#else
  EXPECT_THROW(CIMTPU_DCHECK(false), InternalError);
#endif
}

}  // namespace
}  // namespace cimtpu
