// Observability-layer tests: the shared percentile/histogram math, the
// metrics registry and time-series sampler, and — most importantly — the
// tracing CONTRACT: enabling event tracing must leave every simulated
// metric bit-identical (checked across all six golden-pinned policy x
// chunk combinations), traces must reconcile exactly against
// ServingMetrics (TTFT/e2e recomputed purely from trace events), trace
// files must be byte-identical whatever the sweep thread count, and a
// preempted request's event sequence must follow the lifecycle grammar.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <limits>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "common/status.h"
#include "serving/obs_registry.h"
#include "serving/stats.h"
#include "serving/sweep.h"
#include "serving/trace.h"
#include "serving/traffic_profiles.h"

namespace cimtpu::serving {
namespace {

// --- Shared percentile math (satellite: dedup with unit tests) ---------------

TEST(Percentile, EmptyReturnsZero) {
  EXPECT_EQ(percentile({}, 50.0), 0.0);
  EXPECT_EQ(percentile({}, 0.0), 0.0);
  EXPECT_EQ(percentile({}, 100.0), 0.0);
}

TEST(Percentile, SingleElement) {
  EXPECT_EQ(percentile({7.5}, 0.0), 7.5);
  EXPECT_EQ(percentile({7.5}, 50.0), 7.5);
  EXPECT_EQ(percentile({7.5}, 100.0), 7.5);
}

TEST(Percentile, EdgesAreMinAndMax) {
  const std::vector<double> values = {3.0, 1.0, 4.0, 1.5, 9.0};
  EXPECT_EQ(percentile(values, 0.0), 1.0);
  EXPECT_EQ(percentile(values, 100.0), 9.0);
}

TEST(Percentile, LinearInterpolationMatchesNumpyConvention) {
  // numpy.percentile([1, 2, 3, 4], 50) == 2.5; 25 -> 1.75.
  EXPECT_DOUBLE_EQ(percentile({1.0, 2.0, 3.0, 4.0}, 50.0), 2.5);
  EXPECT_DOUBLE_EQ(percentile({1.0, 2.0, 3.0, 4.0}, 25.0), 1.75);
}

TEST(Percentile, SortedFormAgreesWithSortingForm) {
  const std::vector<double> sorted = {0.5, 1.0, 2.0, 8.0};
  for (double p : {0.0, 10.0, 50.0, 90.0, 100.0}) {
    EXPECT_EQ(percentile_sorted(sorted, p), percentile(sorted, p));
  }
}

TEST(ExponentialBounds, GeometricAndStrictlyAscending) {
  const std::vector<double> bounds = exponential_bounds(1e-3, 2.0, 5);
  ASSERT_EQ(bounds.size(), 5u);
  EXPECT_DOUBLE_EQ(bounds[0], 1e-3);
  for (std::size_t i = 1; i < bounds.size(); ++i) {
    EXPECT_DOUBLE_EQ(bounds[i], bounds[i - 1] * 2.0);
    EXPECT_GT(bounds[i], bounds[i - 1]);
  }
}

// --- Fixed-bucket histogram --------------------------------------------------

TEST(FixedBucketHistogram, EmptyHistogramIsAllZero) {
  const FixedBucketHistogram histogram(exponential_bounds(1.0, 2.0, 4));
  EXPECT_EQ(histogram.count(), 0);
  EXPECT_EQ(histogram.sum(), 0.0);
  EXPECT_EQ(histogram.mean(), 0.0);
  EXPECT_EQ(histogram.min(), 0.0);
  EXPECT_EQ(histogram.max(), 0.0);
  EXPECT_EQ(histogram.quantile(50.0), 0.0);
}

TEST(FixedBucketHistogram, CountsSumAndOverflowBucket) {
  FixedBucketHistogram histogram({1.0, 2.0, 4.0});
  ASSERT_EQ(histogram.bucket_counts().size(), 4u);  // 3 bounds + overflow
  histogram.observe(0.5);   // bucket 0 (<= 1)
  histogram.observe(1.5);   // bucket 1 (<= 2)
  histogram.observe(3.0);   // bucket 2 (<= 4)
  histogram.observe(100.0); // overflow
  EXPECT_EQ(histogram.count(), 4);
  EXPECT_DOUBLE_EQ(histogram.sum(), 105.0);
  EXPECT_EQ(histogram.min(), 0.5);
  EXPECT_EQ(histogram.max(), 100.0);
  EXPECT_EQ(histogram.bucket_counts()[0], 1);
  EXPECT_EQ(histogram.bucket_counts()[1], 1);
  EXPECT_EQ(histogram.bucket_counts()[2], 1);
  EXPECT_EQ(histogram.bucket_counts()[3], 1);
}

TEST(FixedBucketHistogram, QuantileEdgesAreExactMinMax) {
  FixedBucketHistogram histogram({1.0, 10.0, 100.0});
  histogram.observe(0.25);
  histogram.observe(5.0);
  histogram.observe(42.0);
  EXPECT_EQ(histogram.quantile(0.0), 0.25);
  EXPECT_EQ(histogram.quantile(100.0), 42.0);
  // Interior quantiles stay inside the observed range.
  const double q50 = histogram.quantile(50.0);
  EXPECT_GE(q50, 0.25);
  EXPECT_LE(q50, 42.0);
}

TEST(FixedBucketHistogram, SingleObservation) {
  FixedBucketHistogram histogram({1.0, 2.0});
  histogram.observe(1.5);
  EXPECT_EQ(histogram.quantile(0.0), 1.5);
  EXPECT_EQ(histogram.quantile(50.0), 1.5);
  EXPECT_EQ(histogram.quantile(100.0), 1.5);
}

TEST(FixedBucketHistogram, RejectsNonAscendingBounds) {
  EXPECT_THROW(FixedBucketHistogram({2.0, 1.0}), ConfigError);
  EXPECT_THROW(FixedBucketHistogram({1.0, 1.0}), ConfigError);
}

// --- Metrics registry --------------------------------------------------------

TEST(MetricsRegistry, CountersGaugesHistograms) {
  MetricsRegistry registry;
  registry.counter("b.count") += 3;
  registry.counter("a.count") = 7;
  registry.gauge("z.load") = 0.5;
  registry.histogram("lat", {1.0, 2.0}).observe(1.5);
  EXPECT_EQ(registry.counters().at("a.count"), 7);
  EXPECT_EQ(registry.counters().at("b.count"), 3);
  EXPECT_EQ(registry.gauges().at("z.load"), 0.5);
  EXPECT_EQ(registry.histograms().at("lat").count(), 1);
  // First registration wins: later bounds are ignored, counts persist.
  registry.histogram("lat", {99.0}).observe(1.6);
  EXPECT_EQ(registry.histograms().at("lat").count(), 2);
  EXPECT_EQ(registry.histograms().at("lat").upper_bounds().size(), 2u);
}

TEST(MetricsRegistry, ToJsonIsDeterministicAndOrdered) {
  MetricsRegistry registry;
  registry.counter("zz") = 1;
  registry.counter("aa") = 2;
  registry.gauge("mid") = 1.25;
  registry.histogram("h", {1.0}).observe(0.5);
  const std::string json = registry.to_json();
  // Lexicographic key order regardless of insertion order.
  EXPECT_LT(json.find("\"aa\""), json.find("\"zz\""));
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  EXPECT_NE(json.find("\"bucket_counts\""), std::string::npos);
  // Identical registries -> identical bytes.
  MetricsRegistry other;
  other.histogram("h", {1.0}).observe(0.5);
  other.gauge("mid") = 1.25;
  other.counter("aa") = 2;
  other.counter("zz") = 1;
  EXPECT_EQ(json, other.to_json());
}

TEST(JsonDouble, RoundTripsAndSanitizes) {
  EXPECT_EQ(json_double(0.0), "0");
  EXPECT_EQ(std::stod(json_double(0.1)), 0.1);
  EXPECT_EQ(std::stod(json_double(1e300)), 1e300);
  EXPECT_EQ(json_double(std::numeric_limits<double>::infinity()), "0");
  EXPECT_EQ(json_double(std::numeric_limits<double>::quiet_NaN()), "0");
}

// --- Time-series sampler -----------------------------------------------------

TEST(TimeSeriesSampler, DisabledAtZeroInterval) {
  TimeSeriesSampler sampler(0);
  EXPECT_FALSE(sampler.enabled());
  EXPECT_FALSE(sampler.due(1e9));
}

TEST(TimeSeriesSampler, BurstAcrossIntervalsYieldsOneSample) {
  TimeSeriesSampler sampler(1.0);
  EXPECT_TRUE(sampler.due(0.0));  // first sample at the first step
  TimeSample sample;
  sample.time = 5.5;  // one step jumped 5 intervals
  sampler.record(sample);
  EXPECT_FALSE(sampler.due(5.9));
  EXPECT_TRUE(sampler.due(6.0));
  EXPECT_EQ(sampler.samples().size(), 1u);
}

// --- Tracing contract: bit-identical metrics on/off --------------------------

ServingScenario golden_scenario(EvictionPolicy policy, std::int64_t chunk) {
  return llama7b_pressured_scenario(1, ir::DType::kInt4, policy, chunk,
                                    /*kv_budget_tokens=*/2000);
}

RequestStreamConfig golden_stream() {
  RequestStreamConfig stream;
  stream.seed = 42;
  stream.num_requests = 120;
  stream.arrival_rate = 50.0;
  stream.prompt.kind = LengthDistribution::kFixed;
  stream.prompt.mean = 256;
  stream.output.kind = LengthDistribution::kUniform;
  stream.output.min_len = 64;
  stream.output.max_len = 256;
  stream.priority_classes = 3;
  return stream;
}

/// EXPECT_EQ on every simulated field (doubles included: the claim is
/// bit-identity, not closeness).  Wall-clock fields excluded by design.
void expect_identical_metrics(const ServingMetrics& a,
                              const ServingMetrics& b) {
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.generated_tokens, b.generated_tokens);
  EXPECT_EQ(a.total_steps, b.total_steps);
  EXPECT_EQ(a.prefill_steps, b.prefill_steps);
  EXPECT_EQ(a.decode_steps, b.decode_steps);
  EXPECT_EQ(a.preemptions, b.preemptions);
  EXPECT_EQ(a.counters.preemptions_recompute, b.counters.preemptions_recompute);
  EXPECT_EQ(a.counters.preemptions_swap, b.counters.preemptions_swap);
  EXPECT_EQ(a.counters.swap_ins, b.counters.swap_ins);
  EXPECT_EQ(a.counters.swap_out_bytes, b.counters.swap_out_bytes);
  EXPECT_EQ(a.counters.chunked_prefill_steps, b.counters.chunked_prefill_steps);
  EXPECT_EQ(a.counters.prefix_hit_tokens, b.counters.prefix_hit_tokens);
  EXPECT_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.ttft.mean, b.ttft.mean);
  EXPECT_EQ(a.ttft.p50, b.ttft.p50);
  EXPECT_EQ(a.ttft.p99, b.ttft.p99);
  EXPECT_EQ(a.tpot.p99, b.tpot.p99);
  EXPECT_EQ(a.e2e.mean, b.e2e.mean);
  EXPECT_EQ(a.e2e.p99, b.e2e.p99);
  EXPECT_EQ(a.goodput_tokens_per_second, b.goodput_tokens_per_second);
  EXPECT_EQ(a.total_energy, b.total_energy);
  EXPECT_EQ(a.energy_per_token, b.energy_per_token);
  EXPECT_EQ(a.mxu_utilization, b.mxu_utilization);
  EXPECT_EQ(a.jain_fairness, b.jain_fairness);
  EXPECT_EQ(a.prefix_hit_rate, b.prefix_hit_rate);
  EXPECT_EQ(a.kv_internal_fragmentation, b.kv_internal_fragmentation);
  EXPECT_EQ(a.cost_cache_hits, b.cost_cache_hits);
  EXPECT_EQ(a.cost_cache_misses, b.cost_cache_misses);
  // The end-of-run registry is fed only by simulated state, so its whole
  // JSON export must match byte for byte too.
  EXPECT_EQ(a.registry.to_json(), b.registry.to_json());
}

TEST(TracingContract, MetricsBitIdenticalOnAndOffAcrossGoldenGrid) {
  const std::vector<Request> requests = generate_requests(golden_stream());
  for (EvictionPolicy policy :
       {EvictionPolicy::kPreemptNewest, EvictionPolicy::kSwapToHost,
        EvictionPolicy::kPriorityVictim}) {
    for (std::int64_t chunk : {std::int64_t{0}, std::int64_t{512}}) {
      SCOPED_TRACE(std::string(eviction_policy_name(policy)) + " chunk=" +
                   std::to_string(chunk));
      const ServingMetrics off =
          run_serving(golden_scenario(policy, chunk), requests);
      ServingScenario traced = golden_scenario(policy, chunk);
      traced.trace.enabled = true;
      traced.trace.sample_interval = 0.25;
      ServingTrace trace;
      const ServingMetrics on =
          run_serving(traced, requests, nullptr, &trace);
      expect_identical_metrics(off, on);
      EXPECT_FALSE(trace.events().empty());
      EXPECT_FALSE(on.timeseries.empty());
      EXPECT_TRUE(off.timeseries.empty());
    }
  }
}

TEST(TracingContract, DisabledTraceRecordsNothing) {
  const std::vector<Request> requests = generate_requests(golden_stream());
  ServingScenario scenario =
      golden_scenario(EvictionPolicy::kPreemptNewest, 0);
  ServingTrace trace;
  const ServingMetrics metrics =
      run_serving(scenario, requests, nullptr, &trace);
  EXPECT_TRUE(trace.events().empty());
  EXPECT_TRUE(metrics.timeseries.empty());
}

TEST(TracingContract, SamplingWithoutEventTracing) {
  const std::vector<Request> requests = generate_requests(golden_stream());
  ServingScenario scenario =
      golden_scenario(EvictionPolicy::kPreemptNewest, 0);
  scenario.trace.sample_interval = 1.0;  // enabled stays false
  ServingTrace trace;
  const ServingMetrics metrics =
      run_serving(scenario, requests, nullptr, &trace);
  EXPECT_TRUE(trace.events().empty());
  ASSERT_FALSE(metrics.timeseries.empty());
  // Samples are monotone in time and step, and KV occupancy is sane.
  for (std::size_t i = 0; i < metrics.timeseries.size(); ++i) {
    const TimeSample& sample = metrics.timeseries[i];
    EXPECT_GE(sample.kv_occupied_blocks, sample.kv_referenced_blocks);
    EXPECT_LE(sample.kv_occupied_blocks, sample.kv_capacity_blocks);
    if (i > 0) {
      EXPECT_GT(sample.time, metrics.timeseries[i - 1].time);
      EXPECT_GE(sample.step, metrics.timeseries[i - 1].step);
    }
  }
}

// --- Trace content: lifecycle grammar of a preempted request ------------------

std::vector<TraceEventType> events_for_request(
    const std::vector<TraceEvent>& events, std::int64_t id) {
  std::vector<TraceEventType> sequence;
  for (const TraceEvent& event : events) {
    if (event.request_id == id) sequence.push_back(event.type);
  }
  return sequence;
}

TEST(TraceContent, PreemptedRequestFollowsLifecycleGrammar) {
  const std::vector<Request> requests = generate_requests(golden_stream());
  ServingScenario scenario =
      golden_scenario(EvictionPolicy::kPreemptNewest, 0);
  scenario.trace.enabled = true;
  ServingTrace trace;
  run_serving(scenario, requests, nullptr, &trace);

  std::int64_t victim = -1;
  for (const TraceEvent& event : trace.events()) {
    if (event.type == TraceEventType::kPreempt) {
      victim = event.request_id;
      break;
    }
  }
  ASSERT_GE(victim, 0) << "pressured run must preempt someone";

  const std::vector<TraceEventType> sequence =
      events_for_request(trace.events(), victim);
  ASSERT_GE(sequence.size(), 5u);
  // Exact sequence grammar for a recompute victim with whole-prompt
  // prefill: arrive, then per admission round one admit followed by one
  // prefill_chunk, decode_enter at prompt completion, first_token emitted
  // exactly once, preempt between rounds, finish last.
  EXPECT_EQ(sequence.front(), TraceEventType::kArrive);
  EXPECT_EQ(sequence[1], TraceEventType::kAdmit);
  EXPECT_EQ(sequence.back(), TraceEventType::kFinish);
  std::int64_t admits = 0, preempts = 0, chunks = 0, first_tokens = 0;
  for (std::size_t i = 0; i < sequence.size(); ++i) {
    switch (sequence[i]) {
      case TraceEventType::kAdmit:
        admits += 1;
        // Recompute re-queues the prompt: every admit is followed by a
        // prefill chunk before anything else happens to this request.
        ASSERT_LT(i + 1, sequence.size());
        EXPECT_EQ(sequence[i + 1], TraceEventType::kPrefillChunk);
        break;
      case TraceEventType::kPreempt:
        preempts += 1;
        break;
      case TraceEventType::kPrefillChunk:
        chunks += 1;
        break;
      case TraceEventType::kFirstToken:
        first_tokens += 1;
        break;
      default:
        break;
    }
  }
  EXPECT_EQ(admits, preempts + 1);  // every preemption re-admits once
  EXPECT_EQ(chunks, admits);        // chunk=0: one whole-prompt chunk each
  EXPECT_EQ(first_tokens, 1);       // TTFT is the FIRST emission only
  // Event times never go backwards within a request's lifecycle.
  Seconds last_time = -1;
  for (const TraceEvent& event : trace.events()) {
    if (event.request_id != victim) continue;
    EXPECT_GE(event.time, last_time);
    last_time = event.time;
  }
}

TEST(TraceContent, SwapVictimPairsSwapOutWithSwapIn) {
  const std::vector<Request> requests = generate_requests(golden_stream());
  ServingScenario scenario = golden_scenario(EvictionPolicy::kSwapToHost, 0);
  scenario.trace.enabled = true;
  ServingTrace trace;
  const ServingMetrics metrics =
      run_serving(scenario, requests, nullptr, &trace);
  ASSERT_GT(metrics.counters.preemptions_swap, 0);
  std::int64_t swap_outs = 0, swap_ins = 0;
  Bytes out_bytes = 0, in_bytes = 0;
  for (const TraceEvent& event : trace.events()) {
    if (event.type == TraceEventType::kSwapOut) {
      swap_outs += 1;
      out_bytes += event.bytes;
      EXPECT_GT(event.bytes, 0);
    } else if (event.type == TraceEventType::kSwapIn) {
      swap_ins += 1;
      in_bytes += event.bytes;
    }
  }
  // The trace IS the counter stream: totals must match exactly.
  EXPECT_EQ(swap_outs, metrics.counters.preemptions_swap);
  EXPECT_EQ(swap_ins, metrics.counters.swap_ins);
  EXPECT_EQ(out_bytes, metrics.counters.swap_out_bytes);
  EXPECT_EQ(in_bytes, metrics.counters.swap_in_bytes);
}

// --- Reconciliation: metrics recomputed from the trace alone ------------------

TEST(TraceContent, TimelinesReconcileExactlyWithMetrics) {
  const std::vector<Request> requests = generate_requests(golden_stream());
  ServingScenario scenario =
      golden_scenario(EvictionPolicy::kPriorityVictim, 512);
  scenario.trace.enabled = true;
  ServingTrace trace;
  const ServingMetrics metrics =
      run_serving(scenario, requests, nullptr, &trace);

  std::vector<double> ttft, e2e;
  std::int64_t completed = 0, generated = 0;
  for (const RequestTimeline& timeline :
       trace_request_timelines(trace.events())) {
    EXPECT_GE(timeline.arrival, 0);
    if (timeline.first_token >= 0) {
      ttft.push_back(timeline.first_token - timeline.arrival);
      EXPECT_GE(timeline.first_admit, timeline.arrival);
    }
    if (timeline.completion >= 0) {
      completed += 1;
      generated += timeline.generated_tokens;
      e2e.push_back(timeline.completion - timeline.arrival);
    }
  }
  // Request ids are assigned in arrival order, so the id-ordered timeline
  // vectors accumulate in the same order as the metrics rollup: the whole
  // summary — mean included — matches BIT FOR BIT, not approximately.
  const LatencySummary trace_ttft = summarize_latencies(ttft);
  const LatencySummary trace_e2e = summarize_latencies(e2e);
  EXPECT_EQ(completed, metrics.completed);
  EXPECT_EQ(generated, metrics.generated_tokens);
  EXPECT_EQ(trace_ttft.count, metrics.ttft.count);
  EXPECT_EQ(trace_ttft.mean, metrics.ttft.mean);
  EXPECT_EQ(trace_ttft.p50, metrics.ttft.p50);
  EXPECT_EQ(trace_ttft.p95, metrics.ttft.p95);
  EXPECT_EQ(trace_ttft.p99, metrics.ttft.p99);
  EXPECT_EQ(trace_ttft.max, metrics.ttft.max);
  EXPECT_EQ(trace_e2e.count, metrics.e2e.count);
  EXPECT_EQ(trace_e2e.mean, metrics.e2e.mean);
  EXPECT_EQ(trace_e2e.p50, metrics.e2e.p50);
  EXPECT_EQ(trace_e2e.p99, metrics.e2e.p99);
  EXPECT_EQ(trace_e2e.max, metrics.e2e.max);
}

// --- Registry publication ----------------------------------------------------

TEST(RegistryPublication, SubsystemsPublishIntoRunRegistry) {
  const std::vector<Request> requests = generate_requests(golden_stream());
  const ServingMetrics metrics =
      run_serving(golden_scenario(EvictionPolicy::kSwapToHost, 512), requests);
  const auto& counters = metrics.registry.counters();
  // Scheduler counters mirror ServingCounters exactly.
  EXPECT_EQ(counters.at("scheduler.preemptions_swap"),
            metrics.counters.preemptions_swap);
  EXPECT_EQ(counters.at("scheduler.chunked_prefill_steps"),
            metrics.counters.chunked_prefill_steps);
  // Cost-cache stats (satellite: surfaced per run for the first time).
  EXPECT_EQ(counters.at("cost_cache.hits"), metrics.cost_cache_hits);
  EXPECT_EQ(counters.at("cost_cache.misses"), metrics.cost_cache_misses);
  EXPECT_EQ(counters.at("cost_cache.entries"),
            static_cast<std::int64_t>(metrics.cost_cache_entries));
  EXPECT_GT(metrics.cost_cache_occupancy, 0.0);
  EXPECT_LE(metrics.cost_cache_occupancy, 1.0);
  EXPECT_EQ(metrics.registry.gauges().at("cost_cache.occupancy"),
            metrics.cost_cache_occupancy);
  // KV manager and engine instruments exist and are coherent.
  EXPECT_GT(counters.at("kv.capacity_blocks"), 0);
  EXPECT_GE(counters.at("kv.blocks_allocated_total"), 0);
  EXPECT_EQ(counters.at("engine.total_steps"), metrics.total_steps);
  const FixedBucketHistogram& latency =
      metrics.registry.histograms().at("engine.step_latency_s");
  EXPECT_EQ(latency.count(), metrics.total_steps);
}

// --- Sweep integration: byte-identical trace files across thread counts ------

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

TEST(SweepTracing, TraceFilesByteIdenticalAcrossThreadCounts) {
  ServingSweep sweep;
  sweep.arrival_rates = {50.0};
  sweep.models = {golden_scenario(EvictionPolicy::kPreemptNewest, 0).model};
  sweep.chip_counts = {1};
  sweep.policies = {EvictionPolicy::kPreemptNewest,
                    EvictionPolicy::kSwapToHost};
  sweep.base = golden_scenario(EvictionPolicy::kPreemptNewest, 0);
  sweep.base.trace.enabled = true;
  sweep.base.trace.sample_interval = 1.0;
  sweep.base.trace.write_jsonl = true;
  sweep.stream = golden_stream();

  std::vector<std::string> names;
  std::vector<std::string> serial_bytes;
  for (int threads : {1, 2}) {
    sweep.base.trace.dir =
        "obs_test_traces_t" + std::to_string(threads);
    SweepOptions options;
    options.threads = threads;
    const std::vector<SweepCellResult> cells =
        run_serving_sweep(sweep, options);
    ASSERT_EQ(cells.size(), 2u);
    if (threads == 1) {
      // run_serving_sweep derives one sanitized label per cell.
      for (const SweepCellResult& cell : cells) {
        std::string label = "serving." + sanitize_trace_label(
            "rate=50 model=" + cell.model + "/" +
            ir::dtype_name(cell.dtype) + " chips=1 policy=" +
            eviction_policy_name(cell.policy) +
            " admission=fifo block=" +
            std::to_string(cell.kv_block_tokens) + " prefix_cache=" +
            (cell.prefix_caching ? "on" : "off"));
        names.push_back(label + ".trace.json");
        names.push_back(label + ".jsonl");
      }
      for (const std::string& name : names) {
        serial_bytes.push_back(read_file(sweep.base.trace.dir + "/" + name));
        EXPECT_FALSE(serial_bytes.back().empty());
      }
    } else {
      for (std::size_t i = 0; i < names.size(); ++i) {
        EXPECT_EQ(read_file(sweep.base.trace.dir + "/" + names[i]),
                  serial_bytes[i])
            << names[i] << " differs between thread counts";
      }
    }
  }
  // Perfetto structural sanity on one of the serial files.
  ASSERT_FALSE(serial_bytes.empty());
  const std::string& perfetto = serial_bytes[0];
  EXPECT_EQ(perfetto.rfind("{\"displayTimeUnit\":\"ms\"", 0), 0u);
  EXPECT_NE(perfetto.find("\"process_name\""), std::string::npos);
  EXPECT_NE(perfetto.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(perfetto.find("\"ph\":\"C\""), std::string::npos);
}

TEST(SweepTracing, ForceTraceOffKeepsMetricsAndSkipsFiles) {
  const std::vector<Request> requests = generate_requests(golden_stream());
  ServingScenario traced = golden_scenario(EvictionPolicy::kPreemptNewest, 0);
  traced.trace.enabled = true;
  traced.trace.sample_interval = 1.0;
  traced.trace.dir = "obs_test_traces_forced_off";
  traced.trace.label = "should_not_exist";
  SweepPoint point;
  point.label = "forced-off";
  point.scenario = traced;
  point.requests = &requests;

  SweepOptions options;
  options.threads = 1;
  options.force_trace_off = true;
  const std::vector<ServingMetrics> forced = run_sweep({point}, options);
  ASSERT_EQ(forced.size(), 1u);
  EXPECT_TRUE(forced[0].timeseries.empty());
  std::ifstream file(
      "obs_test_traces_forced_off/should_not_exist.trace.json");
  EXPECT_FALSE(file.good()) << "force_trace_off must suppress file output";
  // And the metrics equal an untraced direct run, bit for bit.
  ServingScenario off = traced;
  off.trace = TraceConfig{};
  expect_identical_metrics(run_serving(off, requests), forced[0]);
}

}  // namespace
}  // namespace cimtpu::serving
