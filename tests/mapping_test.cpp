// Mapping engine tests: mapspace enumeration, optimal-candidate selection,
// and memory streaming plans.

#include <gtest/gtest.h>

#include <algorithm>

#include "cim/cim_mxu.h"
#include "mapping/mapper.h"
#include "systolic/systolic_mxu.h"
#include "tech/technology.h"

namespace cimtpu::mapping {
namespace {

class MapperTest : public ::testing::Test {
 protected:
  MapperTest()
      : energy_(tech::calibration_node()),
        area_(tech::calibration_node()),
        mxu_(systolic::SystolicMxuSpec{128, 128}, energy_, area_),
        mapper_(mxu_, /*unit_count=*/4) {}

  tech::EnergyModel energy_;
  tech::AreaModel area_;
  systolic::SystolicMxu mxu_;
  Mapper mapper_;
};

TEST_F(MapperTest, EnumeratesAllApplicableStrategies) {
  const ir::Op op = ir::make_attention_gemm("a", "A", 448, 16, 128, 1280,
                                            ir::DType::kInt8,
                                            ir::Residency::kCmem);
  const auto candidates = mapper_.enumerate(op);
  std::vector<std::string> names;
  for (const auto& c : candidates) names.push_back(c.strategy);
  EXPECT_NE(std::find(names.begin(), names.end(), "instance-split"),
            names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "n-split"), names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "m-split"), names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "single-unit"), names.end());
}

TEST_F(MapperTest, BestNeverWorseThanSingleUnit) {
  for (const ir::Op& op :
       {ir::make_weight_gemm("g1", "G", 8192, 7168, 7168, ir::DType::kInt8),
        ir::make_weight_gemm("g2", "G", 8, 7168, 21504, ir::DType::kInt8),
        ir::make_attention_gemm("a", "A", 448, 1, 128, 1280,
                                ir::DType::kInt8, ir::Residency::kCmem)}) {
    const auto candidates = mapper_.enumerate(op);
    const GemmMapping best = mapper_.best_mapping(op);
    for (const auto& c : candidates) {
      EXPECT_LE(best.busy_cycles, c.busy_cycles) << op.name << " " << c.strategy;
    }
  }
}

TEST_F(MapperTest, InstanceSplitWinsForManyInstances) {
  // 448 attention instances over 4 units: embarrassingly parallel.
  const ir::Op op = ir::make_attention_gemm("a", "A", 448, 1, 128, 1280,
                                            ir::DType::kInt8,
                                            ir::Residency::kCmem);
  const GemmMapping best = mapper_.best_mapping(op);
  EXPECT_EQ(best.strategy, "instance-split");
  EXPECT_EQ(best.units_used, 4);
  EXPECT_EQ(best.per_unit.instances, 112);
}

TEST_F(MapperTest, MultiUnitSpeedsUpBigGemm) {
  const ir::Op op =
      ir::make_weight_gemm("g", "G", 8192, 7168, 7168, ir::DType::kInt8);
  const GemmMapping best = mapper_.best_mapping(op);
  Mapper single(mxu_, 1);
  const GemmMapping alone = single.best_mapping(op);
  EXPECT_LT(best.busy_cycles, alone.busy_cycles * 0.3);
  EXPECT_EQ(best.units_used, 4);
}

TEST_F(MapperTest, EnergySummedOverUnits) {
  const ir::Op op =
      ir::make_weight_gemm("g", "G", 1024, 128, 512, ir::DType::kInt8);
  for (const auto& c : mapper_.enumerate(op)) {
    EXPECT_NEAR(c.busy_energy, c.unit_cost.busy_energy * c.units_used,
                c.busy_energy * 1e-12);
  }
}

TEST_F(MapperTest, NonMatmulRejected) {
  const ir::Op op = ir::make_softmax("s", "A", 8, 8, ir::DType::kInt8);
  EXPECT_THROW(mapper_.best_mapping(op), InternalError);
}

TEST_F(MapperTest, UsefulMacsPreserved) {
  const ir::Op op =
      ir::make_weight_gemm("g", "G", 100, 200, 300, ir::DType::kInt8);
  EXPECT_DOUBLE_EQ(mapper_.best_mapping(op).useful_macs, 100.0 * 200 * 300);
}

TEST(MapperCimTest, CimMapperPrefersWideSplits) {
  tech::EnergyModel energy(tech::calibration_node());
  tech::AreaModel area(tech::calibration_node());
  cim::CimMxu cim(cim::CimMxuSpec{}, energy, area);
  Mapper mapper(cim, 4);
  const ir::Op op =
      ir::make_weight_gemm("g", "G", 8192, 1152, 1152, ir::DType::kInt8);
  const GemmMapping best = mapper.best_mapping(op);
  EXPECT_GT(best.units_used, 1);
  EXPECT_GT(best.unit_cost.utilization(), 0.1);
}

// --- Streaming plans ---------------------------------------------------------------

TEST(StreamingPlanTest, HbmWeightsCrossAllChannels) {
  const ir::Op op =
      ir::make_weight_gemm("g", "G", 8, 7168, 7168, ir::DType::kInt8);
  const StreamingPlan plan =
      Mapper::plan_streaming(op, mem::MemorySystemSpec{});
  EXPECT_DOUBLE_EQ(plan.hbm_bytes, op.stationary_bytes());
  EXPECT_GE(plan.cmem_bytes, op.stationary_bytes());
  EXPECT_GE(plan.vmem_bytes,
            op.stationary_bytes() + op.moving_bytes() + op.output_bytes());
}

TEST(StreamingPlanTest, CmemKvSkipsHbm) {
  const ir::Op op = ir::make_attention_gemm(
      "a", "A", 448, 1, 128, 1280, ir::DType::kInt8, ir::Residency::kCmem);
  const StreamingPlan plan =
      Mapper::plan_streaming(op, mem::MemorySystemSpec{});
  EXPECT_DOUBLE_EQ(plan.hbm_bytes, 0.0);
  EXPECT_GE(plan.cmem_bytes, op.stationary_bytes());
}

TEST(StreamingPlanTest, LargeVmemTensorsSpillToCmem) {
  // 58 MB of activations cannot be VMEM-resident (16 MiB).
  const ir::Op op =
      ir::make_weight_gemm("g", "G", 8192, 7168, 128, ir::DType::kInt8);
  const StreamingPlan plan =
      Mapper::plan_streaming(op, mem::MemorySystemSpec{});
  EXPECT_GE(plan.cmem_bytes, op.moving_bytes());
}

TEST(StreamingPlanTest, SmallTensorsStayInVmem) {
  const ir::Op op = ir::make_weight_gemm("g", "G", 8, 128, 128,
                                         ir::DType::kInt8);
  ir::Op vmem_op = op;
  vmem_op.stationary_residency = ir::Residency::kVmem;
  const StreamingPlan plan =
      Mapper::plan_streaming(vmem_op, mem::MemorySystemSpec{});
  EXPECT_DOUBLE_EQ(plan.hbm_bytes, 0.0);
  EXPECT_DOUBLE_EQ(plan.cmem_bytes, 0.0);
}

TEST(StreamingPlanTest, MemoryTimeIsSlowastChannel) {
  StreamingPlan plan;
  plan.hbm_bytes = 614e6;  // 1 ms at 614 GB/s
  plan.cmem_bytes = 1e6;
  plan.vmem_bytes = 1e6;
  EXPECT_NEAR(plan.memory_time(mem::MemorySystemSpec{}), 1e-3, 1e-9);
}

TEST(StreamingPlanTest, EmbeddingGathersFromHbm) {
  const ir::Op op =
      ir::make_embedding_lookup("e", "E", 8192, 7168, ir::DType::kInt8);
  const StreamingPlan plan =
      Mapper::plan_streaming(op, mem::MemorySystemSpec{});
  EXPECT_GT(plan.hbm_bytes, 0.0);
}

TEST(StreamingPlanTest, TilesGrowWithTraffic) {
  const ir::Op small =
      ir::make_weight_gemm("s", "G", 8, 128, 128, ir::DType::kInt8);
  const ir::Op large =
      ir::make_weight_gemm("l", "G", 8, 7168, 28672, ir::DType::kInt8);
  const auto spec = mem::MemorySystemSpec{};
  EXPECT_GT(Mapper::plan_streaming(large, spec).tiles,
            Mapper::plan_streaming(small, spec).tiles);
  EXPECT_GE(Mapper::plan_streaming(small, spec).tiles, 1.0);
}

TEST(MapperConstructionTest, RejectsZeroUnits) {
  tech::EnergyModel energy(tech::calibration_node());
  tech::AreaModel area(tech::calibration_node());
  systolic::SystolicMxu mxu(systolic::SystolicMxuSpec{}, energy, area);
  EXPECT_THROW(Mapper(mxu, 0), ConfigError);
}

}  // namespace
}  // namespace cimtpu::mapping
