// Step-arena allocation discipline: the serving hot loop (next_step +
// cost_step) must not touch the heap in steady-state decode.  This binary
// replaces GLOBAL operator new so every allocation anywhere in the
// process bumps serving::heap_allocation_count() — the assertions below
// are therefore about the real allocator, not a proxy.

#include <cstdlib>
#include <new>

#include <gtest/gtest.h>

#include "arch/tpu_config.h"
#include "models/model_zoo.h"
#include "serving/arena.h"
#include "serving/kv_cache_manager.h"
#include "serving/scheduler.h"
#include "serving/step_cost_cache.h"
#include "sim/simulator.h"

// --- Counting global allocator ----------------------------------------------
// Minimal replacement set: the sized/array forms forward here.  Counting
// happens on every path so a hot-loop allocation cannot hide behind a
// specialized overload.

namespace {
void* counted_alloc(std::size_t size) {
  cimtpu::serving::note_heap_allocation();
  if (void* p = std::malloc(size == 0 ? 1 : size)) return p;
  throw std::bad_alloc();
}
}  // namespace

void* operator new(std::size_t size) { return counted_alloc(size); }
void* operator new[](std::size_t size) { return counted_alloc(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace cimtpu::serving {
namespace {

std::int64_t allocations() {
  return heap_allocation_count().load(std::memory_order_relaxed);
}

TEST(AllocationHook, CountsRealAllocations) {
  const std::int64_t before = allocations();
  auto* v = new std::vector<int>(1024);
  delete v;
  EXPECT_GT(allocations(), before) << "the replacement operator new is not "
                                      "linked; zero-alloc assertions below "
                                      "would be vacuous";
}

TEST(StepArena, WarmPreReservesTheFirstFullBatch) {
  StepArena arena;
  arena.warm(/*max_batch=*/32, /*max_prefill_batch=*/8);
  StepRecord& record = arena.record();
  const std::int64_t before = allocations();
  for (int i = 0; i < 32; ++i) {
    record.kv_lens.push_back(100 + i);
    record.finished_ids.push_back(i);
    record.decode_groups.emplace_back(128, 1);
  }
  for (int i = 0; i < 8; ++i) {
    record.chunk_lens.push_back(64);
    record.prev_lens.push_back(0);
    record.first_token_ids.push_back(i);
  }
  EXPECT_EQ(allocations(), before)
      << "a warmed record must absorb a full batch without reallocating";
  record.clear();
  EXPECT_EQ(allocations(), before) << "clear() must keep capacity";
}

class SteadyDecodeTest : public ::testing::Test {
 protected:
  SteadyDecodeTest() : chip_(arch::tpu_v4i_baseline()), simulator_(chip_) {
    model_ = models::llama2_7b();
    model_.dtype = ir::DType::kInt4;
  }

  static Request make_request(std::int64_t id) {
    Request request;
    request.id = id;
    request.arrival_time = 0.0;
    // Prompt 100 with seqlen_bucket 128: all decoders share bucket 128 and
    // stay there for > 20 decode steps — no bucket crossing (and thus no
    // new cost-cache shape) inside the measured window.
    request.prompt_len = 100;
    request.output_len = 1000;  // nobody finishes inside the window
    return request;
  }

  arch::TpuChip chip_;
  sim::Simulator simulator_;
  models::TransformerConfig model_;
};

TEST_F(SteadyDecodeTest, HotLoopIsAllocationFreeInSteadyState) {
  KvCacheManager kv_cache(/*capacity=*/1e12,
                          KvCacheManager::token_bytes(model_),
                          EvictionPolicy::kPreemptNewest);
  SchedulerConfig config;
  config.max_batch = 8;
  config.max_prefill_batch = 8;
  ContinuousBatchScheduler scheduler(config, &kv_cache);
  StepCostCache costs(simulator_, model_, config.seqlen_bucket);
  StepArena arena;
  arena.warm(config.max_batch, config.max_prefill_batch);
  StepRecord& record = arena.record();

  for (std::int64_t id = 0; id < 8; ++id) {
    scheduler.enqueue(make_request(id));
  }
  // Warm-up: admit + prefill everyone, then a few decode steps so every
  // cost shape and memoized grouping this regime uses is resident.
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(scheduler.next_step(&record));
    cost_step(costs, record);
  }
  ASSERT_EQ(record.kind, StepRecord::Kind::kDecode) << "warm-up too short";

  const std::int64_t before = allocations();
  for (int i = 0; i < 16; ++i) {
    ASSERT_TRUE(scheduler.next_step(&record));
    ASSERT_EQ(record.kind, StepRecord::Kind::kDecode);
    ASSERT_EQ(record.batch, 8);
    cost_step(costs, record);
  }
  EXPECT_EQ(allocations(), before)
      << "steady-state decode (next_step + cost_step) must not allocate";
}

}  // namespace
}  // namespace cimtpu::serving
