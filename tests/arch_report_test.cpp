// Chip-report tests: summaries contain the Table I figures and the
// comparison annotates the paper's headline area/power ratios.

#include <gtest/gtest.h>

#include "arch/report.h"
#include "arch/tpu_config.h"

namespace cimtpu::arch {
namespace {

TEST(ChipReportTest, FiguresCoverIdentityAndBudget) {
  TpuChip chip(tpu_v4i_baseline());
  const auto figures = chip_figures(chip);
  auto find = [&](const std::string& name) -> std::string {
    for (const auto& figure : figures) {
      if (figure.name == name) return figure.value;
    }
    return "";
  };
  EXPECT_EQ(find("name"), "tpuv4i-baseline");
  EXPECT_EQ(find("technology"), "7nm");
  EXPECT_EQ(find("mxu kind"), "digital-systolic");
  EXPECT_EQ(find("mxu count"), "4");
  EXPECT_EQ(find("vmem"), "16 MiB");
  EXPECT_EQ(find("cmem"), "128 MiB");
  EXPECT_NE(find("hbm").find("614 GB/s"), std::string::npos);
  EXPECT_NE(find("peak throughput").find("TOPS"), std::string::npos);
  EXPECT_FALSE(find("area.total").empty());
  EXPECT_FALSE(find("power.mxu_leakage").empty());
}

TEST(ChipReportTest, SummaryIsAlignedText) {
  TpuChip chip(cim_tpu_default());
  const std::string summary = chip_summary(chip);
  EXPECT_NE(summary.find("cim-tpu"), std::string::npos);
  EXPECT_NE(summary.find("mxu kind"), std::string::npos);
  EXPECT_NE(summary.find("cim-16x8"), std::string::npos);
  // Every line indented uniformly.
  std::istringstream in(summary);
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty()) {
      EXPECT_EQ(line.substr(0, 2), "  ");
    }
  }
}

TEST(ChipReportTest, ComparisonShowsHeadlineRatios) {
  TpuChip baseline(tpu_v4i_baseline());
  TpuChip cim(cim_tpu_default());
  const std::string comparison = chip_comparison(baseline, cim);
  // Same peak (1x), 2.02x area, 9.43x power.
  EXPECT_NE(comparison.find("(1x)"), std::string::npos);
  EXPECT_NE(comparison.find("2.02x smaller"), std::string::npos);
  EXPECT_NE(comparison.find("9.43x lower at peak"), std::string::npos);
}

TEST(ChipReportTest, CimFiguresNameCimUnit) {
  TpuChip chip(design_b());
  const auto figures = chip_figures(chip);
  bool found = false;
  for (const auto& figure : figures) {
    if (figure.name == "mxu unit") {
      EXPECT_EQ(figure.value, "cim-16x8");
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

}  // namespace
}  // namespace cimtpu::arch
