// CIM-MXU cost-model tests: throughput parity with the digital MXU,
// the overlapped-weight-update GEMV advantage, bank-granular N costing,
// and energy composition.

#include <gtest/gtest.h>

#include "cim/cim_mxu.h"
#include "systolic/systolic_mxu.h"
#include "tech/calibration.h"
#include "tech/technology.h"

namespace cimtpu::cim {
namespace {

using systolic::GemmWorkload;
using systolic::MxuCost;

class CimMxuTest : public ::testing::Test {
 protected:
  CimMxuTest()
      : energy_(tech::calibration_node()),
        area_(tech::calibration_node()),
        cim_(CimMxuSpec{}, energy_, area_),
        digital_(systolic::SystolicMxuSpec{128, 128}, energy_, area_) {}

  tech::EnergyModel energy_;
  tech::AreaModel area_;
  CimMxu cim_;
  systolic::SystolicMxu digital_;
};

TEST_F(CimMxuTest, ThroughputParityWithDigitalMxu) {
  // Table II: both deliver 16384 MACs/cycle.
  EXPECT_DOUBLE_EQ(cim_.macs_per_cycle(), digital_.macs_per_cycle());
  EXPECT_EQ(cim_.name(), "cim-16x8");
}

TEST_F(CimMxuTest, WeightIngestFarExceedsDigital) {
  // 128 cores x 32 B/cycle vs one row (128 B) per cycle.
  EXPECT_DOUBLE_EQ(cim_.weight_ingest_bytes_per_cycle(), 128 * 32.0);
  EXPECT_GT(cim_.weight_ingest_bytes_per_cycle(),
            10 * digital_.weight_ingest_bytes_per_cycle());
  EXPECT_TRUE(cim_.overlapped_weight_load());
}

TEST_F(CimMxuTest, TableIIEfficiencyAnchors) {
  EXPECT_NEAR(cim_.tops_per_watt(ir::DType::kInt8, 1 * GHz), 7.26, 1e-6);
  EXPECT_NEAR(cim_.tops_per_mm2(1 * GHz), 1.31, 1e-6);
}

TEST_F(CimMxuTest, LargeGemmSlightlySlowerThanDigital) {
  // Compute-bound GEMM (prefill-like): CIM pays the wave-propagation
  // overhead, landing within a few percent of the digital array
  // (paper Fig. 6: +2.43% prefill latency).
  GemmWorkload w{/*m=*/8192, /*k=*/7168, /*n=*/7168, 1, ir::DType::kInt8};
  const double cim_cycles = cim_.evaluate(w).busy_cycles;
  const double digital_cycles = digital_.evaluate(w).busy_cycles;
  EXPECT_GT(cim_cycles, digital_cycles);
  EXPECT_LT(cim_cycles, digital_cycles * 1.10);
}

TEST_F(CimMxuTest, GemvMuchFasterThanDigital) {
  // Attention-style GEMV with per-instance stationary operands: the
  // digital array stalls on weight loads; the CIM-MXU hides them.
  GemmWorkload w{/*m=*/1, /*k=*/128, /*n=*/1280, /*instances=*/112,
                 ir::DType::kInt8};
  const double cim_cycles = cim_.evaluate(w).busy_cycles;
  const double digital_cycles = digital_.evaluate(w).busy_cycles;
  EXPECT_LT(cim_cycles, digital_cycles * 0.5);
}

TEST_F(CimMxuTest, GemvBoundByWeightIngestNotRamp) {
  GemmWorkload w{/*m=*/1, /*k=*/128, /*n=*/256, /*instances=*/1280,
                 ir::DType::kInt8};
  const MxuCost cost = cim_.evaluate(w);
  // Weight traffic: 1280 tasks x 32 KiB; aggregate port = 4 KiB/cycle.
  const double write_bound = 1280.0 * 128 * 256 / (128 * 32.0);
  EXPECT_GE(cost.busy_cycles, write_bound);
  EXPECT_LT(cost.busy_cycles, write_bound * 1.3);
}

TEST_F(CimMxuTest, BankGranularNarrowN) {
  // n = 72 (DiT head) costs ~72/256 of a full-width core, not a full one.
  GemmWorkload narrow{/*m=*/1024, /*k=*/1024, /*n=*/72, /*instances=*/128,
                      ir::DType::kInt8};
  GemmWorkload wide = narrow;
  wide.n = 256;
  const double narrow_cycles = cim_.evaluate(narrow).busy_cycles;
  const double wide_cycles = cim_.evaluate(wide).busy_cycles;
  EXPECT_LT(narrow_cycles, wide_cycles * 0.45);  // ~80/256 plus overheads
}

TEST_F(CimMxuTest, NPaddingIsBankGranular) {
  // n = 65 pads to 72 (9 banks), not to 256.
  GemmWorkload w65{/*m=*/64, /*k=*/128, /*n=*/65, /*instances=*/256,
                   ir::DType::kInt8};
  GemmWorkload w72 = w65;
  w72.n = 72;
  EXPECT_DOUBLE_EQ(cim_.evaluate(w65).busy_cycles,
                   cim_.evaluate(w72).busy_cycles);
  GemmWorkload w80 = w65;
  w80.n = 73;  // pads to 80
  EXPECT_GT(cim_.evaluate(w80).busy_cycles, cim_.evaluate(w72).busy_cycles);
}

TEST_F(CimMxuTest, ReplicationSplitsMWhenGridUnderfilled) {
  // A single big task would serialize on one core without replication.
  GemmWorkload w{/*m=*/8192, /*k=*/128, /*n=*/256, /*instances=*/1,
                 ir::DType::kInt8};
  const MxuCost cost = cim_.evaluate(w);
  // One core alone: 8192 * 256 cycles.  With 128-way replication the model
  // must do far better.
  EXPECT_LT(cost.busy_cycles, 8192.0 * 256 / 16);
}

TEST_F(CimMxuTest, SingleGemvCannotSplitBelowOneCore) {
  GemmWorkload w{/*m=*/1, /*k=*/128, /*n=*/256, /*instances=*/1,
                 ir::DType::kInt8};
  const MxuCost cost = cim_.evaluate(w);
  // Floor: one core processes one input row over 256 live columns, plus
  // the exposed first weight fill (1024 cycles).
  EXPECT_GE(cost.busy_cycles, 256.0);
}

TEST_F(CimMxuTest, UsefulMacsExact) {
  GemmWorkload w{/*m=*/10, /*k=*/100, /*n=*/70, /*instances=*/3,
                 ir::DType::kInt8};
  EXPECT_DOUBLE_EQ(cim_.evaluate(w).useful_macs, 3.0 * 10 * 100 * 70);
}

TEST_F(CimMxuTest, EnergyComposition) {
  GemmWorkload w{/*m=*/256, /*k=*/256, /*n=*/512, 1, ir::DType::kInt8};
  const MxuCost cost = cim_.evaluate(w);
  const double idle_slots = cost.occupied_mac_slots - cost.useful_macs;
  const Joules expected =
      cost.useful_macs * energy_.cim_mac(ir::DType::kInt8) +
      idle_slots * energy_.cim_idle_slot(ir::DType::kInt8) +
      cost.stationary_bytes_loaded * energy_.cim_weight_write_per_byte();
  EXPECT_NEAR(cost.busy_energy, expected, expected * 1e-12);
}

TEST_F(CimMxuTest, AreaHalfOfDigital) {
  EXPECT_NEAR(digital_.area() / cim_.area(), 2.02, 0.01);
}

TEST_F(CimMxuTest, IdlePowerBelowDigitalIdle) {
  EXPECT_LT(cim_.idle_power(ir::DType::kInt8),
            digital_.idle_power(ir::DType::kInt8));
}

TEST(CimMxuSpecTest, Validation) {
  tech::EnergyModel energy(tech::calibration_node());
  tech::AreaModel area(tech::calibration_node());
  CimMxuSpec bad;
  bad.grid_rows = 0;
  EXPECT_THROW(CimMxu(bad, energy, area), ConfigError);
  CimMxuSpec bad2;
  bad2.core_macs_per_cycle = -1;
  EXPECT_THROW(CimMxu(bad2, energy, area), ConfigError);
}

// --- Parameterized sweep over Table IV grid dimensions --------------------------

class CimGridTest : public ::testing::TestWithParam<std::pair<int, int>> {
 protected:
  CimGridTest()
      : energy_(tech::calibration_node()), area_(tech::calibration_node()) {}
  tech::EnergyModel energy_;
  tech::AreaModel area_;
};

TEST_P(CimGridTest, PeakScalesWithCores) {
  const auto [rows, cols] = GetParam();
  CimMxuSpec spec;
  spec.grid_rows = rows;
  spec.grid_cols = cols;
  CimMxu mxu(spec, energy_, area_);
  EXPECT_DOUBLE_EQ(mxu.macs_per_cycle(), rows * cols * 128.0);
  EXPECT_DOUBLE_EQ(mxu.weight_ingest_bytes_per_cycle(), rows * cols * 32.0);
}

TEST_P(CimGridTest, EfficiencyIndependentOfGridSize) {
  const auto [rows, cols] = GetParam();
  CimMxuSpec spec;
  spec.grid_rows = rows;
  spec.grid_cols = cols;
  CimMxu mxu(spec, energy_, area_);
  // TOPS/W and TOPS/mm^2 are per-core properties; the grid preserves them.
  EXPECT_NEAR(mxu.tops_per_watt(ir::DType::kInt8, 1 * GHz), 7.26, 1e-6);
  EXPECT_NEAR(mxu.tops_per_mm2(1 * GHz), 1.31, 1e-6);
}

TEST_P(CimGridTest, UtilizationBoundedOnMixedShapes) {
  const auto [rows, cols] = GetParam();
  CimMxuSpec spec;
  spec.grid_rows = rows;
  spec.grid_cols = cols;
  CimMxu mxu(spec, energy_, area_);
  for (const GemmWorkload& w :
       {GemmWorkload{1, 128, 1280, 448, ir::DType::kInt8},
        GemmWorkload{8192, 7168, 7168, 1, ir::DType::kInt8},
        GemmWorkload{1024, 1024, 72, 128, ir::DType::kInt8}}) {
    const MxuCost cost = mxu.evaluate(w);
    EXPECT_GT(cost.utilization(), 0.0);
    EXPECT_LE(cost.utilization(), 1.0);
    EXPECT_GE(cost.busy_energy, 0.0);
  }
}

INSTANTIATE_TEST_SUITE_P(TableIVGrids, CimGridTest,
                         ::testing::Values(std::pair{8, 8}, std::pair{16, 8},
                                           std::pair{16, 16}));

}  // namespace
}  // namespace cimtpu::cim
