// Fused-attention reference tests: streaming (chunked, online-softmax)
// attention must match the naive reference for every chunking — the
// property that legalizes walking a VMEM-sized window over the KV cache.

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "common/status.h"
#include "vpu/attention.h"

namespace cimtpu::vpu {
namespace {

std::vector<float> random_matrix(Rng& rng, int rows, int cols,
                                 double lo = -2.0, double hi = 2.0) {
  std::vector<float> m(static_cast<std::size_t>(rows) * cols);
  for (auto& x : m) x = static_cast<float>(rng.uniform(lo, hi));
  return m;
}

TEST(AttentionTest, SingleKvRowIsIdentity) {
  // One KV row: softmax over one score = 1, output = that V row.
  AttentionShape shape{1, 1, 4};
  const std::vector<float> q{1, 2, 3, 4};
  const std::vector<float> k{0.5f, -1, 2, 0};
  const std::vector<float> v{7, 8, 9, 10};
  const auto out = attention_reference(q, k, v, shape);
  for (int d = 0; d < 4; ++d) EXPECT_FLOAT_EQ(out[d], v[d]);
}

TEST(AttentionTest, UniformScoresAverageV) {
  // Identical K rows -> uniform attention -> output = mean of V rows.
  AttentionShape shape{1, 4, 2};
  const std::vector<float> q{1, 1};
  const std::vector<float> k{1, 1, 1, 1, 1, 1, 1, 1};
  const std::vector<float> v{0, 0, 2, 2, 4, 4, 6, 6};
  const auto out = attention_reference(q, k, v, shape);
  EXPECT_NEAR(out[0], 3.0f, 1e-5);
  EXPECT_NEAR(out[1], 3.0f, 1e-5);
}

TEST(AttentionTest, SharpSoftmaxPicksArgmax) {
  // One KV row with a much larger score dominates.
  AttentionShape shape{1, 2, 2};
  const std::vector<float> q{10, 0};
  const std::vector<float> k{5, 0, -5, 0};  // scores ~ +35.4, -35.4
  const std::vector<float> v{1, 2, 100, 200};
  const auto out = attention_reference(q, k, v, shape);
  EXPECT_NEAR(out[0], 1.0f, 1e-3);
  EXPECT_NEAR(out[1], 2.0f, 1e-3);
}

TEST(AttentionTest, StreamingMatchesReferenceChunk1) {
  Rng rng(1);
  AttentionShape shape{3, 17, 8};
  const auto q = random_matrix(rng, 3, 8);
  const auto k = random_matrix(rng, 17, 8);
  const auto v = random_matrix(rng, 17, 8);
  const auto ref = attention_reference(q, k, v, shape);
  const auto stream = attention_streaming(q, k, v, shape, 1);
  ASSERT_EQ(stream.size(), ref.size());
  for (std::size_t i = 0; i < ref.size(); ++i) {
    EXPECT_NEAR(stream[i], ref[i], 1e-4) << i;
  }
}

class AttentionChunkTest : public ::testing::TestWithParam<int> {};

TEST_P(AttentionChunkTest, StreamingInvariantToChunking) {
  const int chunk = GetParam();
  Rng rng(77 + chunk);
  AttentionShape shape{4, 23, 16};
  const auto q = random_matrix(rng, 4, 16);
  const auto k = random_matrix(rng, 23, 16);
  const auto v = random_matrix(rng, 23, 16);
  const auto ref = attention_reference(q, k, v, shape);
  const auto stream = attention_streaming(q, k, v, shape, chunk);
  for (std::size_t i = 0; i < ref.size(); ++i) {
    EXPECT_NEAR(stream[i], ref[i], 1e-4) << "chunk=" << chunk << " i=" << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Chunks, AttentionChunkTest,
                         ::testing::Values(1, 2, 3, 7, 8, 23, 64));

TEST(AttentionTest, StableUnderExtremeScores) {
  // Large-magnitude Q/K would overflow a naive exp-sum; the online
  // normalizer must stay finite.
  AttentionShape shape{1, 3, 2};
  const std::vector<float> q{50, 50};
  const std::vector<float> k{40, 40, -40, -40, 39, 39};
  const std::vector<float> v{1, 0, 2, 0, 3, 0};
  const auto out = attention_streaming(q, k, v, shape, 1);
  EXPECT_TRUE(std::isfinite(out[0]));
  EXPECT_NEAR(out[0], 1.0f, 1e-2);  // the +40 row dominates
}

TEST(AttentionTest, DecodeShapedCase) {
  // Decode: one query row against a long cache (the paper's GEMV shape).
  Rng rng(5);
  AttentionShape shape{1, 256, 32};
  const auto q = random_matrix(rng, 1, 32);
  const auto k = random_matrix(rng, 256, 32);
  const auto v = random_matrix(rng, 256, 32);
  const auto ref = attention_reference(q, k, v, shape);
  const auto stream = attention_streaming(q, k, v, shape, 32);
  for (std::size_t i = 0; i < ref.size(); ++i) {
    EXPECT_NEAR(stream[i], ref[i], 1e-4);
  }
}

TEST(AttentionTest, OutputIsConvexCombinationOfV) {
  Rng rng(9);
  AttentionShape shape{2, 8, 4};
  const auto q = random_matrix(rng, 2, 4);
  const auto k = random_matrix(rng, 8, 4);
  const auto v = random_matrix(rng, 8, 4, 0.0, 1.0);  // V in [0,1]
  const auto out = attention_reference(q, k, v, shape);
  for (float x : out) {
    EXPECT_GE(x, 0.0f);
    EXPECT_LE(x, 1.0f);
  }
}

TEST(AttentionTest, ShapeValidation) {
  AttentionShape shape{2, 2, 2};
  EXPECT_THROW(attention_reference({1, 2}, {1, 2, 3, 4}, {1, 2, 3, 4}, shape),
               InternalError);
  EXPECT_THROW(
      attention_streaming({1, 2, 3, 4}, {1, 2, 3, 4}, {1, 2, 3, 4}, shape, 0),
      InternalError);
}

}  // namespace
}  // namespace cimtpu::vpu
