// Cluster-scale serving wall: router-policy ordering and stickiness, the
// registry's unknown-name diagnostics, the N=1 + round_robin bit-identity
// contract against the single-engine path, colocated multi-replica
// conservation, prefix-affinity routing beating round-robin on
// cluster-wide prefix hit rate, disaggregated prefill/decode KV-transfer
// reconciliation against the IciFabric cost model, the tensor-parallel
// serving dispatch, IciFabric edge cases, the batched-prefill costing
// satellite, and 1-vs-4-thread sweep bit-identity for cluster cells.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include "arch/chip.h"
#include "common/status.h"
#include "mem/link.h"
#include "models/model_zoo.h"
#include "serving/cluster.h"
#include "serving/kv_cache_manager.h"
#include "serving/scheduler.h"
#include "serving/serving_sim.h"
#include "serving/sweep.h"
#include "serving/traffic_profiles.h"

namespace cimtpu::serving {
namespace {

Request make_request(std::int64_t id, Seconds arrival,
                     std::int64_t tenant_id = 0, std::int64_t prefix_id = -1) {
  Request request;
  request.id = id;
  request.arrival_time = arrival;
  request.prompt_len = 64;
  request.output_len = 8;
  request.tenant_id = tenant_id;
  request.prefix_id = prefix_id;
  return request;
}

std::vector<ReplicaLoad> loads_of(std::initializer_list<std::int64_t> tokens) {
  std::vector<ReplicaLoad> loads;
  for (std::int64_t t : tokens) loads.push_back(ReplicaLoad{t});
  return loads;
}

// --- Router policy registry --------------------------------------------------

TEST(RouterRegistryTest, BuiltinNamesSorted) {
  const std::vector<std::string> names = router_policy_names();
  EXPECT_TRUE(std::is_sorted(names.begin(), names.end()));
  for (const char* builtin :
       {"least_loaded", "prefix_affinity", "round_robin", "tenant_sticky"}) {
    EXPECT_NE(std::find(names.begin(), names.end(), builtin), names.end())
        << builtin;
  }
}

TEST(RouterRegistryTest, UnknownNameListsRegisteredPolicies) {
  try {
    make_router_policy("nope", 2);
    FAIL() << "unknown router policy must throw";
  } catch (const ConfigError& error) {
    const std::string message = error.what();
    EXPECT_NE(message.find("nope"), std::string::npos);
    EXPECT_NE(message.find("round_robin"), std::string::npos);
    EXPECT_NE(message.find("prefix_affinity"), std::string::npos);
  }
}

TEST(RouterRegistryTest, CustomPolicyRegistersAndRoutes) {
  register_router_policy("test_always_last", [](int n) {
    class AlwaysLast final : public RouterPolicy {
     public:
      explicit AlwaysLast(int n) : last_(n - 1) {}
      int route(const Request&, const std::vector<ReplicaLoad>&) override {
        return last_;
      }

     private:
      int last_;
    };
    return std::make_unique<AlwaysLast>(n);
  });
  auto policy = make_router_policy("test_always_last", 3);
  EXPECT_EQ(policy->route(make_request(0, 0.0), loads_of({0, 0, 0})), 2);
}

// --- Builtin policies --------------------------------------------------------

TEST(RouterPolicyTest, RoundRobinCyclesReplicas) {
  auto policy = make_router_policy("round_robin", 3);
  const auto loads = loads_of({100, 0, 50});  // loads must be ignored
  for (int expected : {0, 1, 2, 0, 1, 2, 0}) {
    EXPECT_EQ(policy->route(make_request(0, 0.0), loads), expected);
  }
}

TEST(RouterPolicyTest, LeastLoadedPicksMinimumTiesToLowestIndex) {
  auto policy = make_router_policy("least_loaded", 4);
  EXPECT_EQ(policy->route(make_request(0, 0.0), loads_of({30, 10, 20, 40})), 1);
  EXPECT_EQ(policy->route(make_request(1, 0.0), loads_of({5, 5, 5, 5})), 0);
  EXPECT_EQ(policy->route(make_request(2, 0.0), loads_of({9, 3, 3, 8})), 1);
}

TEST(RouterPolicyTest, PrefixAffinitySticksToFirstPick) {
  auto policy = make_router_policy("prefix_affinity", 3);
  // First sight of prefix 7: least-loaded fallback picks replica 2.
  EXPECT_EQ(policy->route(make_request(0, 0.0, 0, 7), loads_of({9, 9, 1})), 2);
  // Same prefix sticks to replica 2 even when its load is now worst.
  EXPECT_EQ(policy->route(make_request(1, 1.0, 0, 7), loads_of({1, 1, 99})),
            2);
  // Untagged requests always fall back to least-loaded.
  EXPECT_EQ(policy->route(make_request(2, 2.0, 0, -1), loads_of({1, 0, 99})),
            1);
  // A different prefix makes its own sticky pick.
  EXPECT_EQ(policy->route(make_request(3, 3.0, 0, 8), loads_of({0, 5, 99})),
            0);
  EXPECT_EQ(policy->route(make_request(4, 4.0, 0, 8), loads_of({77, 0, 0})),
            0);
}

TEST(RouterPolicyTest, TenantStickyAssignsFirstSeenRoundRobin) {
  auto policy = make_router_policy("tenant_sticky", 2);
  const auto loads = loads_of({0, 0});
  EXPECT_EQ(policy->route(make_request(0, 0.0, /*tenant=*/5), loads), 0);
  EXPECT_EQ(policy->route(make_request(1, 1.0, /*tenant=*/9), loads), 1);
  EXPECT_EQ(policy->route(make_request(2, 2.0, /*tenant=*/5), loads), 0);
  EXPECT_EQ(policy->route(make_request(3, 3.0, /*tenant=*/9), loads), 1);
  EXPECT_EQ(policy->route(make_request(4, 4.0, /*tenant=*/11), loads), 0);
}

// --- N=1 bit-identity --------------------------------------------------------

TEST(ClusterSingleReplicaTest, BitIdenticalToSingleEnginePath) {
  const std::vector<Request> requests =
      generate_requests(zipf_chat_stream(/*seed=*/42, 300, 20.0));
  const ServingScenario scenario =
      llama7b_baseline_scenario(1, ir::DType::kInt4);

  const ServingMetrics single = run_serving(scenario, requests);

  ClusterConfig config;
  config.base = scenario;
  config.replicas = {ReplicaSpec{}};
  config.router_policy = "round_robin";
  const ClusterMetrics cluster = run_serving_cluster(config, requests);

  ASSERT_EQ(cluster.replica_metrics.size(), 1u);
  const ServingMetrics& replica = cluster.replica_metrics[0];
  // Exact equality, not approximate — this is the golden-pin contract.
  EXPECT_EQ(replica.total_steps, single.total_steps);
  EXPECT_EQ(replica.prefill_steps, single.prefill_steps);
  EXPECT_EQ(replica.decode_steps, single.decode_steps);
  EXPECT_EQ(replica.completed, single.completed);
  EXPECT_EQ(replica.generated_tokens, single.generated_tokens);
  EXPECT_EQ(replica.makespan, single.makespan);
  EXPECT_EQ(replica.ttft.p50, single.ttft.p50);
  EXPECT_EQ(replica.ttft.p99, single.ttft.p99);
  EXPECT_EQ(replica.tpot.p99, single.tpot.p99);
  EXPECT_EQ(replica.e2e.p99, single.e2e.p99);
  EXPECT_EQ(replica.goodput_tokens_per_second,
            single.goodput_tokens_per_second);
  EXPECT_EQ(replica.energy_per_token, single.energy_per_token);
  EXPECT_EQ(replica.mxu_utilization, single.mxu_utilization);
  // The whole registry, byte for byte.
  EXPECT_EQ(replica.registry.to_json(), single.registry.to_json());

  // The stitched cluster view agrees with the lone replica.
  EXPECT_EQ(cluster.replicas, 1);
  EXPECT_EQ(cluster.completed, single.completed);
  EXPECT_EQ(cluster.generated_tokens, single.generated_tokens);
  EXPECT_EQ(cluster.makespan, single.makespan);
  EXPECT_EQ(cluster.ttft.p99, single.ttft.p99);
  EXPECT_EQ(cluster.e2e.p99, single.e2e.p99);
  EXPECT_EQ(cluster.kv_transfer_count, 0);
}

TEST(ClusterSingleReplicaTest, UnknownRouterPolicyFailsAtOneReplicaToo) {
  ClusterConfig config;
  config.base = llama7b_baseline_scenario(1, ir::DType::kInt4);
  config.router_policy = "bogus";
  EXPECT_THROW(run_serving_cluster(config, {}), ConfigError);
}

// --- Colocated multi-replica -------------------------------------------------

TEST(ClusterColocatedTest, RequestsConserveAcrossReplicas) {
  const std::vector<Request> requests =
      generate_requests(zipf_chat_stream(/*seed=*/7, 300, 30.0));
  ClusterConfig config;
  config.base = llama7b_baseline_scenario(1, ir::DType::kInt4);
  config.replicas.assign(4, ReplicaSpec{});
  config.router_policy = "round_robin";
  const ClusterMetrics cluster = run_serving_cluster(config, requests);

  EXPECT_EQ(cluster.replicas, 4);
  EXPECT_EQ(cluster.total_chips, 4);
  ASSERT_EQ(cluster.replica_metrics.size(), 4u);
  std::int64_t replica_completed = 0, replica_tokens = 0;
  for (const ServingMetrics& replica : cluster.replica_metrics) {
    EXPECT_GT(replica.completed, 0);  // round robin spreads everyone work
    replica_completed += replica.completed;
    replica_tokens += replica.generated_tokens;
  }
  EXPECT_EQ(replica_completed, 300);
  EXPECT_EQ(cluster.completed, 300);
  EXPECT_EQ(cluster.arrived, 300);
  EXPECT_EQ(cluster.shed, 0);
  EXPECT_EQ(cluster.generated_tokens, replica_tokens);
  EXPECT_EQ(cluster.ttft.count, 300);
  EXPECT_EQ(cluster.e2e.count, 300);
  EXPECT_GT(cluster.jain_across_replicas, 0.9);  // RR is near-even
  EXPECT_LE(cluster.jain_across_replicas, 1.0);
  EXPECT_EQ(cluster.replica_utilization.size(), 4u);
  EXPECT_EQ(cluster.kv_transfer_count, 0);  // colocated: nothing streams
  const std::string registry_json = cluster.registry.to_json();
  EXPECT_NE(registry_json.find("cluster.replicas"), std::string::npos);
  EXPECT_NE(registry_json.find("cluster.replica3.utilization"),
            std::string::npos);
}

TEST(ClusterColocatedTest, FourReplicasBeatOneOnOverloadedTraffic) {
  const std::vector<Request> requests =
      generate_requests(zipf_chat_stream(/*seed=*/13, 240, 40.0));
  ClusterConfig one;
  one.base = llama7b_baseline_scenario(1, ir::DType::kInt4);
  ClusterConfig four = one;
  four.replicas.assign(4, ReplicaSpec{});
  four.router_policy = "least_loaded";
  const ClusterMetrics m1 = run_serving_cluster(one, requests);
  const ClusterMetrics m4 = run_serving_cluster(four, requests);
  EXPECT_EQ(m4.completed, m1.completed);
  EXPECT_LT(m4.e2e.p99, m1.e2e.p99);  // 4x capacity must cut tail latency
  EXPECT_GT(m4.goodput_tokens_per_second, m1.goodput_tokens_per_second);
}

TEST(ClusterColocatedTest, PrefixAffinityBeatsRoundRobinOnHitRate) {
  // A 16-prompt prefix pool scattered over 4 replicas: round robin sprays
  // each family across every cache, affinity keeps each family warm on
  // one replica — the cluster-wide hit rate must show it.
  const std::vector<Request> requests = generate_requests(
      prefix_chatbot_stream(/*seed=*/11, 400, 24.0, /*prefix_pool=*/16));
  ClusterConfig config;
  config.base = prefix_cache_scenario(ir::DType::kInt4,
                                      /*enable_prefix_cache=*/true);
  config.replicas.assign(4, ReplicaSpec{});
  config.router_policy = "round_robin";
  const ClusterMetrics rr = run_serving_cluster(config, requests);
  config.router_policy = "prefix_affinity";
  const ClusterMetrics affinity = run_serving_cluster(config, requests);

  EXPECT_GT(rr.prefix_hit_rate, 0.0);  // even scattered, some hits land
  EXPECT_GT(affinity.prefix_hit_rate, rr.prefix_hit_rate);
  EXPECT_EQ(affinity.completed, rr.completed);
}

// --- Disaggregated prefill/decode --------------------------------------------

ClusterConfig disaggregated_config(int prefill, int decode) {
  ClusterConfig config;
  config.base = llama7b_baseline_scenario(1, ir::DType::kInt4);
  config.replicas.assign(prefill + decode, ReplicaSpec{});
  config.disaggregated = true;
  config.prefill_replicas = prefill;
  return config;
}

TEST(ClusterDisaggregatedTest, TransfersReconcileAgainstFabricModel) {
  const std::vector<Request> requests =
      generate_requests(zipf_chat_stream(/*seed=*/21, 200, 20.0));
  const ClusterConfig config = disaggregated_config(2, 2);
  const ClusterMetrics cluster = run_serving_cluster(config, requests);

  EXPECT_EQ(cluster.completed, 200);
  EXPECT_EQ(cluster.arrived, 200);
  EXPECT_EQ(cluster.ttft.count, 200);
  EXPECT_EQ(cluster.e2e.count, 200);

  // Recompute every transfer independently from the IciFabric model: one
  // p2p message per KV block of ceil(prompt / block_tokens) blocks.
  const arch::TpuChip chip(config.base.chip_config);
  const std::int64_t block_tokens = config.base.scheduler.kv_block_tokens;
  const Bytes block_bytes =
      KvCacheManager::token_bytes(config.base.model) *
      static_cast<double>(block_tokens);
  std::int64_t expect_count = 0, expect_blocks = 0;
  Seconds expect_seconds = 0;
  for (const Request& request : requests) {
    if (request.output_len < 2) continue;
    const std::int64_t blocks =
        (request.prompt_len + block_tokens - 1) / block_tokens;
    expect_count += 1;
    expect_blocks += blocks;
    expect_seconds +=
        static_cast<double>(blocks) * chip.ici().p2p_time(block_bytes);
  }
  EXPECT_EQ(cluster.kv_transfer_count, expect_count);
  EXPECT_EQ(cluster.kv_transfer_blocks, expect_blocks);
  EXPECT_NEAR(cluster.kv_transfer_seconds, expect_seconds,
              1e-9 * expect_seconds);
  EXPECT_DOUBLE_EQ(cluster.kv_transfer_bytes,
                   static_cast<double>(expect_blocks) * block_bytes);

  // Side split: prefill replicas emit every first token (their clones
  // complete at the first token), decode replicas emit none locally —
  // their TPOT samples would be meaningless and must be excluded.
  for (int i = 0; i < 2; ++i) {
    EXPECT_GT(cluster.replica_metrics[i].ttft.count, 0);
    EXPECT_EQ(cluster.replica_metrics[2 + i].ttft.count, 0);
    EXPECT_EQ(cluster.replica_metrics[2 + i].tpot.count, 0);
  }
  // Stitched TPOT spans the wire gap: present for multi-token requests.
  EXPECT_GT(cluster.tpot.count, 0);
}

TEST(ClusterDisaggregatedTest, SingleTokenRequestsFinishOnPrefillSide) {
  std::vector<Request> requests;
  for (int i = 0; i < 8; ++i) {
    Request request = make_request(i, 0.1 * i);
    request.output_len = 1;  // no decode work at all
    requests.push_back(request);
  }
  const ClusterMetrics cluster =
      run_serving_cluster(disaggregated_config(1, 1), requests);
  EXPECT_EQ(cluster.completed, 8);
  EXPECT_EQ(cluster.kv_transfer_count, 0);  // nothing ever streams
  EXPECT_EQ(cluster.replica_metrics[1].completed, 0);  // decode side idle
}

// --- Tensor-parallel serving dispatch ----------------------------------------

TEST(ClusterTensorParallelTest, TpReplicaServesAndPublishesReference) {
  const std::vector<Request> requests =
      generate_requests(zipf_chat_stream(/*seed=*/5, 120, 20.0));
  ClusterConfig config;
  config.base = llama7b_baseline_scenario(1, ir::DType::kInt4);
  config.replicas = {ReplicaSpec{/*chips=*/1, /*tensor_parallel_ways=*/2}};
  const ClusterMetrics tp2 = run_serving_cluster(config, requests);
  config.replicas = {ReplicaSpec{}};
  const ClusterMetrics tp1 = run_serving_cluster(config, requests);

  EXPECT_EQ(tp2.completed, 120);
  EXPECT_EQ(tp2.total_chips, 2);  // a TP group spans ways chips
  EXPECT_EQ(tp2.replica_metrics[0].chips, 2);
  // Sharding halves per-chip compute but pays two all-reduces per layer:
  // the timeline must actually change — TP is dispatched, not ignored.
  EXPECT_NE(tp2.makespan, tp1.makespan);
  // The multi_chip.h reference model is published alongside.
  const std::string registry_json = tp2.registry.to_json();
  EXPECT_NE(registry_json.find("cluster.replica0.tp_reference_latency_s"),
            std::string::npos);
  EXPECT_NE(registry_json.find("cluster.replica0.tensor_parallel_ways"),
            std::string::npos);
  EXPECT_EQ(tp1.registry.to_json().find("tp_reference"), std::string::npos);
}

TEST(ClusterTensorParallelTest, TpUnlocksModelsLargerThanOneChip) {
  // The TP KV budget spans all shards' HBM headroom: the same model +
  // budget that admits requests at ways=2 must admit at least as much as
  // ways=1 — and the ways=2 engine runs a sharded cost model.
  ServingScenario scenario = llama7b_baseline_scenario(1, ir::DType::kInt8);
  scenario.tensor_parallel_ways = 2;
  scenario.validate();  // TP and pipeline stages may not combine
  scenario.chips = 2;
  EXPECT_THROW(scenario.validate(), ConfigError);
}

// --- IciFabric edge cases ----------------------------------------------------

class IciFabricTest : public ::testing::Test {
 protected:
  IciFabricTest() : chip_(arch::tpu_v4i_baseline()) {}
  arch::TpuChip chip_;
};

TEST_F(IciFabricTest, ZeroByteTransfersAreFree) {
  EXPECT_EQ(chip_.ici().p2p_time(0), 0.0);
  EXPECT_EQ(chip_.ici().p2p_time(-5.0), 0.0);
  EXPECT_EQ(chip_.ici().all_reduce_time(0, 8), 0.0);
  EXPECT_EQ(chip_.ici().all_reduce_energy(0, 8), 0.0);
  EXPECT_EQ(chip_.ici().p2p_energy(0), 0.0);
}

TEST_F(IciFabricTest, SingleChipAllReduceIsFree) {
  EXPECT_EQ(chip_.ici().all_reduce_time(1 << 20, 1), 0.0);
  EXPECT_EQ(chip_.ici().all_reduce_energy(1 << 20, 1), 0.0);
}

TEST_F(IciFabricTest, SingleHopVersusMultiHopLatency) {
  const mem::IciLinkSpec& spec = chip_.ici().spec();
  // One p2p message pays exactly one hop latency plus the wire time.
  const Bytes bytes = 4 * MiB;
  EXPECT_DOUBLE_EQ(chip_.ici().p2p_time(bytes),
                   spec.hop_latency + bytes / spec.bandwidth_per_link);
  // A ring all-reduce pays 2*(p-1) hops: latency grows with the ring.
  const Seconds two = chip_.ici().all_reduce_time(bytes, 2);
  const Seconds eight = chip_.ici().all_reduce_time(bytes, 8);
  EXPECT_GT(eight, two);
  // Tiny payload isolates the hop-latency term: 2*(p-1) hops exactly.
  const Seconds tiny = chip_.ici().all_reduce_time(1e-9, 8);
  EXPECT_NEAR(tiny, 2.0 * 7.0 * spec.hop_latency, 1e-12);
}

TEST_F(IciFabricTest, InvalidSpecsAreRejected) {
  mem::IciLinkSpec bad;
  bad.bandwidth_per_link = 0;
  EXPECT_THROW(mem::IciFabric(bad, chip_.energy()), ConfigError);
  bad = mem::IciLinkSpec{};
  bad.links_per_chip = 0;
  EXPECT_THROW(mem::IciFabric(bad, chip_.energy()), ConfigError);
  bad = mem::IciLinkSpec{};
  bad.bandwidth_per_link = -1.0;
  EXPECT_THROW(mem::IciFabric(bad, chip_.energy()), ConfigError);
  bad = mem::IciLinkSpec{};
  bad.hop_latency = -1.0 * us;
  EXPECT_THROW(mem::IciFabric(bad, chip_.energy()), ConfigError);
}

// --- Batched-prefill costing (satellite) -------------------------------------

class BatchedPrefillTest : public ::testing::Test {
 protected:
  BatchedPrefillTest()
      : chip_(arch::tpu_v4i_baseline()), simulator_(chip_) {
    model_ = models::llama2_7b();
    model_.dtype = ir::DType::kInt4;
  }

  arch::TpuChip chip_;
  sim::Simulator simulator_;
  models::TransformerConfig model_;
};

TEST_F(BatchedPrefillTest, FreshPromptsShareOneWeightPass) {
  // Two prompts starting prefill in the same step (prev == 0, equal
  // chunks): the batched model runs them as ONE batch-2 prefill, so the
  // weight load amortizes; the historical model charged two solo passes.
  StepCostCache costs(simulator_, model_, 128);
  StepRecord step;
  step.kind = StepRecord::Kind::kPrefill;
  step.batch = 2;
  step.kv_lens = {128, 128};
  step.chunk_lens = {128, 128};
  step.prev_lens = {0, 0};

  step.batched_cost = false;
  const StepCost solo_pair = cost_step(costs, step);
  step.batched_cost = true;
  const StepCost batched = cost_step(costs, step);

  EXPECT_LT(batched.latency, solo_pair.latency);
  const StepCost reference = costs.prefill_layer(2, 128);
  EXPECT_DOUBLE_EQ(batched.latency, reference.latency);

  // And the unbatched cost is exactly two solo passes.
  StepRecord solo;
  solo.kind = StepRecord::Kind::kPrefill;
  solo.batch = 1;
  solo.kv_lens = {128};
  solo.chunk_lens = {128};
  solo.prev_lens = {0};
  const StepCost one = cost_step(costs, solo);
  EXPECT_DOUBLE_EQ(solo_pair.latency, 2.0 * one.latency);
}

TEST_F(BatchedPrefillTest, MidPromptChunksKeepTelescopedDifferences) {
  // Chunks at prev > 0 cost as prefill(prev+chunk) - prefill(prev); the
  // batched model groups shape-equal participants but the telescoped
  // difference still cancels the shared weight pass.
  StepCostCache costs(simulator_, model_, 128);
  StepRecord step;
  step.kind = StepRecord::Kind::kPrefill;
  step.batch = 2;
  step.kv_lens = {640, 640};
  step.chunk_lens = {128, 128};
  step.prev_lens = {512, 512};
  step.batched_cost = true;
  const StepCost batched = cost_step(costs, step);
  const StepCost expect_hi = costs.prefill_layer(2, 640);
  const StepCost expect_lo = costs.prefill_layer(2, 512);
  EXPECT_DOUBLE_EQ(batched.latency, expect_hi.latency - expect_lo.latency);
}

TEST_F(BatchedPrefillTest, EndToEndBatchedCostingNeverSlower) {
  // Overloaded arrivals force multi-prompt prefill steps; charging them
  // at the actual prefill batch must not lengthen the timeline.
  const std::vector<Request> requests =
      generate_requests(zipf_chat_stream(/*seed=*/3, 120, 60.0));
  ServingScenario off = llama7b_baseline_scenario(1, ir::DType::kInt4);
  ServingScenario on = off;
  on.scheduler.batched_prefill_cost = true;
  const ServingMetrics m_off = run_serving(off, requests);
  const ServingMetrics m_on = run_serving(on, requests);
  EXPECT_EQ(m_on.completed, m_off.completed);
  EXPECT_EQ(m_on.total_steps, m_off.total_steps);  // same schedule shape
  EXPECT_LT(m_on.makespan, m_off.makespan);  // cheaper prefill steps
}

// --- Cluster sweep cells -----------------------------------------------------

ServingSweep small_cluster_sweep() {
  ServingSweep sweep;
  sweep.arrival_rates = {20.0};
  sweep.models = {[] {
    models::TransformerConfig model = models::llama2_7b();
    model.dtype = ir::DType::kInt4;
    return model;
  }()};
  sweep.chip_counts = {1};
  sweep.policies = {EvictionPolicy::kPreemptNewest};
  sweep.base = llama7b_baseline_scenario(1, ir::DType::kInt4);
  sweep.stream = zipf_chat_stream(/*seed=*/9, 100, 20.0);
  return sweep;
}

TEST(ClusterSweepTest, SentinelAxesKeepSingleEngineCellsUnchanged) {
  const ServingSweep sweep = small_cluster_sweep();
  const std::vector<SweepCellResult> cells = run_serving_sweep(sweep);
  ASSERT_EQ(cells.size(), 1u);
  EXPECT_EQ(cells[0].replicas, 0);
  EXPECT_TRUE(cells[0].router_policy.empty());
  EXPECT_EQ(cells[0].disaggregated, -1);
  // The sentinel cell is the single-engine path, bit for bit.
  const std::vector<Request> requests = generate_requests(sweep.stream);
  const ServingMetrics direct = run_serving(sweep.base, requests);
  EXPECT_EQ(cells[0].metrics.total_steps, direct.total_steps);
  EXPECT_EQ(cells[0].metrics.makespan, direct.makespan);
  EXPECT_EQ(cells[0].metrics.registry.to_json(), direct.registry.to_json());
}

TEST(ClusterSweepTest, ClusterCellsBitIdenticalAcrossThreadCounts) {
  ServingSweep sweep = small_cluster_sweep();
  sweep.replicas = {0, 2};
  sweep.router_policies = {"round_robin", "least_loaded"};
  SweepOptions serial, parallel;
  serial.threads = 1;
  parallel.threads = 4;
  const std::vector<SweepCellResult> a = run_serving_sweep(sweep, serial);
  const std::vector<SweepCellResult> b = run_serving_sweep(sweep, parallel);
  ASSERT_EQ(a.size(), 4u);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].replicas, b[i].replicas);
    EXPECT_EQ(a[i].router_policy, b[i].router_policy);
    EXPECT_EQ(a[i].metrics.total_steps, b[i].metrics.total_steps);
    EXPECT_EQ(a[i].metrics.completed, b[i].metrics.completed);
    EXPECT_EQ(a[i].metrics.makespan, b[i].metrics.makespan);
    EXPECT_EQ(a[i].metrics.ttft.p99, b[i].metrics.ttft.p99);
    EXPECT_EQ(a[i].metrics.e2e.p99, b[i].metrics.e2e.p99);
    EXPECT_EQ(a[i].metrics.goodput_tokens_per_second,
              b[i].metrics.goodput_tokens_per_second);
    EXPECT_EQ(a[i].metrics.registry.to_json(), b[i].metrics.registry.to_json());
  }
  // Replicated cells really are cluster runs: 2x the chips.
  EXPECT_EQ(a[0].metrics.chips, 1);
  EXPECT_EQ(a[2].metrics.chips, 2);
}

// --- Canonical cluster studies (the schema-v9 "cluster" bench block) ---------
// These gate the two pinned orderings on the EXACT grids bench_serving and
// serving_traffic run (traffic_profiles.h), so regenerating the committed
// BENCH_serving.json can never silently lose either frontier.

TEST(ClusterCanonicalStudyTest, PrefixAffinityBeatsRoundRobinOnCanonicalGrid) {
  const models::TransformerConfig model =
      llama7b_baseline_scenario(1, ir::DType::kInt4).model;
  const std::vector<Request> requests =
      generate_requests(cluster_chatbot_stream(/*seed=*/42));
  const std::vector<SweepPoint> points =
      cluster_router_grid_points(model, &requests);
  ASSERT_EQ(points.size(), cluster_router_policy_order().size());
  const std::vector<ServingMetrics> results = run_sweep(points);
  // Row order is cluster_router_policy_order(): round_robin first,
  // prefix_affinity third — the pinned hit-rate ordering.
  EXPECT_GT(results[2].prefix_hit_rate, results[0].prefix_hit_rate);
  for (const ServingMetrics& metrics : results) {
    EXPECT_EQ(metrics.completed,
              static_cast<std::int64_t>(requests.size()));
  }
}

TEST(ClusterCanonicalStudyTest, DisaggregationWinsTtftAtTopCanonicalRate) {
  const models::TransformerConfig model =
      llama7b_baseline_scenario(1, ir::DType::kInt4).model;
  const ServingSweep sweep = cluster_disaggregation_sweep(model, /*seed=*/42);
  const std::vector<SweepCellResult> cells = run_serving_sweep(sweep);
  ASSERT_EQ(cells.size(), 2 * cluster_disagg_rates().size());
  // Rate-major, disaggregation {off, on} innermost: the last two cells
  // are the top rate's colocated/disaggregated pair — the pinned TTFT
  // ordering.
  const SweepCellResult& colocated = cells[cells.size() - 2];
  const SweepCellResult& disaggregated = cells[cells.size() - 1];
  ASSERT_EQ(colocated.disaggregated, 0);
  ASSERT_EQ(disaggregated.disaggregated, 1);
  EXPECT_EQ(colocated.arrival_rate, cluster_disagg_rates().back());
  EXPECT_LT(disaggregated.metrics.ttft.p99, colocated.metrics.ttft.p99);
  // The disaggregated cells really streamed KV over the fabric.
  const auto& counters = disaggregated.metrics.registry.counters();
  const auto it = counters.find("cluster.kv_transfer_count");
  ASSERT_NE(it, counters.end());
  EXPECT_GT(it->second, 0);
}

}  // namespace
}  // namespace cimtpu::serving
