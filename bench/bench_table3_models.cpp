// Reproduces Table III: configurations of the evaluated generative models,
// printed from the model zoo plus derived workload figures (weight bytes,
// KV-cache footprint) the experiments depend on.

#include "bench/bench_util.h"
#include "models/model_zoo.h"

using namespace cimtpu;


namespace {
void BM_model_zoo_lookup(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(models::model_by_name("gpt3-30b"));
  }
}
BENCHMARK(BM_model_zoo_lookup);
}  // namespace

int main(int argc, char** argv) {
  bench::banner("Table III", "configurations of evaluated generative models");

  AsciiTable table("Table III — Evaluated generative models");
  table.set_header({"Generative model", "# Layers", "# Heads", "d_model",
                    "d_ff", "params (stack)"});
  for (const char* name : {"gpt3-30b", "dit-xl/2"}) {
    const models::TransformerConfig config = models::model_by_name(name);
    table.add_row({config.name, cell_i(config.num_layers),
                   cell_i(config.num_heads), cell_i(config.d_model),
                   cell_i(config.d_ff),
                   cell_f(config.stack_parameters() / 1e9, 2) + " B"});
  }
  table.print();
  std::printf("  paper: GPT3-30B = 48 layers / 56 heads / 7168;"
              " DiT-XL/2 = 28 / 16 / 1152\n\n");

  AsciiTable derived("Derived workload footprints (INT8, batch 8)");
  derived.set_header(
      {"model", "layer weights", "stack weights", "KV/layer @1280"});
  for (const std::string& name : models::model_names()) {
    const models::TransformerConfig config = models::model_by_name(name);
    derived.add_row({config.name, format_bytes(config.layer_weight_bytes()),
                     format_bytes(config.stack_weight_bytes()),
                     format_bytes(models::kv_cache_bytes_per_layer(config, 8,
                                                                   1280))});
  }
  derived.print();

  return bench::run_microbenchmarks(argc, argv);
}
