// Ablation: model scale.  Sweeps the CIM advantage across model sizes
// (DiT-XL/2 ~0.7B, Llama2-13B, GPT3-30B, GPT3-175B) to show the paper's
// conclusions hold beyond the two evaluated models, and reports the
// capacity plan (minimum pipeline depth) for each.

#include "bench/bench_util.h"
#include "parallel/capacity.h"
#include "parallel/multi_chip.h"
#include "sim/workload_runner.h"

using namespace cimtpu;

namespace {

void BM_gpt175b_layer(benchmark::State& state) {
  arch::TpuChip chip(arch::cim_tpu_default());
  sim::Simulator simulator(chip);
  const auto model = models::gpt3_175b();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        sim::run_decode_layer(simulator, model, 8, 1280));
  }
}
BENCHMARK(BM_gpt175b_layer);

}  // namespace

int main(int argc, char** argv) {
  bench::banner("Ablation: model scale",
                "CIM benefit and capacity needs across model sizes");

  arch::TpuChip base_chip(arch::tpu_v4i_baseline());
  arch::TpuChip cim_chip(arch::cim_tpu_default());
  sim::Simulator base_sim(base_chip);
  sim::Simulator cim_sim(cim_chip);

  CsvWriter csv(bench::output_dir() + "/ablation_modelsize.csv");
  csv.write_header({"model", "params_b", "decode_delta", "decode_energy_ratio",
                    "min_chips"});

  AsciiTable table("Per-layer decode (batch 8, kv 1280) across models");
  table.set_header({"model", "params", "base ms/layer", "CIM delta",
                    "energy ratio", "min chips (1536 ctx)"});
  for (const std::string& name : models::model_names()) {
    const models::TransformerConfig model = models::model_by_name(name);
    if (model.vocab_size == 0) continue;  // decode needs a vocab (skip DiT)
    const auto base = sim::run_decode_layer(base_sim, model, 8, 1280);
    const auto cim = sim::run_decode_layer(cim_sim, model, 8, 1280);
    const auto plan = parallel::plan_capacity(arch::tpu_v4i_baseline(), model,
                                              8, 1536);
    const double params_b = model.stack_parameters() / 1e9;
    table.add_row(
        {model.name, cell_f(params_b, 1) + " B",
         cell_f(base.latency / ms, 3),
         format_percent_delta(cim.latency / base.latency - 1.0),
         format_ratio(base.mxu_energy() / cim.mxu_energy()),
         cell_i(plan.min_pipeline_stages)});
    csv.write_row({model.name, cell_f(params_b, 2),
                   cell_f(cim.latency / base.latency - 1.0, 4),
                   cell_f(base.mxu_energy() / cim.mxu_energy(), 3),
                   cell_i(plan.min_pipeline_stages)});
  }
  table.print();
  std::printf(
      "  the decode win and the ~13x energy ratio persist from 13B to 175B;\n"
      "  larger models simply need deeper pipelines (weights vs 8 GB HBM).\n");

  // DiT at two resolutions for the compute-bound end of the spectrum.
  AsciiTable dit_table("DiT-XL/2 block across resolutions");
  dit_table.set_header({"resolution", "tokens", "base latency", "CIM delta",
                        "energy ratio"});
  for (std::int64_t size : {256, 512}) {
    models::DitGeometry geometry = models::dit_geometry_512();
    geometry.image_size = size;
    const auto base =
        sim::run_dit_block(base_sim, models::dit_xl_2(), geometry, 8);
    const auto cim =
        sim::run_dit_block(cim_sim, models::dit_xl_2(), geometry, 8);
    dit_table.add_row({cell_i(size) + "x" + cell_i(size),
                       cell_i(geometry.tokens()), format_time(base.latency),
                       format_percent_delta(cim.latency / base.latency - 1.0),
                       format_ratio(base.mxu_energy() / cim.mxu_energy())});
  }
  dit_table.print();

  return bench::run_microbenchmarks(argc, argv);
}
