// Reproduces Fig. 1: the performance evolution of CIM-based designs.
// The figure is a survey scatter of published silicon; the data points are
// embedded here (from the paper's citations) and our modeled CIM-based TPU
// is placed among them — showing, as the paper argues, that a CIM-based
// TPU lands in the ">100 TOPS" regime occupied today only by GPUs/TPUs.

#include "arch/chip.h"
#include "arch/tpu_config.h"
#include "bench/bench_util.h"

using namespace cimtpu;

namespace {

struct SurveyPoint {
  const char* design;
  const char* venue;
  double tops;       // peak INT throughput
  double area_mm2;   // silicon area
  const char* node;
  const char* kind;  // macro / core / SoC / GPU / TPU
};

// Data from paper Fig. 1 and refs [4],[6],[7],[8],[9],[10],[11].
constexpr SurveyPoint kSurvey[] = {
    {"Twin-8T CIM macro [7]", "ISSCC'19", 0.0177, 0.003, "65nm", "CIM macro"},
    {"7nm FinFET CIM macro [8]", "ISSCC'20", 0.4551, 0.0032, "7nm", "CIM macro"},
    {"Reconfigurable DCIM [9]", "ISSCC'22", 1.35, 0.94, "28nm", "CIM core"},
    {"FP CIM processor [10]", "ISSCC'23", 5.52, 4.54, "28nm", "CIM core"},
    {"Metis AIPU core [11]", "ISSCC'24", 52.4, 6.5, "12nm", "CIM SoC"},
    {"NVIDIA A100 [4]", "2020", 624.0, 826.0, "7nm", "GPU"},
    {"Google TPUv4 [6]", "2023", 275.0, 780.0, "7nm", "TPU"},
};

}  // namespace


namespace {
void BM_survey_table_render(benchmark::State& state) {
  for (auto _ : state) {
    arch::TpuChip chip(arch::cim_tpu_default());
    benchmark::DoNotOptimize(chip.peak_ops_per_second() / 1e12);
  }
}
BENCHMARK(BM_survey_table_render);
}  // namespace

int main(int argc, char** argv) {
  bench::banner("Fig. 1", "evolution of computing performance of CIM designs");

  AsciiTable table("Fig. 1 — CIM design evolution (survey + this work)");
  table.set_header({"Design", "Venue", "Peak TOPS", "Area (mm2)", "Node",
                    "Class"});
  CsvWriter csv(bench::output_dir() + "/fig1_evolution.csv");
  csv.write_header({"design", "venue", "tops", "area_mm2", "node", "class"});
  for (const SurveyPoint& point : kSurvey) {
    table.add_row({point.design, point.venue, cell_f(point.tops, 3),
                   cell_f(point.area_mm2, 3), point.node, point.kind});
    csv.write_row({point.design, point.venue, cell_f(point.tops, 4),
                   cell_f(point.area_mm2, 4), point.node, point.kind});
  }
  table.add_separator();
  arch::TpuChip ours(arch::cim_tpu_default());
  const double tops = ours.peak_ops_per_second() / 1e12;
  const double area = ours.area_report().mxus;
  table.add_row({"CIM-based TPU (this work)", "DATE'25", cell_f(tops, 1),
                 cell_f(area, 1), "7nm", "CIM TPU"});
  csv.write_row({"cim-tpu (this work)", "DATE'25", cell_f(tops, 2),
                 cell_f(area, 2), "7nm", "CIM TPU"});
  table.print();
  std::printf("  the modeled CIM-based TPU reaches the >100 TOPS regime the"
              " paper targets\n");

  return bench::run_microbenchmarks(argc, argv);
}
