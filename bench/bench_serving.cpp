// Serving baseline bench: goodput and tail latency of continuous-batching
// request streams across arrival rates, pipeline depths, and — under a
// deliberately tight KV budget — preemption policy x chunked-prefill
// configurations.  This is the perf trajectory anchor for the serving
// subsystem: later scheduler or cost-cache optimizations move these
// numbers, and the per-policy rows let future PRs track policy-level perf
// trajectories.
//
// Both grids run on the deterministic parallel sweep driver
// (serving/sweep.h): points fan out over a worker pool with a shared
// step-cost cache, and the simulated metrics are bit-identical to serial
// execution.
//
// Emits BENCH_serving.json (schema_version 10; --out overrides the path):
//   "baseline" — goodput + p99 TTFT/TPOT across 3 arrival rates x 2 chip
//                counts, with per-row sim_wall_seconds and
//                steps_per_second (the simulator-performance trajectory),
//   "policies" — per-(policy x chunked on/off) rows under KV pressure with
//                preemption split, swap traffic, and chunked-step counts,
//   "fairness" — the multi-tenant admission study (FIFO vs weighted fair
//                queueing, 2 tenants at 3:1 weights over a fixed overload
//                window) with per-tenant goodput rows and the
//                weight-normalized Jain fairness index,
//   "prefix_cache" — the paged-KV prefix-caching study on the
//                prefix-heavy chatbot stream (shared system prompts):
//                caching off vs on at block 16 plus block 64, with prefix
//                hit rate, blocks saved, CoW copies, and the
//                internal-fragmentation gauge per row,
//   "observability" — one TRACED re-run of the prefix-cache
//                block-16 point (event counts by type, the trace-vs-
//                metrics TTFT/e2e reconciliation, the time-series samples,
//                and the full end-of-run metrics registry including
//                cost-cache and KV-manager stats).  The traced run is a
//                separate point; every pinned row above runs untraced,
//   "slo_frontier" — the SLO-aware scheduling study (arrival
//                rate x {fifo, edf} over the canonical deadline-carrying
//                chat stream, 30 s overload window) with per-cell SLO
//                attainment, deadline-meeting goodput, and shed counts —
//                the grid where EDF admission control's shedding beats
//                head-of-line FIFO under overload,
//   "resilience" — NEW in v8: the fault-injection study (the canonical
//                fault storm at fault-rate scales x recovery on/off via
//                the sweep's resilience axes) with per-cell availability,
//                MTTR, retries, fault sheds, wasted recompute tokens, and
//                recovery-policy goodput — the frontier where backoff
//                re-admission + host-shadow KV restore strictly beat
//                dropping every fault-hit request,
//   "cluster"  — NEW in v9: the cluster-scale serving study
//                (serving/cluster.h).  "router_rows" compares the four
//                built-in router policies over 4 single-chip replicas on
//                the 16-prefix chatbot stream — the grid where
//                prefix_affinity's cluster-wide hit rate beats
//                round_robin's (scattering every prefix family across
//                all four caches cools each one).  "disaggregation" runs
//                arrival rate x {colocated, disaggregated} over the same
//                4 replicas on zipf-chat traffic: the disaggregated cells
//                dedicate 1 replica to prefill and stream finished KV to
//                the decode replicas block-by-block over the modeled ICI
//                fabric, and at the top rate their p99 TTFT beats the
//                colocated cells' (first tokens no longer queue behind
//                resident decode batches) — both orderings are pinned,
//   "speed"    — NEW in v10: the scheduler hot-path microbenchmark rows
//                (bench/scheduler_hotpath.h; bench_scheduler_hotpath runs
//                the same regimes standalone).  next_step + cost_step
//                throughput in isolation for the decode-heavy,
//                prefill-heavy, and mixed regimes: step/token counts and
//                summed simulated seconds are deterministic, wall_seconds
//                and steps_per_second measure the machine,
//   "sweep"    — wall-clock of the baseline + policy grids and the worker
//                count, the headline number for hot-path optimizations
//                (the CI perf-smoke job gates steps_per_second against
//                the committed repo-root baseline copy of this file).
//
// Flags (stripped before google-benchmark sees argv):
//   --out <path>        JSON output path (default BENCH_serving.json)
//   --trace-dir <path>  also write the traced run's Perfetto/JSONL files

#include <chrono>
#include <cstring>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "bench/scheduler_hotpath.h"
#include "serving/sweep.h"
#include "serving/trace.h"
#include "serving/traffic_profiles.h"

using namespace cimtpu;

namespace {

serving::RequestStreamConfig stream_config(double rate) {
  return serving::zipf_chat_stream(/*seed=*/42, /*num_requests=*/2000, rate);
}

serving::ServingScenario scenario_for(int chips) {
  return serving::llama7b_baseline_scenario(chips, ir::DType::kInt4);
}

void BM_serving_small_stream(benchmark::State& state) {
  const auto stream = [] {
    serving::RequestStreamConfig config = stream_config(20.0);
    config.num_requests = 200;
    return config;
  }();
  const std::vector<serving::Request> requests =
      serving::generate_requests(stream);
  for (auto _ : state) {
    benchmark::DoNotOptimize(serving::run_serving(scenario_for(1), requests));
  }
}
BENCHMARK(BM_serving_small_stream);

}  // namespace

int main(int argc, char** argv) {
  bench::banner("Serving", "continuous-batching goodput and tail latency");

  // Custom flags, stripped from argv before google-benchmark parses it.
  // Unknown "--" flags are rejected HERE, loudly: silently forwarding a
  // typo ("--trace-dri") to google-benchmark used to discard it, so the
  // run looked fine but never wrote the files the caller asked for.  Only
  // google-benchmark's own "--benchmark*" flags pass through.
  std::string out_path = "BENCH_serving.json";
  std::string trace_dir;
  int kept = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else if (std::strcmp(argv[i], "--trace-dir") == 0 && i + 1 < argc) {
      trace_dir = argv[++i];
    } else if (std::strncmp(argv[i], "--benchmark", 11) == 0) {
      argv[kept++] = argv[i];
    } else if (std::strncmp(argv[i], "--", 2) == 0) {
      std::fprintf(stderr,
                   "bench_serving: unknown flag '%s' (expected --out <path>, "
                   "--trace-dir <path>, or --benchmark* flags)\n",
                   argv[i]);
      return 1;
    } else {
      argv[kept++] = argv[i];
    }
  }
  argc = kept;

  const std::vector<double> rates = {5.0, 10.0, 20.0};
  const std::vector<int> chip_counts = {1, 4};
  // One shared cost cache across BOTH grids: they run the same chip /
  // model / bucket, so the policy sweep starts from the baseline sweep's
  // warm store instead of re-simulating every shape.
  serving::SharedStepCostCache shared_costs;
  serving::SweepOptions sweep_options;  // threads from env / hardware
  sweep_options.shared_cache = &shared_costs;
  const auto sweep_start = std::chrono::steady_clock::now();

  // --- Baseline grid: arrival rate x chips via the declarative sweep ---------
  serving::ServingSweep baseline_sweep;
  baseline_sweep.arrival_rates = rates;
  baseline_sweep.models = {scenario_for(1).model};
  baseline_sweep.chip_counts = chip_counts;
  baseline_sweep.policies = {serving::EvictionPolicy::kPreemptNewest};
  baseline_sweep.base = scenario_for(1);
  baseline_sweep.stream = stream_config(/*rate=*/rates.front());
  const std::vector<serving::SweepCellResult> baseline =
      serving::run_serving_sweep(baseline_sweep, sweep_options);

  CsvWriter csv(bench::output_dir() + "/serving.csv");
  csv.write_header({"arrival_rate", "chips", "goodput_tokens_per_s",
                    "ttft_p99_s", "tpot_p99_s", "energy_per_token_j",
                    "mxu_utilization", "preemptions", "steps_per_second",
                    "sim_wall_s"});

  AsciiTable table("Serving baseline — llama2-7b INT4, 2000-request Poisson streams");
  table.set_header({"rate (req/s)", "chips", "tokens/s", "TTFT p99",
                    "TPOT p99", "J/token", "MXU util"});

  std::ofstream json(out_path);
  json << "{\n  \"bench\": \"serving\",\n  \"schema_version\": 10,\n"
       << "  \"model\": \"llama2-7b\",\n"
       << "  \"dtype\": \"int4\",\n  \"requests\": 2000,\n  \"seed\": 42,\n"
       << "  \"baseline\": [\n";
  bool first = true;
  // Rows carry their own grid coordinates — no loop-order convention to
  // keep in sync with the expansion.
  for (const serving::SweepCellResult& result : baseline) {
    const double rate = result.arrival_rate;
    const int chips = result.chips;
    const serving::ServingMetrics& metrics = result.metrics;
    csv.write_row({cell_f(rate, 1), cell_i(chips),
                   cell_f(metrics.goodput_tokens_per_second, 3),
                   cell_f(metrics.ttft.p99, 6), cell_f(metrics.tpot.p99, 6),
                   cell_f(metrics.energy_per_token, 9),
                   cell_f(metrics.mxu_utilization, 4),
                   cell_i(metrics.preemptions),
                   cell_f(metrics.steps_per_second, 1),
                   cell_f(metrics.sim_wall_seconds, 6)});
    table.add_row({cell_f(rate, 1), cell_i(chips),
                   cell_f(metrics.goodput_tokens_per_second, 1),
                   format_time(metrics.ttft.p99),
                   format_time(metrics.tpot.p99),
                   format_energy(metrics.energy_per_token),
                   cell_f(100.0 * metrics.mxu_utilization, 1) + "%"});
    if (!first) json << ",\n";
    first = false;
    json << "    {\"arrival_rate\": " << rate << ", \"chips\": " << chips
         << ", \"goodput_tokens_per_s\": "
         << metrics.goodput_tokens_per_second
         << ", \"ttft_p99_s\": " << metrics.ttft.p99
         << ", \"tpot_p99_s\": " << metrics.tpot.p99
         << ", \"energy_per_token_j\": " << metrics.energy_per_token
         << ", \"cost_cache_hits\": " << metrics.cost_cache_hits
         << ", \"cost_cache_misses\": " << metrics.cost_cache_misses
         << ", \"cost_cache_entries\": " << metrics.cost_cache_entries
         << ", \"cost_cache_occupancy\": " << metrics.cost_cache_occupancy
         << ", \"sim_wall_seconds\": " << metrics.sim_wall_seconds
         << ", \"steps_per_second\": " << metrics.steps_per_second << "}";
  }
  json << "\n  ],\n";

  // --- Policy x chunked-prefill sweep under KV pressure ----------------------
  // 8000-token device budget (vs ~10x that from HBM headroom): preemption
  // policies actually fire, so their costs are visible in the trajectory.
  const std::vector<serving::Request> pressured_requests =
      serving::generate_requests(serving::zipf_chat_stream(
          /*seed=*/42, /*num_requests=*/2000, /*arrival_rate=*/20.0,
          /*priority_classes=*/3));
  const std::vector<serving::SweepPoint> policy_points =
      serving::pressured_policy_grid_points(scenario_for(1).model,
                                            &pressured_requests,
                                            /*kv_budget_tokens=*/8000);
  const std::vector<serving::ServingMetrics> policy_results =
      serving::run_sweep(policy_points, sweep_options);

  AsciiTable policy_table(
      "Preemption policy x chunked prefill — llama2-7b INT4, 8000-token KV "
      "budget, 20 req/s");
  policy_table.set_header({"policy", "chunk", "tokens/s", "TTFT p99",
                           "TPOT p99", "preempt", "swapped", "swap GiB",
                           "chunk steps"});

  json << "  \"policies\": [\n";
  first = true;
  // Coordinates come from each point's own scenario, not loop order.
  for (std::size_t i = 0; i < policy_points.size(); ++i) {
    const serving::ServingMetrics& metrics = policy_results[i];
    const serving::ServingScenario& scenario = policy_points[i].scenario;
    const std::int64_t chunk = scenario.scheduler.prefill_chunk_tokens;
    const std::string name = serving::eviction_policy_name(scenario.eviction);
    policy_table.add_row(
        {name, chunk == 0 ? "off" : cell_i(chunk),
         cell_f(metrics.goodput_tokens_per_second, 1),
         format_time(metrics.ttft.p99), format_time(metrics.tpot.p99),
         cell_i(metrics.counters.preemptions_recompute),
         cell_i(metrics.counters.preemptions_swap),
         cell_f(metrics.counters.total_swap_bytes() / GiB, 2),
         cell_i(metrics.counters.chunked_prefill_steps)});
    if (!first) json << ",\n";
    first = false;
    json << "    {\"policy\": \"" << name << "\", \"chunk_tokens\": " << chunk
         << ", \"kv_budget_tokens\": 8000"
         << ", \"goodput_tokens_per_s\": "
         << metrics.goodput_tokens_per_second
         << ", \"ttft_p99_s\": " << metrics.ttft.p99
         << ", \"tpot_p99_s\": " << metrics.tpot.p99
         << ", \"preemptions_recompute\": "
         << metrics.counters.preemptions_recompute
         << ", \"preemptions_swap\": " << metrics.counters.preemptions_swap
         << ", \"swap_bytes\": " << metrics.counters.total_swap_bytes()
         << ", \"chunked_prefill_steps\": "
         << metrics.counters.chunked_prefill_steps
         << ", \"sim_wall_seconds\": " << metrics.sim_wall_seconds
         << ", \"steps_per_second\": " << metrics.steps_per_second << "}";
  }
  json << "\n  ],\n";

  // Whole-grid wall clock captured HERE — before the fairness grid — so
  // the sweep block's wall/steps_per_second keep the schema-v3 meaning
  // (baseline + policy grids only) and stay comparable across the v3 -> v4
  // boundary.  The fairness grid's cost reports inside its own rows'
  // sim_wall_seconds.
  const double sweep_wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    sweep_start)
          .count();

  // --- Multi-tenant fairness: FIFO vs WFQ at 3:1 weights ---------------------
  // Fixed 30-simulated-second overload window (see
  // multi_tenant_fairness_scenario): both tenants stay backlogged, so the
  // per-tenant goodput ratio measures the admission policy's share
  // enforcement.  WFQ must land near the 3:1 weights with a
  // weight-normalized Jain index near 1; FIFO tracks the ~uniform traffic
  // mix instead.
  const std::vector<serving::Request> tenant_requests =
      serving::generate_requests(serving::multi_tenant_pressure_stream(
          /*seed=*/42, /*num_requests=*/400, /*arrival_rate=*/50.0,
          /*num_tenants=*/2));
  // The CANONICAL fairness grid (traffic_profiles.h): the same fifo/wfq
  // points serving_traffic demos, at the bench model.
  const std::vector<serving::SweepPoint> fairness_points =
      serving::multi_tenant_fairness_points(scenario_for(1).model,
                                            &tenant_requests);
  const std::vector<serving::ServingMetrics> fairness_results =
      serving::run_sweep(fairness_points, sweep_options);

  AsciiTable fairness_table(
      "Multi-tenant admission — 2 tenants, weights 3:1, 30 s overload "
      "window");
  fairness_table.set_header({"admission", "tenant", "weight", "done",
                             "tokens", "TTFT p99", "tokens/s", "share",
                             "jain"});
  // Metadata derived from the canonical constants (traffic_profiles.h) so
  // the JSON always describes the grid the rows actually ran.
  json << "  \"fairness\": {\"tenants\": 2, \"weights\": [";
  const std::vector<double>& fairness_weights =
      serving::multi_tenant_fairness_weights();
  for (std::size_t w = 0; w < fairness_weights.size(); ++w) {
    if (w > 0) json << ", ";
    json << fairness_weights[w];
  }
  json << "], \"horizon_s\": " << serving::kMultiTenantFairnessHorizon
       << ", \"requests\": " << tenant_requests.size() << ", \"rows\": [\n";
  first = true;
  for (std::size_t i = 0; i < fairness_points.size(); ++i) {
    const serving::ServingMetrics& metrics = fairness_results[i];
    const std::string admission =
        fairness_points[i].scenario.scheduler.admission.policy;
    if (i > 0) fairness_table.add_separator();
    double total_goodput = 0;
    for (const serving::TenantMetrics& tenant : metrics.tenants) {
      total_goodput += tenant.goodput_tokens_per_second;
    }
    if (!first) json << ",\n";
    first = false;
    json << "    {\"admission\": \"" << admission
         << "\", \"jain_fairness_index\": " << metrics.jain_fairness
         << ", \"completed\": " << metrics.completed
         << ", \"per_tenant\": [";
    for (std::size_t t = 0; t < metrics.tenants.size(); ++t) {
      const serving::TenantMetrics& tenant = metrics.tenants[t];
      fairness_table.add_row(
          {admission, cell_i(tenant.tenant_id), cell_f(tenant.weight, 1),
           cell_i(tenant.completed), cell_i(tenant.generated_tokens),
           format_time(tenant.ttft.p99),
           cell_f(tenant.goodput_tokens_per_second, 1),
           total_goodput > 0
               ? cell_f(100.0 * tenant.goodput_tokens_per_second /
                            total_goodput,
                        1) + "%"
               : "n/a",
           cell_f(metrics.jain_fairness, 4)});
      if (t > 0) json << ", ";
      json << "{\"tenant\": " << tenant.tenant_id
           << ", \"weight\": " << tenant.weight
           << ", \"completed\": " << tenant.completed
           << ", \"generated_tokens\": " << tenant.generated_tokens
           << ", \"ttft_p99_s\": " << tenant.ttft.p99
           << ", \"goodput_tokens_per_s\": "
           << tenant.goodput_tokens_per_second << "}";
    }
    json << "]}";
  }
  json << "\n  ]},\n";

  // --- Paged-KV prefix caching on the prefix-heavy chatbot stream ------------
  // Shared 1000-token system prompts from a 4-prefix pool under a tight
  // device budget: with caching ON, repeat prefixes map cached blocks by
  // reference, skip their prefill, and free capacity — the hit rate must
  // clear 0.5 and goodput must strictly beat the caching-off row.  The
  // off-block-boundary prefix length keeps the copy-on-write tail hot.
  const std::vector<serving::Request> prefix_requests =
      serving::generate_requests(serving::prefix_chatbot_stream(
          /*seed=*/42, /*num_requests=*/400, /*arrival_rate=*/30.0));
  const std::vector<serving::SweepPoint> prefix_points =
      serving::prefix_cache_grid_points(scenario_for(1).model,
                                        &prefix_requests);
  const std::vector<serving::ServingMetrics> prefix_results =
      serving::run_sweep(prefix_points, sweep_options);

  AsciiTable prefix_table(
      "Paged KV prefix caching — " + cell_i(serving::kPrefixChatbotPool) +
      " shared " + cell_i(serving::kPrefixChatbotPrefixLen) +
      "-token system prompts, 20000-token KV budget");
  prefix_table.set_header({"block", "prefix cache", "tokens/s", "TTFT p99",
                           "hit rate", "blocks saved", "CoW", "frag",
                           "preempt"});
  json << "  \"prefix_cache\": {\"prefix_pool\": "
       << serving::kPrefixChatbotPool
       << ", \"prefix_len_tokens\": " << serving::kPrefixChatbotPrefixLen
       << ", \"kv_budget_tokens\": 20000"
       << ", \"requests\": " << prefix_requests.size() << ", \"rows\": [\n";
  first = true;
  for (std::size_t i = 0; i < prefix_points.size(); ++i) {
    const serving::ServingMetrics& metrics = prefix_results[i];
    const serving::SchedulerConfig& sched =
        prefix_points[i].scenario.scheduler;
    prefix_table.add_row(
        {cell_i(sched.kv_block_tokens),
         sched.enable_prefix_cache ? "on" : "off",
         cell_f(metrics.goodput_tokens_per_second, 1),
         format_time(metrics.ttft.p99), cell_f(metrics.prefix_hit_rate, 3),
         cell_i(metrics.counters.prefix_shared_blocks),
         cell_i(metrics.counters.prefix_cow_blocks),
         cell_f(metrics.kv_internal_fragmentation, 4),
         cell_i(metrics.preemptions)});
    if (!first) json << ",\n";
    first = false;
    json << "    {\"kv_block_tokens\": " << sched.kv_block_tokens
         << ", \"prefix_caching\": "
         << (sched.enable_prefix_cache ? "true" : "false")
         << ", \"goodput_tokens_per_s\": "
         << metrics.goodput_tokens_per_second
         << ", \"ttft_p99_s\": " << metrics.ttft.p99
         << ", \"tpot_p99_s\": " << metrics.tpot.p99
         << ", \"prefix_hit_rate\": " << metrics.prefix_hit_rate
         << ", \"prefix_hit_tokens\": "
         << metrics.counters.prefix_hit_tokens
         << ", \"blocks_saved\": " << metrics.counters.prefix_shared_blocks
         << ", \"cow_blocks\": " << metrics.counters.prefix_cow_blocks
         << ", \"internal_fragmentation\": "
         << metrics.kv_internal_fragmentation
         << ", \"preemptions\": " << metrics.preemptions
         << ", \"sim_wall_seconds\": " << metrics.sim_wall_seconds
         << ", \"steps_per_second\": " << metrics.steps_per_second << "}";
  }
  json << "\n  ]},\n";

  // --- Observability: one traced re-run of the prefix block-16 point ---------
  // Tracing is contractually metrics-neutral, so this re-run's numbers
  // equal the pinned prefix-cache row; the block reports what ONLY the
  // trace can see (event stream, time series, registry) plus the
  // trace-vs-metrics reconciliation the acceptance gate checks.
  {
    serving::ServingScenario traced = prefix_points[1].scenario;
    traced.trace.enabled = true;
    traced.trace.sample_interval = 0.5;
    traced.trace.label = "bench_prefix_block16";
    traced.trace.dir = trace_dir;  // empty: in-memory only
    traced.trace.write_jsonl = true;
    serving::ServingTrace trace;
    const serving::ServingMetrics metrics =
        serving::run_serving(traced, prefix_requests, &shared_costs, &trace);

    std::map<std::string, std::int64_t> event_counts;
    for (const serving::TraceEvent& event : trace.events()) {
      event_counts[serving::trace_event_type_name(event.type)] += 1;
    }
    std::vector<double> ttft, e2e;
    for (const serving::RequestTimeline& timeline :
         serving::trace_request_timelines(trace.events())) {
      if (timeline.first_token >= 0) {
        ttft.push_back(timeline.first_token - timeline.arrival);
      }
      if (timeline.completion >= 0) {
        e2e.push_back(timeline.completion - timeline.arrival);
      }
    }
    const serving::LatencySummary trace_ttft =
        serving::summarize_latencies(ttft);
    const serving::LatencySummary trace_e2e = serving::summarize_latencies(e2e);
    const bool ttft_matches = trace_ttft.count == metrics.ttft.count &&
                              trace_ttft.mean == metrics.ttft.mean &&
                              trace_ttft.p50 == metrics.ttft.p50 &&
                              trace_ttft.p99 == metrics.ttft.p99 &&
                              trace_ttft.max == metrics.ttft.max;
    const bool e2e_matches = trace_e2e.count == metrics.e2e.count &&
                             trace_e2e.mean == metrics.e2e.mean &&
                             trace_e2e.p50 == metrics.e2e.p50 &&
                             trace_e2e.p99 == metrics.e2e.p99 &&
                             trace_e2e.max == metrics.e2e.max;

    json << "  \"observability\": {\"sample_interval_s\": "
         << traced.trace.sample_interval << ", \"events\": {";
    bool first_count = true;
    for (const auto& [name, count] : event_counts) {
      if (!first_count) json << ", ";
      first_count = false;
      json << '"' << name << "\": " << count;
    }
    json << "}, \"reconciliation\": {\"ttft_matches\": "
         << (ttft_matches ? "true" : "false")
         << ", \"e2e_matches\": " << (e2e_matches ? "true" : "false")
         << ", \"requests_traced\": "
         << serving::trace_request_timelines(trace.events()).size()
         << "},\n  \"timeseries\": "
         << serving::time_samples_json(metrics.timeseries)
         << ",\n  \"registry\": " << metrics.registry.to_json() << "},\n";

    const std::string trace_note =
        trace_dir.empty()
            ? std::string()
            : " -> " + trace_dir + "/bench_prefix_block16.trace.json";
    std::printf("  observability: %zu events, ttft %s, e2e %s, %zu samples%s\n",
                trace.events().size(), ttft_matches ? "reconciled" : "MISMATCH",
                e2e_matches ? "reconciled" : "MISMATCH",
                metrics.timeseries.size(), trace_note.c_str());
  }

  // --- SLO frontier: arrival rate x {fifo, edf} with deadlines ---------------
  // The canonical grid (traffic_profiles.h): deadline-carrying chat
  // traffic over a 30-simulated-second overload window.  FIFO serves
  // head-of-line and lets queueing delay blow every TTFT deadline under
  // overload; EDF sheds provably-late requests instead of spending
  // prefill on them, so its SLO attainment must strictly win at the
  // highest rate — the acceptance gate pins that ordering.
  const serving::ServingSweep slo_sweep =
      serving::slo_frontier_sweep(scenario_for(1).model, /*seed=*/42);
  const std::vector<serving::SweepCellResult> slo_cells =
      serving::run_serving_sweep(slo_sweep, sweep_options);

  AsciiTable slo_table(
      "SLO frontier — TTFT " + cell_f(serving::kSloTtftDeadline, 1) +
      " s / TPOT " + cell_f(serving::kSloTpotDeadline, 2) + " s deadlines, " +
      cell_f(serving::kSloFrontierHorizon, 0) + " s window");
  slo_table.set_header({"rate (req/s)", "admission", "attainment",
                        "SLO tokens/s", "tokens/s", "done", "shed dl",
                        "shed hz", "TTFT p50"});
  json << "  \"slo_frontier\": {\"ttft_deadline_s\": "
       << serving::kSloTtftDeadline
       << ", \"tpot_deadline_s\": " << serving::kSloTpotDeadline
       << ", \"horizon_s\": " << serving::kSloFrontierHorizon
       << ", \"requests\": " << serving::kSloFrontierRequests
       << ", \"rows\": [\n";
  first = true;
  for (const serving::SweepCellResult& cell : slo_cells) {
    const serving::ServingMetrics& metrics = cell.metrics;
    // Every arrived request either completed or was shed (deadline or
    // horizon), so the arrived count falls out of the counters.
    const std::int64_t arrived =
        metrics.completed + metrics.counters.total_shed();
    slo_table.add_row(
        {cell_f(cell.arrival_rate, 1), cell.admission,
         cell_f(metrics.slo_attainment, 4),
         cell_f(metrics.slo_goodput_tokens_per_second, 1),
         cell_f(metrics.goodput_tokens_per_second, 1),
         cell_i(metrics.completed), cell_i(metrics.counters.shed_deadline),
         cell_i(metrics.counters.shed_horizon), format_time(metrics.ttft.p50)});
    if (!first) json << ",\n";
    first = false;
    json << "    {\"arrival_rate\": " << cell.arrival_rate
         << ", \"admission\": \"" << cell.admission
         << "\", \"arrived\": " << arrived
         << ", \"completed\": " << metrics.completed
         << ", \"shed_deadline\": " << metrics.counters.shed_deadline
         << ", \"shed_horizon\": " << metrics.counters.shed_horizon
         << ", \"slo_met\": " << metrics.slo_met
         << ", \"slo_attainment\": " << metrics.slo_attainment
         << ", \"slo_goodput_tokens_per_s\": "
         << metrics.slo_goodput_tokens_per_second
         << ", \"goodput_tokens_per_s\": "
         << metrics.goodput_tokens_per_second
         << ", \"ttft_p50_s\": " << metrics.ttft.p50
         << ", \"ttft_p99_s\": " << metrics.ttft.p99
         << ", \"tpot_p99_s\": " << metrics.tpot.p99
         << ", \"sim_wall_seconds\": " << metrics.sim_wall_seconds
         << ", \"steps_per_second\": " << metrics.steps_per_second << "}";
  }
  json << "\n  ]},\n";

  // --- Resilience: fault storm x recovery policy (schema v8) -----------------
  // The canonical fault storm (traffic_profiles.h) over the sweep's
  // resilience axes: fault-rate scales {0.5, 1} x recovery {off, on}.
  // Recovery (backoff re-admission + host-shadow KV restore + graceful
  // degradation) must strictly beat recovery-off on BOTH availability and
  // SLO goodput at the full storm — the pinned frontier the resilience
  // test gates.
  serving::ServingSweep storm_sweep;
  storm_sweep.arrival_rates = {10.0};
  storm_sweep.models = {scenario_for(1).model};
  storm_sweep.chip_counts = {1};
  storm_sweep.policies = {serving::EvictionPolicy::kPreemptNewest};
  storm_sweep.admission_policies = {"edf"};
  storm_sweep.fault_rates = {0.5, 1.0};
  storm_sweep.fault_recovery = {0, 1};
  storm_sweep.base =
      serving::fault_storm_scenario(scenario_for(1).model.dtype,
                                    /*recovery=*/true);
  storm_sweep.base.model = scenario_for(1).model;
  storm_sweep.base.kv_budget_override =
      serving::KvCacheManager::token_bytes(scenario_for(1).model) * 4000.0;
  storm_sweep.stream = serving::slo_chat_stream(
      /*seed=*/42, serving::kSloFrontierRequests, /*arrival_rate=*/1.0);
  const std::vector<serving::SweepCellResult> storm_cells =
      serving::run_serving_sweep(storm_sweep, sweep_options);

  AsciiTable storm_table(
      "Resilience — fault storm (seed " + cell_i(serving::kFaultStormSeed) +
      "), " + cell_f(serving::kFaultStormHorizon, 0) +
      " s window, recovery off vs on");
  storm_table.set_header({"fault rate", "recovery", "avail", "MTTR",
                          "SLO tokens/s", "done", "retries", "shed fault",
                          "wasted tok", "restores"});
  json << "  \"resilience\": {\"fault_seed\": " << serving::kFaultStormSeed
       << ", \"horizon_s\": " << serving::kFaultStormHorizon
       << ", \"requests\": " << serving::kSloFrontierRequests
       << ", \"rows\": [\n";
  first = true;
  for (const serving::SweepCellResult& cell : storm_cells) {
    const serving::ServingMetrics& metrics = cell.metrics;
    const bool recovery = cell.fault_recovery > 0;
    storm_table.add_row(
        {cell_f(cell.fault_rate, 2), recovery ? "on" : "off",
         cell_f(metrics.availability, 4), format_time(metrics.mttr_seconds),
         cell_f(metrics.slo_goodput_tokens_per_second, 1),
         cell_i(metrics.completed), cell_i(metrics.retries_total),
         cell_i(metrics.counters.shed_fault),
         cell_i(metrics.wasted_recompute_tokens),
         cell_i(metrics.fault.host_restores)});
    if (!first) json << ",\n";
    first = false;
    json << "    {\"fault_rate\": " << cell.fault_rate
         << ", \"recovery\": " << (recovery ? "true" : "false")
         << ", \"availability\": " << metrics.availability
         << ", \"mttr_s\": " << metrics.mttr_seconds
         << ", \"retries\": " << metrics.retries_total
         << ", \"shed_fault\": " << metrics.counters.shed_fault
         << ", \"wasted_recompute_tokens\": "
         << metrics.wasted_recompute_tokens
         << ", \"stalls\": " << metrics.fault.stalls
         << ", \"kv_losses\": " << metrics.fault.kv_losses
         << ", \"device_failures\": " << metrics.fault.device_failures
         << ", \"host_restores\": " << metrics.fault.host_restores
         << ", \"degrade_enters\": " << metrics.fault.degrade_enters
         << ", \"completed\": " << metrics.completed
         << ", \"slo_goodput_tokens_per_s\": "
         << metrics.slo_goodput_tokens_per_second
         << ", \"goodput_tokens_per_s\": "
         << metrics.goodput_tokens_per_second
         << ", \"sim_wall_seconds\": " << metrics.sim_wall_seconds
         << ", \"steps_per_second\": " << metrics.steps_per_second << "}";
  }
  json << "\n  ]},\n";

  // --- Cluster: router policies + disaggregation (schema v9) -----------------
  // Both canonical grids (traffic_profiles.h).  Router study: the four
  // built-in policies over 4 replicas on the 16-prefix chatbot stream —
  // prefix_affinity's cluster-wide hit rate must beat round_robin's.
  // Disaggregation study: rate x {colocated, disaggregated}; at the top
  // rate the disaggregated p99 TTFT must beat colocated.  Both orderings
  // are pinned by the golden test.
  const std::vector<serving::Request> cluster_requests =
      serving::generate_requests(serving::cluster_chatbot_stream(/*seed=*/42));
  const std::vector<serving::SweepPoint> router_points =
      serving::cluster_router_grid_points(scenario_for(1).model,
                                          &cluster_requests);
  const std::vector<serving::ServingMetrics> router_results =
      serving::run_sweep(router_points, sweep_options);

  AsciiTable router_table(
      "Cluster router — " + cell_i(serving::kClusterReplicas) +
      " replicas, " + cell_i(serving::kClusterPrefixPool) +
      "-prefix chatbot stream, " + cell_i(serving::kClusterTenants) +
      " tenants");
  router_table.set_header({"router", "tokens/s", "TTFT p99", "hit rate",
                           "jain", "done"});
  json << "  \"cluster\": {\"replicas\": " << serving::kClusterReplicas
       << ", \"prefix_pool\": " << serving::kClusterPrefixPool
       << ", \"tenants\": " << serving::kClusterTenants
       << ", \"router_requests\": " << cluster_requests.size()
       << ", \"router_rows\": [\n";
  first = true;
  for (std::size_t i = 0; i < router_points.size(); ++i) {
    const serving::ServingMetrics& metrics = router_results[i];
    const std::string& policy = router_points[i].router_policy;
    router_table.add_row({policy,
                          cell_f(metrics.goodput_tokens_per_second, 1),
                          format_time(metrics.ttft.p99),
                          cell_f(metrics.prefix_hit_rate, 3),
                          cell_f(metrics.jain_fairness, 4),
                          cell_i(metrics.completed)});
    if (!first) json << ",\n";
    first = false;
    json << "    {\"router\": \"" << policy
         << "\", \"goodput_tokens_per_s\": "
         << metrics.goodput_tokens_per_second
         << ", \"ttft_p99_s\": " << metrics.ttft.p99
         << ", \"tpot_p99_s\": " << metrics.tpot.p99
         << ", \"prefix_hit_rate\": " << metrics.prefix_hit_rate
         << ", \"jain_across_replicas\": " << metrics.jain_fairness
         << ", \"completed\": " << metrics.completed
         << ", \"sim_wall_seconds\": " << metrics.sim_wall_seconds
         << ", \"steps_per_second\": " << metrics.steps_per_second << "}";
  }
  json << "\n  ],\n";

  const serving::ServingSweep disagg_sweep =
      serving::cluster_disaggregation_sweep(scenario_for(1).model, /*seed=*/42);
  const std::vector<serving::SweepCellResult> disagg_cells =
      serving::run_serving_sweep(disagg_sweep, sweep_options);

  AsciiTable disagg_table(
      "Prefill/decode disaggregation — " +
      cell_i(serving::kClusterReplicas) + " replicas (" +
      cell_i(serving::kClusterPrefillReplicas) +
      " prefill when disaggregated), zipf-chat traffic");
  disagg_table.set_header({"rate (req/s)", "mode", "TTFT p99", "TTFT p50",
                           "tokens/s", "done", "KV moved", "xfer s"});
  json << "  \"disaggregation\": {\"prefill_replicas\": "
       << serving::kClusterPrefillReplicas
       << ", \"requests\": " << serving::kClusterDisaggRequests
       << ", \"rows\": [\n";
  first = true;
  for (const serving::SweepCellResult& cell : disagg_cells) {
    const serving::ServingMetrics& metrics = cell.metrics;
    const bool disagg = cell.disaggregated > 0;
    // Transfer accounting lives in the flattened cluster registry (zero
    // and absent when colocated).
    const auto& counters = metrics.registry.counters();
    const auto counter_or_zero = [&counters](const char* name) {
      const auto it = counters.find(name);
      return it == counters.end() ? std::int64_t{0} : it->second;
    };
    const auto& gauges = metrics.registry.gauges();
    const auto transfer_it = gauges.find("cluster.kv_transfer_seconds");
    const double transfer_seconds =
        transfer_it == gauges.end() ? 0.0 : transfer_it->second;
    const std::int64_t transfer_bytes =
        counter_or_zero("cluster.kv_transfer_bytes");
    disagg_table.add_row(
        {cell_f(cell.arrival_rate, 1), disagg ? "disagg" : "colocated",
         format_time(metrics.ttft.p99), format_time(metrics.ttft.p50),
         cell_f(metrics.goodput_tokens_per_second, 1),
         cell_i(metrics.completed),
         cell_f(static_cast<double>(transfer_bytes) / GiB, 2) + " GiB",
         cell_f(transfer_seconds, 3)});
    if (!first) json << ",\n";
    first = false;
    json << "    {\"arrival_rate\": " << cell.arrival_rate
         << ", \"disaggregated\": " << (disagg ? "true" : "false")
         << ", \"ttft_p99_s\": " << metrics.ttft.p99
         << ", \"ttft_p50_s\": " << metrics.ttft.p50
         << ", \"tpot_p99_s\": " << metrics.tpot.p99
         << ", \"goodput_tokens_per_s\": "
         << metrics.goodput_tokens_per_second
         << ", \"completed\": " << metrics.completed
         << ", \"kv_transfer_count\": "
         << counter_or_zero("cluster.kv_transfer_count")
         << ", \"kv_transfer_blocks\": "
         << counter_or_zero("cluster.kv_transfer_blocks")
         << ", \"kv_transfer_bytes\": " << transfer_bytes
         << ", \"kv_transfer_seconds\": " << transfer_seconds
         << ", \"jain_across_replicas\": " << metrics.jain_fairness
         << ", \"sim_wall_seconds\": " << metrics.sim_wall_seconds
         << ", \"steps_per_second\": " << metrics.steps_per_second << "}";
  }
  // Two closers: the "disaggregation" sub-object and the "cluster" block
  // it nests inside.
  json << "\n  ]}},\n";

  // --- Scheduler hot-path microbenchmark (schema-v10 "speed" block) ----------
  // The same three regimes bench_scheduler_hotpath runs standalone:
  // next_step + cost_step throughput with no serving loop in the measured
  // path.  Everything except wall_seconds / steps_per_second is
  // deterministic, so the rows double as a costing bit-identity check.
  json << "  \"speed\": [\n";
  AsciiTable speed_table(
      "Scheduler hot path — next_step + cost_step, no serving loop");
  speed_table.set_header({"regime", "steps", "tokens", "wall s", "steps/s"});
  const std::vector<bench::HotpathRegime> speed_regimes =
      bench::hotpath_regimes();
  std::vector<bench::HotpathResult> speed_rows;
  for (const bench::HotpathRegime& regime : speed_regimes) {
    speed_rows.push_back(bench::run_hotpath_regime(regime));
    const bench::HotpathResult& r = speed_rows.back();
    speed_table.add_row({r.regime, cell_i(r.steps), cell_i(r.tokens),
                         cell_f(r.wall_seconds, 4),
                         cell_f(r.steps_per_second, 0)});
    json << "    {\"regime\": \"" << r.regime << "\", \"steps\": " << r.steps
         << ", \"prefill_steps\": " << r.prefill_steps
         << ", \"decode_steps\": " << r.decode_steps
         << ", \"tokens\": " << r.tokens
         << ", \"sim_seconds\": " << r.sim_seconds
         << ", \"wall_seconds\": " << r.wall_seconds
         << ", \"steps_per_second\": " << r.steps_per_second << "}"
         << (speed_rows.size() < speed_regimes.size() ? ",\n" : "\n");
  }
  json << "  ],\n";

  std::int64_t total_steps = 0;
  for (const serving::SweepCellResult& result : baseline) {
    total_steps += result.metrics.total_steps;
  }
  for (const serving::ServingMetrics& metrics : policy_results) {
    total_steps += metrics.total_steps;
  }
  // Per-grid worker counts as actually resolved by run_sweep (the two
  // grids differ in size, so they may clamp differently).
  const int baseline_threads = serving::resolve_sweep_threads(
      sweep_options.threads, baseline.size());
  const int policy_threads = serving::resolve_sweep_threads(
      sweep_options.threads, policy_points.size());
  // The sweep block keeps counting the baseline + policy grids only, so
  // its points/total_steps stay comparable across the schema-v3 -> v4
  // boundary; the fairness grid reports inside its own block.
  json << "  \"sweep\": {\"points\": "
       << baseline.size() + policy_points.size()
       << ", \"threads_baseline\": " << baseline_threads
       << ", \"threads_policies\": " << policy_threads
       << ", \"wall_seconds\": " << sweep_wall
       << ", \"total_steps\": " << total_steps << ", \"steps_per_second\": "
       << (sweep_wall > 0 ? static_cast<double>(total_steps) / sweep_wall : 0)
       << "}\n}\n";
  json.close();
  table.print();
  policy_table.print();
  fairness_table.print();
  prefix_table.print();
  slo_table.print();
  storm_table.print();
  router_table.print();
  disagg_table.print();
  speed_table.print();
  std::printf("  wrote BENCH_serving.json (%zu sweep points, %d/%d threads, "
              "%.3f s wall, %lld steps)\n",
              baseline.size() + policy_points.size(), baseline_threads,
              policy_threads, sweep_wall,
              static_cast<long long>(total_steps));
  std::printf("  fairness: wfq jain %.4f vs fifo jain %.4f (2 tenants, 3:1 "
              "weights)\n",
              fairness_results[1].jain_fairness,
              fairness_results[0].jain_fairness);
  std::printf("  prefix cache: hit rate %.3f, goodput %.1f vs %.1f tokens/s "
              "off (block 16)\n",
              prefix_results[1].prefix_hit_rate,
              prefix_results[1].goodput_tokens_per_second,
              prefix_results[0].goodput_tokens_per_second);
  // Grid order is rate-major with admission {fifo, edf} innermost, so the
  // last two cells are the highest rate's fifo/edf pair.
  std::printf("  slo frontier: at %.0f req/s attainment edf %.4f vs fifo "
              "%.4f (SLO goodput %.1f vs %.1f tokens/s)\n",
              slo_cells[slo_cells.size() - 2].arrival_rate,
              slo_cells[slo_cells.size() - 1].metrics.slo_attainment,
              slo_cells[slo_cells.size() - 2].metrics.slo_attainment,
              slo_cells[slo_cells.size() - 1]
                  .metrics.slo_goodput_tokens_per_second,
              slo_cells[slo_cells.size() - 2]
                  .metrics.slo_goodput_tokens_per_second);
  // Grid order is fault-rate-major with recovery {off, on} innermost, so
  // the last two cells are the full storm's off/on pair.
  std::printf("  resilience: at fault rate %.1f availability recovery-on "
              "%.4f vs off %.4f (SLO goodput %.1f vs %.1f tokens/s)\n",
              storm_cells[storm_cells.size() - 2].fault_rate,
              storm_cells[storm_cells.size() - 1].metrics.availability,
              storm_cells[storm_cells.size() - 2].metrics.availability,
              storm_cells[storm_cells.size() - 1]
                  .metrics.slo_goodput_tokens_per_second,
              storm_cells[storm_cells.size() - 2]
                  .metrics.slo_goodput_tokens_per_second);
  // Row order follows cluster_router_policy_order(): round_robin first,
  // prefix_affinity third.
  std::printf("  cluster: prefix_affinity hit rate %.3f vs round_robin "
              "%.3f (%d replicas, jain %.4f vs %.4f)\n",
              router_results[2].prefix_hit_rate,
              router_results[0].prefix_hit_rate, serving::kClusterReplicas,
              router_results[2].jain_fairness,
              router_results[0].jain_fairness);
  // Grid order is rate-major with disaggregation {off, on} innermost, so
  // the last two cells are the top rate's colocated/disaggregated pair.
  std::printf("  disaggregation: at %.0f req/s TTFT p99 disagg %.3f s vs "
              "colocated %.3f s (%.2f GiB KV streamed)\n",
              disagg_cells[disagg_cells.size() - 2].arrival_rate,
              disagg_cells[disagg_cells.size() - 1].metrics.ttft.p99,
              disagg_cells[disagg_cells.size() - 2].metrics.ttft.p99,
              [&] {
                const auto& counters = disagg_cells[disagg_cells.size() - 1]
                                           .metrics.registry.counters();
                const auto it = counters.find("cluster.kv_transfer_bytes");
                return it == counters.end()
                           ? 0.0
                           : static_cast<double>(it->second) / GiB;
              }());

  return bench::run_microbenchmarks(argc, argv);
}
