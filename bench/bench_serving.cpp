// Serving baseline bench: goodput and tail latency of continuous-batching
// request streams across arrival rates, pipeline depths, and — under a
// deliberately tight KV budget — preemption policy x chunked-prefill
// configurations.  This is the perf trajectory anchor for the serving
// subsystem: later scheduler or cost-cache optimizations move these
// numbers, and the per-policy rows let future PRs track policy-level perf
// trajectories.
//
// Emits BENCH_serving.json (schema_version 2):
//   "baseline" — goodput + p99 TTFT/TPOT across 3 arrival rates x 2 chip
//                counts (schema v1 rows),
//   "policies" — per-(policy x chunked on/off) rows under KV pressure with
//                preemption split, swap traffic, and chunked-step counts.

#include <fstream>
#include <vector>

#include "bench/bench_util.h"
#include "serving/traffic_profiles.h"

using namespace cimtpu;

namespace {

serving::RequestStreamConfig stream_config(double rate) {
  return serving::zipf_chat_stream(/*seed=*/42, /*num_requests=*/2000, rate);
}

serving::ServingScenario scenario_for(int chips) {
  return serving::llama7b_baseline_scenario(chips, ir::DType::kInt4);
}

void BM_serving_small_stream(benchmark::State& state) {
  const auto stream = [] {
    serving::RequestStreamConfig config = stream_config(20.0);
    config.num_requests = 200;
    return config;
  }();
  const std::vector<serving::Request> requests =
      serving::generate_requests(stream);
  for (auto _ : state) {
    benchmark::DoNotOptimize(serving::run_serving(scenario_for(1), requests));
  }
}
BENCHMARK(BM_serving_small_stream);

}  // namespace

int main(int argc, char** argv) {
  bench::banner("Serving", "continuous-batching goodput and tail latency");

  const std::vector<double> rates = {5.0, 10.0, 20.0};
  const std::vector<int> chip_counts = {1, 4};

  CsvWriter csv(bench::output_dir() + "/serving.csv");
  csv.write_header({"arrival_rate", "chips", "goodput_tokens_per_s",
                    "ttft_p99_s", "tpot_p99_s", "energy_per_token_j",
                    "mxu_utilization", "preemptions"});

  AsciiTable table("Serving baseline — llama2-7b INT4, 2000-request Poisson streams");
  table.set_header({"rate (req/s)", "chips", "tokens/s", "TTFT p99",
                    "TPOT p99", "J/token", "MXU util"});

  std::ofstream json("BENCH_serving.json");
  json << "{\n  \"bench\": \"serving\",\n  \"schema_version\": 2,\n"
       << "  \"model\": \"llama2-7b\",\n"
       << "  \"dtype\": \"int4\",\n  \"requests\": 2000,\n  \"seed\": 42,\n"
       << "  \"baseline\": [\n";
  bool first = true;
  for (double rate : rates) {
    const std::vector<serving::Request> requests =
        serving::generate_requests(stream_config(rate));
    for (int chips : chip_counts) {
      const serving::ServingMetrics metrics =
          serving::run_serving(scenario_for(chips), requests);
      csv.write_row({cell_f(rate, 1), cell_i(chips),
                     cell_f(metrics.goodput_tokens_per_second, 3),
                     cell_f(metrics.ttft.p99, 6), cell_f(metrics.tpot.p99, 6),
                     cell_f(metrics.energy_per_token, 9),
                     cell_f(metrics.mxu_utilization, 4),
                     cell_i(metrics.preemptions)});
      table.add_row({cell_f(rate, 1), cell_i(chips),
                     cell_f(metrics.goodput_tokens_per_second, 1),
                     format_time(metrics.ttft.p99),
                     format_time(metrics.tpot.p99),
                     format_energy(metrics.energy_per_token),
                     cell_f(100.0 * metrics.mxu_utilization, 1) + "%"});
      if (!first) json << ",\n";
      first = false;
      json << "    {\"arrival_rate\": " << rate << ", \"chips\": " << chips
           << ", \"goodput_tokens_per_s\": "
           << metrics.goodput_tokens_per_second
           << ", \"ttft_p99_s\": " << metrics.ttft.p99
           << ", \"tpot_p99_s\": " << metrics.tpot.p99
           << ", \"energy_per_token_j\": " << metrics.energy_per_token << "}";
    }
  }
  json << "\n  ],\n";

  // --- Policy x chunked-prefill sweep under KV pressure ----------------------
  // 8000-token device budget (vs ~10x that from HBM headroom): preemption
  // policies actually fire, so their costs are visible in the trajectory.
  const std::vector<serving::Request> pressured_requests =
      serving::generate_requests(serving::zipf_chat_stream(
          /*seed=*/42, /*num_requests=*/2000, /*arrival_rate=*/20.0,
          /*priority_classes=*/3));
  const std::vector<serving::EvictionPolicy> policies = {
      serving::EvictionPolicy::kPreemptNewest,
      serving::EvictionPolicy::kSwapToHost,
      serving::EvictionPolicy::kPriorityVictim,
  };
  const std::vector<std::int64_t> chunk_settings = {0, 512};

  AsciiTable policy_table(
      "Preemption policy x chunked prefill — llama2-7b INT4, 8000-token KV "
      "budget, 20 req/s");
  policy_table.set_header({"policy", "chunk", "tokens/s", "TTFT p99",
                           "TPOT p99", "preempt", "swapped", "swap GiB",
                           "chunk steps"});

  json << "  \"policies\": [\n";
  first = true;
  for (serving::EvictionPolicy policy : policies) {
    for (std::int64_t chunk : chunk_settings) {
      const serving::ServingScenario scenario =
          serving::llama7b_pressured_scenario(
              /*chips=*/1, ir::DType::kInt4, policy, chunk,
              /*kv_budget_tokens=*/8000);
      const serving::ServingMetrics metrics =
          serving::run_serving(scenario, pressured_requests);
      const std::string name = serving::eviction_policy_name(policy);
      policy_table.add_row(
          {name, chunk == 0 ? "off" : cell_i(chunk),
           cell_f(metrics.goodput_tokens_per_second, 1),
           format_time(metrics.ttft.p99), format_time(metrics.tpot.p99),
           cell_i(metrics.counters.preemptions_recompute),
           cell_i(metrics.counters.preemptions_swap),
           cell_f(metrics.counters.total_swap_bytes() / GiB, 2),
           cell_i(metrics.counters.chunked_prefill_steps)});
      if (!first) json << ",\n";
      first = false;
      json << "    {\"policy\": \"" << name << "\", \"chunk_tokens\": " << chunk
           << ", \"kv_budget_tokens\": 8000"
           << ", \"goodput_tokens_per_s\": "
           << metrics.goodput_tokens_per_second
           << ", \"ttft_p99_s\": " << metrics.ttft.p99
           << ", \"tpot_p99_s\": " << metrics.tpot.p99
           << ", \"preemptions_recompute\": "
           << metrics.counters.preemptions_recompute
           << ", \"preemptions_swap\": " << metrics.counters.preemptions_swap
           << ", \"swap_bytes\": " << metrics.counters.total_swap_bytes()
           << ", \"chunked_prefill_steps\": "
           << metrics.counters.chunked_prefill_steps << "}";
    }
  }
  json << "\n  ]\n}\n";
  json.close();
  table.print();
  policy_table.print();
  std::printf("  wrote BENCH_serving.json\n");

  return bench::run_microbenchmarks(argc, argv);
}
