// Scheduler hot-path microbenchmark: next_step + cost_step throughput in
// isolation, with no serving loop, request generator, or metrics rollup in
// the measured path.  Three regimes (bench/scheduler_hotpath.h):
//
//   decode_heavy  — a full 32-wide resident batch decoding 512-token
//                   outputs: the steady state the SoA pool, incremental
//                   aggregates, and flat cost table exist for,
//   prefill_heavy — 256 long prompts at one output token each: nearly
//                   every step pushes prompt tokens (admission + prefill
//                   builder throughput),
//   mixed         — chunked prefill (256-token chunks over 768-token
//                   prompts) interleaving with 128-token decodes: the
//                   continuous-batching steady state.
//
// Step counts, token counts, and summed simulated seconds are
// deterministic — only wall_seconds / steps_per_second measure the
// machine — so the printed rows double as a costing bit-identity check.
// bench_serving runs the same regimes and lands them in the schema-v10
// "speed" block of BENCH_serving.json.
//
// Flags (stripped before google-benchmark sees argv):
//   --out <path>  also write the rows as JSON

#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "bench/scheduler_hotpath.h"

using namespace cimtpu;

namespace {

void BM_hotpath_decode_heavy(benchmark::State& state) {
  bench::HotpathRegime regime = bench::hotpath_regimes()[0];
  regime.repetitions = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(bench::run_hotpath_regime(regime));
  }
}
BENCHMARK(BM_hotpath_decode_heavy);

}  // namespace

int main(int argc, char** argv) {
  bench::banner("Scheduler hot path",
                "next_step + cost_step throughput, no serving loop");

  std::string out_path;
  int kept = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else if (std::strncmp(argv[i], "--benchmark", 11) == 0) {
      argv[kept++] = argv[i];
    } else if (std::strncmp(argv[i], "--", 2) == 0) {
      std::fprintf(stderr,
                   "bench_scheduler_hotpath: unknown flag '%s' (expected "
                   "--out <path> or --benchmark* flags)\n",
                   argv[i]);
      return 1;
    } else {
      argv[kept++] = argv[i];
    }
  }
  argc = kept;

  AsciiTable table(
      "Scheduler hot path — llama2-7b INT4, bucket 128, uncontended KV");
  table.set_header({"regime", "steps", "prefill", "decode", "tokens",
                    "sim s", "wall s", "steps/s"});

  CsvWriter csv(bench::output_dir() + "/scheduler_hotpath.csv");
  csv.write_header({"regime", "steps", "prefill_steps", "decode_steps",
                    "tokens", "sim_seconds", "wall_seconds",
                    "steps_per_second"});

  std::vector<bench::HotpathResult> results;
  for (const bench::HotpathRegime& regime : bench::hotpath_regimes()) {
    results.push_back(bench::run_hotpath_regime(regime));
    const bench::HotpathResult& r = results.back();
    table.add_row({r.regime, cell_i(r.steps), cell_i(r.prefill_steps),
                   cell_i(r.decode_steps), cell_i(r.tokens),
                   cell_f(r.sim_seconds, 3), cell_f(r.wall_seconds, 4),
                   cell_f(r.steps_per_second, 0)});
    csv.write_row({r.regime, cell_i(r.steps), cell_i(r.prefill_steps),
                   cell_i(r.decode_steps), cell_i(r.tokens),
                   cell_f(r.sim_seconds, 6), cell_f(r.wall_seconds, 6),
                   cell_f(r.steps_per_second, 1)});
  }
  table.print();

  if (!out_path.empty()) {
    std::ofstream json(out_path);
    json << "{\n  \"bench\": \"scheduler_hotpath\",\n  \"rows\": [\n";
    for (std::size_t i = 0; i < results.size(); ++i) {
      const bench::HotpathResult& r = results[i];
      json << "    {\"regime\": \"" << r.regime << "\", \"steps\": " << r.steps
           << ", \"prefill_steps\": " << r.prefill_steps
           << ", \"decode_steps\": " << r.decode_steps
           << ", \"tokens\": " << r.tokens
           << ", \"sim_seconds\": " << r.sim_seconds
           << ", \"wall_seconds\": " << r.wall_seconds
           << ", \"steps_per_second\": " << r.steps_per_second << "}"
           << (i + 1 < results.size() ? ",\n" : "\n");
    }
    json << "  ]\n}\n";
  }

  return bench::run_microbenchmarks(argc, argv);
}
