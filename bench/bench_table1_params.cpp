// Reproduces Table I: architecture parameters of the baseline TPUv4i and
// the CIM-based TPU, printed from the live configuration objects (so the
// table cannot drift from what the simulator actually models).

#include "arch/chip.h"
#include "arch/tpu_config.h"
#include "bench/bench_util.h"

using namespace cimtpu;


namespace {
void BM_chip_construction(benchmark::State& state) {
  for (auto _ : state) {
    arch::TpuChip chip(arch::cim_tpu_default());
    benchmark::DoNotOptimize(chip.peak_ops_per_second());
  }
}
BENCHMARK(BM_chip_construction);
}  // namespace

int main(int argc, char** argv) {
  bench::banner("Table I", "architecture parameters for the CIM-based TPU");

  const arch::TpuChipConfig base = arch::tpu_v4i_baseline();
  const arch::TpuChipConfig cim = arch::cim_tpu_default();

  AsciiTable table("Table I — Architecture parameters");
  table.set_header({"Key parameters", "TPUv4i", "CIM-based TPU"});
  table.add_row({"Tensor Core count", "1", "1"});
  table.add_row({"MXU count", cell_i(base.mxu_count), cell_i(cim.mxu_count)});
  table.add_row({"MXU dimension",
                 std::to_string(base.systolic.rows) + "x" +
                     std::to_string(base.systolic.cols) + " MACs",
                 std::to_string(cim.cim.grid_rows) + "x" +
                     std::to_string(cim.cim.grid_cols) + " CIMs"});
  table.add_row({"CIM core dimension", "N/A",
                 std::to_string(cim.cim.core_rows) + " x " +
                     std::to_string(cim.cim.core_cols)});
  table.add_row({"Vector width",
                 std::to_string(base.vpu.sublanes) + " x " +
                     std::to_string(base.vpu.lanes),
                 std::to_string(cim.vpu.sublanes) + " x " +
                     std::to_string(cim.vpu.lanes)});
  table.add_row({"Vector memory size", format_bytes(base.memory.vmem.capacity),
                 format_bytes(cim.memory.vmem.capacity)});
  table.add_row({"Common memory size", format_bytes(base.memory.cmem.capacity),
                 format_bytes(cim.memory.cmem.capacity)});
  table.add_row({"Main memory size", format_bytes(base.memory.hbm.capacity),
                 format_bytes(cim.memory.hbm.capacity)});
  table.add_row({"Main memory bandwidth",
                 cell_f(base.memory.hbm.bandwidth / GBps, 0) + " GB/s",
                 cell_f(cim.memory.hbm.bandwidth / GBps, 0) + " GB/s"});
  table.add_row({"ICI link bandwidth",
                 cell_f(base.ici.bandwidth_per_link / GBps, 0) + " GB/s",
                 cell_f(cim.ici.bandwidth_per_link / GBps, 0) + " GB/s"});
  table.print();

  // Derived figures (not in the paper's table but implied by it).
  arch::TpuChip base_chip(base);
  arch::TpuChip cim_chip(cim);
  AsciiTable derived("Derived chip figures (7nm)");
  derived.set_header({"figure", "TPUv4i", "CIM-based TPU"});
  derived.add_row({"Peak throughput",
                   format_ops_rate(base_chip.peak_ops_per_second()),
                   format_ops_rate(cim_chip.peak_ops_per_second())});
  derived.add_row({"Total MXU area",
                   cell_f(base_chip.area_report().mxus, 1) + " mm2",
                   cell_f(cim_chip.area_report().mxus, 1) + " mm2"});
  derived.print();

  return bench::run_microbenchmarks(argc, argv);
}
