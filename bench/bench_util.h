#pragma once
// Shared helpers for the paper-reproduction bench binaries.
//
// Every bench prints the rows/series its paper table or figure reports,
// together with the paper's published value where one exists, and writes a
// machine-readable CSV next to the ASCII table.  Microbenchmark timings of
// the simulator itself run through google-benchmark.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>
#include <sys/stat.h>

#include "common/csv.h"
#include "common/table.h"
#include "common/units.h"

namespace cimtpu::bench {

/// Directory CSV series land in (created on demand).
inline std::string output_dir() {
  static const std::string dir = [] {
    ::mkdir("bench_out", 0755);
    return std::string("bench_out");
  }();
  return dir;
}

/// "paper vs measured" cell: e.g. "-29.9% (paper) / -28.2% (ours)".
inline std::string paper_vs(const std::string& paper,
                            const std::string& measured) {
  return paper + " (paper) / " + measured + " (ours)";
}

/// Banner printed at the top of each bench.
inline void banner(const char* experiment, const char* description) {
  std::printf("\n################################################################\n");
  std::printf("## %s\n## %s\n", experiment, description);
  std::printf("################################################################\n\n");
}

/// Runs google-benchmark with default settings (called at the end of each
/// bench main after the reproduction tables are printed).
inline int run_microbenchmarks(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

}  // namespace cimtpu::bench
