// Ablation: sequence-length balance.  The CIM-based TPU's end-to-end win
// depends on the prefill:decode ratio — long generations amplify the
// decode advantage, long prompts dilute it.  This sweep contextualizes the
// paper's Fig. 7 (1024 in / 512 out) choice and our deviation notes in
// EXPERIMENTS.md.

#include "arch/chip.h"
#include "arch/tpu_config.h"
#include "bench/bench_util.h"
#include "sim/workload_runner.h"

using namespace cimtpu;

namespace {

void BM_llm_sweep_point(benchmark::State& state) {
  arch::TpuChip chip(arch::cim_tpu_default());
  sim::Simulator simulator(chip);
  sim::LlmScenario scenario;
  scenario.model = models::gpt3_30b();
  scenario.model.num_layers = 2;
  scenario.input_len = 1024;
  scenario.output_len = state.range(0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim::run_llm_inference(simulator, scenario));
  }
}
BENCHMARK(BM_llm_sweep_point)->Arg(64)->Arg(512);

}  // namespace

int main(int argc, char** argv) {
  bench::banner("Ablation: sequence lengths",
                "CIM benefit vs prompt and generation length");

  CsvWriter csv(bench::output_dir() + "/ablation_seqlen.csv");
  csv.write_header({"input_len", "output_len", "design", "latency_s",
                    "mxu_energy_j"});

  auto evaluate = [&](const arch::TpuChipConfig& config, std::int64_t in,
                      std::int64_t out) {
    arch::TpuChip chip(config);
    sim::Simulator simulator(chip);
    sim::LlmScenario scenario;
    scenario.model = models::gpt3_30b();
    scenario.model.num_layers = 2;  // ratios are layer-invariant
    scenario.batch = 8;
    scenario.input_len = in;
    scenario.output_len = out;
    const auto run = sim::run_llm_inference(simulator, scenario);
    csv.write_row({cell_i(in), cell_i(out), config.name,
                   cell_f(run.total.latency, 9),
                   cell_f(run.total.mxu_energy(), 9)});
    return run;
  };

  AsciiTable out_sweep(
      "Output-length sweep (input 1024): CIM-TPU & Design A vs baseline");
  out_sweep.set_header({"output len", "decode share (base)", "CIM latency",
                        "Design A latency", "Design A energy"});
  for (std::int64_t out : {32, 128, 512, 2048}) {
    const auto base = evaluate(arch::tpu_v4i_baseline(), 1024, out);
    const auto cim = evaluate(arch::cim_tpu_default(), 1024, out);
    const auto a = evaluate(arch::design_a(), 1024, out);
    out_sweep.add_row(
        {cell_i(out),
         cell_f(100.0 * base.decode.latency / base.total.latency, 1) + "%",
         format_percent_delta(cim.total.latency / base.total.latency - 1.0),
         format_percent_delta(a.total.latency / base.total.latency - 1.0),
         format_ratio(base.total.mxu_energy() / a.total.mxu_energy())});
  }
  out_sweep.print();
  std::printf("  longer generations -> bigger decode share -> bigger CIM win\n\n");

  AsciiTable in_sweep("Prompt-length sweep (output 512)");
  in_sweep.set_header({"input len", "prefill share (base)", "CIM latency",
                       "Design A latency"});
  for (std::int64_t in : {128, 512, 1024, 4096}) {
    const auto base = evaluate(arch::tpu_v4i_baseline(), in, 512);
    const auto cim = evaluate(arch::cim_tpu_default(), in, 512);
    const auto a = evaluate(arch::design_a(), in, 512);
    in_sweep.add_row(
        {cell_i(in),
         cell_f(100.0 * base.prefill.latency / base.total.latency, 1) + "%",
         format_percent_delta(cim.total.latency / base.total.latency - 1.0),
         format_percent_delta(a.total.latency / base.total.latency - 1.0)});
  }
  in_sweep.print();

  return bench::run_microbenchmarks(argc, argv);
}
