// Ablation: data precision.  The paper evaluates INT8 (Sec. IV-B) but the
// CIM-MXU also supports BF16 through the exponent-align pre-processing
// pipeline (Sec. III-B).  BF16 doubles weight traffic and raises per-MAC
// energy for both designs; this bench quantifies how the CIM advantage
// carries over.

#include "arch/chip.h"
#include "arch/tpu_config.h"
#include "bench/bench_util.h"
#include "sim/workload_runner.h"

using namespace cimtpu;

namespace {

models::TransformerConfig gpt3_with(ir::DType dtype) {
  models::TransformerConfig config = models::gpt3_30b();
  config.dtype = dtype;
  return config;
}

void BM_decode_bf16(benchmark::State& state) {
  arch::TpuChip chip(arch::cim_tpu_default());
  sim::Simulator simulator(chip);
  const auto model = gpt3_with(ir::DType::kBf16);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim::run_decode_layer(simulator, model, 8, 1280));
  }
}
BENCHMARK(BM_decode_bf16);

}  // namespace

int main(int argc, char** argv) {
  bench::banner("Ablation: INT8 vs BF16",
                "precision effect on latency and the CIM energy advantage");

  arch::TpuChip base_chip(arch::tpu_v4i_baseline());
  arch::TpuChip cim_chip(arch::cim_tpu_default());
  sim::Simulator base_sim(base_chip);
  sim::Simulator cim_sim(cim_chip);

  CsvWriter csv(bench::output_dir() + "/ablation_dtype.csv");
  csv.write_header(
      {"stage", "dtype", "base_latency_s", "cim_latency_s", "energy_ratio"});

  AsciiTable table("GPT3-30B single layer, batch 8: INT8 vs BF16");
  table.set_header({"stage", "dtype", "base latency", "CIM latency",
                    "latency delta", "MXU energy ratio"});
  for (ir::DType dtype :
       {ir::DType::kInt4, ir::DType::kInt8, ir::DType::kBf16}) {
    const auto model = gpt3_with(dtype);
    const auto prefill_base = sim::run_prefill_layer(base_sim, model, 8, 1024);
    const auto prefill_cim = sim::run_prefill_layer(cim_sim, model, 8, 1024);
    const auto decode_base = sim::run_decode_layer(base_sim, model, 8, 1280);
    const auto decode_cim = sim::run_decode_layer(cim_sim, model, 8, 1280);
    const struct {
      const char* stage;
      const sim::GraphResult& base;
      const sim::GraphResult& cim;
    } rows[] = {{"prefill", prefill_base, prefill_cim},
                {"decode", decode_base, decode_cim}};
    for (const auto& row : rows) {
      const double energy_ratio = row.base.mxu_energy() / row.cim.mxu_energy();
      table.add_row({row.stage, ir::dtype_name(dtype),
                     format_time(row.base.latency),
                     format_time(row.cim.latency),
                     format_percent_delta(row.cim.latency / row.base.latency -
                                          1.0),
                     format_ratio(energy_ratio)});
      csv.write_row({row.stage, ir::dtype_name(dtype),
                     cell_f(row.base.latency, 9), cell_f(row.cim.latency, 9),
                     cell_f(energy_ratio, 3)});
    }
  }
  table.print();
  std::printf(
      "  BF16 doubles weight bytes: decode slows ~2x on both designs, and\n"
      "  the CIM FP pipeline's pre/post-processing trims its energy edge\n"
      "  (BF16 factor %.1fx vs digital %.1fx).\n",
      tech::cal::kCimBf16EnergyFactor, tech::cal::kDigitalBf16EnergyFactor);

  return bench::run_microbenchmarks(argc, argv);
}
