// Ablation: simultaneous MAC + weight update (the CIM macro capability the
// paper adopts from Mori et al. [24]).  Disabling the dedicated weight
// port's overlap forces weight writes to serialize with computation and
// erases most of the CIM-MXU's GEMV advantage — isolating the mechanism
// behind the paper's -29.9% decode latency.

#include "arch/chip.h"
#include "arch/tpu_config.h"
#include "bench/bench_util.h"
#include "sim/workload_runner.h"

using namespace cimtpu;

namespace {

void BM_overlap_ablation_decode(benchmark::State& state) {
  arch::TpuChipConfig config = arch::cim_tpu_default();
  config.cim.overlapped_weight_update = state.range(0) != 0;
  arch::TpuChip chip(config);
  sim::Simulator simulator(chip);
  const auto gpt3 = models::gpt3_30b();
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim::run_decode_layer(simulator, gpt3, 8, 1280));
  }
}
BENCHMARK(BM_overlap_ablation_decode)->Arg(0)->Arg(1);

}  // namespace

int main(int argc, char** argv) {
  bench::banner("Ablation: overlapped weight update",
                "simultaneous MAC + weight write vs serialized writes");

  arch::TpuChip baseline(arch::tpu_v4i_baseline());
  sim::Simulator base_sim(baseline);
  const auto gpt3 = models::gpt3_30b();
  const auto dit = models::dit_xl_2();
  const auto geometry = models::dit_geometry_512();

  AsciiTable table("Decode / prefill / DiT latency with and without overlap");
  table.set_header({"Workload", "baseline", "CIM (overlap ON)",
                    "CIM (overlap OFF)", "overlap contribution"});
  CsvWriter csv(bench::output_dir() + "/ablation_overlap.csv");
  csv.write_header({"workload", "variant", "latency_s"});

  arch::TpuChipConfig on_cfg = arch::cim_tpu_default();
  arch::TpuChipConfig off_cfg = arch::cim_tpu_default();
  off_cfg.cim.overlapped_weight_update = false;
  arch::TpuChip on_chip(on_cfg), off_chip(off_cfg);
  sim::Simulator on_sim(on_chip), off_sim(off_chip);

  struct Case {
    const char* name;
    Seconds base, on, off;
  };
  const Case cases[] = {
      {"LLM decode (256th token)",
       sim::run_decode_layer(base_sim, gpt3, 8, 1280).latency,
       sim::run_decode_layer(on_sim, gpt3, 8, 1280).latency,
       sim::run_decode_layer(off_sim, gpt3, 8, 1280).latency},
      {"LLM prefill (L=1024)",
       sim::run_prefill_layer(base_sim, gpt3, 8, 1024).latency,
       sim::run_prefill_layer(on_sim, gpt3, 8, 1024).latency,
       sim::run_prefill_layer(off_sim, gpt3, 8, 1024).latency},
      {"DiT block (512x512)",
       sim::run_dit_block(base_sim, dit, geometry, 8).latency,
       sim::run_dit_block(on_sim, dit, geometry, 8).latency,
       sim::run_dit_block(off_sim, dit, geometry, 8).latency},
  };
  for (const Case& c : cases) {
    table.add_row({c.name, format_time(c.base), format_time(c.on),
                   format_time(c.off),
                   format_percent_delta(c.off / c.on - 1.0)});
    csv.write_row({c.name, "baseline", cell_f(c.base, 9)});
    csv.write_row({c.name, "overlap_on", cell_f(c.on, 9)});
    csv.write_row({c.name, "overlap_off", cell_f(c.off, 9)});
  }
  table.print();
  std::printf(
      "  with the full 256-bit port, writes hide under the memory-bound\n"
      "  ops even when serialized: the port's aggregate bandwidth (4 TB/s\n"
      "  per MXU) dwarfs what HBM can deliver.  The mechanism becomes\n"
      "  visible when the port narrows:\n\n");

  // Port-width sweep: narrowing the per-core weight I/O starves the
  // CIM-MXU exactly the way the digital array's 1-row-per-cycle ingest
  // starves it — reproducing the baseline's GEMV pathology on CIM.
  AsciiTable sweep("Decode latency vs weight-I/O width (256th token)");
  sweep.set_header({"port bytes/cycle/core", "overlap ON", "overlap OFF",
                    "vs digital baseline (ON)"});
  arch::TpuChip base_ref(arch::tpu_v4i_baseline());
  sim::Simulator base_ref_sim(base_ref);
  const Seconds base_decode =
      sim::run_decode_layer(base_ref_sim, gpt3, 8, 1280).latency;
  for (double io_bytes : {1.0, 4.0, 32.0}) {
    arch::TpuChipConfig on = arch::cim_tpu_default();
    on.cim.weight_io_bytes_per_cycle = io_bytes;
    arch::TpuChipConfig off = on;
    off.cim.overlapped_weight_update = false;
    arch::TpuChip on_c(on), off_c(off);
    sim::Simulator on_s(on_c), off_s(off_c);
    const Seconds lat_on = sim::run_decode_layer(on_s, gpt3, 8, 1280).latency;
    const Seconds lat_off =
        sim::run_decode_layer(off_s, gpt3, 8, 1280).latency;
    sweep.add_row({cell_f(io_bytes, 0), format_time(lat_on),
                   format_time(lat_off),
                   format_percent_delta(lat_on / base_decode - 1.0)});
    csv.write_row({"port_sweep_on", cell_f(io_bytes, 0), cell_f(lat_on, 9)});
    csv.write_row({"port_sweep_off", cell_f(io_bytes, 0),
                   cell_f(lat_off, 9)});
  }
  sweep.print();
  std::printf(
      "  a 1 B/cycle port erases most of the decode win: the dedicated\n"
      "  wide weight I/O (with or without overlap) is the load-bearing\n"
      "  mechanism behind the paper's -29.9%% decode latency.\n");

  return bench::run_microbenchmarks(argc, argv);
}
