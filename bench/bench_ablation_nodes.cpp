// Ablation: technology node.  The paper implements at 22 nm and scales to
// TPUv4i's 7 nm ("both ... scaled to the same technology and frequency").
// This sweep shows the CIM advantage is node-stable: dynamic-energy ratios
// are anchored at 22 nm and survive scaling, while HBM (which does not
// scale) increasingly dominates decode at finer nodes.

#include "arch/chip.h"
#include "arch/tpu_config.h"
#include "bench/bench_util.h"
#include "sim/workload_runner.h"

using namespace cimtpu;

namespace {

void BM_node_eval(benchmark::State& state) {
  arch::TpuChipConfig config = arch::cim_tpu_default();
  config.technology = "22nm";
  arch::TpuChip chip(config);
  sim::Simulator simulator(chip);
  const auto gpt3 = models::gpt3_30b();
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim::run_decode_layer(simulator, gpt3, 8, 1280));
  }
}
BENCHMARK(BM_node_eval);

}  // namespace

int main(int argc, char** argv) {
  bench::banner("Ablation: technology node",
                "22nm calibration point scaled across process nodes");

  CsvWriter csv(bench::output_dir() + "/ablation_nodes.csv");
  csv.write_header({"node", "stage", "latency_delta", "energy_ratio",
                    "base_mxu_area_mm2", "cim_mxu_area_mm2"});

  const auto gpt3 = models::gpt3_30b();
  AsciiTable table("GPT3-30B layer: CIM vs baseline across nodes");
  table.set_header({"node", "clock", "prefill delta", "decode delta",
                    "prefill E ratio", "decode E ratio", "MXU area (B/C)"});
  for (const char* node : {"28nm", "22nm", "12nm", "7nm"}) {
    arch::TpuChipConfig base_cfg = arch::tpu_v4i_baseline();
    base_cfg.technology = node;
    arch::TpuChipConfig cim_cfg = arch::cim_tpu_default();
    cim_cfg.technology = node;
    arch::TpuChip base_chip(base_cfg), cim_chip(cim_cfg);
    sim::Simulator base_sim(base_chip), cim_sim(cim_chip);

    const auto pb = sim::run_prefill_layer(base_sim, gpt3, 8, 1024);
    const auto pc = sim::run_prefill_layer(cim_sim, gpt3, 8, 1024);
    const auto db = sim::run_decode_layer(base_sim, gpt3, 8, 1280);
    const auto dc = sim::run_decode_layer(cim_sim, gpt3, 8, 1280);

    table.add_row(
        {node, format_ops_rate(base_chip.clock()) /* Hz shown as rate */,
         format_percent_delta(pc.latency / pb.latency - 1.0),
         format_percent_delta(dc.latency / db.latency - 1.0),
         format_ratio(pb.mxu_energy() / pc.mxu_energy()),
         format_ratio(db.mxu_energy() / dc.mxu_energy()),
         cell_f(base_chip.area_report().mxus, 1) + " / " +
             cell_f(cim_chip.area_report().mxus, 1) + " mm2"});
    csv.write_row({node, "prefill",
                   cell_f(pc.latency / pb.latency - 1.0, 4),
                   cell_f(pb.mxu_energy() / pc.mxu_energy(), 3),
                   cell_f(base_chip.area_report().mxus, 2),
                   cell_f(cim_chip.area_report().mxus, 2)});
    csv.write_row({node, "decode", cell_f(dc.latency / db.latency - 1.0, 4),
                   cell_f(db.mxu_energy() / dc.mxu_energy(), 3),
                   cell_f(base_chip.area_report().mxus, 2),
                   cell_f(cim_chip.area_report().mxus, 2)});
  }
  table.print();
  std::printf("  ratios are node-stable: the comparison is anchored at the\n"
              "  22nm Table II data and both designs scale identically.\n");

  return bench::run_microbenchmarks(argc, argv);
}
