// Reproduces Table II: standalone comparison between the 128x128 digital
// MXU and the 16x8 CIM-MXU at TSMC 22 nm — MACs/cycle, energy efficiency
// (TOPS/W) and area efficiency (TOPS/mm^2).

#include "arch/chip.h"
#include "arch/tpu_config.h"
#include "bench/bench_util.h"
#include "ir/dtype.h"

using namespace cimtpu;

namespace {

void print_table2() {
  // Both designs are evaluated at the 22 nm calibration node, as in the
  // paper's post-P&R flow.
  arch::TpuChipConfig base_cfg = arch::tpu_v4i_baseline();
  base_cfg.technology = "22nm";
  arch::TpuChipConfig cim_cfg = arch::cim_tpu_default();
  cim_cfg.technology = "22nm";
  arch::TpuChip baseline(base_cfg);
  arch::TpuChip cim(cim_cfg);

  const Hertz clock = baseline.clock();
  const auto& dmxu = baseline.mxu();
  const auto& cmxu = cim.mxu();
  const ir::DType dtype = ir::DType::kInt8;

  const double d_tw = dmxu.tops_per_watt(dtype, clock);
  const double c_tw = cmxu.tops_per_watt(dtype, clock);
  const double d_tm = dmxu.tops_per_mm2(clock);
  const double c_tm = cmxu.tops_per_mm2(clock);

  AsciiTable table("Table II — CIM-MXU vs digital MXU (TSMC 22nm, INT8)");
  table.set_header({"Evaluation Metrics", "Digital MXU", "CIM-MXU",
                    "Speedup (ours)", "Speedup (paper)"});
  table.add_row({"MACs per cycle", cell_i((long long)dmxu.macs_per_cycle()),
                 cell_i((long long)cmxu.macs_per_cycle()),
                 format_ratio(cmxu.macs_per_cycle() / dmxu.macs_per_cycle()),
                 "1x"});
  table.add_row({"Energy Efficiency", cell_f(d_tw, 3) + " TOPS/W",
                 cell_f(c_tw, 2) + " TOPS/W", format_ratio(c_tw / d_tw),
                 "9.43x"});
  table.add_row({"Area Efficiency", cell_f(d_tm, 3) + " TOPS/mm2",
                 cell_f(c_tm, 2) + " TOPS/mm2", format_ratio(c_tm / d_tm),
                 "2.02x"});
  table.add_row({"Area (derived)", cell_f(dmxu.area(), 1) + " mm2",
                 cell_f(cmxu.area(), 1) + " mm2",
                 format_ratio(dmxu.area() / cmxu.area()), "~2x"});
  table.print();

  CsvWriter csv(bench::output_dir() + "/table2_mxu.csv");
  csv.write_header({"metric", "digital", "cim", "ratio"});
  csv.write_row({"macs_per_cycle", cell_f(dmxu.macs_per_cycle(), 0),
                 cell_f(cmxu.macs_per_cycle(), 0), "1.0"});
  csv.write_row({"tops_per_watt", cell_f(d_tw, 4), cell_f(c_tw, 4),
                 cell_f(c_tw / d_tw, 3)});
  csv.write_row({"tops_per_mm2", cell_f(d_tm, 4), cell_f(c_tm, 4),
                 cell_f(c_tm / d_tm, 3)});
}

void BM_digital_mxu_evaluate(benchmark::State& state) {
  arch::TpuChipConfig cfg = arch::tpu_v4i_baseline();
  cfg.technology = "22nm";
  arch::TpuChip chip(cfg);
  systolic::GemmWorkload w{/*m=*/1024, /*k=*/7168, /*n=*/7168,
                           /*instances=*/1, ir::DType::kInt8};
  for (auto _ : state) {
    benchmark::DoNotOptimize(chip.mxu().evaluate(w));
  }
}
BENCHMARK(BM_digital_mxu_evaluate);

void BM_cim_mxu_evaluate(benchmark::State& state) {
  arch::TpuChipConfig cfg = arch::cim_tpu_default();
  cfg.technology = "22nm";
  arch::TpuChip chip(cfg);
  systolic::GemmWorkload w{/*m=*/1024, /*k=*/7168, /*n=*/7168,
                           /*instances=*/1, ir::DType::kInt8};
  for (auto _ : state) {
    benchmark::DoNotOptimize(chip.mxu().evaluate(w));
  }
}
BENCHMARK(BM_cim_mxu_evaluate);

}  // namespace

int main(int argc, char** argv) {
  bench::banner("Table II", "standalone digital MXU vs CIM-MXU at 22 nm");
  print_table2();
  return bench::run_microbenchmarks(argc, argv);
}
