// Ablation: baseline systolic dataflow.  The paper's baseline is TPUv4i's
// weight-stationary MXU; this bench asks whether an output-stationary
// digital array would have changed the comparison — it would not: OS helps
// deep-contraction GEMMs but is even worse on the GEMV-shaped decode work
// where the CIM-MXU wins.

#include "arch/chip.h"
#include "arch/tpu_config.h"
#include "bench/bench_util.h"
#include "sim/workload_runner.h"

using namespace cimtpu;

namespace {

arch::TpuChipConfig os_baseline() {
  arch::TpuChipConfig config = arch::tpu_v4i_baseline();
  config.name = "tpuv4i-os";
  config.systolic.dataflow = systolic::Dataflow::kOutputStationary;
  return config;
}

void BM_os_decode(benchmark::State& state) {
  arch::TpuChip chip(os_baseline());
  sim::Simulator simulator(chip);
  const auto gpt3 = models::gpt3_30b();
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim::run_decode_layer(simulator, gpt3, 8, 1280));
  }
}
BENCHMARK(BM_os_decode);

}  // namespace

int main(int argc, char** argv) {
  bench::banner("Ablation: baseline dataflow",
                "weight-stationary vs output-stationary digital MXU");

  arch::TpuChip ws_chip(arch::tpu_v4i_baseline());
  arch::TpuChip os_chip(os_baseline());
  arch::TpuChip cim_chip(arch::cim_tpu_default());
  sim::Simulator ws_sim(ws_chip), os_sim(os_chip), cim_sim(cim_chip);

  const auto gpt3 = models::gpt3_30b();
  const auto dit = models::dit_xl_2();
  const auto geometry = models::dit_geometry_512();

  CsvWriter csv(bench::output_dir() + "/ablation_dataflow.csv");
  csv.write_header({"workload", "design", "latency_s"});

  AsciiTable table("Fig. 6 workloads under each baseline dataflow");
  table.set_header({"workload", "WS baseline", "OS baseline", "CIM-TPU",
                    "CIM vs best digital"});
  struct Case {
    const char* name;
    Seconds ws, os, cim;
  };
  const Case cases[] = {
      {"LLM prefill layer",
       sim::run_prefill_layer(ws_sim, gpt3, 8, 1024).latency,
       sim::run_prefill_layer(os_sim, gpt3, 8, 1024).latency,
       sim::run_prefill_layer(cim_sim, gpt3, 8, 1024).latency},
      {"LLM decode layer",
       sim::run_decode_layer(ws_sim, gpt3, 8, 1280).latency,
       sim::run_decode_layer(os_sim, gpt3, 8, 1280).latency,
       sim::run_decode_layer(cim_sim, gpt3, 8, 1280).latency},
      {"DiT block", sim::run_dit_block(ws_sim, dit, geometry, 8).latency,
       sim::run_dit_block(os_sim, dit, geometry, 8).latency,
       sim::run_dit_block(cim_sim, dit, geometry, 8).latency},
  };
  for (const Case& c : cases) {
    const Seconds best_digital = std::min(c.ws, c.os);
    table.add_row({c.name, format_time(c.ws), format_time(c.os),
                   format_time(c.cim),
                   format_percent_delta(c.cim / best_digital - 1.0)});
    csv.write_row({c.name, "ws", cell_f(c.ws, 9)});
    csv.write_row({c.name, "os", cell_f(c.os, 9)});
    csv.write_row({c.name, "cim", cell_f(c.cim, 9)});
  }
  table.print();
  std::printf(
      "  switching the digital baseline to output-stationary does not\n"
      "  recover the CIM decode win: the GEMV bottleneck is operand\n"
      "  delivery, which only the dedicated CIM weight port removes.\n");

  return bench::run_microbenchmarks(argc, argv);
}
