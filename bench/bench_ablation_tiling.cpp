// Ablation: VMEM tiling.  The mapping engine's two-level tiling search
// (paper Fig. 5) trades buffer capacity against re-read traffic; this
// bench shows the traffic curve vs VMEM size for the paper's key GEMMs and
// the chosen tile shapes.

#include "bench/bench_util.h"
#include "mapping/tiling.h"
#include "models/model_zoo.h"

using namespace cimtpu;

namespace {

void BM_tiling_search(benchmark::State& state) {
  const ir::Op op =
      ir::make_weight_gemm("ffn1", "FFN1", 8192, 7168, 28672,
                           ir::DType::kInt8);
  mapping::TilingOptions options;
  for (auto _ : state) {
    benchmark::DoNotOptimize(mapping::best_tiling(op, options));
  }
}
BENCHMARK(BM_tiling_search);

std::string tile_string(const mapping::TileChoice& choice) {
  return std::to_string(choice.tm) + "x" + std::to_string(choice.tk) + "x" +
         std::to_string(choice.tn);
}

}  // namespace

int main(int argc, char** argv) {
  bench::banner("Ablation: VMEM tiling",
                "re-read traffic vs buffer capacity (mapping engine)");

  CsvWriter csv(bench::output_dir() + "/ablation_tiling.csv");
  csv.write_header({"op", "vmem_mib", "tile", "vmem_traffic_gb",
                    "reuse_factor"});

  const struct {
    const char* label;
    ir::Op op;
  } gemms[] = {
      {"prefill FFN1 [8192,7168]x[7168,28672]",
       ir::make_weight_gemm("ffn1", "FFN1", 8192, 7168, 28672,
                            ir::DType::kInt8)},
      {"prefill QKV [8192,7168]x[7168,21504]",
       ir::make_weight_gemm("qkv", "QKV", 8192, 7168, 21504,
                            ir::DType::kInt8)},
      {"DiT proj [8192,1152]x[1152,1152]",
       ir::make_weight_gemm("proj", "Proj", 8192, 1152, 1152,
                            ir::DType::kInt8)},
  };

  for (const auto& gemm : gemms) {
    AsciiTable table(gemm.label);
    table.set_header({"VMEM", "best tile (m x k x n)", "tiles",
                      "VMEM traffic", "reuse factor"});
    for (double mib : {2.0, 4.0, 8.0, 16.0, 64.0, 256.0}) {
      mapping::TilingOptions options;
      options.vmem_capacity = mib * MiB;
      const mapping::TileChoice choice =
          mapping::best_tiling(gemm.op, options);
      table.add_row({cell_f(mib, 0) + " MiB", tile_string(choice),
                     cell_i(choice.total_tiles()),
                     format_bytes(choice.vmem_traffic),
                     cell_f(choice.reuse_factor, 3)});
      csv.write_row({gemm.label, cell_f(mib, 0), tile_string(choice),
                     cell_f(choice.vmem_traffic / 1e9, 4),
                     cell_f(choice.reuse_factor, 4)});
    }
    table.print();
    std::printf("\n");
  }
  std::printf("  Table I's 16 MiB VMEM keeps the big prefill GEMMs within\n"
              "  ~2-4x of compulsory traffic; VMEM bandwidth never binds.\n");

  return bench::run_microbenchmarks(argc, argv);
}
