#pragma once
// Scheduler hot-path regimes shared by bench_scheduler_hotpath (the
// standalone microbenchmark) and bench_serving (which lands the same rows
// in the schema-v10 "speed" block of BENCH_serving.json).
//
// Each regime drives ContinuousBatchScheduler::next_step + cost_step
// DIRECTLY — no serving loop, no clock, no metrics rollup — so the
// measured time is the scheduler + cost-cache hot path and nothing else.
// Everything except wall_seconds / steps_per_second is deterministic
// (step counts, token counts, summed simulated seconds), which makes the
// rows double as a cheap bit-identity check on the costing itself.

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "arch/tpu_config.h"
#include "models/model_zoo.h"
#include "serving/arena.h"
#include "serving/kv_cache_manager.h"
#include "serving/scheduler.h"
#include "serving/step_cost_cache.h"
#include "sim/simulator.h"

namespace cimtpu::bench {

/// One hot-path workload shape.  `chunk` > 0 enables chunked prefill (the
/// mixed regime's interleaving source); repetitions rebuild the engine
/// from scratch so steady-state timing amortizes construction away.
struct HotpathRegime {
  std::string name;
  int num_requests = 0;
  std::int64_t prompt_len = 0;
  std::int64_t output_len = 0;
  int max_batch = 32;
  int max_prefill_batch = 8;
  std::int64_t chunk = 0;
  int repetitions = 1;
};

/// Totals across all repetitions.  steps / prefill_steps / decode_steps /
/// tokens / sim_seconds are DETERMINISTIC; wall_seconds and
/// steps_per_second are the measurement.
struct HotpathResult {
  std::string regime;
  std::int64_t steps = 0;
  std::int64_t prefill_steps = 0;
  std::int64_t decode_steps = 0;
  std::int64_t tokens = 0;    ///< prompt tokens prefilled + tokens decoded
  double sim_seconds = 0;     ///< summed step latencies (simulated time)
  double wall_seconds = 0;
  double steps_per_second = 0;
};

/// The three canonical regimes: decode-heavy (a full resident batch
/// decoding long outputs), prefill-heavy (long prompts, one output token —
/// nearly every step pushes prompt tokens), and mixed (chunked prefill
/// interleaving with decode, the continuous-batching steady state).
inline std::vector<HotpathRegime> hotpath_regimes() {
  std::vector<HotpathRegime> regimes;
  regimes.push_back({"decode_heavy", /*num_requests=*/32, /*prompt_len=*/100,
                     /*output_len=*/512, /*max_batch=*/32,
                     /*max_prefill_batch=*/8, /*chunk=*/0,
                     /*repetitions=*/64});
  regimes.push_back({"prefill_heavy", /*num_requests=*/256,
                     /*prompt_len=*/1024, /*output_len=*/1, /*max_batch=*/32,
                     /*max_prefill_batch=*/8, /*chunk=*/0,
                     /*repetitions=*/64});
  regimes.push_back({"mixed", /*num_requests=*/128, /*prompt_len=*/768,
                     /*output_len=*/128, /*max_batch=*/32,
                     /*max_prefill_batch=*/8, /*chunk=*/256,
                     /*repetitions=*/32});
  return regimes;
}

/// Runs `regime` to exhaustion (every request admitted, prefetched,
/// decoded, finished) `repetitions` times against an uncontended KV budget
/// — no preemption, no swap: the pure scheduler + cost-cache path.
inline HotpathResult run_hotpath_regime(const HotpathRegime& regime) {
  arch::TpuChip chip(arch::tpu_v4i_baseline());
  sim::Simulator simulator(chip);
  models::TransformerConfig model = models::llama2_7b();
  model.dtype = ir::DType::kInt4;

  HotpathResult result;
  result.regime = regime.name;
  const auto start = std::chrono::steady_clock::now();
  for (int rep = 0; rep < regime.repetitions; ++rep) {
    serving::KvCacheManager kv_cache(
        /*capacity=*/1e15, serving::KvCacheManager::token_bytes(model),
        serving::EvictionPolicy::kPreemptNewest);
    serving::SchedulerConfig config;
    config.max_batch = regime.max_batch;
    config.max_prefill_batch = regime.max_prefill_batch;
    config.prefill_chunk_tokens = regime.chunk;
    serving::ContinuousBatchScheduler scheduler(config, &kv_cache);
    serving::StepCostCache costs(simulator, model, config.seqlen_bucket);
    serving::StepArena arena;
    arena.warm(config.max_batch, config.max_prefill_batch);
    serving::StepRecord& record = arena.record();

    for (int id = 0; id < regime.num_requests; ++id) {
      serving::Request request;
      request.id = id;
      request.arrival_time = 0.0;
      request.prompt_len = regime.prompt_len;
      request.output_len = regime.output_len;
      scheduler.enqueue(request);
    }
    while (scheduler.next_step(&record)) {
      const serving::StepCost cost = serving::cost_step(costs, record);
      result.sim_seconds += cost.latency;
      ++result.steps;
      if (record.kind == serving::StepRecord::Kind::kDecode) {
        ++result.decode_steps;
        result.tokens += record.batch;
      } else {
        ++result.prefill_steps;
        for (const std::int64_t chunk_len : record.chunk_lens) {
          result.tokens += chunk_len;
        }
      }
    }
  }
  const std::chrono::duration<double> elapsed =
      std::chrono::steady_clock::now() - start;
  result.wall_seconds = elapsed.count();
  result.steps_per_second =
      result.wall_seconds > 0
          ? static_cast<double>(result.steps) / result.wall_seconds
          : 0;
  return result;
}

}  // namespace cimtpu::bench
