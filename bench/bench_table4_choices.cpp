// Reproduces Table IV: the CIM-MXU architecture design choices explored in
// Sec. V, with the derived per-chip peak throughput and area of every
// combination (the quantities that drive Fig. 7).

#include "arch/chip.h"
#include "arch/tpu_config.h"
#include "bench/bench_util.h"

using namespace cimtpu;


namespace {
void BM_design_point_area(benchmark::State& state) {
  for (auto _ : state) {
    arch::TpuChip chip(arch::cim_tpu(8, 16, 16));
    benchmark::DoNotOptimize(chip.area_report().total());
  }
}
BENCHMARK(BM_design_point_area);
}  // namespace

int main(int argc, char** argv) {
  bench::banner("Table IV", "architecture design choices of CIM-MXU");

  AsciiTable table("Table IV — CIM-MXU design choices");
  table.set_header({"Parameters", "Choice 1", "Choice 2", "Choice 3"});
  table.add_row({"Array dimension", "8 x 8", "16 x 8", "16 x 16"});
  table.add_row({"CIM-MXU count", "2", "4", "8"});
  table.print();
  std::printf("\n");

  AsciiTable derived("Derived design points (vs baseline 4x 128x128)");
  derived.set_header({"config", "MACs/cycle", "peak (vs base)", "MXU area",
                      "area (vs base)"});
  arch::TpuChip baseline(arch::tpu_v4i_baseline());
  const double base_macs = baseline.config().total_macs_per_cycle();
  const double base_area = baseline.area_report().mxus;
  for (int count : {2, 4, 8}) {
    for (const auto& [rows, cols] :
         std::initializer_list<std::pair<int, int>>{{8, 8}, {16, 8}, {16, 16}}) {
      arch::TpuChip chip(arch::cim_tpu(count, rows, cols));
      const double macs = chip.config().total_macs_per_cycle();
      const double area = chip.area_report().mxus;
      derived.add_row({chip.config().name, cell_i((long long)macs),
                       cell_f(macs / base_macs, 2) + "x",
                       cell_f(area, 1) + " mm2",
                       cell_f(area / base_area, 2) + "x"});
    }
  }
  derived.print();

  return bench::run_microbenchmarks(argc, argv);
}
