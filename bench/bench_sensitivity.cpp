// Sensitivity analysis: how the headline CIM-vs-baseline deltas move with
// the architecture parameters that are least certain in the paper — HBM
// bandwidth, OCI (CMEM) bandwidth, and clock frequency.  Quantifies the
// robustness of the reproduction's conclusions.

#include "arch/chip.h"
#include "arch/tpu_config.h"
#include "bench/bench_util.h"
#include "sim/workload_runner.h"

using namespace cimtpu;

namespace {

struct Deltas {
  double decode_latency_delta;
  double decode_energy_ratio;
  double dit_latency_delta;
};

Deltas evaluate(double hbm_gbps, double oci_gbps, double clock_ghz) {
  arch::TpuChipConfig base_cfg = arch::tpu_v4i_baseline();
  arch::TpuChipConfig cim_cfg = arch::cim_tpu_default();
  for (auto* cfg : {&base_cfg, &cim_cfg}) {
    cfg->memory.hbm.bandwidth = hbm_gbps * GBps;
    cfg->memory.cmem.bandwidth = oci_gbps * GBps;
    if (clock_ghz > 0) cfg->clock = clock_ghz * GHz;
  }
  arch::TpuChip base_chip(base_cfg), cim_chip(cim_cfg);
  sim::Simulator base_sim(base_chip), cim_sim(cim_chip);
  const auto gpt3 = models::gpt3_30b();
  const auto dit = models::dit_xl_2();
  const auto geometry = models::dit_geometry_512();

  const auto db = sim::run_decode_layer(base_sim, gpt3, 8, 1280);
  const auto dc = sim::run_decode_layer(cim_sim, gpt3, 8, 1280);
  const auto tb = sim::run_dit_block(base_sim, dit, geometry, 8);
  const auto tc = sim::run_dit_block(cim_sim, dit, geometry, 8);
  return {dc.latency / db.latency - 1.0, db.mxu_energy() / dc.mxu_energy(),
          tc.latency / tb.latency - 1.0};
}

void BM_sensitivity_point(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(evaluate(614, 1536, 0));
  }
}
BENCHMARK(BM_sensitivity_point);

}  // namespace

int main(int argc, char** argv) {
  bench::banner("Sensitivity",
                "headline deltas vs HBM/OCI bandwidth and clock");

  CsvWriter csv(bench::output_dir() + "/sensitivity.csv");
  csv.write_header({"param", "value", "decode_delta", "decode_energy_ratio",
                    "dit_delta"});

  AsciiTable hbm("HBM bandwidth sweep (nominal 614 GB/s)");
  hbm.set_header({"HBM GB/s", "decode latency delta", "decode E ratio",
                  "DiT latency delta"});
  for (double bw : {307.0, 460.0, 614.0, 921.0, 1228.0}) {
    const Deltas d = evaluate(bw, 1536, 0);
    hbm.add_row({cell_f(bw, 0), format_percent_delta(d.decode_latency_delta),
                 format_ratio(d.decode_energy_ratio),
                 format_percent_delta(d.dit_latency_delta)});
    csv.write_row({"hbm_gbps", cell_f(bw, 0),
                   cell_f(d.decode_latency_delta, 4),
                   cell_f(d.decode_energy_ratio, 3),
                   cell_f(d.dit_latency_delta, 4)});
  }
  hbm.print();
  std::printf("  faster HBM grows the decode win: the shared memory floor\n"
              "  drops while the baseline stays bound by its weight-ingest\n"
              "  rate, which the CIM design hides.\n\n");

  AsciiTable oci("OCI / CMEM bandwidth sweep (nominal 1536 GB/s)");
  oci.set_header({"OCI GB/s", "decode latency delta", "decode E ratio",
                  "DiT latency delta"});
  for (double bw : {768.0, 1152.0, 1536.0, 3072.0}) {
    const Deltas d = evaluate(614, bw, 0);
    oci.add_row({cell_f(bw, 0), format_percent_delta(d.decode_latency_delta),
                 format_ratio(d.decode_energy_ratio),
                 format_percent_delta(d.dit_latency_delta)});
    csv.write_row({"oci_gbps", cell_f(bw, 0),
                   cell_f(d.decode_latency_delta, 4),
                   cell_f(d.decode_energy_ratio, 3),
                   cell_f(d.dit_latency_delta, 4)});
  }
  oci.print();
  std::printf("  the CIM attention path streams KV through CMEM: OCI\n"
              "  bandwidth bounds how far the GEMV win can go.\n\n");

  AsciiTable clock("Clock sweep (nominal 1.05 GHz at 7nm)");
  clock.set_header({"clock GHz", "decode latency delta", "decode E ratio",
                    "DiT latency delta"});
  for (double ghz : {0.7, 0.94, 1.05, 1.4}) {
    const Deltas d = evaluate(614, 1536, ghz);
    clock.add_row({cell_f(ghz, 2),
                   format_percent_delta(d.decode_latency_delta),
                   format_ratio(d.decode_energy_ratio),
                   format_percent_delta(d.dit_latency_delta)});
    csv.write_row({"clock_ghz", cell_f(ghz, 2),
                   cell_f(d.decode_latency_delta, 4),
                   cell_f(d.decode_energy_ratio, 3),
                   cell_f(d.dit_latency_delta, 4)});
  }
  clock.print();
  std::printf("  conclusions are stable across +-30%% parameter swings.\n");

  return bench::run_microbenchmarks(argc, argv);
}
