// Reproduces Fig. 6: per-layer latency and normalized MXU energy of
// generative-model inference on the baseline TPUv4i vs the CIM-based TPU.
//
// Three panels:
//   * GPT3-30B Prefilling  (batch 8, 1024-token prompt)     — paper: +2.43% latency, 9.21x energy
//   * GPT3-30B Decoding    (batch 8, 256th output token)    — paper: -29.9% latency, 13.4x energy
//   * DiT-XL/2 block       (512x512, batch 8)               — paper: -6.67% latency, 10.4x energy

#include <vector>

#include "arch/chip.h"
#include "arch/tpu_config.h"
#include "bench/bench_util.h"
#include "sim/workload_runner.h"

using namespace cimtpu;

namespace {

struct Panel {
  std::string name;
  sim::GraphResult base;
  sim::GraphResult cim;
  std::string paper_latency;
  std::string paper_energy;
};

void print_panel(const Panel& panel, CsvWriter& csv) {
  AsciiTable table("Fig. 6 — " + panel.name + " (baseline vs CIM-based TPU)");
  table.set_header({"Layer", "Base latency", "CIM latency", "Base norm.E",
                    "CIM norm.E"});
  // Normalized energy: each group's MXU energy relative to the baseline
  // total (the paper's "Norm. Energy" axis).
  const Joules norm = panel.base.mxu_energy();
  for (const auto& [group, summary] : panel.base.groups) {
    const auto it = panel.cim.groups.find(group);
    const Joules cim_energy =
        it != panel.cim.groups.end() ? it->second.mxu_energy : 0.0;
    const Seconds cim_latency =
        it != panel.cim.groups.end() ? it->second.latency : 0.0;
    table.add_row({group, format_time(summary.latency),
                   format_time(cim_latency),
                   cell_f(summary.mxu_energy / norm, 4),
                   cell_f(cim_energy / norm, 4)});
    csv.write_row({panel.name, group, cell_f(summary.latency, 9),
                   cell_f(cim_latency, 9), cell_f(summary.mxu_energy / norm, 6),
                   cell_f(cim_energy / norm, 6)});
  }
  table.add_separator();
  const double dlat = panel.cim.latency / panel.base.latency - 1.0;
  const double denergy = panel.base.mxu_energy() / panel.cim.mxu_energy();
  table.add_row({"TOTAL", format_time(panel.base.latency),
                 format_time(panel.cim.latency), "1.0000",
                 cell_f(panel.cim.mxu_energy() / norm, 4)});
  table.add_row({"delta latency",
                 bench::paper_vs(panel.paper_latency,
                                 format_percent_delta(dlat)),
                 "", "", ""});
  table.add_row({"MXU energy reduction",
                 bench::paper_vs(panel.paper_energy, format_ratio(denergy)),
                 "", "", ""});
  table.print();
  std::printf("\n");
}

void BM_fig6_decode_layer(benchmark::State& state) {
  arch::TpuChip chip(arch::cim_tpu_default());
  sim::Simulator simulator(chip);
  const auto gpt3 = models::gpt3_30b();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        sim::run_decode_layer(simulator, gpt3, 8, 1024 + 256));
  }
}
BENCHMARK(BM_fig6_decode_layer);

}  // namespace

int main(int argc, char** argv) {
  bench::banner("Fig. 6",
                "per-layer latency & normalized MXU energy, baseline vs CIM");

  arch::TpuChip baseline(arch::tpu_v4i_baseline());
  arch::TpuChip cim(arch::cim_tpu_default());
  sim::Simulator base_sim(baseline);
  sim::Simulator cim_sim(cim);

  const auto gpt3 = models::gpt3_30b();
  const auto dit = models::dit_xl_2();
  const auto geometry = models::dit_geometry_512();
  const std::int64_t batch = 8;

  std::vector<Panel> panels;
  panels.push_back({"LLM Prefilling (GPT3-30B layer, L=1024)",
                    sim::run_prefill_layer(base_sim, gpt3, batch, 1024),
                    sim::run_prefill_layer(cim_sim, gpt3, batch, 1024),
                    "+2.43%", "9.21x"});
  panels.push_back({"LLM Decoding (GPT3-30B layer, 256th token)",
                    sim::run_decode_layer(base_sim, gpt3, batch, 1024 + 256),
                    sim::run_decode_layer(cim_sim, gpt3, batch, 1024 + 256),
                    "-29.9%", "13.4x"});
  panels.push_back({"DiT Block (DiT-XL/2, 512x512)",
                    sim::run_dit_block(base_sim, dit, geometry, batch),
                    sim::run_dit_block(cim_sim, dit, geometry, batch),
                    "-6.67%", "10.4x"});

  CsvWriter csv(bench::output_dir() + "/fig6_layer_breakdown.csv");
  csv.write_header({"panel", "group", "base_latency_s", "cim_latency_s",
                    "base_norm_energy", "cim_norm_energy"});
  for (const Panel& panel : panels) print_panel(panel, csv);

  return bench::run_microbenchmarks(argc, argv);
}
