// Roofline analysis of the paper's three workload panels: which resource
// binds each operator on the baseline vs the CIM-based TPU.  This is the
// analytical backbone of the paper's observations (prefill compute-bound,
// decode memory-bound, DiT softmax-bound).

#include <cmath>

#include "arch/chip.h"
#include "arch/tpu_config.h"
#include "bench/bench_util.h"
#include "sim/roofline.h"
#include "sim/workload_runner.h"

using namespace cimtpu;

namespace {

void print_graph_roofline(const char* title, const sim::Simulator& simulator,
                          const ir::Graph& graph, CsvWriter& csv) {
  AsciiTable table(title);
  table.set_header({"op", "group", "OI (flop/HBM B)", "attained", "roof",
                    "bound", "roof util"});
  for (const auto& point : sim::analyze_graph(simulator, graph)) {
    const double roof = std::min(point.compute_roof, point.memory_roof);
    table.add_row(
        {point.op, point.group,
         std::isinf(point.operational_intensity)
             ? std::string("inf")
             : cell_f(point.operational_intensity, 1),
         format_ops_rate(point.attained_flops_per_s), format_ops_rate(roof),
         sim::bound_resource_name(point.bound),
         cell_f(100.0 * point.roof_utilization(), 1) + "%"});
    csv.write_row({title, point.op, sim::bound_resource_name(point.bound),
                   cell_f(point.roof_utilization(), 4)});
  }
  table.print();

  const sim::BoundBreakdown breakdown =
      sim::bound_breakdown(simulator, graph);
  std::printf("  time bound by: compute %.1f%%  HBM %.1f%%  OCI %.1f%%  "
              "VMEM %.1f%%\n\n",
              100.0 * breakdown.compute_bound / breakdown.total(),
              100.0 * breakdown.hbm_bound / breakdown.total(),
              100.0 * breakdown.oci_bound / breakdown.total(),
              100.0 * breakdown.vmem_bound / breakdown.total());
}

void BM_roofline_analysis(benchmark::State& state) {
  arch::TpuChip chip(arch::tpu_v4i_baseline());
  sim::Simulator simulator(chip);
  const auto graph = models::build_decode_layer(
      models::gpt3_30b(), 8, 1280, ir::Residency::kCmem);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim::bound_breakdown(simulator, graph));
  }
}
BENCHMARK(BM_roofline_analysis);

}  // namespace

int main(int argc, char** argv) {
  bench::banner("Roofline", "binding-resource analysis per workload panel");

  arch::TpuChip base_chip(arch::tpu_v4i_baseline());
  arch::TpuChip cim_chip(arch::cim_tpu_default());
  sim::Simulator base_sim(base_chip);
  sim::Simulator cim_sim(cim_chip);
  const auto gpt3 = models::gpt3_30b();

  CsvWriter csv(bench::output_dir() + "/roofline.csv");
  csv.write_header({"panel", "op", "bound", "roof_utilization"});

  const auto kv =
      sim::kv_residency_for(base_chip, gpt3, 8, 1280);
  print_graph_roofline("LLM decode on baseline TPUv4i", base_sim,
                       models::build_decode_layer(gpt3, 8, 1280, kv), csv);
  print_graph_roofline("LLM decode on CIM-based TPU", cim_sim,
                       models::build_decode_layer(gpt3, 8, 1280, kv), csv);
  print_graph_roofline(
      "LLM prefill on baseline TPUv4i", base_sim,
      models::build_prefill_layer(gpt3, 8, 1024, kv), csv);
  print_graph_roofline(
      "DiT block on baseline TPUv4i", base_sim,
      models::build_dit_block(models::dit_xl_2(), models::dit_geometry_512(),
                              8),
      csv);

  return bench::run_microbenchmarks(argc, argv);
}
