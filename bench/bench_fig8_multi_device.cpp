// Reproduces Fig. 8: multi-TPU inference throughput with pipeline
// parallelism over a ring of 1, 2, and 4 chips, comparing the baseline
// TPUv4i against the optimized CIM designs:
//   Design A (4x 8x8)  — paper: avg +28% LLM throughput, 24.2x MXU energy
//   Design B (8x 16x8) — paper: +33% LLM throughput, 6.34x MXU energy
//
// The paper scales batch size up for multi-device serving ("to accommodate
// large batch sizes"); we use batch 32 and note the choice in
// EXPERIMENTS.md.

#include <vector>

#include "arch/tpu_config.h"
#include "bench/bench_util.h"
#include "parallel/multi_chip.h"

using namespace cimtpu;

namespace {

struct Design {
  std::string label;
  arch::TpuChipConfig config;
};

std::vector<Design> designs() {
  return {{"baseline", arch::tpu_v4i_baseline()},
          {"Design A", arch::design_a()},
          {"Design B", arch::design_b()}};
}

}  // namespace


namespace {
void BM_llm_pipeline_eval(benchmark::State& state) {
  sim::LlmScenario llm;
  llm.model = models::gpt3_30b();
  llm.batch = 32;
  llm.input_len = 128;
  llm.output_len = 16;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        parallel::evaluate_llm_pipeline(arch::design_a(), llm, 4));
  }
}
BENCHMARK(BM_llm_pipeline_eval);
}  // namespace

int main(int argc, char** argv) {
  bench::banner("Fig. 8", "multi-TPU pipeline-parallel inference throughput");

  CsvWriter csv(bench::output_dir() + "/fig8_multi_device.csv");
  csv.write_header({"workload", "design", "chips", "throughput",
                    "mxu_energy_per_item_j"});

  // --- LLM (GPT3-30B) ---------------------------------------------------------
  sim::LlmScenario llm;
  llm.model = models::gpt3_30b();
  llm.batch = 32;
  llm.input_len = 1024;
  llm.output_len = 512;

  AsciiTable llm_table("Fig. 8 — GPT3-30B serving throughput (tokens/s)");
  llm_table.set_header({"Design", "1 TPU", "2 TPUs", "4 TPUs",
                        "avg speedup", "MXU energy ratio"});
  std::vector<double> base_tps;
  std::vector<double> base_energy;
  for (const Design& design : designs()) {
    std::vector<double> tps;
    double energy_per_request = 0;
    for (int chips : {1, 2, 4}) {
      const auto result =
          parallel::evaluate_llm_pipeline(design.config, llm, chips);
      tps.push_back(result.tokens_per_second);
      energy_per_request = result.mxu_energy_per_request;
      csv.write_row({"gpt3-30b", design.label, cell_i(chips),
                     cell_f(result.tokens_per_second, 2),
                     cell_f(result.mxu_energy_per_request, 6)});
    }
    if (design.label == "baseline") {
      base_tps = tps;
      base_energy.push_back(energy_per_request);
    }
    double speedup = 0;
    for (std::size_t i = 0; i < tps.size(); ++i) speedup += tps[i] / base_tps[i];
    speedup /= tps.size();
    llm_table.add_row({design.label, cell_f(tps[0], 1), cell_f(tps[1], 1),
                       cell_f(tps[2], 1),
                       format_percent_delta(speedup - 1.0),
                       format_ratio(base_energy[0] / energy_per_request)});
  }
  llm_table.print();
  std::printf("  paper: Design A avg +28%% (24.2x MXU energy), "
              "Design B +33%% (6.34x)\n\n");

  // --- DiT (DiT-XL/2) ---------------------------------------------------------
  sim::DitScenario dit;
  dit.model = models::dit_xl_2();
  dit.geometry = models::dit_geometry_512();
  dit.batch = 32;

  AsciiTable dit_table("Fig. 8 — DiT-XL/2 throughput (images/s, one pass)");
  dit_table.set_header({"Design", "1 TPU", "2 TPUs", "4 TPUs",
                        "avg speedup", "MXU energy ratio"});
  std::vector<double> dit_base_ips;
  double dit_base_energy = 0;
  for (const Design& design : designs()) {
    std::vector<double> ips;
    double energy_per_image = 0;
    for (int chips : {1, 2, 4}) {
      const auto result =
          parallel::evaluate_dit_pipeline(design.config, dit, chips);
      ips.push_back(result.images_per_second);
      energy_per_image = result.mxu_energy_per_image;
      csv.write_row({"dit-xl/2", design.label, cell_i(chips),
                     cell_f(result.images_per_second, 3),
                     cell_f(result.mxu_energy_per_image, 6)});
    }
    if (design.label == "baseline") {
      dit_base_ips = ips;
      dit_base_energy = energy_per_image;
    }
    double speedup = 0;
    for (std::size_t i = 0; i < ips.size(); ++i) {
      speedup += ips[i] / dit_base_ips[i];
    }
    speedup /= ips.size();
    dit_table.add_row({design.label, cell_f(ips[0], 2), cell_f(ips[1], 2),
                       cell_f(ips[2], 2), format_percent_delta(speedup - 1.0),
                       format_ratio(dit_base_energy / energy_per_image)});
  }
  dit_table.print();
  std::printf("  paper: CIM-MXU energy reduction up to 24.2x (A) / 6.34x (B)\n");

  return bench::run_microbenchmarks(argc, argv);
}
