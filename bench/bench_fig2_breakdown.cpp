// Reproduces Fig. 2(d): inference-latency breakdown of generative models —
// token embedding / Transformer layers / prediction head for Llama2-13B,
// and pre-process / DiT blocks / post-process for DiT-XL/2.
//
// The paper measured these on A100 GPUs to motivate the work (Transformer
// layers dominate: 98.35% and 99.31%); we reproduce the breakdown by
// simulation on the baseline TPU model.  The paper's measured milliseconds
// are embedded for side-by-side comparison.

#include "arch/chip.h"
#include "arch/tpu_config.h"
#include "bench/bench_util.h"
#include "sim/workload_runner.h"

using namespace cimtpu;

namespace {

void print_breakdown(const char* model, const sim::BreakdownResult& result,
                     const char* paper_rows[3][3], CsvWriter& csv) {
  AsciiTable table(std::string("Fig. 2(d) — ") + model);
  table.set_header({"Layer Name", "Latency (ours)", "Breakdown (ours)",
                    "Latency (paper, A100)", "Breakdown (paper)"});
  const Seconds total = result.total();
  const Seconds parts[3] = {result.pre.latency, result.core.latency,
                            result.post.latency};
  for (int i = 0; i < 3; ++i) {
    table.add_row({paper_rows[i][0], format_time(parts[i]),
                   cell_f(100.0 * parts[i] / total, 2) + "%",
                   paper_rows[i][1], paper_rows[i][2]});
    csv.write_row({model, paper_rows[i][0], cell_f(parts[i], 9),
                   cell_f(100.0 * parts[i] / total, 4)});
  }
  table.print();
  std::printf("\n");
}

}  // namespace


namespace {
void BM_dit_breakdown(benchmark::State& state) {
  arch::TpuChip chip(arch::tpu_v4i_baseline());
  sim::Simulator simulator(chip);
  sim::DitScenario dit;
  dit.model = models::dit_xl_2();
  dit.geometry = models::dit_geometry_512();
  dit.batch = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim::run_dit_breakdown(simulator, dit));
  }
}
BENCHMARK(BM_dit_breakdown);
}  // namespace

int main(int argc, char** argv) {
  bench::banner("Fig. 2(d)",
                "runtime breakdown of Llama2-13B and DiT-XL/2 inference");

  arch::TpuChip chip(arch::tpu_v4i_baseline());
  sim::Simulator simulator(chip);
  CsvWriter csv(bench::output_dir() + "/fig2_breakdown.csv");
  csv.write_header({"model", "component", "latency_s", "percent"});

  // Llama2-13B with an Alpaca-like serving shape (short instruction prompt,
  // moderate completion), batch 1 as in the paper's measurement.
  sim::LlmScenario llama;
  llama.model = models::llama2_13b();
  llama.batch = 1;
  llama.input_len = 128;
  llama.output_len = 256;
  const sim::BreakdownResult llama_result =
      sim::run_llm_breakdown(simulator, llama);
  const char* llama_rows[3][3] = {
      {"Token Embedding", "0.41 ms", "0.70%"},
      {"Transformer Layers", "57.91 ms", "98.35%"},
      {"Prediction Head", "0.56 ms", "0.95%"},
  };
  print_breakdown("Llama2-13B", llama_result, llama_rows, csv);

  sim::DitScenario dit;
  dit.model = models::dit_xl_2();
  dit.geometry = models::dit_geometry_512();
  dit.batch = 1;
  const sim::BreakdownResult dit_result =
      sim::run_dit_breakdown(simulator, dit);
  const char* dit_rows[3][3] = {
      {"Pre-Process", "1.18 ms", "0.35%"},
      {"DiT Blocks", "338.10 ms", "99.31%"},
      {"Post-Process", "1.15 ms", "0.34%"},
  };
  print_breakdown("DiT-XL/2", dit_result, dit_rows, csv);

  return bench::run_microbenchmarks(argc, argv);
}
