// Reproduces Fig. 7: architecture exploration of CIM-MXU design choices
// (Table IV: array dimension {8x8, 16x8, 16x16} x MXU count {2, 4, 8})
// for GPT3-30B inference (1024 in / 512 out, batch 8) and a DiT-XL/2
// forward pass, against the TPUv4i baseline.
//
// Paper callouts reproduced at the bottom of each panel:
//   LLM: 2x(8x8) -> +38% latency, 27.3x MXU-energy savings;
//        8x(16x16) vs 8x(16x8) -> +2.5% perf, +95% energy;
//        Design A = 4x(8x8).
//   DiT: 8x(16x16) -> -33.8% latency, 3.56x less power;
//        4x(16x16) -> -25.3% latency; 2x(8x8) -> +100% latency, 20x power;
//        Design B = 8x(16x8).

#include <array>
#include <vector>

#include "arch/chip.h"
#include "arch/tpu_config.h"
#include "bench/bench_util.h"
#include "sim/workload_runner.h"

using namespace cimtpu;

namespace {

struct DesignPoint {
  std::string label;
  arch::TpuChipConfig config;
};

std::vector<DesignPoint> design_points() {
  std::vector<DesignPoint> points;
  points.push_back({"baseline 4x(128x128)", arch::tpu_v4i_baseline()});
  const std::array<std::pair<int, int>, 3> dims{{{8, 8}, {16, 8}, {16, 16}}};
  for (int count : {2, 4, 8}) {
    for (const auto& [rows, cols] : dims) {
      std::string label = std::to_string(count) + "x(" +
                          std::to_string(rows) + "x" + std::to_string(cols) +
                          ")";
      if (count == 4 && rows == 8 && cols == 8) label += "  [Design A]";
      if (count == 8 && rows == 16 && cols == 8) label += "  [Design B]";
      points.push_back({label, arch::cim_tpu(count, rows, cols)});
    }
  }
  return points;
}

struct Row {
  std::string label;
  Seconds latency;
  Joules mxu_energy;
  Watts mxu_power;
};

void print_panel(const std::string& panel, const std::vector<Row>& rows,
                 CsvWriter& csv) {
  AsciiTable table("Fig. 7 — " + panel);
  table.set_header({"Design", "Latency", "vs base", "MXU energy", "vs base",
                    "MXU power", "power ratio"});
  const Row& base = rows.front();
  for (const Row& row : rows) {
    table.add_row({row.label, format_time(row.latency),
                   format_percent_delta(row.latency / base.latency - 1.0),
                   format_energy(row.mxu_energy),
                   format_ratio(base.mxu_energy / row.mxu_energy),
                   format_power(row.mxu_power),
                   format_ratio(base.mxu_power / row.mxu_power)});
    csv.write_row({panel, row.label, cell_f(row.latency, 9),
                   cell_f(row.mxu_energy, 9), cell_f(row.mxu_power, 6)});
  }
  table.print();
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  bench::banner("Fig. 7", "CIM-MXU design-space exploration (Table IV)");

  const auto points = design_points();
  CsvWriter csv(bench::output_dir() + "/fig7_arch_explore.csv");
  csv.write_header(
      {"panel", "design", "latency_s", "mxu_energy_j", "mxu_power_w"});

  // --- LLM panel --------------------------------------------------------------
  sim::LlmScenario llm;
  llm.model = models::gpt3_30b();
  llm.batch = 8;
  llm.input_len = 1024;
  llm.output_len = 512;

  std::vector<Row> llm_rows;
  for (const DesignPoint& point : points) {
    arch::TpuChip chip(point.config);
    sim::Simulator simulator(chip);
    const sim::LlmRunResult run = sim::run_llm_inference(simulator, llm);
    llm_rows.push_back({point.label, run.total.latency,
                        run.total.mxu_energy(), run.total.mxu_power()});
  }
  print_panel("GPT3-30B inference (1024 in / 512 out, batch 8)", llm_rows,
              csv);
  {
    const Row& base = llm_rows[0];
    const Row& small = llm_rows[1];   // 2x(8x8)
    const Row& design_a = llm_rows[4];  // 4x(8x8)
    const Row& d16x8_8 = llm_rows[8];   // 8x(16x8)
    const Row& d16x16_8 = llm_rows[9];  // 8x(16x16)
    std::printf("  paper callouts (LLM):\n");
    std::printf("    2x(8x8) latency  : %s   [paper +38%%]\n",
                format_percent_delta(small.latency / base.latency - 1.0).c_str());
    std::printf("    2x(8x8) energy   : %s   [paper 27.3x]\n",
                format_ratio(base.mxu_energy / small.mxu_energy).c_str());
    std::printf("    8x(16x16) vs 8x(16x8) perf  : %s   [paper ~2.5%% better]\n",
                format_percent_delta(1.0 - d16x16_8.latency / d16x8_8.latency).c_str());
    std::printf("    8x(16x16) vs 8x(16x8) energy: %s   [paper +95%%]\n",
                format_percent_delta(d16x16_8.mxu_energy / d16x8_8.mxu_energy - 1.0).c_str());
    std::printf("    Design A latency : %s, energy %s\n\n",
                format_percent_delta(design_a.latency / base.latency - 1.0).c_str(),
                format_ratio(base.mxu_energy / design_a.mxu_energy).c_str());
  }

  // --- DiT panel --------------------------------------------------------------
  sim::DitScenario dit;
  dit.model = models::dit_xl_2();
  dit.geometry = models::dit_geometry_512();
  dit.batch = 8;

  std::vector<Row> dit_rows;
  for (const DesignPoint& point : points) {
    arch::TpuChip chip(point.config);
    sim::Simulator simulator(chip);
    const sim::GraphResult run = sim::run_dit_inference(simulator, dit);
    dit_rows.push_back(
        {point.label, run.latency, run.mxu_energy(), run.mxu_power()});
  }
  print_panel("DiT-XL/2 forward pass (512x512, batch 8)", dit_rows, csv);
  {
    const Row& base = dit_rows[0];
    const Row& small = dit_rows[1];     // 2x(8x8)
    const Row& d16x16_4 = dit_rows[6];  // 4x(16x16)
    const Row& design_b = dit_rows[8];  // 8x(16x8)
    const Row& d16x16_8 = dit_rows[9];  // 8x(16x16)
    std::printf("  paper callouts (DiT):\n");
    std::printf("    8x(16x16) latency: %s   [paper -33.8%%]\n",
                format_percent_delta(d16x16_8.latency / base.latency - 1.0).c_str());
    std::printf("    4x(16x16) latency: %s   [paper -25.3%%]\n",
                format_percent_delta(d16x16_4.latency / base.latency - 1.0).c_str());
    std::printf("    8x(16x16) power  : %s less   [paper 3.56x]\n",
                format_ratio(base.mxu_power / d16x16_8.mxu_power).c_str());
    std::printf("    2x(8x8) latency  : %s   [paper +100%%]\n",
                format_percent_delta(small.latency / base.latency - 1.0).c_str());
    std::printf("    2x(8x8) power    : %s less   [paper 20x]\n",
                format_ratio(base.mxu_power / small.mxu_power).c_str());
    std::printf("    Design B latency : %s, energy %s\n\n",
                format_percent_delta(design_b.latency / base.latency - 1.0).c_str(),
                format_ratio(base.mxu_energy / design_b.mxu_energy).c_str());
  }
  return bench::run_microbenchmarks(argc, argv);
}
