// Ablation: KV-cache residency.  The two-level on-chip hierarchy the
// paper's model keeps (CMEM + VMEM) lets the KV cache stream from CMEM
// when one operand fits; forcing it to HBM shows how much the hierarchy
// contributes, and sweeping batch shows the spill point where the KV cache
// outgrows CMEM.

#include "arch/chip.h"
#include "arch/tpu_config.h"
#include "bench/bench_util.h"
#include "sim/workload_runner.h"

using namespace cimtpu;

namespace {

void BM_kv_residency_decode(benchmark::State& state) {
  arch::TpuChip chip(arch::cim_tpu_default());
  sim::Simulator simulator(chip);
  const auto gpt3 = models::gpt3_30b();
  const ir::Residency residency =
      state.range(0) ? ir::Residency::kCmem : ir::Residency::kHbm;
  const auto graph = models::build_decode_layer(gpt3, 8, 1280, residency);
  for (auto _ : state) {
    benchmark::DoNotOptimize(simulator.run(graph));
  }
}
BENCHMARK(BM_kv_residency_decode)->Arg(0)->Arg(1);

}  // namespace

int main(int argc, char** argv) {
  bench::banner("Ablation: KV-cache residency",
                "CMEM-resident vs HBM-streamed attention operands");

  arch::TpuChip base_chip(arch::tpu_v4i_baseline());
  arch::TpuChip cim_chip(arch::cim_tpu_default());
  sim::Simulator base_sim(base_chip);
  sim::Simulator cim_sim(cim_chip);
  const auto gpt3 = models::gpt3_30b();

  AsciiTable forced("Decode layer, KV forced to each level (batch 8, kv 1280)");
  forced.set_header({"chip", "KV in CMEM", "KV in HBM", "penalty"});
  CsvWriter csv(bench::output_dir() + "/ablation_kv_residency.csv");
  csv.write_header({"chip", "batch", "kv_residency", "decode_latency_s"});
  for (auto* entry : {&base_sim, &cim_sim}) {
    const auto cmem = entry->run(
        models::build_decode_layer(gpt3, 8, 1280, ir::Residency::kCmem));
    const auto hbm = entry->run(
        models::build_decode_layer(gpt3, 8, 1280, ir::Residency::kHbm));
    forced.add_row({entry->chip().config().name, format_time(cmem.latency),
                    format_time(hbm.latency),
                    format_percent_delta(hbm.latency / cmem.latency - 1.0)});
    csv.write_row({entry->chip().config().name, "8", "cmem",
                   cell_f(cmem.latency, 9)});
    csv.write_row({entry->chip().config().name, "8", "hbm",
                   cell_f(hbm.latency, 9)});
  }
  forced.print();

  // Batch sweep: the automatic residency chooser spills K/V to HBM once one
  // operand no longer fits beside the reserved CMEM slice.
  AsciiTable sweep("Batch sweep with automatic residency (CIM-based TPU)");
  sweep.set_header({"batch", "KV operand", "chosen residency",
                    "decode latency", "ms/token/layer"});
  for (std::int64_t batch : {1, 4, 8, 16, 32, 64}) {
    const ir::Residency residency =
        sim::kv_residency_for(cim_chip, gpt3, batch, 1280);
    const auto result =
        sim::run_decode_layer(cim_sim, gpt3, batch, 1280);
    const Bytes operand = static_cast<double>(batch) * 1280 * gpt3.d_model;
    sweep.add_row({cell_i(batch), format_bytes(operand),
                   ir::residency_name(residency), format_time(result.latency),
                   cell_f(result.latency / ms, 3)});
    csv.write_row({"cim-tpu-auto", cell_i(batch),
                   ir::residency_name(residency), cell_f(result.latency, 9)});
  }
  sweep.print();

  return bench::run_microbenchmarks(argc, argv);
}
