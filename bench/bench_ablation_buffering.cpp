// Ablation: double buffering & staging depth (the paper's "double
// buffering and memory coalesce technique at each level of the memory
// hierarchy as scheduling options", Sec. III-C).  Uses the discrete-event
// tile pipeline to show how buffer depth moves operator latency for the
// paper's characteristic compute/memory balances.

#include "bench/bench_util.h"
#include "mem/memory.h"
#include "sim/pipeline_sim.h"

using namespace cimtpu;

namespace {

void BM_tile_pipeline(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        sim::simulate_tile_pipeline(10e-3, 8e-3, 256, state.range(0)));
  }
}
BENCHMARK(BM_tile_pipeline)->Arg(1)->Arg(2)->Arg(4);

}  // namespace

int main(int argc, char** argv) {
  bench::banner("Ablation: double buffering",
                "tile-pipeline latency vs staging-buffer depth");

  CsvWriter csv(bench::output_dir() + "/ablation_buffering.csv");
  csv.write_header({"scenario", "buffer_depth", "total_s", "engine_idle_s"});

  // Characteristic operator balances from the Fig. 6 workloads:
  //   prefill FFN (compute-bound), decode linear (memory-bound),
  //   balanced mid-size GEMM.
  const struct {
    const char* name;
    Seconds compute;
    Seconds memory;
    int tiles;
  } scenarios[] = {
      {"prefill FFN (compute-bound)", 19.6e-3, 1.0e-3, 112},
      {"decode linear (memory-bound)", 0.30e-3, 1.0e-3, 38},
      {"balanced GEMM", 4.0e-3, 4.0e-3, 64},
  };

  for (const auto& scenario : scenarios) {
    AsciiTable table(scenario.name);
    table.set_header({"buffer depth", "latency", "vs depth 2",
                      "engine idle", "analytic model"});
    const Seconds analytic = mem::overlap_double_buffered(
        scenario.compute, scenario.memory, scenario.tiles);
    const Seconds reference =
        sim::simulate_tile_pipeline(scenario.compute, scenario.memory,
                                    scenario.tiles, 2)
            .total;
    for (int depth : {1, 2, 3, 4}) {
      const auto result = sim::simulate_tile_pipeline(
          scenario.compute, scenario.memory, scenario.tiles, depth);
      table.add_row({cell_i(depth), format_time(result.total),
                     format_percent_delta(result.total / reference - 1.0),
                     format_time(result.compute_idle),
                     depth == 2 ? format_time(analytic) : std::string("-")});
      csv.write_row({scenario.name, cell_i(depth), cell_f(result.total, 9),
                     cell_f(result.compute_idle, 9)});
    }
    table.print();
    std::printf("\n");
  }
  std::printf(
      "  depth 1 (no double buffering) serializes load and compute —\n"
      "  up to 2x slower on balanced ops; depth > 2 buys nothing, matching\n"
      "  the paper's choice of plain double buffering.\n");

  return bench::run_microbenchmarks(argc, argv);
}
