// Diffusion-transformer image generation example: cost a DiT-XL/2 sampling
// run (multiple denoising steps) at several image resolutions on the
// baseline TPU and the CIM designs — the second workload class the paper
// evaluates.
//
// Usage:
//   ./dit_image_gen [batch] [steps]
//   ./dit_image_gen 8 50

#include <cstdio>
#include <cstdlib>

#include "arch/chip.h"
#include "arch/tpu_config.h"
#include "common/table.h"
#include "common/units.h"
#include "sim/workload_runner.h"

using namespace cimtpu;

int main(int argc, char** argv) {
  const std::int64_t batch = argc > 1 ? std::atoll(argv[1]) : 8;
  const int steps = argc > 2 ? std::atoi(argv[2]) : 50;

  std::printf("DiT-XL/2 image generation: batch %lld, %d sampling steps\n\n",
              static_cast<long long>(batch), steps);

  const struct {
    const char* label;
    arch::TpuChipConfig config;
  } designs[] = {
      {"TPUv4i baseline", arch::tpu_v4i_baseline()},
      {"CIM-based TPU", arch::cim_tpu_default()},
      {"Design B (8x 16x8)", arch::design_b()},
  };

  for (std::int64_t image_size : {256, 512}) {
    sim::DitScenario scenario;
    scenario.model = models::dit_xl_2();
    scenario.geometry = models::dit_geometry_512();
    scenario.geometry.image_size = image_size;
    scenario.batch = batch;
    scenario.sampling_steps = steps;

    AsciiTable table("DiT-XL/2 @ " + std::to_string(image_size) + "x" +
                     std::to_string(image_size) + " (" +
                     std::to_string(scenario.geometry.tokens()) + " tokens)");
    table.set_header({"Design", "Latency/run", "ms/step", "images/s",
                      "MXU energy", "MXU J/image"});
    for (const auto& design : designs) {
      arch::TpuChip chip(design.config);
      sim::Simulator simulator(chip);
      const sim::GraphResult run = sim::run_dit_inference(simulator, scenario);
      table.add_row(
          {design.label, format_time(run.latency),
           cell_f(run.latency / steps / ms, 2),
           cell_f(batch / run.latency, 2), format_energy(run.mxu_energy()),
           format_energy(run.mxu_energy() / batch)});
    }
    table.print();
    std::printf("\n");
  }

  // Per-group view of one block on the CIM design: where a DiT block's
  // time goes (the paper's Softmax-bottleneck observation).
  arch::TpuChip chip(arch::cim_tpu_default());
  sim::Simulator simulator(chip);
  const auto block = sim::run_dit_block(simulator, models::dit_xl_2(),
                                        models::dit_geometry_512(), batch);
  AsciiTable split("CIM-TPU DiT block latency split");
  split.set_header({"group", "latency", "share"});
  for (const auto& [group, summary] : block.groups) {
    split.add_row({group, format_time(summary.latency),
                   cell_f(100.0 * summary.latency / block.latency, 1) + "%"});
  }
  split.print();
  return 0;
}
