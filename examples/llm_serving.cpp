// LLM serving example: evaluate a GPT3-30B serving deployment end to end —
// prefill + autoregressive decode with a growing KV cache — on the baseline
// TPUv4i, the CIM-based TPU, and Design A, then scale out to a 4-chip
// pipeline.  This is the workload the paper's Sec. V targets.
//
// Usage:
//   ./llm_serving [model] [batch] [input_len] [output_len]
//   ./llm_serving gpt3-30b 8 1024 512

#include <cstdio>
#include <cstdlib>

#include "arch/chip.h"
#include "arch/tpu_config.h"
#include "common/table.h"
#include "common/units.h"
#include "parallel/multi_chip.h"
#include "sim/workload_runner.h"

using namespace cimtpu;

int main(int argc, char** argv) {
  sim::LlmScenario scenario;
  scenario.model =
      models::model_by_name(argc > 1 ? argv[1] : "gpt3-30b");
  scenario.batch = argc > 2 ? std::atoll(argv[2]) : 8;
  scenario.input_len = argc > 3 ? std::atoll(argv[3]) : 1024;
  scenario.output_len = argc > 4 ? std::atoll(argv[4]) : 512;

  std::printf("LLM serving: %s, batch %lld, %lld in / %lld out, INT8\n\n",
              scenario.model.name.c_str(),
              static_cast<long long>(scenario.batch),
              static_cast<long long>(scenario.input_len),
              static_cast<long long>(scenario.output_len));

  const struct {
    const char* label;
    arch::TpuChipConfig config;
  } designs[] = {
      {"TPUv4i baseline", arch::tpu_v4i_baseline()},
      {"CIM-based TPU", arch::cim_tpu_default()},
      {"Design A (4x 8x8)", arch::design_a()},
      {"Design B (8x 16x8)", arch::design_b()},
  };

  AsciiTable table("Single-chip inference");
  table.set_header({"Design", "Prefill", "Decode", "Total", "ms/token",
                    "MXU energy", "avg MXU power"});
  for (const auto& design : designs) {
    arch::TpuChip chip(design.config);
    sim::Simulator simulator(chip);
    const sim::LlmRunResult run = sim::run_llm_inference(simulator, scenario);
    table.add_row({design.label, format_time(run.prefill.latency),
                   format_time(run.decode.latency),
                   format_time(run.total.latency),
                   cell_f(run.decode_latency_per_token / ms, 3),
                   format_energy(run.total.mxu_energy()),
                   format_power(run.total.mxu_power())});
  }
  table.print();

  // Multi-chip pipeline serving (ring topology, as in the paper's Fig. 8).
  AsciiTable pipeline("4-chip pipeline serving");
  pipeline.set_header({"Design", "tokens/s", "requests/s", "req latency",
                       "MXU J/request", "ICI J/request"});
  for (const auto& design : designs) {
    const auto result =
        parallel::evaluate_llm_pipeline(design.config, scenario, 4);
    pipeline.add_row({design.label, cell_f(result.tokens_per_second, 1),
                      cell_f(result.requests_per_second, 3),
                      format_time(result.request_latency),
                      format_energy(result.mxu_energy_per_request),
                      format_energy(result.ici_energy_per_request)});
  }
  pipeline.print();

  // Where does decode time go?  Print the per-group split on the baseline,
  // mid-generation.
  arch::TpuChip base_chip(arch::tpu_v4i_baseline());
  sim::Simulator base_sim(base_chip);
  const auto decode = sim::run_decode_layer(
      base_sim, scenario.model, scenario.batch,
      scenario.input_len + scenario.output_len / 2);
  AsciiTable split("Baseline decode latency split (per layer, mid-generation)");
  split.set_header({"group", "latency", "share"});
  for (const auto& [group, summary] : decode.groups) {
    split.add_row({group, format_time(summary.latency),
                   cell_f(100.0 * summary.latency / decode.latency, 1) + "%"});
  }
  split.print();
  return 0;
}
