// Design-space explorer: sweep user-defined CIM-MXU configurations (or a
// config file) over an LLM and a DiT workload and print the
// latency/energy/area Pareto view the paper's Sec. V builds Designs A and B
// from.
//
// Usage:
//   ./design_space_explorer                 # sweep the Table IV grid
//   ./design_space_explorer my_chip.conf    # evaluate one custom config
//
// Config file keys (all optional; defaults are the paper's CIM-based TPU):
//   mxu.count      = 4
//   cim.grid_rows  = 16
//   cim.grid_cols  = 8
//   cim.core_rows  = 128
//   cim.core_cols  = 256
//   technology     = 7nm
//   clock_ghz      = 1.05
//   mem.hbm_gbps   = 614

#include <cstdio>
#include <vector>

#include "arch/chip.h"
#include "arch/tpu_config.h"
#include "common/config.h"
#include "common/table.h"
#include "common/units.h"
#include "sim/workload_runner.h"

using namespace cimtpu;

namespace {

arch::TpuChipConfig config_from_file(const std::string& path) {
  const ConfigMap file = ConfigMap::load_file(path);
  arch::TpuChipConfig config = arch::cim_tpu_default();
  config.name = file.get_string("name", "custom-cim-tpu");
  config.mxu_count = static_cast<int>(file.get_int("mxu.count", 4));
  config.cim.grid_rows = static_cast<int>(file.get_int("cim.grid_rows", 16));
  config.cim.grid_cols = static_cast<int>(file.get_int("cim.grid_cols", 8));
  config.cim.core_rows = static_cast<int>(file.get_int("cim.core_rows", 128));
  config.cim.core_cols = static_cast<int>(file.get_int("cim.core_cols", 256));
  config.technology = file.get_string("technology", "7nm");
  const double clock_ghz = file.get_double("clock_ghz", 0.0);
  if (clock_ghz > 0) config.clock = clock_ghz * GHz;
  config.memory.hbm.bandwidth = file.get_double("mem.hbm_gbps", 614) * GBps;
  config.validate();
  return config;
}

struct Evaluation {
  std::string name;
  double peak_tops;
  SquareMm mxu_area;
  Seconds llm_latency;
  Joules llm_energy;
  Seconds dit_latency;
  Joules dit_energy;
};

Evaluation evaluate(const arch::TpuChipConfig& config) {
  arch::TpuChip chip(config);
  sim::Simulator simulator(chip);

  sim::LlmScenario llm;
  llm.model = models::gpt3_30b();
  llm.model.num_layers = 4;  // representative slice; ratios are invariant
  llm.batch = 8;
  llm.input_len = 1024;
  llm.output_len = 512;

  sim::DitScenario dit;
  dit.model = models::dit_xl_2();
  dit.geometry = models::dit_geometry_512();
  dit.batch = 8;

  const auto llm_run = sim::run_llm_inference(simulator, llm);
  const auto dit_run = sim::run_dit_inference(simulator, dit);
  return {config.name,
          chip.peak_ops_per_second() / 1e12,
          chip.area_report().mxus,
          llm_run.total.latency,
          llm_run.total.mxu_energy(),
          dit_run.latency,
          dit_run.mxu_energy()};
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<arch::TpuChipConfig> configs;
  configs.push_back(arch::tpu_v4i_baseline());
  if (argc > 1) {
    configs.push_back(config_from_file(argv[1]));
  } else {
    for (int count : {2, 4, 8}) {
      for (const auto& [rows, cols] : std::initializer_list<std::pair<int, int>>{
               {8, 8}, {16, 8}, {16, 16}}) {
        configs.push_back(arch::cim_tpu(count, rows, cols));
      }
    }
  }

  const Evaluation base = evaluate(configs.front());
  AsciiTable table("Design-space exploration (GPT3-30B 4-layer slice + DiT-XL/2)");
  table.set_header({"Design", "Peak TOPS", "MXU mm2", "LLM latency",
                    "LLM E ratio", "DiT latency", "DiT E ratio"});
  for (const auto& config : configs) {
    const Evaluation e = evaluate(config);
    table.add_row({e.name, cell_f(e.peak_tops, 0), cell_f(e.mxu_area, 1),
                   format_time(e.llm_latency),
                   format_ratio(base.llm_energy / e.llm_energy),
                   format_time(e.dit_latency),
                   format_ratio(base.dit_energy / e.dit_energy)});
  }
  table.print();
  std::printf(
      "\nPick the LLM sweet spot (Design A: 4x 8x8) for energy-bound serving\n"
      "and the DiT point (Design B: 8x 16x8) for throughput-bound sampling.\n");
  return 0;
}
