// Quickstart: build a baseline TPUv4i chip and the paper's CIM-based TPU,
// run one GPT3-30B Transformer layer through both (prefill and decode), and
// print the latency / MXU-energy comparison — the experiment at the heart
// of the paper's Fig. 6.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart

#include <cstdio>

#include "arch/chip.h"
#include "arch/report.h"
#include "arch/tpu_config.h"
#include "common/table.h"
#include "common/units.h"
#include "sim/workload_runner.h"

using namespace cimtpu;

namespace {

void report_stage(const char* stage, const sim::GraphResult& baseline,
                  const sim::GraphResult& cim) {
  std::printf("  %-12s latency %9s -> %9s (%s)   MXU energy %9s -> %9s (%s)\n",
              stage, format_time(baseline.latency).c_str(),
              format_time(cim.latency).c_str(),
              format_percent_delta(cim.latency / baseline.latency - 1.0).c_str(),
              format_energy(baseline.mxu_energy()).c_str(),
              format_energy(cim.mxu_energy()).c_str(),
              format_ratio(baseline.mxu_energy() / cim.mxu_energy()).c_str());
}

}  // namespace

int main() {
  // 1. Configure the two chips (Table I).
  arch::TpuChip baseline(arch::tpu_v4i_baseline());
  arch::TpuChip cim_chip(arch::cim_tpu_default());
  sim::Simulator baseline_sim(baseline);
  sim::Simulator cim_sim(cim_chip);

  std::printf("chips: %s (%.1f TOPS) vs %s (%.1f TOPS)\n",
              baseline.config().name.c_str(),
              baseline.peak_ops_per_second() / 1e12,
              cim_chip.config().name.c_str(),
              cim_chip.peak_ops_per_second() / 1e12);
  std::printf("MXU area: %.1f mm^2 vs %.1f mm^2\n",
              baseline.mxu().area() * baseline.mxu_count(),
              cim_chip.mxu().area() * cim_chip.mxu_count());
  std::printf("\n%s", arch::chip_comparison(baseline, cim_chip).c_str());

  // 2. One GPT3-30B Transformer layer, batch 8 (paper Sec. IV-B).
  const models::TransformerConfig gpt3 = models::gpt3_30b();
  const std::int64_t batch = 8;

  // Prefill: 1024-token prompt.
  const auto prefill_base =
      sim::run_prefill_layer(baseline_sim, gpt3, batch, 1024);
  const auto prefill_cim = sim::run_prefill_layer(cim_sim, gpt3, batch, 1024);
  // Decode: the 256th output token (KV = 1024 + 256).
  const auto decode_base =
      sim::run_decode_layer(baseline_sim, gpt3, batch, 1024 + 256);
  const auto decode_cim =
      sim::run_decode_layer(cim_sim, gpt3, batch, 1024 + 256);

  std::printf("\nGPT3-30B single layer, batch 8, INT8:\n");
  report_stage("prefill", prefill_base, prefill_cim);
  report_stage("decode", decode_base, decode_cim);

  // 3. One DiT-XL/2 block at 512x512.
  const models::TransformerConfig dit = models::dit_xl_2();
  const auto geometry = models::dit_geometry_512();
  const auto dit_base = sim::run_dit_block(baseline_sim, dit, geometry, batch);
  const auto dit_cim = sim::run_dit_block(cim_sim, dit, geometry, batch);
  std::printf("\nDiT-XL/2 single block, 512x512, batch 8:\n");
  report_stage("dit-block", dit_base, dit_cim);

  // 4. Per-group latency breakdown (the Fig. 6 bars).
  auto print_groups = [](const char* title, const sim::GraphResult& a,
                         const sim::GraphResult& b) {
    std::printf("\n%s (baseline -> cim):\n", title);
    for (const auto& [group, summary] : a.groups) {
      const auto it = b.groups.find(group);
      std::printf("  %-14s %9s (%5.1f%%) -> %9s\n", group.c_str(),
                  format_time(summary.latency).c_str(),
                  100.0 * summary.latency / a.latency,
                  it == b.groups.end()
                      ? "-"
                      : format_time(it->second.latency).c_str());
    }
  };
  print_groups("decode breakdown", decode_base, decode_cim);
  print_groups("dit breakdown", dit_base, dit_cim);
  return 0;
}
