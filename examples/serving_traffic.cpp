// Request-level serving-traffic simulation: replay a stochastic request
// stream (Poisson or bursty arrivals, Zipf-tailed prompt/output lengths)
// through vLLM-style continuous batching on the simulated TPU, and report
// the serving metrics that a fixed single-batch evaluation cannot see —
// TTFT/TPOT percentiles, goodput, energy per token, and utilization — for
// a single chip and a 4-chip pipeline.
//
// Usage:
//   ./serving_traffic [model] [requests] [rate_req_s] [seed] [process] [dtype]
//   ./serving_traffic llama2-7b 10000 20 42 poisson int4
//
// A fixed seed reproduces bit-identical metrics run to run.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "common/status.h"
#include "common/table.h"
#include "common/units.h"
#include "models/model_zoo.h"
#include "serving/traffic_profiles.h"

using namespace cimtpu;

int main(int argc, char** argv) {
  serving::RequestStreamConfig stream = serving::zipf_chat_stream(
      /*seed=*/argc > 4 ? std::strtoull(argv[4], nullptr, 10) : 42,
      /*num_requests=*/argc > 2 ? std::atoll(argv[2]) : 10000,
      /*arrival_rate=*/argc > 3 ? std::atof(argv[3]) : 20.0);
  if (argc > 5 && std::strcmp(argv[5], "bursty") == 0) {
    stream.process = serving::ArrivalProcess::kBursty;
  }

  serving::ServingScenario scenario = serving::llama7b_baseline_scenario(
      /*chips=*/1, (argc > 6 && std::strcmp(argv[6], "int8") == 0)
                       ? ir::DType::kInt8
                       : ir::DType::kInt4);
  if (argc > 1) {
    const ir::DType dtype = scenario.model.dtype;
    scenario.model = models::model_by_name(argv[1]);
    scenario.model.dtype = dtype;
  }

  std::printf(
      "Serving traffic: %s (%s), %lld requests, %s arrivals at %.1f req/s, "
      "seed %llu\n\n",
      scenario.model.name.c_str(), ir::dtype_name(scenario.model.dtype).c_str(),
      static_cast<long long>(stream.num_requests),
      serving::arrival_process_name(stream.process).c_str(),
      stream.arrival_rate, static_cast<unsigned long long>(stream.seed));

  const std::vector<serving::Request> requests =
      serving::generate_requests(stream);

  AsciiTable table("Continuous-batching serving metrics (TPUv4i baseline)");
  table.set_header({"chips", "TTFT p50", "TTFT p99", "TPOT p50", "TPOT p99",
                    "e2e p99", "tokens/s", "J/token", "MXU util",
                    "steps", "preempt"});
  const auto wall_start = std::chrono::steady_clock::now();
  for (int chips : {1, 4}) {
    scenario.chips = chips;
    const serving::ServingMetrics metrics =
        serving::run_serving(scenario, requests);
    table.add_row({cell_i(chips), format_time(metrics.ttft.p50),
                   format_time(metrics.ttft.p99), format_time(metrics.tpot.p50),
                   format_time(metrics.tpot.p99), format_time(metrics.e2e.p99),
                   cell_f(metrics.goodput_tokens_per_second, 1),
                   format_energy(metrics.energy_per_token),
                   cell_f(100.0 * metrics.mxu_utilization, 1) + "%",
                   cell_i(metrics.total_steps), cell_i(metrics.preemptions)});
    std::printf(
        "chips=%d: completed %lld/%lld requests (%lld tokens) over %s "
        "simulated; cost cache %zu shapes (%lld hits / %lld misses)\n",
        chips, static_cast<long long>(metrics.completed),
        static_cast<long long>(metrics.num_requests),
        static_cast<long long>(metrics.generated_tokens),
        format_time(metrics.makespan).c_str(), metrics.cost_cache_entries,
        static_cast<long long>(metrics.cost_cache_hits),
        static_cast<long long>(metrics.cost_cache_misses));
  }
  const auto wall_end = std::chrono::steady_clock::now();
  std::printf("\n");
  table.print();
  std::printf("wall clock: %.2f s for both deployments\n",
              std::chrono::duration<double>(wall_end - wall_start).count());
  return 0;
}
