// Request-level serving-traffic simulation: replay a stochastic request
// stream (Poisson or bursty arrivals, Zipf-tailed prompt/output lengths)
// through vLLM-style continuous batching on the simulated TPU, and report
// the serving metrics that a fixed single-batch evaluation cannot see —
// TTFT/TPOT percentiles, goodput, energy per token, and utilization — for
// a single chip and a 4-chip pipeline, followed by a preemption-policy x
// chunked-prefill comparison under a deliberately tight KV budget.
//
// Usage:
//   ./serving_traffic [model] [requests] [rate_req_s] [seed] [process] [dtype]
//   ./serving_traffic llama2-7b 10000 20 42 poisson int4
//
// A fixed seed reproduces bit-identical metrics run to run; everything on
// stdout is deterministic (wall-clock timing goes to stderr), so CI diffs
// two runs byte for byte.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "common/status.h"
#include "common/table.h"
#include "common/units.h"
#include "models/model_zoo.h"
#include "serving/traffic_profiles.h"

using namespace cimtpu;

int main(int argc, char** argv) {
  serving::RequestStreamConfig stream = serving::zipf_chat_stream(
      /*seed=*/argc > 4 ? std::strtoull(argv[4], nullptr, 10) : 42,
      /*num_requests=*/argc > 2 ? std::atoll(argv[2]) : 10000,
      /*arrival_rate=*/argc > 3 ? std::atof(argv[3]) : 20.0);
  if (argc > 5 && std::strcmp(argv[5], "bursty") == 0) {
    stream.process = serving::ArrivalProcess::kBursty;
  }

  serving::ServingScenario scenario = serving::llama7b_baseline_scenario(
      /*chips=*/1, (argc > 6 && std::strcmp(argv[6], "int8") == 0)
                       ? ir::DType::kInt8
                       : ir::DType::kInt4);
  if (argc > 1) {
    const ir::DType dtype = scenario.model.dtype;
    scenario.model = models::model_by_name(argv[1]);
    scenario.model.dtype = dtype;
  }

  std::printf(
      "Serving traffic: %s (%s), %lld requests, %s arrivals at %.1f req/s, "
      "seed %llu\n\n",
      scenario.model.name.c_str(), ir::dtype_name(scenario.model.dtype).c_str(),
      static_cast<long long>(stream.num_requests),
      serving::arrival_process_name(stream.process).c_str(),
      stream.arrival_rate, static_cast<unsigned long long>(stream.seed));

  const std::vector<serving::Request> requests =
      serving::generate_requests(stream);

  AsciiTable table("Continuous-batching serving metrics (TPUv4i baseline)");
  table.set_header({"chips", "TTFT p50", "TTFT p99", "TPOT p50", "TPOT p99",
                    "e2e p99", "tokens/s", "J/token", "MXU util",
                    "steps", "preempt"});
  const auto wall_start = std::chrono::steady_clock::now();
  for (int chips : {1, 4}) {
    scenario.chips = chips;
    const serving::ServingMetrics metrics =
        serving::run_serving(scenario, requests);
    table.add_row({cell_i(chips), format_time(metrics.ttft.p50),
                   format_time(metrics.ttft.p99), format_time(metrics.tpot.p50),
                   format_time(metrics.tpot.p99), format_time(metrics.e2e.p99),
                   cell_f(metrics.goodput_tokens_per_second, 1),
                   format_energy(metrics.energy_per_token),
                   cell_f(100.0 * metrics.mxu_utilization, 1) + "%",
                   cell_i(metrics.total_steps), cell_i(metrics.preemptions)});
    std::printf(
        "chips=%d: completed %lld/%lld requests (%lld tokens) over %s "
        "simulated; cost cache %zu shapes (%lld hits / %lld misses)\n",
        chips, static_cast<long long>(metrics.completed),
        static_cast<long long>(metrics.num_requests),
        static_cast<long long>(metrics.generated_tokens),
        format_time(metrics.makespan).c_str(), metrics.cost_cache_entries,
        static_cast<long long>(metrics.cost_cache_hits),
        static_cast<long long>(metrics.cost_cache_misses));
  }
  std::printf("\n");
  table.print();

  // --- Preemption policy x chunked prefill under KV pressure -----------------
  // Same model on one chip, but the KV budget capped at 8000 cached tokens
  // (~10x below HBM headroom) so eviction policies actually fire.  Swap
  // victims keep their decode progress and pay PCIe; recompute victims
  // re-prefill; priority victims concentrate evictions on the lowest
  // priority class (the stream tags 3 classes).
  serving::RequestStreamConfig pressured_stream = stream;
  pressured_stream.num_requests =
      std::min<std::int64_t>(stream.num_requests, 2000);
  pressured_stream.priority_classes = 3;
  const std::vector<serving::Request> pressured_requests =
      serving::generate_requests(pressured_stream);

  AsciiTable policy_table(
      "Preemption policy comparison — 8000-token KV budget, " +
      cell_i(pressured_stream.num_requests) + " requests");
  policy_table.set_header({"policy", "chunk", "TTFT p99", "TPOT p99",
                           "e2e p99", "tokens/s", "preempt", "swapped",
                           "swap GiB", "chunk steps"});
  for (serving::EvictionPolicy policy :
       {serving::EvictionPolicy::kPreemptNewest,
        serving::EvictionPolicy::kSwapToHost,
        serving::EvictionPolicy::kPriorityVictim}) {
    for (std::int64_t chunk : {std::int64_t{0}, std::int64_t{512}}) {
      serving::ServingScenario pressured =
          serving::llama7b_pressured_scenario(
              /*chips=*/1, scenario.model.dtype, policy, chunk,
              /*kv_budget_tokens=*/8000);
      pressured.model = scenario.model;  // honour the CLI model choice
      pressured.kv_budget_override =
          serving::KvCacheManager::token_bytes(pressured.model) * 8000.0;
      const serving::ServingMetrics metrics =
          serving::run_serving(pressured, pressured_requests);
      policy_table.add_row(
          {serving::eviction_policy_name(policy),
           chunk == 0 ? "off" : cell_i(chunk), format_time(metrics.ttft.p99),
           format_time(metrics.tpot.p99), format_time(metrics.e2e.p99),
           cell_f(metrics.goodput_tokens_per_second, 1),
           cell_i(metrics.counters.preemptions_recompute),
           cell_i(metrics.counters.preemptions_swap),
           cell_f(metrics.counters.total_swap_bytes() / GiB, 2),
           cell_i(metrics.counters.chunked_prefill_steps)});
    }
  }
  std::printf("\n");
  policy_table.print();

  const auto wall_end = std::chrono::steady_clock::now();
  // stderr: timing is run-dependent, everything on stdout is reproducible.
  std::fprintf(stderr, "wall clock: %.2f s for all deployments\n",
               std::chrono::duration<double>(wall_end - wall_start).count());
  return 0;
}
