// Request-level serving-traffic simulation: replay a stochastic request
// stream (Poisson or bursty arrivals, Zipf-tailed prompt/output lengths)
// through vLLM-style continuous batching on the simulated TPU, and report
// the serving metrics that a fixed single-batch evaluation cannot see —
// TTFT/TPOT percentiles, goodput, energy per token, and utilization — for
// a single chip and a 4-chip pipeline, followed by a preemption-policy x
// chunked-prefill comparison under a deliberately tight KV budget, and a
// multi-tenant admission demo (FIFO vs weighted fair queueing at 3:1
// tenant weights) with per-tenant goodput shares and Jain fairness, and an
// SLO-aware scheduling demo (FIFO vs earliest-deadline-first admission on
// deadline-carrying traffic, with a JSONL request-trace round-trip and a
// staggered diurnal tenant mix).
//
// All deployments run on the deterministic parallel sweep driver
// (serving/sweep.h): CIMTPU_SWEEP_THREADS sets the worker count, and the
// metrics are bit-identical whatever that count is.
//
// Usage:
//   ./serving_traffic [model] [requests] [rate_req_s] [seed] [process] [dtype]
//                     [--trace-dir <dir>] [--fault-storm] [--cluster]
//   ./serving_traffic llama2-7b 10000 20 42 poisson int4
//   ./serving_traffic llama2-7b 2000 20 42 poisson int4 --trace-dir traces
//
// A fixed seed reproduces bit-identical metrics run to run; everything on
// stdout is deterministic (wall-clock timing, thread count, and trace file
// paths go to stderr), so CI diffs two runs — or a serial run against a
// parallel one — byte for byte.  With --trace-dir the observability demo
// additionally writes Perfetto trace files there (open them in
// https://ui.perfetto.dev); those files are deterministic too.
// --fault-storm appends the fault-injection demo: the canonical seeded
// fault storm (traffic_profiles.h) with recovery off vs on, on the sweep
// driver — its stdout (and, with --trace-dir, its per-cell trace files)
// is byte-identical whatever CIMTPU_SWEEP_THREADS says, which the CI
// determinism job checks.  --cluster appends the cluster-scale serving
// demo (serving/cluster.h): a per-replica breakdown of one 4-replica
// prefix-affinity run, the canonical router-policy comparison, and the
// colocated-vs-disaggregated frontier — the same grids bench_serving's
// schema-v9 "cluster" block pins, with kRoute/kKvTransfer trace files
// under --trace-dir.  Unknown flags are an error.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>

#include "common/status.h"
#include "common/table.h"
#include "common/units.h"
#include "models/model_zoo.h"
#include "serving/cluster.h"
#include "serving/request_trace.h"
#include "serving/sweep.h"
#include "serving/trace.h"
#include "serving/traffic_profiles.h"

using namespace cimtpu;

int main(int argc, char** argv) {
  // Strip flag arguments first so the positional [model] [requests] ...
  // interface keeps working with or without flags, in any position.
  // Unknown "--" flags are rejected loudly: a typo like --trace-dri
  // silently ignored would run the wrong experiment.
  std::string trace_dir;
  bool fault_storm = false;
  bool cluster = false;
  int kept = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--trace-dir") == 0) {
      if (i + 1 >= argc) {
        std::fprintf(stderr,
                     "serving_traffic: --trace-dir requires a value\n");
        return 1;
      }
      trace_dir = argv[++i];
    } else if (std::strcmp(argv[i], "--fault-storm") == 0) {
      fault_storm = true;
    } else if (std::strcmp(argv[i], "--cluster") == 0) {
      cluster = true;
    } else if (std::strncmp(argv[i], "--", 2) == 0) {
      std::fprintf(stderr,
                   "serving_traffic: unknown flag '%s' (expected "
                   "--trace-dir <dir>, --fault-storm, or --cluster)\n",
                   argv[i]);
      return 1;
    } else {
      argv[kept++] = argv[i];
    }
  }
  argc = kept;

  serving::RequestStreamConfig stream = serving::zipf_chat_stream(
      /*seed=*/argc > 4 ? std::strtoull(argv[4], nullptr, 10) : 42,
      /*num_requests=*/argc > 2 ? std::atoll(argv[2]) : 10000,
      /*arrival_rate=*/argc > 3 ? std::atof(argv[3]) : 20.0);
  if (argc > 5 && std::strcmp(argv[5], "bursty") == 0) {
    stream.process = serving::ArrivalProcess::kBursty;
  }

  serving::ServingScenario scenario = serving::llama7b_baseline_scenario(
      /*chips=*/1, (argc > 6 && std::strcmp(argv[6], "int8") == 0)
                       ? ir::DType::kInt8
                       : ir::DType::kInt4);
  if (argc > 1) {
    const ir::DType dtype = scenario.model.dtype;
    scenario.model = models::model_by_name(argv[1]);
    scenario.model.dtype = dtype;
  }

  std::printf(
      "Serving traffic: %s (%s), %lld requests, %s arrivals at %.1f req/s, "
      "seed %llu\n\n",
      scenario.model.name.c_str(), ir::dtype_name(scenario.model.dtype).c_str(),
      static_cast<long long>(stream.num_requests),
      serving::arrival_process_name(stream.process).c_str(),
      stream.arrival_rate, static_cast<unsigned long long>(stream.seed));

  const std::vector<serving::Request> requests =
      serving::generate_requests(stream);
  // Both sweeps share one cost cache (same chip and model signature), so
  // the policy comparison starts from the chip comparison's warm store.
  serving::SharedStepCostCache shared_costs;
  serving::SweepOptions sweep_options;  // threads from env / hardware
  sweep_options.shared_cache = &shared_costs;
  const auto wall_start = std::chrono::steady_clock::now();

  // --- Chip-count comparison on the sweep driver -----------------------------
  const std::vector<int> chip_counts = {1, 4};
  std::vector<serving::SweepPoint> chip_points;
  for (int chips : chip_counts) {
    serving::SweepPoint point;
    point.label = "chips=" + cell_i(chips);
    point.scenario = scenario;
    point.scenario.chips = chips;
    point.requests = &requests;
    chip_points.push_back(std::move(point));
  }
  const std::vector<serving::ServingMetrics> chip_results =
      serving::run_sweep(chip_points, sweep_options);

  AsciiTable table("Continuous-batching serving metrics (TPUv4i baseline)");
  table.set_header({"chips", "TTFT p50", "TTFT p99", "TPOT p50", "TPOT p99",
                    "e2e p99", "tokens/s", "J/token", "MXU util",
                    "steps", "preempt"});
  for (std::size_t i = 0; i < chip_counts.size(); ++i) {
    const serving::ServingMetrics& metrics = chip_results[i];
    const int chips = chip_counts[i];
    table.add_row({cell_i(chips), format_time(metrics.ttft.p50),
                   format_time(metrics.ttft.p99), format_time(metrics.tpot.p50),
                   format_time(metrics.tpot.p99), format_time(metrics.e2e.p99),
                   cell_f(metrics.goodput_tokens_per_second, 1),
                   format_energy(metrics.energy_per_token),
                   cell_f(100.0 * metrics.mxu_utilization, 1) + "%",
                   cell_i(metrics.total_steps), cell_i(metrics.preemptions)});
    std::printf(
        "chips=%d: completed %lld/%lld requests (%lld tokens) over %s "
        "simulated; cost cache %zu shapes (%lld hits / %lld misses)\n",
        chips, static_cast<long long>(metrics.completed),
        static_cast<long long>(metrics.num_requests),
        static_cast<long long>(metrics.generated_tokens),
        format_time(metrics.makespan).c_str(), metrics.cost_cache_entries,
        static_cast<long long>(metrics.cost_cache_hits),
        static_cast<long long>(metrics.cost_cache_misses));
  }
  std::printf("\n");
  table.print();

  // --- Preemption policy x chunked prefill under KV pressure -----------------
  // Same model on one chip, but the KV budget capped at 8000 cached tokens
  // (~10x below HBM headroom) so eviction policies actually fire.  Swap
  // victims keep their decode progress and pay PCIe; recompute victims
  // re-prefill; priority victims concentrate evictions on the lowest
  // priority class (the stream tags 3 classes).
  serving::RequestStreamConfig pressured_stream = stream;
  pressured_stream.num_requests =
      std::min<std::int64_t>(stream.num_requests, 2000);
  pressured_stream.priority_classes = 3;
  const std::vector<serving::Request> pressured_requests =
      serving::generate_requests(pressured_stream);

  // The CANONICAL pressured grid (traffic_profiles.h): the same policy x
  // chunk points bench_serving benchmarks, at the CLI-chosen model.
  const std::vector<serving::SweepPoint> policy_points =
      serving::pressured_policy_grid_points(scenario.model,
                                            &pressured_requests,
                                            /*kv_budget_tokens=*/8000);
  const std::vector<serving::ServingMetrics> policy_results =
      serving::run_sweep(policy_points, sweep_options);

  AsciiTable policy_table(
      "Preemption policy comparison — 8000-token KV budget, " +
      cell_i(pressured_stream.num_requests) + " requests");
  policy_table.set_header({"policy", "chunk", "TTFT p99", "TPOT p99",
                           "e2e p99", "tokens/s", "preempt", "swapped",
                           "swap GiB", "chunk steps"});
  for (std::size_t i = 0; i < policy_points.size(); ++i) {
    const serving::ServingMetrics& metrics = policy_results[i];
    const serving::ServingScenario& point = policy_points[i].scenario;
    const std::int64_t chunk = point.scheduler.prefill_chunk_tokens;
    policy_table.add_row(
        {serving::eviction_policy_name(point.eviction),
         chunk == 0 ? "off" : cell_i(chunk), format_time(metrics.ttft.p99),
         format_time(metrics.tpot.p99), format_time(metrics.e2e.p99),
         cell_f(metrics.goodput_tokens_per_second, 1),
         cell_i(metrics.counters.preemptions_recompute),
         cell_i(metrics.counters.preemptions_swap),
         cell_f(metrics.counters.total_swap_bytes() / GiB, 2),
         cell_i(metrics.counters.chunked_prefill_steps)});
  }
  std::printf("\n");
  policy_table.print();

  // --- Multi-tenant admission: FIFO vs weighted fair queueing ----------------
  // Two tenants at 3:1 admission weights over a fixed 30-simulated-second
  // OVERLOAD window (the horizon keeps both tenants backlogged, so
  // per-tenant goodput reflects the admission policy's share enforcement,
  // not the traffic mix — a full drain would always end near the ~1:1
  // arrival split).  FIFO ignores tenants; WFQ's goodput ratio tracks the
  // 3:1 weights and its weight-normalized Jain index approaches 1.
  const std::vector<serving::Request> tenant_requests =
      serving::generate_requests(serving::multi_tenant_pressure_stream(
          stream.seed, /*num_requests=*/400, /*arrival_rate=*/50.0,
          /*num_tenants=*/2));
  // The CANONICAL fairness grid (traffic_profiles.h): the same fifo/wfq
  // points bench_serving reports, at the CLI-chosen model and seed.
  const std::vector<serving::SweepPoint> tenant_points =
      serving::multi_tenant_fairness_points(scenario.model,
                                            &tenant_requests);
  const std::vector<serving::ServingMetrics> tenant_results =
      serving::run_sweep(tenant_points, sweep_options);

  AsciiTable tenant_table(
      "Multi-tenant admission — 2 tenants, weights 3:1, 30 s overload "
      "window, 2000-token KV budget");
  tenant_table.set_header({"admission", "tenant", "weight", "arrived", "done",
                           "tokens", "TTFT p50", "TTFT p99", "tokens/s",
                           "share"});
  std::printf("\n");
  for (std::size_t i = 0; i < tenant_points.size(); ++i) {
    const serving::ServingMetrics& metrics = tenant_results[i];
    const std::string admission =
        tenant_points[i].scenario.scheduler.admission.policy;
    if (i > 0) tenant_table.add_separator();
    double total_goodput = 0;
    for (const serving::TenantMetrics& tenant : metrics.tenants) {
      total_goodput += tenant.goodput_tokens_per_second;
    }
    for (const serving::TenantMetrics& tenant : metrics.tenants) {
      tenant_table.add_row(
          {admission, cell_i(tenant.tenant_id), cell_f(tenant.weight, 1),
           cell_i(tenant.num_requests), cell_i(tenant.completed),
           cell_i(tenant.generated_tokens), format_time(tenant.ttft.p50),
           format_time(tenant.ttft.p99),
           cell_f(tenant.goodput_tokens_per_second, 1),
           total_goodput > 0
               ? cell_f(100.0 * tenant.goodput_tokens_per_second /
                            total_goodput,
                        1) + "%"
               : "n/a"});
    }
    std::printf(
        "admission=%s: jain fairness (weight-normalized) %.4f, completed "
        "%lld/%lld within the %.0f s window\n",
        admission.c_str(), metrics.jain_fairness,
        static_cast<long long>(metrics.completed),
        static_cast<long long>(metrics.num_requests),
        serving::kMultiTenantFairnessHorizon);
  }
  std::printf("\n");
  tenant_table.print();

  // --- Paged KV: prefix caching on shared system prompts ---------------------
  // Chatbot traffic where every request opens with one of 4 shared
  // 1000-token system prompts (prefix_chatbot_stream).  With the prefix
  // cache ON, repeat prefixes map the cached KV blocks by reference and
  // skip their prefill entirely — hit rate, blocks saved, copy-on-write
  // tail copies, and the block allocator's internal fragmentation are the
  // new schema-v5 observables.
  const std::vector<serving::Request> prefix_requests =
      serving::generate_requests(serving::prefix_chatbot_stream(
          stream.seed, /*num_requests=*/400, /*arrival_rate=*/30.0));
  const std::vector<serving::SweepPoint> prefix_points =
      serving::prefix_cache_grid_points(scenario.model, &prefix_requests);
  const std::vector<serving::ServingMetrics> prefix_results =
      serving::run_sweep(prefix_points, sweep_options);

  AsciiTable prefix_table(
      "Paged KV prefix caching — " + cell_i(serving::kPrefixChatbotPool) +
      " shared " + cell_i(serving::kPrefixChatbotPrefixLen) +
      "-token system prompts, 20000-token KV budget, 400 requests");
  prefix_table.set_header({"block", "prefix cache", "TTFT p50", "TTFT p99",
                           "tokens/s", "hit rate", "blocks saved", "CoW",
                           "frag", "preempt"});
  std::printf("\n");
  for (std::size_t i = 0; i < prefix_points.size(); ++i) {
    const serving::ServingMetrics& metrics = prefix_results[i];
    const serving::SchedulerConfig& sched =
        prefix_points[i].scenario.scheduler;
    prefix_table.add_row(
        {cell_i(sched.kv_block_tokens),
         sched.enable_prefix_cache ? "on" : "off",
         format_time(metrics.ttft.p50), format_time(metrics.ttft.p99),
         cell_f(metrics.goodput_tokens_per_second, 1),
         cell_f(metrics.prefix_hit_rate, 3),
         cell_i(metrics.counters.prefix_shared_blocks),
         cell_i(metrics.counters.prefix_cow_blocks),
         cell_f(metrics.kv_internal_fragmentation, 4),
         cell_i(metrics.preemptions)});
    if (sched.enable_prefix_cache) {
      std::printf(
          "prefix_cache=on block=%lld: hit rate %.3f (%lld of %lld prefix "
          "tokens served from cache), %lld blocks saved, %lld CoW copies\n",
          static_cast<long long>(sched.kv_block_tokens),
          metrics.prefix_hit_rate,
          static_cast<long long>(metrics.counters.prefix_hit_tokens),
          static_cast<long long>(metrics.counters.prefix_lookup_tokens),
          static_cast<long long>(metrics.counters.prefix_shared_blocks),
          static_cast<long long>(metrics.counters.prefix_cow_blocks));
    }
  }
  std::printf("\n");
  prefix_table.print();

  // --- SLO-aware scheduling: FIFO vs EDF on deadline-carrying traffic --------
  // The canonical SLO frontier (traffic_profiles.h): every request carries
  // jittered TTFT/TPOT deadlines, and the grid sweeps arrival rate x
  // admission {fifo, edf} over a 30-simulated-second overload window.
  // FIFO serves head-of-line, so under overload queueing delay blows every
  // TTFT deadline; EDF admission control sheds provably-late requests
  // instead of spending prefill on them, and its attainment / SLO goodput
  // pull ahead as the rate climbs.
  const serving::ServingSweep slo_sweep =
      serving::slo_frontier_sweep(scenario.model, stream.seed);
  const std::vector<serving::SweepCellResult> slo_cells =
      serving::run_serving_sweep(slo_sweep, sweep_options);

  AsciiTable slo_table(
      "SLO frontier — TTFT " + cell_f(serving::kSloTtftDeadline, 1) +
      " s / TPOT " + cell_f(serving::kSloTpotDeadline, 2) +
      " s deadlines, 30 s overload window");
  slo_table.set_header({"rate (req/s)", "admission", "attainment",
                        "SLO tokens/s", "tokens/s", "done", "shed dl",
                        "shed hz", "TTFT p50", "TTFT p99"});
  std::printf("\n");
  for (const serving::SweepCellResult& cell : slo_cells) {
    const serving::ServingMetrics& metrics = cell.metrics;
    const std::int64_t arrived =
        metrics.completed + metrics.counters.total_shed();
    slo_table.add_row(
        {cell_f(cell.arrival_rate, 1), cell.admission,
         cell_f(metrics.slo_attainment, 4),
         cell_f(metrics.slo_goodput_tokens_per_second, 1),
         cell_f(metrics.goodput_tokens_per_second, 1),
         cell_i(metrics.completed), cell_i(metrics.counters.shed_deadline),
         cell_i(metrics.counters.shed_horizon),
         format_time(metrics.ttft.p50), format_time(metrics.ttft.p99)});
    std::printf(
        "admission=%s rate=%.0f: slo attainment %.4f (%lld of %lld arrived "
        "met deadlines), shed %lld deadline + %lld horizon\n",
        cell.admission.c_str(), cell.arrival_rate, metrics.slo_attainment,
        static_cast<long long>(metrics.slo_met),
        static_cast<long long>(arrived),
        static_cast<long long>(metrics.counters.shed_deadline),
        static_cast<long long>(metrics.counters.shed_horizon));
  }
  std::printf("\n");
  slo_table.print();

  // Replayable trace format: the frontier's deadline-carrying stream
  // serialized to JSONL and parsed back must survive bit for bit — the
  // production workflow is "capture a trace once, replay it against every
  // candidate deployment".
  serving::RequestStreamConfig slo_stream = slo_sweep.stream;
  slo_stream.arrival_rate = slo_sweep.arrival_rates.back();
  const std::vector<serving::Request> slo_requests =
      serving::generate_requests(slo_stream);
  const std::vector<serving::Request> reloaded =
      serving::parse_request_trace_jsonl(
          serving::request_trace_jsonl(slo_requests));
  bool trace_round_trips = reloaded.size() == slo_requests.size();
  for (std::size_t i = 0; trace_round_trips && i < reloaded.size(); ++i) {
    trace_round_trips = reloaded[i].id == slo_requests[i].id &&
                        reloaded[i].arrival_time ==
                            slo_requests[i].arrival_time &&
                        reloaded[i].prompt_len == slo_requests[i].prompt_len &&
                        reloaded[i].output_len == slo_requests[i].output_len &&
                        reloaded[i].ttft_deadline ==
                            slo_requests[i].ttft_deadline &&
                        reloaded[i].tpot_deadline ==
                            slo_requests[i].tpot_deadline;
  }
  std::printf("\nrequest trace JSONL round-trip: %s (%zu requests)\n",
              trace_round_trips ? "bit-identical" : "MISMATCH",
              reloaded.size());

  // Production-shaped mix: three tenants on staggered diurnal cycles —
  // time-zone-offset populations whose peaks sweep around the period.
  const std::vector<serving::Request> diurnal_requests =
      serving::diurnal_tenant_mix_requests(stream.seed,
                                           /*requests_per_tenant=*/200,
                                           /*per_tenant_rate=*/5.0,
                                           /*num_tenants=*/3);
  std::int64_t diurnal_per_tenant[3] = {0, 0, 0};
  for (const serving::Request& request : diurnal_requests) {
    diurnal_per_tenant[request.tenant_id] += 1;
  }
  std::printf("diurnal tenant mix: %zu requests over %s (3 tenants x "
              "%lld/%lld/%lld, staggered peaks)\n",
              diurnal_requests.size(),
              format_time(diurnal_requests.back().arrival_time).c_str(),
              static_cast<long long>(diurnal_per_tenant[0]),
              static_cast<long long>(diurnal_per_tenant[1]),
              static_cast<long long>(diurnal_per_tenant[2]));

  // --- Observability: traced replay of the prefix-cache deployment -----------
  // Re-run the block-16 caching-on point with event tracing and 0.5 s
  // time-series sampling.  Tracing is contractually metrics-neutral, so
  // this run's metrics equal the untraced sweep row above bit for bit —
  // checked and printed.  The trace is then reconciled against the
  // metrics: TTFT/e2e summaries recomputed purely from trace events must
  // match ServingMetrics exactly.
  serving::ServingScenario traced = prefix_points[1].scenario;
  traced.trace.enabled = true;
  traced.trace.sample_interval = 0.5;
  traced.trace.dir = trace_dir;  // empty: in-memory only
  traced.trace.label = "prefix_block16";
  traced.trace.write_jsonl = true;
  serving::ServingTrace trace;
  const serving::ServingMetrics traced_metrics =
      serving::run_serving(traced, prefix_requests, &shared_costs, &trace);
  const serving::ServingMetrics& untraced_metrics = prefix_results[1];

  std::map<std::string, std::int64_t> event_counts;
  for (const serving::TraceEvent& event : trace.events()) {
    event_counts[serving::trace_event_type_name(event.type)] += 1;
  }
  std::vector<double> trace_ttft_values, trace_e2e_values;
  const std::vector<serving::RequestTimeline> timelines =
      serving::trace_request_timelines(trace.events());
  for (const serving::RequestTimeline& timeline : timelines) {
    if (timeline.first_token >= 0) {
      trace_ttft_values.push_back(timeline.first_token - timeline.arrival);
    }
    if (timeline.completion >= 0) {
      trace_e2e_values.push_back(timeline.completion - timeline.arrival);
    }
  }
  const serving::LatencySummary trace_ttft =
      serving::summarize_latencies(trace_ttft_values);
  const serving::LatencySummary trace_e2e =
      serving::summarize_latencies(trace_e2e_values);
  const bool metrics_neutral =
      traced_metrics.goodput_tokens_per_second ==
          untraced_metrics.goodput_tokens_per_second &&
      traced_metrics.ttft.p99 == untraced_metrics.ttft.p99 &&
      traced_metrics.e2e.p99 == untraced_metrics.e2e.p99 &&
      traced_metrics.preemptions == untraced_metrics.preemptions &&
      traced_metrics.completed == untraced_metrics.completed;
  const bool ttft_reconciles = trace_ttft.count == traced_metrics.ttft.count &&
                               trace_ttft.mean == traced_metrics.ttft.mean &&
                               trace_ttft.p50 == traced_metrics.ttft.p50 &&
                               trace_ttft.p99 == traced_metrics.ttft.p99 &&
                               trace_ttft.max == traced_metrics.ttft.max;
  const bool e2e_reconciles = trace_e2e.count == traced_metrics.e2e.count &&
                              trace_e2e.mean == traced_metrics.e2e.mean &&
                              trace_e2e.p50 == traced_metrics.e2e.p50 &&
                              trace_e2e.p99 == traced_metrics.e2e.p99 &&
                              trace_e2e.max == traced_metrics.e2e.max;

  std::printf("\nObservability — traced replay of prefix_cache=on block=16:\n");
  std::printf("  events:");
  for (const auto& [name, count] : event_counts) {
    std::printf(" %s=%lld", name.c_str(), static_cast<long long>(count));
  }
  std::printf("\n  timeseries samples: %zu (0.5 s interval)\n",
              traced_metrics.timeseries.size());
  std::printf("  tracing metrics-neutral vs untraced run: %s\n",
              metrics_neutral ? "yes" : "NO — BUG");
  std::printf("  trace-vs-metrics TTFT reconciliation: %s (count %lld, "
              "p99 %.9f s)\n",
              ttft_reconciles ? "exact" : "MISMATCH",
              static_cast<long long>(trace_ttft.count), trace_ttft.p99);
  std::printf("  trace-vs-metrics e2e reconciliation: %s (count %lld, "
              "p99 %.9f s)\n",
              e2e_reconciles ? "exact" : "MISMATCH",
              static_cast<long long>(trace_e2e.count), trace_e2e.p99);

  if (!trace_dir.empty()) {
    // Paths are environment-dependent: stderr, like the timing footer.
    std::fprintf(stderr, "trace files: %s/prefix_block16.trace.json, "
                         "%s/prefix_block16.jsonl\n",
                 trace_dir.c_str(), trace_dir.c_str());

    // Traced SWEEP demo: run_serving_sweep derives one trace label per
    // grid cell, so every point lands in its own file set — and because
    // events carry only simulated time, the files are byte-identical
    // whatever CIMTPU_SWEEP_THREADS says (the CI determinism job diffs
    // them across thread counts).
    serving::ServingSweep traced_sweep;
    traced_sweep.arrival_rates = {30.0};
    traced_sweep.models = {scenario.model};
    traced_sweep.chip_counts = {1};
    traced_sweep.policies = {serving::EvictionPolicy::kPreemptNewest,
                             serving::EvictionPolicy::kSwapToHost};
    traced_sweep.base = traced;
    traced_sweep.base.trace.label = "sweep";
    traced_sweep.base.trace.sample_interval = 0;  // events only
    traced_sweep.stream = serving::prefix_chatbot_stream(
        stream.seed, /*num_requests=*/400, /*arrival_rate=*/30.0);
    const std::vector<serving::SweepCellResult> traced_cells =
        serving::run_serving_sweep(traced_sweep, sweep_options);
    std::fprintf(stderr, "traced sweep: %zu per-point trace files in %s\n",
                 traced_cells.size(), trace_dir.c_str());
  }

  if (fault_storm) {
    // --- Fault injection & recovery: the canonical seeded storm --------------
    // The canonical fault storm (traffic_profiles.h) — transient stalls,
    // KV-block losses restored from the host shadow, and full device
    // restarts, all from the dedicated fault seed — with recovery off vs
    // on via the sweep's resilience axes.  Recovery (backoff re-admission
    // + host restore + graceful degradation) strictly beats dropping
    // every fault-hit request on BOTH availability and SLO goodput.
    // Everything printed here is simulated-time deterministic: the CI
    // determinism job diffs this section across sweep thread counts.
    serving::ServingSweep storm_sweep;
    storm_sweep.arrival_rates = {10.0};
    storm_sweep.models = {scenario.model};
    storm_sweep.chip_counts = {1};
    storm_sweep.policies = {serving::EvictionPolicy::kPreemptNewest};
    storm_sweep.admission_policies = {"edf"};
    storm_sweep.fault_rates = {1.0};
    storm_sweep.fault_recovery = {0, 1};
    storm_sweep.base =
        serving::fault_storm_scenario(scenario.model.dtype, /*recovery=*/true);
    storm_sweep.base.model = scenario.model;
    storm_sweep.base.kv_budget_override =
        serving::KvCacheManager::token_bytes(scenario.model) * 4000.0;
    if (!trace_dir.empty()) {
      // Per-cell trace files (run_serving_sweep derives one label per
      // cell): kFault/kRecover/kDegrade events land in the Perfetto and
      // JSONL outputs, byte-identical across thread counts.
      storm_sweep.base.trace.enabled = true;
      storm_sweep.base.trace.dir = trace_dir;
      storm_sweep.base.trace.label = "fault_storm";
      storm_sweep.base.trace.write_jsonl = true;
    }
    storm_sweep.stream = serving::slo_chat_stream(
        stream.seed, /*num_requests=*/serving::kSloFrontierRequests,
        /*arrival_rate=*/1.0);
    const std::vector<serving::SweepCellResult> storm_cells =
        serving::run_serving_sweep(storm_sweep, sweep_options);

    AsciiTable storm_table(
        "Fault storm — seed " + cell_i(serving::kFaultStormSeed) + ", " +
        cell_f(serving::kFaultStormHorizon, 0) +
        " s window, recovery off vs on");
    storm_table.set_header({"recovery", "avail", "MTTR", "SLO tokens/s",
                            "done", "retries", "shed fault", "wasted tok",
                            "restores", "degraded"});
    std::printf("\n");
    for (const serving::SweepCellResult& cell : storm_cells) {
      const serving::ServingMetrics& metrics = cell.metrics;
      const bool recovery = cell.fault_recovery > 0;
      storm_table.add_row(
          {recovery ? "on" : "off", cell_f(metrics.availability, 4),
           format_time(metrics.mttr_seconds),
           cell_f(metrics.slo_goodput_tokens_per_second, 1),
           cell_i(metrics.completed), cell_i(metrics.retries_total),
           cell_i(metrics.counters.shed_fault),
           cell_i(metrics.wasted_recompute_tokens),
           cell_i(metrics.fault.host_restores),
           cell_i(metrics.fault.degrade_enters)});
      std::printf(
          "fault_storm recovery=%s: availability %.4f, slo goodput %.1f "
          "tokens/s, %lld stalls + %lld kv losses + %lld device failures, "
          "%lld retries, %lld shed to faults, %lld wasted recompute "
          "tokens\n",
          recovery ? "on" : "off", metrics.availability,
          metrics.slo_goodput_tokens_per_second,
          static_cast<long long>(metrics.fault.stalls),
          static_cast<long long>(metrics.fault.kv_losses),
          static_cast<long long>(metrics.fault.device_failures),
          static_cast<long long>(metrics.retries_total),
          static_cast<long long>(metrics.counters.shed_fault),
          static_cast<long long>(metrics.wasted_recompute_tokens));
    }
    std::printf("\n");
    storm_table.print();
    if (!trace_dir.empty()) {
      std::fprintf(stderr, "fault storm: %zu per-cell trace files in %s\n",
                   storm_cells.size(), trace_dir.c_str());
    }
  }

  if (cluster) {
    // --- Cluster-scale serving: replicas, routers, disaggregation ------------
    // The canonical grids (traffic_profiles.h) — the same grids
    // bench_serving's schema-v9 "cluster" block pins.  Everything printed
    // here is simulated-time deterministic; the CI determinism job diffs
    // this section (and, with --trace-dir, the per-replica / router /
    // KV-transfer trace files) across sweep thread counts.
    const std::vector<serving::Request> cluster_requests =
        serving::generate_requests(
            serving::cluster_chatbot_stream(stream.seed));

    // Per-replica breakdown of ONE run: the prefix-affinity cluster, where
    // each of the 16 prefix families sticks to the replica whose cache is
    // warm.  Run directly (not flattened) so the per-replica rows are
    // visible.
    serving::ClusterConfig affinity_config;
    affinity_config.base =
        serving::prefix_cache_scenario(scenario.model.dtype,
                                       /*enable_prefix_cache=*/true);
    affinity_config.base.model = scenario.model;
    affinity_config.base.kv_budget_override =
        serving::KvCacheManager::token_bytes(scenario.model) * 20000.0;
    affinity_config.replicas.assign(serving::kClusterReplicas,
                                    serving::ReplicaSpec{});
    affinity_config.router_policy = "prefix_affinity";
    if (!trace_dir.empty()) {
      affinity_config.base.trace.enabled = true;
      affinity_config.base.trace.dir = trace_dir;
      affinity_config.base.trace.label = "cluster_affinity";
      affinity_config.base.trace.write_jsonl = true;
    }
    const serving::ClusterMetrics affinity = serving::run_serving_cluster(
        affinity_config, cluster_requests, &shared_costs);

    AsciiTable replica_table(
        "Cluster replicas — " + cell_i(serving::kClusterReplicas) +
        " x 1 chip, prefix_affinity router, " +
        cell_i(serving::kClusterPrefixPool) + "-prefix chatbot stream");
    replica_table.set_header({"replica", "chips", "done", "tokens",
                              "MXU util", "hit rate", "preempt"});
    for (std::size_t i = 0; i < affinity.replica_metrics.size(); ++i) {
      const serving::ServingMetrics& replica = affinity.replica_metrics[i];
      replica_table.add_row(
          {cell_i(i), cell_i(replica.chips), cell_i(replica.completed),
           cell_i(replica.generated_tokens),
           cell_f(100.0 * replica.mxu_utilization, 1) + "%",
           cell_f(replica.prefix_hit_rate, 3), cell_i(replica.preemptions)});
    }
    std::printf("\n");
    replica_table.print();
    std::printf(
        "cluster router=prefix_affinity: %lld/%lld requests over %s, "
        "cluster-wide hit rate %.3f, jain across replicas %.4f\n",
        static_cast<long long>(affinity.completed),
        static_cast<long long>(affinity.num_requests),
        format_time(affinity.makespan).c_str(), affinity.prefix_hit_rate,
        affinity.jain_across_replicas);

    // Router policy comparison on the canonical grid.
    const std::vector<serving::SweepPoint> router_points =
        serving::cluster_router_grid_points(scenario.model,
                                            &cluster_requests);
    const std::vector<serving::ServingMetrics> router_results =
        serving::run_sweep(router_points, sweep_options);

    AsciiTable router_table(
        "Router policies — " + cell_i(serving::kClusterReplicas) +
        " replicas, " + cell_i(serving::kClusterTenants) + " tenants");
    router_table.set_header({"router", "TTFT p50", "TTFT p99", "tokens/s",
                             "hit rate", "jain", "done"});
    for (std::size_t i = 0; i < router_points.size(); ++i) {
      const serving::ServingMetrics& metrics = router_results[i];
      router_table.add_row(
          {router_points[i].router_policy, format_time(metrics.ttft.p50),
           format_time(metrics.ttft.p99),
           cell_f(metrics.goodput_tokens_per_second, 1),
           cell_f(metrics.prefix_hit_rate, 3),
           cell_f(metrics.jain_fairness, 4), cell_i(metrics.completed)});
    }
    std::printf("\n");
    router_table.print();
    std::printf(
        "router comparison: prefix_affinity hit rate %.3f vs round_robin "
        "%.3f\n",
        router_results[2].prefix_hit_rate, router_results[0].prefix_hit_rate);

    // Colocated vs disaggregated frontier on the canonical sweep.
    serving::ServingSweep disagg_sweep =
        serving::cluster_disaggregation_sweep(scenario.model, stream.seed);
    if (!trace_dir.empty()) {
      // Per-cell trace files (run_serving_sweep derives one label per
      // cell): the disaggregated cells' router traces carry the kRoute and
      // kKvTransfer events, byte-identical across thread counts.
      disagg_sweep.base.trace.enabled = true;
      disagg_sweep.base.trace.dir = trace_dir;
      disagg_sweep.base.trace.label = "cluster_disagg";
      disagg_sweep.base.trace.write_jsonl = true;
    }
    const std::vector<serving::SweepCellResult> disagg_cells =
        serving::run_serving_sweep(disagg_sweep, sweep_options);

    AsciiTable disagg_table(
        "Prefill/decode disaggregation — " +
        cell_i(serving::kClusterReplicas) + " replicas (" +
        cell_i(serving::kClusterPrefillReplicas) +
        " prefill when disaggregated)");
    disagg_table.set_header({"rate (req/s)", "mode", "TTFT p50", "TTFT p99",
                             "tokens/s", "done", "KV moved", "xfer s"});
    for (const serving::SweepCellResult& cell : disagg_cells) {
      const serving::ServingMetrics& metrics = cell.metrics;
      const bool disagg = cell.disaggregated > 0;
      const auto& counters = metrics.registry.counters();
      const auto bytes_it = counters.find("cluster.kv_transfer_bytes");
      const double transfer_bytes =
          bytes_it == counters.end()
              ? 0.0
              : static_cast<double>(bytes_it->second);
      const auto& gauges = metrics.registry.gauges();
      const auto seconds_it = gauges.find("cluster.kv_transfer_seconds");
      const double transfer_seconds =
          seconds_it == gauges.end() ? 0.0 : seconds_it->second;
      disagg_table.add_row(
          {cell_f(cell.arrival_rate, 1), disagg ? "disagg" : "colocated",
           format_time(metrics.ttft.p50), format_time(metrics.ttft.p99),
           cell_f(metrics.goodput_tokens_per_second, 1),
           cell_i(metrics.completed),
           cell_f(transfer_bytes / GiB, 2) + " GiB",
           cell_f(transfer_seconds, 3)});
    }
    std::printf("\n");
    disagg_table.print();
    std::printf(
        "disaggregation: at %.0f req/s TTFT p99 disagg %s vs colocated "
        "%s\n",
        disagg_cells[disagg_cells.size() - 2].arrival_rate,
        format_time(
            disagg_cells[disagg_cells.size() - 1].metrics.ttft.p99)
            .c_str(),
        format_time(
            disagg_cells[disagg_cells.size() - 2].metrics.ttft.p99)
            .c_str());
    if (!trace_dir.empty()) {
      std::fprintf(stderr, "cluster: per-replica + router trace files in %s\n",
                   trace_dir.c_str());
    }
  }

  const auto wall_end = std::chrono::steady_clock::now();
  // stderr: timing and thread count are run-dependent; everything on
  // stdout is reproducible whatever CIMTPU_SWEEP_THREADS says.  The larger
  // grid (the policy sweep) determines the peak worker count.
  std::fprintf(
      stderr, "wall clock: %.2f s for all deployments (%d sweep threads)\n",
      std::chrono::duration<double>(wall_end - wall_start).count(),
      serving::resolve_sweep_threads(sweep_options.threads,
                                     policy_points.size()));
  return 0;
}
