#include "tech/technology.h"

#include "common/status.h"

namespace cimtpu::tech {
namespace {

// First-order scaling of dynamic energy and area relative to 22 nm.
// Sources: ITRS/IRDS logic roadmaps and the scaling summaries in
// Jouppi et al. (TPUv4i, ISCA'21); numbers are representative, not
// foundry-exact — only ratios between evaluated designs matter because
// the paper scales baseline and CIM design to the same node.
constexpr struct {
  const char* name;
  double feature_nm;
  double energy_scale;
  double area_scale;
  double leakage_scale;
  double clock_ghz;
} kNodes[] = {
    {"65nm", 65.0, 3.60, 6.10, 0.45, 0.50},
    {"28nm", 28.0, 1.40, 1.55, 0.85, 0.90},
    {"22nm", 22.0, 1.00, 1.00, 1.00, 1.00},
    {"12nm", 12.0, 0.55, 0.45, 1.30, 1.30},
    {"7nm", 7.0, 0.35, 0.22, 1.60, 1.05},
};

}  // namespace

TechnologyNode node_by_name(const std::string& name) {
  for (const auto& n : kNodes) {
    if (name == n.name) {
      return TechnologyNode{n.name,        n.feature_nm,   n.energy_scale,
                            n.area_scale,  n.leakage_scale, n.clock_ghz * GHz};
    }
  }
  throw ConfigError("unknown technology node: " + name +
                    " (supported: 65nm, 28nm, 22nm, 12nm, 7nm)");
}

TechnologyNode calibration_node() { return node_by_name("22nm"); }

TechnologyNode tpu_v4i_node() { return node_by_name("7nm"); }

Joules scale_energy(Joules at_22nm, const TechnologyNode& node) {
  return at_22nm * node.energy_scale;
}

SquareMm scale_area(SquareMm at_22nm, const TechnologyNode& node) {
  return at_22nm * node.area_scale;
}

Watts scale_leakage_power(Watts at_22nm, const TechnologyNode& node) {
  // Leakage power of a scaled block: per-area leakage density changes by
  // leakage_scale while the block area shrinks by area_scale.
  return at_22nm * node.leakage_scale * node.area_scale;
}

}  // namespace cimtpu::tech
