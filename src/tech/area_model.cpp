#include "tech/area_model.h"

namespace cimtpu::tech {
namespace {

// Peak throughput of the Table II reference designs at the 22 nm reference
// clock: 16384 MACs/cycle * 2 ops * 1 GHz.
constexpr double kReferenceMacsPerCycle = 16384.0;
constexpr double kReferenceTops =
    kReferenceMacsPerCycle * cal::kOpsPerMac * (cal::kReferenceClock / 1e12);

// Fraction of CIM-MXU area spent on the systolic grid interconnect and
// per-core input FIFOs (excluded from the per-cell figure so that scaled
// grids account for it proportionally).
constexpr double kCimGridOverheadFraction = 0.03;

}  // namespace

SquareMm digital_mac_area_22nm() {
  const SquareMm array = kReferenceTops / cal::kDigitalMxuTopsPerMm2;
  return array / kReferenceMacsPerCycle;
}

SquareMm cim_cell_area_22nm() {
  const SquareMm mxu = kReferenceTops / cal::kCimMxuTopsPerMm2;
  const double reference_cores = 16.0 * 8.0;
  const double cells_per_core = 128.0 * 256.0;
  return mxu / (1.0 + kCimGridOverheadFraction) /
         (reference_cores * cells_per_core);
}

AreaModel::AreaModel(const TechnologyNode& node) : node_(node) {}

SquareMm AreaModel::digital_array(int rows, int cols) const {
  return scaled(digital_mac_area_22nm() * rows * cols);
}

SquareMm AreaModel::cim_core(int cim_rows, int cim_cols) const {
  return scaled(cim_cell_area_22nm() * cim_rows * cim_cols);
}

SquareMm AreaModel::cim_mxu(int grid_rows, int grid_cols, int cim_rows,
                            int cim_cols) const {
  const SquareMm cores =
      cim_core(cim_rows, cim_cols) * grid_rows * grid_cols;
  return cores * (1.0 + kCimGridOverheadFraction);
}

SquareMm AreaModel::sram(Bytes capacity) const {
  return scaled(cal::kSramAreaPerMiB * (capacity / MiB));
}

SquareMm AreaModel::vpu(int lanes) const {
  return scaled(cal::kVpuAreaPerLane * lanes);
}

}  // namespace cimtpu::tech
