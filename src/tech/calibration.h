#pragma once
// Calibration constants, all referenced to the TSMC 22 nm node.
//
// Provenance:
//  * The paper's Table II publishes post-P&R results for a Gemmini-generated
//    128x128 digital systolic MXU and for the 16x8 CIM-MXU at TSMC 22 nm:
//        digital MXU : 0.77 TOPS/W, 0.648 TOPS/mm^2
//        CIM-MXU     : 7.26 TOPS/W, 1.31  TOPS/mm^2
//    (both delivering 16384 MACs/cycle).  We adopt a 1 GHz reference clock
//    at 22 nm, giving a 32.768 TOPS peak from which per-MAC energy and area
//    are backed out.
//  * SRAM/DRAM access energies follow the survey values used by LLMCompass
//    (Zhang et al., ISCA'24) and Timeloop/Accelergy component libraries.
//  * The remaining micro-architecture activity factors (bubble activity,
//    idle-clock activity, weight-load energy, CIM idle gating) are free
//    parameters of the model; they are tuned so that the end-to-end
//    simulator reproduces the paper's system-level ratios (Fig. 6 / Fig. 7)
//    and the tuning is documented in EXPERIMENTS.md.

#include <cstdint>

#include "common/units.h"

namespace cimtpu::tech::cal {

// --- Reference operating point ---------------------------------------------
inline constexpr Hertz kReferenceClock = 1.0 * GHz;  // 22 nm comparison clock
inline constexpr double kOpsPerMac = 2.0;            // 1 MAC = mul + add

// --- Table II anchors (22 nm, INT8) -----------------------------------------
inline constexpr double kDigitalMxuTopsPerWatt = 0.77;
inline constexpr double kCimMxuTopsPerWatt = 7.26;
inline constexpr double kDigitalMxuTopsPerMm2 = 0.648;
inline constexpr double kCimMxuTopsPerMm2 = 1.31;

/// Energy of one INT8 MAC in the digital systolic array, including local
/// operand registers and clocking at full utilization: 2 / 0.77e12 J.
inline constexpr Joules kDigitalMacEnergyInt8 =
    kOpsPerMac / (kDigitalMxuTopsPerWatt * 1e12);

/// Energy of one INT8 MAC inside a digital CIM macro (bit-serial read +
/// adder tree + shift-accumulate), at full utilization: 2 / 7.26e12 J.
inline constexpr Joules kCimMacEnergyInt8 =
    kOpsPerMac / (kCimMxuTopsPerWatt * 1e12);

/// BF16 energy multiplier vs INT8 for both designs.  The CIM FP path adds
/// exponent-align pre-processing and shift/round post-processing (paper
/// Sec. III-B, refs [9],[20]); the digital MAC grows a BF16 multiplier.
inline constexpr double kDigitalBf16EnergyFactor = 2.2;
inline constexpr double kCimBf16EnergyFactor = 1.9;

// --- Micro-architecture activity factors (tuned, see EXPERIMENTS.md) --------
/// Fraction of an active-MAC's energy burned by an *idle* PE slot during a
/// busy cycle of the digital systolic array (pipeline registers and the
/// clock tree toggle regardless of operand validity).
inline constexpr double kDigitalBubbleActivity = 0.55;

/// Fraction of the digital array's peak dynamic power burned while the MXU
/// is architecturally idle (waiting on memory).  The systolic array's clock
/// spine and input skew registers are not gated in TPUv4i-class designs.
inline constexpr double kDigitalIdleActivity = 0.60;

/// Fraction of the CIM-MXU's peak dynamic power burned while idle.  CIM
/// banks are read-gated, but input drivers, PSUM buffers, adder trees and
/// control keep toggling.
inline constexpr double kCimIdleActivity = 0.50;

/// Fraction of an active CIM bank's energy burned by an idle bank during a
/// busy cycle (banks whose sub-array is not selected are read-gated).
inline constexpr double kCimBubbleActivity = 0.05;

/// Energy to advance one weight byte by one hop during systolic weight
/// loading (register write + wire).
inline constexpr Joules kDigitalWeightHopEnergy = 0.020 * pJ;
/// Average number of register hops a weight traverses when loaded through
/// the 128-row array (half the column height).
inline constexpr double kDigitalWeightLoadHops = 64.0;

/// Energy to write one weight byte into a CIM macro's SRAM bitcells via the
/// dedicated weight I/O (row-parallel SRAM write, no register hops).
inline constexpr Joules kCimWeightWriteEnergy = 0.25 * pJ;

// --- Leakage (22 nm) ---------------------------------------------------------
/// Leakage power density of synthesized logic at 22 nm.
inline constexpr Watts kLogicLeakagePerMm2 = 0.020;
/// Leakage power density of the (mostly SRAM) CIM macro area at 22 nm.
/// SRAM leaks less per area than random logic.
inline constexpr Watts kCimLeakagePerMm2 = 0.008;
/// Leakage power density of on-chip SRAM buffers (VMEM/CMEM).
inline constexpr Watts kSramLeakagePerMm2 = 0.008;

// --- On-chip memory access energies (22 nm, per byte) ------------------------
inline constexpr Joules kRegisterFileEnergyPerByte = 0.10 * pJ;
inline constexpr Joules kVmemEnergyPerByte = 0.80 * pJ;   // 16 MiB scratchpad
inline constexpr Joules kCmemEnergyPerByte = 1.60 * pJ;   // 128 MiB L2-like
inline constexpr Joules kHbmEnergyPerByte = 32.0 * pJ;    // ~4 pJ/bit HBM2
inline constexpr Joules kIciEnergyPerByte = 10.0 * pJ;    // SerDes link

// --- SRAM density (22 nm) ----------------------------------------------------
/// Macro-level SRAM density including periphery; ~0.55 mm^2 per MiB at 22 nm.
inline constexpr SquareMm kSramAreaPerMiB = 0.55;

// --- Vector processing unit --------------------------------------------------
/// Energy per scalar FP/INT vector-lane operation (ALU + operand collect).
inline constexpr Joules kVpuEnergyPerOp = 1.50 * pJ;
/// Area of one VPU lane (FPU + register slice) at 22 nm.
inline constexpr SquareMm kVpuAreaPerLane = 0.012;

// --- Systolic array micro-parameters ----------------------------------------
/// Weight-load rate into the digital array: one PE row per cycle
/// (cols bytes/cycle for INT8).  Loads are NOT overlapped with compute
/// (SCALE-Sim weight-stationary behaviour; the paper contrasts this with
/// the CIM macro's dedicated weight port).
inline constexpr double kSystolicWeightRowsPerCycle = 1.0;

// --- CIM-MXU micro-parameters ------------------------------------------------
/// Per-core weight I/O width (Fig. 4: "Weight I/O 256b") in bytes/cycle.
inline constexpr double kCimWeightIoBytesPerCycle = 32.0;

/// Relative compute-cycle overhead of the CIM-MXU on matrix work: wave
/// propagation across the core grid plus bit-serial pipeline re-alignment
/// between input vectors.  This is what makes the CIM-MXU marginally slower
/// than the digital MXU on large compute-bound GEMMs (paper Fig. 6:
/// +2.43% prefill latency).
inline constexpr double kCimComputeOverheadFraction = 0.045;

/// MACs per cycle delivered by one CIM core (paper Sec. III-B: "128 MAC
/// operations are performed each cycle within each CIM core").
inline constexpr double kCimCoreMacsPerCycle = 128.0;

/// Output columns per CIM bank (Fig. 4: 32 banks x 8 columns = 256).  Banks
/// with no live output are read-gated, so N-padding is bank-granular.
inline constexpr std::int64_t kCimBankColumns = 8;

}  // namespace cimtpu::tech::cal
