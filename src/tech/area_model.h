#pragma once
// Component area model, calibrated at 22 nm from the paper's Table II and
// scaled to the configured node.

#include "common/units.h"
#include "tech/calibration.h"
#include "tech/technology.h"

namespace cimtpu::tech {

class AreaModel {
 public:
  explicit AreaModel(const TechnologyNode& node);

  const TechnologyNode& node() const { return node_; }

  /// Area of a digital systolic array with `rows * cols` MAC PEs.
  /// Calibrated so a 128x128 array hits Table II's 0.648 TOPS/mm².
  SquareMm digital_array(int rows, int cols) const;

  /// Area of one CIM core (`cim_rows` x `cim_cols` bitcell positions plus
  /// readout, adder tree, shift-accumulator, PSUM buffer and control).
  /// Calibrated so a 16x8 grid of 128x256 cores hits Table II's
  /// 1.31 TOPS/mm².
  SquareMm cim_core(int cim_rows, int cim_cols) const;

  /// Area of a CIM-MXU: a `grid_rows` x `grid_cols` grid of CIM cores plus
  /// systolic interconnect overhead.
  SquareMm cim_mxu(int grid_rows, int grid_cols, int cim_rows,
                   int cim_cols) const;

  /// Area of an on-chip SRAM buffer of the given capacity.
  SquareMm sram(Bytes capacity) const;

  /// Area of a VPU with the given total lane count.
  SquareMm vpu(int lanes) const;

 private:
  SquareMm scaled(SquareMm at_22nm) const { return at_22nm * node_.area_scale; }

  TechnologyNode node_;
};

/// 22 nm area of one digital MAC PE (multiplier + accumulator + pipeline
/// registers), derived from the Table II anchor.
SquareMm digital_mac_area_22nm();

/// 22 nm area of one CIM bitcell position amortized with its share of the
/// macro periphery, derived from the Table II anchor.
SquareMm cim_cell_area_22nm();

}  // namespace cimtpu::tech
