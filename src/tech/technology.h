#pragma once
// Process-technology description and cross-node scaling.
//
// The paper implements both the digital MXU (Gemmini-generated, Cadence
// Genus/Innovus post-P&R) and the CIM-MXU at TSMC 22 nm, then scales both
// designs "to the same technology and frequency for fair performance and
// energy comparisons" against TPUv4i (7 nm).  We reproduce that flow: all
// component energies/areas are calibrated at 22 nm (see calibration.h) and
// scaled with the factors below when a chip config selects another node.

#include <string>

#include "common/units.h"

namespace cimtpu::tech {

/// A manufacturing process node with first-order scaling factors relative
/// to the 22 nm calibration node.  Factors follow published logic-scaling
/// surveys (energy ∝ CV², area ∝ transistor density).
struct TechnologyNode {
  std::string name;          ///< e.g. "TSMC22"
  double feature_nm = 22.0;  ///< drawn feature size
  double energy_scale = 1.0; ///< dynamic energy per op vs 22 nm
  double area_scale = 1.0;   ///< area per gate vs 22 nm
  double leakage_scale = 1.0;///< leakage power density vs 22 nm
  Hertz nominal_clock = 1.0 * GHz;  ///< typical shipping clock at this node
};

/// Returns the node descriptor for a supported process.
/// Supported names: "65nm", "28nm", "22nm", "12nm", "7nm".
/// Throws ConfigError for unknown nodes.
TechnologyNode node_by_name(const std::string& name);

/// The calibration node (TSMC 22 nm) used for all post-P&R reference data.
TechnologyNode calibration_node();

/// The TPUv4i production node (7 nm).
TechnologyNode tpu_v4i_node();

/// Scales an energy quantity measured at 22 nm to `node`.
Joules scale_energy(Joules at_22nm, const TechnologyNode& node);

/// Scales an area quantity measured at 22 nm to `node`.
SquareMm scale_area(SquareMm at_22nm, const TechnologyNode& node);

/// Scales a leakage power density (W/mm², referenced to 22 nm area) to
/// `node`, accounting for both density and per-area leakage changes.
Watts scale_leakage_power(Watts at_22nm, const TechnologyNode& node);

}  // namespace cimtpu::tech
