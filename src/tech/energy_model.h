#pragma once
// Component energy model: converts the 22 nm calibration constants into
// per-event energies at the configured technology node.

#include "common/units.h"
#include "ir/dtype.h"
#include "tech/calibration.h"
#include "tech/technology.h"

namespace cimtpu::tech {

/// Per-event energies for one chip at a given technology node.  All values
/// are joules per the unit named in the accessor.  Instances are cheap value
/// objects; chips construct one at configuration time.
class EnergyModel {
 public:
  explicit EnergyModel(const TechnologyNode& node);

  const TechnologyNode& node() const { return node_; }

  // --- Matrix-unit compute events -------------------------------------------
  /// Energy of one useful MAC in the digital systolic array.
  Joules digital_mac(ir::DType dtype) const;
  /// Energy of one useful MAC in a CIM macro.
  Joules cim_mac(ir::DType dtype) const;
  /// Energy burned by one idle PE slot during one busy cycle (digital).
  Joules digital_bubble_slot(ir::DType dtype) const;
  /// Energy burned by one clock-gated CIM bank-slot during one busy cycle.
  Joules cim_idle_slot(ir::DType dtype) const;
  /// Energy to load one weight byte through the systolic array.
  Joules digital_weight_load_per_byte() const;
  /// Energy to write one weight byte into CIM bitcells via weight I/O.
  Joules cim_weight_write_per_byte() const;

  // --- Memory events (per byte moved) ---------------------------------------
  Joules register_file_per_byte() const;
  Joules vmem_per_byte() const;
  Joules cmem_per_byte() const;
  Joules hbm_per_byte() const;
  Joules ici_per_byte() const;

  // --- Vector unit -----------------------------------------------------------
  Joules vpu_per_op() const;

  // --- Leakage power densities (per mm^2 of block area at this node) --------
  Watts logic_leakage_per_mm2() const;
  Watts cim_leakage_per_mm2() const;
  Watts sram_leakage_per_mm2() const;

 private:
  Joules scaled(Joules at_22nm) const { return at_22nm * node_.energy_scale; }

  TechnologyNode node_;
};

/// Multiplier applied to the INT8 MAC energy for the given dtype.
double dtype_energy_factor_digital(ir::DType dtype);
double dtype_energy_factor_cim(ir::DType dtype);

}  // namespace cimtpu::tech
