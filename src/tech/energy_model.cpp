#include "tech/energy_model.h"

namespace cimtpu::tech {

double dtype_energy_factor_digital(ir::DType dtype) {
  switch (dtype) {
    case ir::DType::kInt4:
      // Narrower multiplier; operand movement dominates, so the saving is
      // sub-quadratic.
      return 0.55;
    case ir::DType::kInt8:
      return 1.0;
    case ir::DType::kBf16:
      return cal::kDigitalBf16EnergyFactor;
    case ir::DType::kFp32:
      // FP32 MACs run at quarter rate on MXU-class hardware; energy per MAC
      // roughly doubles again over BF16.
      return 2.0 * cal::kDigitalBf16EnergyFactor;
  }
  return 1.0;
}

double dtype_energy_factor_cim(ir::DType dtype) {
  switch (dtype) {
    case ir::DType::kInt4:
      // Half the bit-serial input planes; the CIM macros the paper cites
      // ([8]) are natively INT4-efficient.
      return 0.45;
    case ir::DType::kInt8:
      return 1.0;
    case ir::DType::kBf16:
      return cal::kCimBf16EnergyFactor;
    case ir::DType::kFp32:
      return 2.0 * cal::kCimBf16EnergyFactor;
  }
  return 1.0;
}

EnergyModel::EnergyModel(const TechnologyNode& node) : node_(node) {}

Joules EnergyModel::digital_mac(ir::DType dtype) const {
  return scaled(cal::kDigitalMacEnergyInt8 * dtype_energy_factor_digital(dtype));
}

Joules EnergyModel::cim_mac(ir::DType dtype) const {
  return scaled(cal::kCimMacEnergyInt8 * dtype_energy_factor_cim(dtype));
}

Joules EnergyModel::digital_bubble_slot(ir::DType dtype) const {
  return digital_mac(dtype) * cal::kDigitalBubbleActivity;
}

Joules EnergyModel::cim_idle_slot(ir::DType dtype) const {
  return cim_mac(dtype) * cal::kCimBubbleActivity;
}

Joules EnergyModel::digital_weight_load_per_byte() const {
  return scaled(cal::kDigitalWeightHopEnergy * cal::kDigitalWeightLoadHops);
}

Joules EnergyModel::cim_weight_write_per_byte() const {
  return scaled(cal::kCimWeightWriteEnergy);
}

Joules EnergyModel::register_file_per_byte() const {
  return scaled(cal::kRegisterFileEnergyPerByte);
}

Joules EnergyModel::vmem_per_byte() const { return scaled(cal::kVmemEnergyPerByte); }

Joules EnergyModel::cmem_per_byte() const { return scaled(cal::kCmemEnergyPerByte); }

Joules EnergyModel::hbm_per_byte() const {
  // DRAM interface energy is dominated by I/O and the DRAM die; it does not
  // scale with the logic node.
  return cal::kHbmEnergyPerByte;
}

Joules EnergyModel::ici_per_byte() const {
  // SerDes energy likewise scales only weakly with node.
  return cal::kIciEnergyPerByte;
}

Joules EnergyModel::vpu_per_op() const { return scaled(cal::kVpuEnergyPerOp); }

Watts EnergyModel::logic_leakage_per_mm2() const {
  return cal::kLogicLeakagePerMm2 * node_.leakage_scale;
}

Watts EnergyModel::cim_leakage_per_mm2() const {
  return cal::kCimLeakagePerMm2 * node_.leakage_scale;
}

Watts EnergyModel::sram_leakage_per_mm2() const {
  return cal::kSramLeakagePerMm2 * node_.leakage_scale;
}

}  // namespace cimtpu::tech
