#pragma once
// CSV writer used by benches to dump machine-readable series next to the
// human-readable ASCII tables (one CSV per figure for external plotting).

#include <fstream>
#include <string>
#include <vector>

namespace cimtpu {

class CsvWriter {
 public:
  /// Opens `path` for writing; throws ConfigError if the file cannot be
  /// created.
  explicit CsvWriter(const std::string& path);

  /// Writes the header row (once, before any data rows).
  void write_header(const std::vector<std::string>& columns);

  /// Writes one data row; fields containing commas/quotes are quoted.
  void write_row(const std::vector<std::string>& fields);

  /// Flushes and closes; called automatically by the destructor.
  void close();

  ~CsvWriter();
  CsvWriter(const CsvWriter&) = delete;
  CsvWriter& operator=(const CsvWriter&) = delete;

 private:
  void write_line(const std::vector<std::string>& fields);

  std::ofstream out_;
  bool header_written_ = false;
};

/// Escapes one CSV field (RFC 4180 quoting).
std::string csv_escape(const std::string& field);

}  // namespace cimtpu
