#pragma once
// Small integer/floating helpers shared by tiling and cost models.

#include <cstdint>
#include <type_traits>

#include "common/status.h"

namespace cimtpu {

/// ceil(a / b) for positive integers.
template <typename T>
constexpr T ceil_div(T a, T b) {
  static_assert(std::is_integral_v<T>);
  CIMTPU_DCHECK(b > 0);
  return (a + b - 1) / b;
}

/// Rounds `a` up to the next multiple of `b`.
template <typename T>
constexpr T round_up(T a, T b) {
  static_assert(std::is_integral_v<T>);
  return ceil_div(a, b) * b;
}

/// True when `v` is a power of two (v > 0).
constexpr bool is_pow2(std::int64_t v) { return v > 0 && (v & (v - 1)) == 0; }

/// Floor of log2 for positive integers.
constexpr int ilog2(std::int64_t v) {
  CIMTPU_DCHECK(v > 0);
  int result = -1;
  while (v > 0) {
    v >>= 1;
    ++result;
  }
  return result;
}

/// Relative difference |a-b| / max(|a|,|b|); 0 when both are 0.
inline double relative_difference(double a, double b) {
  const double denom = (a < 0 ? -a : a) > (b < 0 ? -b : b)
                           ? (a < 0 ? -a : a)
                           : (b < 0 ? -b : b);
  if (denom == 0.0) return 0.0;
  const double diff = a - b;
  return (diff < 0 ? -diff : diff) / denom;
}

/// True when `measured` lies within [lo, hi] (inclusive band).
inline bool within_band(double measured, double lo, double hi) {
  return measured >= lo && measured <= hi;
}

}  // namespace cimtpu
