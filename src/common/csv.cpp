#include "common/csv.h"

#include "common/status.h"

namespace cimtpu {

std::string csv_escape(const std::string& field) {
  const bool needs_quotes =
      field.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quotes) return field;
  std::string escaped = "\"";
  for (char c : field) {
    if (c == '"') escaped += '"';
    escaped += c;
  }
  escaped += '"';
  return escaped;
}

CsvWriter::CsvWriter(const std::string& path) : out_(path) {
  CIMTPU_CONFIG_CHECK(out_.good(), "cannot open CSV output file: " << path);
}

void CsvWriter::write_header(const std::vector<std::string>& columns) {
  CIMTPU_CHECK_MSG(!header_written_, "CSV header already written");
  write_line(columns);
  header_written_ = true;
}

void CsvWriter::write_row(const std::vector<std::string>& fields) {
  write_line(fields);
}

void CsvWriter::write_line(const std::vector<std::string>& fields) {
  for (std::size_t i = 0; i < fields.size(); ++i) {
    if (i != 0) out_ << ',';
    out_ << csv_escape(fields[i]);
  }
  out_ << '\n';
}

void CsvWriter::close() {
  if (out_.is_open()) out_.close();
}

CsvWriter::~CsvWriter() { close(); }

}  // namespace cimtpu
