#pragma once
// Key=value configuration files.  Examples load architecture overrides from
// small text files:
//
//   # comment
//   mxu.count = 4
//   cim.rows = 128
//   mem.hbm_bandwidth_gbps = 614
//
// Sections are spelled with dotted keys; values are parsed on demand with
// typed getters that validate and report the offending key on error.

#include <map>
#include <optional>
#include <string>
#include <vector>

namespace cimtpu {

class ConfigMap {
 public:
  ConfigMap() = default;

  /// Parses the given text; throws ConfigError on malformed lines.
  static ConfigMap parse(const std::string& text);

  /// Loads and parses a file; throws ConfigError if unreadable.
  static ConfigMap load_file(const std::string& path);

  void set(const std::string& key, const std::string& value);

  bool contains(const std::string& key) const;

  /// Typed getters with defaults.  Throw ConfigError when the stored value
  /// cannot be parsed as the requested type.
  std::string get_string(const std::string& key,
                         const std::string& fallback) const;
  long long get_int(const std::string& key, long long fallback) const;
  double get_double(const std::string& key, double fallback) const;
  bool get_bool(const std::string& key, bool fallback) const;

  /// Required-key variants; throw ConfigError when missing.
  std::string require_string(const std::string& key) const;
  long long require_int(const std::string& key) const;
  double require_double(const std::string& key) const;

  /// All keys, sorted (deterministic iteration for reports).
  std::vector<std::string> keys() const;

 private:
  std::optional<std::string> find(const std::string& key) const;

  std::map<std::string, std::string> values_;
};

}  // namespace cimtpu
