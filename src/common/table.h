#pragma once
// ASCII table rendering for the paper-reproduction benches.  Each bench
// prints the same rows/series the paper reports; AsciiTable keeps the
// output aligned and diff-friendly.

#include <string>
#include <vector>

namespace cimtpu {

class AsciiTable {
 public:
  explicit AsciiTable(std::string title = "") : title_(std::move(title)) {}

  /// Sets the column headers; must be called before adding rows.
  void set_header(std::vector<std::string> header);

  /// Appends one row; must match the header width.
  void add_row(std::vector<std::string> row);

  /// Appends a horizontal separator between row groups.
  void add_separator();

  /// Renders the table.
  std::string to_string() const;

  /// Renders and writes to stdout.
  void print() const;

  std::size_t row_count() const { return rows_.size(); }

 private:
  struct Row {
    std::vector<std::string> cells;
    bool separator = false;
  };

  std::string title_;
  std::vector<std::string> header_;
  std::vector<Row> rows_;
};

/// Convenience numeric cell formatters.
std::string cell_f(double value, int precision = 3);
std::string cell_i(long long value);

}  // namespace cimtpu
