#include "common/table.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "common/status.h"

namespace cimtpu {

void AsciiTable::set_header(std::vector<std::string> header) {
  CIMTPU_CHECK_MSG(rows_.empty(), "set_header must precede add_row");
  header_ = std::move(header);
}

void AsciiTable::add_row(std::vector<std::string> row) {
  CIMTPU_CHECK_MSG(header_.empty() || row.size() == header_.size(),
                   "row width " << row.size() << " != header width "
                                << header_.size());
  rows_.push_back(Row{std::move(row), /*separator=*/false});
}

void AsciiTable::add_separator() { rows_.push_back(Row{{}, /*separator=*/true}); }

std::string AsciiTable::to_string() const {
  std::vector<std::size_t> widths(header_.size(), 0);
  auto widen = [&widths](const std::vector<std::string>& cells) {
    if (cells.size() > widths.size()) widths.resize(cells.size(), 0);
    for (std::size_t i = 0; i < cells.size(); ++i) {
      widths[i] = std::max(widths[i], cells[i].size());
    }
  };
  widen(header_);
  for (const Row& row : rows_) {
    if (!row.separator) widen(row.cells);
  }

  std::size_t total = 1;
  for (std::size_t w : widths) total += w + 3;

  std::ostringstream out;
  auto rule = [&out, total]() { out << std::string(total, '-') << "\n"; };
  auto emit = [&out, &widths](const std::vector<std::string>& cells) {
    out << "|";
    for (std::size_t i = 0; i < widths.size(); ++i) {
      const std::string& cell = i < cells.size() ? cells[i] : std::string{};
      out << " " << cell << std::string(widths[i] - cell.size(), ' ') << " |";
    }
    out << "\n";
  };

  if (!title_.empty()) out << "== " << title_ << " ==\n";
  rule();
  if (!header_.empty()) {
    emit(header_);
    rule();
  }
  for (const Row& row : rows_) {
    if (row.separator) {
      rule();
    } else {
      emit(row.cells);
    }
  }
  rule();
  return out.str();
}

void AsciiTable::print() const { std::fputs(to_string().c_str(), stdout); }

std::string cell_f(double value, int precision) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.*f", precision, value);
  return buffer;
}

std::string cell_i(long long value) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%lld", value);
  return buffer;
}

}  // namespace cimtpu
