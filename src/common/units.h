#pragma once
// Physical units used throughout the simulator.
//
// We deliberately use plain `double` with descriptive type aliases rather
// than heavyweight strong types: every quantity in cimtpu carries its unit
// in the name of the variable or accessor (`latency_s`, `energy_j`,
// `bandwidth_bps`), and the formatting helpers below render them for
// reports.  Helper constants make configuration sites readable
// (`16 * MiB`, `614 * GBps`).

#include <cstdint>
#include <string>

namespace cimtpu {

using Cycles = double;   ///< clock cycles (fractional cycles allowed by analytic models)
using Seconds = double;  ///< wall-clock time
using Joules = double;   ///< energy
using Watts = double;    ///< power
using Bytes = double;    ///< data volume (double: analytic models produce averages)
using BytesPerSecond = double;
using Hertz = double;
using Ops = double;      ///< arithmetic operations (1 MAC = 2 Ops)
using SquareMm = double; ///< silicon area

// --- Capacity constants (binary for memories, decimal for bandwidth) -------
inline constexpr double KiB = 1024.0;
inline constexpr double MiB = 1024.0 * KiB;
inline constexpr double GiB = 1024.0 * MiB;
inline constexpr double KB = 1e3;
inline constexpr double MB = 1e6;
inline constexpr double GB = 1e9;

// --- Rate / frequency constants --------------------------------------------
inline constexpr double KBps = 1e3;
inline constexpr double MBps = 1e6;
inline constexpr double GBps = 1e9;
inline constexpr double MHz = 1e6;
inline constexpr double GHz = 1e9;

// --- Energy constants -------------------------------------------------------
inline constexpr double pJ = 1e-12;
inline constexpr double nJ = 1e-9;
inline constexpr double uJ = 1e-6;
inline constexpr double mJ = 1e-3;

// --- Time constants ---------------------------------------------------------
inline constexpr double ns = 1e-9;
inline constexpr double us = 1e-6;
inline constexpr double ms = 1e-3;

// --- Throughput constants ---------------------------------------------------
inline constexpr double GOPS = 1e9;
inline constexpr double TOPS = 1e12;

/// Formats seconds with an auto-selected scale, e.g. "1.234 ms".
std::string format_time(Seconds s);

/// Formats joules with an auto-selected scale, e.g. "42.0 uJ".
std::string format_energy(Joules j);

/// Formats bytes with binary prefixes, e.g. "16.0 MiB".
std::string format_bytes(Bytes b);

/// Formats an op rate, e.g. "123.0 TOPS".
std::string format_ops_rate(double ops_per_second);

/// Formats watts, e.g. "175.0 W" / "3.2 mW".
std::string format_power(Watts w);

/// Formats a plain ratio with 'x' suffix, e.g. "9.43x".
std::string format_ratio(double ratio);

/// Formats a signed percentage delta, e.g. "-29.9%" / "+2.4%".
std::string format_percent_delta(double fraction);

}  // namespace cimtpu
