#include "common/units.h"

#include <cmath>
#include <cstdio>

namespace cimtpu {
namespace {

std::string scaled(double value, const char* const* suffixes, int count,
                   double step) {
  int index = 0;
  double magnitude = std::fabs(value);
  while (index + 1 < count && magnitude >= step) {
    magnitude /= step;
    value /= step;
    ++index;
  }
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.3g %s", value, suffixes[index]);
  return buffer;
}

}  // namespace

std::string format_time(Seconds s) {
  static const char* const kSuffixes[] = {"ps", "ns", "us", "ms", "s"};
  return scaled(s * 1e12, kSuffixes, 5, 1000.0);
}

std::string format_energy(Joules j) {
  static const char* const kSuffixes[] = {"fJ", "pJ", "nJ", "uJ", "mJ", "J"};
  return scaled(j * 1e15, kSuffixes, 6, 1000.0);
}

std::string format_bytes(Bytes b) {
  static const char* const kSuffixes[] = {"B", "KiB", "MiB", "GiB", "TiB"};
  return scaled(b, kSuffixes, 5, 1024.0);
}

std::string format_ops_rate(double ops_per_second) {
  static const char* const kSuffixes[] = {"OPS", "KOPS", "MOPS", "GOPS",
                                          "TOPS", "POPS"};
  return scaled(ops_per_second, kSuffixes, 6, 1000.0);
}

std::string format_power(Watts w) {
  static const char* const kSuffixes[] = {"uW", "mW", "W", "kW"};
  return scaled(w * 1e6, kSuffixes, 4, 1000.0);
}

std::string format_ratio(double ratio) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.3gx", ratio);
  return buffer;
}

std::string format_percent_delta(double fraction) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%+.1f%%", fraction * 100.0);
  return buffer;
}

}  // namespace cimtpu
