#include "common/config.h"

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "common/status.h"

namespace cimtpu {
namespace {

std::string trim(const std::string& s) {
  std::size_t begin = 0;
  std::size_t end = s.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(s[begin]))) {
    ++begin;
  }
  while (end > begin && std::isspace(static_cast<unsigned char>(s[end - 1]))) {
    --end;
  }
  return s.substr(begin, end - begin);
}

}  // namespace

ConfigMap ConfigMap::parse(const std::string& text) {
  ConfigMap config;
  std::istringstream in(text);
  std::string line;
  int line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    const std::size_t comment = line.find('#');
    if (comment != std::string::npos) line.erase(comment);
    const std::string trimmed = trim(line);
    if (trimmed.empty()) continue;
    const std::size_t eq = trimmed.find('=');
    CIMTPU_CONFIG_CHECK(eq != std::string::npos,
                        "config line " << line_number << " has no '=': "
                                       << trimmed);
    const std::string key = trim(trimmed.substr(0, eq));
    const std::string value = trim(trimmed.substr(eq + 1));
    CIMTPU_CONFIG_CHECK(!key.empty(),
                        "config line " << line_number << " has empty key");
    config.set(key, value);
  }
  return config;
}

ConfigMap ConfigMap::load_file(const std::string& path) {
  std::ifstream in(path);
  CIMTPU_CONFIG_CHECK(in.good(), "cannot open config file: " << path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return parse(buffer.str());
}

void ConfigMap::set(const std::string& key, const std::string& value) {
  values_[key] = value;
}

bool ConfigMap::contains(const std::string& key) const {
  return values_.count(key) != 0;
}

std::optional<std::string> ConfigMap::find(const std::string& key) const {
  auto it = values_.find(key);
  if (it == values_.end()) return std::nullopt;
  return it->second;
}

std::string ConfigMap::get_string(const std::string& key,
                                  const std::string& fallback) const {
  return find(key).value_or(fallback);
}

long long ConfigMap::get_int(const std::string& key, long long fallback) const {
  const auto value = find(key);
  if (!value) return fallback;
  char* end = nullptr;
  const long long parsed = std::strtoll(value->c_str(), &end, 0);
  CIMTPU_CONFIG_CHECK(end != value->c_str() && *end == '\0',
                      "config key '" << key << "' is not an integer: "
                                     << *value);
  return parsed;
}

double ConfigMap::get_double(const std::string& key, double fallback) const {
  const auto value = find(key);
  if (!value) return fallback;
  char* end = nullptr;
  const double parsed = std::strtod(value->c_str(), &end);
  CIMTPU_CONFIG_CHECK(end != value->c_str() && *end == '\0',
                      "config key '" << key << "' is not a number: " << *value);
  return parsed;
}

bool ConfigMap::get_bool(const std::string& key, bool fallback) const {
  const auto value = find(key);
  if (!value) return fallback;
  std::string lowered = *value;
  std::transform(lowered.begin(), lowered.end(), lowered.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  if (lowered == "true" || lowered == "1" || lowered == "yes" ||
      lowered == "on") {
    return true;
  }
  if (lowered == "false" || lowered == "0" || lowered == "no" ||
      lowered == "off") {
    return false;
  }
  throw ConfigError("config key '" + key + "' is not a boolean: " + *value);
}

std::string ConfigMap::require_string(const std::string& key) const {
  const auto value = find(key);
  CIMTPU_CONFIG_CHECK(value.has_value(), "missing required config key: " << key);
  return *value;
}

long long ConfigMap::require_int(const std::string& key) const {
  CIMTPU_CONFIG_CHECK(contains(key), "missing required config key: " << key);
  return get_int(key, 0);
}

double ConfigMap::require_double(const std::string& key) const {
  CIMTPU_CONFIG_CHECK(contains(key), "missing required config key: " << key);
  return get_double(key, 0.0);
}

std::vector<std::string> ConfigMap::keys() const {
  std::vector<std::string> result;
  result.reserve(values_.size());
  for (const auto& [key, value] : values_) result.push_back(key);
  return result;
}

}  // namespace cimtpu
