#pragma once
// Deterministic pseudo-random number generation for functional tests and
// workload generators.  A fixed algorithm (splitmix64 + xoshiro256**) keeps
// results reproducible across platforms and standard-library versions,
// which std::mt19937 distributions do not guarantee.

#include <cstdint>

namespace cimtpu {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull) {
    // splitmix64 seeding per Blackman & Vigna.
    std::uint64_t x = seed;
    for (auto& word : state_) {
      x += 0x9e3779b97f4a7c15ull;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
      word = z ^ (z >> 31);
    }
  }

  /// Next 64 random bits (xoshiro256**).
  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>(next_u64() % span);
  }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>(next_u64() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + uniform() * (hi - lo); }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4];
};

}  // namespace cimtpu
