#pragma once
// Minimal leveled logger.  Simulation libraries should be quiet by default;
// benches and examples raise the level for progress reporting.

#include <sstream>
#include <string>

namespace cimtpu {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3, kOff = 4 };

/// Sets the global minimum level that will be emitted.
void set_log_level(LogLevel level);

/// Returns the current global minimum level.
LogLevel log_level();

namespace detail {

void emit_log(LogLevel level, const std::string& message);

class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;
  ~LogLine() { emit_log(level_, stream_.str()); }

  template <typename T>
  LogLine& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace detail
}  // namespace cimtpu

#define CIMTPU_LOG(level) ::cimtpu::detail::LogLine(::cimtpu::LogLevel::level)
