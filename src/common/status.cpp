#include "common/status.h"

namespace cimtpu::detail {

void throw_check_failure(const char* kind, const char* expr, const char* file,
                         int line, const std::string& message) {
  std::ostringstream out;
  out << kind << " failed: (" << expr << ") at " << file << ":" << line;
  if (!message.empty()) {
    out << " — " << message;
  }
  throw InternalError(out.str());
}

}  // namespace cimtpu::detail
