#pragma once
// Error handling for cimtpu.
//
// Policy (C++ Core Guidelines E.2/E.3): programming-contract violations and
// invalid user configuration raise exceptions derived from cimtpu::Error so
// that callers (examples, benches, tests) can report and terminate cleanly.
// Hot-path invariants additionally use CIMTPU_DCHECK which compiles out in
// release builds.

#include <sstream>
#include <stdexcept>
#include <string>

namespace cimtpu {

/// Base class for all cimtpu errors.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Raised when a user-supplied configuration is invalid or inconsistent.
class ConfigError : public Error {
 public:
  explicit ConfigError(const std::string& what) : Error(what) {}
};

/// Raised when an internal invariant is violated (a bug in cimtpu).
class InternalError : public Error {
 public:
  explicit InternalError(const std::string& what) : Error(what) {}
};

/// Raised when a requested feature/operator is not supported by a model.
class UnsupportedError : public Error {
 public:
  explicit UnsupportedError(const std::string& what) : Error(what) {}
};

namespace detail {

[[noreturn]] void throw_check_failure(const char* kind, const char* expr,
                                      const char* file, int line,
                                      const std::string& message);

/// Stream-style message builder used by the CHECK macros.
class MessageBuilder {
 public:
  template <typename T>
  MessageBuilder& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }
  std::string str() const { return stream_.str(); }

 private:
  std::ostringstream stream_;
};

}  // namespace detail
}  // namespace cimtpu

/// Always-on invariant check; throws InternalError on failure.
#define CIMTPU_CHECK(expr)                                                 \
  if (!(expr))                                                             \
  ::cimtpu::detail::throw_check_failure(                                   \
      "CHECK", #expr, __FILE__, __LINE__,                                  \
      ::cimtpu::detail::MessageBuilder{}.str())

/// Always-on invariant check with a streamed message:
///   CIMTPU_CHECK_MSG(x > 0) << "x was " << x;
#define CIMTPU_CHECK_MSG(expr, msg_expr)                                   \
  do {                                                                     \
    if (!(expr)) {                                                         \
      ::cimtpu::detail::MessageBuilder builder;                            \
      builder << msg_expr;                                                 \
      ::cimtpu::detail::throw_check_failure("CHECK", #expr, __FILE__,      \
                                            __LINE__, builder.str());      \
    }                                                                      \
  } while (false)

/// Configuration validation; throws ConfigError on failure.
#define CIMTPU_CONFIG_CHECK(expr, msg_expr)                                \
  do {                                                                     \
    if (!(expr)) {                                                         \
      ::cimtpu::detail::MessageBuilder builder;                            \
      builder << msg_expr;                                                 \
      throw ::cimtpu::ConfigError(builder.str());                          \
    }                                                                      \
  } while (false)

#ifdef NDEBUG
#define CIMTPU_DCHECK(expr) ((void)0)
#else
#define CIMTPU_DCHECK(expr) CIMTPU_CHECK(expr)
#endif
