#include "mem/memory.h"

#include <algorithm>

#include "common/status.h"

namespace cimtpu::mem {

void MemorySystemSpec::validate() const {
  CIMTPU_CONFIG_CHECK(vmem.capacity > 0 && vmem.bandwidth > 0,
                      "VMEM spec invalid");
  CIMTPU_CONFIG_CHECK(cmem.capacity > 0 && cmem.bandwidth > 0,
                      "CMEM spec invalid");
  CIMTPU_CONFIG_CHECK(hbm.capacity > 0 && hbm.bandwidth > 0, "HBM spec invalid");
  CIMTPU_CONFIG_CHECK(vmem.capacity <= cmem.capacity,
                      "VMEM larger than CMEM: " << vmem.capacity << " > "
                                                << cmem.capacity);
}

MemorySystem::MemorySystem(MemorySystemSpec spec,
                           const tech::EnergyModel& energy)
    : spec_(std::move(spec)), energy_(&energy) {
  spec_.validate();
}

Seconds MemorySystem::vmem_time(Bytes bytes) const {
  return bytes / spec_.vmem.bandwidth;
}

Seconds MemorySystem::cmem_time(Bytes bytes) const {
  return bytes / spec_.cmem.bandwidth;
}

Seconds MemorySystem::hbm_time(Bytes bytes) const {
  return bytes / spec_.hbm.bandwidth;
}

Seconds MemorySystem::stage_in_time(ir::Residency residency,
                                    Bytes bytes) const {
  // Legs run as a pipeline (memory coalescing); the slowest leg dominates.
  switch (residency) {
    case ir::Residency::kHbm:
      return std::max({hbm_time(bytes), cmem_time(bytes), vmem_time(bytes)});
    case ir::Residency::kCmem:
      return std::max(cmem_time(bytes), vmem_time(bytes));
    case ir::Residency::kVmem:
      return vmem_time(bytes);
  }
  return 0.0;
}

Joules MemorySystem::stage_in_energy(ir::Residency residency,
                                     Bytes bytes) const {
  switch (residency) {
    case ir::Residency::kHbm:
      return hbm_energy(bytes) + cmem_energy(bytes) + vmem_energy(bytes);
    case ir::Residency::kCmem:
      return cmem_energy(bytes) + vmem_energy(bytes);
    case ir::Residency::kVmem:
      return vmem_energy(bytes);
  }
  return 0.0;
}

Joules MemorySystem::write_back_energy(ir::Residency residency,
                                       Bytes bytes) const {
  // Writing follows the same path outward.
  return stage_in_energy(residency, bytes);
}

Joules MemorySystem::vmem_energy(Bytes bytes) const {
  return bytes * energy_->vmem_per_byte();
}

Joules MemorySystem::cmem_energy(Bytes bytes) const {
  return bytes * energy_->cmem_per_byte();
}

Joules MemorySystem::hbm_energy(Bytes bytes) const {
  return bytes * energy_->hbm_per_byte();
}

bool MemorySystem::fits_cmem(Bytes bytes, Bytes reserved) const {
  return bytes + reserved <= spec_.cmem.capacity;
}

Seconds overlap_double_buffered(Seconds compute, Seconds memory,
                                double tiles) {
  CIMTPU_DCHECK(tiles >= 1.0);
  // Steady state: per-tile latency is max(compute, memory) per tile; the
  // first tile's memory fill cannot be hidden.
  const Seconds per_tile_compute = compute / tiles;
  const Seconds per_tile_memory = memory / tiles;
  return per_tile_memory +
         tiles * std::max(per_tile_compute, per_tile_memory);
}

Seconds overlap_serial(Seconds compute, Seconds memory) {
  return compute + memory;
}

}  // namespace cimtpu::mem
