#include "mem/link.h"

#include "common/status.h"

namespace cimtpu::mem {

IciFabric::IciFabric(IciLinkSpec spec, const tech::EnergyModel& energy)
    : spec_(spec), energy_(&energy) {
  CIMTPU_CONFIG_CHECK(spec_.links_per_chip > 0 && spec_.bandwidth_per_link > 0,
                      "invalid ICI spec");
  CIMTPU_CONFIG_CHECK(spec_.hop_latency >= 0,
                      "ICI hop_latency must be >= 0, got " << spec_.hop_latency);
}

Seconds IciFabric::all_reduce_time(Bytes bytes, int chips) const {
  CIMTPU_CHECK_MSG(chips >= 1, "all_reduce needs >=1 chip, got " << chips);
  if (chips == 1 || bytes <= 0) return 0.0;
  // Ring all-reduce: 2*(p-1) steps, each moving bytes/p per chip.  In a
  // bidirectional ring both links carry traffic, doubling throughput.
  const double p = chips;
  const BytesPerSecond effective_bw =
      spec_.bandwidth_per_link * std::min(spec_.links_per_chip, 2);
  const Seconds transfer = 2.0 * (p - 1.0) / p * bytes / effective_bw;
  const Seconds latency = 2.0 * (p - 1.0) * spec_.hop_latency;
  return transfer + latency;
}

Seconds IciFabric::p2p_time(Bytes bytes) const {
  if (bytes <= 0) return 0.0;
  return spec_.hop_latency + bytes / spec_.bandwidth_per_link;
}

Joules IciFabric::all_reduce_energy(Bytes bytes, int chips) const {
  if (chips <= 1 || bytes <= 0) return 0.0;
  const double p = chips;
  const Bytes crossed = 2.0 * (p - 1.0) / p * bytes * p;  // all chips
  return crossed * energy_->ici_per_byte();
}

Joules IciFabric::p2p_energy(Bytes bytes) const {
  if (bytes <= 0) return 0.0;
  return bytes * energy_->ici_per_byte();
}

}  // namespace cimtpu::mem
