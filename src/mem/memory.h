#pragma once
// Two-level on-chip memory hierarchy plus main memory, following TPUv4i:
//
//   HBM (8 GB, 614 GB/s) <-> CMEM (128 MiB SRAM, via OCI) <-> VMEM (16 MiB)
//
// Unlike prior CIM simulators, the paper's model (and ours) keeps this
// two-level on-chip hierarchy (Sec. III-A).  The cost model exposes
// per-level transfer times and energies; double buffering / memory
// coalescing decisions live in the mapping engine and are expressed here
// only as overlap arithmetic helpers.

#include <string>

#include "common/units.h"
#include "ir/op.h"
#include "tech/energy_model.h"

namespace cimtpu::mem {

/// Static description of one memory level.
struct MemoryLevelSpec {
  std::string name;
  Bytes capacity = 0;
  BytesPerSecond bandwidth = 0;
};

/// Chip-level memory system specification (Table I defaults).
struct MemorySystemSpec {
  MemoryLevelSpec vmem{"VMEM", 16 * MiB, 8.0 * 1024 * GBps};
  MemoryLevelSpec cmem{"CMEM", 128 * MiB, 1.5 * 1024 * GBps};  // OCI bandwidth
  MemoryLevelSpec hbm{"HBM", 8 * GiB, 614 * GBps};

  /// Validates capacities/bandwidths; throws ConfigError on nonsense.
  void validate() const;
};

/// Runtime memory-cost model bound to a technology node.
class MemorySystem {
 public:
  MemorySystem(MemorySystemSpec spec, const tech::EnergyModel& energy);

  const MemorySystemSpec& spec() const { return spec_; }

  /// Time to move `bytes` into/out of the named level at its bandwidth.
  Seconds vmem_time(Bytes bytes) const;
  Seconds cmem_time(Bytes bytes) const;
  Seconds hbm_time(Bytes bytes) const;

  /// Time to stage a tensor that currently lives at `residency` into VMEM
  /// (the slowest leg of the path dominates under double buffering).
  Seconds stage_in_time(ir::Residency residency, Bytes bytes) const;

  /// Energy to stage a tensor from `residency` into VMEM (all legs pay).
  Joules stage_in_energy(ir::Residency residency, Bytes bytes) const;

  /// Energy to write a result from VMEM back to `residency`.
  Joules write_back_energy(ir::Residency residency, Bytes bytes) const;

  /// Per-byte access energy of one level.
  Joules vmem_energy(Bytes bytes) const;
  Joules cmem_energy(Bytes bytes) const;
  Joules hbm_energy(Bytes bytes) const;

  /// True when `bytes` fits in CMEM alongside `reserved` bytes already
  /// allocated (used to decide KV-cache residency).
  bool fits_cmem(Bytes bytes, Bytes reserved = 0) const;

 private:
  MemorySystemSpec spec_;
  const tech::EnergyModel* energy_;  // non-owning; chips outlive the model
};

/// Overlap arithmetic for double-buffered pipelines: total time of a
/// pipeline whose compute takes `compute` and whose (overlappable) memory
/// traffic takes `memory`, given `stages` pipeline stages.  With double
/// buffering the steady state is max(compute, memory); the first tile's
/// fill is exposed.
Seconds overlap_double_buffered(Seconds compute, Seconds memory, double tiles);

/// Non-overlapped fallback (double buffering disabled).
Seconds overlap_serial(Seconds compute, Seconds memory);

}  // namespace cimtpu::mem
