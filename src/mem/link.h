#pragma once
// Inter-chip interconnect (ICI) links and ring collectives.
//
// TPUv4i exposes two ICI links per chip at 100 GB/s each; multi-chip
// deployments connect chips in a ring (paper Sec. V-B).  The collective
// model follows the standard ring algorithm costs used by Megatron-style
// tensor parallelism.

#include "common/units.h"
#include "tech/energy_model.h"

namespace cimtpu::mem {

struct IciLinkSpec {
  int links_per_chip = 2;
  BytesPerSecond bandwidth_per_link = 100 * GBps;
  Seconds hop_latency = 1.0 * us;  ///< per-message software+SerDes latency
};

/// Cost model for ring collectives across `chips` devices.
class IciFabric {
 public:
  IciFabric(IciLinkSpec spec, const tech::EnergyModel& energy);

  const IciLinkSpec& spec() const { return spec_; }

  /// Time for a ring all-reduce of `bytes` per chip.
  /// Standard cost: 2 * (p-1)/p * bytes / link_bw (+ latency per step).
  Seconds all_reduce_time(Bytes bytes, int chips) const;

  /// Time for a point-to-point transfer of `bytes` between ring neighbours
  /// (pipeline-parallel activation handoff).
  Seconds p2p_time(Bytes bytes) const;

  /// Energy for a ring all-reduce (each byte crosses links 2(p-1)/p times
  /// per chip).
  Joules all_reduce_energy(Bytes bytes, int chips) const;

  /// Energy for a point-to-point transfer.
  Joules p2p_energy(Bytes bytes) const;

 private:
  IciLinkSpec spec_;
  const tech::EnergyModel* energy_;
};

}  // namespace cimtpu::mem
