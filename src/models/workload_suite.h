#pragma once
// Named experiment registry: the exact workload points the paper's
// evaluation uses, addressable by id.  Benches, examples and tests pull
// scenarios from here so the definitions cannot drift apart.

#include <string>
#include <vector>

#include "models/dit.h"
#include "models/model_zoo.h"
#include "models/transformer.h"

namespace cimtpu::models {

/// What kind of measurement a suite entry drives.
enum class WorkloadKind {
  kLlmPrefillLayer,  ///< one Transformer layer, prompt processing
  kLlmDecodeLayer,   ///< one Transformer layer, one decode step
  kLlmInference,     ///< prefill + full generation, all layers
  kDitBlock,         ///< one DiT block
  kDitForward,       ///< full DiT forward pass
};

std::string workload_kind_name(WorkloadKind kind);

/// One registered experiment point.
struct WorkloadCase {
  std::string id;           ///< e.g. "fig6-llm-decode"
  std::string description;  ///< where it appears in the paper
  WorkloadKind kind;
  TransformerConfig model;
  DitGeometry geometry;     ///< DiT kinds only
  std::int64_t batch = 8;
  std::int64_t input_len = 1024;   ///< prefill length / decode context
  std::int64_t output_len = 512;   ///< kLlmInference only
  std::int64_t kv_len = 1280;      ///< kLlmDecodeLayer only
};

/// The paper's evaluation points (Fig. 6 panels, Fig. 7 scenarios,
/// Fig. 2 breakdown inputs).
std::vector<WorkloadCase> paper_workloads();

/// Looks a case up by id; throws ConfigError for unknown ids.
WorkloadCase workload_by_id(const std::string& id);

/// All registered ids.
std::vector<std::string> workload_ids();

}  // namespace cimtpu::models
