#include "models/transformer.h"

#include "common/status.h"

namespace cimtpu::models {

void TransformerConfig::validate() const {
  CIMTPU_CONFIG_CHECK(num_layers > 0, "model '" << name << "': num_layers");
  CIMTPU_CONFIG_CHECK(num_heads > 0, "model '" << name << "': num_heads");
  CIMTPU_CONFIG_CHECK(d_model > 0 && d_model % num_heads == 0,
                      "model '" << name << "': d_model (" << d_model
                                << ") must be divisible by heads ("
                                << num_heads << ")");
  CIMTPU_CONFIG_CHECK(d_ff > 0, "model '" << name << "': d_ff");
}

Bytes TransformerConfig::layer_weight_bytes() const {
  const double elem = ir::dtype_bytes(dtype);
  const double d = static_cast<double>(d_model);
  const double f = static_cast<double>(d_ff);
  // QKV (d x 3d) + output projection (d x d).
  double weights = 3.0 * d * d + d * d;
  // FFN matrices.
  weights += ffn == FfnKind::kSwiGlu ? 3.0 * d * f : 2.0 * d * f;
  return weights * elem;
}

double TransformerConfig::stack_parameters() const {
  return layer_weight_bytes() / ir::dtype_bytes(dtype) * num_layers;
}

Bytes kv_cache_bytes_per_layer(const TransformerConfig& config,
                               std::int64_t batch, std::int64_t kv_len) {
  // K and V, [batch, kv_len, d_model] each.
  return 2.0 * static_cast<double>(batch) * kv_len * config.d_model *
         ir::dtype_bytes(config.dtype);
}

}  // namespace cimtpu::models
