#pragma once
// Transformer model configuration shared by LLM and DiT workload builders.

#include <cstdint>
#include <string>

#include "common/units.h"
#include "ir/dtype.h"

namespace cimtpu::models {

/// Feed-forward network variants.
enum class FfnKind {
  kGelu,    ///< FFN1 -> GeLU -> FFN2 (GPT-3, DiT)
  kSwiGlu,  ///< gate & up projections -> SiLU*gate -> down (Llama-2)
};

struct TransformerConfig {
  std::string name;
  std::int64_t num_layers = 0;
  std::int64_t num_heads = 0;
  std::int64_t d_model = 0;
  std::int64_t d_ff = 0;          ///< FFN hidden width (4*d_model for GPT/DiT)
  std::int64_t vocab_size = 0;    ///< 0 when not applicable (DiT)
  FfnKind ffn = FfnKind::kGelu;
  ir::DType dtype = ir::DType::kInt8;

  std::int64_t d_head() const { return d_model / num_heads; }

  /// Weight bytes of one Transformer layer (QKV + proj + FFN matrices).
  Bytes layer_weight_bytes() const;

  /// Weight bytes of the whole stack (layers only, no embeddings).
  Bytes stack_weight_bytes() const { return layer_weight_bytes() * num_layers; }

  /// Approximate parameter count of the layer stack.
  double stack_parameters() const;

  void validate() const;
};

/// KV-cache footprint for `batch` sequences of `kv_len` tokens (one layer).
Bytes kv_cache_bytes_per_layer(const TransformerConfig& config,
                               std::int64_t batch, std::int64_t kv_len);

}  // namespace cimtpu::models
