#pragma once
// INT8 quantization utilities.
//
// The paper evaluates all workloads "using INT8 data precision"
// (Sec. IV-B).  This module provides the functional counterpart: symmetric
// per-tensor quantization of float matrices, a quantized GEMM that runs on
// the bit-exact CIM/systolic integer paths, and the dequantization that
// bounds end-to-end numeric error.  Property tests verify the quantized
// pipeline tracks the float reference within the expected error bound.

#include <cstdint>
#include <vector>

namespace cimtpu::models {

/// Symmetric per-tensor INT8 quantization parameters: real = scale * q.
struct QuantParams {
  float scale = 1.0f;

  float dequantize(std::int32_t q) const {
    return scale * static_cast<float>(q);
  }
};

/// Chooses the symmetric scale covering max|x| at 127.
QuantParams choose_scale(const std::vector<float>& values);

/// Quantizes with round-to-nearest, saturating to [-127, 127] (symmetric;
/// -128 is unused to keep negation exact).
std::vector<std::int8_t> quantize(const std::vector<float>& values,
                                  const QuantParams& params);

/// Dequantizes an INT8 tensor.
std::vector<float> dequantize(const std::vector<std::int8_t>& values,
                              const QuantParams& params);

/// Quantized GEMM: C_real ~= (scale_a * scale_w) * (A_q x W_q).
/// A is [m, k], W is [k, n], both row-major.
std::vector<float> quantized_gemm(const std::vector<std::int8_t>& a,
                                  const QuantParams& a_params,
                                  const std::vector<std::int8_t>& w,
                                  const QuantParams& w_params, int m, int k,
                                  int n);

/// Float reference GEMM.
std::vector<float> float_gemm(const std::vector<float>& a,
                              const std::vector<float>& w, int m, int k,
                              int n);

/// Worst-case absolute error bound of the quantized GEMM for operands
/// bounded by the chosen scales: k * (eps_a * max_w + eps_w * max_a +
/// eps_a * eps_w) with eps = scale / 2 (round-to-nearest).
float quantized_gemm_error_bound(const QuantParams& a_params,
                                 const QuantParams& w_params, int k);

}  // namespace cimtpu::models
