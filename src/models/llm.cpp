#include "models/llm.h"

#include "common/status.h"

namespace cimtpu::models {
namespace {

// Adds the attention block (Q*K^T, softmax, S*V^T) shared by prefill and
// decode.  `q_rows` is the number of query positions per sequence.
void add_attention(ir::Graph& graph, const TransformerConfig& config,
                   std::int64_t batch, std::int64_t q_rows,
                   std::int64_t kv_len, ir::Residency kv_residency) {
  const std::int64_t instances = batch * config.num_heads;
  const ir::DType dtype = config.dtype;
  // Q*K^T: every (batch, head) has its own K — the stationary operand
  // cannot be shared, which is what starves the digital systolic array in
  // decode (q_rows == 1).
  ir::Op qk = ir::make_attention_gemm("attn_qk", "Attention", instances,
                                      q_rows, config.d_head(), kv_len, dtype,
                                      kv_residency);
  graph.add(qk);
  graph.add(ir::make_softmax("attn_softmax", "Attention", instances * q_rows,
                             kv_len, dtype));
  graph.add(ir::make_attention_gemm("attn_sv", "Attention", instances, q_rows,
                                    kv_len, config.d_head(), dtype,
                                    kv_residency));
}

// Adds the FFN block (GELU or SwiGLU variant).
void add_ffn(ir::Graph& graph, const TransformerConfig& config,
             std::int64_t rows) {
  const ir::DType dtype = config.dtype;
  if (config.ffn == FfnKind::kSwiGlu) {
    graph.add(ir::make_weight_gemm("ffn_gate", "FFN1", rows, config.d_model,
                                   config.d_ff, dtype));
    graph.add(ir::make_weight_gemm("ffn_up", "FFN1", rows, config.d_model,
                                   config.d_ff, dtype));
    // SiLU(gate) * up
    graph.add(ir::make_gelu("ffn_silu", "GeLU", rows * config.d_ff, dtype));
    graph.add(ir::make_elementwise("ffn_gate_mul", "GeLU", rows * config.d_ff,
                                   1.0, dtype));
    graph.add(ir::make_weight_gemm("ffn_down", "FFN2", rows, config.d_ff,
                                   config.d_model, dtype));
  } else {
    graph.add(ir::make_weight_gemm("ffn1", "FFN1", rows, config.d_model,
                                   config.d_ff, dtype));
    graph.add(ir::make_gelu("gelu", "GeLU", rows * config.d_ff, dtype));
    graph.add(ir::make_weight_gemm("ffn2", "FFN2", rows, config.d_ff,
                                   config.d_model, dtype));
  }
}

}  // namespace

ir::Residency choose_kv_residency(Bytes kv_operand_bytes, Bytes cmem_capacity,
                                  Bytes reserved_bytes) {
  return kv_operand_bytes + reserved_bytes <= cmem_capacity
             ? ir::Residency::kCmem
             : ir::Residency::kHbm;
}

ir::Graph build_prefill_layer(const TransformerConfig& config,
                              std::int64_t batch, std::int64_t seq_len,
                              ir::Residency kv_residency) {
  config.validate();
  CIMTPU_CONFIG_CHECK(batch > 0 && seq_len > 0,
                      "prefill needs positive batch/seq_len");
  ir::Graph graph(config.name + "-prefill-layer");
  const std::int64_t rows = batch * seq_len;
  const ir::DType dtype = config.dtype;

  graph.add(ir::make_layer_norm("ln1", "LayerNorm", rows, config.d_model,
                                dtype));
  graph.add(ir::make_weight_gemm("qkv_proj", "QKV Gen", rows, config.d_model,
                                 3 * config.d_model, dtype));
  // KV-cache store for this layer.
  graph.add(ir::make_data_movement("kv_store", "Attention",
                                   2 * rows * config.d_model, dtype));
  add_attention(graph, config, batch, seq_len, seq_len, kv_residency);
  graph.add(ir::make_weight_gemm("out_proj", "Proj.", rows, config.d_model,
                                 config.d_model, dtype));
  graph.add(ir::make_elementwise("residual1", "LayerNorm", rows * config.d_model,
                                 1.0, dtype));
  graph.add(ir::make_layer_norm("ln2", "LayerNorm", rows, config.d_model,
                                dtype));
  add_ffn(graph, config, rows);
  graph.add(ir::make_elementwise("residual2", "LayerNorm", rows * config.d_model,
                                 1.0, dtype));
  return graph;
}

ir::Graph build_decode_layer(const TransformerConfig& config,
                             std::int64_t batch, std::int64_t kv_len,
                             ir::Residency kv_residency) {
  config.validate();
  CIMTPU_CONFIG_CHECK(batch > 0 && kv_len > 0,
                      "decode needs positive batch/kv_len");
  ir::Graph graph(config.name + "-decode-layer");
  const std::int64_t rows = batch;  // one token per sequence
  const ir::DType dtype = config.dtype;

  graph.add(ir::make_layer_norm("ln1", "LayerNorm", rows, config.d_model,
                                dtype));
  graph.add(ir::make_weight_gemm("qkv_proj", "QKV Gen", rows, config.d_model,
                                 3 * config.d_model, dtype));
  // Append this step's K/V rows to the cache.
  graph.add(ir::make_data_movement("kv_append", "Attention",
                                   2 * rows * config.d_model, dtype));
  add_attention(graph, config, batch, /*q_rows=*/1, kv_len, kv_residency);
  graph.add(ir::make_weight_gemm("out_proj", "Proj.", rows, config.d_model,
                                 config.d_model, dtype));
  graph.add(ir::make_elementwise("residual1", "LayerNorm", rows * config.d_model,
                                 1.0, dtype));
  graph.add(ir::make_layer_norm("ln2", "LayerNorm", rows, config.d_model,
                                dtype));
  add_ffn(graph, config, rows);
  graph.add(ir::make_elementwise("residual2", "LayerNorm", rows * config.d_model,
                                 1.0, dtype));
  return graph;
}

ir::Graph build_token_embedding(const TransformerConfig& config,
                                std::int64_t tokens) {
  config.validate();
  ir::Graph graph(config.name + "-embedding");
  graph.add(ir::make_embedding_lookup("token_embed", "Token Embedding",
                                      tokens, config.d_model, config.dtype));
  return graph;
}

ir::Graph build_prediction_head(const TransformerConfig& config,
                                std::int64_t rows) {
  config.validate();
  CIMTPU_CONFIG_CHECK(config.vocab_size > 0,
                      "model '" << config.name << "' has no vocab for a head");
  ir::Graph graph(config.name + "-head");
  graph.add(ir::make_layer_norm("final_ln", "Prediction Head", rows,
                                config.d_model, config.dtype));
  graph.add(ir::make_weight_gemm("lm_head", "Prediction Head", rows,
                                 config.d_model, config.vocab_size,
                                 config.dtype));
  return graph;
}

}  // namespace cimtpu::models
