#include "models/quantization.h"

#include <algorithm>
#include <cmath>

#include "common/status.h"

namespace cimtpu::models {

QuantParams choose_scale(const std::vector<float>& values) {
  CIMTPU_CHECK_MSG(!values.empty(), "cannot scale an empty tensor");
  float max_abs = 0.0f;
  for (float v : values) max_abs = std::max(max_abs, std::fabs(v));
  QuantParams params;
  params.scale = max_abs > 0.0f ? max_abs / 127.0f : 1.0f;
  return params;
}

std::vector<std::int8_t> quantize(const std::vector<float>& values,
                                  const QuantParams& params) {
  CIMTPU_CHECK_MSG(params.scale > 0.0f, "scale must be positive");
  std::vector<std::int8_t> result(values.size());
  for (std::size_t i = 0; i < values.size(); ++i) {
    const float scaled = values[i] / params.scale;
    const float clamped = std::min(127.0f, std::max(-127.0f, scaled));
    result[i] = static_cast<std::int8_t>(std::lround(clamped));
  }
  return result;
}

std::vector<float> dequantize(const std::vector<std::int8_t>& values,
                              const QuantParams& params) {
  std::vector<float> result(values.size());
  for (std::size_t i = 0; i < values.size(); ++i) {
    result[i] = params.dequantize(values[i]);
  }
  return result;
}

std::vector<float> quantized_gemm(const std::vector<std::int8_t>& a,
                                  const QuantParams& a_params,
                                  const std::vector<std::int8_t>& w,
                                  const QuantParams& w_params, int m, int k,
                                  int n) {
  CIMTPU_CHECK_MSG(a.size() == static_cast<std::size_t>(m) * k,
                   "A size mismatch");
  CIMTPU_CHECK_MSG(w.size() == static_cast<std::size_t>(k) * n,
                   "W size mismatch");
  const float scale = a_params.scale * w_params.scale;
  std::vector<float> out(static_cast<std::size_t>(m) * n, 0.0f);
  for (int i = 0; i < m; ++i) {
    for (int c = 0; c < n; ++c) {
      std::int32_t acc = 0;
      for (int r = 0; r < k; ++r) {
        acc += static_cast<std::int32_t>(a[static_cast<std::size_t>(i) * k + r]) *
               static_cast<std::int32_t>(w[static_cast<std::size_t>(r) * n + c]);
      }
      out[static_cast<std::size_t>(i) * n + c] =
          scale * static_cast<float>(acc);
    }
  }
  return out;
}

std::vector<float> float_gemm(const std::vector<float>& a,
                              const std::vector<float>& w, int m, int k,
                              int n) {
  CIMTPU_CHECK_MSG(a.size() == static_cast<std::size_t>(m) * k,
                   "A size mismatch");
  CIMTPU_CHECK_MSG(w.size() == static_cast<std::size_t>(k) * n,
                   "W size mismatch");
  std::vector<float> out(static_cast<std::size_t>(m) * n, 0.0f);
  for (int i = 0; i < m; ++i) {
    for (int c = 0; c < n; ++c) {
      double acc = 0;
      for (int r = 0; r < k; ++r) {
        acc += static_cast<double>(a[static_cast<std::size_t>(i) * k + r]) *
               w[static_cast<std::size_t>(r) * n + c];
      }
      out[static_cast<std::size_t>(i) * n + c] = static_cast<float>(acc);
    }
  }
  return out;
}

float quantized_gemm_error_bound(const QuantParams& a_params,
                                 const QuantParams& w_params, int k) {
  const float eps_a = a_params.scale * 0.5f;
  const float eps_w = w_params.scale * 0.5f;
  const float max_a = a_params.scale * 127.0f;
  const float max_w = w_params.scale * 127.0f;
  return static_cast<float>(k) *
         (eps_a * max_w + eps_w * max_a + eps_a * eps_w);
}

}  // namespace cimtpu::models
