#pragma once
// Named model configurations used by the paper (Table III and Fig. 2)
// plus extras for scaling studies.

#include <string>
#include <vector>

#include "models/dit.h"
#include "models/transformer.h"

namespace cimtpu::models {

/// GPT3-30B: 48 layers, 56 heads, d_model 7168 (paper Table III).
TransformerConfig gpt3_30b();

/// GPT-3 175B (Brown et al., 2020): 96 layers, 96 heads, d_model 12288.
TransformerConfig gpt3_175b();

/// Llama2-7B (Touvron et al., 2023): 32 layers, 32 heads, d_model 4096,
/// SwiGLU FFN with hidden 11008, vocab 32000.  The serving simulator's
/// default: the only zoo LLM whose INT8 weights fit one TPUv4i's 8 GB HBM
/// with room left for a KV cache (at INT4, llama2-13b fits too).
TransformerConfig llama2_7b();

/// Llama2-13B (Touvron et al., 2023): 40 layers, 40 heads, d_model 5120,
/// SwiGLU FFN with hidden 13824, vocab 32000.  Used in the paper's Fig. 2
/// runtime-breakdown analysis.
TransformerConfig llama2_13b();

/// DiT-XL/2: 28 blocks, 16 heads, d_model 1152 (paper Table III).
TransformerConfig dit_xl_2();

/// Standard DiT-XL/2 geometry at 512x512 (1024 tokens).
DitGeometry dit_geometry_512();

/// Looks a config up by name ("gpt3-30b", "gpt3-175b", "llama2-7b",
/// "llama2-13b", "dit-xl/2"); throws ConfigError for unknown names.
TransformerConfig model_by_name(const std::string& name);

/// All registered model names.
std::vector<std::string> model_names();

}  // namespace cimtpu::models
