#include "models/workload_suite.h"

#include "common/status.h"

namespace cimtpu::models {

std::string workload_kind_name(WorkloadKind kind) {
  switch (kind) {
    case WorkloadKind::kLlmPrefillLayer:
      return "llm-prefill-layer";
    case WorkloadKind::kLlmDecodeLayer:
      return "llm-decode-layer";
    case WorkloadKind::kLlmInference:
      return "llm-inference";
    case WorkloadKind::kDitBlock:
      return "dit-block";
    case WorkloadKind::kDitForward:
      return "dit-forward";
  }
  return "?";
}

std::vector<WorkloadCase> paper_workloads() {
  std::vector<WorkloadCase> cases;

  {
    WorkloadCase c;
    c.id = "fig6-llm-prefill";
    c.description = "Fig. 6 left: GPT3-30B prefill layer, batch 8, L=1024";
    c.kind = WorkloadKind::kLlmPrefillLayer;
    c.model = gpt3_30b();
    c.batch = 8;
    c.input_len = 1024;
    cases.push_back(c);
  }
  {
    WorkloadCase c;
    c.id = "fig6-llm-decode";
    c.description = "Fig. 6 middle: GPT3-30B decode layer, 256th token";
    c.kind = WorkloadKind::kLlmDecodeLayer;
    c.model = gpt3_30b();
    c.batch = 8;
    c.kv_len = 1024 + 256;
    cases.push_back(c);
  }
  {
    WorkloadCase c;
    c.id = "fig6-dit-block";
    c.description = "Fig. 6 right: DiT-XL/2 block, 512x512, batch 8";
    c.kind = WorkloadKind::kDitBlock;
    c.model = dit_xl_2();
    c.geometry = dit_geometry_512();
    c.batch = 8;
    cases.push_back(c);
  }
  {
    WorkloadCase c;
    c.id = "fig7-llm";
    c.description = "Fig. 7 LLM panel: GPT3-30B, 1024 in / 512 out, batch 8";
    c.kind = WorkloadKind::kLlmInference;
    c.model = gpt3_30b();
    c.batch = 8;
    c.input_len = 1024;
    c.output_len = 512;
    cases.push_back(c);
  }
  {
    WorkloadCase c;
    c.id = "fig7-dit";
    c.description = "Fig. 7 DiT panel: DiT-XL/2 forward pass, batch 8";
    c.kind = WorkloadKind::kDitForward;
    c.model = dit_xl_2();
    c.geometry = dit_geometry_512();
    c.batch = 8;
    cases.push_back(c);
  }
  {
    WorkloadCase c;
    c.id = "fig2-llama";
    c.description = "Fig. 2(d): Llama2-13B breakdown (Alpaca-style shapes)";
    c.kind = WorkloadKind::kLlmInference;
    c.model = llama2_13b();
    c.batch = 1;
    c.input_len = 128;
    c.output_len = 256;
    cases.push_back(c);
  }
  {
    WorkloadCase c;
    c.id = "fig2-dit";
    c.description = "Fig. 2(d): DiT-XL/2 breakdown, batch 1";
    c.kind = WorkloadKind::kDitForward;
    c.model = dit_xl_2();
    c.geometry = dit_geometry_512();
    c.batch = 1;
    cases.push_back(c);
  }
  return cases;
}

WorkloadCase workload_by_id(const std::string& id) {
  for (const WorkloadCase& c : paper_workloads()) {
    if (c.id == id) return c;
  }
  throw ConfigError("unknown workload id: " + id);
}

std::vector<std::string> workload_ids() {
  std::vector<std::string> ids;
  for (const WorkloadCase& c : paper_workloads()) ids.push_back(c.id);
  return ids;
}

}  // namespace cimtpu::models
