#include "models/dit.h"

#include "common/status.h"

namespace cimtpu::models {

void DitGeometry::validate() const {
  CIMTPU_CONFIG_CHECK(image_size > 0 && vae_factor > 0 && patch_size > 0,
                      "DiT geometry must be positive");
  CIMTPU_CONFIG_CHECK(image_size % vae_factor == 0,
                      "image_size must divide by vae_factor");
  CIMTPU_CONFIG_CHECK(latent_size() % patch_size == 0,
                      "latent must divide by patch_size");
}

ir::Graph build_dit_block(const TransformerConfig& config,
                          const DitGeometry& geometry, std::int64_t batch) {
  config.validate();
  geometry.validate();
  CIMTPU_CONFIG_CHECK(batch > 0, "DiT batch must be positive");
  ir::Graph graph(config.name + "-block");
  const std::int64_t tokens = geometry.tokens();
  const std::int64_t rows = batch * tokens;
  const std::int64_t instances = batch * config.num_heads;
  const ir::DType dtype = config.dtype;

  // adaLN conditioning MLP: conditioning vector -> 6 modulation vectors
  // (shift/scale/gate for attention and MLP branches).
  graph.add(ir::make_weight_gemm("adaln_mlp", "Conditioning", batch,
                                 config.d_model, 6 * config.d_model, dtype));

  graph.add(ir::make_layer_norm("ln1", "LayerNorm", rows, config.d_model,
                                dtype));
  // x * (1 + scale) + shift: two ops per element.
  graph.add(ir::make_elementwise("modulate1", "Conditioning",
                                 rows * config.d_model, 2.0, dtype));
  graph.add(ir::make_weight_gemm("qkv_proj", "QKV Gen", rows, config.d_model,
                                 3 * config.d_model, dtype));
  // Attention K/V are fresh activations; they live in CMEM.
  graph.add(ir::make_attention_gemm("attn_qk", "Attention", instances, tokens,
                                    config.d_head(), tokens, dtype,
                                    ir::Residency::kCmem));
  graph.add(ir::make_softmax("attn_softmax", "Attention", instances * tokens,
                             tokens, dtype));
  graph.add(ir::make_attention_gemm("attn_sv", "Attention", instances, tokens,
                                    tokens, config.d_head(), dtype,
                                    ir::Residency::kCmem));
  graph.add(ir::make_weight_gemm("out_proj", "Proj.", rows, config.d_model,
                                 config.d_model, dtype));
  // gate * branch + residual.
  graph.add(ir::make_elementwise("gate1", "Conditioning", rows * config.d_model,
                                 2.0, dtype));

  graph.add(ir::make_layer_norm("ln2", "LayerNorm", rows, config.d_model,
                                dtype));
  graph.add(ir::make_elementwise("modulate2", "Conditioning",
                                 rows * config.d_model, 2.0, dtype));
  graph.add(ir::make_weight_gemm("ffn1", "FFN1", rows, config.d_model,
                                 config.d_ff, dtype));
  graph.add(ir::make_gelu("gelu", "GeLU", rows * config.d_ff, dtype));
  graph.add(ir::make_weight_gemm("ffn2", "FFN2", rows, config.d_ff,
                                 config.d_model, dtype));
  graph.add(ir::make_elementwise("gate2", "Conditioning", rows * config.d_model,
                                 2.0, dtype));
  return graph;
}

ir::Graph build_dit_preprocess(const TransformerConfig& config,
                               const DitGeometry& geometry,
                               std::int64_t batch) {
  config.validate();
  geometry.validate();
  ir::Graph graph(config.name + "-preprocess");
  const std::int64_t tokens = geometry.tokens();
  const std::int64_t patch_dim = geometry.patch_size * geometry.patch_size *
                                 geometry.latent_channels;
  const ir::DType dtype = config.dtype;

  // Patchify: rearrange the latent into token rows.
  graph.add(ir::make_data_movement("patchify", "Pre-Process",
                                   batch * tokens * patch_dim, dtype));
  // Linear patch embedding.
  graph.add(ir::make_weight_gemm("patch_embed", "Pre-Process", batch * tokens,
                                 patch_dim, config.d_model, dtype));
  // Positional embedding add.
  graph.add(ir::make_elementwise("pos_embed", "Pre-Process",
                                 batch * tokens * config.d_model, 1.0, dtype));
  // Timestep embedding MLP (sinusoidal -> 2-layer MLP) + label embedding.
  graph.add(ir::make_weight_gemm("t_embed_fc1", "Pre-Process", batch, 256,
                                 config.d_model, dtype));
  graph.add(ir::make_weight_gemm("t_embed_fc2", "Pre-Process", batch,
                                 config.d_model, config.d_model, dtype));
  graph.add(ir::make_embedding_lookup("label_embed", "Pre-Process", batch,
                                      config.d_model, dtype));
  return graph;
}

ir::Graph build_dit_postprocess(const TransformerConfig& config,
                                const DitGeometry& geometry,
                                std::int64_t batch) {
  config.validate();
  geometry.validate();
  ir::Graph graph(config.name + "-postprocess");
  const std::int64_t tokens = geometry.tokens();
  // Output projects to patch_size^2 * 2 * channels (noise + variance).
  const std::int64_t out_dim = geometry.patch_size * geometry.patch_size * 2 *
                               geometry.latent_channels;
  const ir::DType dtype = config.dtype;

  graph.add(ir::make_layer_norm("final_ln", "Post-Process", batch * tokens,
                                config.d_model, dtype));
  graph.add(ir::make_weight_gemm("final_linear", "Post-Process",
                                 batch * tokens, config.d_model, out_dim,
                                 dtype));
  graph.add(ir::make_data_movement("unpatchify", "Post-Process",
                                   batch * tokens * out_dim, dtype));
  return graph;
}

}  // namespace cimtpu::models
