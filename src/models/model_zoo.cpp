#include "models/model_zoo.h"

#include "common/status.h"

namespace cimtpu::models {

TransformerConfig gpt3_30b() {
  TransformerConfig config;
  config.name = "gpt3-30b";
  config.num_layers = 48;
  config.num_heads = 56;
  config.d_model = 7168;
  config.d_ff = 4 * 7168;
  config.vocab_size = 50257;
  config.ffn = FfnKind::kGelu;
  return config;
}

TransformerConfig gpt3_175b() {
  TransformerConfig config;
  config.name = "gpt3-175b";
  config.num_layers = 96;
  config.num_heads = 96;
  config.d_model = 12288;
  config.d_ff = 4 * 12288;
  config.vocab_size = 50257;
  config.ffn = FfnKind::kGelu;
  return config;
}

TransformerConfig llama2_7b() {
  TransformerConfig config;
  config.name = "llama2-7b";
  config.num_layers = 32;
  config.num_heads = 32;
  config.d_model = 4096;
  config.d_ff = 11008;
  config.vocab_size = 32000;
  config.ffn = FfnKind::kSwiGlu;
  return config;
}

TransformerConfig llama2_13b() {
  TransformerConfig config;
  config.name = "llama2-13b";
  config.num_layers = 40;
  config.num_heads = 40;
  config.d_model = 5120;
  config.d_ff = 13824;
  config.vocab_size = 32000;
  config.ffn = FfnKind::kSwiGlu;
  return config;
}

TransformerConfig dit_xl_2() {
  TransformerConfig config;
  config.name = "dit-xl/2";
  config.num_layers = 28;
  config.num_heads = 16;
  config.d_model = 1152;
  config.d_ff = 4 * 1152;
  config.vocab_size = 0;
  config.ffn = FfnKind::kGelu;
  return config;
}

DitGeometry dit_geometry_512() {
  DitGeometry geometry;
  geometry.image_size = 512;
  geometry.vae_factor = 8;
  geometry.patch_size = 2;
  geometry.latent_channels = 4;
  return geometry;
}

TransformerConfig model_by_name(const std::string& name) {
  if (name == "gpt3-30b") return gpt3_30b();
  if (name == "gpt3-175b") return gpt3_175b();
  if (name == "llama2-7b") return llama2_7b();
  if (name == "llama2-13b") return llama2_13b();
  if (name == "dit-xl/2") return dit_xl_2();
  throw ConfigError("unknown model: " + name);
}

std::vector<std::string> model_names() {
  return {"gpt3-30b", "gpt3-175b", "llama2-7b", "llama2-13b", "dit-xl/2"};
}

}  // namespace cimtpu::models
