#pragma once
// LLM inference workload builders.
//
// LLM inference has two stages with very different characteristics
// (paper Sec. II-A):
//   * Prefilling: the whole prompt is processed at once — large
//     compute-bound GEMMs, KV cache written.
//   * Decoding: one token per step — GEMV-shaped work, memory-bound, KV
//     cache read and appended.
//
// The builders emit one ir::Graph per Transformer layer; the simulator
// multiplies by layer count (all layers are identical) or walks decode
// steps with a growing KV length.

#include <cstdint>

#include "ir/graph.h"
#include "models/transformer.h"

namespace cimtpu::models {

/// Residency chosen for the K/V operands of attention GEMMs given the
/// available CMEM.  The KV cache lives in CMEM when one operand (K or V)
/// fits alongside `reserved_bytes` of working tiles; otherwise it streams
/// from HBM (GPT3-30B at batch 8 exceeds CMEM — see DESIGN.md).
ir::Residency choose_kv_residency(Bytes kv_operand_bytes, Bytes cmem_capacity,
                                  Bytes reserved_bytes);

/// One Transformer layer in the Prefilling stage: batch*seq_len token rows.
ir::Graph build_prefill_layer(const TransformerConfig& config,
                              std::int64_t batch, std::int64_t seq_len,
                              ir::Residency kv_residency);

/// One Transformer layer in the Decoding stage at KV length `kv_len`
/// (the step that emits token kv_len - input_len + 1).
ir::Graph build_decode_layer(const TransformerConfig& config,
                             std::int64_t batch, std::int64_t kv_len,
                             ir::Residency kv_residency);

/// Token embedding for `tokens` total tokens (gather from the vocab table).
ir::Graph build_token_embedding(const TransformerConfig& config,
                                std::int64_t tokens);

/// Prediction head: project `rows` token positions onto the vocabulary.
ir::Graph build_prediction_head(const TransformerConfig& config,
                                std::int64_t rows);

}  // namespace cimtpu::models
