#pragma once
// Diffusion Transformer (DiT) workload builders (Peebles & Xie, 2023).
//
// A DiT block is a Transformer layer augmented with adaLN conditioning:
// an MLP on the (timestep, label) conditioning vector produces per-block
// shift/scale/gate parameters applied around attention and the MLP
// ("Shift & Scale" / "Scale" boxes in the paper's Fig. 2(c)).

#include <cstdint>

#include "ir/graph.h"
#include "models/transformer.h"

namespace cimtpu::models {

/// Geometry of a DiT invocation.
struct DitGeometry {
  std::int64_t image_size = 512;   ///< pixels (square)
  std::int64_t vae_factor = 8;     ///< latent downsampling (SD-style VAE)
  std::int64_t patch_size = 2;     ///< DiT-XL/2 -> "/2"
  std::int64_t latent_channels = 4;

  std::int64_t latent_size() const { return image_size / vae_factor; }
  /// Sequence length: (latent/patch)^2.  512x512 -> 64x64 latent -> 1024.
  std::int64_t tokens() const {
    const std::int64_t side = latent_size() / patch_size;
    return side * side;
  }
  void validate() const;
};

/// One DiT block (Transformer layer + conditioning + modulation).
ir::Graph build_dit_block(const TransformerConfig& config,
                          const DitGeometry& geometry, std::int64_t batch);

/// Pre-processing: patchify + linear embedding + timestep/label MLPs.
ir::Graph build_dit_preprocess(const TransformerConfig& config,
                               const DitGeometry& geometry,
                               std::int64_t batch);

/// Post-processing: final LayerNorm + linear + unpatchify reshape.
ir::Graph build_dit_postprocess(const TransformerConfig& config,
                                const DitGeometry& geometry,
                                std::int64_t batch);

}  // namespace cimtpu::models
