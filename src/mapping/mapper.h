#pragma once
// Mapping engine: decides how a matmul operator is partitioned across the
// TensorCore's MXUs and how its tensors stream through the CMEM/VMEM
// hierarchy (paper Sec. III-C, Fig. 5).
//
// The mapspace is pruned with the heuristics of LLMCompass/Timeloop-style
// mappers: only whole-dimension splits across units are considered
// (instance-, n-, and m-splits), each costed exactly with the unit's
// analytic model, and the latency-optimal candidate is kept.

#include <string>
#include <vector>

#include "ir/op.h"
#include "mem/memory.h"
#include "systolic/matrix_unit.h"

namespace cimtpu::mapping {

/// One evaluated mapping candidate for a matmul op.
struct GemmMapping {
  std::string strategy;              ///< "instance-split" / "n-split" / "m-split"
  int units_used = 1;                ///< MXUs participating
  systolic::GemmWorkload per_unit;   ///< workload of the busiest unit
  systolic::MxuCost unit_cost;       ///< cost of the busiest unit
  Cycles busy_cycles = 0;            ///< makespan across units
  Joules busy_energy = 0;            ///< summed over all units
  Bytes stationary_bytes_loaded = 0; ///< summed over all units
  double useful_macs = 0;
};

/// Streaming plan for an op's tensors through the memory hierarchy.
struct StreamingPlan {
  Bytes hbm_bytes = 0;    ///< bytes crossing the HBM interface
  Bytes cmem_bytes = 0;   ///< bytes crossing the OCI/CMEM port
  Bytes vmem_bytes = 0;   ///< bytes crossing VMEM
  double tiles = 1;       ///< double-buffer granularity (exposure = 1/tiles)
  bool double_buffered = true;

  /// Slowest-channel streaming time.
  Seconds memory_time(const mem::MemorySystemSpec& spec) const;
  /// Total access energy over all channels.
  Joules memory_energy(const mem::MemorySystem& memory) const;
};

class Mapper {
 public:
  /// `unit` is the prototype MXU (all identical); `unit_count` how many the
  /// TensorCore has.
  Mapper(const systolic::MatrixUnit& unit, int unit_count);

  /// Enumerates the pruned mapspace for `op` and returns the
  /// latency-optimal mapping.
  GemmMapping best_mapping(const ir::Op& op) const;

  /// All evaluated candidates (for tests and mapspace inspection).
  std::vector<GemmMapping> enumerate(const ir::Op& op) const;

  /// Builds the memory streaming plan for `op` on the given hierarchy.
  /// Tensors declared VMEM-resident that exceed half of VMEM are spilled
  /// to CMEM (the engine tiles them); the KV residency encoded in the op
  /// decides whether attention operands touch HBM.
  static StreamingPlan plan_streaming(const ir::Op& op,
                                      const mem::MemorySystemSpec& spec);

 private:
  GemmMapping evaluate_candidate(const ir::Op& op, const std::string& strategy,
                                 const systolic::GemmWorkload& per_unit,
                                 int units_used) const;

  const systolic::MatrixUnit* unit_;
  int unit_count_;
};

}  // namespace cimtpu::mapping
