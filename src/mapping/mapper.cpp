#include "mapping/mapper.h"

#include <algorithm>

#include "common/math_util.h"
#include "common/status.h"

namespace cimtpu::mapping {

Seconds StreamingPlan::memory_time(const mem::MemorySystemSpec& spec) const {
  // Channels run concurrently (memory coalescing + double buffering); the
  // slowest channel bounds streaming throughput.
  const Seconds hbm = hbm_bytes / spec.hbm.bandwidth;
  const Seconds cmem = cmem_bytes / spec.cmem.bandwidth;
  const Seconds vmem = vmem_bytes / spec.vmem.bandwidth;
  return std::max({hbm, cmem, vmem});
}

Joules StreamingPlan::memory_energy(const mem::MemorySystem& memory) const {
  return memory.hbm_energy(hbm_bytes) + memory.cmem_energy(cmem_bytes) +
         memory.vmem_energy(vmem_bytes);
}

Mapper::Mapper(const systolic::MatrixUnit& unit, int unit_count)
    : unit_(&unit), unit_count_(unit_count) {
  CIMTPU_CONFIG_CHECK(unit_count > 0, "mapper needs >= 1 unit");
}

GemmMapping Mapper::evaluate_candidate(const ir::Op& op,
                                       const std::string& strategy,
                                       const systolic::GemmWorkload& per_unit,
                                       int units_used) const {
  GemmMapping mapping;
  mapping.strategy = strategy;
  mapping.units_used = units_used;
  mapping.per_unit = per_unit;
  mapping.unit_cost = unit_->evaluate(per_unit);
  mapping.busy_cycles = mapping.unit_cost.busy_cycles;
  mapping.busy_energy = mapping.unit_cost.busy_energy * units_used;
  mapping.stationary_bytes_loaded =
      mapping.unit_cost.stationary_bytes_loaded * units_used;
  // Useful MACs are a property of the op, not of the (padded) partitioning.
  mapping.useful_macs = op.macs();
  return mapping;
}

std::vector<GemmMapping> Mapper::enumerate(const ir::Op& op) const {
  CIMTPU_CHECK_MSG(op.is_matmul(), "mapping non-matmul op '" << op.name << "'");
  std::vector<GemmMapping> candidates;
  candidates.reserve(4);  // at most one per split strategy below
  const int u = unit_count_;

  systolic::GemmWorkload base;
  base.m = op.m;
  base.k = op.k;
  base.n = op.n;
  base.instances = op.instances;
  base.dtype = op.dtype;

  // Instance split: independent GEMMs round-robin across units.
  if (op.instances > 1) {
    systolic::GemmWorkload w = base;
    const int units = static_cast<int>(
        std::min<std::int64_t>(u, op.instances));
    w.instances = ceil_div<std::int64_t>(op.instances, units);
    candidates.push_back(evaluate_candidate(op, "instance-split", w, units));
  }
  // N split: each unit owns a column slab of every instance.
  if (op.n > 1) {
    systolic::GemmWorkload w = base;
    const int units = static_cast<int>(std::min<std::int64_t>(u, op.n));
    w.n = ceil_div<std::int64_t>(op.n, units);
    candidates.push_back(evaluate_candidate(op, "n-split", w, units));
  }
  // M split: each unit owns a row slab (weights replicated).
  if (op.m > 1) {
    systolic::GemmWorkload w = base;
    const int units = static_cast<int>(std::min<std::int64_t>(u, op.m));
    w.m = ceil_div<std::int64_t>(op.m, units);
    candidates.push_back(evaluate_candidate(op, "m-split", w, units));
  }
  // Single unit (fallback; also the best choice for tiny ops).
  candidates.push_back(evaluate_candidate(op, "single-unit", base, 1));
  return candidates;
}

GemmMapping Mapper::best_mapping(const ir::Op& op) const {
  const std::vector<GemmMapping> candidates = enumerate(op);
  CIMTPU_CHECK(!candidates.empty());
  const auto best = std::min_element(
      candidates.begin(), candidates.end(),
      [](const GemmMapping& a, const GemmMapping& b) {
        return a.busy_cycles < b.busy_cycles;
      });
  return *best;
}

StreamingPlan Mapper::plan_streaming(const ir::Op& op,
                                     const mem::MemorySystemSpec& spec) {
  StreamingPlan plan;
  const Bytes vmem_working_set = spec.vmem.capacity / 2;  // double buffer

  // Effective residency: tensors declared VMEM-resident but larger than the
  // double-buffered working set spill to CMEM.
  auto effective = [&](ir::Residency declared, Bytes bytes) {
    if (declared == ir::Residency::kVmem && bytes > vmem_working_set) {
      return ir::Residency::kCmem;
    }
    return declared;
  };
  // Accumulate per-channel traffic for one tensor stream.
  auto add_stream = [&](ir::Residency residency, Bytes bytes) {
    switch (residency) {
      case ir::Residency::kHbm:
        plan.hbm_bytes += bytes;
        plan.cmem_bytes += bytes;
        plan.vmem_bytes += bytes;
        break;
      case ir::Residency::kCmem:
        plan.cmem_bytes += bytes;
        plan.vmem_bytes += bytes;
        break;
      case ir::Residency::kVmem:
        plan.vmem_bytes += bytes;
        break;
    }
  };

  if (op.is_matmul()) {
    add_stream(effective(op.stationary_residency, op.stationary_bytes()),
               op.stationary_bytes());
    add_stream(effective(op.moving_residency, op.moving_bytes()),
               op.moving_bytes());
    add_stream(effective(op.output_residency, op.output_bytes()),
               op.output_bytes());
  } else {
    // Vector ops stream input and output through VMEM (from CMEM when
    // large); embedding tables gather from HBM.
    const ir::Residency in_res =
        op.kind == ir::OpKind::kEmbeddingLookup
            ? ir::Residency::kHbm
            : effective(ir::Residency::kVmem, op.moving_bytes());
    add_stream(in_res, op.moving_bytes());
    add_stream(effective(ir::Residency::kVmem, op.output_bytes()),
               op.output_bytes());
  }

  const Bytes dominant = std::max(plan.hbm_bytes, plan.cmem_bytes);
  plan.tiles = std::max(1.0, dominant / (vmem_working_set / 2));
  plan.double_buffered = true;
  return plan;
}

}  // namespace cimtpu::mapping
