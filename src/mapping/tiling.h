#pragma once
// Two-level GEMM tiling search (paper Fig. 5): a [L, D] x [D, D] operator
// is partitioned into [LtileM, DtileK] x [DtileK, DtileN] sub-tiles that
// fit the double-buffered VMEM working set, and the mapping engine picks
// the tiling that minimizes data movement.
//
// The classic tiled-GEMM traffic model: with tiles (Tm, Tk, Tn),
//   * the moving operand A [m, k] is re-read once per N-tile column,
//   * the stationary operand W [k, n] is re-read once per M-tile row,
//   * the output C [m, n] is revisited once per K-tile (partial sums),
// and the working set Tm*Tk + Tk*Tn + Tm*Tn must fit half of VMEM
// (the other half holds the incoming double buffer).

#include <cstdint>
#include <vector>

#include "common/units.h"
#include "ir/op.h"

namespace cimtpu::mapping {

struct TileChoice {
  std::int64_t tm = 0;
  std::int64_t tk = 0;
  std::int64_t tn = 0;

  Bytes working_set = 0;   ///< bytes resident in VMEM at once
  Bytes vmem_traffic = 0;  ///< total bytes through VMEM incl. re-reads
  double reuse_factor = 0; ///< compulsory bytes / vmem_traffic (<= 1)

  std::int64_t m_tiles = 0;
  std::int64_t k_tiles = 0;
  std::int64_t n_tiles = 0;
  std::int64_t total_tiles() const { return m_tiles * k_tiles * n_tiles; }
};

/// Search knobs.
struct TilingOptions {
  Bytes vmem_capacity = 16 * MiB;
  double buffer_fraction = 0.5;  ///< double buffering reserves the rest
  std::int64_t quantum_m = 8;    ///< tile-size granularity per dimension
  std::int64_t quantum_k = 128;  ///< MXU contraction extent
  std::int64_t quantum_n = 128;  ///< MXU output extent
};

/// Compulsory (minimum possible) VMEM traffic for a GEMM: every operand
/// byte moves exactly once.
Bytes compulsory_traffic(const ir::Op& matmul);

/// Evaluates one candidate tiling (no search).
TileChoice evaluate_tiling(const ir::Op& matmul, std::int64_t tm,
                           std::int64_t tk, std::int64_t tn,
                           const TilingOptions& options);

/// Searches the quantized tile space and returns the traffic-minimal legal
/// tiling.  Throws ConfigError when even the smallest tile cannot fit.
TileChoice best_tiling(const ir::Op& matmul, const TilingOptions& options);

/// All candidates evaluated by the search, for inspection/tests.
std::vector<TileChoice> enumerate_tilings(const ir::Op& matmul,
                                          const TilingOptions& options);

}  // namespace cimtpu::mapping
