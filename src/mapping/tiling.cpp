#include "mapping/tiling.h"

#include <algorithm>

#include "common/math_util.h"
#include "common/status.h"

namespace cimtpu::mapping {
namespace {

/// Candidate tile extents for one dimension: quantized geometric sweep up
/// to the full extent (keeps the search O(dozens^3) instead of O(dim^3)).
std::vector<std::int64_t> candidate_extents(std::int64_t dim,
                                            std::int64_t quantum) {
  std::vector<std::int64_t> extents;
  for (std::int64_t extent = quantum; extent < dim; extent *= 2) {
    extents.push_back(extent);
  }
  extents.push_back(round_up(dim, quantum));
  // Also try the exact dimension when not quantum-aligned (no padding).
  if (dim % quantum != 0) extents.push_back(dim);
  std::sort(extents.begin(), extents.end());
  extents.erase(std::unique(extents.begin(), extents.end()), extents.end());
  return extents;
}

}  // namespace

Bytes compulsory_traffic(const ir::Op& matmul) {
  CIMTPU_CHECK_MSG(matmul.is_matmul(), "tiling a non-matmul op");
  return matmul.moving_bytes() + matmul.stationary_bytes() +
         matmul.output_bytes();
}

TileChoice evaluate_tiling(const ir::Op& matmul, std::int64_t tm,
                           std::int64_t tk, std::int64_t tn,
                           const TilingOptions& /*options*/) {
  CIMTPU_CHECK_MSG(matmul.is_matmul(), "tiling a non-matmul op");
  CIMTPU_CHECK_MSG(tm > 0 && tk > 0 && tn > 0, "tile extents must be positive");
  const double elem = ir::dtype_bytes(matmul.dtype);
  const double m = static_cast<double>(matmul.m);
  const double k = static_cast<double>(matmul.k);
  const double n = static_cast<double>(matmul.n);
  const double instances = static_cast<double>(matmul.instances);

  TileChoice choice;
  choice.tm = std::min<std::int64_t>(tm, matmul.m);
  choice.tk = std::min<std::int64_t>(tk, matmul.k);
  choice.tn = std::min<std::int64_t>(tn, matmul.n);
  choice.m_tiles = ceil_div(matmul.m, choice.tm);
  choice.k_tiles = ceil_div(matmul.k, choice.tk);
  choice.n_tiles = ceil_div(matmul.n, choice.tn);

  choice.working_set =
      (static_cast<double>(choice.tm) * choice.tk +
       static_cast<double>(choice.tk) * choice.tn +
       static_cast<double>(choice.tm) * choice.tn) *
      elem;

  const double a_traffic =
      m * k * static_cast<double>(choice.n_tiles) * elem;
  const double w_traffic =
      k * n * static_cast<double>(choice.m_tiles) * elem;
  // Output partial sums revisit VMEM once per extra K-tile (read+write).
  const double c_traffic =
      m * n * (1.0 + 2.0 * (static_cast<double>(choice.k_tiles) - 1.0)) *
      elem;
  choice.vmem_traffic = instances * (a_traffic + w_traffic + c_traffic);
  choice.reuse_factor = compulsory_traffic(matmul) / choice.vmem_traffic;
  return choice;
}

std::vector<TileChoice> enumerate_tilings(const ir::Op& matmul,
                                          const TilingOptions& options) {
  const Bytes budget = options.vmem_capacity * options.buffer_fraction;
  std::vector<TileChoice> legal;
  for (std::int64_t tm : candidate_extents(matmul.m, options.quantum_m)) {
    for (std::int64_t tk : candidate_extents(matmul.k, options.quantum_k)) {
      for (std::int64_t tn : candidate_extents(matmul.n, options.quantum_n)) {
        const TileChoice choice =
            evaluate_tiling(matmul, tm, tk, tn, options);
        if (choice.working_set <= budget) legal.push_back(choice);
      }
    }
  }
  return legal;
}

TileChoice best_tiling(const ir::Op& matmul, const TilingOptions& options) {
  const std::vector<TileChoice> legal = enumerate_tilings(matmul, options);
  CIMTPU_CONFIG_CHECK(!legal.empty(),
                      "no legal tiling for op '"
                          << matmul.name << "' within "
                          << options.vmem_capacity * options.buffer_fraction
                          << " bytes of VMEM");
  const auto best = std::min_element(
      legal.begin(), legal.end(), [](const TileChoice& a, const TileChoice& b) {
        if (a.vmem_traffic != b.vmem_traffic) {
          return a.vmem_traffic < b.vmem_traffic;
        }
        // Tie-break: fewer tiles (less control overhead).
        return a.total_tiles() < b.total_tiles();
      });
  return *best;
}

}  // namespace cimtpu::mapping
