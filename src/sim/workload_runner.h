#pragma once
// Stage-level workload drivers: compose the model builders with the
// simulator to produce the quantities the paper's figures report.

#include <cstdint>

#include "models/dit.h"
#include "models/llm.h"
#include "models/model_zoo.h"
#include "sim/simulator.h"

namespace cimtpu::sim {

/// An LLM serving scenario (paper Sec. V-A uses 1024 in / 512 out, batch 8).
struct LlmScenario {
  models::TransformerConfig model;
  std::int64_t batch = 8;
  std::int64_t input_len = 1024;
  std::int64_t output_len = 512;
};

/// A DiT image-generation scenario.
struct DitScenario {
  models::TransformerConfig model;
  models::DitGeometry geometry;
  std::int64_t batch = 8;
  int sampling_steps = 1;  ///< forward passes (figures evaluate one pass)
};

/// Results of an LLM run, split by stage as in Fig. 6 / Fig. 7.
struct LlmRunResult {
  GraphResult prefill;      ///< all layers, whole prompt
  GraphResult decode;       ///< all layers, all output tokens
  GraphResult total;        ///< prefill + decode
  Seconds prefill_latency_per_layer = 0;
  Seconds decode_latency_per_token = 0;  ///< averaged over output tokens (0 when output_len == 0)
};

/// Chooses the attention K/V residency for a given KV footprint and chip.
ir::Residency kv_residency_for(const arch::TpuChip& chip,
                               const models::TransformerConfig& model,
                               std::int64_t batch, std::int64_t kv_len);

/// Runs one prefill layer (paper Fig. 6 left panel).
GraphResult run_prefill_layer(const Simulator& simulator,
                              const models::TransformerConfig& model,
                              std::int64_t batch, std::int64_t seq_len);

/// Runs one decode layer at the given KV length (Fig. 6 middle panel uses
/// kv_len = input 1024 + 256th token).
GraphResult run_decode_layer(const Simulator& simulator,
                             const models::TransformerConfig& model,
                             std::int64_t batch, std::int64_t kv_len);

/// Runs one DiT block (Fig. 6 right panel).
GraphResult run_dit_block(const Simulator& simulator,
                          const models::TransformerConfig& model,
                          const models::DitGeometry& geometry,
                          std::int64_t batch);

/// Full LLM inference: prefill of the prompt plus `output_len` decode steps
/// with growing KV cache, across all layers (Fig. 7 LLM panel).
LlmRunResult run_llm_inference(const Simulator& simulator,
                               const LlmScenario& scenario);

/// Full DiT forward pass: pre-process + all blocks + post-process
/// (Fig. 7 DiT panel).
GraphResult run_dit_inference(const Simulator& simulator,
                              const DitScenario& scenario);

/// Full-model LLM latency breakdown (embedding / transformer layers / head)
/// used to reproduce Fig. 2(d).
struct BreakdownResult {
  GraphResult pre;     ///< token embedding / DiT pre-process
  GraphResult core;    ///< transformer layers / DiT blocks
  GraphResult post;    ///< prediction head / DiT post-process
  Seconds total() const { return pre.latency + core.latency + post.latency; }
};

BreakdownResult run_llm_breakdown(const Simulator& simulator,
                                  const LlmScenario& scenario);
BreakdownResult run_dit_breakdown(const Simulator& simulator,
                                  const DitScenario& scenario);

}  // namespace cimtpu::sim
