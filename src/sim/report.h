#pragma once
// Simulation result structures: per-op, per-graph, and stage-level rollups
// with the group breakdown the paper's Fig. 6 bars report.

#include <map>
#include <string>
#include <vector>

#include "common/units.h"

namespace cimtpu::sim {

/// Result of one operator execution.
struct OpResult {
  std::string name;
  std::string group;
  bool on_mxu = false;
  std::string mapping_strategy;
  int units_used = 0;

  Seconds latency = 0;       ///< overlapped op latency
  Seconds compute_time = 0;  ///< MXU/VPU busy time
  Seconds memory_time = 0;   ///< streaming time (slowest channel)

  double useful_macs = 0;
  double utilization = 0;    ///< busy-time array utilization (matmul only)

  Joules mxu_busy_energy = 0;
  Joules mxu_idle_energy = 0;     ///< idle clocking during this op
  Joules mxu_leakage_energy = 0;  ///< leakage over this op's latency
  Joules vpu_energy = 0;
  Joules memory_energy = 0;

  /// Total MXU energy attributable to this op.
  Joules mxu_energy() const {
    return mxu_busy_energy + mxu_idle_energy + mxu_leakage_energy;
  }
};

/// Latency/energy attributed to one reporting group ("QKV Gen", ...).
struct GroupSummary {
  Seconds latency = 0;
  Joules mxu_energy = 0;
  Joules total_energy = 0;

  GroupSummary& operator+=(const GroupSummary& other) {
    latency += other.latency;
    mxu_energy += other.mxu_energy;
    total_energy += other.total_energy;
    return *this;
  }
};

/// Result of a graph (one layer, one block, one stage...).
struct GraphResult {
  std::string name;
  std::vector<OpResult> ops;  ///< single-instance detail (unscaled)

  Seconds latency = 0;
  Seconds mxu_busy_time = 0;
  Joules mxu_busy_energy = 0;
  Joules mxu_idle_energy = 0;
  Joules mxu_leakage_energy = 0;
  Joules vpu_energy = 0;
  Joules memory_energy = 0;
  double useful_macs = 0;
  std::map<std::string, GroupSummary> groups;

  /// Total MXU energy (the quantity the paper's Fig. 6/7 energy bars show).
  Joules mxu_energy() const {
    return mxu_busy_energy + mxu_idle_energy + mxu_leakage_energy;
  }
  /// Total modeled energy.
  Joules total_energy() const {
    return mxu_energy() + vpu_energy + memory_energy;
  }
  /// Average MXU power over the graph's execution.
  Watts mxu_power() const { return latency > 0 ? mxu_energy() / latency : 0; }

  /// Scales all totals by `factor` (e.g. layer count); per-op detail keeps
  /// single-instance values.
  GraphResult& scale(double factor);

  /// Accumulates another stage's totals (sequential composition).
  GraphResult& operator+=(const GraphResult& other);
};

}  // namespace cimtpu::sim
