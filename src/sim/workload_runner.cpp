#include "sim/workload_runner.h"

#include "common/status.h"

namespace cimtpu::sim {

ir::Residency kv_residency_for(const arch::TpuChip& chip,
                               const models::TransformerConfig& model,
                               std::int64_t batch, std::int64_t kv_len) {
  // One attention operand (K or V): [batch, kv_len, d_model].
  const Bytes operand = static_cast<double>(batch) * kv_len * model.d_model *
                        ir::dtype_bytes(model.dtype);
  // Reserve a slice of CMEM for streaming weight tiles.
  const Bytes reserved = chip.memory().spec().cmem.capacity / 8;
  return models::choose_kv_residency(operand,
                                     chip.memory().spec().cmem.capacity,
                                     reserved);
}

GraphResult run_prefill_layer(const Simulator& simulator,
                              const models::TransformerConfig& model,
                              std::int64_t batch, std::int64_t seq_len) {
  const ir::Residency kv =
      kv_residency_for(simulator.chip(), model, batch, seq_len);
  return simulator.run(models::build_prefill_layer(model, batch, seq_len, kv));
}

GraphResult run_decode_layer(const Simulator& simulator,
                             const models::TransformerConfig& model,
                             std::int64_t batch, std::int64_t kv_len) {
  const ir::Residency kv =
      kv_residency_for(simulator.chip(), model, batch, kv_len);
  return simulator.run(models::build_decode_layer(model, batch, kv_len, kv));
}

GraphResult run_dit_block(const Simulator& simulator,
                          const models::TransformerConfig& model,
                          const models::DitGeometry& geometry,
                          std::int64_t batch) {
  return simulator.run(models::build_dit_block(model, geometry, batch));
}

LlmRunResult run_llm_inference(const Simulator& simulator,
                               const LlmScenario& scenario) {
  CIMTPU_CONFIG_CHECK(scenario.input_len > 0,
                      "LLM scenario needs a positive input length");
  CIMTPU_CONFIG_CHECK(scenario.output_len >= 0,
                      "LLM scenario needs a non-negative output length");
  CIMTPU_CONFIG_CHECK(scenario.batch >= 1, "LLM scenario needs batch >= 1");
  LlmRunResult result;

  GraphResult prefill_layer = run_prefill_layer(
      simulator, scenario.model, scenario.batch, scenario.input_len);
  result.prefill_latency_per_layer = prefill_layer.latency;
  result.prefill = prefill_layer;
  result.prefill.scale(static_cast<double>(scenario.model.num_layers));
  result.prefill.name = scenario.model.name + "-prefill";

  // Decode steps with growing KV length.  Consecutive steps differ by one
  // cache row; evaluating every step is cheap (analytic model), and keeps
  // crossover effects (KV spilling out of CMEM) exact.
  result.decode.name = scenario.model.name + "-decode";
  for (std::int64_t t = 1; t <= scenario.output_len; ++t) {
    const std::int64_t kv_len = scenario.input_len + t;
    GraphResult step = run_decode_layer(simulator, scenario.model,
                                        scenario.batch, kv_len);
    step.scale(static_cast<double>(scenario.model.num_layers));
    result.decode += step;
  }
  // output_len == 0 (prefill-only scoring) must not divide by zero.
  result.decode_latency_per_token =
      scenario.output_len > 0
          ? result.decode.latency / static_cast<double>(scenario.output_len)
          : 0.0;

  result.total = result.prefill;
  result.total += result.decode;
  result.total.name = scenario.model.name + "-total";
  return result;
}

GraphResult run_dit_inference(const Simulator& simulator,
                              const DitScenario& scenario) {
  GraphResult block = run_dit_block(simulator, scenario.model,
                                    scenario.geometry, scenario.batch);
  block.scale(static_cast<double>(scenario.model.num_layers));

  GraphResult pre = simulator.run(models::build_dit_preprocess(
      scenario.model, scenario.geometry, scenario.batch));
  GraphResult post = simulator.run(models::build_dit_postprocess(
      scenario.model, scenario.geometry, scenario.batch));

  GraphResult total = pre;
  total += block;
  total += post;
  total.scale(static_cast<double>(scenario.sampling_steps));
  total.name = scenario.model.name + "-forward";
  return total;
}

BreakdownResult run_llm_breakdown(const Simulator& simulator,
                                  const LlmScenario& scenario) {
  BreakdownResult result;
  result.pre = simulator.run(models::build_token_embedding(
      scenario.model, scenario.batch * scenario.input_len));

  LlmRunResult run = run_llm_inference(simulator, scenario);
  result.core = run.total;

  // The prediction head runs once per generated token on batch rows.
  GraphResult head = simulator.run(
      models::build_prediction_head(scenario.model, scenario.batch));
  head.scale(static_cast<double>(scenario.output_len));
  result.post = head;
  return result;
}

BreakdownResult run_dit_breakdown(const Simulator& simulator,
                                  const DitScenario& scenario) {
  BreakdownResult result;
  result.pre = simulator.run(models::build_dit_preprocess(
      scenario.model, scenario.geometry, scenario.batch));
  GraphResult block = run_dit_block(simulator, scenario.model,
                                    scenario.geometry, scenario.batch);
  block.scale(static_cast<double>(scenario.model.num_layers));
  result.core = block;
  result.post = simulator.run(models::build_dit_postprocess(
      scenario.model, scenario.geometry, scenario.batch));
  if (scenario.sampling_steps > 1) {
    const double steps = scenario.sampling_steps;
    result.pre.scale(steps);
    result.core.scale(steps);
    result.post.scale(steps);
  }
  return result;
}

}  // namespace cimtpu::sim
