#pragma once
// Roofline analysis: classifies every operator by its binding resource
// (MXU compute, HBM, OCI/CMEM, or VMEM bandwidth) and computes attained
// vs attainable throughput.  This is the lens behind the paper's central
// observation — prefill is compute-bound, decode is memory-bound — and the
// ablation benches use it to show *why* each design choice moves (or fails
// to move) each workload.

#include <string>
#include <vector>

#include "sim/simulator.h"

namespace cimtpu::sim {

enum class BoundResource { kCompute, kHbm, kOci, kVmem };

std::string bound_resource_name(BoundResource resource);

struct RooflinePoint {
  std::string op;
  std::string group;
  double flops = 0;                   ///< useful arithmetic work
  double operational_intensity = 0;   ///< flops per HBM byte (inf -> no HBM)
  double attained_flops_per_s = 0;    ///< flops / op latency
  double compute_roof = 0;            ///< chip peak for this op's engine
  double memory_roof = 0;             ///< bandwidth-limited flops/s
  BoundResource bound = BoundResource::kCompute;

  /// Fraction of the binding roof actually attained (<= ~1).
  double roof_utilization() const {
    const double roof = std::min(compute_roof, memory_roof);
    return roof > 0 ? attained_flops_per_s / roof : 0;
  }
};

/// Analyzes one operator on the simulator's chip.
RooflinePoint analyze_op(const Simulator& simulator, const ir::Op& op);

/// Analyzes a whole graph.
std::vector<RooflinePoint> analyze_graph(const Simulator& simulator,
                                         const ir::Graph& graph);

/// Aggregate fraction of graph latency spent under each binding resource.
struct BoundBreakdown {
  Seconds compute_bound = 0;
  Seconds hbm_bound = 0;
  Seconds oci_bound = 0;
  Seconds vmem_bound = 0;
  Seconds total() const {
    return compute_bound + hbm_bound + oci_bound + vmem_bound;
  }
};

BoundBreakdown bound_breakdown(const Simulator& simulator,
                               const ir::Graph& graph);

}  // namespace cimtpu::sim
