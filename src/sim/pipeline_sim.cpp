#include "sim/pipeline_sim.h"

#include <algorithm>
#include <vector>

#include "common/status.h"

namespace cimtpu::sim {

PipelineSimResult simulate_tile_pipeline(Seconds compute_total,
                                         Seconds memory_total, int tiles,
                                         int buffer_depth) {
  CIMTPU_CHECK_MSG(tiles > 0, "pipeline needs >= 1 tile");
  CIMTPU_CHECK_MSG(buffer_depth >= 1, "need >= 1 staging buffer");
  CIMTPU_CHECK_MSG(compute_total >= 0 && memory_total >= 0,
                   "negative pipeline times");

  const Seconds load_time = memory_total / tiles;
  const Seconds compute_time = compute_total / tiles;

  // compute_end[i] for the sliding window needed by the buffer constraint.
  std::vector<Seconds> compute_end(tiles, 0);
  Seconds dma_free = 0;  // when the DMA channel finishes its previous load
  Seconds engine_free = 0;
  Seconds engine_idle = 0;

  for (int i = 0; i < tiles; ++i) {
    // The load of tile i may not start until its staging buffer is free:
    // tile i - buffer_depth must have been consumed.
    Seconds buffer_free = 0;
    if (i >= buffer_depth) buffer_free = compute_end[i - buffer_depth];
    const Seconds load_start = std::max(dma_free, buffer_free);
    const Seconds load_end = load_start + load_time;
    dma_free = load_end;

    const Seconds compute_start = std::max(engine_free, load_end);
    engine_idle += compute_start - engine_free;
    compute_end[i] = compute_start + compute_time;
    engine_free = compute_end[i];
  }

  PipelineSimResult result;
  result.total = engine_free;
  result.compute_busy = compute_total;
  result.memory_busy = memory_total;
  result.compute_idle = engine_idle;
  return result;
}

}  // namespace cimtpu::sim
