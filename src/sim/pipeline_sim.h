#pragma once
// Discrete-event simulation of a double-buffered tile pipeline.
//
// The analytic simulator costs each operator as
//     max(compute, memory) + memory/tiles
// (steady-state overlap plus first-tile exposure).  This module simulates
// the same pipeline tile-by-tile — serialized DMA channel, serialized
// compute engine, bounded staging buffers — and is used by tests to bound
// the analytic formula's error to one tile quantum, and by the scheduler
// ablation bench to explore buffer depths (single vs double buffering,
// i.e. the paper's "double buffering and memory coalescing" scheduling
// options).

#include "common/units.h"

namespace cimtpu::sim {

struct PipelineSimResult {
  Seconds total = 0;         ///< completion time of the last tile
  Seconds compute_busy = 0;  ///< engine busy time (= compute_total)
  Seconds memory_busy = 0;   ///< DMA busy time (= memory_total)
  Seconds compute_idle = 0;  ///< engine stall waiting on tiles
};

/// Simulates `tiles` equal tiles whose aggregate compute / memory times are
/// given.  `buffer_depth` staging buffers bound how far the DMA can run
/// ahead (1 = no overlap, 2 = classic double buffering).
PipelineSimResult simulate_tile_pipeline(Seconds compute_total,
                                         Seconds memory_total, int tiles,
                                         int buffer_depth = 2);

}  // namespace cimtpu::sim
