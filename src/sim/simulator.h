#pragma once
// The operator-level performance/energy simulator.
//
// Methodology (paper Sec. III): operators execute sequentially on the
// TensorCore; within an operator, compute (MXU or VPU) overlaps with
// memory streaming via double buffering, so op latency is
//   max(compute, memory) + first-tile exposure.
// Matmuls are partitioned across the chip's MXUs by the mapping engine;
// idle MXU clocking and leakage are charged for the full op latency so the
// energy bars include the cost of waiting on memory — the effect that
// separates the paper's system-level energy ratios (9.2x-27.3x) from the
// macro-level one (9.43x).

#include "arch/chip.h"
#include "ir/graph.h"
#include "mapping/mapper.h"
#include "sim/report.h"

namespace cimtpu::sim {

class Simulator {
 public:
  explicit Simulator(const arch::TpuChip& chip);

  const arch::TpuChip& chip() const { return *chip_; }

  /// Costs a single operator.
  OpResult run_op(const ir::Op& op) const;

  /// Costs a graph (sequential op execution) and rolls up group summaries.
  GraphResult run(const ir::Graph& graph) const;

 private:
  OpResult run_matmul(const ir::Op& op) const;
  OpResult run_vector_op(const ir::Op& op) const;
  /// Charges MXU idle clocking + leakage and VPU leakage for an op.
  void charge_background_power(const ir::Op& op, OpResult& result) const;

  const arch::TpuChip* chip_;
  mapping::Mapper mapper_;
};

}  // namespace cimtpu::sim
