#include "sim/trace.h"

#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/status.h"

namespace cimtpu::sim {
namespace {

std::string number(double value) {
  char buffer[48];
  std::snprintf(buffer, sizeof(buffer), "%.12g", value);
  return buffer;
}

void append_field(std::ostringstream& out, bool& first, const char* key,
                  const std::string& value, bool quoted) {
  if (!first) out << ",";
  first = false;
  out << "\"" << key << "\":";
  if (quoted) {
    out << "\"" << json_escape(value) << "\"";
  } else {
    out << value;
  }
}

}  // namespace

std::string json_escape(const std::string& text) {
  std::string escaped;
  escaped.reserve(text.size() + 8);
  for (char c : text) {
    switch (c) {
      case '"':
        escaped += "\\\"";
        break;
      case '\\':
        escaped += "\\\\";
        break;
      case '\n':
        escaped += "\\n";
        break;
      case '\r':
        escaped += "\\r";
        break;
      case '\t':
        escaped += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x", c);
          escaped += buffer;
        } else {
          escaped += c;
        }
    }
  }
  return escaped;
}

std::string to_json(const OpResult& op) {
  std::ostringstream out;
  out << "{";
  bool first = true;
  append_field(out, first, "name", op.name, true);
  append_field(out, first, "group", op.group, true);
  append_field(out, first, "on_mxu", op.on_mxu ? "true" : "false", false);
  append_field(out, first, "mapping", op.mapping_strategy, true);
  append_field(out, first, "units_used", number(op.units_used), false);
  append_field(out, first, "latency_s", number(op.latency), false);
  append_field(out, first, "compute_s", number(op.compute_time), false);
  append_field(out, first, "memory_s", number(op.memory_time), false);
  append_field(out, first, "useful_macs", number(op.useful_macs), false);
  append_field(out, first, "utilization", number(op.utilization), false);
  append_field(out, first, "mxu_energy_j", number(op.mxu_energy()), false);
  append_field(out, first, "vpu_energy_j", number(op.vpu_energy), false);
  append_field(out, first, "memory_energy_j", number(op.memory_energy),
               false);
  out << "}";
  return out.str();
}

std::string to_json(const GraphResult& result, bool include_ops) {
  std::ostringstream out;
  out << "{";
  bool first = true;
  append_field(out, first, "name", result.name, true);
  append_field(out, first, "latency_s", number(result.latency), false);
  append_field(out, first, "mxu_busy_s", number(result.mxu_busy_time), false);
  append_field(out, first, "mxu_energy_j", number(result.mxu_energy()), false);
  append_field(out, first, "total_energy_j", number(result.total_energy()),
               false);
  append_field(out, first, "mxu_power_w", number(result.mxu_power()), false);
  append_field(out, first, "useful_macs", number(result.useful_macs), false);

  out << ",\"groups\":{";
  bool first_group = true;
  for (const auto& [name, group] : result.groups) {
    if (!first_group) out << ",";
    first_group = false;
    out << "\"" << json_escape(name) << "\":{\"latency_s\":"
        << number(group.latency)
        << ",\"mxu_energy_j\":" << number(group.mxu_energy)
        << ",\"total_energy_j\":" << number(group.total_energy) << "}";
  }
  out << "}";

  if (include_ops) {
    out << ",\"ops\":[";
    for (std::size_t i = 0; i < result.ops.size(); ++i) {
      if (i != 0) out << ",";
      out << to_json(result.ops[i]);
    }
    out << "]";
  }
  out << "}";
  return out.str();
}

void write_json_file(const std::string& path, const std::string& json) {
  std::ofstream out(path);
  CIMTPU_CONFIG_CHECK(out.good(), "cannot open JSON output file: " << path);
  out << json << "\n";
}

}  // namespace cimtpu::sim
