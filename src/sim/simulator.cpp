#include "sim/simulator.h"

#include <algorithm>

#include "common/status.h"

namespace cimtpu::sim {

Simulator::Simulator(const arch::TpuChip& chip)
    : chip_(&chip), mapper_(chip.mxu(), chip.mxu_count()) {}

OpResult Simulator::run_matmul(const ir::Op& op) const {
  const mapping::GemmMapping mapping = mapper_.best_mapping(op);
  const mapping::StreamingPlan plan =
      mapping::Mapper::plan_streaming(op, chip_->memory().spec());

  OpResult result;
  result.name = op.name;
  result.group = op.group;
  result.on_mxu = true;
  result.mapping_strategy = mapping.strategy;
  result.units_used = mapping.units_used;
  result.useful_macs = op.macs();
  result.utilization = mapping.unit_cost.utilization();

  result.compute_time = mapping.busy_cycles / chip_->clock();
  result.memory_time = plan.memory_time(chip_->memory().spec());
  // Double-buffered overlap: steady state is bounded by the slower stream;
  // the first tile's staging is exposed.
  result.latency = std::max(result.compute_time, result.memory_time) +
                   result.memory_time / plan.tiles;

  result.mxu_busy_energy = mapping.busy_energy;
  result.memory_energy = plan.memory_energy(chip_->memory());
  charge_background_power(op, result);
  return result;
}

OpResult Simulator::run_vector_op(const ir::Op& op) const {
  const vpu::VpuCost cost = chip_->vpu().evaluate(op);
  const mapping::StreamingPlan plan =
      mapping::Mapper::plan_streaming(op, chip_->memory().spec());

  OpResult result;
  result.name = op.name;
  result.group = op.group;
  result.on_mxu = false;
  result.compute_time = cost.busy_cycles / chip_->clock();
  result.memory_time = plan.memory_time(chip_->memory().spec());
  result.latency = std::max(result.compute_time, result.memory_time) +
                   result.memory_time / plan.tiles;
  result.vpu_energy = cost.busy_energy;
  result.memory_energy = plan.memory_energy(chip_->memory());
  charge_background_power(op, result);
  return result;
}

void Simulator::charge_background_power(const ir::Op& op,
                                        OpResult& result) const {
  const int units = chip_->mxu_count();
  // Busy MXUs are charged through busy_energy; the rest idle-clock.
  const Seconds busy_unit_time =
      result.on_mxu ? result.compute_time * result.units_used : 0.0;
  const Seconds idle_unit_time =
      std::max(0.0, static_cast<double>(units) * result.latency -
                        busy_unit_time);
  result.mxu_idle_energy =
      idle_unit_time * chip_->mxu().idle_power(op.dtype);
  result.mxu_leakage_energy =
      static_cast<double>(units) * result.latency *
      chip_->mxu().leakage_power();
  // VPU leakage rides along in vpu_energy.
  result.vpu_energy += chip_->vpu().leakage_power() * result.latency;
}

OpResult Simulator::run_op(const ir::Op& op) const {
  return op.is_matmul() ? run_matmul(op) : run_vector_op(op);
}

GraphResult Simulator::run(const ir::Graph& graph) const {
  GraphResult result;
  result.name = graph.name();
  result.ops.reserve(graph.size());
  for (const ir::Op& op : graph.ops()) {
    OpResult op_result = run_op(op);
    result.latency += op_result.latency;
    result.useful_macs += op_result.useful_macs;
    result.mxu_busy_energy += op_result.mxu_busy_energy;
    result.mxu_idle_energy += op_result.mxu_idle_energy;
    result.mxu_leakage_energy += op_result.mxu_leakage_energy;
    result.vpu_energy += op_result.vpu_energy;
    result.memory_energy += op_result.memory_energy;
    if (op_result.on_mxu) {
      result.mxu_busy_time += op_result.compute_time;
    }
    GroupSummary& group = result.groups[op_result.group];
    group.latency += op_result.latency;
    group.mxu_energy += op_result.mxu_energy();
    group.total_energy += op_result.mxu_energy() + op_result.vpu_energy +
                          op_result.memory_energy;
    result.ops.push_back(std::move(op_result));
  }
  return result;
}

GraphResult& GraphResult::scale(double factor) {
  latency *= factor;
  mxu_busy_time *= factor;
  mxu_busy_energy *= factor;
  mxu_idle_energy *= factor;
  mxu_leakage_energy *= factor;
  vpu_energy *= factor;
  memory_energy *= factor;
  useful_macs *= factor;
  for (auto& [key, group] : groups) {
    group.latency *= factor;
    group.mxu_energy *= factor;
    group.total_energy *= factor;
  }
  return *this;
}

GraphResult& GraphResult::operator+=(const GraphResult& other) {
  latency += other.latency;
  mxu_busy_time += other.mxu_busy_time;
  mxu_busy_energy += other.mxu_busy_energy;
  mxu_idle_energy += other.mxu_idle_energy;
  mxu_leakage_energy += other.mxu_leakage_energy;
  vpu_energy += other.vpu_energy;
  memory_energy += other.memory_energy;
  useful_macs += other.useful_macs;
  for (const auto& [key, group] : other.groups) {
    groups[key] += group;
  }
  return *this;
}

}  // namespace cimtpu::sim
