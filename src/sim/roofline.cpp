#include "sim/roofline.h"

#include <algorithm>
#include <limits>

#include "mapping/mapper.h"

namespace cimtpu::sim {

std::string bound_resource_name(BoundResource resource) {
  switch (resource) {
    case BoundResource::kCompute:
      return "compute";
    case BoundResource::kHbm:
      return "HBM";
    case BoundResource::kOci:
      return "OCI";
    case BoundResource::kVmem:
      return "VMEM";
  }
  return "?";
}

RooflinePoint analyze_op(const Simulator& simulator, const ir::Op& op) {
  const arch::TpuChip& chip = simulator.chip();
  const OpResult result = simulator.run_op(op);
  const mapping::StreamingPlan plan =
      mapping::Mapper::plan_streaming(op, chip.memory().spec());

  RooflinePoint point;
  point.op = op.name;
  point.group = op.group;
  point.flops = op.flops();
  point.attained_flops_per_s =
      result.latency > 0 ? point.flops / result.latency : 0;

  // Compute roof: MXU peak for matmuls, VPU peak otherwise.
  point.compute_roof = op.is_matmul()
                           ? chip.peak_ops_per_second()
                           : chip.vpu().ops_per_cycle() * chip.clock();

  // Memory roofs per channel; the binding channel is the slowest.
  const auto& spec = chip.memory().spec();
  struct Channel {
    BoundResource resource;
    Seconds time;
  };
  const Channel channels[] = {
      {BoundResource::kHbm, plan.hbm_bytes / spec.hbm.bandwidth},
      {BoundResource::kOci, plan.cmem_bytes / spec.cmem.bandwidth},
      {BoundResource::kVmem, plan.vmem_bytes / spec.vmem.bandwidth},
  };
  const Channel* slowest = &channels[0];
  for (const Channel& channel : channels) {
    if (channel.time > slowest->time) slowest = &channel;
  }
  point.memory_roof = slowest->time > 0
                          ? point.flops / slowest->time
                          : std::numeric_limits<double>::infinity();
  point.operational_intensity =
      plan.hbm_bytes > 0 ? point.flops / plan.hbm_bytes
                         : std::numeric_limits<double>::infinity();

  // Binding resource: whichever of compute vs the slowest memory channel
  // dominates the overlapped latency.
  if (result.compute_time >= slowest->time) {
    point.bound = BoundResource::kCompute;
  } else {
    point.bound = slowest->resource;
  }
  return point;
}

std::vector<RooflinePoint> analyze_graph(const Simulator& simulator,
                                         const ir::Graph& graph) {
  std::vector<RooflinePoint> points;
  points.reserve(graph.size());
  for (const ir::Op& op : graph.ops()) {
    points.push_back(analyze_op(simulator, op));
  }
  return points;
}

BoundBreakdown bound_breakdown(const Simulator& simulator,
                               const ir::Graph& graph) {
  BoundBreakdown breakdown;
  for (const ir::Op& op : graph.ops()) {
    const RooflinePoint point = analyze_op(simulator, op);
    const OpResult result = simulator.run_op(op);
    switch (point.bound) {
      case BoundResource::kCompute:
        breakdown.compute_bound += result.latency;
        break;
      case BoundResource::kHbm:
        breakdown.hbm_bound += result.latency;
        break;
      case BoundResource::kOci:
        breakdown.oci_bound += result.latency;
        break;
      case BoundResource::kVmem:
        breakdown.vmem_bound += result.latency;
        break;
    }
  }
  return breakdown;
}

}  // namespace cimtpu::sim
