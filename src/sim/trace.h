#pragma once
// Machine-readable result export: serializes GraphResults to JSON so
// external tooling (plotting scripts, regression dashboards) can consume
// simulation output without parsing ASCII tables.

#include <string>

#include "sim/report.h"

namespace cimtpu::sim {

/// JSON string escaping (control characters, quotes, backslash).
std::string json_escape(const std::string& text);

/// Serializes one op result as a JSON object.
std::string to_json(const OpResult& op);

/// Serializes a graph result — totals, group summaries and (optionally)
/// the per-op detail — as a JSON object.
std::string to_json(const GraphResult& result, bool include_ops = true);

/// Writes `json` to `path`; throws ConfigError when the file cannot be
/// created.
void write_json_file(const std::string& path, const std::string& json);

}  // namespace cimtpu::sim
