#include "cim/fp_pipeline.h"

#include <cmath>
#include <cstring>

#include "common/status.h"

namespace cimtpu::cim {
namespace {

std::uint32_t float_bits(float value) {
  std::uint32_t bits;
  std::memcpy(&bits, &value, sizeof(bits));
  return bits;
}

float bits_float(std::uint32_t bits) {
  float value;
  std::memcpy(&value, &bits, sizeof(value));
  return value;
}

}  // namespace

std::uint16_t bf16_from_float(float value) {
  std::uint32_t bits = float_bits(value);
  // Round-to-nearest-even on the truncated 16 low bits.
  const std::uint32_t rounding_bias = 0x7FFF + ((bits >> 16) & 1);
  bits += rounding_bias;
  return static_cast<std::uint16_t>(bits >> 16);
}

float float_from_bf16(std::uint16_t bits) {
  return bits_float(static_cast<std::uint32_t>(bits) << 16);
}

DecodedBf16 decode_bf16(std::uint16_t bits) {
  DecodedBf16 decoded;
  const int sign = (bits >> 15) & 1;
  const int biased_exp = (bits >> 7) & 0xFF;
  const int fraction = bits & 0x7F;
  if (biased_exp == 0) {
    // Subnormals flush to zero in the CIM pipeline (as in [20]).
    decoded.is_zero = true;
    return decoded;
  }
  // NaN/Inf are not representable in the integer pipeline; callers are
  // expected to sanitize.  Treat them as max-magnitude values.
  decoded.is_zero = false;
  decoded.exponent = biased_exp - 127;
  decoded.mantissa = (1 << 7) | fraction;  // implicit leading one, 1.7 form
  if (sign) decoded.mantissa = -decoded.mantissa;
  return decoded;
}

AlignedBlock align_products(const std::vector<std::uint16_t>& x,
                            const std::vector<std::uint16_t>& w,
                            int guard_bits) {
  CIMTPU_CHECK_MSG(x.size() == w.size(), "dot operand size mismatch: "
                                             << x.size() << " vs " << w.size());
  CIMTPU_CHECK_MSG(guard_bits >= 0 && guard_bits <= 16,
                   "guard_bits out of range: " << guard_bits);
  AlignedBlock block;
  block.terms.resize(x.size(), 0);

  // Pass 1: product exponents; find the block maximum.
  int max_exp = INT32_MIN;
  std::vector<DecodedBf16> dx(x.size()), dw(w.size());
  for (std::size_t i = 0; i < x.size(); ++i) {
    dx[i] = decode_bf16(x[i]);
    dw[i] = decode_bf16(w[i]);
    if (dx[i].is_zero || dw[i].is_zero) continue;
    const int product_exp = dx[i].exponent + dw[i].exponent;
    if (product_exp > max_exp) max_exp = product_exp;
  }
  if (max_exp == INT32_MIN) {
    block.block_exponent = 0;  // all-zero block
    return block;
  }
  block.block_exponent = max_exp;

  // Pass 2: integer product mantissas (1.7 x 1.7 -> 2.14 fixed point),
  // right-shifted into alignment with the block exponent, keeping
  // `guard_bits` guard positions.
  for (std::size_t i = 0; i < x.size(); ++i) {
    if (dx[i].is_zero || dw[i].is_zero) continue;
    const std::int64_t product = static_cast<std::int64_t>(dx[i].mantissa) *
                                 static_cast<std::int64_t>(dw[i].mantissa);
    const int shift = max_exp - (dx[i].exponent + dw[i].exponent);
    // Keep guard_bits: scale up first, then arithmetic-shift right.
    const std::int64_t scaled = product << guard_bits;
    block.terms[i] = shift >= 63 ? 0 : (scaled >> shift);
  }
  return block;
}

float cim_bf16_dot(const std::vector<std::uint16_t>& x,
                   const std::vector<std::uint16_t>& w, int guard_bits) {
  const AlignedBlock block = align_products(x, w, guard_bits);
  std::int64_t acc = 0;
  for (std::int64_t term : block.terms) acc += term;
  if (acc == 0) return 0.0f;
  // Post-processing: the accumulator holds
  //   acc = dot * 2^14 * 2^guard_bits * 2^-block_exponent.
  const double scale =
      std::ldexp(1.0, block.block_exponent - 14 - guard_bits);
  return static_cast<float>(static_cast<double>(acc) * scale);
}

float reference_bf16_dot(const std::vector<std::uint16_t>& x,
                         const std::vector<std::uint16_t>& w) {
  CIMTPU_CHECK_MSG(x.size() == w.size(), "dot operand size mismatch");
  float acc = 0.0f;
  for (std::size_t i = 0; i < x.size(); ++i) {
    acc += float_from_bf16(x[i]) * float_from_bf16(w[i]);
  }
  return acc;
}

}  // namespace cimtpu::cim
