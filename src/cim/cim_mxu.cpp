#include "cim/cim_mxu.h"

#include <algorithm>
#include <cmath>

#include "common/math_util.h"
#include "common/status.h"
#include "tech/calibration.h"

namespace cimtpu::cim {

void CimMxuSpec::validate() const {
  CIMTPU_CONFIG_CHECK(grid_rows > 0 && grid_cols > 0,
                      "CIM grid dims must be positive: " << grid_rows << "x"
                                                         << grid_cols);
  CIMTPU_CONFIG_CHECK(core_rows > 0 && core_cols > 0,
                      "CIM core dims must be positive");
  CIMTPU_CONFIG_CHECK(core_macs_per_cycle > 0,
                      "core_macs_per_cycle must be positive");
  CIMTPU_CONFIG_CHECK(weight_io_bytes_per_cycle > 0,
                      "weight_io_bytes_per_cycle must be positive");
}

CimMxu::CimMxu(CimMxuSpec spec, const tech::EnergyModel& energy,
               const tech::AreaModel& area)
    : spec_(spec), energy_(&energy) {
  spec_.validate();
  area_mm2_ = area.cim_mxu(spec_.grid_rows, spec_.grid_cols, spec_.core_rows,
                           spec_.core_cols);
}

std::string CimMxu::name() const {
  return "cim-" + std::to_string(spec_.grid_rows) + "x" +
         std::to_string(spec_.grid_cols);
}

double CimMxu::macs_per_cycle() const {
  return spec_.cores() * spec_.core_macs_per_cycle;
}

double CimMxu::weight_ingest_bytes_per_cycle() const {
  return spec_.cores() * spec_.weight_io_bytes_per_cycle;
}

SquareMm CimMxu::area() const { return area_mm2_; }

Watts CimMxu::leakage_power() const {
  return area_mm2_ * energy_->cim_leakage_per_mm2();
}

Watts CimMxu::peak_dynamic_power(ir::DType dtype) const {
  return macs_per_cycle() * energy_->cim_mac(dtype) *
         energy_->node().nominal_clock;
}

Watts CimMxu::idle_power(ir::DType dtype) const {
  return peak_dynamic_power(dtype) * tech::cal::kCimIdleActivity;
}

systolic::MxuCost CimMxu::evaluate(const systolic::GemmWorkload& w) const {
  CIMTPU_CHECK_MSG(w.m > 0 && w.k > 0 && w.n > 0 && w.instances > 0,
                   "invalid GEMM workload m=" << w.m << " k=" << w.k
                                              << " n=" << w.n);
  const double bytes_per_elem = ir::dtype_bytes(w.dtype);
  const double k_tiles =
      static_cast<double>(ceil_div<std::int64_t>(w.k, spec_.core_rows));
  // Output channels are bank-granular: banks whose 8-column group holds no
  // live output are read-gated and skipped by the bit-serial scan, so a
  // narrow-N tile (e.g. DiT's d_head = 72) does not pay for the full
  // 256-column core.
  const double padded_n = static_cast<double>(
      round_up<std::int64_t>(w.n, tech::cal::kCimBankColumns));
  const double n_tiles =
      static_cast<double>(ceil_div<std::int64_t>(w.n, spec_.core_cols));
  const double tasks = static_cast<double>(w.instances) * k_tiles * n_tiles;
  // Fractional rounds: the mapping engine splits m across the remainder
  // cores of the last round, so round count is not quantized to integers.
  const double rounds = std::max(1.0, tasks / spec_.cores());

  // Aggregate compute: every (instance, k-tile) streams m input rows over
  // its live columns at core_macs_per_cycle per core, spread across all
  // cores; a single task cannot finish faster than one core processes it.
  const double core_cycles_total = static_cast<double>(w.instances) * k_tiles *
                                   w.m * spec_.core_rows * padded_n /
                                   spec_.core_macs_per_cycle;
  // When tasks underfill the grid, weight tiles are REPLICATED into the
  // spare cores and m splits across the replicas (extra weight writes ride
  // the overlapped weight I/O).  m = 1 cannot be split further.  N-tiles
  // are balanced (e.g. 288 columns split 144+144, not 256+32) so the
  // widest tile does not bottleneck the round.
  const double balanced_cols = std::min(
      static_cast<double>(spec_.core_cols),
      static_cast<double>(round_up<std::int64_t>(
          ceil_div<std::int64_t>(
              round_up<std::int64_t>(w.n, tech::cal::kCimBankColumns),
              static_cast<std::int64_t>(n_tiles)),
          tech::cal::kCimBankColumns)));
  const double single_task_cycles = static_cast<double>(w.m) *
                                    spec_.core_rows * balanced_cols /
                                    spec_.core_macs_per_cycle;
  const double replication = std::max(
      1.0, std::min(static_cast<double>(w.m),
                    std::floor(spec_.cores() / tasks)));
  const double compute_cycles = std::max(core_cycles_total / spec_.cores(),
                                         single_task_cycles / replication);

  // Aggregate weight-write through the dedicated per-core weight I/O,
  // overlapped with computation (simultaneous MAC + weight update).
  // Replicated tiles are written once per replica.
  const Bytes weight_bytes = static_cast<double>(w.instances) * k_tiles *
                             spec_.core_rows * padded_n * bytes_per_elem *
                             replication;
  const double write_cycles =
      weight_bytes / (spec_.cores() * spec_.weight_io_bytes_per_cycle);
  const double write_exposure = std::min(
      write_cycles / std::max(rounds, 1.0),
      spec_.core_rows * spec_.core_cols * bytes_per_elem /
          spec_.weight_io_bytes_per_cycle);

  // With the dedicated weight port, writes hide under compute (only the
  // first fill is exposed); without it (ablation) they serialize.
  const double compute_and_write =
      spec_.overlapped_weight_update
          ? std::max(compute_cycles, write_cycles) + write_exposure
          : compute_cycles + write_cycles;
  // Wave propagation across the grid per round plus bit-serial
  // re-alignment add a fractional overhead.
  const double busy =
      (compute_and_write + rounds * (spec_.grid_rows + spec_.grid_cols)) *
      (1.0 + tech::cal::kCimComputeOverheadFraction);

  systolic::MxuCost cost;
  cost.busy_cycles = busy;
  cost.useful_macs = static_cast<double>(w.instances) * w.m *
                     static_cast<double>(w.k) * w.n;
  cost.occupied_mac_slots = cost.busy_cycles * macs_per_cycle();
  cost.stationary_bytes_loaded = weight_bytes;

  const Joules mac = energy_->cim_mac(w.dtype);
  const Joules idle_slot = energy_->cim_idle_slot(w.dtype);
  const double idle_slots =
      std::max(0.0, cost.occupied_mac_slots - cost.useful_macs);
  cost.busy_energy = cost.useful_macs * mac + idle_slots * idle_slot +
                     cost.stationary_bytes_loaded *
                         energy_->cim_weight_write_per_byte();
  return cost;
}

}  // namespace cimtpu::cim
