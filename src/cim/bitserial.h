#pragma once
// Functional model of digital-CIM bit-serial INT8 arithmetic.
//
// A digital SRAM CIM macro broadcasts the input vector one bit-plane at a
// time; each bank ANDs the broadcast bit with its stored weight column,
// reduces through an adder tree, and a shift-accumulator recombines the
// bit-planes (paper Fig. 4; refs [7], [8]).  This file implements that
// datapath bit-exactly so tests can prove the CIM compute path is
// numerically identical to a reference integer GEMM — the property that
// lets the performance model treat CIM INT8 results as exact.

#include <cstdint>
#include <vector>

namespace cimtpu::cim {

/// Extracts bit `bit` (0 = LSB) of a two's-complement int8 as 0/1.
inline int bit_of(std::int8_t value, int bit) {
  return (static_cast<std::uint8_t>(value) >> bit) & 1;
}

/// Reference dot product in plain integer arithmetic.
std::int32_t reference_dot(const std::vector<std::int8_t>& x,
                           const std::vector<std::int8_t>& w);

/// Bit-serial dot product: processes the input LSB-first, one bit-plane per
/// "cycle", accumulating through a shift-accumulator.  The MSB plane is
/// weighted negatively (two's complement).  Bit-exact vs reference_dot.
std::int32_t bit_serial_dot(const std::vector<std::int8_t>& x,
                            const std::vector<std::int8_t>& w);

/// Sums `values` through a balanced binary adder tree (models the bank's
/// reduction network; integer addition is associative so the result matches
/// a sequential sum — the tree is modeled to mirror the hardware and to
/// expose intermediate bit-widths for overflow checks).
std::int64_t adder_tree_sum(const std::vector<std::int32_t>& values);

/// Number of adder-tree levels needed to reduce `inputs` operands.
int adder_tree_depth(int inputs);

/// Minimum accumulator width (bits) that cannot overflow for a dot product
/// of `k` INT8 * INT8 terms.
int required_accumulator_bits(int k);

}  // namespace cimtpu::cim
