#include "cim/cim_grid.h"

#include "common/math_util.h"
#include "common/status.h"

namespace cimtpu::cim {

CimGrid::CimGrid(int grid_rows, int grid_cols, CimMacroSpec macro_spec)
    : grid_rows_(grid_rows), grid_cols_(grid_cols), macro_spec_(macro_spec) {
  CIMTPU_CONFIG_CHECK(grid_rows > 0 && grid_cols > 0,
                      "CIM grid dims must be positive");
  macro_spec_.validate();
  macros_.assign(static_cast<std::size_t>(cores()), CimMacro(macro_spec_));
}

std::vector<std::int32_t> CimGrid::reference(const std::vector<std::int8_t>& a,
                                             const std::vector<std::int8_t>& w,
                                             int m, int k, int n) {
  std::vector<std::int32_t> out(static_cast<std::size_t>(m) * n, 0);
  for (int i = 0; i < m; ++i) {
    for (int c = 0; c < n; ++c) {
      std::int32_t acc = 0;
      for (int r = 0; r < k; ++r) {
        acc += static_cast<std::int32_t>(a[static_cast<std::size_t>(i) * k + r]) *
               static_cast<std::int32_t>(w[static_cast<std::size_t>(r) * n + c]);
      }
      out[static_cast<std::size_t>(i) * n + c] = acc;
    }
  }
  return out;
}

std::vector<std::int32_t> CimGrid::gemm(const std::vector<std::int8_t>& a,
                                        const std::vector<std::int8_t>& w,
                                        int m, int k, int n, RunStats* stats) {
  CIMTPU_CHECK_MSG(m > 0 && k > 0 && n > 0, "gemm dims must be positive");
  CIMTPU_CHECK_MSG(a.size() == static_cast<std::size_t>(m) * k,
                   "A size mismatch");
  CIMTPU_CHECK_MSG(w.size() == static_cast<std::size_t>(k) * n,
                   "W size mismatch");

  const int core_k = macro_spec_.input_channels;
  const int core_n = macro_spec_.output_channels;
  const int k_tiles = static_cast<int>(ceil_div(k, core_k));
  const int n_tiles = static_cast<int>(ceil_div(n, core_n));

  // PSUM accumulators (output-stationary across K-rounds).
  std::vector<std::int64_t> psum(static_cast<std::size_t>(m) * n, 0);

  RunStats local;
  local.tasks = static_cast<long long>(k_tiles) * n_tiles;

  // Tasks are scheduled round-robin over the cores; each task writes its
  // weight tile through the weight I/O, streams all m input rows, and
  // accumulates into the PSUM buffer for its (kt, nt) region.
  int next_core = 0;
  std::vector<std::int8_t> tile(static_cast<std::size_t>(core_k) * core_n);
  std::vector<std::int8_t> input(core_k);
  for (int kt = 0; kt < k_tiles; ++kt) {
    for (int nt = 0; nt < n_tiles; ++nt) {
      // Gather the (zero-padded) weight tile.
      for (int r = 0; r < core_k; ++r) {
        for (int c = 0; c < core_n; ++c) {
          const int gr = kt * core_k + r;
          const int gc = nt * core_n + c;
          tile[static_cast<std::size_t>(r) * core_n + c] =
              (gr < k && gc < n)
                  ? w[static_cast<std::size_t>(gr) * n + gc]
                  : 0;
        }
      }
      CimMacro& core = macros_[next_core];
      next_core = (next_core + 1) % cores();
      if (next_core == 0) ++local.rounds;
      core.load_weights(tile);
      local.weight_bytes_written +=
          static_cast<long long>(core_k) * core_n;

      for (int i = 0; i < m; ++i) {
        for (int r = 0; r < core_k; ++r) {
          const int gr = kt * core_k + r;
          input[r] = gr < k ? a[static_cast<std::size_t>(i) * k + gr] : 0;
        }
        const std::vector<std::int32_t> partial = core.matvec(input);
        for (int c = 0; c < core_n; ++c) {
          const int gc = nt * core_n + c;
          if (gc < n) {
            psum[static_cast<std::size_t>(i) * n + gc] += partial[c];
          }
        }
      }
    }
  }
  if (local.rounds == 0 || next_core != 0) ++local.rounds;
  if (stats != nullptr) *stats = local;

  std::vector<std::int32_t> out(psum.size());
  for (std::size_t i = 0; i < psum.size(); ++i) {
    out[i] = static_cast<std::int32_t>(psum[i]);
  }
  return out;
}

}  // namespace cimtpu::cim
