#include "cim/bitserial.h"

#include <cmath>

#include "common/status.h"

namespace cimtpu::cim {

std::int32_t reference_dot(const std::vector<std::int8_t>& x,
                           const std::vector<std::int8_t>& w) {
  CIMTPU_CHECK_MSG(x.size() == w.size(), "dot operand size mismatch: "
                                             << x.size() << " vs " << w.size());
  std::int32_t acc = 0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    acc += static_cast<std::int32_t>(x[i]) * static_cast<std::int32_t>(w[i]);
  }
  return acc;
}

std::int32_t bit_serial_dot(const std::vector<std::int8_t>& x,
                            const std::vector<std::int8_t>& w) {
  CIMTPU_CHECK_MSG(x.size() == w.size(), "dot operand size mismatch: "
                                             << x.size() << " vs " << w.size());
  std::int64_t acc = 0;
  for (int bit = 0; bit < 8; ++bit) {
    // One broadcast cycle: the bank ANDs the input bit-plane with every
    // stored weight and reduces through the adder tree.
    std::vector<std::int32_t> partials;
    partials.reserve(x.size());
    for (std::size_t i = 0; i < x.size(); ++i) {
      partials.push_back(bit_of(x[i], bit) *
                         static_cast<std::int32_t>(w[i]));
    }
    const std::int64_t plane = adder_tree_sum(partials);
    // Shift-accumulate; the MSB plane carries weight -2^7 (two's
    // complement sign bit).
    if (bit == 7) {
      acc -= plane << bit;
    } else {
      acc += plane << bit;
    }
  }
  return static_cast<std::int32_t>(acc);
}

std::int64_t adder_tree_sum(const std::vector<std::int32_t>& values) {
  if (values.empty()) return 0;
  std::vector<std::int64_t> level(values.begin(), values.end());
  while (level.size() > 1) {
    std::vector<std::int64_t> next;
    next.reserve((level.size() + 1) / 2);
    for (std::size_t i = 0; i + 1 < level.size(); i += 2) {
      next.push_back(level[i] + level[i + 1]);
    }
    if (level.size() % 2 == 1) next.push_back(level.back());
    level = std::move(next);
  }
  return level.front();
}

int adder_tree_depth(int inputs) {
  CIMTPU_CHECK_MSG(inputs > 0, "adder tree needs >= 1 input");
  int depth = 0;
  int width = 1;
  while (width < inputs) {
    width *= 2;
    ++depth;
  }
  return depth;
}

int required_accumulator_bits(int k) {
  CIMTPU_CHECK_MSG(k > 0, "dot length must be positive");
  // |x_i * w_i| <= 128 * 128 = 2^14; sum of k terms <= k * 2^14.
  // Signed width: ceil(log2(k * 2^14)) + 1.
  const double magnitude = static_cast<double>(k) * 128.0 * 128.0;
  return static_cast<int>(std::ceil(std::log2(magnitude))) + 1;
}

}  // namespace cimtpu::cim
