#pragma once
// Functional model of the CIM-MXU's BF16 floating-point pipeline.
//
// In FP mode the CIM array stores weight mantissas and performs integer
// MACs; a pre-processing unit aligns input exponents and shifts mantissas,
// and a post-processing unit performs the remaining shift-accumulation and
// rounding (paper Sec. III-B; refs [9], [20]).  This block-floating-point
// scheme trades a bounded amount of precision for keeping the array purely
// integer — the functional model here lets tests quantify that error
// against an FP32 reference.

#include <cstdint>
#include <vector>

namespace cimtpu::cim {

/// BF16 <-> float conversions (round-to-nearest-even on encode).
std::uint16_t bf16_from_float(float value);
float float_from_bf16(std::uint16_t bits);

/// Decoded BF16 operand ready for the integer array: signed mantissa with
/// the implicit leading one (9 significant bits incl. sign) plus the
/// unbiased exponent.
struct DecodedBf16 {
  std::int32_t mantissa = 0;  ///< signed, |mantissa| < 2^8 (1.7 fixed point)
  int exponent = 0;           ///< unbiased; mantissa * 2^(exponent-7)
  bool is_zero = true;
};

DecodedBf16 decode_bf16(std::uint16_t bits);

/// Result of the pre-processing unit for a block of products: each product
/// term's integer mantissa aligned to the block's maximum exponent.
struct AlignedBlock {
  std::vector<std::int64_t> terms;  ///< aligned signed integer mantissas
  int block_exponent = 0;           ///< shared exponent of all terms
};

/// Pre-processing: computes per-term product exponents (ex + ew), finds the
/// block maximum and right-shifts each product mantissa into alignment.
/// `guard_bits` extra low-order bits are kept to bound rounding error
/// (hardware keeps a few guard positions in the shift-accumulator).
AlignedBlock align_products(const std::vector<std::uint16_t>& x,
                            const std::vector<std::uint16_t>& w,
                            int guard_bits = 4);

/// Full CIM BF16 dot product: pre-process, integer-sum in the array,
/// post-process (normalize + round) back to a float result.
float cim_bf16_dot(const std::vector<std::uint16_t>& x,
                   const std::vector<std::uint16_t>& w, int guard_bits = 4);

/// FP32 reference dot product of BF16 operands.
float reference_bf16_dot(const std::vector<std::uint16_t>& x,
                         const std::vector<std::uint16_t>& w);

}  // namespace cimtpu::cim
