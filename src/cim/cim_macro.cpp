#include "cim/cim_macro.h"

namespace cimtpu::cim {

void CimMacroSpec::validate() const {
  CIMTPU_CONFIG_CHECK(input_channels > 0 && output_channels > 0,
                      "CIM macro dims must be positive");
  CIMTPU_CONFIG_CHECK(banks > 0 && output_channels % banks == 0,
                      "output_channels (" << output_channels
                                          << ") must divide evenly into banks ("
                                          << banks << ")");
  CIMTPU_CONFIG_CHECK(weight_io_bits > 0 && weight_io_bits % 8 == 0,
                      "weight_io_bits must be a positive multiple of 8");
  CIMTPU_CONFIG_CHECK(input_io_bits > 0 && input_io_bits % 8 == 0,
                      "input_io_bits must be a positive multiple of 8");
}

CimMacro::CimMacro(CimMacroSpec spec) : spec_(spec) {
  spec_.validate();
  weights_.assign(
      static_cast<std::size_t>(spec_.input_channels) * spec_.output_channels,
      0);
}

void CimMacro::load_weights(const std::vector<std::int8_t>& weights) {
  CIMTPU_CHECK_MSG(weights.size() == weights_.size(),
                   "weight tile size " << weights.size() << " != "
                                       << weights_.size());
  weights_ = weights;
}

void CimMacro::write_column(int output_channel,
                            const std::vector<std::int8_t>& column) {
  CIMTPU_CHECK_MSG(output_channel >= 0 &&
                       output_channel < spec_.output_channels,
                   "output channel " << output_channel << " out of range");
  CIMTPU_CHECK_MSG(column.size() ==
                       static_cast<std::size_t>(spec_.input_channels),
                   "column length " << column.size() << " != input channels "
                                    << spec_.input_channels);
  for (int k = 0; k < spec_.input_channels; ++k) {
    weights_[static_cast<std::size_t>(k) * spec_.output_channels +
             output_channel] = column[k];
  }
}

std::int8_t CimMacro::weight(int input_channel, int output_channel) const {
  CIMTPU_DCHECK(input_channel >= 0 && input_channel < spec_.input_channels);
  CIMTPU_DCHECK(output_channel >= 0 && output_channel < spec_.output_channels);
  return weights_[static_cast<std::size_t>(input_channel) *
                      spec_.output_channels +
                  output_channel];
}

int CimMacro::bank_of(int output_channel) const {
  CIMTPU_DCHECK(output_channel >= 0 && output_channel < spec_.output_channels);
  return output_channel / spec_.columns_per_bank();
}

std::vector<std::int32_t> CimMacro::matvec(
    const std::vector<std::int8_t>& input) const {
  CIMTPU_CHECK_MSG(input.size() ==
                       static_cast<std::size_t>(spec_.input_channels),
                   "input length " << input.size() << " != input channels "
                                   << spec_.input_channels);
  std::vector<std::int32_t> result(spec_.output_channels, 0);
  std::vector<std::int8_t> column(spec_.input_channels);
  for (int n = 0; n < spec_.output_channels; ++n) {
    for (int k = 0; k < spec_.input_channels; ++k) {
      column[k] = weight(k, n);
    }
    result[n] = bit_serial_dot(input, column);
  }
  return result;
}

std::vector<std::int32_t> CimMacro::reference_matvec(
    const std::vector<std::int8_t>& input) const {
  CIMTPU_CHECK_MSG(input.size() ==
                       static_cast<std::size_t>(spec_.input_channels),
                   "input length mismatch");
  std::vector<std::int32_t> result(spec_.output_channels, 0);
  for (int n = 0; n < spec_.output_channels; ++n) {
    std::int32_t acc = 0;
    for (int k = 0; k < spec_.input_channels; ++k) {
      acc += static_cast<std::int32_t>(input[k]) * weight(k, n);
    }
    result[n] = acc;
  }
  return result;
}

double CimMacro::cycles_per_input_vector() const {
  // 8 bit-planes broadcast per input vector; each plane needs the whole
  // vector injected through the input port, input_io_bits inputs per wave
  // are pipelined into the banks.  The paper abstracts this to a per-core
  // throughput of kCimCoreMacsPerCycle MACs/cycle:
  //   cycles = (input_channels * output_channels) / macs_per_cycle.
  return static_cast<double>(spec_.input_channels) * spec_.output_channels /
         128.0;
}

double CimMacro::cycles_per_weight_tile() const {
  const double bytes =
      static_cast<double>(spec_.input_channels) * spec_.output_channels;
  return bytes / (spec_.weight_io_bits / 8.0);
}

}  // namespace cimtpu::cim
