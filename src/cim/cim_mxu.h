#pragma once
// CIM-MXU: a systolic grid of CIM cores replacing the digital MXU
// (paper Sec. III-B, Fig. 4).
//
// Timing model for one [m, k] x [k, n] instance on a Gr x Gc grid of
// R x C CIM cores:
//   * the stationary operand is tiled into ceil(k/R) * ceil(n/C) core-sized
//     tiles; `instances` independent GEMMs multiply the task count;
//   * the mapping engine schedules tasks onto the Gr*Gc cores in rounds
//     (output-stationary; PSUM buffers accumulate partial K-sums);
//   * per round, each core streams the m input rows bit-serially at
//     kCimCoreMacsPerCycle MACs/cycle: m * R * C / rate cycles;
//   * the next round's weights are written CONCURRENTLY through each
//     core's dedicated weight I/O (kCimWeightIoBytesPerCycle per core), so
//     a round takes max(compute, weight-write); only the first round's
//     write is exposed.  This is the decisive GEMV advantage over the
//     digital array, which stalls for every weight tile;
//   * there is no fill/drain ramp — inputs broadcast to all output
//     channels within a core — but wave propagation across the grid and
//     bit-serial re-alignment add kCimComputeOverheadFraction.
//
// Energy: useful MACs at CIM per-MAC energy; read-gated idle bank slots
// burn kCimBubbleActivity of a MAC; weight writes pay SRAM write energy.

#include "systolic/matrix_unit.h"

namespace cimtpu::cim {

struct CimMxuSpec {
  int grid_rows = 16;   ///< CIM cores per column of the systolic grid
  int grid_cols = 8;    ///< CIM cores per row of the systolic grid
  int core_rows = 128;  ///< K extent of one core's weight tile
  int core_cols = 256;  ///< N extent of one core's weight tile
  double core_macs_per_cycle = 128.0;
  double weight_io_bytes_per_cycle = 32.0;  ///< per core (256-bit port)

  /// When false, weight writes serialize with computation (ablation of the
  /// simultaneous MAC + weight-update capability the paper's CIM macro
  /// provides; see bench_ablation_overlap).
  bool overlapped_weight_update = true;

  int cores() const { return grid_rows * grid_cols; }
  void validate() const;
};

class CimMxu final : public systolic::MatrixUnit {
 public:
  CimMxu(CimMxuSpec spec, const tech::EnergyModel& energy,
         const tech::AreaModel& area);

  const CimMxuSpec& spec() const { return spec_; }

  std::string name() const override;
  double macs_per_cycle() const override;
  double weight_ingest_bytes_per_cycle() const override;
  bool overlapped_weight_load() const override {
    return spec_.overlapped_weight_update;
  }
  SquareMm area() const override;
  Watts leakage_power() const override;
  Watts peak_dynamic_power(ir::DType dtype) const override;
  Watts idle_power(ir::DType dtype) const override;
  systolic::MxuCost evaluate(const systolic::GemmWorkload& workload) const override;

 private:
  CimMxuSpec spec_;
  const tech::EnergyModel* energy_;
  SquareMm area_mm2_;
};

}  // namespace cimtpu::cim
