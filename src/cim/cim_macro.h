#pragma once
// Structural + functional model of one digital CIM macro ("CIM core").
//
// Organization (paper Fig. 4, Table I): a 128 x 256 bitcell array arranged
// as 32 banks; each bank owns 8 output columns and is fed by 32 sub-arrays
// of local readout/compute circuits.  The input vector arrives bit-serially
// on a 32-bit systolic input port; weights are written through a dedicated
// 256-bit weight I/O that operates concurrently with computation
// (simultaneous MAC and weight update, as in Mori et al. ISSCC'23 [24]).
//
// The functional path is bit-exact INT8 (see bitserial.h); tests use it to
// prove CIM results equal a reference GEMV.

#include <cstdint>
#include <vector>

#include "cim/bitserial.h"
#include "common/status.h"

namespace cimtpu::cim {

struct CimMacroSpec {
  int input_channels = 128;   ///< rows of the stored weight tile (K extent)
  int output_channels = 256;  ///< columns of the stored weight tile (N extent)
  int banks = 32;             ///< independent output groups
  int weight_io_bits = 256;   ///< dedicated weight port width
  int input_io_bits = 32;     ///< systolic input port width

  int columns_per_bank() const { return output_channels / banks; }
  void validate() const;
};

/// One CIM core with resident weights.  Row-major weight layout:
/// weight(k, n) multiplies input element k into output channel n.
class CimMacro {
 public:
  explicit CimMacro(CimMacroSpec spec = CimMacroSpec{});

  const CimMacroSpec& spec() const { return spec_; }

  /// Writes a full weight tile; dimensions must match the spec.
  void load_weights(const std::vector<std::int8_t>& weights);

  /// Writes one weight column (output channel) through the weight I/O.
  /// Models the incremental update path used while other banks compute.
  void write_column(int output_channel, const std::vector<std::int8_t>& column);

  std::int8_t weight(int input_channel, int output_channel) const;

  /// Bank index that owns `output_channel`.
  int bank_of(int output_channel) const;

  /// Bit-serial matrix-vector product: input length == input_channels,
  /// result length == output_channels.  Bit-exact vs reference integer math.
  std::vector<std::int32_t> matvec(const std::vector<std::int8_t>& input) const;

  /// Reference GEMV for validation.
  std::vector<std::int32_t> reference_matvec(
      const std::vector<std::int8_t>& input) const;

  /// Cycles to process one input vector bit-serially (8 bit-planes, one
  /// injection wave per input_io-width slice).
  double cycles_per_input_vector() const;

  /// Cycles to replace the full weight tile through the weight I/O.
  double cycles_per_weight_tile() const;

 private:
  CimMacroSpec spec_;
  std::vector<std::int8_t> weights_;  // [input_channels * output_channels]
};

}  // namespace cimtpu::cim
