#pragma once
// Functional model of a CIM-MXU core grid executing a tiled GEMM.
//
// Maps an [m, k] x [k, n] INT8 GEMM onto a grid of CimMacro cores the same
// way the cost model assumes: the stationary operand is tiled into
// core-sized (core_rows x core_cols) tiles; K-tiles accumulate through the
// per-core PSUM buffers (output-stationary), and cores are reloaded through
// their weight I/O between rounds.  Results are bit-exact INT32.
//
// The cost model in cim_mxu.h is validated against this functional path:
// same tiling (tasks = instances * Kt * Nt), same weight traffic, and
// bit-exact outputs vs a reference GEMM.

#include <cstdint>
#include <vector>

#include "cim/cim_macro.h"

namespace cimtpu::cim {

class CimGrid {
 public:
  /// A grid of `grid_rows * grid_cols` cores with the given macro spec.
  CimGrid(int grid_rows, int grid_cols, CimMacroSpec macro_spec = {});

  int cores() const { return grid_rows_ * grid_cols_; }
  const CimMacroSpec& macro_spec() const { return macro_spec_; }

  struct RunStats {
    long long rounds = 0;              ///< weight-reload rounds executed
    long long weight_bytes_written = 0;///< total bytes through weight I/O
    long long tasks = 0;               ///< core-sized tiles processed
  };

  /// Executes C = A x W with A [m, k] and W [k, n], both row-major INT8;
  /// returns C [m, n] INT32 and fills `stats` when non-null.
  std::vector<std::int32_t> gemm(const std::vector<std::int8_t>& a,
                                 const std::vector<std::int8_t>& w, int m,
                                 int k, int n,
                                 RunStats* stats = nullptr);

  /// Reference GEMM.
  static std::vector<std::int32_t> reference(
      const std::vector<std::int8_t>& a, const std::vector<std::int8_t>& w,
      int m, int k, int n);

 private:
  int grid_rows_;
  int grid_cols_;
  CimMacroSpec macro_spec_;
  std::vector<CimMacro> macros_;
};

}  // namespace cimtpu::cim
