#pragma once
// Canonical traffic profiles and deployments shared by the serving
// example, the serving bench, and any future sweep: one definition, so
// the perf-trajectory baseline (bench_serving) always describes the same
// workload the demo (serving_traffic) runs.

#include <cstdint>

#include "serving/serving_sim.h"

namespace cimtpu::serving {

/// Chat-style Zipf traffic: prompts 16..4096 tokens, outputs 4..1024
/// tokens, both Zipf-tailed with alpha 1.05 (short requests common, a
/// heavy tail of long ones).
RequestStreamConfig zipf_chat_stream(std::uint64_t seed,
                                     std::int64_t num_requests,
                                     double arrival_rate);

/// Reference serving deployment: llama2-7b (fits one chip's HBM at INT8
/// and INT4) on the TPUv4i baseline, max batch 32, prefill batch 8.
ServingScenario llama7b_baseline_scenario(int chips, ir::DType dtype);

}  // namespace cimtpu::serving
