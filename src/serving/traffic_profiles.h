#pragma once
// Canonical traffic profiles and deployments shared by the serving
// example, the serving bench, and the golden-metrics regression tests:
// one definition, so the perf-trajectory baseline (bench_serving) and the
// pinned goldens always describe the same workload the demo
// (serving_traffic) runs.

#include <cstdint>
#include <vector>

#include "serving/serving_sim.h"
#include "serving/sweep.h"

namespace cimtpu::serving {

/// Chat-style Zipf traffic: prompts 16..4096 tokens, outputs 4..1024
/// tokens, both Zipf-tailed with alpha 1.05 (short requests common, a
/// heavy tail of long ones).  `priority_classes` > 1 additionally tags
/// each request with a uniform priority class (for kPriorityVictim) from
/// a decoupled rng stream — arrivals and lengths stay bit-identical.
RequestStreamConfig zipf_chat_stream(std::uint64_t seed,
                                     std::int64_t num_requests,
                                     double arrival_rate,
                                     std::int64_t priority_classes = 1);

/// Reference serving deployment: llama2-7b (fits one chip's HBM at INT8
/// and INT4) on the TPUv4i baseline, max batch 32, prefill batch 8.
ServingScenario llama7b_baseline_scenario(int chips, ir::DType dtype);

/// The baseline deployment under deliberate KV pressure: the device KV
/// budget is capped at `kv_budget_tokens` cached tokens so preemption
/// policies actually fire, with `policy` selecting the mechanism and
/// `chunk_tokens` the chunked-prefill budget (0 = whole-prompt prefill).
/// The default 8000 tokens comfortably admits the largest zipf_chat
/// request (4096 prompt + 1024 output) while forcing heavy eviction
/// churn at max_batch 32.
ServingScenario llama7b_pressured_scenario(int chips, ir::DType dtype,
                                           EvictionPolicy policy,
                                           std::int64_t chunk_tokens,
                                           std::int64_t kv_budget_tokens = 8000);

/// The canonical pressured policy study as sweep points: every eviction
/// policy x chunked prefill {off, 512} on one chip, `model` (any dtype)
/// under a `kv_budget_tokens` device budget, all replaying `*requests`
/// (caller-owned, must outlive the sweep).  Shared by bench_serving and
/// serving_traffic so the two binaries always benchmark the SAME grid, in
/// the same (policy-major, chunk-minor) order.
std::vector<SweepPoint> pressured_policy_grid_points(
    const models::TransformerConfig& model,
    const std::vector<Request>* requests,
    std::int64_t kv_budget_tokens = 8000);

/// Canonical multi-tenant overload stream for fairness studies: uniform
/// lengths (prompts 128..256, outputs 64..128 — low variance, so tenant
/// goodput ratios estimate admission shares tightly) at `arrival_rate`
/// req/s split uniformly across `num_tenants` tenants from the decoupled
/// tenant rng stream.  Shared by bench_serving's fairness section, the
/// serving_traffic multi-tenant demo, and the WFQ share tests.
RequestStreamConfig multi_tenant_pressure_stream(std::uint64_t seed,
                                                 std::int64_t num_requests,
                                                 double arrival_rate,
                                                 std::int64_t num_tenants);

/// The canonical 2-tenant fairness deployment: the pressured llama2-7b
/// scenario (2000-token KV budget) with per-tenant admission weights
/// `weights` (index = tenant id) and a `horizon_seconds` simulated-time
/// cut, so the device stays overloaded for the whole measured window and
/// per-tenant goodput reflects the admission policy's share enforcement
/// rather than the traffic mix.  `admission` is a registry name ("fifo"
/// for the head-of-line baseline, "wfq" for weighted fair queueing).
ServingScenario multi_tenant_fairness_scenario(
    ir::DType dtype, const std::string& admission,
    const std::vector<double>& weights, Seconds horizon_seconds,
    std::int64_t kv_budget_tokens = 2000);

/// The canonical fairness study as sweep points: one
/// multi_tenant_fairness_scenario per admission policy in {"fifo",
/// "wfq"}, at `model` (any dtype, budget re-derived in its token-bytes),
/// 3:1 tenant weights, and a 30-simulated-second horizon, all replaying
/// `*requests` (caller-owned, must outlive the sweep).  Shared by
/// bench_serving's "fairness" JSON block and serving_traffic's
/// multi-tenant demo so the two binaries always study the SAME grid.
std::vector<SweepPoint> multi_tenant_fairness_points(
    const models::TransformerConfig& model,
    const std::vector<Request>* requests);

/// The weights / horizon the canonical fairness points use.
inline const std::vector<double>& multi_tenant_fairness_weights() {
  static const std::vector<double> weights = {3.0, 1.0};
  return weights;
}
constexpr Seconds kMultiTenantFairnessHorizon = 30.0;

/// The pool size / prefix length the canonical chatbot stream uses.  The
/// prefix length is deliberately NOT a multiple of the studied block
/// sizes (16, 64), so the shared partial tail block — and its
/// copy-on-write path — is exercised on every full prefix hit.
constexpr std::int64_t kPrefixChatbotPool = 4;
constexpr std::int64_t kPrefixChatbotPrefixLen = 1000;

/// Canonical prefix-heavy chatbot stream for paged-KV prefix-cache
/// studies: every request opens with one of `prefix_pool` shared
/// `prefix_len`-token system prompts (drawn from the decoupled fourth rng
/// stream), followed by a Zipf user turn of 16..512 tokens and a Zipf
/// 16..256-token reply — the workload class where cross-request prefix
/// reuse dominates prefill work.  Shared by bench_serving's
/// "prefix_cache" block, the serving_traffic demo, and the prefix tests.
RequestStreamConfig prefix_chatbot_stream(
    std::uint64_t seed, std::int64_t num_requests, double arrival_rate,
    std::int64_t prefix_pool = kPrefixChatbotPool,
    std::int64_t prefix_len = kPrefixChatbotPrefixLen);

/// The canonical paged-KV deployment for the chatbot stream: the llama2-7b
/// baseline with `kv_block_tokens`-sized pages, prefix caching switched by
/// `enable_prefix_cache`, under a `kv_budget_tokens` device budget tight
/// enough that block reuse matters (default admits the prefix pool plus a
/// working set, ~1/4 of HBM headroom).
ServingScenario prefix_cache_scenario(ir::DType dtype,
                                      bool enable_prefix_cache,
                                      std::int64_t kv_block_tokens = 16,
                                      std::int64_t kv_budget_tokens = 20000);

/// The canonical prefix-cache study as sweep points: caching off/on at
/// block size 16, plus caching on at block 64 (fragmentation tradeoff),
/// all replaying `*requests` (caller-owned, must outlive the sweep).
/// Shared by bench_serving and serving_traffic so the two binaries always
/// study the SAME grid, in the same order.
std::vector<SweepPoint> prefix_cache_grid_points(
    const models::TransformerConfig& model,
    const std::vector<Request>* requests,
    std::int64_t kv_budget_tokens = 20000);

/// The deadlines / horizon / trace size the canonical SLO frontier uses.
/// TTFT 2 s / TPOT 100 ms are interactive-chat targets (DistServe-style);
/// the 30-simulated-second horizon keeps the overloaded cells bounded.
constexpr Seconds kSloTtftDeadline = 2.0;
constexpr Seconds kSloTpotDeadline = 0.1;
constexpr Seconds kSloFrontierHorizon = 30.0;
constexpr std::int64_t kSloFrontierRequests = 400;

/// The arrival rates the canonical SLO frontier sweeps (req/s): from
/// comfortably served through saturation to heavy overload, where
/// admission control separates the policies.
inline const std::vector<double>& slo_frontier_rates() {
  static const std::vector<double> rates = {4.0, 10.0, 25.0};
  return rates;
}

/// Canonical deadline-carrying chat stream for SLO studies: the
/// multi-tenant pressure lengths (uniform prompts 128..256, outputs
/// 64..128 — low variance, so attainment differences reflect scheduling,
/// not length luck) with every request carrying jittered TTFT/TPOT
/// deadlines from the decoupled fifth rng stream.  Shared by
/// bench_serving's "slo_frontier" block, the serving_traffic SLO demo,
/// and the EDF tests.
RequestStreamConfig slo_chat_stream(std::uint64_t seed,
                                    std::int64_t num_requests,
                                    double arrival_rate,
                                    Seconds ttft_deadline_s = kSloTtftDeadline,
                                    Seconds tpot_deadline_s = kSloTpotDeadline);

/// The canonical SLO deployment: the pressured llama2-7b scenario (4000
/// cached tokens — tight enough that queueing delay, not compute, is what
/// blows deadlines under overload) run under `admission` ("fifo" for the
/// head-of-line baseline, "edf" for deadline-driven admission with
/// shedding) to a `horizon_seconds` simulated-time cut.
ServingScenario slo_scenario(ir::DType dtype, const std::string& admission,
                             Seconds horizon_seconds = kSloFrontierHorizon,
                             std::int64_t kv_budget_tokens = 4000);

/// The canonical SLO frontier as a ready-to-run sweep grid: arrival rate
/// (slo_frontier_rates) x admission {"fifo", "edf"} over the slo_scenario
/// deployment replaying slo_chat_stream traffic (one shared trace per
/// rate, generated by run_serving_sweep).  Shared by bench_serving's
/// "slo_frontier" block and serving_traffic's SLO demo so the two
/// binaries always study the SAME grid, in the same (rate-major) order.
ServingSweep slo_frontier_sweep(const models::TransformerConfig& model,
                                std::uint64_t seed);

/// Production-shaped diurnal multi-tenant mix: one kDiurnal stream per
/// tenant, peaks staggered evenly around the day/night cycle (tenant t
/// gets phase 2*pi*t/num_tenants — time-zone-offset tenant populations),
/// merged into one dense-id trace sorted by arrival.  Each per-tenant
/// stream uses the multi-tenant pressure lengths and a decoupled seed, so
/// adding a tenant never perturbs the others' traffic.
std::vector<Request> diurnal_tenant_mix_requests(std::uint64_t seed,
                                                 std::int64_t requests_per_tenant,
                                                 double per_tenant_rate,
                                                 std::int64_t num_tenants,
                                                 Seconds period_s = 60.0,
                                                 double amplitude = 0.8);

/// Flash-crowd stream: the SLO chat lengths under a two-state bursty
/// arrival process with a 16x burst rate for 5% of the time — the
/// incident-shaped traffic that deadline-aware shedding is for.
RequestStreamConfig flash_crowd_stream(std::uint64_t seed,
                                       std::int64_t num_requests,
                                       double arrival_rate);

/// The fault seed / horizon the canonical fault storm uses.  The seed is
/// fixed (and distinct from workload seeds) so the pinned resilience test
/// and both binaries replay the SAME storm.
constexpr std::uint64_t kFaultStormSeed = 1234;
constexpr Seconds kFaultStormHorizon = 30.0;

/// The canonical fault-storm deployment (schema-v8 "resilience" block):
/// the SLO scenario (EDF admission, 30 s horizon) under a sustained
/// multi-failure storm — transient stalls, ~1/s KV-block losses restored
/// from the host shadow when they fit, and occasional full device
/// restarts — with the degradation detector armed.  `recovery` toggles
/// FaultConfig::recovery_enabled: the on/off pair IS the resilience
/// frontier (recovery-on strictly wins availability and SLO goodput on
/// the pinned storm).
ServingScenario fault_storm_scenario(ir::DType dtype, bool recovery,
                                     Seconds horizon_seconds = kFaultStormHorizon);

/// The deployment shape the canonical cluster studies (schema-v9
/// "cluster" block) use: 4 single-chip replicas, with 1 of them split off
/// for prefill in the disaggregated cells.  The router study's prefix
/// pool is 4x the replica count, so affinity routing has real families to
/// keep together while round-robin necessarily scatters each family
/// across every replica's cache.
constexpr int kClusterReplicas = 4;
constexpr int kClusterPrefillReplicas = 1;
constexpr std::int64_t kClusterPrefixPool = 16;
constexpr std::int64_t kClusterTenants = 8;
constexpr std::int64_t kClusterRouterRequests = 400;
constexpr double kClusterRouterRate = 24.0;
constexpr std::int64_t kClusterDisaggRequests = 800;

/// The router policies the canonical router study compares, in row order
/// (round_robin first — the baseline the affinity pin compares against).
inline const std::vector<const char*>& cluster_router_policy_order() {
  static const std::vector<const char*> order = {
      "round_robin", "least_loaded", "prefix_affinity", "tenant_sticky"};
  return order;
}

/// The arrival rates the canonical disaggregation study sweeps (req/s):
/// the top rate overloads 4 colocated replicas enough that decode-batch
/// interference and KV admission stalls dominate colocated TTFT — the
/// regime prefill/decode separation is for.
inline const std::vector<double>& cluster_disagg_rates() {
  static const std::vector<double> rates = {8.0, 16.0, 24.0};
  return rates;
}

/// Canonical cluster routing traffic: the prefix-heavy chatbot stream at
/// a kClusterPrefixPool-prompt pool, additionally tagged with
/// kClusterTenants tenants from the decoupled tenant rng stream (so
/// tenant_sticky has real tenants to pin; arrivals, lengths, and prefix
/// assignments stay bit-identical to the untagged stream).
RequestStreamConfig cluster_chatbot_stream(std::uint64_t seed);

/// The canonical router study as sweep points: one kClusterReplicas-way
/// cluster cell per policy in cluster_router_policy_order(), every
/// replica running the paged-KV prefix-caching deployment
/// (prefix_cache_scenario, caching ON), all replaying `*requests`
/// (caller-owned, must outlive the sweep).  Shared by bench_serving's
/// "cluster" block and serving_traffic's --cluster demo so the two
/// binaries always study the SAME grid, in the same order.
std::vector<SweepPoint> cluster_router_grid_points(
    const models::TransformerConfig& model,
    const std::vector<Request>* requests);

/// The canonical disaggregation study as a ready-to-run sweep: arrival
/// rate (cluster_disagg_rates) x {colocated, disaggregated} over
/// kClusterReplicas replicas of the llama2-7b baseline replaying
/// zipf-chat traffic (one shared trace per rate).  In the disaggregated
/// cells kClusterPrefillReplicas replicas run prompts only and stream
/// finished KV to the remaining decode replicas over the modeled ICI
/// fabric.  Shared by bench_serving and serving_traffic.
ServingSweep cluster_disaggregation_sweep(
    const models::TransformerConfig& model, std::uint64_t seed);

}  // namespace cimtpu::serving
