#include "serving/serving_sim.h"

#include "serving/arena.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <deque>
#include <limits>
#include <map>
#include <numeric>
#include <unordered_map>
#include <unordered_set>

#include "arch/chip.h"
#include "common/math_util.h"
#include "common/status.h"
#include "parallel/multi_chip.h"
#include "sim/simulator.h"

namespace cimtpu::serving {

void ServingScenario::validate() const {
  CIMTPU_CONFIG_CHECK(chips >= 1, "serving needs >= 1 chip");
  CIMTPU_CONFIG_CHECK(model.num_layers >= chips,
                      "fewer layers than pipeline stages");
  CIMTPU_CONFIG_CHECK(tensor_parallel_ways >= 1,
                      "tensor_parallel_ways must be >= 1, got "
                          << tensor_parallel_ways);
  CIMTPU_CONFIG_CHECK(tensor_parallel_ways == 1 || chips == 1,
                      "tensor parallelism (" << tensor_parallel_ways
                                             << "-way) cannot combine with "
                                                "pipeline stages (chips="
                                             << chips << ")");
  CIMTPU_CONFIG_CHECK(host_link_bandwidth > 0,
                      "host link bandwidth must be positive");
  CIMTPU_CONFIG_CHECK(host_pool_capacity >= 0,
                      "host pool capacity must be >= 0");
  CIMTPU_CONFIG_CHECK(max_sim_seconds >= 0,
                      "max_sim_seconds must be >= 0 (0 = run to drain)");
  CIMTPU_CONFIG_CHECK(kv_budget_override >= 0,
                      "kv_budget_override must be >= 0 (0 = derive from HBM "
                      "headroom), got " << format_bytes(kv_budget_override));
  scheduler.validate();
  trace.validate();
  fault.validate();
}

namespace {

/// Per-request bookkeeping across the run.
struct RequestTrace {
  Seconds arrival = 0;
  std::int64_t output_len = 0;
  std::int64_t total_tokens = 0;  ///< prompt + output (outstanding-load gauge)
  Seconds first_token = -1;  ///< < 0 until the first token is emitted
  Seconds completion = -1;
  bool shed = false;  ///< dropped by admission control (never completes)
  Seconds last_fault = -1;  ///< open repair interval: a fault struck and
                            ///< the request has not recovered yet
  int retry_attempts = 0;   ///< fault re-admissions consumed (vs the budget)
};

/// A fault-evicted request waiting out its exponential backoff before
/// re-entering admission.
struct PendingRetry {
  Request request;
  Seconds ready_time = 0;
  int attempt = 0;  ///< 1-based re-admission attempt this entry represents
  bool emitted_first_token = false;
};

/// Per-tenant accumulator for the schema-v4 breakdown.
struct TenantAccum {
  std::int64_t num_requests = 0;
  std::int64_t completed = 0;
  std::int64_t generated_tokens = 0;
  std::vector<double> ttft;
  std::vector<double> e2e;
};

/// The model whose shapes the cost cache simulates: the TP shard when
/// tensor parallelism is on (its "-tpN" name keys a distinct shared-cache
/// signature automatically), the full model otherwise.
models::TransformerConfig costed_model_for(const ServingScenario& scenario) {
  return scenario.tensor_parallel_ways > 1
             ? parallel::shard_tensor_parallel(scenario.model,
                                               scenario.tensor_parallel_ways)
             : scenario.model;
}

SharedStepCostCache::Store* shared_store_for(
    const ServingScenario& scenario, const models::TransformerConfig& costed,
    SharedStepCostCache* shared_costs) {
  return shared_costs == nullptr
             ? nullptr
             : shared_costs->store(cost_cache_signature(
                   scenario.chip_config, costed,
                   scenario.scheduler.seqlen_bucket));
}

Bytes resolve_kv_budget(const ServingScenario& scenario,
                        const arch::TpuChip& chip,
                        const models::TransformerConfig& costed) {
  if (scenario.kv_budget_override > 0) return scenario.kv_budget_override;
  if (scenario.tensor_parallel_ways > 1) {
    // Each shard holds 1/ways of the weights and 1/ways of every token's
    // KV (heads sharded), so the cluster-wide budget is ways times one
    // shard's HBM headroom — the whole point of TP serving: models whose
    // FULL weights exceed one chip's HBM still leave KV room.
    return static_cast<double>(scenario.tensor_parallel_ways) *
           KvCacheManager::hbm_kv_budget(
               costed, chip.memory().spec().hbm.capacity, /*chips=*/1);
  }
  return KvCacheManager::hbm_kv_budget(
      scenario.model, chip.memory().spec().hbm.capacity, scenario.chips);
}

SchedulerConfig effective_scheduler_config(const ServingScenario& scenario) {
  // Degraded-mode EDF slack rides the fault config; inject it into the
  // admission config before the policy is constructed.  Faults off leaves
  // the scheduler config byte-identical to the scenario's.
  SchedulerConfig config = scenario.scheduler;
  if (scenario.fault.enabled &&
      scenario.fault.degraded_extra_shed_slack_s > 0) {
    config.admission.edf_degraded_extra_slack_s =
        scenario.fault.degraded_extra_shed_slack_s;
  }
  return config;
}

}  // namespace

struct ServingEngine::Impl {
  ServingScenario scenario;
  std::chrono::steady_clock::time_point wall_start;
  arch::TpuChip chip;
  sim::Simulator simulator;
  models::TransformerConfig costed_model;
  StepCostCache costs;
  KvCacheManager kv_cache;
  ContinuousBatchScheduler scheduler;

  // Observability: the trace sink attaches only when event tracing or
  // time-series sampling is on — otherwise the scheduler's trace pointer
  // stays null and the loop below skips every trace branch (the
  // zero-allocation-when-disabled contract).  `tracing`/`sampling` are
  // hoisted so the hot loop branches on locals, never on config fields.
  ServingTrace local_trace;
  ServingTrace* trace;
  TimeSeriesSampler sampler;
  bool tracing;
  bool sampling;

  std::int64_t layers;
  std::int64_t stage_layers;
  int boundaries;
  double activation_elem_bytes;
  int tp_ways;
  double tp_scale;  ///< chip count each layer's work/energy replicates over

  std::vector<Request> requests;  ///< injected, arrival-sorted
  std::unordered_map<std::int64_t, RequestTrace> traces;
  std::unordered_set<std::int64_t> prefilled_ids;  ///< inject_prefilled ids

  ServingMetrics metrics;
  FixedBucketHistogram* step_latency_histogram;
  FixedBucketHistogram* step_batch_histogram;

  Seconds now = 0;
  Seconds busy_time = 0;  ///< MXU busy time summed over all stages
  double fragmentation_sum = 0;  ///< per-step internal-fragmentation samples
  std::size_t next_arrival = 0;
  bool horizon_hit = false;
  bool finished = false;

  std::int64_t outstanding_tokens = 0;
  bool log_completions = false;
  std::vector<std::pair<std::int64_t, Seconds>> completed_log;

  // --- Fault injection state (serving/fault.h) ----------------------------
  // All of it is consulted only behind `faults_on`; the fault rngs are
  // dedicated streams, so the off path is bit-identical to a build without
  // the subsystem.
  bool faults_on;
  FaultProcess fault_process;
  DegradationController degrade;
  FaultStats fault_stats;
  std::deque<PendingRetry> retry_queue;
  std::vector<double> repair_times;  ///< MTTR samples (seconds)
  Seconds stall_until = -1;          ///< active stall window end
  std::int64_t fault_sheds = 0;
  int degraded_max_batch;

  StepArena arena;         // per-run step scratch (see serving/arena.h)
  StepRecord& step;        // = arena.record(); reused across all steps —
                           // warm()ed to steady-state capacity, so the
                           // serving loop allocates nothing per step

  Impl(const ServingScenario& scenario_in, SharedStepCostCache* shared_costs,
       ServingTrace* trace_out)
      : scenario(scenario_in),
        wall_start(std::chrono::steady_clock::now()),
        chip(scenario.chip_config),
        simulator(chip),
        costed_model(costed_model_for(scenario)),
        costs(simulator, costed_model, scenario.scheduler.seqlen_bucket,
              shared_store_for(scenario, costed_model, shared_costs)),
        kv_cache(resolve_kv_budget(scenario, chip, costed_model),
                 KvCacheManager::token_bytes(scenario.model),
                 scenario.eviction, scenario.host_pool_capacity,
                 scenario.scheduler.kv_block_tokens,
                 scenario.scheduler.enable_prefix_cache),
        scheduler(effective_scheduler_config(scenario), &kv_cache),
        trace(trace_out != nullptr ? trace_out : &local_trace),
        sampler(scenario.trace.sample_interval),
        tracing(scenario.trace.enabled),
        sampling(sampler.enabled()),
        layers(scenario.model.num_layers),
        stage_layers(ceil_div<std::int64_t>(layers, scenario.chips)),
        boundaries(scenario.chips - 1),
        activation_elem_bytes(ir::dtype_bytes(scenario.model.dtype) *
                              static_cast<double>(scenario.model.d_model)),
        tp_ways(scenario.tensor_parallel_ways),
        tp_scale(static_cast<double>(scenario.tensor_parallel_ways)),
        faults_on(scenario.fault.enabled),
        fault_process(scenario.fault),
        degrade(scenario.fault),
        degraded_max_batch(std::max(
            1,
            static_cast<int>(static_cast<double>(scenario.scheduler.max_batch) *
                             scenario.fault.degraded_max_batch_fraction))),
        step(arena.record()) {
    arena.warm(scenario.scheduler.max_batch,
               scenario.scheduler.max_prefill_batch);
    *trace = ServingTrace(scenario.trace);
    if (tracing || sampling) scheduler.set_trace_sink(trace);
    metrics.chips = scenario.chips * tp_ways;

    // Registry instruments resolved ONCE (map references are stable), so
    // per-step observation is an increment — no name lookups in the loop.
    // Always on: they depend only on the deterministic step sequence, so
    // metrics stay bit-identical with tracing on or off.
    step_latency_histogram = &metrics.registry.histogram(
        "engine.step_latency_s", exponential_bounds(1e-4, 2.0, 20));
    step_batch_histogram = &metrics.registry.histogram(
        "engine.step_batch", exponential_bounds(1, 2.0, 10));
  }

  void feed_arrivals(Seconds up_to) {
    while (next_arrival < requests.size() &&
           requests[next_arrival].arrival_time <= up_to) {
      const Request& request = requests[next_arrival];
      CIMTPU_CONFIG_CHECK(
          next_arrival == 0 ||
              requests[next_arrival - 1].arrival_time <= request.arrival_time,
          "request trace must be sorted by arrival time");
      RequestTrace request_trace;
      request_trace.arrival = request.arrival_time;
      request_trace.output_len = request.output_len;
      request_trace.total_tokens = request.prompt_len + request.output_len;
      traces[request.id] = request_trace;
      if (tracing) trace->on_arrive(request);
      if (!prefilled_ids.empty() && prefilled_ids.count(request.id) > 0) {
        scheduler.enqueue_prefilled(request);
      } else {
        scheduler.enqueue(request);
      }
      ++next_arrival;
    }
  }

  // Removes a fault-struck request from the engine and either schedules a
  // backoff re-admission (recovery on, budget left) or sheds it with
  // cause "fault".  Opens the request's repair interval for MTTR.
  void fault_evict(std::int64_t request_id, Seconds fault_time) {
    Request request;
    ContinuousBatchScheduler::ResidentInfo progress;
    const bool removed =
        scheduler.remove_for_fault(request_id, &request, &progress);
    CIMTPU_CHECK(removed);
    fault_stats.wasted_recompute_tokens +=
        (progress.prefilled - progress.prefix_skipped) + progress.generated;
    RequestTrace& request_trace = traces.at(request_id);
    request_trace.last_fault = fault_time;
    if (scenario.fault.recovery_enabled &&
        request_trace.retry_attempts < scenario.fault.retry_budget) {
      request_trace.retry_attempts += 1;
      const Seconds backoff = std::min(
          scenario.fault.retry_backoff_base_s *
              std::pow(2.0,
                       static_cast<double>(request_trace.retry_attempts - 1)),
          scenario.fault.retry_backoff_max_s);
      fault_stats.retries += 1;
      retry_queue.push_back(PendingRetry{request, fault_time + backoff,
                                         request_trace.retry_attempts,
                                         request_trace.first_token >= 0});
    } else {
      request_trace.shed = true;
      request_trace.last_fault = -1;  // dropped, never repaired: not in MTTR
      fault_stats.dropped += 1;
      fault_sheds += 1;
      outstanding_tokens -= request_trace.total_tokens;
      if (tracing) trace->on_shed_fault(request_id, fault_time);
    }
  }

  void poll_faults() {
    // Deliver every fault event due by the current clock, in time order
    // (events landing mid-step surface here, stamped with their own event
    // time).
    FaultEvent event;
    while (fault_process.poll(now, &event)) {
      switch (event.type) {
        case FaultType::kStall: {
          stall_until = std::max(stall_until,
                                 event.time + scenario.fault.stall_duration_s);
          fault_stats.stalls += 1;
          degrade.on_fault(event.time);
          if (tracing) {
            trace->on_fault(-1, static_cast<std::int64_t>(FaultType::kStall),
                            event.time, 0, scenario.fault.stall_duration_s);
          }
          break;
        }
        case FaultType::kKvLoss: {
          const std::int64_t resident =
              static_cast<std::int64_t>(scheduler.running_count());
          if (resident == 0) break;  // struck an empty device: no-op
          fault_stats.kv_losses += 1;
          degrade.on_fault(event.time);
          const auto info = scheduler.resident_info(static_cast<std::size_t>(
              fault_process.pick_victim(resident)));
          const std::int64_t computed =
              (info.prefilled - info.prefix_skipped) + info.generated;
          if (tracing) {
            trace->on_fault(info.request_id,
                            static_cast<std::int64_t>(FaultType::kKvLoss),
                            event.time, computed, 0);
          }
          if (scenario.fault.recovery_enabled &&
              scenario.fault.kv_restore ==
                  FaultConfig::KvRestoreMode::kHostRestore) {
            Bytes bytes = 0;
            if (scheduler.restore_resident_from_host(info.request_id,
                                                     &bytes)) {
              // In-place repair: the engine pays the PCIe re-fetch before
              // the next step runs.
              const Seconds restore_time =
                  bytes / scenario.host_link_bandwidth;
              now += restore_time;
              fault_stats.host_restores += 1;
              fault_stats.host_restore_bytes += bytes;
              repair_times.push_back(restore_time);
              if (tracing) {
                trace->on_recover(info.request_id, /*mechanism=*/1,
                                  event.time, bytes, 0);
              }
              break;
            }
          }
          fault_evict(info.request_id, event.time);
          break;
        }
        case FaultType::kDeviceFailure: {
          fault_stats.device_failures += 1;
          degrade.on_fault(event.time);
          // Every resident loses its device KV; swapped-out sequences
          // survive in the host pool.  Snapshot ids first — eviction
          // mutates the resident order.
          std::vector<std::int64_t> victims;
          std::int64_t lost_tokens = 0;
          victims.reserve(scheduler.running_count());
          for (std::size_t i = 0; i < scheduler.running_count(); ++i) {
            const auto info = scheduler.resident_info(i);
            victims.push_back(info.request_id);
            lost_tokens +=
                (info.prefilled - info.prefix_skipped) + info.generated;
          }
          if (tracing) {
            trace->on_fault(
                -1, static_cast<std::int64_t>(FaultType::kDeviceFailure),
                event.time, lost_tokens, scenario.fault.device_restart_s);
          }
          for (std::int64_t id : victims) fault_evict(id, event.time);
          kv_cache.drop_cached_blocks();  // prefix cache does not survive
          // Downtime: the engine is back at the end of the restart epoch
          // (clamped to the horizon like the idle-advance below).
          Seconds resume = event.time + scenario.fault.device_restart_s;
          if (scenario.max_sim_seconds > 0) {
            resume = std::min(resume, scenario.max_sim_seconds);
          }
          now = std::max(now, resume);
          break;
        }
      }
    }
    if (degrade.enabled() && degrade.update(now)) {
      const bool entering = degrade.degraded();
      scheduler.set_degraded(entering, degraded_max_batch);
      kv_cache.set_prefix_admission_paused(
          entering && scenario.fault.degrade_pause_prefix_cache);
      if (entering) {
        fault_stats.degrade_enters += 1;
      } else {
        fault_stats.degrade_exits += 1;
      }
      if (tracing) trace->on_degrade(entering, now);
    }
    // Backoff expiry: re-enter failed requests through admission.  Ready
    // times are not monotone in queue order (backoff grows with each
    // request's own attempt count), so scan the whole queue.
    for (auto it = retry_queue.begin(); it != retry_queue.end();) {
      if (it->ready_time <= now) {
        scheduler.requeue_after_fault(it->request, it->emitted_first_token);
        if (tracing) {
          trace->on_recover(it->request.id, /*mechanism=*/0, now, 0,
                            it->attempt);
        }
        it = retry_queue.erase(it);
      } else {
        ++it;
      }
    }
  }

  bool work_pending() const {
    return next_arrival < requests.size() || !scheduler.idle() ||
           !retry_queue.empty();
  }

  bool pump(Seconds until) {
    for (;;) {
      if (finished || horizon_hit) return false;
      if (!work_pending()) return false;
      // Horizon cut (fairness studies): stop the engine at the configured
      // simulated second; whatever is in flight never completes.
      if (scenario.max_sim_seconds > 0 && now >= scenario.max_sim_seconds) {
        horizon_hit = true;
        return false;
      }
      if (now >= until) return true;
      if (faults_on) poll_faults();
      feed_arrivals(now);
      if (scheduler.idle()) {
        // Nothing to do until the next arrival or backoff expiry — but
        // never advance past the horizon: an event gap straddling it must
        // leave the final clock (and every shed timestamp) AT the horizon,
        // not at the far side of the gap.  The caller's stop point is a
        // jump target too: a cluster driver injects the next arrival there.
        Seconds next_time = std::numeric_limits<double>::infinity();
        if (next_arrival < requests.size()) {
          next_time = requests[next_arrival].arrival_time;
        }
        for (const PendingRetry& retry : retry_queue) {
          next_time = std::min(next_time, retry.ready_time);
        }
        if (scenario.max_sim_seconds > 0) {
          next_time = std::min(next_time, scenario.max_sim_seconds);
        }
        next_time = std::min(next_time, until);
        now = std::max(now, next_time);
        continue;
      }

      std::int64_t kv_alloc_before = 0;
      std::int64_t kv_reclaim_before = 0;
      if (tracing) {
        // Mid-step scheduler events are stamped with this step's start
        // time; KV churn is the delta across the step.
        trace->begin_step(metrics.total_steps, now);
        kv_alloc_before = kv_cache.blocks_allocated_total();
        kv_reclaim_before = kv_cache.cached_blocks_reclaimed_total();
      }
      scheduler.set_time(now);  // rate-capped admission reads the sim clock
      const bool stepped = scheduler.next_step(&step);
      // Deadline sheds (EDF admission control) surface here whether or not
      // a step ran; a shed request arrived but will never be admitted.
      for (std::int64_t id : step.shed_ids) {
        RequestTrace& request_trace = traces.at(id);
        request_trace.shed = true;
        outstanding_tokens -= request_trace.total_tokens;
      }
      if (!stepped) {
        // Admission control shed every waiting request: nothing ran and
        // the clock is unchanged.  No kStep event is recorded (no step
        // happened); the loop idle-advances to the next arrival or exits.
        continue;
      }

      const bool is_prefill = step.kind == StepRecord::Kind::kPrefill;
      // Per-sequence costing: each participant's attention at its own
      // bucketed KV length (see cost_step).
      const StepCost layer_cost = cost_step(costs, step);

      // Inter-stage activation handoff: the moving rows of this step cross
      // each pipeline boundary once (prefill moves every chunk token,
      // decode one token per participant).
      const std::int64_t row_count =
          is_prefill ? std::accumulate(step.chunk_lens.begin(),
                                       step.chunk_lens.end(), std::int64_t{0})
                     : step.batch;
      const double rows = static_cast<double>(row_count);
      const Bytes boundary_bytes = rows * activation_elem_bytes;
      const Seconds transfer =
          boundaries > 0 ? chip.ici().p2p_time(boundary_bytes) : 0.0;

      // KV pages swapped to/from the host pool this step serialize with
      // the step on the PCIe-class link.
      const Seconds swap_time = step.swap_bytes / scenario.host_link_bandwidth;

      // Steady-state engine cadence: the bottleneck stage (ceiling share of
      // the layers) plus its handoff.  Tokens emitted this step
      // additionally traverse the remaining stages before leaving the
      // pipeline.
      Seconds stage_time =
          static_cast<double>(stage_layers) * layer_cost.latency + transfer;
      if (tp_ways > 1) {
        // Megatron-style TP: every layer pays two ring all-reduces of this
        // step's [rows, d_model] activation across the shards
        // (parallel/multi_chip.h semantics, FULL-model d_model).
        const Bytes ar_bytes = parallel::tensor_parallel_allreduce_bytes(
            scenario.model, row_count);
        stage_time += static_cast<double>(layers) *
                      chip.ici().all_reduce_time(ar_bytes, tp_ways);
      }
      // A step starting inside a stall window pays the configured latency
      // multiplier on every stage (and hence on the pipeline traversal too).
      if (faults_on && now < stall_until) {
        stage_time *= scenario.fault.stall_latency_multiplier;
      }
      const Seconds emit_extra = static_cast<double>(boundaries) * stage_time;

      const Seconds step_latency = stage_time + swap_time;
      now += step_latency;
      const Seconds emit_time = now + emit_extra;

      metrics.total_steps += 1;
      if (is_prefill) {
        metrics.prefill_steps += 1;
      } else {
        metrics.decode_steps += 1;
      }
      step_latency_histogram->observe(step_latency);
      step_batch_histogram->observe(static_cast<double>(step.batch));
      if (tracing) {
        trace->end_step(is_prefill, step.batch, now, step_latency,
                        kv_cache.referenced_blocks(),
                        kv_cache.blocks_allocated_total() - kv_alloc_before,
                        kv_cache.cached_blocks_reclaimed_total() -
                            kv_reclaim_before);
      }
      // Paged-KV gauge: last-block waste across resident mappings, sampled
      // once per engine step (identically 0 at block size 1).
      fragmentation_sum += kv_cache.internal_fragmentation();
      // TP shards replicate every layer's execution (and hence busy time
      // and energy) across `ways` chips; ways == 1 multiplies by exactly
      // 1.0, bit-identical to the pre-TP accounting.
      busy_time += static_cast<double>(layers) * layer_cost.mxu_busy_time *
                   tp_scale;
      metrics.mxu_energy +=
          static_cast<double>(layers) * layer_cost.mxu_energy * tp_scale;
      metrics.total_energy +=
          static_cast<double>(layers) * layer_cost.total_energy * tp_scale;
      if (boundaries > 0) {
        metrics.total_energy += static_cast<double>(boundaries) *
                                chip.ici().p2p_energy(boundary_bytes);
      }

      for (std::int64_t id : step.first_token_ids) {
        RequestTrace& request_trace = traces.at(id);
        // Preempted-and-recomputed requests already streamed their first
        // token to the user; keep the original TTFT.
        if (request_trace.first_token < 0) {
          request_trace.first_token = emit_time;
          // The trace's kFirstToken is exactly the metrics' TTFT reference
          // point — recorded once, re-emissions after recompute excluded —
          // so timelines reconcile with ServingMetrics identically.
          if (tracing) trace->on_first_token(id, emit_time);
        }
      }
      for (std::int64_t id : step.finished_ids) {
        RequestTrace& request_trace = traces.at(id);
        // Each step's traversal extra is derived from that step's own
        // stage time, so a cheap decode step after an expensive prefill
        // step could nominally "exit" earlier in absolute time.  Real
        // pipelines preserve per-request emission order: clamp so
        // completion >= first token.
        request_trace.completion =
            std::max(emit_time, request_trace.first_token);
        metrics.completed += 1;
        metrics.generated_tokens += request_trace.output_len;
        metrics.makespan = std::max(metrics.makespan, request_trace.completion);
        outstanding_tokens -= request_trace.total_tokens;
        if (log_completions) {
          completed_log.emplace_back(id, request_trace.completion);
        }
        if (faults_on && request_trace.last_fault >= 0) {
          // A recompute repair closes when the re-admitted request finally
          // completes — that whole span is the outage the user saw.
          repair_times.push_back(request_trace.completion -
                                 request_trace.last_fault);
          request_trace.last_fault = -1;
        }
        if (tracing) {
          trace->on_finish(id, request_trace.completion,
                           request_trace.output_len);
        }
      }

      if (sampling && sampler.due(now)) {
        TimeSample sample;
        sample.time = now;
        sample.step = metrics.total_steps;
        sample.queue_depth =
            static_cast<std::int64_t>(scheduler.waiting_count());
        sample.resident_sequences =
            static_cast<std::int64_t>(scheduler.running_count());
        sample.resident_decoders = scheduler.resident_decoder_count();
        sample.swapped_sequences =
            static_cast<std::int64_t>(scheduler.swapped_count());
        sample.kv_referenced_blocks = kv_cache.referenced_blocks();
        sample.kv_occupied_blocks = kv_cache.occupied_blocks();
        sample.kv_capacity_blocks = kv_cache.capacity_blocks();
        sample.kv_internal_fragmentation = kv_cache.internal_fragmentation();
        sample.prefix_hit_rate = scheduler.counters().prefix_hit_rate();
        const auto& tenants = trace->tenant_admitted_tokens();
        sample.tenant_admitted_tokens.assign(tenants.begin(), tenants.end());
        sampler.record(std::move(sample));
      }
    }
  }

  ServingMetrics finish() {
    CIMTPU_CHECK_MSG(!finished, "ServingEngine::finish called twice");
    finished = true;
    metrics.num_requests = static_cast<std::int64_t>(requests.size());
    metrics.counters = scheduler.counters();
    metrics.counters.shed_fault = fault_sheds;  // driver-owned shed cause
    metrics.sim_end_seconds = now;
    // Horizon-cut runs shed whatever arrived but never completed —
    // waiting, in flight, it makes no difference: the horizon ended its
    // story.  The counter advances UNCONDITIONALLY (metrics and traces
    // must agree); tracing only adds the terminal event so every traced
    // request has one.  Requests already shed by admission control got
    // their event (and their shed_deadline count) at shed time and are
    // skipped here.
    if (scenario.max_sim_seconds > 0) {
      for (const Request& request : requests) {
        const auto trace_it = traces.find(request.id);
        if (trace_it == traces.end()) continue;  // never arrived
        const RequestTrace& request_trace = trace_it->second;
        if (request_trace.completion >= 0 || request_trace.shed) continue;
        metrics.counters.shed_horizon += 1;
        if (tracing) trace->on_shed(request.id, now);
      }
    }
    metrics.preemptions = metrics.counters.total_preemptions();
    metrics.prefix_hit_rate = metrics.counters.prefix_hit_rate();
    if (metrics.total_steps > 0) {
      metrics.kv_internal_fragmentation =
          fragmentation_sum / static_cast<double>(metrics.total_steps);
    }

    // --- Distributional rollups --------------------------------------------
    std::vector<double> ttft, tpot, e2e;
    ttft.reserve(traces.size());
    tpot.reserve(traces.size());
    e2e.reserve(traces.size());
    std::map<std::int64_t, TenantAccum> tenant_accums;  // ascending tenant id
    std::int64_t arrived = 0;
    std::int64_t slo_tokens = 0;  ///< output tokens of deadline-meeting
                                  ///< requests
    // Iterate requests (not the hash map) for platform-independent order.
    for (const Request& request : requests) {
      const auto trace_it = traces.find(request.id);
      if (trace_it == traces.end()) continue;  // never arrived (horizon cut)
      arrived += 1;
      // The accumulator (and hence the tenant's metrics row / Jain entry)
      // exists only once the tenant has a request that actually ARRIVED
      // within the simulated window — a tenant whose traffic all lands
      // past the horizon never participated and must not drag the index
      // down.
      TenantAccum& accum = tenant_accums[request.tenant_id];
      accum.num_requests += 1;
      const RequestTrace& request_trace = trace_it->second;
      // TTFT is determined the moment the first token leaves the pipeline,
      // so horizon-cut runs keep every emitted first token in the TTFT
      // sample — dropping still-in-flight requests would censor exactly
      // the slow admissions an overload study is trying to measure.
      // (Without a horizon every fed request completes, so this changes
      // nothing.)
      if (request_trace.first_token >= 0) {
        ttft.push_back(request_trace.first_token - request_trace.arrival);
        accum.ttft.push_back(request_trace.first_token -
                             request_trace.arrival);
      }
      if (request_trace.completion < 0) continue;  // shed or cut: misses SLO
      e2e.push_back(request_trace.completion - request_trace.arrival);
      // Disaggregated decode replicas complete requests whose first token
      // streamed on the PREFILL replica (first_token < 0 locally): their
      // stitched TPOT belongs to the cluster rollup, never to this sample.
      if (request_trace.output_len > 1 && request_trace.first_token >= 0) {
        tpot.push_back((request_trace.completion - request_trace.first_token) /
                       static_cast<double>(request_trace.output_len - 1));
      }
      // SLO verdict: completed AND every deadline the request carries
      // holds.  Deadline-free completed requests meet vacuously, so
      // deadline-free streams report attainment 1.0 and
      // slo_goodput == goodput.
      bool met = true;
      if (request.ttft_deadline > 0) {
        met = request_trace.first_token - request_trace.arrival <=
              request.ttft_deadline;
      }
      if (met && request.tpot_deadline > 0 && request_trace.output_len > 1) {
        met = (request_trace.completion - request_trace.first_token) /
                  static_cast<double>(request_trace.output_len - 1) <=
              request.tpot_deadline;
      }
      if (met) {
        metrics.slo_met += 1;
        slo_tokens += request_trace.output_len;
      }
      accum.completed += 1;
      accum.generated_tokens += request_trace.output_len;
      accum.e2e.push_back(request_trace.completion - request_trace.arrival);
    }
    metrics.ttft = summarize_latencies(ttft);
    metrics.tpot = summarize_latencies(tpot);
    metrics.e2e = summarize_latencies(e2e);
    if (arrived > 0) {
      metrics.slo_attainment = static_cast<double>(metrics.slo_met) /
                               static_cast<double>(arrived);
      metrics.availability = static_cast<double>(metrics.completed) /
                             static_cast<double>(arrived);
    }

    // --- Resilience rollup (schema-v8) -------------------------------------
    metrics.fault = fault_stats;
    metrics.wasted_recompute_tokens = fault_stats.wasted_recompute_tokens;
    metrics.retries_total = fault_stats.retries;
    if (!repair_times.empty()) {
      metrics.mttr_seconds =
          std::accumulate(repair_times.begin(), repair_times.end(), 0.0) /
          static_cast<double>(repair_times.size());
    }

    // --- Per-tenant breakdown (schema-v4) ----------------------------------
    // Weights resolve by the tenant id the config actually names
    // (TenantShare::tenant_id, index-bound when left at -1) — the SAME
    // resolution WFQ admission uses — so sparse or non-contiguous tenant
    // ids can never make Jain normalization and enforcement disagree.
    // Tenants the config does not name weigh 1.
    const AdmissionConfig& admission_config = scenario.scheduler.admission;
    std::vector<double> normalized_goodput;
    normalized_goodput.reserve(tenant_accums.size());
    for (const auto& [tenant_id, accum] : tenant_accums) {
      TenantMetrics tenant;
      tenant.tenant_id = tenant_id;
      tenant.weight = admission_config.share_for(tenant_id).weight;
      tenant.num_requests = accum.num_requests;
      tenant.completed = accum.completed;
      tenant.generated_tokens = accum.generated_tokens;
      tenant.ttft = summarize_latencies(accum.ttft);
      tenant.e2e = summarize_latencies(accum.e2e);
      if (metrics.makespan > 0) {
        tenant.goodput_tokens_per_second =
            static_cast<double>(accum.generated_tokens) / metrics.makespan;
      }
      normalized_goodput.push_back(tenant.goodput_tokens_per_second /
                                   tenant.weight);
      metrics.tenants.push_back(std::move(tenant));
    }
    if (metrics.tenants.size() > 1) {
      metrics.jain_fairness = jain_fairness_index(normalized_goodput);
    }

    if (metrics.makespan > 0) {
      metrics.goodput_tokens_per_second =
          static_cast<double>(metrics.generated_tokens) / metrics.makespan;
      metrics.slo_goodput_tokens_per_second =
          static_cast<double>(slo_tokens) / metrics.makespan;
      metrics.mxu_utilization =
          busy_time / (metrics.makespan * static_cast<double>(metrics.chips));
    }
    if (metrics.generated_tokens > 0) {
      metrics.energy_per_token =
          metrics.total_energy / static_cast<double>(metrics.generated_tokens);
    }
    metrics.cost_cache_entries = costs.size();
    metrics.cost_cache_hits = costs.hits();
    metrics.cost_cache_misses = costs.misses();
    metrics.cost_cache_occupancy = costs.occupancy();

    // --- Observability rollup ----------------------------------------------
    // Every subsystem publishes into the run's registry; all inputs are
    // deterministic simulated state, so the registry (like every metric
    // above) is bit-identical with tracing on or off.
    metrics.registry.set_counter("engine.total_steps", metrics.total_steps);
    metrics.registry.set_counter("engine.prefill_steps",
                                 metrics.prefill_steps);
    metrics.registry.set_counter("engine.decode_steps", metrics.decode_steps);
    metrics.registry.set_counter("engine.completed", metrics.completed);
    metrics.registry.set_counter("engine.generated_tokens",
                                 metrics.generated_tokens);
    metrics.registry.set_gauge("engine.makespan_s", metrics.makespan);
    metrics.registry.set_gauge("engine.sim_end_s", metrics.sim_end_seconds);
    metrics.registry.set_gauge("engine.slo_attainment",
                               metrics.slo_attainment);
    metrics.registry.set_gauge("engine.slo_goodput_tokens_per_s",
                               metrics.slo_goodput_tokens_per_second);
    metrics.registry.set_gauge("engine.availability", metrics.availability);
    if (faults_on) {
      // Fault-only keys are gated so an off run's registry matches
      // pre-fault builds key for key.
      metrics.registry.set_gauge("engine.mttr_s", metrics.mttr_seconds);
      metrics.registry.set_counter("engine.wasted_recompute_tokens",
                                   metrics.wasted_recompute_tokens);
      metrics.registry.set_counter("engine.retries_total",
                                   metrics.retries_total);
      metrics.fault.publish(&metrics.registry);
    }
    metrics.counters.publish(&metrics.registry);
    costs.publish(&metrics.registry);
    kv_cache.publish(&metrics.registry);
    scheduler.admission_policy().publish(&metrics.registry);

    metrics.timeseries = sampler.take();
    write_trace_files(*trace, metrics.timeseries);  // no-op without a dir

    metrics.sim_wall_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      wall_start)
            .count();
    if (metrics.sim_wall_seconds > 0) {
      metrics.steps_per_second = static_cast<double>(metrics.total_steps) /
                                 metrics.sim_wall_seconds;
    }
    return std::move(metrics);
  }
};

ServingEngine::ServingEngine(const ServingScenario& scenario,
                             SharedStepCostCache* shared_costs,
                             ServingTrace* trace_out) {
  scenario.validate();
  impl_ = std::make_unique<Impl>(scenario, shared_costs, trace_out);
}

ServingEngine::~ServingEngine() = default;

void ServingEngine::inject(const Request& request) {
  impl_->requests.push_back(request);
  impl_->outstanding_tokens += request.prompt_len + request.output_len;
}

void ServingEngine::inject_prefilled(const Request& request) {
  CIMTPU_CONFIG_CHECK(request.output_len >= 2,
                      "inject_prefilled: request "
                          << request.id << " has no decode work (output_len="
                          << request.output_len << ")");
  impl_->prefilled_ids.insert(request.id);
  inject(request);
}

bool ServingEngine::pump(Seconds until) { return impl_->pump(until); }

void ServingEngine::drain() {
  impl_->pump(std::numeric_limits<double>::infinity());
}

ServingMetrics ServingEngine::finish() { return impl_->finish(); }

Seconds ServingEngine::now() const { return impl_->now; }

bool ServingEngine::work_pending() const {
  return !impl_->horizon_hit && impl_->work_pending();
}

std::int64_t ServingEngine::outstanding_tokens() const {
  return impl_->outstanding_tokens;
}

void ServingEngine::set_completion_log(bool enabled) {
  impl_->log_completions = enabled;
}

std::vector<std::pair<std::int64_t, Seconds>>
ServingEngine::take_completions() {
  return std::move(impl_->completed_log);
}

std::vector<ServingEngine::RequestOutcome> ServingEngine::outcomes() const {
  std::vector<RequestOutcome> out;
  out.reserve(impl_->requests.size());
  for (const Request& request : impl_->requests) {
    RequestOutcome outcome;
    outcome.id = request.id;
    outcome.arrival = request.arrival_time;
    outcome.output_len = request.output_len;
    outcome.tenant_id = request.tenant_id;
    const auto trace_it = impl_->traces.find(request.id);
    if (trace_it != impl_->traces.end()) {
      outcome.arrived = true;
      outcome.first_token = trace_it->second.first_token;
      outcome.completion = trace_it->second.completion;
      outcome.shed = trace_it->second.shed;
    }
    out.push_back(outcome);
  }
  return out;
}

ServingMetrics run_serving(const ServingScenario& scenario,
                           const std::vector<Request>& requests,
                           SharedStepCostCache* shared_costs,
                           ServingTrace* trace_out) {
  ServingEngine engine(scenario, shared_costs, trace_out);
  for (const Request& request : requests) engine.inject(request);
  engine.drain();
  return engine.finish();
}

ServingMetrics run_serving(const ServingScenario& scenario,
                           const RequestStreamConfig& stream,
                           SharedStepCostCache* shared_costs,
                           ServingTrace* trace_out) {
  return run_serving(scenario, generate_requests(stream), shared_costs,
                     trace_out);
}

}  // namespace cimtpu::serving
