#include "serving/serving_sim.h"

#include <algorithm>
#include <chrono>
#include <map>
#include <numeric>
#include <unordered_map>

#include "arch/chip.h"
#include "common/math_util.h"
#include "common/status.h"
#include "sim/simulator.h"

namespace cimtpu::serving {

void ServingScenario::validate() const {
  CIMTPU_CONFIG_CHECK(chips >= 1, "serving needs >= 1 chip");
  CIMTPU_CONFIG_CHECK(model.num_layers >= chips,
                      "fewer layers than pipeline stages");
  CIMTPU_CONFIG_CHECK(host_link_bandwidth > 0,
                      "host link bandwidth must be positive");
  CIMTPU_CONFIG_CHECK(host_pool_capacity >= 0,
                      "host pool capacity must be >= 0");
  CIMTPU_CONFIG_CHECK(max_sim_seconds >= 0,
                      "max_sim_seconds must be >= 0 (0 = run to drain)");
  CIMTPU_CONFIG_CHECK(kv_budget_override >= 0,
                      "kv_budget_override must be >= 0 (0 = derive from HBM "
                      "headroom), got " << format_bytes(kv_budget_override));
  scheduler.validate();
}

namespace {

/// Per-request bookkeeping across the run.
struct RequestTrace {
  Seconds arrival = 0;
  std::int64_t output_len = 0;
  Seconds first_token = -1;  ///< < 0 until the first token is emitted
  Seconds completion = -1;
};

/// Per-tenant accumulator for the schema-v4 breakdown.
struct TenantAccum {
  std::int64_t num_requests = 0;
  std::int64_t completed = 0;
  std::int64_t generated_tokens = 0;
  std::vector<double> ttft;
  std::vector<double> e2e;
};

}  // namespace

ServingMetrics run_serving(const ServingScenario& scenario,
                           const std::vector<Request>& requests,
                           SharedStepCostCache* shared_costs) {
  scenario.validate();
  const auto wall_start = std::chrono::steady_clock::now();

  arch::TpuChip chip(scenario.chip_config);
  const sim::Simulator simulator(chip);
  SharedStepCostCache::Store* shared_store =
      shared_costs == nullptr
          ? nullptr
          : shared_costs->store(cost_cache_signature(
                scenario.chip_config, scenario.model,
                scenario.scheduler.seqlen_bucket));
  StepCostCache costs(simulator, scenario.model,
                      scenario.scheduler.seqlen_bucket, shared_store);

  const Bytes kv_budget =
      scenario.kv_budget_override > 0
          ? scenario.kv_budget_override
          : KvCacheManager::hbm_kv_budget(
                scenario.model, chip.memory().spec().hbm.capacity,
                scenario.chips);
  KvCacheManager kv_cache(kv_budget, KvCacheManager::token_bytes(scenario.model),
                          scenario.eviction, scenario.host_pool_capacity,
                          scenario.scheduler.kv_block_tokens,
                          scenario.scheduler.enable_prefix_cache);
  ContinuousBatchScheduler scheduler(scenario.scheduler, &kv_cache);

  const std::int64_t layers = scenario.model.num_layers;
  const std::int64_t stage_layers = ceil_div<std::int64_t>(layers, scenario.chips);
  const int boundaries = scenario.chips - 1;
  const double activation_elem_bytes = ir::dtype_bytes(scenario.model.dtype) *
                                       static_cast<double>(scenario.model.d_model);

  std::unordered_map<std::int64_t, RequestTrace> traces;
  traces.reserve(requests.size());

  ServingMetrics metrics;
  metrics.chips = scenario.chips;
  metrics.num_requests = static_cast<std::int64_t>(requests.size());

  Seconds now = 0;
  Seconds busy_time = 0;  ///< MXU busy time summed over all stages
  double fragmentation_sum = 0;  ///< per-step internal-fragmentation samples
  std::size_t next_arrival = 0;

  const auto feed_arrivals = [&](Seconds up_to) {
    while (next_arrival < requests.size() &&
           requests[next_arrival].arrival_time <= up_to) {
      const Request& request = requests[next_arrival];
      CIMTPU_CONFIG_CHECK(
          next_arrival == 0 ||
              requests[next_arrival - 1].arrival_time <= request.arrival_time,
          "request trace must be sorted by arrival time");
      traces[request.id] =
          RequestTrace{request.arrival_time, request.output_len, -1, -1};
      scheduler.enqueue(request);
      ++next_arrival;
    }
  };

  StepRecord step;  // scratch reused across all steps (zero allocations
                    // once its vectors reach steady-state capacity)
  while (next_arrival < requests.size() || !scheduler.idle()) {
    // Horizon cut (fairness studies): stop the engine at the configured
    // simulated second; whatever is in flight never completes.
    if (scenario.max_sim_seconds > 0 && now >= scenario.max_sim_seconds) {
      break;
    }
    feed_arrivals(now);
    if (scheduler.idle()) {
      // Nothing to do until the next request arrives.
      now = std::max(now, requests[next_arrival].arrival_time);
      continue;
    }

    scheduler.set_time(now);  // rate-capped admission reads the sim clock
    const bool stepped = scheduler.next_step(&step);
    CIMTPU_CHECK(stepped);

    const bool is_prefill = step.kind == StepRecord::Kind::kPrefill;
    // Per-sequence costing: each participant's attention at its own
    // bucketed KV length (see cost_step).
    const StepCost layer_cost = cost_step(costs, step);

    // Inter-stage activation handoff: the moving rows of this step cross
    // each pipeline boundary once (prefill moves every chunk token,
    // decode one token per participant).
    const double rows =
        is_prefill ? static_cast<double>(std::accumulate(
                         step.chunk_lens.begin(), step.chunk_lens.end(),
                         std::int64_t{0}))
                   : static_cast<double>(step.batch);
    const Bytes boundary_bytes = rows * activation_elem_bytes;
    const Seconds transfer =
        boundaries > 0 ? chip.ici().p2p_time(boundary_bytes) : 0.0;

    // KV pages swapped to/from the host pool this step serialize with the
    // step on the PCIe-class link.
    const Seconds swap_time = step.swap_bytes / scenario.host_link_bandwidth;

    // Steady-state engine cadence: the bottleneck stage (ceiling share of
    // the layers) plus its handoff.  Tokens emitted this step additionally
    // traverse the remaining stages before leaving the pipeline.
    const Seconds stage_time =
        static_cast<double>(stage_layers) * layer_cost.latency + transfer;
    const Seconds emit_extra = static_cast<double>(boundaries) * stage_time;

    now += stage_time + swap_time;
    const Seconds emit_time = now + emit_extra;

    metrics.total_steps += 1;
    if (is_prefill) {
      metrics.prefill_steps += 1;
    } else {
      metrics.decode_steps += 1;
    }
    // Paged-KV gauge: last-block waste across resident mappings, sampled
    // once per engine step (identically 0 at block size 1).
    fragmentation_sum += kv_cache.internal_fragmentation();
    busy_time += static_cast<double>(layers) * layer_cost.mxu_busy_time;
    metrics.mxu_energy += static_cast<double>(layers) * layer_cost.mxu_energy;
    metrics.total_energy += static_cast<double>(layers) * layer_cost.total_energy;
    if (boundaries > 0) {
      metrics.total_energy +=
          static_cast<double>(boundaries) * chip.ici().p2p_energy(boundary_bytes);
    }

    for (std::int64_t id : step.first_token_ids) {
      RequestTrace& trace = traces.at(id);
      // Preempted-and-recomputed requests already streamed their first
      // token to the user; keep the original TTFT.
      if (trace.first_token < 0) trace.first_token = emit_time;
    }
    for (std::int64_t id : step.finished_ids) {
      RequestTrace& trace = traces.at(id);
      // Each step's traversal extra is derived from that step's own stage
      // time, so a cheap decode step after an expensive prefill step could
      // nominally "exit" earlier in absolute time.  Real pipelines preserve
      // per-request emission order: clamp so completion >= first token.
      trace.completion = std::max(emit_time, trace.first_token);
      metrics.completed += 1;
      metrics.generated_tokens += trace.output_len;
      metrics.makespan = std::max(metrics.makespan, trace.completion);
    }
  }
  metrics.counters = scheduler.counters();
  metrics.preemptions = metrics.counters.total_preemptions();
  metrics.prefix_hit_rate = metrics.counters.prefix_hit_rate();
  if (metrics.total_steps > 0) {
    metrics.kv_internal_fragmentation =
        fragmentation_sum / static_cast<double>(metrics.total_steps);
  }

  // --- Distributional rollups ----------------------------------------------
  std::vector<double> ttft, tpot, e2e;
  ttft.reserve(traces.size());
  tpot.reserve(traces.size());
  e2e.reserve(traces.size());
  std::map<std::int64_t, TenantAccum> tenant_accums;  // ascending tenant id
  // Iterate requests (not the hash map) for platform-independent order.
  for (const Request& request : requests) {
    const auto trace_it = traces.find(request.id);
    if (trace_it == traces.end()) continue;  // never arrived (horizon cut)
    // The accumulator (and hence the tenant's metrics row / Jain entry)
    // exists only once the tenant has a request that actually ARRIVED
    // within the simulated window — a tenant whose traffic all lands past
    // the horizon never participated and must not drag the index down.
    TenantAccum& accum = tenant_accums[request.tenant_id];
    accum.num_requests += 1;
    const RequestTrace& trace = trace_it->second;
    // TTFT is determined the moment the first token leaves the pipeline,
    // so horizon-cut runs keep every emitted first token in the TTFT
    // sample — dropping still-in-flight requests would censor exactly the
    // slow admissions an overload study is trying to measure.  (Without a
    // horizon every fed request completes, so this changes nothing.)
    if (trace.first_token >= 0) {
      ttft.push_back(trace.first_token - trace.arrival);
      accum.ttft.push_back(trace.first_token - trace.arrival);
    }
    if (trace.completion < 0) continue;  // in flight at the horizon
    e2e.push_back(trace.completion - trace.arrival);
    if (trace.output_len > 1) {
      tpot.push_back((trace.completion - trace.first_token) /
                     static_cast<double>(trace.output_len - 1));
    }
    accum.completed += 1;
    accum.generated_tokens += trace.output_len;
    accum.e2e.push_back(trace.completion - trace.arrival);
  }
  metrics.ttft = summarize_latencies(ttft);
  metrics.tpot = summarize_latencies(tpot);
  metrics.e2e = summarize_latencies(e2e);

  // --- Per-tenant breakdown (schema-v4) -------------------------------------
  // Weights come from the deployment's admission shares (WFQ); tenants the
  // config does not name weigh 1.  Jain's index runs over weight-normalized
  // goodput, so a perfectly-enforcing WFQ scores ~1 whatever the weights.
  const auto& shares = scenario.scheduler.admission.tenants;
  std::vector<double> normalized_goodput;
  normalized_goodput.reserve(tenant_accums.size());
  for (const auto& [tenant_id, accum] : tenant_accums) {
    TenantMetrics tenant;
    tenant.tenant_id = tenant_id;
    if (tenant_id >= 0 &&
        tenant_id < static_cast<std::int64_t>(shares.size())) {
      tenant.weight = shares[static_cast<std::size_t>(tenant_id)].weight;
    }
    tenant.num_requests = accum.num_requests;
    tenant.completed = accum.completed;
    tenant.generated_tokens = accum.generated_tokens;
    tenant.ttft = summarize_latencies(accum.ttft);
    tenant.e2e = summarize_latencies(accum.e2e);
    if (metrics.makespan > 0) {
      tenant.goodput_tokens_per_second =
          static_cast<double>(accum.generated_tokens) / metrics.makespan;
    }
    normalized_goodput.push_back(tenant.goodput_tokens_per_second /
                                 tenant.weight);
    metrics.tenants.push_back(std::move(tenant));
  }
  if (metrics.tenants.size() > 1) {
    metrics.jain_fairness = jain_fairness_index(normalized_goodput);
  }

  if (metrics.makespan > 0) {
    metrics.goodput_tokens_per_second =
        static_cast<double>(metrics.generated_tokens) / metrics.makespan;
    metrics.mxu_utilization =
        busy_time / (metrics.makespan * static_cast<double>(scenario.chips));
  }
  if (metrics.generated_tokens > 0) {
    metrics.energy_per_token =
        metrics.total_energy / static_cast<double>(metrics.generated_tokens);
  }
  metrics.cost_cache_entries = costs.size();
  metrics.cost_cache_hits = costs.hits();
  metrics.cost_cache_misses = costs.misses();
  metrics.sim_wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wall_start)
          .count();
  if (metrics.sim_wall_seconds > 0) {
    metrics.steps_per_second = static_cast<double>(metrics.total_steps) /
                               metrics.sim_wall_seconds;
  }
  return metrics;
}

ServingMetrics run_serving(const ServingScenario& scenario,
                           const RequestStreamConfig& stream,
                           SharedStepCostCache* shared_costs) {
  return run_serving(scenario, generate_requests(stream), shared_costs);
}

}  // namespace cimtpu::serving
