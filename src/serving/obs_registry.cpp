#include "serving/obs_registry.h"

#include <cmath>
#include <limits>
#include <sstream>

#include "common/status.h"
#include "sim/trace.h"

namespace cimtpu::serving {

std::string json_double(double value) {
  if (!std::isfinite(value)) return "0";
  std::ostringstream out;
  out.precision(std::numeric_limits<double>::max_digits10);
  out << value;
  return out.str();
}

FixedBucketHistogram& MetricsRegistry::histogram(
    const std::string& name, std::vector<double> upper_bounds) {
  const auto it = histograms_.find(name);
  if (it != histograms_.end()) return it->second;
  return histograms_
      .emplace(name, FixedBucketHistogram(std::move(upper_bounds)))
      .first->second;
}

std::string MetricsRegistry::to_json() const {
  std::ostringstream out;
  out << "{\"counters\":{";
  bool first = true;
  for (const auto& [name, value] : counters_) {
    if (!first) out << ',';
    first = false;
    out << '"' << sim::json_escape(name) << "\":" << value;
  }
  out << "},\"gauges\":{";
  first = true;
  for (const auto& [name, value] : gauges_) {
    if (!first) out << ',';
    first = false;
    out << '"' << sim::json_escape(name) << "\":" << json_double(value);
  }
  out << "},\"histograms\":{";
  first = true;
  for (const auto& [name, histogram] : histograms_) {
    if (!first) out << ',';
    first = false;
    out << '"' << sim::json_escape(name) << "\":{"
        << "\"count\":" << histogram.count()
        << ",\"sum\":" << json_double(histogram.sum())
        << ",\"min\":" << json_double(histogram.min())
        << ",\"max\":" << json_double(histogram.max())
        << ",\"mean\":" << json_double(histogram.mean())
        << ",\"p50\":" << json_double(histogram.quantile(50))
        << ",\"p95\":" << json_double(histogram.quantile(95))
        << ",\"p99\":" << json_double(histogram.quantile(99))
        << ",\"bounds\":[";
    for (std::size_t i = 0; i < histogram.upper_bounds().size(); ++i) {
      if (i > 0) out << ',';
      out << json_double(histogram.upper_bounds()[i]);
    }
    out << "],\"bucket_counts\":[";
    for (std::size_t i = 0; i < histogram.bucket_counts().size(); ++i) {
      if (i > 0) out << ',';
      out << histogram.bucket_counts()[i];
    }
    out << "]}";
  }
  out << "}}";
  return out.str();
}

TimeSeriesSampler::TimeSeriesSampler(Seconds interval) : interval_(interval) {
  CIMTPU_CONFIG_CHECK(interval >= 0,
                      "sample interval must be >= 0 (0 = disabled), got "
                          << interval);
}

void TimeSeriesSampler::record(TimeSample sample) {
  CIMTPU_CHECK(enabled());
  // Advance past the sample time: a step that crossed several intervals
  // yields this one sample and the schedule re-anchors after it.
  while (next_ <= sample.time) next_ += interval_;
  samples_.push_back(std::move(sample));
}

std::string time_samples_json(const std::vector<TimeSample>& samples) {
  std::ostringstream out;
  out << '[';
  for (std::size_t i = 0; i < samples.size(); ++i) {
    const TimeSample& sample = samples[i];
    if (i > 0) out << ',';
    out << "{\"time\":" << json_double(sample.time)
        << ",\"step\":" << sample.step
        << ",\"queue_depth\":" << sample.queue_depth
        << ",\"resident_sequences\":" << sample.resident_sequences
        << ",\"resident_decoders\":" << sample.resident_decoders
        << ",\"swapped_sequences\":" << sample.swapped_sequences
        << ",\"kv_referenced_blocks\":" << sample.kv_referenced_blocks
        << ",\"kv_occupied_blocks\":" << sample.kv_occupied_blocks
        << ",\"kv_capacity_blocks\":" << sample.kv_capacity_blocks
        << ",\"kv_internal_fragmentation\":"
        << json_double(sample.kv_internal_fragmentation)
        << ",\"prefix_hit_rate\":" << json_double(sample.prefix_hit_rate)
        << ",\"tenant_admitted_tokens\":{";
    for (std::size_t t = 0; t < sample.tenant_admitted_tokens.size(); ++t) {
      if (t > 0) out << ',';
      out << '"' << sample.tenant_admitted_tokens[t].first
          << "\":" << sample.tenant_admitted_tokens[t].second;
    }
    out << "}}";
  }
  out << ']';
  return out.str();
}

}  // namespace cimtpu::serving
