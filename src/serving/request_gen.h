#pragma once
// Seeded stochastic request streams for the serving simulator.
//
// Production LLM traffic is not a fixed batch: requests arrive over time
// (Poisson in the steady state, bursty under flash crowds) with highly
// skewed prompt/output lengths.  This module turns a seed plus a stream
// specification into a deterministic, sorted arrival trace that the
// continuous-batching scheduler replays.  All randomness flows through
// common/rng.h so a fixed seed reproduces bit-identical traffic on every
// platform.

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/units.h"

namespace cimtpu::serving {

/// One inference request in the stream.
struct Request {
  std::int64_t id = 0;
  Seconds arrival_time = 0;
  std::int64_t prompt_len = 0;  ///< tokens prefilled
  std::int64_t output_len = 0;  ///< tokens to decode (>= 1; the first is
                                ///< emitted by the prefill step)
  std::int64_t priority = 0;    ///< larger = more important; feeds
                                ///< EvictionPolicy::kPriorityVictim
  std::int64_t tenant_id = 0;   ///< multi-tenant QoS: feeds weighted-fair
                                ///< admission and per-tenant metrics
  std::int64_t prefix_id = -1;  ///< shared system-prompt identity: requests
                                ///< with the same id begin with the same
                                ///< `prefix_len` tokens (feeds the paged-KV
                                ///< prefix cache); -1 = unique prompt
  std::int64_t prefix_len = 0;  ///< leading prompt tokens covered by the
                                ///< shared prefix (<= prompt_len)
  Seconds ttft_deadline = 0;    ///< SLO: first token must stream within this
                                ///< many seconds of arrival; 0 = no deadline
  Seconds tpot_deadline = 0;    ///< SLO: steady-state decode must average at
                                ///< most this many seconds per token after the
                                ///< first; 0 = no deadline
};

/// Arrival process of the stream.
enum class ArrivalProcess {
  kPoisson,  ///< exponential inter-arrivals at `arrival_rate`
  kBursty,   ///< two-state Markov-modulated Poisson (flash crowds)
  kDiurnal,  ///< sinusoidally rate-modulated Poisson (day/night cycles)
};

std::string arrival_process_name(ArrivalProcess process);

/// Token-length distributions for prompts and outputs.
enum class LengthDistribution {
  kFixed,    ///< always `mean`
  kUniform,  ///< uniform integer in [min_len, max_len]
  kZipf,     ///< Zipf-ranked over [min_len, max_len]: short lengths common,
             ///< a heavy tail of long ones (exponent `zipf_alpha`)
};

struct LengthSpec {
  LengthDistribution kind = LengthDistribution::kFixed;
  std::int64_t mean = 1024;    ///< used by kFixed
  std::int64_t min_len = 16;   ///< inclusive lower bound (kUniform / kZipf)
  std::int64_t max_len = 4096; ///< inclusive upper bound (kUniform / kZipf)
  double zipf_alpha = 1.1;     ///< tail exponent; larger -> lighter tail

  void validate() const;
};

/// Full stream specification.
struct RequestStreamConfig {
  std::uint64_t seed = 42;
  std::int64_t num_requests = 1000;
  double arrival_rate = 10.0;  ///< mean requests/second (both processes)
  ArrivalProcess process = ArrivalProcess::kPoisson;

  // kBursty: the stream alternates between a calm state and a burst state
  // whose rate is `burst_factor` times the calm rate.  Mean state dwell
  // times are chosen so the long-run average rate stays `arrival_rate`.
  double burst_factor = 8.0;    ///< burst rate / calm rate
  double burst_fraction = 0.1;  ///< fraction of time spent in bursts

  // kDiurnal: the instantaneous rate follows
  //   rate(t) = arrival_rate * (1 + amplitude * sin(2*pi*t/period + phase))
  // sampled by Lewis-Shedler thinning at the peak rate, so the long-run
  // average stays `arrival_rate`.  Only consulted when the process is
  // kDiurnal; rng draws happen only on that path, so kPoisson/kBursty
  // streams stay bit-identical for a given seed.
  Seconds diurnal_period_s = 60.0;  ///< one full day/night cycle
  double diurnal_amplitude = 0.8;   ///< peak swing, in [0, 1]
  double diurnal_phase = 0.0;       ///< radians; shifts the peak (per-tenant
                                    ///< mixes stagger their peaks with this)

  LengthSpec prompt;
  LengthSpec output;

  // Requests draw a uniform priority class in [0, priority_classes).
  // Priorities come from a SEPARATE rng stream derived from the seed, so
  // changing the class count never perturbs arrival times or lengths.
  std::int64_t priority_classes = 1;

  // Tenant-assignment model: requests draw a tenant id in [0, num_tenants)
  // — uniformly when `tenant_weights` is empty, else proportionally to the
  // weights (size must equal num_tenants, all positive), modeling skewed
  // multi-tenant traffic.  Tenant ids come from their OWN decoupled rng
  // stream, so arrivals, lengths, and priorities stay bit-identical for a
  // given seed whatever the tenant model says.
  std::int64_t num_tenants = 1;
  std::vector<double> tenant_weights;

  // Shared system-prompt prefixes (paged-KV prefix caching): when
  // `prefix_pool_size` > 0 every request draws a prefix id uniformly from
  // [0, prefix_pool_size) and its prompt becomes prefix_len_tokens of
  // shared system prompt followed by the sampled user prompt
  // (prompt_len += prefix_len_tokens).  Prefix ids come from a FOURTH
  // decoupled rng stream, so arrivals, lengths, priorities, and tenants
  // stay bit-identical for a given seed whatever the prefix model — and a
  // pool size of 0 (the default) leaves old streams untouched.
  std::int64_t prefix_pool_size = 0;
  std::int64_t prefix_len_tokens = 0;

  // Per-request SLO deadlines (TTFT/TPOT): when either base value is > 0,
  // every request carries both deadlines scaled by a shared jitter factor
  // drawn uniformly from [1 - deadline_jitter, 1 + deadline_jitter].  The
  // jitter comes from a FIFTH decoupled rng stream that is consulted only
  // when deadlines are enabled, so arrivals, lengths, priorities, tenants,
  // and prefixes stay bit-identical for a given seed — deadline-free
  // streams (the default) are untouched byte for byte.
  Seconds ttft_deadline_s = 0;   ///< base TTFT deadline; 0 disables
  Seconds tpot_deadline_s = 0;   ///< base TPOT deadline; 0 disables
  double deadline_jitter = 0.2;  ///< fractional spread, in [0, 1)

  void validate() const;
};

/// Samples integer lengths from a LengthSpec.  The Zipf inverse-CDF table
/// is precomputed once per spec, so sampling is O(log n).
class LengthSampler {
 public:
  explicit LengthSampler(const LengthSpec& spec);

  std::int64_t sample(Rng& rng) const;

 private:
  LengthSpec spec_;
  std::vector<double> zipf_cdf_;  ///< cumulative weights (kZipf only)
};

/// Generates the full arrival trace for `config`: `num_requests` requests
/// sorted by arrival time, ids dense in [0, num_requests).
std::vector<Request> generate_requests(const RequestStreamConfig& config);

/// Merges several arrival traces (e.g. one per tenant, each with its own
/// diurnal phase) into one trace sorted by arrival time with dense ids.
/// Ties keep the input order (stream 0 before stream 1); every other field
/// is preserved, so per-stream tenant ids / deadlines survive the merge.
std::vector<Request> merge_request_traces(
    const std::vector<std::vector<Request>>& streams);

}  // namespace cimtpu::serving
