#pragma once
// Seeded fault injection + recovery for the serving simulator, in the
// spirit of the failure handling DistServe/Mooncake-class deployments
// treat as part of the serving policy itself: hardware blips are typed,
// sim-time-stamped events drawn from a DEDICATED rng stream (per fault
// type, so enabling one process never perturbs another's event times,
// and disabling the subsystem is bit-identical to a build that predates
// it), and "recovery" is an explicit, benchmarkable policy rather than
// an assumption.
//
// Three fault types:
//   * transient chip stall — every engine step inside the stall window
//     pays a latency multiplier (thermal throttle / preemptible-VM
//     neighbour / ECC scrub);
//   * KV-block loss — one random RESIDENT sequence loses its computed
//     device KV (bit flip, page retirement).  Recovered in place from a
//     host shadow copy (KvCacheManager::restore_from_host) or by prompt
//     recompute through backoff re-admission;
//   * device failure — the whole device drops: every resident sequence
//     loses its KV, the prefix cache is flushed, and the engine is down
//     for a restart epoch.  Swapped-out sequences survive (host pool).
//
// Recovery policy (FaultConfig::recovery_enabled): failed in-flight
// requests re-enter through the admission policy with exponential
// backoff and a retry budget; budget exhaustion (or recovery off) sheds
// the request with cause "fault".  A sustained-failure detector
// (DegradationController, hysteresis) switches the engine into graceful
// degradation: shrink the max batch, pause prefix-cache admission,
// tighten EDF shedding.

#include <cstdint>
#include <deque>

#include "common/rng.h"
#include "common/units.h"

namespace cimtpu::serving {

class MetricsRegistry;

/// Fault-injection + recovery knobs, carried by ServingScenario.
/// Default-constructed = subsystem off — the golden-pinned
/// configuration: run_serving never constructs a FaultProcess, never
/// consults the fault rng, and produces bit-identical output to a build
/// without the subsystem.
struct FaultConfig {
  bool enabled = false;

  /// Seed of the DEDICATED fault rng (decoupled from every request-gen
  /// stream: the same workload seed with faults on/off sees identical
  /// arrivals, lengths, priorities, tenants, prefixes, and deadlines).
  std::uint64_t seed = 42;

  // --- Injection processes (independent Poisson, rate 0 = off) ----------
  /// Transient chip stalls: for stall_duration_s after each event, every
  /// step's compute latency is multiplied by stall_latency_multiplier.
  double stall_rate_per_s = 0;
  Seconds stall_duration_s = 0.2;
  double stall_latency_multiplier = 4.0;

  /// KV-block loss: each event strikes one uniformly random resident
  /// sequence (no-op when nothing is resident).
  double kv_loss_rate_per_s = 0;

  /// Full device failure: every resident sequence loses its KV, cached
  /// prefix blocks are flushed, and the engine restarts after
  /// device_restart_s of downtime.
  double device_failure_rate_per_s = 0;
  Seconds device_restart_s = 1.0;

  // --- Recovery policy ---------------------------------------------------
  /// Off: every fault-hit request is dropped (shed, cause "fault") — the
  /// recovery-off baseline of the resilience frontier.
  bool recovery_enabled = true;

  /// How KV lost to a kv-loss event is re-materialized.  kHostRestore
  /// models a write-through host shadow: when the host pool can hold the
  /// entry's blocks the sequence keeps running in place and the engine
  /// pays the PCIe re-fetch; when the shadow does not fit (or for device
  /// failures, which lose the device wholesale) it falls back to
  /// kRecompute: remove, backoff, re-admit, recompute the prompt.
  enum class KvRestoreMode { kRecompute, kHostRestore };
  KvRestoreMode kv_restore = KvRestoreMode::kRecompute;

  /// Exponential backoff for re-admission: attempt n waits
  /// min(retry_backoff_base_s * 2^n, retry_backoff_max_s).
  Seconds retry_backoff_base_s = 0.05;
  Seconds retry_backoff_max_s = 2.0;
  /// Re-admissions allowed per request before it is shed (0 = first
  /// fault is fatal even with recovery on).
  int retry_budget = 3;

  // --- Graceful degradation (sustained-failure detector) -----------------
  /// 0 disables the detector.  Enter degraded mode when at least
  /// degrade_enter_faults fault events landed within the trailing
  /// degrade_window_s; exit when the trailing count falls back to at
  /// most degrade_exit_faults (< enter: hysteresis, no flapping on the
  /// boundary).
  Seconds degrade_window_s = 0;
  int degrade_enter_faults = 4;
  int degrade_exit_faults = 1;

  /// Degraded actions: cap the resident batch at this fraction of
  /// SchedulerConfig::max_batch (floor, min 1), optionally pause
  /// prefix-cache admission (stop registering/sharing new blocks), and
  /// tighten EDF shedding by this much extra slack.
  double degraded_max_batch_fraction = 0.5;
  bool degrade_pause_prefix_cache = true;
  Seconds degraded_extra_shed_slack_s = 0;

  void validate() const;
};

/// The fault types FaultProcess emits, in a fixed order used for trace
/// aux codes and stats.
enum class FaultType : std::int64_t {
  kStall = 0,
  kKvLoss = 1,
  kDeviceFailure = 2,
};

const char* fault_type_name(FaultType type);

struct FaultEvent {
  FaultType type = FaultType::kStall;
  Seconds time = 0;
};

/// Merged, seeded fault event source.  Each fault type draws its
/// exponential inter-arrival times from its OWN splitmix-derived
/// sub-stream of FaultConfig::seed, so turning a second process on (or
/// changing its rate) never moves the first one's event times; the
/// kv-loss victim picks use a fourth sub-stream so they do not perturb
/// event times either.  All state is per-run and advances only through
/// poll()/pick_victim(), so sweeps stay bit-identical across thread
/// counts.
class FaultProcess {
 public:
  explicit FaultProcess(const FaultConfig& config);

  const FaultConfig& config() const { return config_; }

  /// Pops the earliest pending event with time <= now (events across
  /// types are merged in chronological order; ties break by FaultType
  /// order).  Returns false when no event is due.
  bool poll(Seconds now, FaultEvent* out);

  /// Time of the earliest pending event; +inf when no process is armed.
  Seconds next_event_time() const;

  /// Uniform victim index in [0, resident_count) for a kv-loss event.
  std::int64_t pick_victim(std::int64_t resident_count);

 private:
  Seconds draw_interval(Rng* rng, double rate);

  FaultConfig config_;
  Rng stall_rng_;
  Rng kv_loss_rng_;
  Rng failure_rng_;
  Rng victim_rng_;
  Seconds next_stall_;
  Seconds next_kv_loss_;
  Seconds next_failure_;
};

/// Sustained-failure detector with hysteresis: counts fault events in a
/// trailing window; degraded mode enters at >= degrade_enter_faults and
/// exits only once the trailing count decays to <= degrade_exit_faults.
class DegradationController {
 public:
  explicit DegradationController(const FaultConfig& config);

  bool enabled() const { return config_.degrade_window_s > 0; }
  bool degraded() const { return degraded_; }

  /// Records one fault event at simulated time `now`.
  void on_fault(Seconds now);
  /// Re-evaluates the trailing window at `now`; returns true when the
  /// degraded/normal state flipped (the caller applies or lifts the
  /// degraded actions and emits the kDegrade trace event).
  bool update(Seconds now);

 private:
  FaultConfig config_;
  std::deque<Seconds> recent_;
  bool degraded_ = false;
};

/// Fault/recovery activity of one run, published under "fault.*" only
/// when the subsystem is enabled (an off run's registry is byte-
/// identical to pre-fault builds).
struct FaultStats {
  std::int64_t stalls = 0;
  std::int64_t kv_losses = 0;        ///< events that struck a resident
  std::int64_t device_failures = 0;
  std::int64_t host_restores = 0;    ///< kv-loss recoveries in place
  Bytes host_restore_bytes = 0;      ///< PCIe re-fetch traffic
  std::int64_t retries = 0;          ///< backoff re-admissions
  std::int64_t dropped = 0;          ///< fault sheds (budget/recovery-off)
  std::int64_t wasted_recompute_tokens = 0;  ///< computed work lost
  std::int64_t degrade_enters = 0;
  std::int64_t degrade_exits = 0;

  void publish(MetricsRegistry* registry) const;
};

}  // namespace cimtpu::serving
