#include "serving/kv_cache_manager.h"

#include <algorithm>
#include <cmath>

#include "common/status.h"
#include "serving/obs_registry.h"

namespace cimtpu::serving {

std::string eviction_policy_name(EvictionPolicy policy) {
  switch (policy) {
    case EvictionPolicy::kNone: return "none";
    case EvictionPolicy::kPreemptNewest: return "preempt_newest";
    case EvictionPolicy::kSwapToHost: return "swap_to_host";
    case EvictionPolicy::kPriorityVictim: return "priority_victim";
  }
  return "?";
}

KvCacheManager::KvCacheManager(Bytes capacity, Bytes bytes_per_token,
                               EvictionPolicy policy, Bytes host_capacity,
                               std::int64_t block_tokens,
                               bool enable_prefix_cache)
    : capacity_(capacity),
      bytes_per_token_(bytes_per_token),
      policy_(policy),
      host_capacity_(host_capacity),
      block_tokens_(block_tokens),
      enable_prefix_cache_(enable_prefix_cache) {
  CIMTPU_CONFIG_CHECK(capacity > 0, "KV budget must be positive, got "
                                        << format_bytes(capacity));
  CIMTPU_CONFIG_CHECK(bytes_per_token > 0,
                      "KV token bytes must be positive, got "
                          << format_bytes(bytes_per_token));
  CIMTPU_CONFIG_CHECK(host_capacity >= 0,
                      "host pool capacity must be >= 0, got "
                          << format_bytes(host_capacity));
  CIMTPU_CONFIG_CHECK(block_tokens >= 1,
                      "kv_block_tokens must be >= 1, got " << block_tokens);
  block_bytes_ = bytes_per_token_ * static_cast<double>(block_tokens_);
  capacity_blocks_ = static_cast<std::int64_t>(capacity_ / block_bytes_);
  host_capacity_blocks_ =
      static_cast<std::int64_t>(host_capacity_ / block_bytes_);
  CIMTPU_CONFIG_CHECK(capacity_blocks_ >= 1,
                      "KV budget " << format_bytes(capacity_)
                                   << " smaller than one "
                                   << block_tokens_ << "-token block ("
                                   << format_bytes(block_bytes_) << ")");
}

Bytes KvCacheManager::hbm_kv_budget(const models::TransformerConfig& model,
                                    Bytes chip_hbm_capacity, int chips) {
  CIMTPU_CONFIG_CHECK(chips >= 1, "KV budget needs >= 1 chip");
  CIMTPU_CONFIG_CHECK(model.num_layers >= chips,
                      "fewer layers than pipeline stages");
  // The bottleneck stage holds ceil(layers/chips) layers: its weights and
  // its per-layer share of every cached token must fit ONE chip's HBM.
  // The admissible whole-model KV is the bottleneck's headroom scaled by
  // the inverse of its layer share (for even splits this reduces to
  // chips * HBM - weights).
  const std::int64_t stage_layers =
      ceil_div<std::int64_t>(model.num_layers, chips);
  const Bytes stage_weights =
      model.layer_weight_bytes() * static_cast<double>(stage_layers);
  const Bytes stage_free = chip_hbm_capacity - stage_weights;
  CIMTPU_CONFIG_CHECK(stage_free > 0,
                      "model '" << model.name << "' bottleneck stage ("
                                << stage_layers << " layers, "
                                << format_bytes(stage_weights)
                                << ") exceeds one chip's HBM over " << chips
                                << " chip(s)");
  return stage_free * static_cast<double>(model.num_layers) /
         static_cast<double>(stage_layers);
}

Bytes KvCacheManager::token_bytes(const models::TransformerConfig& model) {
  return models::kv_cache_bytes_per_layer(model, /*batch=*/1, /*kv_len=*/1) *
         static_cast<double>(model.num_layers);
}

void KvCacheManager::victim_index_insert(std::int64_t id, const Entry& entry) {
  admit_order_[entry.admit_seq] = id;
}

void KvCacheManager::victim_index_erase(std::int64_t id, const Entry& entry) {
  admit_order_.erase(entry.admit_seq);
  (void)id;
}

void KvCacheManager::reclaim_cached(std::int64_t blocks) {
  cached_blocks_reclaimed_total_ += blocks;
  for (std::int64_t i = 0; i < blocks; ++i) {
    CIMTPU_CHECK(!cached_lru_.empty());
    const auto oldest = cached_lru_.begin();
    const std::int64_t block_id = oldest->second;
    cached_lru_.erase(oldest);
    const auto it = shared_blocks_.find(block_id);
    CIMTPU_CHECK(it != shared_blocks_.end() && it->second.ref == 0);
    prefix_index_.erase({it->second.prefix_id, it->second.block_index});
    shared_blocks_.erase(it);
  }
}

std::int32_t KvCacheManager::slot_insert(std::int64_t request_id,
                                         Entry&& entry) {
  entry.id = request_id;
  std::int32_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
    entry_slots_[static_cast<std::size_t>(slot)] = std::move(entry);
  } else {
    slot = static_cast<std::int32_t>(entry_slots_.size());
    entry_slots_.push_back(std::move(entry));
  }
  entries_[request_id] = slot;
  return slot;
}

void KvCacheManager::slot_erase(std::int32_t slot) {
  Entry& entry = slot_entry(slot);
  entries_.erase(entry.id);
  entry.id = -1;
  entry.shared.clear();
  free_slots_.push_back(slot);
}

std::int32_t KvCacheManager::resident_slot(std::int64_t request_id) const {
  const auto it = entries_.find(request_id);
  CIMTPU_CHECK(it != entries_.end());
  return it->second;
}

void KvCacheManager::unref_shared(std::int64_t block_id) {
  const auto it = shared_blocks_.find(block_id);
  CIMTPU_CHECK(it != shared_blocks_.end() && it->second.ref >= 1);
  SharedBlock& block = it->second;
  if (--block.ref > 0) return;
  if (block.computed) {
    // Fully released but computed: stays cached (and hittable) until
    // allocation pressure reclaims it, LRU order.
    block.lru_seq = next_lru_seq_++;
    cached_lru_[block.lru_seq] = block_id;
  } else {
    // The registrant died before prefilling it; the contents never
    // existed, so the block (and its index entry) is useless.
    prefix_index_.erase({block.prefix_id, block.block_index});
    shared_blocks_.erase(it);
  }
}

bool KvCacheManager::try_admit(std::int64_t request_id, std::int64_t tokens,
                               std::int64_t priority, std::int64_t prefix_id,
                               std::int64_t prefix_len,
                               std::int64_t prompt_len,
                               AdmitOutcome* outcome) {
  CIMTPU_CHECK(entries_.count(request_id) == 0);
  CIMTPU_CHECK(host_entries_.count(request_id) == 0);
  CIMTPU_CHECK(tokens >= 0);
  CIMTPU_CHECK(prefix_len >= 0 && prefix_len <= std::max<std::int64_t>(
                                                    prompt_len, 0));
  if (outcome != nullptr) *outcome = AdmitOutcome{};

  const std::int64_t total_blocks = blocks_for_tokens(tokens);

  // --- Plan the prefix reuse (no state mutated yet) --------------------------
  // Eligibility requires the reservation to cover the whole prompt (every
  // scheduler reserve does: prompt + 1 at minimum), so shared and
  // registered prefix blocks always lie within the entry's own mapping.
  const bool prefix_eligible = enable_prefix_cache_ &&
                               !prefix_admission_paused_ && prefix_id >= 0 &&
                               prefix_len > 0 && prompt_len > 1 &&
                               tokens >= prompt_len;
  std::vector<std::int64_t> hit_blocks;  // contiguous leading full blocks
  std::int64_t hit_tokens = 0;
  std::int64_t cow_blocks = 0;
  if (prefix_eligible) {
    const std::int64_t full_blocks = prefix_len / block_tokens_;
    for (std::int64_t k = 0; k < full_blocks; ++k) {
      const auto it = prefix_index_.find({prefix_id, k});
      if (it == prefix_index_.end()) break;
      const SharedBlock& block = shared_blocks_.at(it->second);
      if (!block.computed) break;  // a concurrent request is still
                                   // prefilling it; contents don't exist yet
      hit_blocks.push_back(it->second);
    }
    hit_tokens = static_cast<std::int64_t>(hit_blocks.size()) * block_tokens_;
    // Partial tail: prefix tokens past the last full block live inside a
    // block that also holds post-prefix content.  If a live donor with the
    // same prefix has computed through prefix_len, the sharer reuses those
    // tokens via a private COPY of the block (copy-on-write: the sharer's
    // own content diverges inside it).
    if (static_cast<std::int64_t>(hit_blocks.size()) == full_blocks &&
        prefix_len % block_tokens_ != 0) {
      const auto donor = tail_donors_.find(prefix_id);
      if (donor != tail_donors_.end()) {
        const auto donor_it = entries_.find(donor->second);
        if (donor_it != entries_.end() &&
            slot_entry(donor_it->second).computed_tokens >= prefix_len) {
          cow_blocks = 1;
          hit_tokens = prefix_len;
        }
      }
    }
    // The final prompt token is always recomputed (real engines need its
    // logits), so prefill can never be skipped entirely.  Its KV already
    // lives in a shared block when the cap bites, so no extra allocation.
    hit_tokens = std::min(hit_tokens, prompt_len - 1);
  }

  // --- Capacity check (reclaim-aware), then commit ---------------------------
  const std::int64_t shared_count =
      static_cast<std::int64_t>(hit_blocks.size());
  const std::int64_t new_blocks = total_blocks - shared_count;
  CIMTPU_CHECK(new_blocks >= cow_blocks);
  std::int64_t cached_among_hits = 0;
  for (std::int64_t block_id : hit_blocks) {
    if (shared_blocks_.at(block_id).ref == 0) ++cached_among_hits;
  }
  const std::int64_t free_now = capacity_blocks_ - occupied_blocks();
  const std::int64_t reclaimable = cached_block_count() - cached_among_hits;
  if (new_blocks > free_now + reclaimable) return false;

  // Reference the hit blocks first (pulls cached ones off the LRU so the
  // reclaim below can never steal a block we are about to share).
  for (std::int64_t block_id : hit_blocks) {
    SharedBlock& block = shared_blocks_.at(block_id);
    if (block.ref == 0) cached_lru_.erase(block.lru_seq);
    ++block.ref;
  }
  if (new_blocks > free_now) reclaim_cached(new_blocks - free_now);

  Entry entry;
  entry.tokens = tokens;
  entry.admit_seq = next_seq_++;
  entry.priority = priority;
  entry.computed_tokens = hit_tokens;
  entry.prefix_id = prefix_eligible ? prefix_id : -1;
  entry.prefix_len = prefix_eligible ? prefix_len : 0;
  entry.shared = hit_blocks;
  entry.private_blocks = new_blocks;
  private_used_ += new_blocks;
  blocks_allocated_total_ += new_blocks;

  // --- Register missed full prefix blocks so later requests can share -------
  if (prefix_eligible) {
    const std::int64_t full_blocks = prefix_len / block_tokens_;
    for (std::int64_t k = shared_count; k < full_blocks; ++k) {
      if (prefix_index_.count({prefix_id, k}) > 0) continue;  // a concurrent
      // registrant got here first; our copy of the block stays private.
      const std::int64_t block_id = next_block_id_++;
      SharedBlock block;
      block.ref = 1;
      block.prefix_id = prefix_id;
      block.block_index = k;
      block.registrant = request_id;
      // A registered block is always a MISS (k >= shared_count), so its
      // contents cannot exist yet: note_prefilled flips it computed once
      // this request's prefill passes the block's upper boundary.
      block.computed = false;
      shared_blocks_[block_id] = block;
      prefix_index_[{prefix_id, k}] = block_id;
      entry.shared.push_back(block_id);
      entry.private_blocks -= 1;
      private_used_ -= 1;
      CIMTPU_CHECK(entry.private_blocks >= 0);
    }
    // Volunteer as the partial-tail donor so later same-prefix admissions
    // can copy the tail's prefix tokens out of this entry's block.
    if (prefix_len % block_tokens_ != 0 &&
        tail_donors_.count(prefix_id) == 0) {
      tail_donors_[prefix_id] = request_id;
    }
  }

  mapped_tokens_ += entry.tokens;
  entry_block_tokens_ += entry_blocks(entry) * block_tokens_;
  victim_index_insert(request_id, entry);
  slot_insert(request_id, std::move(entry));

  if (outcome != nullptr) {
    outcome->lookup_tokens =
        prefix_eligible ? std::min(prefix_len, prompt_len - 1) : 0;
    outcome->prefix_hit_tokens = hit_tokens;
    outcome->shared_blocks = shared_count;
    outcome->cow_blocks = cow_blocks;
  }
  return true;
}

bool KvCacheManager::try_grow(std::int64_t request_id, std::int64_t tokens) {
  const auto it = entries_.find(request_id);
  CIMTPU_CHECK(it != entries_.end());
  return try_grow_slot(it->second, tokens);
}


void KvCacheManager::release(std::int64_t request_id) {
  auto it = entries_.find(request_id);
  CIMTPU_CHECK(it != entries_.end());
  const std::int32_t slot = it->second;
  Entry& entry = slot_entry(slot);
  for (std::int64_t block_id : entry.shared) unref_shared(block_id);
  private_used_ -= entry.private_blocks;
  mapped_tokens_ -= entry.tokens;
  entry_block_tokens_ -= entry_blocks(entry) * block_tokens_;
  const auto donor = tail_donors_.find(entry.prefix_id);
  if (donor != tail_donors_.end() && donor->second == request_id) {
    tail_donors_.erase(donor);
  }
  victim_index_erase(request_id, entry);
  slot_erase(slot);
}

bool KvCacheManager::try_swap_out(std::int64_t request_id) {
  auto it = entries_.find(request_id);
  CIMTPU_CHECK(it != entries_.end());
  const std::int32_t slot = it->second;
  Entry& entry = slot_entry(slot);
  const std::int64_t blocks = entry_blocks(entry);
  if (host_used_blocks_ + blocks > host_capacity_blocks_) return false;
  // The host copy is whole and private: shared prefix blocks are
  // privatized on the way out (their device copies just lose a reference).
  for (std::int64_t block_id : entry.shared) unref_shared(block_id);
  private_used_ -= entry.private_blocks;
  mapped_tokens_ -= entry.tokens;
  entry_block_tokens_ -= blocks * block_tokens_;
  const auto donor = tail_donors_.find(entry.prefix_id);
  if (donor != tail_donors_.end() && donor->second == request_id) {
    tail_donors_.erase(donor);
  }
  victim_index_erase(request_id, entry);

  Entry host_entry = entry;
  host_entry.shared.clear();
  host_entry.private_blocks = blocks;
  host_entry.prefix_id = -1;  // re-entry is private; no index participation
  host_entry.prefix_len = 0;
  host_used_blocks_ += blocks;
  host_entries_[request_id] = std::move(host_entry);
  slot_erase(slot);
  return true;
}

bool KvCacheManager::try_swap_in(std::int64_t request_id) {
  auto it = host_entries_.find(request_id);
  CIMTPU_CHECK(it != host_entries_.end());
  const std::int64_t blocks = entry_blocks(it->second);
  if (!fits_blocks(blocks)) return false;
  const std::int64_t free_now = capacity_blocks_ - occupied_blocks();
  if (blocks > free_now) reclaim_cached(blocks - free_now);
  Entry entry = it->second;
  entry.admit_seq = next_seq_++;  // re-entry: counts as the newest admission
  private_used_ += blocks;
  blocks_allocated_total_ += blocks;
  mapped_tokens_ += entry.tokens;
  entry_block_tokens_ += blocks * block_tokens_;
  host_used_blocks_ -= blocks;
  victim_index_insert(request_id, entry);
  slot_insert(request_id, std::move(entry));
  host_entries_.erase(it);
  return true;
}

void KvCacheManager::note_prefilled(std::int64_t request_id,
                                    std::int64_t computed_tokens) {
  auto it = entries_.find(request_id);
  CIMTPU_CHECK(it != entries_.end());
  note_prefilled_slot(it->second, computed_tokens);
}

void KvCacheManager::note_prefilled_slot(std::int32_t slot,
                                         std::int64_t computed_tokens) {
  Entry& entry = slot_entry(slot);
  entry.computed_tokens = std::min(
      std::max(entry.computed_tokens, computed_tokens), entry.tokens);
  if (!enable_prefix_cache_ || entry.prefix_id < 0) return;
  // Blocks this entry registered become hittable once the prefill has
  // passed their upper token boundary.
  for (std::int64_t block_id : entry.shared) {
    SharedBlock& block = shared_blocks_.at(block_id);
    if (block.registrant == entry.id && !block.computed &&
        (block.block_index + 1) * block_tokens_ <= entry.computed_tokens) {
      block.computed = true;
      block.registrant = -1;
    }
  }
}

std::int64_t KvCacheManager::invalidate_blocks(std::int64_t request_id) {
  const auto it = entries_.find(request_id);
  if (it != entries_.end()) {
    const std::int64_t blocks = entry_blocks(slot_entry(it->second));
    blocks_invalidated_total_ += blocks;
    release(request_id);
    return blocks;
  }
  const auto host_it = host_entries_.find(request_id);
  if (host_it != host_entries_.end()) {
    const std::int64_t blocks = host_it->second.private_blocks;
    blocks_invalidated_total_ += blocks;
    host_used_blocks_ -= blocks;
    host_entries_.erase(host_it);
    return blocks;
  }
  return 0;
}

bool KvCacheManager::restore_from_host(std::int64_t request_id) {
  const auto it = entries_.find(request_id);
  if (it == entries_.end()) return false;
  const std::int64_t blocks = entry_blocks(slot_entry(it->second));
  // The shadow is a transient host-side checkpoint slot: it must fit
  // next to the blocks the swap pool currently holds.
  if (host_used_blocks_ + blocks > host_capacity_blocks_) return false;
  blocks_restored_total_ += blocks;
  return true;
}

std::int64_t KvCacheManager::drop_cached_blocks() {
  const std::int64_t dropped = cached_block_count();
  for (auto it = cached_lru_.begin(); it != cached_lru_.end();) {
    const std::int64_t block_id = it->second;
    const auto block = shared_blocks_.find(block_id);
    CIMTPU_CHECK(block != shared_blocks_.end() && block->second.ref == 0);
    prefix_index_.erase({block->second.prefix_id, block->second.block_index});
    shared_blocks_.erase(block);
    it = cached_lru_.erase(it);
  }
  blocks_invalidated_total_ += dropped;
  return dropped;
}

bool KvCacheManager::grow_needs_block(std::int64_t request_id) const {
  const auto it = entries_.find(request_id);
  CIMTPU_CHECK(it != entries_.end());
  return grow_needs_block_slot(it->second);
}

std::int64_t KvCacheManager::resident_tokens(std::int64_t request_id) const {
  auto it = entries_.find(request_id);
  return it == entries_.end() ? 0 : slot_entry(it->second).tokens;
}

std::int64_t KvCacheManager::swapped_tokens(std::int64_t request_id) const {
  auto it = host_entries_.find(request_id);
  return it == host_entries_.end() ? 0 : it->second.tokens;
}

std::int64_t KvCacheManager::shared_block_count(
    std::int64_t request_id) const {
  const auto it = entries_.find(request_id);
  return it == entries_.end()
             ? 0
             : static_cast<std::int64_t>(slot_entry(it->second).shared.size());
}

std::int64_t KvCacheManager::pick_eviction_victim(std::int64_t protect) const {
  if (policy_ == EvictionPolicy::kNone) return -1;
  if (policy_ == EvictionPolicy::kPreemptNewest ||
      policy_ == EvictionPolicy::kSwapToHost) {
    // Newest admission first; admit_seqs are unique, so the admit-order
    // index gives the victim in O(log n) with at most one protect skip.
    for (auto it = admit_order_.rbegin(); it != admit_order_.rend(); ++it) {
      if (it->second != protect) return it->second;
    }
    return -1;
  }
  // kPriorityVictim.  Forward-progress guarantee: the oldest resident is
  // exempt.  Without it, the largest-KV tie-break livelocks under
  // recompute — the most-progressed low-priority sequence is always the
  // largest, so it is reset every pressure cycle and never finishes.
  std::int64_t eligible = static_cast<std::int64_t>(entries_.size());
  if (protect >= 0 && entries_.count(protect) > 0) --eligible;
  if (eligible <= 0) return -1;
  std::int64_t exempt = -1;
  if (eligible >= 2) {  // a sole candidate stays evictable
    for (auto it = admit_order_.begin(); it != admit_order_.end(); ++it) {
      if (it->second != protect) {
        exempt = it->second;
        break;
      }
    }
  }
  // Linear min-scan with the VictimKey order: the resident set is bounded
  // by max batch, so this beats keeping a sorted index current (which
  // would charge two tree updates to every decoded token).  The order is
  // a strict total order (id tie-break), so the minimum is unique and the
  // unordered iteration order is immaterial.
  std::int64_t best_id = -1;
  VictimKey best{};
  for (const auto& [id, slot] : entries_) {
    if (id == protect || id == exempt) continue;
    const Entry& entry = slot_entry(slot);
    const VictimKey key{entry.priority, entry.tokens, entry.admit_seq, id};
    if (best_id < 0 || key < best) {
      best = key;
      best_id = id;
    }
  }
  return best_id;
}

bool KvCacheManager::audit() const {
  // --- Slot storage: id map and free list partition the slot array -----------
  if (entries_.size() + free_slots_.size() != entry_slots_.size()) {
    return false;
  }
  for (std::int32_t slot : free_slots_) {
    if (slot < 0 || static_cast<std::size_t>(slot) >= entry_slots_.size() ||
        slot_entry(slot).id != -1) {
      return false;
    }
  }
  // --- Device entries: block math and rollups --------------------------------
  std::int64_t private_sum = 0;
  std::int64_t token_sum = 0;
  std::int64_t block_token_sum = 0;
  std::unordered_map<std::int64_t, std::int64_t> ref_recount;
  for (const auto& [id, slot] : entries_) {
    if (slot < 0 || static_cast<std::size_t>(slot) >= entry_slots_.size()) {
      return false;
    }
    const Entry& entry = slot_entry(slot);
    if (entry.id != id) return false;
    if (entry.tokens < 0 || entry.private_blocks < 0) return false;
    if (entry_blocks(entry) !=
        static_cast<std::int64_t>(entry.shared.size()) +
            entry.private_blocks) {
      return false;
    }
    private_sum += entry.private_blocks;
    token_sum += entry.tokens;
    block_token_sum += entry_blocks(entry) * block_tokens_;
    for (std::int64_t block_id : entry.shared) ++ref_recount[block_id];
  }
  if (private_sum != private_used_ || token_sum != mapped_tokens_ ||
      block_token_sum != entry_block_tokens_) {
    return false;
  }
  // --- Shared registry: refcounts, cached set, index -------------------------
  std::int64_t cached_recount = 0;
  for (const auto& [block_id, block] : shared_blocks_) {
    const auto counted = ref_recount.find(block_id);
    const std::int64_t refs =
        counted == ref_recount.end() ? 0 : counted->second;
    if (block.ref != refs) return false;  // mapped blocks hold ref >= 1
    if (block.ref == 0) {
      if (!block.computed) return false;  // uncomputed orphans are destroyed
      ++cached_recount;
      const auto lru = cached_lru_.find(block.lru_seq);
      if (lru == cached_lru_.end() || lru->second != block_id) return false;
    }
    const auto indexed = prefix_index_.find({block.prefix_id,
                                             block.block_index});
    if (indexed == prefix_index_.end() || indexed->second != block_id) {
      return false;
    }
  }
  for (const auto& counted : ref_recount) {
    if (shared_blocks_.count(counted.first) == 0) return false;
  }
  if (cached_recount != cached_block_count() ||
      prefix_index_.size() != shared_blocks_.size()) {
    return false;
  }
  if (occupied_blocks() > capacity_blocks_) return false;
  // --- Victim indices --------------------------------------------------------
  if (admit_order_.size() != entries_.size()) return false;
  for (const auto& [seq, id] : admit_order_) {
    const auto entry = entries_.find(id);
    if (entry == entries_.end() ||
        slot_entry(entry->second).admit_seq != seq) {
      return false;
    }
  }
  for (const auto& [prefix_id, donor] : tail_donors_) {
    const auto entry = entries_.find(donor);
    if (entry == entries_.end() ||
        slot_entry(entry->second).prefix_id != prefix_id) {
      return false;
    }
  }
  // --- Host pool -------------------------------------------------------------
  std::int64_t host_sum = 0;
  for (const auto& [id, entry] : host_entries_) {
    if (entry.tokens < 0) return false;
    if (entry.private_blocks != entry_blocks(entry) ||
        !entry.shared.empty()) {
      return false;  // host copies are whole and private
    }
    host_sum += entry.private_blocks;
  }
  return host_sum == host_used_blocks_ &&
         host_used_blocks_ <= host_capacity_blocks_;
}

void KvCacheManager::publish(MetricsRegistry* registry) const {
  CIMTPU_CHECK(registry != nullptr);
  registry->set_counter("kv.capacity_blocks", capacity_blocks_);
  registry->set_counter("kv.occupied_blocks", occupied_blocks());
  registry->set_counter("kv.referenced_blocks", referenced_blocks());
  registry->set_counter("kv.cached_blocks", cached_block_count());
  registry->set_counter("kv.blocks_allocated_total", blocks_allocated_total_);
  registry->set_counter("kv.cached_blocks_reclaimed_total",
                        cached_blocks_reclaimed_total_);
  registry->set_counter("kv.host_used_blocks", host_used_blocks_);
  registry->set_counter("kv.blocks_invalidated_total",
                        blocks_invalidated_total_);
  registry->set_counter("kv.blocks_restored_total", blocks_restored_total_);
  registry->set_gauge("kv.internal_fragmentation", internal_fragmentation());
}

}  // namespace cimtpu::serving
