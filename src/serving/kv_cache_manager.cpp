#include "serving/kv_cache_manager.h"

#include <cmath>

#include "common/math_util.h"
#include "common/status.h"

namespace cimtpu::serving {

std::string eviction_policy_name(EvictionPolicy policy) {
  switch (policy) {
    case EvictionPolicy::kNone: return "none";
    case EvictionPolicy::kPreemptNewest: return "preempt_newest";
    case EvictionPolicy::kSwapToHost: return "swap_to_host";
    case EvictionPolicy::kPriorityVictim: return "priority_victim";
  }
  return "?";
}

KvCacheManager::KvCacheManager(Bytes capacity, Bytes bytes_per_token,
                               EvictionPolicy policy, Bytes host_capacity)
    : capacity_(capacity),
      bytes_per_token_(bytes_per_token),
      policy_(policy),
      host_capacity_(host_capacity) {
  CIMTPU_CONFIG_CHECK(capacity > 0, "KV budget must be positive");
  CIMTPU_CONFIG_CHECK(bytes_per_token > 0, "KV token bytes must be positive");
  CIMTPU_CONFIG_CHECK(host_capacity >= 0, "host pool capacity must be >= 0");
}

Bytes KvCacheManager::hbm_kv_budget(const models::TransformerConfig& model,
                                    Bytes chip_hbm_capacity, int chips) {
  CIMTPU_CONFIG_CHECK(chips >= 1, "KV budget needs >= 1 chip");
  CIMTPU_CONFIG_CHECK(model.num_layers >= chips,
                      "fewer layers than pipeline stages");
  // The bottleneck stage holds ceil(layers/chips) layers: its weights and
  // its per-layer share of every cached token must fit ONE chip's HBM.
  // The admissible whole-model KV is the bottleneck's headroom scaled by
  // the inverse of its layer share (for even splits this reduces to
  // chips * HBM - weights).
  const std::int64_t stage_layers =
      ceil_div<std::int64_t>(model.num_layers, chips);
  const Bytes stage_weights =
      model.layer_weight_bytes() * static_cast<double>(stage_layers);
  const Bytes stage_free = chip_hbm_capacity - stage_weights;
  CIMTPU_CONFIG_CHECK(stage_free > 0,
                      "model '" << model.name << "' bottleneck stage ("
                                << stage_layers << " layers, "
                                << format_bytes(stage_weights)
                                << ") exceeds one chip's HBM over " << chips
                                << " chip(s)");
  return stage_free * static_cast<double>(model.num_layers) /
         static_cast<double>(stage_layers);
}

Bytes KvCacheManager::token_bytes(const models::TransformerConfig& model) {
  return models::kv_cache_bytes_per_layer(model, /*batch=*/1, /*kv_len=*/1) *
         static_cast<double>(model.num_layers);
}

bool KvCacheManager::try_admit(std::int64_t request_id, std::int64_t tokens,
                               std::int64_t priority) {
  CIMTPU_CHECK(entries_.count(request_id) == 0);
  CIMTPU_CHECK(host_entries_.count(request_id) == 0);
  CIMTPU_CHECK(tokens >= 0);
  const Bytes need = bytes_per_token_ * static_cast<double>(tokens);
  if (used_ + need > capacity_) return false;
  entries_[request_id] = Entry{tokens, next_seq_++, priority};
  used_ += need;
  return true;
}

bool KvCacheManager::try_grow(std::int64_t request_id, std::int64_t tokens) {
  auto it = entries_.find(request_id);
  CIMTPU_CHECK(it != entries_.end());
  const Bytes need = bytes_per_token_ * static_cast<double>(tokens);
  if (used_ + need > capacity_) return false;
  it->second.tokens += tokens;
  used_ += need;
  return true;
}

void KvCacheManager::release(std::int64_t request_id) {
  auto it = entries_.find(request_id);
  CIMTPU_CHECK(it != entries_.end());
  used_ -= bytes_per_token_ * static_cast<double>(it->second.tokens);
  if (used_ < 0) used_ = 0;  // guard accumulated FP error
  entries_.erase(it);
}

bool KvCacheManager::try_swap_out(std::int64_t request_id) {
  auto it = entries_.find(request_id);
  CIMTPU_CHECK(it != entries_.end());
  const Bytes bytes = bytes_per_token_ * static_cast<double>(it->second.tokens);
  if (host_used_ + bytes > host_capacity_) return false;
  host_entries_[request_id] = it->second;
  host_used_ += bytes;
  used_ -= bytes;
  if (used_ < 0) used_ = 0;  // guard accumulated FP error
  entries_.erase(it);
  return true;
}

bool KvCacheManager::try_swap_in(std::int64_t request_id) {
  auto it = host_entries_.find(request_id);
  CIMTPU_CHECK(it != host_entries_.end());
  const Bytes bytes = bytes_per_token_ * static_cast<double>(it->second.tokens);
  if (used_ + bytes > capacity_) return false;
  Entry entry = it->second;
  entry.admit_seq = next_seq_++;  // re-entry: counts as the newest admission
  entries_[request_id] = entry;
  used_ += bytes;
  host_used_ -= bytes;
  if (host_used_ < 0) host_used_ = 0;  // guard accumulated FP error
  host_entries_.erase(it);
  return true;
}

std::int64_t KvCacheManager::resident_tokens(std::int64_t request_id) const {
  auto it = entries_.find(request_id);
  return it == entries_.end() ? 0 : it->second.tokens;
}

std::int64_t KvCacheManager::swapped_tokens(std::int64_t request_id) const {
  auto it = host_entries_.find(request_id);
  return it == host_entries_.end() ? 0 : it->second.tokens;
}

std::int64_t KvCacheManager::pick_eviction_victim(std::int64_t protect) const {
  if (policy_ == EvictionPolicy::kNone) return -1;
  // Forward-progress guarantee for kPriorityVictim: the oldest resident is
  // exempt.  Without it, the largest-KV tie-break livelocks under
  // recompute — the most-progressed low-priority sequence is always the
  // largest, so it is reset every pressure cycle and never finishes.
  // (Newest-victim policies spare the oldest by construction.)
  std::int64_t exempt = -1;
  if (policy_ == EvictionPolicy::kPriorityVictim) {
    std::int64_t eligible = 0;
    std::int64_t oldest_seq = -1;
    for (const auto& [id, entry] : entries_) {
      if (id == protect) continue;
      ++eligible;
      if (exempt < 0 || entry.admit_seq < oldest_seq ||
          (entry.admit_seq == oldest_seq && id < exempt)) {
        exempt = id;
        oldest_seq = entry.admit_seq;
      }
    }
    if (eligible < 2) exempt = -1;  // sole candidate stays evictable
  }
  std::int64_t victim = -1;
  const Entry* victim_entry = nullptr;
  // `better(a, b)`: should candidate a replace current victim b?
  const auto better = [this](std::int64_t a_id, const Entry& a,
                             std::int64_t b_id, const Entry& b) {
    if (policy_ == EvictionPolicy::kPriorityVictim) {
      // Lowest priority first; among equals, the largest KV footprint
      // frees the most pages per preemption.
      if (a.priority != b.priority) return a.priority < b.priority;
      if (a.tokens != b.tokens) return a.tokens > b.tokens;
    }
    // kPreemptNewest / kSwapToHost (and remaining ties): newest admission
    // first; ties by id for platform-independent determinism.
    if (a.admit_seq != b.admit_seq) return a.admit_seq > b.admit_seq;
    return a_id > b_id;
  };
  for (const auto& [id, entry] : entries_) {
    if (id == protect || id == exempt) continue;
    if (victim_entry == nullptr || better(id, entry, victim, *victim_entry)) {
      victim = id;
      victim_entry = &entry;
    }
  }
  return victim;
}

bool KvCacheManager::audit() const {
  const auto balances = [this](const std::unordered_map<std::int64_t, Entry>&
                                   entries,
                               Bytes used, Bytes capacity) {
    double tokens = 0;
    for (const auto& [id, entry] : entries) {
      if (entry.tokens < 0) return false;
      tokens += static_cast<double>(entry.tokens);
    }
    const Bytes expected = bytes_per_token_ * tokens;
    const Bytes tolerance = 1e-6 * (expected + 1.0);
    return std::abs(used - expected) <= tolerance &&
           used <= capacity + tolerance;
  };
  return balances(entries_, used_, capacity_) &&
         balances(host_entries_, host_used_, host_capacity_);
}

}  // namespace cimtpu::serving
