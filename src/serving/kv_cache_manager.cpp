#include "serving/kv_cache_manager.h"

#include "common/math_util.h"
#include "common/status.h"

namespace cimtpu::serving {

KvCacheManager::KvCacheManager(Bytes capacity, Bytes bytes_per_token,
                               EvictionPolicy policy)
    : capacity_(capacity), bytes_per_token_(bytes_per_token), policy_(policy) {
  CIMTPU_CONFIG_CHECK(capacity > 0, "KV budget must be positive");
  CIMTPU_CONFIG_CHECK(bytes_per_token > 0, "KV token bytes must be positive");
}

Bytes KvCacheManager::hbm_kv_budget(const models::TransformerConfig& model,
                                    Bytes chip_hbm_capacity, int chips) {
  CIMTPU_CONFIG_CHECK(chips >= 1, "KV budget needs >= 1 chip");
  CIMTPU_CONFIG_CHECK(model.num_layers >= chips,
                      "fewer layers than pipeline stages");
  // The bottleneck stage holds ceil(layers/chips) layers: its weights and
  // its per-layer share of every cached token must fit ONE chip's HBM.
  // The admissible whole-model KV is the bottleneck's headroom scaled by
  // the inverse of its layer share (for even splits this reduces to
  // chips * HBM - weights).
  const std::int64_t stage_layers =
      ceil_div<std::int64_t>(model.num_layers, chips);
  const Bytes stage_weights =
      model.layer_weight_bytes() * static_cast<double>(stage_layers);
  const Bytes stage_free = chip_hbm_capacity - stage_weights;
  CIMTPU_CONFIG_CHECK(stage_free > 0,
                      "model '" << model.name << "' bottleneck stage ("
                                << stage_layers << " layers, "
                                << format_bytes(stage_weights)
                                << ") exceeds one chip's HBM over " << chips
                                << " chip(s)");
  return stage_free * static_cast<double>(model.num_layers) /
         static_cast<double>(stage_layers);
}

Bytes KvCacheManager::token_bytes(const models::TransformerConfig& model) {
  return models::kv_cache_bytes_per_layer(model, /*batch=*/1, /*kv_len=*/1) *
         static_cast<double>(model.num_layers);
}

bool KvCacheManager::try_admit(std::int64_t request_id, std::int64_t tokens) {
  CIMTPU_CHECK(entries_.count(request_id) == 0);
  CIMTPU_CHECK(tokens >= 0);
  const Bytes need = bytes_per_token_ * static_cast<double>(tokens);
  if (used_ + need > capacity_) return false;
  entries_[request_id] = Entry{tokens, next_seq_++};
  used_ += need;
  return true;
}

bool KvCacheManager::try_grow(std::int64_t request_id, std::int64_t tokens) {
  auto it = entries_.find(request_id);
  CIMTPU_CHECK(it != entries_.end());
  const Bytes need = bytes_per_token_ * static_cast<double>(tokens);
  if (used_ + need > capacity_) return false;
  it->second.tokens += tokens;
  used_ += need;
  return true;
}

void KvCacheManager::release(std::int64_t request_id) {
  auto it = entries_.find(request_id);
  CIMTPU_CHECK(it != entries_.end());
  used_ -= bytes_per_token_ * static_cast<double>(it->second.tokens);
  if (used_ < 0) used_ = 0;  // guard accumulated FP error
  entries_.erase(it);
}

std::int64_t KvCacheManager::resident_tokens(std::int64_t request_id) const {
  auto it = entries_.find(request_id);
  return it == entries_.end() ? 0 : it->second.tokens;
}

std::int64_t KvCacheManager::pick_eviction_victim(std::int64_t protect) const {
  if (policy_ == EvictionPolicy::kNone) return -1;
  std::int64_t victim = -1;
  std::int64_t victim_seq = -1;
  for (const auto& [id, entry] : entries_) {
    if (id == protect) continue;
    // Newest admission first; ties (impossible by construction) by id for
    // platform-independent determinism.
    if (entry.admit_seq > victim_seq ||
        (entry.admit_seq == victim_seq && id > victim)) {
      victim = id;
      victim_seq = entry.admit_seq;
    }
  }
  return victim;
}

}  // namespace cimtpu::serving
