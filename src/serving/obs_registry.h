#pragma once
// Observability registry for the serving simulator: named counters,
// gauges, and fixed-bucket histograms that the serving subsystems
// (ServingCounters, StepCostCache, KvCacheManager, admission policies)
// publish into at the end of a run, plus the time-series sampler that
// snapshots engine state at a configurable simulated-time interval.
//
// Design constraints, in priority order:
//   * DETERMINISM — everything is keyed by std::map, so iteration (and
//     hence JSON export) order is the lexicographic name order on every
//     platform and thread count.
//   * HOT-PATH SAFETY — `counter` / `gauge` / `histogram` return stable
//     references (std::map nodes never move), so per-step code resolves
//     its instruments ONCE before the loop and then only increments; no
//     per-step name lookups, no per-step allocations.
//   * SELF-CONTAINED EXPORT — `to_json` emits the whole registry, so
//     bench schemas pick up newly-published instruments without
//     hand-threading each one through ServingMetrics.

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "common/units.h"
#include "serving/stats.h"

namespace cimtpu::serving {

/// Named counters/gauges/histograms.  Copyable (a run's registry is part
/// of its ServingMetrics result).
class MetricsRegistry {
 public:
  /// The counter named `name`, created at 0 on first use.  The reference
  /// is stable for the registry's lifetime.
  std::int64_t& counter(const std::string& name) { return counters_[name]; }

  /// The gauge named `name`, created at 0 on first use.
  double& gauge(const std::string& name) { return gauges_[name]; }

  /// The histogram named `name`; created with `upper_bounds` on first
  /// use, returned as-is afterwards (later bounds are ignored — the first
  /// registration wins).
  FixedBucketHistogram& histogram(const std::string& name,
                                  std::vector<double> upper_bounds);

  void set_counter(const std::string& name, std::int64_t value) {
    counters_[name] = value;
  }
  void set_gauge(const std::string& name, double value) {
    gauges_[name] = value;
  }

  const std::map<std::string, std::int64_t>& counters() const {
    return counters_;
  }
  const std::map<std::string, double>& gauges() const { return gauges_; }
  const std::map<std::string, FixedBucketHistogram>& histograms() const {
    return histograms_;
  }

  /// The whole registry as one JSON object:
  ///   {"counters": {...}, "gauges": {...},
  ///    "histograms": {name: {count, sum, min, max, mean, p50, p95, p99,
  ///                          bounds: [...], bucket_counts: [...]}}}
  /// Deterministic: names in lexicographic order, doubles at full
  /// round-trip precision.
  std::string to_json() const;

 private:
  std::map<std::string, std::int64_t> counters_;
  std::map<std::string, double> gauges_;
  std::map<std::string, FixedBucketHistogram> histograms_;
};

/// One snapshot of the engine's observable state, taken between steps.
/// `tenant_admitted_tokens` lists (tenant_id, cumulative admitted
/// prompt+output tokens) ascending by tenant id, only for tenants that
/// have admitted at least one request by the sample time.
struct TimeSample {
  Seconds time = 0;        ///< simulated time of the snapshot
  std::int64_t step = 0;   ///< engine steps completed at the snapshot
  std::int64_t queue_depth = 0;         ///< requests waiting for admission
  std::int64_t resident_sequences = 0;  ///< requests in the running batch
  std::int64_t resident_decoders = 0;   ///< residents past prefill
  std::int64_t swapped_sequences = 0;   ///< requests in the host pool
  std::int64_t kv_referenced_blocks = 0;
  std::int64_t kv_occupied_blocks = 0;  ///< referenced + cached prefix
  std::int64_t kv_capacity_blocks = 0;
  double kv_internal_fragmentation = 0;
  double prefix_hit_rate = 0;  ///< cumulative, prefix-tagged tokens only
  std::vector<std::pair<std::int64_t, std::int64_t>> tenant_admitted_tokens;
};

/// Collects TimeSamples at a fixed simulated-time interval.  The driver
/// asks `due(now)` after each step — a branch on two doubles, nothing
/// else — and builds the (allocating) snapshot only when it returns true,
/// so a disabled sampler (interval 0) costs one predictable branch per
/// step.  A burst of simulated time crossing several intervals yields ONE
/// sample (the engine had no intermediate state to observe).
class TimeSeriesSampler {
 public:
  explicit TimeSeriesSampler(Seconds interval);

  bool enabled() const { return interval_ > 0; }
  bool due(Seconds now) const { return interval_ > 0 && now >= next_; }

  /// Records `sample` and advances the next-due time past sample.time.
  void record(TimeSample sample);

  const std::vector<TimeSample>& samples() const { return samples_; }
  std::vector<TimeSample> take() { return std::move(samples_); }

 private:
  Seconds interval_;
  Seconds next_ = 0;  ///< first sample at the first step past t=0
  std::vector<TimeSample> samples_;
};

/// TimeSamples as a JSON array (deterministic field order/precision; the
/// bench schema-v6 "timeseries" block and trace exports both embed it).
std::string time_samples_json(const std::vector<TimeSample>& samples);

/// A double as a JSON number that round-trips exactly (max_digits10) and
/// renders identically on every platform/thread count for identical
/// values — the byte-identical-trace guarantee rests on this.  Non-finite
/// values (never produced by the simulator) render as 0 to keep the JSON
/// valid.
std::string json_double(double value);

}  // namespace cimtpu::serving
