#pragma once
// Replayable request traces (JSONL, one request per line).
//
// A production serving study should run on production arrivals, not just
// synthetic streams.  This module round-trips the full `Request` record —
// arrivals, lengths, priority/tenant/prefix assignment, SLO deadlines —
// through a flat JSONL file so traces captured from a real fleet (or
// exported from generate_requests) drop straight into run_serving.  The
// format is deliberately line-oriented and flat: greppable, streamable,
// and diffable in CI.
//
// One line per request, objects with these keys (missing keys take the
// Request defaults; unknown keys are rejected loudly):
//
//   {"id": 0, "arrival_s": 0.125, "prompt": 512, "output": 128,
//    "priority": 0, "tenant": 0, "prefix_id": -1, "prefix_len": 0,
//    "ttft_deadline_s": 2.1, "tpot_deadline_s": 0.105}
//
// Doubles are printed with %.17g, so save -> load reproduces every field
// bit for bit and a replayed trace yields bit-identical ServingMetrics.

#include <string>
#include <vector>

#include "serving/request_gen.h"

namespace cimtpu::serving {

/// Serializes `requests` to the JSONL trace format (one line per request,
/// trailing newline after the last line).
std::string request_trace_jsonl(const std::vector<Request>& requests);

/// Parses a JSONL trace.  Throws ConfigError on malformed lines, unknown
/// keys, or arrivals out of order (run_serving requires a sorted trace).
/// Blank lines are ignored.
std::vector<Request> parse_request_trace_jsonl(const std::string& text);

/// Writes `requests` to `path` in the JSONL trace format.  Throws
/// ConfigError if the file cannot be written.
void save_request_trace(const std::string& path,
                        const std::vector<Request>& requests);

/// Reads a JSONL trace from `path`.  Throws ConfigError if the file cannot
/// be read or fails to parse.
std::vector<Request> load_request_trace(const std::string& path);

}  // namespace cimtpu::serving
