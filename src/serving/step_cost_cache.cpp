#include "serving/step_cost_cache.h"

#include <sstream>

#include "common/status.h"
#include "ir/dtype.h"
#include "serving/obs_registry.h"

namespace cimtpu::serving {

namespace {

constexpr int kLenBits = 40;
constexpr int kBatchBits = 23;  // bits 40..62; bit 63 is the kind flag
constexpr std::size_t kInitialSlots = 256;  // power of two

/// Fibonacci (multiplicative) hash.  The home slot MUST come from the HIGH
/// bits of the product: masking the low bits reduces to (key mod size) for
/// any odd multiplier, which collapses real shape keys badly — bucketed
/// lengths are multiples of seqlen_bucket, and batch/kind live in bits
/// 40+, so low-bit masking would leave only a handful of distinct home
/// slots.  The top bits mix every input bit.
std::uint64_t mix(std::uint64_t key) { return key * 0x9E3779B97F4A7C15ull; }

int shift_for(std::size_t slots) {  // 64 - log2(slots), slots a power of two
  return 64 - __builtin_ctzll(static_cast<unsigned long long>(slots));
}

}  // namespace

FlatCostTable::FlatCostTable()
    : slots_(kInitialSlots), shift_(shift_for(kInitialSlots)) {}

std::size_t FlatCostTable::slot_index(std::uint64_t key) const {
  return static_cast<std::size_t>(mix(key) >> shift_);
}

const StepCost* FlatCostTable::find(std::uint64_t key) const {
  for (std::size_t i = slot_index(key);; i = (i + 1) & (slots_.size() - 1)) {
    const Slot& slot = slots_[i];
    if (slot.key == key) return &slot.cost;
    if (slot.key == 0) return nullptr;
  }
}

void FlatCostTable::insert(std::uint64_t key, const StepCost& cost) {
  CIMTPU_CHECK(key != 0);
  if ((size_ + 1) * 10 > slots_.size() * 7) grow();
  for (std::size_t i = slot_index(key);; i = (i + 1) & (slots_.size() - 1)) {
    Slot& slot = slots_[i];
    if (slot.key == key) {  // racing duplicate compute: values identical
      slot.cost = cost;
      return;
    }
    if (slot.key == 0) {
      slot.key = key;
      slot.cost = cost;
      ++size_;
      return;
    }
  }
}

void FlatCostTable::grow() {
  std::vector<Slot> old = std::move(slots_);
  slots_.assign(old.size() * 2, Slot{});
  shift_ = shift_for(slots_.size());
  for (const Slot& slot : old) {
    if (slot.key == 0) continue;
    for (std::size_t i = slot_index(slot.key);;
         i = (i + 1) & (slots_.size() - 1)) {
      if (slots_[i].key == 0) {
        slots_[i] = slot;
        break;
      }
    }
  }
}

bool SharedStepCostCache::Store::try_get(std::uint64_t key,
                                         StepCost* out) const {
  std::lock_guard<std::mutex> lock(mu_);
  const StepCost* found = table_.find(key);
  if (found == nullptr) return false;
  *out = *found;
  return true;
}

void SharedStepCostCache::Store::put(std::uint64_t key, const StepCost& cost) {
  std::lock_guard<std::mutex> lock(mu_);
  table_.insert(key, cost);
}

std::size_t SharedStepCostCache::Store::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return table_.size();
}

SharedStepCostCache::Store* SharedStepCostCache::store(
    const std::string& signature) {
  std::lock_guard<std::mutex> lock(mu_);
  std::unique_ptr<Store>& slot = stores_[signature];
  if (slot == nullptr) slot = std::make_unique<Store>();
  return slot.get();
}

std::size_t SharedStepCostCache::store_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stores_.size();
}

std::size_t SharedStepCostCache::total_entries() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::size_t total = 0;
  for (const auto& [signature, store] : stores_) total += store->size();
  return total;
}

namespace {

void append_memory_level(std::ostringstream& out,
                         const mem::MemoryLevelSpec& level) {
  out << level.capacity << ',' << level.bandwidth << '|';
}

}  // namespace

std::string cost_cache_signature(const arch::TpuChipConfig& chip,
                                 const models::TransformerConfig& model,
                                 std::int64_t bucket) {
  // Anything that changes a run_*_layer result must land here — not just
  // the preset name, since callers may mutate individual spec fields of a
  // named preset (design-space sweeps do exactly that).  So the signature
  // spells out every numeric knob the layer simulator can see: clock and
  // technology, the active MXU geometry, the VPU, the memory hierarchy,
  // and the ICI link, plus the model architecture and the cost bucket.
  std::ostringstream signature;
  signature << chip.name << '|' << chip.technology << '|' << chip.clock << '|'
            << chip.mxu_count << '|' << mxu_kind_name(chip.mxu_kind) << '|';
  if (chip.mxu_kind == arch::MxuKind::kDigitalSystolic) {
    signature << chip.systolic.rows << ',' << chip.systolic.cols << ','
              << static_cast<int>(chip.systolic.dataflow) << '|';
  } else {
    signature << chip.cim.grid_rows << ',' << chip.cim.grid_cols << ','
              << chip.cim.core_rows << ',' << chip.cim.core_cols << ','
              << chip.cim.core_macs_per_cycle << ','
              << chip.cim.weight_io_bytes_per_cycle << ','
              << chip.cim.overlapped_weight_update << '|';
  }
  signature << chip.vpu.sublanes << ',' << chip.vpu.lanes << ','
            << chip.vpu.ops_per_lane_per_cycle << '|';
  append_memory_level(signature, chip.memory.vmem);
  append_memory_level(signature, chip.memory.cmem);
  append_memory_level(signature, chip.memory.hbm);
  signature << chip.ici.links_per_chip << ',' << chip.ici.bandwidth_per_link
            << ',' << chip.ici.hop_latency << '|'
            << model.name << '|' << model.num_layers << '|' << model.d_model
            << '|' << model.num_heads << '|' << model.d_ff << '|'
            << model.vocab_size << '|' << static_cast<int>(model.ffn) << '|'
            << ir::dtype_name(model.dtype) << '|' << bucket;
  return signature.str();
}

StepCostCache::StepCostCache(const sim::Simulator& simulator,
                             const models::TransformerConfig& model,
                             std::int64_t bucket,
                             SharedStepCostCache::Store* shared)
    : simulator_(&simulator), model_(model), bucket_(bucket), shared_(shared) {
  CIMTPU_CONFIG_CHECK(bucket >= 1, "seqlen bucket must be >= 1");
}

StepCost StepCostCache::prefill_layer(std::int64_t batch,
                                      std::int64_t seq_len) {
  return lookup(/*prefill=*/true, batch, bucket_up(seq_len));
}

StepCost StepCostCache::decode_layer(std::int64_t batch, std::int64_t kv_len) {
  return lookup(/*prefill=*/false, batch, bucket_up(kv_len));
}

std::uint64_t StepCostCache::pack_key(bool prefill, std::int64_t batch,
                                      std::int64_t len) {
  CIMTPU_CHECK(batch >= 1 && batch < (std::int64_t{1} << kBatchBits));
  CIMTPU_CHECK(len >= 1 && len < (std::int64_t{1} << kLenBits));
  return (prefill ? 1ull << 63 : 0ull) |
         (static_cast<std::uint64_t>(batch) << kLenBits) |
         static_cast<std::uint64_t>(len);
}

StepCost StepCostCache::lookup(bool prefill, std::int64_t batch,
                               std::int64_t len) {
  const std::uint64_t key = pack_key(prefill, batch, len);
  if (const StepCost* found = local_.find(key)) {
    ++hits_;
    return *found;
  }
  ++misses_;
  StepCost cost;
  if (shared_ == nullptr || !shared_->try_get(key, &cost)) {
    const sim::GraphResult graph =
        prefill ? sim::run_prefill_layer(*simulator_, model_, batch, len)
                : sim::run_decode_layer(*simulator_, model_, batch, len);
    cost.latency = graph.latency;
    cost.mxu_busy_time = graph.mxu_busy_time;
    cost.mxu_energy = graph.mxu_energy();
    cost.total_energy = graph.total_energy();
    if (shared_ != nullptr) shared_->put(key, cost);
  }
  local_.insert(key, cost);
  return cost;
}

void StepCostCache::publish(MetricsRegistry* registry) const {
  CIMTPU_CHECK(registry != nullptr);
  registry->set_counter("cost_cache.entries",
                        static_cast<std::int64_t>(size()));
  registry->set_counter("cost_cache.hits", hits_);
  registry->set_counter("cost_cache.misses", misses_);
  registry->set_gauge("cost_cache.occupancy", occupancy());
}

}  // namespace cimtpu::serving
