#include "serving/metrics_codec.h"

#include <cstring>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/status.h"

namespace cimtpu::serving {

namespace {

// --- Writer ------------------------------------------------------------------

class Writer {
 public:
  template <typename T>
  void put(const T& value) {
    static_assert(std::is_trivially_copyable_v<T>);
    const auto old_size = out_.size();
    out_.resize(old_size + sizeof(value));
    std::memcpy(&out_[old_size], &value, sizeof(value));
  }

  void put_string(const std::string& s) {
    put(static_cast<std::uint64_t>(s.size()));
    out_.append(s);
  }

  template <typename T>
  void put_pod_vector(const std::vector<T>& v) {
    static_assert(std::is_trivially_copyable_v<T>);
    put(static_cast<std::uint64_t>(v.size()));
    const auto old_size = out_.size();
    out_.resize(old_size + v.size() * sizeof(T));
    if (!v.empty()) std::memcpy(&out_[old_size], v.data(), v.size() * sizeof(T));
  }

  std::string take() { return std::move(out_); }

 private:
  std::string out_;
};

// --- Reader ------------------------------------------------------------------

class Reader {
 public:
  explicit Reader(const std::string& bytes) : bytes_(bytes) {}

  template <typename T>
  T get() {
    static_assert(std::is_trivially_copyable_v<T>);
    T value;
    CIMTPU_CHECK(pos_ + sizeof(value) <= bytes_.size());
    std::memcpy(&value, bytes_.data() + pos_, sizeof(value));
    pos_ += sizeof(value);
    return value;
  }

  std::string get_string() {
    const auto size = static_cast<std::size_t>(get<std::uint64_t>());
    CIMTPU_CHECK(pos_ + size <= bytes_.size());
    std::string s(bytes_.data() + pos_, size);
    pos_ += size;
    return s;
  }

  template <typename T>
  std::vector<T> get_pod_vector() {
    static_assert(std::is_trivially_copyable_v<T>);
    const auto size = static_cast<std::size_t>(get<std::uint64_t>());
    CIMTPU_CHECK(pos_ + size * sizeof(T) <= bytes_.size());
    std::vector<T> v(size);
    if (size > 0) std::memcpy(v.data(), bytes_.data() + pos_, size * sizeof(T));
    pos_ += size * sizeof(T);
    return v;
  }

  bool exhausted() const { return pos_ == bytes_.size(); }

 private:
  const std::string& bytes_;
  std::size_t pos_ = 0;
};

// --- Aggregate field lists ---------------------------------------------------
// One put/get pair per aggregate, fields in declaration order.  Every new
// ServingMetrics field must be added here — the codec test round-trips a
// fully-populated metrics object, so a missed field fails loudly there.

void put_latency(Writer& w, const LatencySummary& s) {
  w.put(s.count);
  w.put(s.mean);
  w.put(s.p50);
  w.put(s.p95);
  w.put(s.p99);
  w.put(s.max);
}

LatencySummary get_latency(Reader& r) {
  LatencySummary s;
  s.count = r.get<std::int64_t>();
  s.mean = r.get<double>();
  s.p50 = r.get<double>();
  s.p95 = r.get<double>();
  s.p99 = r.get<double>();
  s.max = r.get<double>();
  return s;
}

void put_counters(Writer& w, const ServingCounters& c) {
  w.put(c.preemptions_recompute);
  w.put(c.preemptions_swap);
  w.put(c.swap_ins);
  w.put(c.swap_out_bytes);
  w.put(c.swap_in_bytes);
  w.put(c.chunked_prefill_steps);
  w.put(c.prefix_lookup_tokens);
  w.put(c.prefix_hit_tokens);
  w.put(c.prefix_shared_blocks);
  w.put(c.prefix_cow_blocks);
  w.put(c.shed_deadline);
  w.put(c.shed_horizon);
  w.put(c.shed_fault);
}

ServingCounters get_counters(Reader& r) {
  ServingCounters c;
  c.preemptions_recompute = r.get<std::int64_t>();
  c.preemptions_swap = r.get<std::int64_t>();
  c.swap_ins = r.get<std::int64_t>();
  c.swap_out_bytes = r.get<Bytes>();
  c.swap_in_bytes = r.get<Bytes>();
  c.chunked_prefill_steps = r.get<std::int64_t>();
  c.prefix_lookup_tokens = r.get<std::int64_t>();
  c.prefix_hit_tokens = r.get<std::int64_t>();
  c.prefix_shared_blocks = r.get<std::int64_t>();
  c.prefix_cow_blocks = r.get<std::int64_t>();
  c.shed_deadline = r.get<std::int64_t>();
  c.shed_horizon = r.get<std::int64_t>();
  c.shed_fault = r.get<std::int64_t>();
  return c;
}

void put_fault_stats(Writer& w, const FaultStats& f) {
  w.put(f.stalls);
  w.put(f.kv_losses);
  w.put(f.device_failures);
  w.put(f.host_restores);
  w.put(f.host_restore_bytes);
  w.put(f.retries);
  w.put(f.dropped);
  w.put(f.wasted_recompute_tokens);
  w.put(f.degrade_enters);
  w.put(f.degrade_exits);
}

FaultStats get_fault_stats(Reader& r) {
  FaultStats f;
  f.stalls = r.get<std::int64_t>();
  f.kv_losses = r.get<std::int64_t>();
  f.device_failures = r.get<std::int64_t>();
  f.host_restores = r.get<std::int64_t>();
  f.host_restore_bytes = r.get<Bytes>();
  f.retries = r.get<std::int64_t>();
  f.dropped = r.get<std::int64_t>();
  f.wasted_recompute_tokens = r.get<std::int64_t>();
  f.degrade_enters = r.get<std::int64_t>();
  f.degrade_exits = r.get<std::int64_t>();
  return f;
}

void put_tenant(Writer& w, const TenantMetrics& t) {
  w.put(t.tenant_id);
  w.put(t.weight);
  w.put(t.num_requests);
  w.put(t.completed);
  w.put(t.generated_tokens);
  put_latency(w, t.ttft);
  put_latency(w, t.e2e);
  w.put(t.goodput_tokens_per_second);
}

TenantMetrics get_tenant(Reader& r) {
  TenantMetrics t;
  t.tenant_id = r.get<std::int64_t>();
  t.weight = r.get<double>();
  t.num_requests = r.get<std::int64_t>();
  t.completed = r.get<std::int64_t>();
  t.generated_tokens = r.get<std::int64_t>();
  t.ttft = get_latency(r);
  t.e2e = get_latency(r);
  t.goodput_tokens_per_second = r.get<double>();
  return t;
}

void put_registry(Writer& w, const MetricsRegistry& registry) {
  w.put(static_cast<std::uint64_t>(registry.counters().size()));
  for (const auto& [name, value] : registry.counters()) {
    w.put_string(name);
    w.put(value);
  }
  w.put(static_cast<std::uint64_t>(registry.gauges().size()));
  for (const auto& [name, value] : registry.gauges()) {
    w.put_string(name);
    w.put(value);
  }
  w.put(static_cast<std::uint64_t>(registry.histograms().size()));
  for (const auto& [name, histogram] : registry.histograms()) {
    w.put_string(name);
    w.put_pod_vector(histogram.upper_bounds());
    w.put_pod_vector(histogram.bucket_counts());
    w.put(histogram.count());
    w.put(histogram.sum());
    // min()/max() report 0 for an empty histogram; storing the REPORTED
    // values round-trips exactly (the raw fields are unobservable then).
    w.put(histogram.min());
    w.put(histogram.max());
  }
}

MetricsRegistry get_registry(Reader& r) {
  MetricsRegistry registry;
  const auto num_counters = r.get<std::uint64_t>();
  for (std::uint64_t i = 0; i < num_counters; ++i) {
    const std::string name = r.get_string();
    registry.set_counter(name, r.get<std::int64_t>());
  }
  const auto num_gauges = r.get<std::uint64_t>();
  for (std::uint64_t i = 0; i < num_gauges; ++i) {
    const std::string name = r.get_string();
    registry.set_gauge(name, r.get<double>());
  }
  const auto num_histograms = r.get<std::uint64_t>();
  for (std::uint64_t i = 0; i < num_histograms; ++i) {
    const std::string name = r.get_string();
    auto bounds = r.get_pod_vector<double>();
    auto counts = r.get_pod_vector<std::int64_t>();
    const auto count = r.get<std::int64_t>();
    const auto sum = r.get<double>();
    const auto min = r.get<double>();
    const auto max = r.get<double>();
    registry.histogram(name, {}) = FixedBucketHistogram::from_parts(
        std::move(bounds), std::move(counts), count, sum, min, max);
  }
  return registry;
}

void put_sample(Writer& w, const TimeSample& s) {
  w.put(s.time);
  w.put(s.step);
  w.put(s.queue_depth);
  w.put(s.resident_sequences);
  w.put(s.resident_decoders);
  w.put(s.swapped_sequences);
  w.put(s.kv_referenced_blocks);
  w.put(s.kv_occupied_blocks);
  w.put(s.kv_capacity_blocks);
  w.put(s.kv_internal_fragmentation);
  w.put(s.prefix_hit_rate);
  // std::pair is not trivially copyable — element-wise.
  w.put(static_cast<std::uint64_t>(s.tenant_admitted_tokens.size()));
  for (const auto& [tenant, tokens] : s.tenant_admitted_tokens) {
    w.put(tenant);
    w.put(tokens);
  }
}

TimeSample get_sample(Reader& r) {
  TimeSample s;
  s.time = r.get<Seconds>();
  s.step = r.get<std::int64_t>();
  s.queue_depth = r.get<std::int64_t>();
  s.resident_sequences = r.get<std::int64_t>();
  s.resident_decoders = r.get<std::int64_t>();
  s.swapped_sequences = r.get<std::int64_t>();
  s.kv_referenced_blocks = r.get<std::int64_t>();
  s.kv_occupied_blocks = r.get<std::int64_t>();
  s.kv_capacity_blocks = r.get<std::int64_t>();
  s.kv_internal_fragmentation = r.get<double>();
  s.prefix_hit_rate = r.get<double>();
  const auto num_tenants = r.get<std::uint64_t>();
  s.tenant_admitted_tokens.reserve(num_tenants);
  for (std::uint64_t i = 0; i < num_tenants; ++i) {
    const auto tenant = r.get<std::int64_t>();
    const auto tokens = r.get<std::int64_t>();
    s.tenant_admitted_tokens.emplace_back(tenant, tokens);
  }
  return s;
}

}  // namespace

std::string serialize_metrics(const ServingMetrics& m) {
  Writer w;
  w.put(m.chips);
  w.put(m.num_requests);
  w.put(m.completed);
  w.put(m.generated_tokens);
  w.put(m.total_steps);
  w.put(m.prefill_steps);
  w.put(m.decode_steps);
  w.put(m.preemptions);
  put_counters(w, m.counters);
  w.put(m.prefix_hit_rate);
  w.put(m.kv_internal_fragmentation);
  w.put(m.makespan);
  w.put(m.sim_end_seconds);
  put_latency(w, m.ttft);
  put_latency(w, m.tpot);
  put_latency(w, m.e2e);
  w.put(m.goodput_tokens_per_second);
  w.put(m.slo_met);
  w.put(m.slo_attainment);
  w.put(m.slo_goodput_tokens_per_second);
  w.put(m.availability);
  w.put(m.mttr_seconds);
  w.put(m.wasted_recompute_tokens);
  w.put(m.retries_total);
  put_fault_stats(w, m.fault);
  w.put(static_cast<std::uint64_t>(m.tenants.size()));
  for (const TenantMetrics& tenant : m.tenants) put_tenant(w, tenant);
  w.put(m.jain_fairness);
  w.put(m.mxu_energy);
  w.put(m.total_energy);
  w.put(m.energy_per_token);
  w.put(m.mxu_utilization);
  w.put(static_cast<std::uint64_t>(m.cost_cache_entries));
  w.put(m.cost_cache_hits);
  w.put(m.cost_cache_misses);
  w.put(m.cost_cache_occupancy);
  put_registry(w, m.registry);
  w.put(static_cast<std::uint64_t>(m.timeseries.size()));
  for (const TimeSample& sample : m.timeseries) put_sample(w, sample);
  w.put(m.sim_wall_seconds);
  w.put(m.steps_per_second);
  return w.take();
}

ServingMetrics deserialize_metrics(const std::string& bytes) {
  Reader r(bytes);
  ServingMetrics m;
  m.chips = r.get<int>();
  m.num_requests = r.get<std::int64_t>();
  m.completed = r.get<std::int64_t>();
  m.generated_tokens = r.get<std::int64_t>();
  m.total_steps = r.get<std::int64_t>();
  m.prefill_steps = r.get<std::int64_t>();
  m.decode_steps = r.get<std::int64_t>();
  m.preemptions = r.get<std::int64_t>();
  m.counters = get_counters(r);
  m.prefix_hit_rate = r.get<double>();
  m.kv_internal_fragmentation = r.get<double>();
  m.makespan = r.get<Seconds>();
  m.sim_end_seconds = r.get<Seconds>();
  m.ttft = get_latency(r);
  m.tpot = get_latency(r);
  m.e2e = get_latency(r);
  m.goodput_tokens_per_second = r.get<double>();
  m.slo_met = r.get<std::int64_t>();
  m.slo_attainment = r.get<double>();
  m.slo_goodput_tokens_per_second = r.get<double>();
  m.availability = r.get<double>();
  m.mttr_seconds = r.get<Seconds>();
  m.wasted_recompute_tokens = r.get<std::int64_t>();
  m.retries_total = r.get<std::int64_t>();
  m.fault = get_fault_stats(r);
  const auto num_tenants = r.get<std::uint64_t>();
  m.tenants.reserve(num_tenants);
  for (std::uint64_t i = 0; i < num_tenants; ++i) {
    m.tenants.push_back(get_tenant(r));
  }
  m.jain_fairness = r.get<double>();
  m.mxu_energy = r.get<Joules>();
  m.total_energy = r.get<Joules>();
  m.energy_per_token = r.get<Joules>();
  m.mxu_utilization = r.get<double>();
  m.cost_cache_entries = static_cast<std::size_t>(r.get<std::uint64_t>());
  m.cost_cache_hits = r.get<std::int64_t>();
  m.cost_cache_misses = r.get<std::int64_t>();
  m.cost_cache_occupancy = r.get<double>();
  m.registry = get_registry(r);
  const auto num_samples = r.get<std::uint64_t>();
  m.timeseries.reserve(num_samples);
  for (std::uint64_t i = 0; i < num_samples; ++i) {
    m.timeseries.push_back(get_sample(r));
  }
  m.sim_wall_seconds = r.get<Seconds>();
  m.steps_per_second = r.get<double>();
  CIMTPU_CHECK(r.exhausted());
  return m;
}

}  // namespace cimtpu::serving
