#pragma once
// Exact binary round-trip of ServingMetrics — the IPC format of the
// multi-process sweep driver (serving/sweep.h).  Fields are written as
// raw native-endian bytes in declaration order (doubles survive
// bit-for-bit, which text formats cannot guarantee), so a child worker's
// metrics deserialize in the parent byte-identical to an in-process run.
// Same-machine, same-build IPC only: the format carries no versioning or
// endianness translation, deliberately — both ends are always the same
// binary, forked moments apart.

#include <string>

#include "serving/serving_sim.h"

namespace cimtpu::serving {

/// Serializes `metrics` — every field, including the registry, tenant
/// rows, and time-series samples.
std::string serialize_metrics(const ServingMetrics& metrics);

/// Inverse of serialize_metrics.  CHECK-fails on truncated or trailing
/// bytes (a framing bug, not a recoverable condition).
ServingMetrics deserialize_metrics(const std::string& bytes);

}  // namespace cimtpu::serving
