#include "serving/scheduler.h"

#include <algorithm>

#include "common/math_util.h"
#include "common/status.h"

namespace cimtpu::serving {

void SchedulerConfig::validate() const {
  CIMTPU_CONFIG_CHECK(max_batch >= 1, "max_batch must be >= 1");
  CIMTPU_CONFIG_CHECK(max_prefill_batch >= 1, "max_prefill_batch must be >= 1");
  CIMTPU_CONFIG_CHECK(seqlen_bucket >= 1, "seqlen_bucket must be >= 1");
}

StepCostCache::StepCostCache(const sim::Simulator& simulator,
                             const models::TransformerConfig& model,
                             std::int64_t bucket)
    : simulator_(&simulator), model_(model), bucket_(bucket) {
  CIMTPU_CONFIG_CHECK(bucket >= 1, "seqlen bucket must be >= 1");
}

StepCost StepCostCache::prefill_layer(std::int64_t batch,
                                      std::int64_t seq_len) {
  return lookup(/*prefill=*/true, batch, bucket_up(seq_len));
}

StepCost StepCostCache::decode_layer(std::int64_t batch, std::int64_t kv_len) {
  return lookup(/*prefill=*/false, batch, bucket_up(kv_len));
}

StepCost StepCostCache::lookup(bool prefill, std::int64_t batch,
                               std::int64_t len) {
  CIMTPU_CHECK(batch >= 1 && len >= 1);
  const std::uint64_t key = (prefill ? 1ull << 63 : 0ull) |
                            (static_cast<std::uint64_t>(batch) << 40) |
                            static_cast<std::uint64_t>(len);
  auto it = cache_.find(key);
  if (it != cache_.end()) {
    ++hits_;
    return it->second;
  }
  ++misses_;
  const sim::GraphResult graph =
      prefill ? sim::run_prefill_layer(*simulator_, model_, batch, len)
              : sim::run_decode_layer(*simulator_, model_, batch, len);
  StepCost cost;
  cost.latency = graph.latency;
  cost.mxu_busy_time = graph.mxu_busy_time;
  cost.mxu_energy = graph.mxu_energy();
  cost.total_energy = graph.total_energy();
  cache_.emplace(key, cost);
  return cost;
}

ContinuousBatchScheduler::ContinuousBatchScheduler(
    const SchedulerConfig& config, KvCacheManager* kv_cache)
    : config_(config), kv_cache_(kv_cache) {
  config_.validate();
  CIMTPU_CHECK(kv_cache != nullptr);
}

void ContinuousBatchScheduler::enqueue(const Request& request) {
  CIMTPU_CONFIG_CHECK(request.prompt_len >= 1,
                      "request " << request.id << " has empty prompt");
  CIMTPU_CONFIG_CHECK(request.output_len >= 1,
                      "request " << request.id << " generates no tokens");
  waiting_.push_back(request);
}

std::int64_t ContinuousBatchScheduler::admission_reserve_tokens(
    const Request& request) const {
  return kv_cache_->policy() == EvictionPolicy::kNone
             ? request.prompt_len + request.output_len
             : request.prompt_len + 1;
}

std::optional<StepRecord> ContinuousBatchScheduler::next_step() {
  if (idle()) return std::nullopt;

  // --- Admission (prefill-priority) ----------------------------------------
  // Pull waiting requests into the batch while slots and KV pages allow.
  std::vector<Request> admitted;
  while (!waiting_.empty() &&
         running_.size() + admitted.size() <
             static_cast<std::size_t>(config_.max_batch) &&
         admitted.size() < static_cast<std::size_t>(config_.max_prefill_batch)) {
    const Request& head = waiting_.front();
    if (!kv_cache_->try_admit(head.id, admission_reserve_tokens(head))) {
      break;  // FIFO: a blocked head blocks everything behind it
    }
    admitted.push_back(head);
    waiting_.pop_front();
  }

  if (!admitted.empty()) {
    StepRecord record;
    record.kind = StepRecord::Kind::kPrefill;
    record.batch = static_cast<std::int64_t>(admitted.size());
    std::int64_t prompt_tokens = 0;
    for (const Request& request : admitted) {
      prompt_tokens += request.prompt_len;
      record.first_token_ids.push_back(request.id);
      if (request.output_len <= 1) {
        // The prefill step emits the only token; done.
        record.finished_ids.push_back(request.id);
        kv_cache_->release(request.id);
      } else {
        running_.push_back(Running{request, /*generated=*/1});
      }
    }
    record.seq_len = ceil_div(prompt_tokens, record.batch);
    ++total_steps_;
    return record;
  }

  if (running_.empty()) {
    // Nothing running and the queue head does not fit an empty cache: the
    // request is unservable at this capacity.
    if (kv_cache_->resident_count() == 0 && !waiting_.empty()) {
      const Request& head = waiting_.front();
      CIMTPU_CONFIG_CHECK(
          false, "request " << head.id << " needs more KV ("
                            << format_bytes(
                                   kv_cache_->bytes_per_token() *
                                   static_cast<double>(
                                       admission_reserve_tokens(head)))
                            << " to admit) than the budget "
                            << format_bytes(kv_cache_->capacity()));
    }
    return std::nullopt;
  }

  // --- Decode step ---------------------------------------------------------
  StepRecord record;
  record.kind = StepRecord::Kind::kDecode;

  // Growth pressure: make room for every non-finishing request's next KV
  // token before the step runs, preempting the newest admissions back to
  // the queue (recompute) when pages run out.
  if (kv_cache_->policy() != EvictionPolicy::kNone) {
    for (;;) {
      double growth_tokens = 0;
      for (const Running& run : running_) {
        if (run.generated + 1 < run.request.output_len) growth_tokens += 1;
      }
      const Bytes need = kv_cache_->bytes_per_token() * growth_tokens;
      if (kv_cache_->used() + need <= kv_cache_->capacity()) break;
      CIMTPU_CONFIG_CHECK(running_.size() > 1,
                          "request " << running_.front().request.id
                                     << " outgrew the whole KV budget");
      // The manager owns the victim-selection policy.
      const std::int64_t victim_id =
          kv_cache_->pick_eviction_victim(/*protect=*/-1);
      const auto victim_it = std::find_if(
          running_.begin(), running_.end(),
          [victim_id](const Running& run) {
            return run.request.id == victim_id;
          });
      CIMTPU_CHECK(victim_it != running_.end());
      const Running victim = *victim_it;
      running_.erase(victim_it);
      kv_cache_->release(victim.request.id);
      waiting_.push_front(victim.request);  // retains FIFO priority
      record.preempted_ids.push_back(victim.request.id);
      ++preemptions_;
    }
  }

  record.batch = static_cast<std::int64_t>(running_.size());
  std::vector<Running> still_running;
  still_running.reserve(running_.size());
  std::int64_t kv_tokens = 0;
  for (Running& run : running_) {
    // KV length this step attends over: prompt plus tokens generated so far.
    kv_tokens += run.request.prompt_len + run.generated;
    ++run.generated;
    if (run.generated >= run.request.output_len) {
      record.finished_ids.push_back(run.request.id);
      kv_cache_->release(run.request.id);
    } else {
      if (kv_cache_->policy() != EvictionPolicy::kNone) {
        const bool grew = kv_cache_->try_grow(run.request.id, 1);
        CIMTPU_CHECK(grew);  // pre-step eviction guaranteed room
      }
      still_running.push_back(run);
    }
  }
  running_ = std::move(still_running);
  record.seq_len = ceil_div(kv_tokens, record.batch);
  ++total_steps_;
  return record;
}

}  // namespace cimtpu::serving
