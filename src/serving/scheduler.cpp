#include "serving/scheduler.h"

#include <algorithm>
#include <limits>

#include "common/math_util.h"
#include "common/status.h"

namespace cimtpu::serving {

void SchedulerConfig::validate() const {
  CIMTPU_CONFIG_CHECK(max_batch >= 1, "max_batch must be >= 1");
  CIMTPU_CONFIG_CHECK(max_prefill_batch >= 1, "max_prefill_batch must be >= 1");
  CIMTPU_CONFIG_CHECK(seqlen_bucket >= 1, "seqlen_bucket must be >= 1");
  CIMTPU_CONFIG_CHECK(
      prefill_chunk_tokens == 0 || prefill_chunk_tokens >= seqlen_bucket,
      "prefill_chunk_tokens (" << prefill_chunk_tokens
                               << ") must be 0 (disabled) or >= seqlen_bucket ("
                               << seqlen_bucket
                               << ") so every chunk advances its cost bucket");
  CIMTPU_CONFIG_CHECK(kv_block_tokens >= 1,
                      "kv_block_tokens must be >= 1, got " << kv_block_tokens);
  admission.validate();
}

void StepRecord::clear() {
  kind = Kind::kDecode;
  batch = 0;
  kv_lens.clear();
  chunk_lens.clear();
  prev_lens.clear();
  decode_groups.clear();
  first_token_ids.clear();
  finished_ids.clear();
  preempted_ids.clear();
  swapped_out_ids.clear();
  swapped_in_ids.clear();
  shed_ids.clear();
  swap_bytes = 0;
  chunked = false;
  batched_cost = false;
}

StepCost cost_step(StepCostCache& costs, const StepRecord& step) {
  CIMTPU_CHECK(step.batch ==
               static_cast<std::int64_t>(step.kv_lens.size()));
  StepCost total;
  const auto accumulate = [&total](const StepCost& cost, double sign) {
    total.latency += sign * cost.latency;
    total.mxu_busy_time += sign * cost.mxu_busy_time;
    total.mxu_energy += sign * cost.mxu_energy;
    total.total_energy += sign * cost.total_energy;
  };
  if (step.kind == StepRecord::Kind::kPrefill) {
    if (step.batched_cost && step.batch > 1) {
      // Batched fidelity mode (SchedulerConfig::batched_prefill_cost):
      // participants entering the step at the same (prev, chunk) shape run
      // as ONE batched prefill, sharing a single weight pass — the same
      // amortization decode batching already models.  The telescoped
      // difference is taken at the group's batch, so a chunked prompt's
      // total still telescopes to its unchunked cost at that batch.
      // Grouping by exact shape (sorted, ascending) keeps accumulation
      // order deterministic.
      std::vector<std::pair<std::int64_t, std::int64_t>>& shapes =
          costs.prefill_shape_scratch();
      shapes.clear();
      shapes.reserve(step.kv_lens.size());
      for (std::size_t i = 0; i < step.kv_lens.size(); ++i) {
        shapes.emplace_back(step.prev_lens[i], step.chunk_lens[i]);
      }
      std::sort(shapes.begin(), shapes.end());
      for (std::size_t i = 0; i < shapes.size();) {
        std::size_t j = i;
        while (j < shapes.size() && shapes[j] == shapes[i]) ++j;
        const std::int64_t group = static_cast<std::int64_t>(j - i);
        accumulate(
            costs.prefill_layer(group, shapes[i].first + shapes[i].second),
            +1.0);
        if (shapes[i].first > 0) {
          accumulate(costs.prefill_layer(group, shapes[i].first), -1.0);
        }
        i = j;
      }
      return total;
    }
    // A chunk of new prompt tokens attends over everything prefilled so
    // far, so its cost is the increment between two full-prefill shapes:
    // prefill(prev + chunk) - prefill(prev).  Prefill cost is monotone in
    // sequence length, so the difference is non-negative, and summed over
    // a prompt's chunks it telescopes to exactly the unchunked cost.
    // Each participant is costed at batch 1: the historical (pessimistic)
    // model every golden pin was recorded under — see the batched branch
    // above for the shared-weight-pass alternative.
    for (std::size_t i = 0; i < step.kv_lens.size(); ++i) {
      accumulate(costs.prefill_layer(1, step.prev_lens[i] + step.chunk_lens[i]),
                 +1.0);
      if (step.prev_lens[i] > 0) {
        accumulate(costs.prefill_layer(1, step.prev_lens[i]), -1.0);
      }
    }
  } else if (!step.decode_groups.empty()) {
    // Scheduler-built steps carry the bucketed grouping (a copy of the
    // incremental histogram, ascending): one memoized decode shape per
    // group, no per-step re-derivation.  Steady decode runs repeat the
    // same grouping step after step, so the summed cost itself is memoized
    // on the grouping (see StepCostCache::remember_decode_groups).
    if (costs.last_decode_groups_match(step.decode_groups)) {
      CIMTPU_CHECK(costs.last_decode_groups_batch() == step.batch);
      return costs.last_decode_groups_cost();
    }
    std::int64_t grouped = 0;
    for (const auto& [kv_len, batch] : step.decode_groups) {
      accumulate(costs.decode_layer(batch, kv_len), +1.0);
      grouped += batch;
    }
    CIMTPU_CHECK(grouped == step.batch);
    costs.remember_decode_groups(step.decode_groups, step.batch, total);
  } else {
    // Hand-built records (tests, external callers): derive the grouping
    // from kv_lens in the cache's reusable scratch.  Sorting ascending
    // reproduces the histogram path's accumulation order bit for bit.
    std::vector<std::int64_t>& scratch = costs.decode_group_scratch();
    scratch.clear();
    scratch.reserve(step.kv_lens.size());
    for (std::int64_t kv_len : step.kv_lens) {
      scratch.push_back(costs.bucket_up(kv_len));
    }
    std::sort(scratch.begin(), scratch.end());
    for (std::size_t i = 0; i < scratch.size();) {
      std::size_t j = i;
      while (j < scratch.size() && scratch[j] == scratch[i]) ++j;
      accumulate(costs.decode_layer(static_cast<std::int64_t>(j - i),
                                    scratch[i]),
                 +1.0);
      i = j;
    }
  }
  return total;
}

std::int32_t ContinuousBatchScheduler::SequencePool::acquire() {
  if (!free_list.empty()) {
    const std::int32_t slot = free_list.back();
    free_list.pop_back();
    return slot;
  }
  const std::int32_t slot = static_cast<std::int32_t>(prompt_len.size());
  prompt_len.push_back(0);
  output_len.push_back(0);
  prefilled.push_back(0);
  generated.push_back(0);
  prefix_skipped.push_back(0);
  bucket.push_back(0);
  kv_slot.push_back(-1);
  request.emplace_back();
  return slot;
}

ContinuousBatchScheduler::ContinuousBatchScheduler(
    const SchedulerConfig& config, KvCacheManager* kv_cache)
    : config_(config),
      kv_cache_(kv_cache),
      admission_(make_admission_policy(config.admission)) {
  config_.validate();
  may_shed_ = admission_->may_shed();
  admit_memo_ok_ = admission_->select_is_pure();
  CIMTPU_CHECK(kv_cache != nullptr);
  CIMTPU_CONFIG_CHECK(
      kv_cache->block_tokens() == config_.kv_block_tokens,
      "SchedulerConfig::kv_block_tokens ("
          << config_.kv_block_tokens << ") disagrees with the KvCacheManager ("
          << kv_cache->block_tokens() << ")");
  CIMTPU_CONFIG_CHECK(
      kv_cache->prefix_cache_enabled() == config_.enable_prefix_cache,
      "SchedulerConfig::enable_prefix_cache disagrees with the "
      "KvCacheManager");
}

void ContinuousBatchScheduler::enqueue(const Request& request) {
  CIMTPU_CONFIG_CHECK(request.prompt_len >= 1,
                      "request " << request.id << " has empty prompt");
  CIMTPU_CONFIG_CHECK(request.output_len >= 1,
                      "request " << request.id << " generates no tokens");
  CIMTPU_CONFIG_CHECK(
      request.prefix_len >= 0 && request.prefix_len <= request.prompt_len,
      "request " << request.id << " has prefix_len " << request.prefix_len
                 << " outside [0, prompt_len=" << request.prompt_len << "]");
  admission_->on_enqueue(request, total_steps_);
  admit_blocked_ = false;
}

void ContinuousBatchScheduler::enqueue_prefilled(const Request& request) {
  CIMTPU_CONFIG_CHECK(request.prompt_len >= 1,
                      "request " << request.id << " has empty prompt");
  CIMTPU_CONFIG_CHECK(request.output_len >= 2,
                      "prefilled request "
                          << request.id
                          << " has no decode work (output_len="
                          << request.output_len << ")");
  CIMTPU_CONFIG_CHECK(
      request.prefix_id < 0,
      "prefilled request " << request.id
                           << " carries a prefix_id; disaggregated decode "
                              "admission bypasses the prefix cache");
  prefilled_pending_.insert(request.id);
  admission_->on_enqueue(request, total_steps_);
  admit_blocked_ = false;
}

std::int64_t ContinuousBatchScheduler::admission_reserve_tokens(
    const Request& request) const {
  return kv_cache_->policy() == EvictionPolicy::kNone
             ? request.prompt_len + request.output_len
             : request.prompt_len + 1;
}

void ContinuousBatchScheduler::histogram_add(std::int64_t bucket) {
  const auto it = std::lower_bound(
      decode_kv_histogram_.begin(), decode_kv_histogram_.end(), bucket,
      [](const std::pair<std::int64_t, std::int64_t>& entry,
         std::int64_t value) { return entry.first < value; });
  if (it != decode_kv_histogram_.end() && it->first == bucket) {
    ++it->second;
  } else {
    decode_kv_histogram_.insert(it, {bucket, 1});
  }
}

void ContinuousBatchScheduler::histogram_remove(std::int64_t bucket) {
  const auto it = std::lower_bound(
      decode_kv_histogram_.begin(), decode_kv_histogram_.end(), bucket,
      [](const std::pair<std::int64_t, std::int64_t>& entry,
         std::int64_t value) { return entry.first < value; });
  CIMTPU_CHECK(it != decode_kv_histogram_.end() && it->first == bucket &&
               it->second > 0);
  if (--it->second == 0) decode_kv_histogram_.erase(it);
}

void ContinuousBatchScheduler::decoder_enter(std::int32_t slot) {
  ++resident_decoders_;
  pending_growth_blocks_ += growth_blocks(slot);
  const std::int64_t bucket = decode_bucket(slot);
  pool_.bucket[slot] = bucket;
  histogram_add(bucket);
  if (trace_) {
    trace_->on_decode_enter(pool_.request[slot].id, bucket);
  }
}

void ContinuousBatchScheduler::decoder_leave(std::int32_t slot) {
  --resident_decoders_;
  pending_growth_blocks_ -= growth_blocks(slot);
  histogram_remove(pool_.bucket[slot]);
}

std::int32_t ContinuousBatchScheduler::resident_append(
    const Request& request, std::int64_t prefilled, std::int64_t generated,
    std::int64_t prefix_skipped) {
  const std::int32_t slot = pool_.acquire();
  pool_.prompt_len[slot] = request.prompt_len;
  pool_.output_len[slot] = request.output_len;
  pool_.prefilled[slot] = prefilled;
  pool_.generated[slot] = generated;
  pool_.prefix_skipped[slot] = prefix_skipped;
  pool_.bucket[slot] = 0;
  pool_.kv_slot[slot] = kv_cache_->resident_slot(request.id);
  pool_.request[slot] = request;
  resident_.push_back(slot);
  return slot;
}

bool ContinuousBatchScheduler::aggregates_consistent() const {
  std::int64_t decoders = 0;
  std::int64_t growing = 0;
  std::vector<std::int64_t> buckets;
  for (const std::int32_t slot : resident_) {
    if (slot_prefilling(slot)) continue;
    ++decoders;
    growing += growth_blocks(slot);
    const std::int64_t bucket = decode_bucket(slot);
    // The cached per-slot bucket must agree with a fresh rounding.
    if (pool_.bucket[slot] != bucket) return false;
    buckets.push_back(bucket);
  }
  if (decoders != resident_decoders_ || growing != pending_growth_blocks_) {
    return false;
  }
  std::sort(buckets.begin(), buckets.end());
  std::vector<std::pair<std::int64_t, std::int64_t>> histogram;
  for (std::size_t i = 0; i < buckets.size();) {
    std::size_t j = i;
    while (j < buckets.size() && buckets[j] == buckets[i]) ++j;
    histogram.emplace_back(buckets[i], static_cast<std::int64_t>(j - i));
    i = j;
  }
  return histogram == decode_kv_histogram_;
}

void ContinuousBatchScheduler::swap_in_and_admit(StepRecord* record) {
  // Swapped-out sequences re-enter first, FIFO: they were admitted before
  // anything still waiting, and restoring them costs a PCIe transfer
  // instead of a prompt recompute.  Watermark: beyond the restore itself,
  // one decode step's growth must still fit — a re-entrant sequence is the
  // NEWEST admission, so restoring into a device that growth pressure will
  // immediately squeeze would swap it straight back out, paying round-trip
  // PCIe for zero progress.  With nothing resident the watermark is waived
  // (there is no pressure to re-evict, and blocking would deadlock).
  const auto swap_in_fits = [this](const Sequence& sequence) {
    const std::int64_t restore_blocks =
        kv_cache_->blocks_for_tokens(sequence.swapped_tokens);
    if (resident_.empty()) {
      return kv_cache_->fits_blocks(restore_blocks);
    }
    // One block of growth headroom for the restored sequence itself plus
    // every resident decoder (tracked incrementally — no rescan per
    // candidate).  Conservative at block sizes > 1: a decoder mid-block
    // needs nothing next step, but headroom is a watermark, not accounting.
    return kv_cache_->fits_blocks(restore_blocks + 1 + resident_decoders_);
  };
  while (!swapped_.empty() &&
         resident_.size() < static_cast<std::size_t>(effective_max_batch()) &&
         swap_in_fits(swapped_.front()) &&
         kv_cache_->try_swap_in(swapped_.front().request.id)) {
    Sequence sequence = swapped_.front();
    swapped_.pop_front();
    // PCIe traffic covers only pages holding computed KV (prefilled prompt
    // + generated tokens); a mid-prefill victim's reservation also spans
    // not-yet-written pages, which cost nothing to move.
    const Bytes bytes =
        kv_cache_->bytes_per_token() *
        static_cast<double>(sequence.prefilled + sequence.generated);
    record->swapped_in_ids.push_back(sequence.request.id);
    record->swap_bytes += bytes;
    counters_.swap_ins += 1;
    counters_.swap_in_bytes += bytes;
    if (trace_) trace_->on_swap_in(sequence.request.id, bytes);
    const std::int32_t slot =
        resident_append(sequence.request, sequence.prefilled,
                        sequence.generated, sequence.prefix_skipped);
    if (!slot_prefilling(slot)) decoder_enter(slot);
    admit_blocked_ = false;
  }

  // New admissions, in the AdmissionPolicy's order.  A stranded swapped
  // sequence blocks them (it has strict seniority); a candidate the KV
  // manager rejects blocks everything behind it — head-of-line blocking
  // on the policy's OWN choice, exactly the FIFO baseline's semantics.
  int admitted = 0;
  while (swapped_.empty() && !admit_blocked_ && !admission_->empty() &&
         resident_.size() < static_cast<std::size_t>(effective_max_batch()) &&
         admitted < config_.max_prefill_batch) {
    const Request* head = admission_->select(admission_context());
    if (head == nullptr) break;  // policy throttled (e.g. rate caps)
    KvCacheManager::AdmitOutcome outcome;
    if (!kv_cache_->try_admit(head->id, admission_reserve_tokens(*head),
                              head->priority, head->prefix_id,
                              head->prefix_len, head->prompt_len, &outcome)) {
      // Head-of-line block: for a pure-select policy this exact probe
      // repeats (and fails) every step until something structural changes,
      // so remember the block and skip the re-probe until then.
      if (admit_memo_ok_) admit_blocked_ = true;
      break;
    }
    counters_.prefix_lookup_tokens += outcome.lookup_tokens;
    counters_.prefix_hit_tokens += outcome.prefix_hit_tokens;
    counters_.prefix_shared_blocks += outcome.shared_blocks;
    counters_.prefix_cow_blocks += outcome.cow_blocks;
    if (trace_) {
      // While `head` still points into the policy's storage (pop_selected
      // below invalidates it).
      trace_->on_admit(*head, outcome.lookup_tokens,
                       outcome.prefix_hit_tokens, outcome.shared_blocks,
                       outcome.cow_blocks);
    }
    if (!prefilled_pending_.empty() &&
        prefilled_pending_.count(head->id) > 0) {
      // Disaggregated decode admission (enqueue_prefilled): the prompt KV
      // was computed on a prefill replica and streamed over, so the whole
      // prompt maps as already-present (prefix_skipped = prompt_len — the
      // tokens were never computed HERE) and the sequence enters decode
      // directly with its remotely-emitted first token on the books.  No
      // first_token_ids entry is ever recorded for it on this replica.
      const std::int32_t slot =
          resident_append(*head, /*prefilled=*/head->prompt_len,
                          /*generated=*/1,
                          /*prefix_skipped=*/head->prompt_len);
      kv_cache_->note_prefilled_slot(pool_.kv_slot[slot], head->prompt_len);
      prefilled_pending_.erase(head->id);
      decoder_enter(slot);
    } else {
      // A prefix hit starts prefill mid-sequence: the cached leading
      // tokens are never pushed through the model again.  The hit is
      // capped at prompt_len - 1, so a fresh admission always starts
      // prefilling and the decoder aggregates are untouched here.  Copy
      // BEFORE pop_selected: `head` points into the policy's storage.
      resident_append(*head, /*prefilled=*/outcome.prefix_hit_tokens,
                      /*generated=*/0,
                      /*prefix_skipped=*/outcome.prefix_hit_tokens);
    }
    admission_->pop_selected();
    ++admitted;
  }
}

void ContinuousBatchScheduler::drain_shed(StepRecord* record) {
  // Deadline sheds accumulate inside the policy during select(); pull them
  // out every step so counters, trace events, and the step record agree.
  // Non-shedding policies (everything but EDF) never stash anything, so
  // the per-step virtual drain is skipped for them outright.
  if (!may_shed_) return;
  shed_scratch_.clear();
  admission_->drain_shed(&shed_scratch_);
  for (const Request& request : shed_scratch_) {
    record->shed_ids.push_back(request.id);
    counters_.shed_deadline += 1;
    if (trace_) trace_->on_shed(request.id);
  }
}

ContinuousBatchScheduler::ResidentInfo ContinuousBatchScheduler::resident_info(
    std::size_t index) const {
  CIMTPU_CHECK_MSG(index < resident_.size(),
                   "resident_info index out of range");
  const std::int32_t slot = resident_[index];
  ResidentInfo info;
  info.request_id = pool_.request[slot].id;
  info.prefilled = pool_.prefilled[slot];
  info.prefix_skipped = pool_.prefix_skipped[slot];
  info.generated = pool_.generated[slot];
  return info;
}

bool ContinuousBatchScheduler::remove_for_fault(std::int64_t request_id,
                                               Request* out,
                                               ResidentInfo* progress) {
  const auto fill = [&](const Request& request, std::int64_t prefilled,
                        std::int64_t prefix_skipped, std::int64_t generated) {
    if (out != nullptr) *out = request;
    if (progress != nullptr) {
      progress->request_id = request.id;
      progress->prefilled = prefilled;
      progress->prefix_skipped = prefix_skipped;
      progress->generated = generated;
    }
  };
  const auto resident_it = std::find_if(
      resident_.begin(), resident_.end(), [&](std::int32_t slot) {
        return pool_.request[slot].id == request_id;
      });
  if (resident_it != resident_.end()) {
    const std::int32_t slot = *resident_it;
    resident_.erase(resident_it);
    if (!slot_prefilling(slot)) decoder_leave(slot);
    kv_cache_->invalidate_blocks(request_id);
    admit_blocked_ = false;  // invalidation freed device blocks
    fill(pool_.request[slot], pool_.prefilled[slot],
         pool_.prefix_skipped[slot], pool_.generated[slot]);
    pool_.release(slot);
    return true;
  }
  const auto swapped_it = std::find_if(
      swapped_.begin(), swapped_.end(),
      [request_id](const Sequence& sequence) {
        return sequence.request.id == request_id;
      });
  if (swapped_it == swapped_.end()) return false;
  // Swapped-out victim: its KV lives in the host pool; invalidate_blocks
  // releases those host bytes so the pool reconciles.
  const Sequence victim = *swapped_it;
  swapped_.erase(swapped_it);
  kv_cache_->invalidate_blocks(request_id);
  admit_blocked_ = false;
  fill(victim.request, victim.prefilled, victim.prefix_skipped,
       victim.generated);
  return true;
}

void ContinuousBatchScheduler::requeue_after_fault(const Request& request,
                                                   bool emitted_first_token) {
  if (emitted_first_token) {
    // TTFT already streamed: resume with preempt seniority (FIFO front,
    // EDF shed-exempt) exactly like a recompute-preemption victim.
    admission_->on_preempt_requeue(request, total_steps_);
  } else {
    admission_->on_enqueue(request, total_steps_);
  }
  admit_blocked_ = false;
}

bool ContinuousBatchScheduler::restore_resident_from_host(
    std::int64_t request_id, Bytes* bytes) {
  const auto it = std::find_if(
      resident_.begin(), resident_.end(), [&](std::int32_t slot) {
        return pool_.request[slot].id == request_id;
      });
  if (it == resident_.end()) return false;
  if (!kv_cache_->restore_from_host(request_id)) return false;
  admit_blocked_ = false;
  if (bytes != nullptr) {
    // Only pages holding computed KV cross the link (same accounting as
    // swap-in): prefilled prompt + generated tokens.
    *bytes = kv_cache_->bytes_per_token() *
             static_cast<double>(pool_.prefilled[*it] + pool_.generated[*it]);
  }
  return true;
}

void ContinuousBatchScheduler::set_degraded(bool degraded,
                                            int degraded_max_batch) {
  degraded_ = degraded;
  degraded_max_batch_ = degraded ? degraded_max_batch : 0;
  admission_->set_degraded(degraded);
  admit_blocked_ = false;  // effective_max_batch may have changed
}

AdmissionContext ContinuousBatchScheduler::admission_context() const {
  AdmissionContext context;
  context.free_batch_slots =
      effective_max_batch() - static_cast<std::int64_t>(resident_.size());
  context.free_kv_bytes = kv_cache_->capacity() - kv_cache_->used();
  context.bytes_per_token = kv_cache_->bytes_per_token();
  context.device_empty = resident_.empty();
  context.now = now_;
  context.step = total_steps_;
  return context;
}

void ContinuousBatchScheduler::build_prefill_step(StepRecord* record) {
  record->kind = StepRecord::Kind::kPrefill;
  // Prefill progress mutates prefix-cache state (note_prefilled marks
  // shared blocks computed) and can finish sequences — both can change a
  // memoized head-of-line probe's outcome.
  admit_blocked_ = false;
  record->batched_cost = config_.batched_prefill_cost;
  record->chunk_lens.reserve(config_.max_prefill_batch);
  record->prev_lens.reserve(config_.max_prefill_batch);
  record->kv_lens.reserve(config_.max_prefill_batch);
  std::int64_t budget = config_.prefill_chunk_tokens > 0
                            ? config_.prefill_chunk_tokens
                            : std::numeric_limits<std::int64_t>::max();
  bool any_finished = false;
  for (const std::int32_t slot : resident_) {  // admission order
    if (!slot_prefilling(slot)) continue;
    if (record->chunk_lens.size() >=
        static_cast<std::size_t>(config_.max_prefill_batch)) {
      break;
    }
    const std::int64_t prefilled = pool_.prefilled[slot];
    const std::int64_t remaining = pool_.prompt_len[slot] - prefilled;
    // Stop rather than hand a participant a sub-bucket leftover of the
    // shared budget: every non-final chunk stays >= seqlen_bucket, so it
    // advances its sequence's cost bucket (a final chunk may be smaller —
    // its bucket was already paid for by telescoping).
    if (budget < std::min(remaining, config_.seqlen_bucket)) break;
    const std::int64_t chunk = std::min(remaining, budget);
    // A prefix-hit sequence's FIRST chunk already starts at a nonzero KV
    // offset (prev = prefix_skipped); only later chunks mean the prompt
    // was actually split across steps.
    record->prev_lens.push_back(prefilled);
    record->chunk_lens.push_back(chunk);
    record->kv_lens.push_back(prefilled + chunk);
    if (trace_) {
      trace_->on_prefill_chunk(pool_.request[slot].id, prefilled, chunk);
    }
    if (prefilled > pool_.prefix_skipped[slot] || chunk < remaining) {
      record->chunked = true;
    }
    pool_.prefilled[slot] = prefilled + chunk;
    kv_cache_->note_prefilled_slot(pool_.kv_slot[slot], prefilled + chunk);
    budget -= chunk;
    if (!slot_prefilling(slot)) {
      // Prompt complete: this step emits the sequence's first token.
      record->first_token_ids.push_back(pool_.request[slot].id);
      pool_.generated[slot] = 1;
      if (pool_.generated[slot] >= pool_.output_len[slot]) {
        record->finished_ids.push_back(pool_.request[slot].id);
        kv_cache_->release(pool_.request[slot].id);
        admission_->on_finish(pool_.request[slot], total_steps_);
        any_finished = true;
      } else {
        decoder_enter(slot);
      }
    }
  }
  record->batch = static_cast<std::int64_t>(record->chunk_lens.size());
  CIMTPU_CHECK(record->batch >= 1);
  if (any_finished) {
    // Single compaction pass: the only residents with a completed output
    // are the ones that finished in the loop above (decoders always leave
    // the moment they finish), so the predicate needs no finished-id list.
    // Compaction moves slot ids and recycles the finished slots in place.
    std::size_t write = 0;
    for (std::size_t read = 0; read < resident_.size(); ++read) {
      const std::int32_t slot = resident_[read];
      if (!slot_prefilling(slot) &&
          pool_.generated[slot] >= pool_.output_len[slot]) {
        pool_.release(slot);
      } else {
        resident_[write++] = slot;
      }
    }
    resident_.resize(write);
  }
  if (record->chunked) counters_.chunked_prefill_steps += 1;
  last_step_prefill_ = true;
}

bool ContinuousBatchScheduler::build_decode_step(StepRecord* record) {
  record->kind = StepRecord::Kind::kDecode;

  // Growth pressure: make room for every KV BLOCK the continuing decode
  // participants must allocate this step (decoders mid-block need
  // nothing; at block size 1 every growing decoder needs one).  The
  // pending-growth block count is tracked incrementally, so each pressure
  // check is O(1) instead of a scan over all residents.  The manager owns
  // victim selection; the mechanism depends on the policy — swap victims
  // move to the host pool with their progress intact, recompute victims
  // re-queue from scratch.  kSwapToHost falls back to recompute when the
  // host pool is full.
  const bool manage_growth = kv_cache_->policy() != EvictionPolicy::kNone;
  if (manage_growth) {
    for (;;) {
      if (kv_cache_->fits_blocks(pending_growth_blocks_)) break;
      CIMTPU_CONFIG_CHECK(resident_.size() > 1,
                          "request " << pool_.request[resident_.front()].id
                                     << " outgrew the whole KV budget");
      const std::int64_t victim_id =
          kv_cache_->pick_eviction_victim(/*protect=*/-1);
      const auto victim_it = std::find_if(
          resident_.begin(), resident_.end(), [&](std::int32_t slot) {
            return pool_.request[slot].id == victim_id;
          });
      CIMTPU_CHECK(victim_it != resident_.end());
      const std::int32_t slot = *victim_it;
      resident_.erase(victim_it);
      if (!slot_prefilling(slot)) decoder_leave(slot);
      if (kv_cache_->policy() == EvictionPolicy::kSwapToHost &&
          kv_cache_->try_swap_out(victim_id)) {
        // As with swap-in: only computed KV pages cross the link.
        const Bytes bytes =
            kv_cache_->bytes_per_token() *
            static_cast<double>(pool_.prefilled[slot] + pool_.generated[slot]);
        // Progress survives the swap: snapshot the slot into the cold deque,
        // including the host-pool token count the swap-in watermark reads.
        swapped_.push_back(Sequence{pool_.request[slot], pool_.prefilled[slot],
                                    pool_.generated[slot],
                                    pool_.prefix_skipped[slot],
                                    kv_cache_->swapped_tokens(victim_id)});
        record->swapped_out_ids.push_back(victim_id);
        record->swap_bytes += bytes;
        counters_.preemptions_swap += 1;
        counters_.swap_out_bytes += bytes;
        if (trace_) trace_->on_swap_out(victim_id, bytes);
      } else {
        kv_cache_->release(victim_id);
        // The policy decides where a recompute victim waits (FIFO: front).
        admission_->on_preempt_requeue(pool_.request[slot], total_steps_);
        record->preempted_ids.push_back(victim_id);
        counters_.preemptions_recompute += 1;
        if (trace_) trace_->on_preempt(victim_id);
      }
      pool_.release(slot);
      admit_blocked_ = false;  // eviction freed device blocks
    }
  }

  // Every resident decoder participates at its pre-advance KV length; the
  // incremental histogram IS that grouping, copied out before mutation.
  record->kv_lens.reserve(static_cast<std::size_t>(resident_decoders_));
  record->decode_groups.assign(decode_kv_histogram_.begin(),
                               decode_kv_histogram_.end());

  // Advance decoders in place: a single compaction pass (two-pointer) drops
  // finished slots — moving 4-byte slot ids, never sequence payloads.
  //
  // Bulk-growth fast path: at block size 1, every continuing decoder grows
  // by exactly one token = one block.  When the device has outright room
  // for resident_decoders_ more blocks (an upper bound on this step's
  // grows — finishers release instead), every per-decoder capacity check
  // passes trivially and no reclaim can fire, so the grow collapses to a
  // two-field entry update plus one global commit after the loop.  The
  // per-decoder pending-growth bookkeeping simplifies the same way: a
  // finishing decoder's pre-advance contribution is already 0 (its growth
  // check looked one token ahead), and a continuing decoder's net change
  // is -1 exactly when this advance leaves it one token from finishing.
  if (manage_growth && kv_cache_->can_bulk_grow(resident_decoders_)) {
    std::int64_t grows = 0;
    std::int64_t pending_delta = 0;
    std::size_t write = 0;
    for (std::size_t read = 0; read < resident_.size(); ++read) {
      const std::int32_t slot = resident_[read];
      if (slot_prefilling(slot)) {
        resident_[write++] = slot;
        continue;
      }
      const std::int64_t kv_len =
          pool_.prompt_len[slot] + pool_.generated[slot];
      record->kv_lens.push_back(kv_len);
      const std::int64_t generated = ++pool_.generated[slot];
      if (generated >= pool_.output_len[slot]) {
        record->finished_ids.push_back(pool_.request[slot].id);
        kv_cache_->release(pool_.request[slot].id);
        admission_->on_finish(pool_.request[slot], total_steps_);
        --resident_decoders_;
        histogram_remove(pool_.bucket[slot]);
        pool_.release(slot);
        admit_blocked_ = false;  // finish freed device blocks
      } else {
        kv_cache_->grow_slot_unit_nocheck(pool_.kv_slot[slot]);
        ++grows;
        const std::int64_t old_bucket = pool_.bucket[slot];
        if (kv_len == old_bucket) {
          const std::int64_t new_bucket = old_bucket + config_.seqlen_bucket;
          histogram_remove(old_bucket);
          histogram_add(new_bucket);
          pool_.bucket[slot] = new_bucket;
        }
        if (generated + 1 >= pool_.output_len[slot]) --pending_delta;
        resident_[write++] = slot;
      }
    }
    resident_.resize(write);
    kv_cache_->commit_bulk_growth(grows);
    pending_growth_blocks_ += pending_delta;
    record->batch = static_cast<std::int64_t>(record->kv_lens.size());
    if (record->batch == 0) {
      record->decode_groups.clear();
      return false;  // pressure evicted every decoder
    }
    last_step_prefill_ = false;
    return true;
  }

  // Exact path (block sizes > 1, kNone, or a near-full device): per-grow
  // capacity checks may reclaim cached prefix blocks, which can CHANGE a
  // memoized head-of-line probe's outcome — drop the memo outright.
  admit_blocked_ = false;
  std::size_t write = 0;
  for (std::size_t read = 0; read < resident_.size(); ++read) {
    const std::int32_t slot = resident_[read];
    if (slot_prefilling(slot)) {
      // Spectator: prefill continues elsewhere.
      resident_[write++] = slot;
      continue;
    }
    // KV length this step attends over: prompt plus tokens generated so far.
    const std::int64_t kv_len =
        pool_.prompt_len[slot] + pool_.generated[slot];
    record->kv_lens.push_back(kv_len);
    const std::int64_t old_bucket = pool_.bucket[slot];
    // This decoder's pre-advance pending-growth contribution (0 for a
    // finishing decoder — its growth check looked one token ahead) is
    // consumed by this advance; the kept branch re-derives the
    // contribution for the NEXT step after the grow.
    pending_growth_blocks_ -= growth_blocks(slot);
    const std::int64_t generated = ++pool_.generated[slot];
    if (generated >= pool_.output_len[slot]) {
      record->finished_ids.push_back(pool_.request[slot].id);
      kv_cache_->release(pool_.request[slot].id);
      admission_->on_finish(pool_.request[slot], total_steps_);
      --resident_decoders_;
      histogram_remove(old_bucket);
      pool_.release(slot);
    } else {
      if (manage_growth) {
        const bool grew = kv_cache_->try_grow_slot(pool_.kv_slot[slot], 1);
        CIMTPU_CHECK(grew);  // pre-step eviction guaranteed room
      }
      // Bucket crossing in one compare: the cached bucket is kv_len rounded
      // up, so the next token spills past it iff kv_len == bucket — and the
      // new bucket is then exactly one bucket width further (buckets are
      // multiples of seqlen_bucket).
      if (kv_len == old_bucket) {
        const std::int64_t new_bucket = old_bucket + config_.seqlen_bucket;
        histogram_remove(old_bucket);
        histogram_add(new_bucket);
        pool_.bucket[slot] = new_bucket;
      }
      pending_growth_blocks_ += growth_blocks(slot);
      resident_[write++] = slot;
    }
  }
  resident_.resize(write);
  record->batch = static_cast<std::int64_t>(record->kv_lens.size());
  if (record->batch == 0) {
    record->decode_groups.clear();
    return false;  // pressure evicted every decoder
  }
  last_step_prefill_ = false;
  return true;
}

bool ContinuousBatchScheduler::next_step(StepRecord* record) {
  CIMTPU_CHECK(record != nullptr);
  record->clear();
  if (idle()) return false;

  swap_in_and_admit(record);
  drain_shed(record);

  if (resident_.empty()) {
    CIMTPU_CHECK(swapped_.empty());
    if (admission_->empty()) {
      // Admission control shed every waiting request (a deadline-driven
      // policy can empty the engine): no step runs.  The sheds are in
      // record->shed_ids; the driver advances the clock and re-enters.
      return false;
    }
    // A swapped sequence always fits an empty device (it fit before it was
    // swapped out), so reaching here means the policy's chosen candidate
    // can never be admitted: the request is unservable at this capacity.
    // (Policies may not throttle an empty device, so select() is non-null.)
    const Request* head = admission_->select(admission_context());
    CIMTPU_CHECK(head != nullptr);
    CIMTPU_CONFIG_CHECK(
        false, "request " << head->id << " needs more KV ("
                          << format_bytes(kv_cache_->bytes_per_token() *
                                          static_cast<double>(
                                              admission_reserve_tokens(*head)))
                          << " to admit) than the budget "
                          << format_bytes(kv_cache_->capacity()));
  }

  // The decoder count is tracked incrementally; prefill work exists iff
  // some resident is not a decoder.
  const bool any_decoding = resident_decoders_ > 0;
  const bool any_prefilling =
      static_cast<std::int64_t>(resident_.size()) > resident_decoders_;

  // Step-kind choice: prefill-priority without chunking (a new prompt runs
  // whole the step it is admitted); strict prefill/decode alternation with
  // chunking, so decoders advance at least every other step while a long
  // prompt streams through in chunks.
  bool do_prefill;
  if (!any_prefilling) {
    do_prefill = false;
  } else if (!any_decoding) {
    do_prefill = true;
  } else if (config_.prefill_chunk_tokens > 0) {
    do_prefill = !last_step_prefill_;
  } else {
    do_prefill = true;
  }

  if (do_prefill) {
    build_prefill_step(record);
  } else if (!build_decode_step(record)) {
    // KV pressure swept every decode participant out; the survivors are
    // all prefilling, so run their chunk step instead.
    build_prefill_step(record);
  }
  ++total_steps_;
  return true;
}

std::optional<StepRecord> ContinuousBatchScheduler::next_step() {
  StepRecord record;
  if (!next_step(&record)) return std::nullopt;
  return record;
}

}  // namespace cimtpu::serving
